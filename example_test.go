package repro_test

import (
	"fmt"

	"repro"
)

// The end-to-end flow: generate, build the hierarchy once, query.
func Example() {
	g := repro.RandomGraph(1024, 4096, 1024, repro.UWD, 42)
	h := repro.BuildHierarchy(g)
	solver := repro.NewSolver(h, repro.NewExecRuntime(2))
	dist := solver.SSSP(0)
	fmt.Println(dist[0], dist[1] > 0)
	// Output: 0 true
}

// Multiple concurrent queries share one Component Hierarchy — the paper's
// Figure 5 workload.
func ExampleSolver_runMany() {
	g := repro.RandomGraph(512, 2048, 64, repro.UWD, 7)
	solver := repro.NewSolver(repro.BuildHierarchy(g), repro.NewExecRuntime(2))
	results := solver.RunMany([]int32{0, 100, 200})
	fmt.Println(len(results), results[0][0], results[1][100], results[2][200])
	// Output: 3 0 0 0
}

// Simulated MTA-2 runs report modelled cycles instead of wall-clock.
func ExampleNewSimRuntime() {
	g := repro.RandomGraph(256, 1024, 64, repro.UWD, 1)
	rt := repro.NewSimRuntime(repro.MTA2(40))
	repro.NewSolver(repro.BuildHierarchy(g), rt).SSSP(0)
	cost := rt.SimCost()
	fmt.Println(cost.Work > 0, cost.Span > 0, cost.Span <= cost.Work)
	// Output: true true true
}

// Results can be certified in linear time without re-running a solver.
func ExampleCertifyDistances() {
	g := repro.GridGraph(8, 8, 16, repro.UWD, 3)
	dist := repro.Dijkstra(g, 0)
	err := repro.CertifyDistances(repro.NewExecRuntime(1), g, []int32{0}, dist)
	fmt.Println(err)

	dist[10]++ // corrupt one entry
	err = repro.CertifyDistances(repro.NewExecRuntime(1), g, []int32{0}, dist)
	fmt.Println(err != nil)
	// Output:
	// <nil>
	// true
}

// Multi-source queries answer nearest-facility questions in one traversal.
func ExampleQuery_runFromSources() {
	g := repro.GridGraph(5, 5, 1, repro.UWD, 1) // unit weights
	q := repro.NewSolver(repro.BuildHierarchy(g), repro.NewExecRuntime(1)).Query()
	dist := q.RunFromSources([]int32{0, 24}) // opposite corners
	fmt.Println(dist[0], dist[24], dist[12])
	// Output: 0 0 4
}

// Zero-weight edges are contracted away before building the hierarchy.
func ExampleContractZeroEdges() {
	edges := []repro.Edge{
		{U: 0, V: 1, W: 0}, // merged
		{U: 1, V: 2, W: 5},
	}
	g, label := repro.ContractZeroEdges(3, edges)
	fmt.Println(g.NumVertices(), label[0] == label[1])
	// Output: 2 true
}
