// Benchmarks, one per table and figure of the paper's evaluation section
// (plus the DESIGN.md ablations). Each benchmark exercises exactly the
// computation the corresponding experiment times; `go run ./cmd/experiments`
// prints the paper-layout tables built from the same code paths.
//
// Benchmark sizes default to n = 2^benchLogN so the full suite stays fast;
// the cmd/experiments harness runs the full configured scale.
package repro

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cc"
	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/deltastep"
	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mlb"
	"repro/internal/mta"
	"repro/internal/par"
	"repro/internal/verify"
)

const benchLogN = 13

func benchFamilies() []gen.Instance {
	mk := func(cl gen.Class, d gen.WeightDist, logC int) gen.Instance {
		return gen.Instance{Class: cl, Dist: d, LogN: benchLogN, LogC: logC, Seed: 7}
	}
	return []gen.Instance{
		mk(gen.Rand, gen.UWD, benchLogN),
		mk(gen.Rand, gen.PWD, benchLogN),
		mk(gen.Rand, gen.UWD, 2),
		mk(gen.RMAT, gen.UWD, benchLogN),
		mk(gen.RMAT, gen.PWD, benchLogN),
		mk(gen.RMAT, gen.UWD, 2),
	}
}

// BenchmarkTable1 measures serial Thorup vs the DIMACS reference solver
// (Goldberg multi-level buckets) plus the CH preprocessing, on Random-UWD.
func BenchmarkTable1(b *testing.B) {
	in := gen.Instance{Class: gen.Rand, Dist: gen.UWD, LogN: benchLogN, LogC: benchLogN, Seed: 7}
	g := in.Generate()
	h := ch.BuildKruskal(g)
	b.Run("ThorupSerial/"+in.Name(), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SerialSSSP(h, 0)
		}
	})
	b.Run("DIMACSReferenceMLB/"+in.Name(), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mlb.SSSP(g, 0)
		}
	})
	b.Run("CHPreprocessing/"+in.Name(), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ch.BuildKruskal(g)
		}
	})
}

// BenchmarkTable2 measures CH statistics extraction for every family and
// reports the structural numbers as custom metrics.
func BenchmarkTable2(b *testing.B) {
	for _, in := range benchFamilies() {
		g := in.Generate()
		b.Run(in.Name(), func(b *testing.B) {
			var st ch.Stats
			var h *ch.Hierarchy
			for i := 0; i < b.N; i++ {
				h = ch.BuildKruskal(g)
				st = h.ComputeStats()
			}
			b.ReportMetric(float64(st.Components), "components")
			b.ReportMetric(st.AvgChildren, "children/comp")
			q := core.NewSolver(h, par.NewExec(1)).Query()
			b.ReportMetric(float64(q.InstanceBytes()), "instanceB")
		})
	}
}

// BenchmarkTable3 measures parallel CH construction (Algorithm 1, bully CC)
// on the simulated 1- and 40-processor machines; the simulated cycles are
// reported as a custom metric and the speedup is their ratio.
func BenchmarkTable3(b *testing.B) {
	for _, in := range benchFamilies() {
		g := in.Generate()
		for _, p := range []int{1, 40} {
			b.Run(fmt.Sprintf("%s/p=%d", in.Name(), p), func(b *testing.B) {
				var cycles int64
				for i := 0; i < b.N; i++ {
					rt := par.NewSim(mta.MTA2(p))
					ch.BuildNaive(rt, g, cc.Bully)
					cycles = rt.SimCost().Span
				}
				b.ReportMetric(float64(cycles), "simCycles")
			})
		}
	}
}

// BenchmarkTable4 measures the parallel Thorup query on the simulated 1- and
// 40-processor machines.
func BenchmarkTable4(b *testing.B) {
	for _, in := range benchFamilies() {
		g := in.Generate()
		h := ch.BuildKruskal(g)
		for _, p := range []int{1, 40} {
			m := mta.MTA2(p)
			th := core.TuneThresholds(m)
			b.Run(fmt.Sprintf("%s/p=%d", in.Name(), p), func(b *testing.B) {
				var cycles int64
				for i := 0; i < b.N; i++ {
					rt := par.NewSim(m)
					core.NewSolver(h, rt, core.WithThresholds(th)).SSSP(0)
					cycles = rt.SimCost().Span
				}
				b.ReportMetric(float64(cycles), "simCycles")
			})
		}
	}
}

// BenchmarkTable5 measures the three-way comparison on the simulated
// 40-processor machine: delta-stepping vs Thorup vs CH construction.
func BenchmarkTable5(b *testing.B) {
	m := mta.MTA2(40)
	for _, in := range benchFamilies() {
		g := in.Generate()
		h := ch.BuildKruskal(g)
		b.Run("DeltaStepping/"+in.Name(), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				rt := par.NewSim(m)
				deltastep.SSSP(rt, g, 0, deltastep.DefaultDelta(g))
				cycles = rt.SimCost().Span
			}
			b.ReportMetric(float64(cycles), "simCycles")
		})
		b.Run("Thorup/"+in.Name(), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				rt := par.NewSim(m)
				core.NewSolver(h, rt).SSSP(0)
				cycles = rt.SimCost().Span
			}
			b.ReportMetric(float64(cycles), "simCycles")
		})
		b.Run("CH/"+in.Name(), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				rt := par.NewSim(m)
				ch.BuildNaive(rt, g, cc.Bully)
				cycles = rt.SimCost().Span
			}
			b.ReportMetric(float64(cycles), "simCycles")
		})
	}
}

// BenchmarkTable6 measures Thorup A (naive toVisit loops) vs Thorup B
// (selective parallelization) on the simulated 40-processor machine.
func BenchmarkTable6(b *testing.B) {
	m := mta.MTA2(40)
	th := core.TuneThresholds(m)
	for _, in := range benchFamilies() {
		g := in.Generate()
		h := ch.BuildKruskal(g)
		for _, v := range []struct {
			name string
			st   core.Strategy
		}{{"ThorupA", core.Naive}, {"ThorupB", core.Selective}} {
			b.Run(v.name+"/"+in.Name(), func(b *testing.B) {
				var cycles int64
				for i := 0; i < b.N; i++ {
					rt := par.NewSim(m)
					core.NewSolver(h, rt, core.WithStrategy(v.st), core.WithThresholds(th)).SSSP(0)
					cycles = rt.SimCost().Span
				}
				b.ReportMetric(float64(cycles), "simCycles")
			})
		}
	}
}

// BenchmarkFigure4 sweeps the simulated processor count for CH construction
// and Thorup SSSP on the first family (full sweep over all six families:
// cmd/experiments -run figure4).
func BenchmarkFigure4(b *testing.B) {
	in := benchFamilies()[0]
	g := in.Generate()
	h := ch.BuildKruskal(g)
	for _, p := range []int{1, 2, 4, 8, 16, 27, 40} {
		m := mta.MTA2(p)
		b.Run(fmt.Sprintf("CH/%s/p=%d", in.Name(), p), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				rt := par.NewSim(m)
				ch.BuildNaive(rt, g, cc.Bully)
				cycles = rt.SimCost().Span
			}
			b.ReportMetric(float64(cycles), "simCycles")
		})
		b.Run(fmt.Sprintf("Thorup/%s/p=%d", in.Name(), p), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				rt := par.NewSim(m)
				core.NewSolver(h, rt).SSSP(0)
				cycles = rt.SimCost().Span
			}
			b.ReportMetric(float64(cycles), "simCycles")
		})
	}
}

// BenchmarkFigure5 measures k simultaneous shared-CH Thorup queries
// (co-scheduled on the simulated machine) against the k-sequential
// delta-stepping baseline.
func BenchmarkFigure5(b *testing.B) {
	in := gen.Instance{Class: gen.Rand, Dist: gen.UWD, LogN: benchLogN, LogC: benchLogN, Seed: 7}
	g := in.Generate()
	h := ch.BuildKruskal(g)
	m := mta.MTA2(40)
	for _, k := range []int{1, 4, 16, 30} {
		sources := make([]int32, k)
		for i := range sources {
			sources[i] = int32(i * (g.NumVertices() / k))
		}
		b.Run(fmt.Sprintf("SimulThorup/k=%d", k), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cycles, _ = core.SimultaneousCost(h, m, sources)
			}
			b.ReportMetric(float64(cycles), "simCycles")
		})
		b.Run(fmt.Sprintf("SequentialDeltaStep/k=%d", k), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				cycles = 0
				for range sources {
					rt := par.NewSim(m)
					deltastep.SSSP(rt, g, 0, deltastep.DefaultDelta(g))
					cycles += rt.SimCost().Span
				}
			}
			b.ReportMetric(float64(cycles), "simCycles")
		})
	}
}

// BenchmarkAblationCHConstruction compares the paper's Algorithm 1 against
// the union-find sweep and the MST-based construction (DESIGN ablation A).
func BenchmarkAblationCHConstruction(b *testing.B) {
	g := benchFamilies()[0].Generate()
	rt := par.NewExec(4)
	b.Run("NaiveAlg1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ch.BuildNaive(rt, g, cc.Bully)
		}
	})
	b.Run("KruskalSweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ch.BuildKruskal(g)
		}
	})
	b.Run("MSTBased", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ch.BuildMST(rt, g)
		}
	})
}

// BenchmarkAblationCC compares the bully and Shiloach–Vishkin kernels
// (DESIGN ablation B).
func BenchmarkAblationCC(b *testing.B) {
	g := benchFamilies()[0].Generate()
	rt := par.NewExec(4)
	b.Run("Bully", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cc.Bully(rt, g, cc.All)
		}
	})
	b.Run("ShiloachVishkin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cc.ShiloachVishkin(rt, g, cc.All)
		}
	})
	b.Run("UnionFindSerial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			cc.UnionFind(g, cc.All)
		}
	})
}

// BenchmarkAblationBuckets compares virtual buckets (child scan) against
// physical bucket lists in the serial solver (DESIGN ablation C).
func BenchmarkAblationBuckets(b *testing.B) {
	g := benchFamilies()[0].Generate()
	h := ch.BuildKruskal(g)
	b.Run("Virtual", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SerialSSSP(h, 0)
		}
	})
	b.Run("Physical", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SerialSSSPPhysical(h, 0)
		}
	})
}

// BenchmarkRoadNetwork runs all solvers on the high-diameter grid family
// (the paper's §6 extension scenario).
func BenchmarkRoadNetwork(b *testing.B) {
	in := gen.Instance{Class: gen.Grid, Dist: gen.UWD, LogN: benchLogN, LogC: 6, Seed: 7}
	g := in.Generate()
	h := ch.BuildKruskal(g)
	rt := par.NewExec(4)
	b.Run("ThorupSerial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.SerialSSSP(h, 0)
		}
	})
	b.Run("DeltaStepping", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			deltastep.SSSP(rt, g, 0, deltastep.DefaultDelta(g))
		}
	})
	b.Run("MLB", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			mlb.SSSP(g, 0)
		}
	})
}

// BenchmarkExecThorupWorkers measures the real-goroutine Thorup query across
// worker counts (wall-clock scaling on the host, as opposed to the simulated
// machine).
func BenchmarkExecThorupWorkers(b *testing.B) {
	g := benchFamilies()[0].Generate()
	h := ch.BuildKruskal(g)
	for _, w := range []int{1, 2, 4} {
		s := core.NewSolver(h, par.NewExec(w))
		q := s.Query()
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q.Run(0)
			}
		})
	}
}

// sink prevents dead-code elimination in the generator benchmark.
var sink *graph.Graph

// BenchmarkGenerators measures the instance generators themselves.
func BenchmarkGenerators(b *testing.B) {
	n := 1 << benchLogN
	b.Run("Random", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = gen.Random(n, 4*n, uint32(n), gen.UWD, uint64(i))
		}
	})
	b.Run("RMAT", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sink = gen.RMATGraph(n, 4*n, uint32(n), gen.UWD, uint64(i))
		}
	})
}

// BenchmarkMultiSource measures the nearest-facility multi-source query
// against the k-Dijkstra baseline.
func BenchmarkMultiSource(b *testing.B) {
	g := benchFamilies()[0].Generate()
	h := ch.BuildKruskal(g)
	q := core.NewSolver(h, par.NewExec(4)).Query()
	sources := []int32{0, 1000, 2000, 4000, 8000}
	b.Run("ThorupOneQuery", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			q.RunFromSources(sources)
		}
	})
	b.Run("KDijkstras", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, s := range sources {
				dijkstra.SSSP(g, s)
			}
		}
	})
}

// BenchmarkCertify measures the linear-time certifier against re-running
// Dijkstra as a check.
func BenchmarkCertify(b *testing.B) {
	g := benchFamilies()[0].Generate()
	dist := dijkstra.SSSP(g, 0)
	rt := par.NewExec(4)
	b.Run("Certifier", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := verify.Distances(rt, g, []int32{0}, dist); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RerunDijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dijkstra.SSSP(g, 0)
		}
	})
}

// BenchmarkHierarchySerialization measures CH save/load round trips.
func BenchmarkHierarchySerialization(b *testing.B) {
	g := benchFamilies()[0].Generate()
	h := ch.BuildKruskal(g)
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.Run("Write", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var w bytes.Buffer
			if _, err := h.WriteTo(&w); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Read", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ch.ReadFrom(bytes.NewReader(raw), g); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("RebuildInstead", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ch.BuildKruskal(g)
		}
	})
}
