// Command stress is the differential/metamorphic stress-testing driver for
// every SSSP solver in the repository (internal/stress).
//
// A run is a pure function of -seed: it sweeps generated instances across all
// graph families, runs every registered solver on each, and cross-checks the
// results pairwise, against the linear-time certifier, under metamorphic
// transformations, against Component Hierarchy invariants, and under
// concurrent queries. Build with -race to make the concurrency stage
// meaningful (`make stress` does).
//
// On failure the witness is minimized by the built-in shrinker and written as
// a DIMACS .gr/.ss pair under -out; replay it later with -replay:
//
//	stress -seed 12345            # sweep; exit 1 + repro files on failure
//	stress -replay repro/x.gr     # re-run the full oracle stack on one repro
//	stress -replay testdata/stress  # replay a whole corpus directory
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/par"
	"repro/internal/stress"
)

func main() {
	var (
		seed    = flag.Uint64("seed", 1, "base seed; the entire run derives from it")
		rounds  = flag.Int("rounds", 1, "sweep rounds (each round re-seeds every family)")
		maxN    = flag.Int("max-n", 256, "vertex-count ceiling for generated instances")
		workers = flag.Int("workers", 4, "worker goroutines for the parallel solvers")
		targets = flag.Int("targets", 4, "sampled s-t pairs per instance for point-to-point checks")
		out     = flag.String("out", "stress-repro", "directory for minimized repro files")
		replay  = flag.String("replay", "", "replay a repro .gr file or a directory of them instead of sweeping")
		quiet   = flag.Bool("quiet", false, "suppress per-instance progress")
	)
	flag.Parse()

	cfg := stress.Config{
		Seed:    *seed,
		Rounds:  *rounds,
		MaxN:    *maxN,
		Workers: *workers,
		Targets: *targets,
	}
	if !*quiet {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	var f *stress.Failure
	if *replay != "" {
		rt := par.NewExec(*workers)
		info, err := os.Stat(*replay)
		if err != nil {
			fatal(err)
		}
		if info.IsDir() {
			f, err = stress.ReplayDir(cfg, rt, *replay)
		} else {
			f, err = stress.ReplayFile(cfg, rt, *replay)
		}
		if err != nil {
			fatal(err)
		}
		if f == nil {
			fmt.Println("stress: replay clean")
			return
		}
		fmt.Fprintf(os.Stderr, "%v\n", f)
		os.Exit(1)
	}

	f = stress.Run(cfg)
	if f == nil {
		fmt.Printf("stress: clean (%d round(s), seed %d)\n", max(1, *rounds), *seed)
		return
	}
	fmt.Fprintf(os.Stderr, "%v\n", f)
	path, err := f.WriteRepro(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stress: writing repro: %v\n", err)
	} else {
		fmt.Fprintf(os.Stderr, "stress: minimized repro written; replay with:\n  go run -race ./cmd/stress -replay %s\n", path)
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "stress: %v\n", err)
	os.Exit(1)
}
