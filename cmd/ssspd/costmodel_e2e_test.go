package main

import (
	"bytes"
	"context"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/ch"
	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/loadgen"
	"repro/internal/trace"
)

// writeModelFile seals a hand-written coefficient set (µs per feature unit,
// feature order costmodel.FeatureNames) into a loadable coefficients file.
func writeModelFile(t *testing.T, coef map[string][]float64) string {
	t.Helper()
	f := &costmodel.File{
		Version:        costmodel.FileVersion,
		Features:       append([]string(nil), costmodel.FeatureNames...),
		DatasetVersion: costmodel.DatasetVersion,
		TrainedAt:      "2026-08-07T00:00:00Z",
		Solvers:        make(map[string]costmodel.SolverCoef),
	}
	for name, c := range coef {
		f.Solvers[name] = costmodel.SolverCoef{Coef: c, Samples: 100}
		f.TotalSamples += 100
	}
	b, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// Every executed solve — and nothing else — becomes a training sample:
// cache hits contribute nothing, multi-source queries carry their source
// count, and the export round-trips through the same reader cmd/costfit
// uses.
func TestCostModelDatasetCollection(t *testing.T) {
	g, h := testGraph()
	srv := newServer(g, h, "test-instance", catalog.Source{}, serverOptions{
		workers: 4, maxInflight: 64, timeout: 30 * time.Second,
		engine: engine.Config{CacheEntries: 64, CacheBytes: 8 << 20},
		trace:  trace.Config{SampleN: 1, RingSize: 64},
	})
	t.Cleanup(srv.cat.Close)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)

	var resp map[string]any
	if code := getJSON(t, ts.URL+"/sssp?src=1", &resp); code != 200 {
		t.Fatalf("sssp: %d", code)
	}
	if code := getJSON(t, ts.URL+"/sssp?src=1", &resp); code != 200 { // cache hit
		t.Fatalf("sssp repeat: %d", code)
	}
	if code := getJSON(t, ts.URL+"/sssp?src=2", &resp); code != 200 {
		t.Fatalf("sssp 2: %d", code)
	}
	if code := postJSON(t, ts.URL+"/batch", `{"queries":[{"srcs":[3,4]}]}`, &resp); code != 200 {
		t.Fatalf("batch: %d", code)
	}

	hr, err := http.Get(ts.URL + "/debug/costmodel/dataset")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if got := hr.Header.Get("X-Dataset-Version"); got != "1" {
		t.Fatalf("X-Dataset-Version = %q", got)
	}
	raw, err := io.ReadAll(hr.Body)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := costmodel.ReadSamples(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("dataset does not round-trip through costfit's reader: %v\n%s", err, raw)
	}
	if len(samples) != 3 {
		t.Fatalf("%d samples for 3 executed solves (cache hit must not count):\n%s", len(samples), raw)
	}
	for i, s := range samples {
		if s.Graph != "test-instance" || s.Gen != 1 {
			t.Fatalf("sample %d graph/gen: %+v", i, s)
		}
		if s.N != g.NumVertices() || s.M != g.NumEdges() || s.MaxWeight != g.MaxWeight() {
			t.Fatalf("sample %d features: %+v", i, s)
		}
		if s.Solver == "" || s.DurUS < 0 {
			t.Fatalf("sample %d label: %+v", i, s)
		}
	}
	// Oldest first: the two single-source solves, then the 2-source batch item.
	if samples[0].Sources != 1 || samples[1].Sources != 1 || samples[2].Sources != 2 {
		t.Fatalf("source counts: %+v", samples)
	}

	var metrics map[string]any
	if code := getJSON(t, ts.URL+"/metrics", &metrics); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	cm, ok := metrics["costmodel"].(map[string]any)
	if !ok {
		t.Fatalf("no costmodel metrics section: %v", metrics)
	}
	if held := cm["samples_held"].(float64); held != 3 {
		t.Fatalf("samples_held = %v, want 3", held)
	}
	if cm["enabled"].(bool) {
		t.Fatal("no model loaded, but costmodel reports enabled")
	}
}

// Hot reload: coefficients swap in without a restart and change live solver
// selection; a corrupted file is refused with 400 and the previous model
// keeps serving.
func TestCostModelReloadEndpoint(t *testing.T) {
	ts, srv, _ := testServerOpts(t, 64, 30*time.Second)

	// No -cost-model flag and nothing loaded yet: nothing to reload from.
	var errResp map[string]any
	if code := postJSON(t, ts.URL+"/debug/costmodel/reload", `{}`, &errResp); code != 400 {
		t.Fatalf("pathless reload: %d", code)
	}

	var before map[string]any
	getJSON(t, ts.URL+"/sssp?src=1", &before)
	if before["solver"] == "dijkstra" {
		t.Fatalf("static policy already picks dijkstra; test needs a contrast")
	}

	// A model that knows only dijkstra makes the argmin pick it everywhere.
	path := writeModelFile(t, map[string][]float64{
		"dijkstra": {100, 0, 0, 0, 0, 0.001, 0},
	})
	var ok map[string]any
	if code := postJSON(t, ts.URL+"/debug/costmodel/reload", `{"path":"`+path+`"}`, &ok); code != 200 {
		t.Fatalf("reload: %d %v", code, ok)
	}
	if ok["status"] != "reloaded" {
		t.Fatalf("reload response: %v", ok)
	}
	var after map[string]any
	getJSON(t, ts.URL+"/sssp?src=2", &after)
	if after["solver"] != "dijkstra" {
		t.Fatalf("post-reload solver = %v, want dijkstra", after["solver"])
	}

	// Corrupt the file in place: the reload is refused, the old model serves.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if code := postJSON(t, ts.URL+"/debug/costmodel/reload", `{}`, &errResp); code != 400 {
		t.Fatalf("corrupt reload: %d (%v)", code, errResp)
	}
	var still map[string]any
	getJSON(t, ts.URL+"/sssp?src=3", &still)
	if still["solver"] != "dijkstra" {
		t.Fatalf("solver after failed reload = %v, want dijkstra (old model)", still["solver"])
	}
	ctrs := srv.costProv.Counters().Snapshot()
	if ctrs[costmodel.CtrReloads] != 1 || ctrs[costmodel.CtrReloadFailures] != 1 {
		t.Fatalf("reload counters: %v", ctrs)
	}

	var metrics map[string]any
	getJSON(t, ts.URL+"/metrics", &metrics)
	cm := metrics["costmodel"].(map[string]any)
	if !cm["enabled"].(bool) || cm["path"] != path {
		t.Fatalf("costmodel metrics after reload: %v", cm)
	}
}

// Predictive admission rejects with 503 + Retry-After BEFORE the query
// reaches a worker: on a fresh daemon the rejection happens with zero
// executed solves (the predictions counter only moves when a solve runs).
func TestPredictiveAdmission503BeforeWorker(t *testing.T) {
	// Prediction: 1ms + 61ms per source. Limit: 200ms × 0.8 = 160ms. One
	// source (62ms) clears it; eight sources (489ms) must be shed.
	path := writeModelFile(t, map[string][]float64{
		"dijkstra": {1000, 0, 0, 0, 61000, 0, 0},
		"delta":    {1000, 0, 0, 0, 61000, 0, 0},
		"thorup":   {1000, 0, 0, 0, 61000, 0, 0},
	})
	g, h := testGraph()
	srv := newServer(g, h, "test-instance", catalog.Source{}, serverOptions{
		workers: 4, maxInflight: 64, timeout: 200 * time.Millisecond,
		engine:    engine.Config{CacheEntries: 64, CacheBytes: 8 << 20},
		costModel: path, admitHead: 0.8,
	})
	t.Cleanup(srv.cat.Close)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)

	resp, err := http.Post(ts.URL+"/batch", "application/json",
		strings.NewReader(`{"queries":[{"srcs":[1,2,3,4,5,6,7,8]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("over-limit batch: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") != "1" {
		t.Fatal("predictive rejection carries no Retry-After")
	}
	if !strings.Contains(string(body), "predicted cost") {
		t.Fatalf("rejection body: %s", body)
	}
	ctrs := srv.costProv.Counters().Snapshot()
	if ctrs[costmodel.CtrAdmissionRejected] != 1 {
		t.Fatalf("admission_rejected_predicted = %d, want 1", ctrs[costmodel.CtrAdmissionRejected])
	}
	if ctrs[costmodel.CtrPredictions] != 0 {
		t.Fatalf("predictions = %d, want 0: the rejected query must never reach a solver",
			ctrs[costmodel.CtrPredictions])
	}

	// Under the limit: admitted and answered.
	var okResp map[string]any
	if code := getJSON(t, ts.URL+"/sssp?src=1", &okResp); code != 200 {
		t.Fatalf("single-source query: %d %v", code, okResp)
	}
	ctrs = srv.costProv.Counters().Snapshot()
	if ctrs[costmodel.CtrPredictions] != 1 || ctrs[costmodel.CtrAdmissionRejected] != 1 {
		t.Fatalf("post-admit counters: %v", ctrs)
	}

	// The capacity-style admission gate is per-predicted-cost, not a
	// semaphore event: the endpoint shed counter (admission-limit 503s)
	// stays untouched.
	var metrics map[string]any
	getJSON(t, ts.URL+"/metrics", &metrics)
	batchEp := metrics["endpoints"].(map[string]any)["batch"].(map[string]any)
	if shed, present := batchEp["shed"]; present && shed.(float64) != 0 {
		t.Fatalf("endpoint shed = %v, want 0 (predictive rejections are counted separately)", shed)
	}
}

// Predictive admission under a real workload: with a model that prices the
// larger graph over the limit and the smaller one under it, a loadgen run
// across both sees every large-graph request shed as 503 + Retry-After and
// every small-graph request answered, with the daemon's
// admission_rejected_predicted counter matching the client's observed
// shed count exactly.
func TestPredictiveAdmissionUnderLoad(t *testing.T) {
	// Cost = 400µs·n: wl-a (n=512) → 204.8ms over the 180ms limit,
	// wl-b (n=384) → 153.6ms under it.
	path := writeModelFile(t, map[string][]float64{
		"dijkstra": {0, 400, 0, 0, 0, 0, 0},
		"delta":    {0, 400, 0, 0, 0, 0, 0},
		"thorup":   {0, 400, 0, 0, 0, 0, 0},
	})
	graphs := serveWorkloadGraphs()
	ga := graphs["wl-a"]
	srv := newServer(ga, ch.BuildKruskal(ga), "wl-a", catalog.Source{}, serverOptions{
		workers: 4, maxInflight: 256, timeout: 200 * time.Millisecond,
		engine:    engine.Config{CacheEntries: 64, CacheBytes: 8 << 20},
		costModel: path, admitHead: 0.9,
	})
	gb := graphs["wl-b"]
	if _, err := srv.cat.AddPrebuilt("wl-b", catalog.Source{}, gb, ch.BuildKruskal(gb), nil); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	old := log.Writer()
	log.SetOutput(io.Discard)
	t.Cleanup(func() {
		ts.Close()
		srv.cat.Close()
		log.SetOutput(old)
	})

	w := &loadgen.Workload{Spec: loadgen.Spec{
		Name: "predictive", Version: 1, Seed: 17, Requests: 80,
		Mode: loadgen.ModeClosed, Workers: 4, BatchSize: 3,
		Graphs: []loadgen.GraphMix{
			{Graph: "wl-a", N: 512, Weight: 1},
			{Graph: "wl-b", N: 384, Weight: 1},
		},
		Endpoints: []loadgen.Weighted{
			{Name: loadgen.EndpointSSSP, Weight: 2},
			{Name: loadgen.EndpointDist, Weight: 1},
			{Name: loadgen.EndpointBatch, Weight: 1},
		},
	}}
	out, err := loadgen.Run(context.Background(), w, loadgen.Options{
		BaseURL: ts.URL, Client: ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := loadgen.BuildReport(w, out)

	var shedA, okB int
	for i := range out.Results {
		res := &out.Results[i]
		req := &w.Requests[i]
		switch req.Graph {
		case "wl-a":
			if res.Status != 503 {
				t.Fatalf("request %d on wl-a: status %d, want 503 (predicted 204.8ms > 180ms limit)",
					i, res.Status)
			}
			if !res.RetryAfter {
				t.Fatalf("request %d: predictive shed without Retry-After", i)
			}
			shedA++
		case "wl-b":
			if res.Status != 200 {
				t.Fatalf("request %d on wl-b: status %d err %q, want 200 (predicted 153.6ms < limit)",
					i, res.Status, res.Err)
			}
			okB++
		}
	}
	if shedA == 0 || okB == 0 {
		t.Fatalf("workload split shedA=%d okB=%d, want both > 0", shedA, okB)
	}
	if rep.Shed != shedA {
		t.Fatalf("report shed = %d, client counted %d", rep.Shed, shedA)
	}
	ctrs := srv.costProv.Counters().Snapshot()
	if got := ctrs[costmodel.CtrAdmissionRejected]; got != int64(shedA) {
		t.Fatalf("daemon admission_rejected_predicted = %d, client observed %d predictive 503s", got, shedA)
	}
}
