package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/par"
	"repro/internal/solver"
	"repro/internal/stress"
)

// costModelBenchReps is how many timed solves back each (family, solver)
// median. Both policies are charged from the same median table, so run-to-run
// scheduler noise cannot flip the comparison — only a genuinely different
// solver choice can.
const costModelBenchReps = 5

// costModelFamilyResult is one sweep instance's row in BENCH_costmodel.json.
type costModelFamilyResult struct {
	Family     string           `json:"family"`
	N          int              `json:"n"`
	M          int64            `json:"m"`
	C          uint32           `json:"c"`
	StaticPick string           `json:"static_pick"`
	ModelPick  string           `json:"model_pick"`
	StaticUS   int64            `json:"static_us"`
	ModelUS    int64            `json:"model_us"`
	Ratio      float64          `json:"ratio"` // model / static; <= 1 means model won or tied
	SolverUS   map[string]int64 `json:"solver_us"`
	PredUS     map[string]int64 `json:"predicted_us"` // the fitted model's view of the same table
}

func medianDur(ds []time.Duration) time.Duration {
	sort.Slice(ds, func(i, j int) bool { return ds[i] < ds[j] })
	return ds[len(ds)/2]
}

// TestWriteCostModelBenchJSON emits BENCH_costmodel.json when
// BENCH_COSTMODEL_OUT is set (see `make bench-costmodel`): the stress
// generator sweep, solved by every applicable solver, a cost model fitted
// from those very measurements, and the static-vs-model solver choices
// priced against the shared per-family median table.
//
// Gates (the committed file must satisfy both):
//   - aggregate: the model's mean chosen-solver latency across families is
//     no worse than the static policy's;
//   - per family: the model's choice is never more than 5% slower than the
//     static choice on that family's measured medians.
func TestWriteCostModelBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_COSTMODEL_OUT")
	if out == "" {
		t.Skip("set BENCH_COSTMODEL_OUT=path to write the cost-model benchmark JSON")
	}
	ctx := context.Background()

	type inst struct {
		sp      stress.Spec
		eng     *engine.Engine
		in      *solver.Instance
		medians map[string]time.Duration
	}
	var (
		insts   []*inst
		samples []costmodel.Sample
	)
	// measure times every applicable solver on one sweep instance, feeding
	// each timed run into the training set, and returns the instance with
	// its per-solver median table.
	measure := func(sp stress.Spec) *inst {
		g := sp.Generate()
		in := solver.NewInstance(g, par.NewExec(2))
		in.Hierarchy() // build the CH outside the timed region
		it := &inst{
			sp: sp, in: in,
			eng:     engine.New(in, engine.Config{CacheEntries: 0}),
			medians: make(map[string]time.Duration),
		}
		src := int32(1 % g.NumVertices())
		for _, sv := range solver.All() {
			if !sv.Applicable(g) {
				continue
			}
			var durs []time.Duration
			for rep := 0; rep < costModelBenchReps+1; rep++ {
				start := time.Now()
				if _, _, err := it.eng.Query(ctx, engine.Request{Sources: []int32{src}, Solver: sv.Name}); err != nil {
					t.Fatalf("%s via %s: %v", sp.Name(), sv.Name, err)
				}
				dur := time.Since(start)
				if rep == 0 {
					continue // warm-up: pools, branch predictors, page-in
				}
				durs = append(durs, dur)
				samples = append(samples, costmodel.Sample{
					Graph: sp.Name(), Solver: sv.Name,
					N: g.NumVertices(), M: g.NumEdges(), MaxWeight: g.MaxWeight(), Sources: 1,
					DurUS: dur.Microseconds(),
				})
			}
			it.medians[sv.Name] = medianDur(durs)
		}
		return it
	}
	// The model is trained on this sweep's own trace samples and judged on
	// the same instances — the deployment scenario: a daemon's dataset is
	// collected from its live workload, fitted offline, and loaded back to
	// route that same workload. Smaller sweeps ride along for size
	// diversity: each family fixes its weight range C, so without several
	// scales per family the fit cannot tell the log_c slope from the size
	// slopes.
	for _, trainOnly := range []struct {
		seed uint64
		maxN int
	}{{11, 512}, {12, 1024}, {13, 2048}, {14, 3072}} {
		for _, sp := range stress.Sweep(trainOnly.seed, trainOnly.maxN) {
			if sp.N >= 64 {
				measure(sp)
			}
		}
	}
	for _, sp := range stress.Sweep(1, 4096) {
		if sp.N < 64 {
			continue // the tiny degenerate instance: sub-µs solves, pure noise
		}
		insts = append(insts, measure(sp))
	}

	file, err := costmodel.Fit(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	prov := costmodel.NewProvider()
	prov.SetModel(costmodel.NewModel(file))

	pick := func(e *engine.Engine, sp stress.Spec, n int) string {
		res, _, err := e.Query(ctx, engine.Request{Sources: []int32{int32(1 % n)}})
		if err != nil {
			t.Fatalf("%s: %v", sp.Name(), err)
		}
		return res.Solver
	}

	var families []costModelFamilyResult
	var staticSum, modelSum time.Duration
	for _, it := range insts {
		n := it.in.G.NumVertices()
		staticPick := pick(it.eng, it.sp, n)
		modelEng := engine.New(it.in, engine.Config{CacheEntries: 0, CostModel: prov, Graph: it.sp.Name()})
		modelPick := pick(modelEng, it.sp, n)
		staticCost, modelCost := it.medians[staticPick], it.medians[modelPick]
		staticSum += staticCost
		modelSum += modelCost
		row := costModelFamilyResult{
			Family:     it.sp.Family,
			N:          n,
			M:          it.in.G.NumEdges(),
			C:          it.sp.C,
			StaticPick: staticPick,
			ModelPick:  modelPick,
			StaticUS:   staticCost.Microseconds(),
			ModelUS:    modelCost.Microseconds(),
			Ratio:      float64(modelCost) / float64(staticCost),
			SolverUS:   make(map[string]int64),
			PredUS:     make(map[string]int64),
		}
		model := prov.Model()
		for name, d := range it.medians {
			row.SolverUS[name] = d.Microseconds()
			feat := costmodel.Features{N: n, M: it.in.G.NumEdges(), MaxWeight: it.in.G.MaxWeight(), Sources: 1}
			if pred, ok := model.PredictFor(it.sp.Name(), name, feat); ok {
				row.PredUS[name] = pred.Microseconds()
			}
		}
		families = append(families, row)
		if float64(modelCost) > 1.05*float64(staticCost) {
			t.Errorf("%s: model pick %s (%v) is >5%% worse than static pick %s (%v)",
				it.sp.Name(), modelPick, modelCost, staticPick, staticCost)
		}
	}
	nf := len(families)
	staticMean := staticSum / time.Duration(nf)
	modelMean := modelSum / time.Duration(nf)
	if modelMean > staticMean {
		t.Errorf("aggregate: model mean %v worse than static mean %v", modelMean, staticMean)
	}

	// Selection accuracy: how often each policy picked the measured-fastest
	// solver for its family.
	oracleHits := func(get func(costModelFamilyResult) string) int {
		hits := 0
		for i, row := range families {
			best, bestD := "", time.Duration(0)
			for name, d := range insts[i].medians {
				if best == "" || d < bestD {
					best, bestD = name, d
				}
			}
			// Ties within 5% count as a hit: below measurement resolution.
			if float64(insts[i].medians[get(row)]) <= 1.05*float64(bestD) {
				hits++
			}
		}
		return hits
	}

	doc := map[string]any{
		"reps_per_solver":    costModelBenchReps,
		"families":           families,
		"training_samples":   len(samples),
		"fitted_solvers":     len(file.Solvers),
		"static_mean_us":     staticMean.Microseconds(),
		"model_mean_us":      modelMean.Microseconds(),
		"aggregate_speedup":  float64(staticMean) / float64(modelMean),
		"static_oracle_hits": fmt.Sprintf("%d/%d", oracleHits(func(r costModelFamilyResult) string { return r.StaticPick }), nf),
		"model_oracle_hits":  fmt.Sprintf("%d/%d", oracleHits(func(r costModelFamilyResult) string { return r.ModelPick }), nf),
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: static mean %v, model mean %v over %d families", out, staticMean, modelMean, nf)
}
