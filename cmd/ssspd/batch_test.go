package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/dijkstra"
	"repro/internal/graph"
)

func postJSON(t *testing.T, url, body string, out any) int {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

type batchResp struct {
	Results []struct {
		Solver       string  `json:"solver"`
		Via          string  `json:"via"`
		Reached      int     `json:"reached"`
		Eccentricity int64   `json:"eccentricity"`
		Dist         []int64 `json:"dist"`
		Error        string  `json:"error"`
		Status       int     `json:"status"`
	} `json:"results"`
}

// POST /batch answers every query, honours per-item and batch-level solver
// selection, and returns full vectors when asked.
func TestBatchEndpoint(t *testing.T) {
	ts, g := testServer(t)
	var resp batchResp
	code := postJSON(t, ts.URL+"/batch",
		`{"queries":[{"src":3},{"src":10,"solver":"dijkstra"},{"srcs":[3,10]}],"solver":"thorup","full":true}`,
		&resp)
	if code != 200 {
		t.Fatalf("code %d", code)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("%d results, want 3", len(resp.Results))
	}
	if resp.Results[0].Solver != "thorup" || resp.Results[1].Solver != "dijkstra" || resp.Results[2].Solver != "thorup" {
		t.Fatalf("solver routing: %s %s %s",
			resp.Results[0].Solver, resp.Results[1].Solver, resp.Results[2].Solver)
	}
	oracle3 := dijkstra.SSSP(g, 3)
	oracle10 := dijkstra.SSSP(g, 10)
	for v := range oracle3 {
		want0, want10 := oracle3[v], oracle10[v]
		multi := want0
		if want10 < multi {
			multi = want10
		}
		for i, want := range []int64{want0, want10, multi} {
			if want == graph.Inf {
				want = -1
			}
			if resp.Results[i].Dist[v] != want {
				t.Fatalf("result %d dist[%d] = %d, want %d", i, v, resp.Results[i].Dist[v], want)
			}
		}
	}
}

// A bad item reports its own error without failing the batch.
func TestBatchPerItemError(t *testing.T) {
	ts, _ := testServer(t)
	var resp batchResp
	code := postJSON(t, ts.URL+"/batch",
		`{"queries":[{"src":1},{"src":99999},{"src":0,"solver":"nope"}]}`, &resp)
	if code != 200 {
		t.Fatalf("code %d", code)
	}
	if resp.Results[0].Error != "" || resp.Results[0].Reached == 0 {
		t.Fatalf("good item: %+v", resp.Results[0])
	}
	for i := 1; i < 3; i++ {
		if resp.Results[i].Error == "" || resp.Results[i].Status != http.StatusBadRequest {
			t.Fatalf("bad item %d: %+v", i, resp.Results[i])
		}
	}
}

// Malformed, empty, and oversized batches are rejected up front with 400.
func TestBatchValidation(t *testing.T) {
	ts, _ := testServer(t)
	tooBig := `{"queries":[`
	for i := 0; i <= maxBatchItems; i++ {
		if i > 0 {
			tooBig += ","
		}
		tooBig += `{"src":0}`
	}
	tooBig += `]}`
	for _, body := range []string{
		`not json`,
		`{"queries":[]}`,
		`{}`,
		`{"queries":[{"src":0}],"bogus":1}`,
		tooBig,
	} {
		var e map[string]string
		if code := postJSON(t, ts.URL+"/batch", body, &e); code != http.StatusBadRequest {
			t.Fatalf("body %.40q: code %d, want 400", body, code)
		}
		if e["error"] == "" {
			t.Fatalf("body %.40q: missing error message", body)
		}
	}
}

// Identical queries are answered from the result cache: the second /sssp
// reports via=cache, and full=1 streams the serialized vector without
// re-marshaling (the bytes-from-cache counter moves).
func TestSSSPCachedFullServing(t *testing.T) {
	ts, g := testServer(t)
	var first, second struct {
		Via  string  `json:"via"`
		Dist []int64 `json:"dist"`
	}
	if code := getJSON(t, ts.URL+"/sssp?src=42&full=1&solver=dijkstra", &first); code != 200 {
		t.Fatalf("first: %d", code)
	}
	if first.Via != "solve" {
		t.Fatalf("first via = %s, want solve", first.Via)
	}
	if code := getJSON(t, ts.URL+"/sssp?src=42&full=1&solver=dijkstra", &second); code != 200 {
		t.Fatalf("second: %d", code)
	}
	if second.Via != "cache" {
		t.Fatalf("second via = %s, want cache", second.Via)
	}
	want := dijkstra.SSSP(g, 42)
	for v := range want {
		w := want[v]
		if w == graph.Inf {
			w = -1
		}
		if first.Dist[v] != w || second.Dist[v] != w {
			t.Fatalf("dist[%d] = %d/%d, want %d", v, first.Dist[v], second.Dist[v], w)
		}
	}
	var m struct {
		Engine struct {
			CacheHits          int64 `json:"cache_hits"`
			FullJSONBuilt      int64 `json:"full_json_built"`
			FullBytesFromCache int64 `json:"full_bytes_from_cache"`
		} `json:"engine"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	if m.Engine.CacheHits != 1 || m.Engine.FullJSONBuilt != 1 || m.Engine.FullBytesFromCache <= 0 {
		t.Fatalf("cached serving counters: %+v", m.Engine)
	}
}
