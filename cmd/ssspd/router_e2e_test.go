package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/ch"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/loadgen"
	"repro/internal/router"
	"repro/internal/trace"
)

// bootBackend starts a hermetic ssspd serving the named workload graphs
// (from serveWorkloadGraphs; the first name is the startup graph). Each
// backend regenerates the graphs from their fixed seeds, so two backends
// serving the same name hold identical replicas — the property a replicated
// routing tier depends on.
func bootBackend(tb testing.TB, names ...string) *httptest.Server {
	tb.Helper()
	graphs := serveWorkloadGraphs()
	g0 := graphs[names[0]]
	if g0 == nil {
		tb.Fatalf("unknown workload graph %q", names[0])
	}
	srv := newServer(g0, ch.BuildKruskal(g0), names[0], catalog.Source{}, serverOptions{
		workers: 4, maxInflight: 256, timeout: 30 * time.Second,
		engine: engine.Config{CacheEntries: 64, CacheBytes: 8 << 20},
	})
	for _, n := range names[1:] {
		g := graphs[n]
		if g == nil {
			tb.Fatalf("unknown workload graph %q", n)
		}
		if _, err := srv.cat.AddPrebuilt(n, catalog.Source{}, g, ch.BuildKruskal(g), nil); err != nil {
			tb.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.mux())
	old := log.Writer()
	log.SetOutput(io.Discard)
	tb.Cleanup(func() {
		ts.Close()
		srv.cat.Close()
		log.SetOutput(old)
	})
	return ts
}

// routerBoot starts an ssspr routing tier over the given name -> base-URL
// fleet, health-checked every interval, retries on.
func routerBoot(tb testing.TB, interval time.Duration, backends map[string]string) (*httptest.Server, *router.Router) {
	tb.Helper()
	tbl := &router.Table{Version: 1, Replicas: 2}
	names := make([]string, 0, len(backends))
	for name := range backends {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		tbl.Backends = append(tbl.Backends, router.Backend{Name: name, URL: backends[name]})
	}
	rt, err := router.New(router.Config{
		Table:          tbl,
		HealthInterval: interval,
		HealthTimeout:  2 * time.Second,
		Timeout:        30 * time.Second,
		Retry:          true,
		RetryBudget:    1000,
		RetryBackoff:   time.Millisecond,
		Trace:          trace.Config{SampleN: 100},
	})
	if err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(rt.Mux())
	tb.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return ts, rt
}

// routeEligible asks the router which backends currently serve a graph.
func routeEligible(tb testing.TB, client *http.Client, baseURL, graphName string) []string {
	tb.Helper()
	resp, err := client.Get(baseURL + "/route?graph=" + graphName)
	if err != nil {
		tb.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Eligible []string `json:"eligible"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		tb.Fatal(err)
	}
	sort.Strings(doc.Eligible)
	return doc.Eligible
}

// checkRouterResult verifies one captured 200 response body against Dijkstra
// ground truth. Batch items that carry a per-item error (a failed shard) are
// reported as soft errors, not wrong answers; every DISTANCE present must be
// exact. Returns the number of per-item errors.
func checkRouterResult(t *testing.T, gt *groundTruth, req *loadgen.Request, res *loadgen.Result) int {
	t.Helper()
	switch req.Endpoint {
	case loadgen.EndpointSSSP:
		var resp struct {
			Src     int32   `json:"src"`
			Reached int     `json:"reached"`
			Dist    []int64 `json:"dist"`
		}
		if err := json.Unmarshal(res.Body, &resp); err != nil {
			t.Fatalf("request %d: %v (body %s)", req.Index, err, res.Body)
		}
		want := gt.of(t, req.Graph, req.Src)
		if resp.Reached != reachedOf(want) || len(resp.Dist) != len(want) {
			t.Fatalf("request %d (%s src %d): reached/len %d/%d, dijkstra says %d/%d",
				req.Index, req.Graph, req.Src, resp.Reached, len(resp.Dist), reachedOf(want), len(want))
		}
		for v, d := range want {
			wd := d
			if d >= graph.Inf {
				wd = -1
			}
			if resp.Dist[v] != wd {
				t.Fatalf("request %d: dist[%d] = %d via router, dijkstra says %d (graph %s src %d)",
					req.Index, v, resp.Dist[v], wd, req.Graph, req.Src)
			}
		}
	case loadgen.EndpointDist:
		var resp struct {
			Dist      int64 `json:"dist"`
			Reachable bool  `json:"reachable"`
		}
		if err := json.Unmarshal(res.Body, &resp); err != nil {
			t.Fatalf("request %d: %v (body %s)", req.Index, err, res.Body)
		}
		want := gt.of(t, req.Graph, req.Src)
		wd, reach := want[req.Dst], want[req.Dst] < graph.Inf
		if !reach {
			wd = -1
		}
		if resp.Dist != wd || resp.Reachable != reach {
			t.Fatalf("request %d: dist(%s, %d→%d) = %d/%v via router, dijkstra says %d/%v",
				req.Index, req.Graph, req.Src, req.Dst, resp.Dist, resp.Reachable, wd, reach)
		}
	case loadgen.EndpointBatch:
		var resp struct {
			Results []struct {
				Reached int    `json:"reached"`
				Error   string `json:"error"`
			} `json:"results"`
		}
		if err := json.Unmarshal(res.Body, &resp); err != nil {
			t.Fatalf("request %d: %v (body %s)", req.Index, err, res.Body)
		}
		if len(resp.Results) != len(req.Srcs) {
			t.Fatalf("request %d: %d batch results for %d queries (fan-out recombination lost items)",
				req.Index, len(resp.Results), len(req.Srcs))
		}
		itemErrs := 0
		for j, item := range resp.Results {
			if item.Error != "" {
				itemErrs++
				continue
			}
			want := gt.of(t, req.Graph, req.Srcs[j])
			if item.Reached != reachedOf(want) {
				t.Fatalf("request %d item %d: reached %d via router, dijkstra says %d (graph %s src %d)",
					req.Index, j, item.Reached, reachedOf(want), req.Graph, req.Srcs[j])
			}
		}
		return itemErrs
	}
	return 0
}

// End-to-end router correctness under failure: two backends with disjoint +
// replicated graphs (b1: wl-a and wl-b, b2: wl-b only) behind ssspr; a
// workload over both graphs runs while b2 is killed mid-run. Every 200 body
// must equal Dijkstra ground truth (zero wrong answers); failures are
// tolerated only in bounded number and only with proxy-failure statuses.
func TestRouterE2EGroundTruthWithBackendKill(t *testing.T) {
	b1 := bootBackend(t, "wl-a", "wl-b")
	b2 := bootBackend(t, "wl-b")
	rts, _ := routerBoot(t, 100*time.Millisecond, map[string]string{"b1": b1.URL, "b2": b2.URL})
	gt := newGroundTruth(t, serveWorkloadGraphs())

	w := &loadgen.Workload{Spec: loadgen.Spec{
		Name: "router-e2e", Version: 1, Seed: 17, Requests: 240,
		Mode: loadgen.ModeOpen, Rate: 400, // ~600ms schedule: the kill lands mid-run
		FullFraction: 1,
		BatchSize:    4,
		Graphs: []loadgen.GraphMix{
			{Graph: "wl-a", N: 512, Weight: 1},
			{Graph: "wl-b", N: 384, Weight: 1},
		},
		Endpoints: []loadgen.Weighted{
			{Name: loadgen.EndpointSSSP, Weight: 1},
			{Name: loadgen.EndpointDist, Weight: 1},
			{Name: loadgen.EndpointBatch, Weight: 1},
		},
		Solvers: []loadgen.Weighted{{Name: "", Weight: 1}, {Name: "dijkstra", Weight: 1}},
	}}

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(200 * time.Millisecond)
		b2.CloseClientConnections()
		b2.Close()
	}()
	out, err := loadgen.Run(context.Background(), w, loadgen.Options{
		BaseURL: rts.URL, Client: rts.Client(),
		TracePrefix: "router-e2e", CaptureBodies: true,
	})
	<-killed
	if err != nil {
		t.Fatal(err)
	}

	okCount, failed, itemErrs := 0, 0, 0
	for i := range out.Results {
		res := &out.Results[i]
		req := &w.Requests[i]
		if res.Status == 200 {
			okCount++
			itemErrs += checkRouterResult(t, gt, req, res)
			continue
		}
		// A kill mid-run may surface as a bounded number of proxy failures,
		// never as a wrong answer and never on wl-a (whose only replica lives).
		failed++
		if req.Graph == "wl-a" {
			t.Errorf("request %d on wl-a failed (%d %q); the kill only removed a wl-b replica",
				i, res.Status, res.Err)
		}
		switch res.Status {
		case 0, 502, 503, 504:
		default:
			t.Errorf("request %d: status %d outside the failure contract {502,503,504,transport}", i, res.Status)
		}
	}
	if okCount == 0 {
		t.Fatal("no request succeeded")
	}
	// With retry-on-another-replica the kill should be almost invisible;
	// allow a bounded sliver for requests caught inside b2 at the instant it
	// died on both attempts.
	if limit := len(out.Results) / 10; failed > limit {
		t.Fatalf("%d of %d requests failed, want <= %d (failover did not contain the kill)",
			failed, len(out.Results), limit)
	}
	if limit := len(out.Results) / 10; itemErrs > limit {
		t.Fatalf("%d batch items errored, want <= %d", itemErrs, limit)
	}

	// After one health interval the router must have evicted b2 for good:
	// wl-b queries keep working and route to b1 only.
	time.Sleep(150 * time.Millisecond)
	for i := 0; i < 10; i++ {
		resp, err := rts.Client().Get(rts.URL + fmt.Sprintf("/dist?graph=wl-b&src=%d&dst=7", i))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("post-kill wl-b query %d: status %d", i, resp.StatusCode)
		}
		if b := resp.Header.Get("X-Backend"); b != "b1" {
			t.Fatalf("post-kill wl-b query answered by %q, want b1", b)
		}
	}
	if got := routeEligible(t, rts.Client(), rts.URL, "wl-b"); len(got) != 1 || got[0] != "b1" {
		t.Fatalf("eligible(wl-b) = %v after kill, want [b1]", got)
	}
}

// Drain failover: unloading a graph on one backend under load must propagate
// through the health scrape within a few intervals, re-route new requests to
// the surviving replica, and complete every request of the run — the drain
// window is masked by the router's retry, so the client sees zero failures.
func TestRouterDrainFailover(t *testing.T) {
	const interval = 100 * time.Millisecond
	b1 := bootBackend(t, "wl-a", "wl-b")
	b2 := bootBackend(t, "wl-b")
	rts, _ := routerBoot(t, interval, map[string]string{"b1": b1.URL, "b2": b2.URL})

	if got := routeEligible(t, rts.Client(), rts.URL, "wl-b"); len(got) != 2 {
		t.Fatalf("eligible(wl-b) = %v before drain, want both", got)
	}

	w := &loadgen.Workload{Spec: loadgen.Spec{
		Name: "drain-failover", Version: 1, Seed: 23, Requests: 400,
		Mode: loadgen.ModeOpen, Rate: 800,
		Graphs: []loadgen.GraphMix{{Graph: "wl-b", N: 384, Weight: 1}},
	}}
	type runOut struct {
		out *loadgen.Outcome
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		out, err := loadgen.Run(context.Background(), w, loadgen.Options{
			BaseURL: rts.URL, Client: rts.Client(),
		})
		done <- runOut{out, err}
	}()

	time.Sleep(120 * time.Millisecond) // ~a fifth of the schedule in flight
	resp, err := b2.Client().Post(b2.URL+"/graphs/unload", "application/json",
		strings.NewReader(`{"name":"wl-b"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("unload: status %d", resp.StatusCode)
	}
	drainStart := time.Now()

	// The router must observe the drain via its scrape and shrink the
	// eligible set to b1 within a few health intervals.
	var rerouted time.Duration
	for {
		if got := routeEligible(t, rts.Client(), rts.URL, "wl-b"); len(got) == 1 && got[0] == "b1" {
			rerouted = time.Since(drainStart)
			break
		}
		if time.Since(drainStart) > 20*interval {
			t.Fatalf("router still routing to the draining backend %v after unload", time.Since(drainStart))
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Logf("re-routed %v after unload (health interval %v)", rerouted, interval)

	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	rep := loadgen.BuildReport(w, r.out)
	// Every request completes: requests caught on b2 during the drain window
	// are answered 503 by the backend and retried on b1 by the router.
	if rep.OK != rep.Requests || rep.Errors != 0 || rep.Shed != 0 {
		t.Fatalf("drain leaked failures through the router: ok=%d/%d errors=%d shed=%d status=%v",
			rep.OK, rep.Requests, rep.Errors, rep.Shed, rep.StatusCounts)
	}
	// The run must actually have exercised both replicas before the drain.
	if rep.PerBackend["b2"] == 0 {
		t.Fatalf("no request ever routed to b2 (per_backend %v); the drain was not under load", rep.PerBackend)
	}
	if rep.PerBackend["b1"] == 0 {
		t.Fatalf("no request ever routed to b1 (per_backend %v)", rep.PerBackend)
	}
}

// A stalled backend must trip the loadgen SLO gate THROUGH the router — the
// tier adds failover, not forgiveness: if the whole fleet is slow, the gate
// still fires.
func TestRouterStallTripsSLOGate(t *testing.T) {
	backend := bootBackend(t, "wl-a", "wl-b")
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !strings.HasPrefix(r.URL.Path, "/metrics") {
			time.Sleep(25 * time.Millisecond)
		}
		req, err := http.NewRequest(r.Method, backend.URL+r.URL.RequestURI(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := backend.Client().Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, v := range resp.Header {
			w.Header()[k] = v
		}
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer stalled.Close()
	rts, _ := routerBoot(t, time.Second, map[string]string{"slow": stalled.URL})

	w := readServeWorkload(t, "zipf-single.jsonl")
	w.Spec.Requests = 40
	w.Spec.Rate = 400
	w.Spec.SLO = &loadgen.SLO{P99Ms: 5}
	out, err := loadgen.Run(context.Background(), w, loadgen.Options{
		BaseURL: rts.URL, Client: rts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := loadgen.BuildReport(w, out)
	if rep.Latency.P99Ms < 20 {
		t.Fatalf("injected backend stall invisible through the router: p99 %.2fms", rep.Latency.P99Ms)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("25ms backend stall did not trip the 5ms p99 gate through the router")
	}
}
