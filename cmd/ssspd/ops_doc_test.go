package main

import (
	"net/http"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"
)

// OPERATIONS.md is the operator contract for this daemon. These tests keep it
// honest mechanically: every flag the binary declares and every metric key
// the live /metrics document emits must be mentioned there, so a flag or
// counter added without documentation fails `go test`.

func readOperationsMD(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../OPERATIONS.md")
	if err != nil {
		t.Fatalf("OPERATIONS.md must exist at the repo root: %v", err)
	}
	return string(data)
}

func TestOperationsDocCoversEveryFlag(t *testing.T) {
	ops := readOperationsMD(t)
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	flagDecl := regexp.MustCompile(`flag\.(?:String|Int|Int64|Uint64|Float64|Bool|Duration)\("([^"]+)"`)
	matches := flagDecl.FindAllStringSubmatch(string(src), -1)
	if len(matches) < 15 {
		t.Fatalf("found only %d flag declarations in main.go; the regex has rotted", len(matches))
	}
	for _, m := range matches {
		if !strings.Contains(ops, "`-"+m[1]+"`") {
			t.Errorf("flag -%s is not documented in OPERATIONS.md", m[1])
		}
	}
}

func TestOperationsDocCoversEveryMetricKey(t *testing.T) {
	ops := readOperationsMD(t)
	ts, _, _ := tracedServer(t, 1, time.Nanosecond)
	// Exercise enough of the system that every section materializes: a
	// single-graph solve (engine, thorup, tracing stage histograms) and a
	// batch.
	for _, url := range []string{"/sssp?src=1&solver=thorup", "/sssp?src=2"} {
		resp, err := http.Get(ts.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	var m map[string]any
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	statusClass := regexp.MustCompile(`^\dxx$`)
	var undocumented []string
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		obj, ok := v.(map[string]any)
		if !ok {
			return
		}
		for k, child := range obj {
			if statusClass.MatchString(k) {
				// Status classes are documented as a pattern ("2xx, 4xx, ...").
				continue
			}
			if !strings.Contains(ops, "`"+k+"`") {
				undocumented = append(undocumented, prefix+k)
			}
			walk(prefix+k+".", child)
		}
	}
	walk("", m)
	for _, k := range undocumented {
		t.Errorf("/metrics key %q is not documented in OPERATIONS.md", k)
	}
}
