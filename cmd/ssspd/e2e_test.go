package main

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/ch"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/loadgen"
	"repro/internal/par"
	"repro/internal/solver"
)

// groundTruth answers dijkstra distance vectors for the bench catalog's
// graphs via internal/solver — the reference the serving path is judged
// against — memoizing per (graph, source).
type groundTruth struct {
	mu        sync.Mutex
	instances map[string]*solver.Instance
	dist      map[string]map[int32][]int64
	solve     solver.Solver
}

func newGroundTruth(tb testing.TB, graphs map[string]*graph.Graph) *groundTruth {
	tb.Helper()
	sv, ok := solver.ByName("dijkstra")
	if !ok {
		tb.Fatal("no dijkstra in the solver registry")
	}
	gt := &groundTruth{
		instances: make(map[string]*solver.Instance),
		dist:      make(map[string]map[int32][]int64),
		solve:     sv,
	}
	for name, g := range graphs {
		gt.instances[name] = solver.NewInstance(g, par.NewExec(1))
		gt.dist[name] = make(map[int32][]int64)
	}
	return gt
}

func (gt *groundTruth) of(tb testing.TB, graphName string, src int32) []int64 {
	tb.Helper()
	gt.mu.Lock()
	defer gt.mu.Unlock()
	if d, ok := gt.dist[graphName][src]; ok {
		return d
	}
	in := gt.instances[graphName]
	if in == nil {
		tb.Fatalf("no ground-truth instance for graph %q", graphName)
	}
	d := gt.solve.Solve(in, []int32{src})
	gt.dist[graphName][src] = d
	return d
}

func reachedOf(dist []int64) int {
	n := 0
	for _, d := range dist {
		if d < graph.Inf {
			n++
		}
	}
	return n
}

// End-to-end serving-path correctness: a loadgen-generated workload covering
// every endpoint, both graphs, and solver overrides runs through
// HTTP → catalog → engine → solver → response, and every returned distance
// equals internal/solver Dijkstra ground truth computed directly on the same
// graphs.
func TestE2EServingPathGroundTruth(t *testing.T) {
	ts, _ := serveBenchBoot(t)
	gt := newGroundTruth(t, serveWorkloadGraphs())

	w := &loadgen.Workload{Spec: loadgen.Spec{
		Name: "e2e", Version: 1, Seed: 11, Requests: 60,
		Mode: loadgen.ModeClosed, Workers: 4,
		FullFraction: 1, // every sssp answer carries the full vector to check
		BatchSize:    4,
		Graphs: []loadgen.GraphMix{
			{Graph: "wl-a", N: 512, Weight: 1},
			{Graph: "wl-b", N: 384, Weight: 1},
		},
		Endpoints: []loadgen.Weighted{
			{Name: loadgen.EndpointSSSP, Weight: 1},
			{Name: loadgen.EndpointDist, Weight: 1},
			{Name: loadgen.EndpointBatch, Weight: 1},
		},
		Solvers: []loadgen.Weighted{{Name: "", Weight: 1}, {Name: "dijkstra", Weight: 1}},
	}}
	out, err := loadgen.Run(context.Background(), w, loadgen.Options{
		BaseURL: ts.URL, Client: ts.Client(),
		TracePrefix: "e2e", CaptureBodies: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	covered := map[string]int{}
	for i := range out.Results {
		res := &out.Results[i]
		req := &w.Requests[i] // results are indexed like the sequence
		if res.Status != 200 {
			t.Fatalf("request %d (%s %s): status %d err %q body %s",
				i, req.Endpoint, req.Graph, res.Status, res.Err, res.Body)
		}
		covered[req.Endpoint]++
		want := gt.of(t, req.Graph, req.Src)
		switch req.Endpoint {
		case loadgen.EndpointSSSP:
			var resp struct {
				Src     int32   `json:"src"`
				Reached int     `json:"reached"`
				Dist    []int64 `json:"dist"`
			}
			if err := json.Unmarshal(res.Body, &resp); err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			if resp.Src != req.Src || resp.Reached != reachedOf(want) {
				t.Fatalf("request %d: src/reached %d/%d, want %d/%d",
					i, resp.Src, resp.Reached, req.Src, reachedOf(want))
			}
			if len(resp.Dist) != len(want) {
				t.Fatalf("request %d: dist length %d, want %d", i, len(resp.Dist), len(want))
			}
			for v, d := range want {
				wd := d
				if d >= graph.Inf {
					wd = -1
				}
				if resp.Dist[v] != wd {
					t.Fatalf("request %d: dist[%d] = %d, dijkstra says %d (graph %s src %d)",
						i, v, resp.Dist[v], wd, req.Graph, req.Src)
				}
			}
		case loadgen.EndpointDist:
			var resp struct {
				Dist      int64 `json:"dist"`
				Reachable bool  `json:"reachable"`
			}
			if err := json.Unmarshal(res.Body, &resp); err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			wd, reach := want[req.Dst], want[req.Dst] < graph.Inf
			if !reach {
				wd = -1
			}
			if resp.Dist != wd || resp.Reachable != reach {
				t.Fatalf("request %d: dist(%s, %d→%d) = %d/%v, dijkstra says %d/%v",
					i, req.Graph, req.Src, req.Dst, resp.Dist, resp.Reachable, wd, reach)
			}
		case loadgen.EndpointBatch:
			var resp struct {
				Results []struct {
					Reached int    `json:"reached"`
					Error   string `json:"error"`
				} `json:"results"`
			}
			if err := json.Unmarshal(res.Body, &resp); err != nil {
				t.Fatalf("request %d: %v", i, err)
			}
			if len(resp.Results) != len(req.Srcs) {
				t.Fatalf("request %d: %d batch results for %d queries", i, len(resp.Results), len(req.Srcs))
			}
			for j, item := range resp.Results {
				if item.Error != "" {
					t.Fatalf("request %d item %d: %s", i, j, item.Error)
				}
				wantItem := gt.of(t, req.Graph, req.Srcs[j])
				if item.Reached != reachedOf(wantItem) {
					t.Fatalf("request %d item %d: reached %d, dijkstra says %d",
						i, j, item.Reached, reachedOf(wantItem))
				}
			}
		}
	}
	for _, ep := range []string{loadgen.EndpointSSSP, loadgen.EndpointDist, loadgen.EndpointBatch} {
		if covered[ep] == 0 {
			t.Fatalf("workload never exercised %s (coverage %v)", ep, covered)
		}
	}
}

// Drain under load: unloading a graph mid-run (the drain path a SIGTERM
// also walks) must answer every in-flight request, refuse later ones with
// 503 + Retry-After, and return the generation's refcount to zero.
func TestDrainUnderLoad(t *testing.T) {
	ts, srv := serveBenchBoot(t)
	gen, release, err := srv.cat.Acquire("wl-b")
	if err != nil {
		t.Fatal(err)
	}
	release() // we keep the pointer, not a reference

	w := &loadgen.Workload{Spec: loadgen.Spec{
		Name: "drain", Version: 1, Seed: 5, Requests: 300,
		Mode: loadgen.ModeOpen, Rate: 1000,
		Graphs: []loadgen.GraphMix{{Graph: "wl-b", N: 384, Weight: 1}},
	}}
	type runOut struct {
		out *loadgen.Outcome
		err error
	}
	done := make(chan runOut, 1)
	go func() {
		out, err := loadgen.Run(context.Background(), w, loadgen.Options{
			BaseURL: ts.URL, Client: ts.Client(),
		})
		done <- runOut{out, err}
	}()

	time.Sleep(100 * time.Millisecond) // ~a third of the schedule in flight
	resp, err := ts.Client().Post(ts.URL+"/graphs/unload", "application/json",
		strings.NewReader(`{"name":"wl-b"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("unload: status %d", resp.StatusCode)
	}

	r := <-done
	if r.err != nil {
		t.Fatal(r.err)
	}
	var ok, refused int
	for i := range r.out.Results {
		res := &r.out.Results[i]
		switch {
		case res.Status == 200:
			ok++
		case res.Status == 503 && res.RetryAfter:
			refused++
		default:
			t.Fatalf("request %d dropped or mis-answered: status %d err %q (drain must 200 or 503+Retry-After)",
				i, res.Status, res.Err)
		}
	}
	if ok == 0 || refused == 0 {
		t.Fatalf("drain split ok=%d refused=%d, want both > 0 (unload landed mid-run)", ok, refused)
	}

	select {
	case <-gen.Drained():
	case <-time.After(10 * time.Second):
		t.Fatalf("generation never drained; %d references still held", gen.InFlight())
	}
	if n := gen.InFlight(); n != 0 {
		t.Fatalf("drained generation holds %d references", n)
	}

	// The graph stays refused (not 404: it existed and may come back).
	code := func() int {
		resp, err := ts.Client().Get(ts.URL + "/sssp?src=0&graph=wl-b")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("post-drain refusal carries no Retry-After")
		}
		return resp.StatusCode
	}()
	if code != 503 {
		t.Fatalf("post-drain query: status %d, want 503", code)
	}
}

// Admission correctness under deliberate overload: a heavy cache-hostile
// open-loop run against maxInflight=2 must answer every request with one of
// 200, 503 + Retry-After, or 504; the daemon's shed counters must match the
// client's observed 503s exactly; and no answered request may exceed the
// daemon's -timeout by more than a scheduling epsilon.
func TestAdmissionShedCorrectness(t *testing.T) {
	const timeout = 500 * time.Millisecond
	const epsilon = 2 * time.Second // CI scheduling noise bound, not a perf claim

	g := gen.Random(30000, 120000, 1<<10, gen.UWD, 33)
	srv := newServer(g, ch.BuildKruskal(g), "heavy", catalog.Source{}, serverOptions{
		workers: 2, maxInflight: 2, timeout: timeout,
		engine: engine.Config{CacheEntries: 0}, // every query pays its solve
	})
	t.Cleanup(srv.cat.Close)
	ts := httptest.NewServer(srv.mux())
	oldLog := log.Writer()
	log.SetOutput(io.Discard)
	t.Cleanup(func() {
		ts.Close()
		log.SetOutput(oldLog)
	})

	w := &loadgen.Workload{Spec: loadgen.Spec{
		Name: "overload", Version: 1, Seed: 21, Requests: 200,
		Mode: loadgen.ModeOpen, Rate: 1500, CacheHostile: true,
		Graphs:  []loadgen.GraphMix{{Graph: "heavy", N: 30000, Weight: 1}},
		Solvers: []loadgen.Weighted{{Name: "dijkstra", Weight: 1}},
	}}
	out, err := loadgen.Run(context.Background(), w, loadgen.Options{
		BaseURL: ts.URL, Client: ts.Client(), ScrapeMetrics: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := loadgen.BuildReport(w, out)

	for i := range out.Results {
		res := &out.Results[i]
		switch {
		case res.Status == 200, res.Status == 504:
			if res.Latency > timeout+epsilon {
				t.Fatalf("request %d: answered %d after %v, > timeout %v + epsilon %v",
					i, res.Status, res.Latency, timeout, epsilon)
			}
		case res.Status == 503:
			if !res.RetryAfter {
				t.Fatalf("request %d: shed without Retry-After", i)
			}
		default:
			t.Fatalf("request %d: status %d err %q outside the admission contract {200, 503, 504}",
				i, res.Status, res.Err)
		}
	}
	if rep.Shed == 0 {
		t.Fatalf("offered 1500/s against maxInflight=2 and nothing shed: %+v", rep.StatusCounts)
	}
	if rep.Metrics == nil {
		t.Fatal("no metrics delta")
	}
	if daemonShed := rep.Metrics.TotalShed(); daemonShed != int64(rep.Shed) {
		t.Fatalf("daemon shed counters say %d, client observed %d 503s", daemonShed, rep.Shed)
	}
	if daemonTimeouts := rep.Metrics.TotalTimeouts(); daemonTimeouts != int64(rep.Timeouts) {
		t.Fatalf("daemon timeout counters say %d, client observed %d 504s", daemonTimeouts, rep.Timeouts)
	}
}
