// Command ssspd is a shortest-path query daemon: it serves a catalog of
// graphs, each with a Component Hierarchy built once and queried many times
// concurrently — the service shape the paper's shared-CH design is made for
// (one immutable hierarchy, many simultaneous traversals, cheap per-query
// state).
//
// Usage:
//
//	ssspd -gen rand -logn 16 -addr :8080
//	ssspd -graph city.gr -ch city.chb -workers 8 -max-inflight 64 -timeout 10s
//	ssspd -snapshot city.snap -mem-budget 2147483648
//
// Endpoints (all return JSON; query endpoints take ?graph=<name>, default
// the startup graph):
//
//	GET  /sssp?src=17              distances summary + optional full vector
//	GET  /sssp?src=17&full=1       include the distance vector
//	GET  /sssp?src=17&solver=delta force a specific solver (default: policy)
//	GET  /dist?src=17&dst=99       one source-target distance
//	GET  /st?s=17&t=99             one s-t distance (bidirectional Dijkstra)
//	GET  /table?src=1,2&dst=3,4    many-to-many distance table
//	POST /batch                    many queries in one request (JSON body)
//	GET  /graphs                   catalog listing: every graph's lifecycle state
//	POST /graphs/load              admin: load a graph (snapshot, file, or generator)
//	POST /graphs/reload            admin: rebuild a graph and hot-swap it in
//	POST /graphs/unload            admin: drain a graph out of service
//	POST /graphs/{name}/mutate     admin: apply a batch of edge mutations as a new generation
//	GET  /stats                    instance, hierarchy, cache, and catalog statistics
//	GET  /metrics                  per-endpoint + engine + catalog + tracing + cost-model + runtime metrics
//	GET  /debug/traces             retained request traces (span trees), filterable
//	GET  /debug/costmodel/dataset  cost-model training samples (JSON lines, oldest first)
//	POST /debug/costmodel/reload   admin: hot-reload the -cost-model coefficients file
//	GET  /healthz                  liveness
//
// Graphs live in an internal/catalog: background workers build hierarchies
// off the request path, swaps are atomic (in-flight queries finish on the
// generation they acquired), and a -mem-budget evicts idle graphs LRU-first.
// Format-v2 snapshots are served zero-copy straight from an mmap of the
// file (-mmap, default on); v1 snapshots and mmap-less platforms fall back
// to the copy read, and an unmap happens only after a retired generation's
// last in-flight query has released.
// Query execution runs through the internal/engine query plane: pooled
// solver state, singleflight deduplication of concurrent identical queries,
// a bounded LRU result cache (-cache-entries / -cache-bytes), and a
// policy-driven solver choice overridable with ?solver=.
//
// Query endpoints sit behind an admission controller: at most -max-inflight
// queries execute at once and excess load is shed with 503 + Retry-After.
// Each request carries a -timeout context deadline (exceeded queries answer
// 504). SIGINT/SIGTERM drain in-flight requests before exiting.
//
// Every query request is traced (internal/trace): the X-Trace-Id request
// header is honoured (or an ID generated and echoed back), spans record
// admission, catalog acquire, engine stages, and solver phases, and finished
// traces are tail-sampled (1 in -trace-sample, plus everything slower than
// -slow-query and everything with a client-supplied ID) into a ring of
// -trace-ring traces served by GET /debug/traces. Profiling via
// net/http/pprof is opt-in on a separate -pprof-addr listener so a CPU
// profile can never compete with query admission.
//
// A learned cost model (internal/costmodel) can replace the static solver
// ladder: -cost-model points at a coefficients file fitted offline by
// cmd/costfit from this daemon's own traces. Finished traces feed a bounded
// ring of training samples (-cost-samples) exported as JSON lines from
// GET /debug/costmodel/dataset; POST /debug/costmodel/reload swaps in new
// coefficients without a restart, and a missing, corrupt, or stale file
// degrades to the static policy rather than failing. With -admit-headroom
// set, the model also gates admission: a query whose predicted cost exceeds
// -timeout times the headroom factor is shed with 503 + Retry-After before
// it ever occupies a worker.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/catalog"
	"repro/internal/ch"
	"repro/internal/cli"
	"repro/internal/costmodel"
	"repro/internal/dijkstra"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/obs"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

func main() {
	var (
		graphFile    = flag.String("graph", "", "DIMACS .gr input file")
		snapFile     = flag.String("snapshot", "", "binary snapshot file for the startup graph (wins over -graph/-gen)")
		genClass     = flag.String("gen", "rand", "generator: rand, rmat, grid, geometric, smallworld")
		logN         = flag.Int("logn", 14, "generated size: n = 2^logn")
		logC         = flag.Int("logc", 14, "generated weights: C = 2^logc")
		seed         = flag.Uint64("seed", 1, "generator seed")
		workers      = flag.Int("workers", 4, "query workers")
		addr         = flag.String("addr", ":8080", "listen address")
		chFile       = flag.String("ch", "", "component hierarchy cache file")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request deadline for query endpoints (0 disables)")
		maxInflight  = flag.Int("max-inflight", 64, "concurrent query admission limit; excess load is shed with 503")
		drain        = flag.Duration("drain", 15*time.Second, "graceful shutdown drain budget")
		cacheEntries = flag.Int("cache-entries", 256, "result cache capacity in distance vectors per graph (0 disables)")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "result cache byte budget per graph (0 = entry-bounded only)")
		memBudget    = flag.Int64("mem-budget", 0, "memory budget in bytes for ready graphs; idle graphs are evicted LRU-first beyond it (0 = unlimited)")
		buildWorkers = flag.Int("build-workers", 2, "background graph build workers")
		useMmap      = flag.Bool("mmap", true, "serve v2 snapshots zero-copy via mmap (v1 snapshots and mmap-less platforms fall back to the copy read)")
		traceSample  = flag.Int("trace-sample", 100, "tail-sample 1 in N finished query traces into /debug/traces (0 disables tracing)")
		traceRing    = flag.Int("trace-ring", 256, "retained-trace ring buffer capacity for /debug/traces")
		slowQuery    = flag.Duration("slow-query", 0, "log and always retain query traces at least this slow (0 disables the slow-query log)")
		pprofAddr    = flag.String("pprof-addr", "", "serve net/http/pprof on this separate listener (empty disables profiling)")
		mutateThresh = flag.Float64("mutate-threshold", 0, "max fraction of vertices a mutation batch may touch and still repair the hierarchy incrementally; larger deltas rebuild in the background (0 = default 0.05, negative = always rebuild)")
		costModel    = flag.String("cost-model", "", "learned cost-model coefficients file (cmd/costfit output) driving solver selection; empty, missing, or stale keeps the static policy")
		admitHead    = flag.Float64("admit-headroom", 0, "predictive admission: shed queries whose model-predicted cost exceeds -timeout times this factor with 503 before they occupy a worker (0 disables)")
		costSamples  = flag.Int("cost-samples", 4096, "cost-model training-sample ring capacity exported by /debug/costmodel/dataset")
	)
	flag.Parse()

	var (
		g       *graph.Graph
		h       *ch.Hierarchy
		mapping *snapshot.Mapping
		name    string
		src     catalog.Source
		err     error
	)
	if *snapFile != "" {
		if *useMmap {
			g, h, mapping, err = snapshot.Map(*snapFile)
			if errors.Is(err, snapshot.ErrNotMappable) {
				log.Printf("ssspd: %s not mappable, falling back to copy read: %v", *snapFile, err)
				g, h, err = snapshot.ReadFile(*snapFile)
			}
		} else {
			g, h, err = snapshot.ReadFile(*snapFile)
		}
		name = *snapFile
		src = catalog.Source{Snapshot: *snapFile}
	} else {
		spec := cli.Spec{File: *graphFile, Class: *genClass, LogN: *logN, LogC: *logC, Seed: *seed}
		g, name, err = spec.Load()
		if err == nil {
			h = catalog.LoadOrBuildCH(g, *chFile, log.Printf)
			src = catalog.Source{Spec: spec, CHCache: *chFile}
		}
	}
	if err != nil {
		log.Fatalf("ssspd: %v", err)
	}
	srv := newServer(g, h, name, src, serverOptions{
		workers:      *workers,
		maxInflight:  *maxInflight,
		timeout:      *timeout,
		engine:       engine.Config{CacheEntries: *cacheEntries, CacheBytes: *cacheBytes},
		memBudget:    *memBudget,
		buildWorkers: *buildWorkers,
		mmap:         *useMmap,
		mapping:      mapping,
		mutateThresh: *mutateThresh,
		trace:        trace.Config{SampleN: *traceSample, RingSize: *traceRing, SlowQuery: *slowQuery},
		costModel:    *costModel,
		admitHead:    *admitHead,
		costSamples:  *costSamples,
	})
	defer srv.cat.Close()

	if *pprofAddr != "" {
		go servePprof(*pprofAddr)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.mux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		// The write timeout must outlive the slowest admitted query plus the
		// serialisation of a full=1 distance vector.
		WriteTimeout: writeTimeout(*timeout),
		IdleTimeout:  2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("ssspd: serving %s (n=%d m=%d, CH %d nodes) on %s (workers=%d max-inflight=%d timeout=%s cache=%d/%dB mem-budget=%d)",
		name, g.NumVertices(), g.NumEdges(), h.NumNodes(), *addr, *workers, *maxInflight, *timeout, *cacheEntries, *cacheBytes, *memBudget)
	if err := serve(ctx, hs, *drain); err != nil {
		log.Fatalf("ssspd: %v", err)
	}
	log.Printf("ssspd: drained, bye")
}

// serve runs the HTTP server until ctx is cancelled, then shuts it down
// gracefully, giving in-flight requests up to drain to complete.
func serve(ctx context.Context, hs *http.Server, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		return err // listen failed before any shutdown signal
	case <-ctx.Done():
	}
	log.Printf("ssspd: shutdown signal, draining in-flight requests (budget %s)", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return <-errc
}

func writeTimeout(queryTimeout time.Duration) time.Duration {
	if queryTimeout <= 0 {
		return 0 // unlimited queries: let Shutdown/drain bound them instead
	}
	return queryTimeout + 30*time.Second
}

// maxBatchItems caps one /batch request; larger workloads should paginate
// rather than hold one connection (and its admission token) for minutes.
const maxBatchItems = 4096

// serverOptions bundles the daemon's tunables.
type serverOptions struct {
	workers      int
	maxInflight  int
	timeout      time.Duration
	engine       engine.Config
	memBudget    int64
	buildWorkers int
	// mmap turns on zero-copy snapshot serving for catalog loads; mapping,
	// when non-nil, is the startup graph's own mapping (ownership passes to
	// its catalog generation).
	mmap    bool
	mapping *snapshot.Mapping
	// mutateThresh is the incremental-repair threshold for POST
	// /graphs/{name}/mutate (see catalog.Config.MutateThreshold).
	mutateThresh float64
	trace        trace.Config
	// costModel is the coefficients file loaded at startup (empty or
	// unloadable keeps the static policy); admitHead is the predictive
	// admission headroom factor (0 disables); costSamples sizes the
	// training-sample ring (<=0 = default 4096).
	costModel   string
	admitHead   float64
	costSamples int
}

// servePprof serves net/http/pprof on its own listener, explicitly routed so
// none of the profiling handlers ever appear on the query listener: a CPU
// profile or heap dump must not compete with query admission for connection
// or worker capacity.
func servePprof(addr string) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	log.Printf("ssspd: pprof listening on %s", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("ssspd: pprof listener: %v", err)
	}
}

// server fronts the graph catalog: every query resolves ?graph= (default:
// the startup graph) to a catalog generation, runs against that generation's
// private engine, and releases it when done — which is what lets reloads
// swap generations under live traffic without failing a single query.
type server struct {
	cat          *catalog.Catalog
	defaultGraph string
	ecfg         engine.Config

	metrics *obs.Registry
	tracer  *trace.Tracer
	sem     chan struct{} // admission: one token per in-flight query
	timeout time.Duration

	// costProv serves cost predictions to every generation's engine and is
	// the hot-reload point for new coefficients; collector rings the training
	// samples harvested from finished traces; admitHead > 0 turns on
	// predictive admission against timeout*admitHead.
	costProv  *costmodel.Provider
	collector *costmodel.Collector
	admitHead float64
}

func newServer(g *graph.Graph, h *ch.Hierarchy, name string, src catalog.Source, opts serverOptions) *server {
	if opts.maxInflight < 1 {
		opts.maxInflight = 1
	}
	if opts.engine.BatchWorkers == 0 {
		opts.engine.BatchWorkers = opts.workers
	}
	// The provider is installed in the engine template before the catalog is
	// built so every generation — the startup graph and every later load,
	// reload, and mutation — prices solvers through the same hot-reloadable
	// model. An unloadable file is a warning, not a fatal: the provider stays
	// empty and the static policy serves.
	costProv := costmodel.NewProvider()
	if opts.costModel != "" {
		if err := costProv.LoadFile(opts.costModel); err != nil {
			log.Printf("ssspd: cost model %s not loaded (static policy stays): %v", opts.costModel, err)
		} else {
			log.Printf("ssspd: cost model %s loaded (%d solvers)", opts.costModel, len(costProv.Model().Solvers()))
		}
	}
	opts.engine.CostModel = costProv
	cat := catalog.New(catalog.Config{
		Workers:         opts.buildWorkers,
		MemoryBudget:    opts.memBudget,
		QueryWorkers:    opts.workers,
		Engine:          opts.engine,
		MMap:            opts.mmap,
		MutateThreshold: opts.mutateThresh,
		Logf:            log.Printf,
	})
	if src.Loader == nil && src.Snapshot == "" && src.Spec == (cli.Spec{}) {
		// No reloadable source (tests, programmatic construction): reloads
		// reinstall the same prebuilt instance.
		src = catalog.Source{Loader: func() (*graph.Graph, *ch.Hierarchy, error) { return g, h, nil }}
	}
	if _, err := cat.AddPrebuilt(name, src, g, h, opts.mapping); err != nil {
		panic(err) // fresh catalog: the only failure is a duplicate name
	}
	if opts.costSamples <= 0 {
		opts.costSamples = 4096
	}
	collector := costmodel.NewCollector(opts.costSamples)
	tcfg := opts.trace
	if tcfg.Logf == nil {
		tcfg.Logf = func(format string, args ...any) { log.Printf("ssspd: "+format, args...) }
	}
	// Every finished trace — retained by the sampler or not — contributes its
	// executed solves as training samples, joined with the serving
	// generation's graph features at harvest time.
	tcfg.OnFinish = func(tr *trace.Trace) {
		for _, rec := range tr.SolveRecords() {
			f, genNum, ok := cat.Features(rec.Graph)
			if !ok {
				continue // unloaded or mid-swap: no features to join against
			}
			collector.Add(costmodel.Sample{
				Graph: rec.Graph, Gen: genNum, Solver: rec.Solver,
				N: f.N, M: f.M, MaxWeight: f.MaxWeight,
				Sources: rec.Sources, DurUS: rec.DurUS, Counters: rec.Counters,
			})
		}
	}
	return &server{
		cat:          cat,
		defaultGraph: name,
		ecfg:         opts.engine,
		metrics: obs.NewRegistry("healthz", "stats", "metrics", "sssp", "dist", "st", "table", "batch",
			"graphs", "graphs_load", "graphs_reload", "graphs_unload", "graphs_mutate", "debug_traces",
			"costmodel_dataset", "costmodel_reload"),
		tracer:    trace.New(tcfg),
		sem:       make(chan struct{}, opts.maxInflight),
		timeout:   opts.timeout,
		costProv:  costProv,
		collector: collector,
		admitHead: opts.admitHead,
	}
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("GET /healthz", s.instrument("healthz", false, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	}))
	m.HandleFunc("GET /stats", s.instrument("stats", false, s.handleStats))
	m.HandleFunc("GET /metrics", s.instrument("metrics", false, s.handleMetrics))
	m.HandleFunc("GET /sssp", s.instrument("sssp", true, s.handleSSSP))
	m.HandleFunc("GET /dist", s.instrument("dist", true, s.handleDist))
	m.HandleFunc("GET /st", s.instrument("st", true, s.handleST))
	m.HandleFunc("GET /table", s.instrument("table", true, s.handleTable))
	m.HandleFunc("POST /batch", s.instrument("batch", true, s.handleBatch))
	m.HandleFunc("GET /graphs", s.instrument("graphs", false, s.handleGraphs))
	m.HandleFunc("POST /graphs/load", s.instrument("graphs_load", false, s.handleGraphLoad))
	m.HandleFunc("POST /graphs/reload", s.instrument("graphs_reload", false, s.handleGraphReload))
	m.HandleFunc("POST /graphs/unload", s.instrument("graphs_unload", false, s.handleGraphUnload))
	m.HandleFunc("POST /graphs/{name}/mutate", s.instrument("graphs_mutate", false, s.handleGraphMutate))
	m.HandleFunc("GET /debug/traces", s.instrument("debug_traces", false, s.handleDebugTraces))
	m.HandleFunc("GET /debug/costmodel/dataset", s.instrument("costmodel_dataset", false, s.handleCostModelDataset))
	m.HandleFunc("POST /debug/costmodel/reload", s.instrument("costmodel_reload", false, s.handleCostModelReload))
	return m
}

// instrument wraps a handler with the daemon's middleware: in-flight gauge,
// request counting, latency histogram, status classing, structured access
// logging, and — for query endpoints (admit=true) — request tracing,
// semaphore admission control, and the per-request context deadline.
//
// Tracing covers query endpoints only: a trace is started per request (under
// the client's X-Trace-Id when one is supplied; the resolved ID is echoed in
// the response header either way), the admission decision is recorded as an
// "admission_wait" span, and the finished trace is handed to the tracer for
// tail sampling, slow-query logging, and the stage histograms.
func (s *server) instrument(name string, admit bool, h http.HandlerFunc) http.HandlerFunc {
	ep := s.metrics.Endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ep.InFlight.Inc()
		defer ep.InFlight.Dec()
		rw := &statusWriter{ResponseWriter: w}

		var tr *trace.Trace
		if admit {
			tr = s.tracer.StartRequest(r.Header.Get("X-Trace-Id"), name)
			if tr != nil {
				rw.Header().Set("X-Trace-Id", tr.ID())
				r = r.WithContext(trace.NewContext(r.Context(), tr))
			}
			adm := tr.StartSpan("admission_wait")
			select {
			case s.sem <- struct{}{}:
				adm.End()
				defer func() { <-s.sem }()
			default:
				// Saturated: shed instead of queueing unboundedly. The client
				// is told when to come back; a well-behaved one backs off.
				adm.SetAttr("shed", true)
				adm.End()
				ep.Shed.Inc()
				rw.Header().Set("Retry-After", "1")
				httpError(rw, http.StatusServiceUnavailable, "overloaded: query admission limit reached")
				s.finish(name, ep, rw, r, start, tr)
				return
			}
			if s.timeout > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		h(rw, r)
		s.finish(name, ep, rw, r, start, tr)
	}
}

// finish records the completed request in the endpoint metrics, seals its
// trace, and emits one structured access-log line.
func (s *server) finish(name string, ep *obs.Endpoint, rw *statusWriter, r *http.Request, start time.Time, tr *trace.Trace) {
	d := time.Since(start)
	ep.Requests.Inc()
	ep.Latency.Observe(d)
	ep.RecordStatus(rw.Status())
	if rw.Status() == http.StatusGatewayTimeout {
		ep.Timeout.Inc()
	}
	s.tracer.Finish(tr, rw.Status())
	log.Printf("ssspd: access endpoint=%s method=%s path=%q status=%d bytes=%d dur=%s remote=%s",
		name, r.Method, truncate(r.URL.RequestURI(), 256), rw.Status(), rw.bytes, d.Round(time.Microsecond), r.RemoteAddr)
}

// truncate caps a logged string: a /table request can carry a multi-kilobyte
// query string, which would make the access log unreadable.
func truncate(s string, max int) string {
	if len(s) <= max {
		return s
	}
	return s[:max] + fmt.Sprintf("...(%d bytes)", len(s))
}

// statusWriter captures the status code and body size of a response.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// graphFor resolves ?graph= (default: the startup graph) to an acquired
// catalog generation. On failure the HTTP error is already written: 404 for
// a name the catalog has never seen, 500 for a failed load, 503 +
// Retry-After while loading/building/draining/evicted.
func (s *server) graphFor(w http.ResponseWriter, r *http.Request) (*catalog.Generation, func(), bool) {
	name := r.URL.Query().Get("graph")
	if name == "" {
		name = s.defaultGraph
	}
	gen, release, err := s.cat.AcquireTraced(r.Context(), name)
	if err == nil {
		return gen, release, true
	}
	var nr *catalog.NotReadyError
	switch {
	case errors.Is(err, catalog.ErrUnknownGraph):
		httpError(w, http.StatusNotFound, err.Error())
	case errors.As(err, &nr) && nr.State == catalog.StateFailed:
		httpError(w, http.StatusInternalServerError, err.Error())
	case errors.As(err, &nr):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, err.Error())
	default:
		httpError(w, http.StatusInternalServerError, err.Error())
	}
	return nil, nil, false
}

// queryError is a handler result that should be written as an HTTP error
// instead of a 200 body.
type queryError struct {
	code int
	msg  string
}

// errResp maps an engine error to its HTTP form: request mistakes are the
// client's fault (400), expired contexts are a timeout (504).
func errResp(err error) any {
	switch {
	case errors.Is(err, engine.ErrBadQuery):
		return queryError{http.StatusBadRequest, err.Error()}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return queryError{http.StatusGatewayTimeout, "query deadline exceeded"}
	default:
		return queryError{http.StatusInternalServerError, err.Error()}
	}
}

// runWithDeadline executes fn and writes its result as JSON (or as an HTTP
// error for a queryError result), answering 504 if the request's deadline
// expires first. A traversal cannot be cancelled mid-flight, so on timeout
// fn keeps running in the background — its result still lands in the engine
// cache — while the client is unblocked immediately. release (idempotent) is
// invoked when fn completes, not when the client is answered: a query that
// outlives its deadline keeps its generation reference until it finishes, so
// a concurrent swap's drain waits for it.
func runWithDeadline(w http.ResponseWriter, r *http.Request, release func(), fn func() any) {
	if err := r.Context().Err(); err != nil {
		release()
		httpError(w, http.StatusGatewayTimeout, "deadline exceeded before query start")
		return
	}
	done := make(chan any, 1)
	go func() {
		defer release()
		done <- fn()
	}()
	select {
	case resp := <-done:
		if qe, ok := resp.(queryError); ok {
			httpError(w, qe.code, qe.msg)
			return
		}
		writeJSON(w, resp)
	case <-r.Context().Done():
		httpError(w, http.StatusGatewayTimeout, "query deadline exceeded")
	}
}

// admitPredicted is the predictive half of admission control: before a query
// occupies a worker goroutine, ask the cost model what it will cost. A
// prediction over timeout*admitHead is a query that will blow its deadline
// anyway — shed it now with 503 + Retry-After so the worker slot goes to a
// query that can finish. Returns false (response written, generation
// released) when the request was rejected. Advisory only: no model, no
// prediction, or headroom disabled all admit, and a malformed request is
// admitted so the engine surfaces its usual 400.
func (s *server) admitPredicted(w http.ResponseWriter, r *http.Request, gen *catalog.Generation, release func(),
	reqs ...engine.Request) bool {
	if s.admitHead <= 0 || s.timeout <= 0 {
		return true
	}
	limit := time.Duration(float64(s.timeout) * s.admitHead)
	for _, req := range reqs {
		name, cost, ok, err := gen.Engine.PredictCost(req)
		if err != nil || !ok {
			continue
		}
		if cost > limit {
			s.costProv.CountAdmissionRejected()
			sp := trace.FromContext(r.Context()).StartSpan("predictive_admission")
			sp.SetAttr("solver", name)
			sp.SetAttr("predicted_us", cost.Microseconds())
			sp.SetAttr("rejected", true)
			sp.End()
			release()
			w.Header().Set("Retry-After", "1")
			httpError(w, http.StatusServiceUnavailable, fmt.Sprintf(
				"predicted cost %s exceeds admission limit %s (solver %s): retry later or narrow the query",
				cost.Round(time.Microsecond), limit.Round(time.Microsecond), name))
			return false
		}
	}
	return true
}

// query runs one engine query on the acquired generation under the request's
// deadline and shapes the response with fn.
func (s *server) query(w http.ResponseWriter, r *http.Request, gen *catalog.Generation, release func(),
	req engine.Request, fn func(res *engine.Result, via engine.Via) any) {
	if !s.admitPredicted(w, r, gen, release, req) {
		return
	}
	runWithDeadline(w, r, release, func() any {
		res, via, err := gen.Engine.Query(r.Context(), req)
		if err != nil {
			return errResp(err)
		}
		return fn(res, via)
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	gen, release, ok := s.graphFor(w, r)
	if !ok {
		return
	}
	defer release()
	st := gen.H.ComputeStats()
	writeJSON(w, map[string]any{
		"instance":      gen.Name,
		"generation":    gen.Gen,
		"vertices":      gen.G.NumVertices(),
		"edges":         gen.G.NumEdges(),
		"maxWeight":     gen.G.MaxWeight(),
		"chNodes":       st.Components,
		"chHeight":      st.Height,
		"chAvgChildren": st.AvgChildren,
		"chBytes":       st.CHBytes,
		// Arithmetic from the hierarchy's dimensions — no query allocation.
		"instanceBytes":   gen.Engine.InstanceBytes(),
		"cacheMaxEntries": s.ecfg.CacheEntries,
		"cacheMaxBytes":   s.ecfg.CacheBytes,
		"batchWorkers":    s.ecfg.BatchWorkers,
		"catalog":         s.cat.StatsSnapshot(),
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	doc := map[string]any{
		"instance":       s.defaultGraph,
		"uptime_seconds": s.metrics.UptimeSeconds(),
		"inflight_limit": cap(s.sem),
		"endpoints":      s.metrics.Snapshot(),
		"catalog":        s.cat.StatsSnapshot(),
		"tracing":        s.tracer.StatsSnapshot(),
		"runtime":        obs.ReadRuntimeStats(),
		"costmodel":      s.costModelSnapshot(),
	}
	// Engine and Thorup sections come from the default graph's current
	// generation; while it is unavailable (draining, reloading after a
	// failure) the catalog-level metrics above still serve.
	if gen, release, err := s.cat.Acquire(s.defaultGraph); err == nil {
		agg, runs := gen.Engine.ThorupTrace()
		doc["generation"] = gen.Gen
		doc["engine"] = gen.Engine.StatsSnapshot()
		doc["thorup"] = map[string]any{
			"queries":             runs,
			"settled":             agg.Settled,
			"relaxations":         agg.Relaxations,
			"propagation_hops":    agg.PropagationHops,
			"hops_per_relaxation": agg.HopsPerRelaxation(),
			"gathers":             agg.Gathers,
			"gather_scanned":      agg.GatherScanned,
			"gather_taken":        agg.GatherTaken,
			"bucket_advances":     agg.BucketAdvances,
			"max_tovisit":         agg.MaxTovisit,
		}
		release()
	}
	writeJSON(w, doc)
}

// costModelSnapshot is the /metrics cost-model section: provider state
// (model identity, prediction counters and error histograms) plus the
// training-sample collector's fill level.
func (s *server) costModelSnapshot() map[string]any {
	doc := s.costProv.StatsSnapshot()
	doc["admission_headroom"] = s.admitHead
	doc["samples_held"] = s.collector.Len()
	doc["samples_collected"] = s.collector.Total()
	doc["dataset_version"] = costmodel.DatasetVersion
	return doc
}

// handleDebugTraces serves the retained request traces, newest first.
// Filters: ?min_ms= keeps traces at least that slow, ?graph= and ?solver=
// match the trace's resolved graph and solver, ?limit= caps the count
// (default 50).
func (s *server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := trace.Filter{Graph: q.Get("graph"), Solver: q.Get("solver"), Limit: 50}
	if raw := q.Get("min_ms"); raw != "" {
		ms, err := strconv.ParseFloat(raw, 64)
		if err != nil || ms < 0 {
			httpError(w, http.StatusBadRequest, "min_ms must be a non-negative number of milliseconds")
			return
		}
		f.MinDur = time.Duration(ms * float64(time.Millisecond))
	}
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		f.Limit = n
	}
	writeJSON(w, map[string]any{
		"enabled": s.tracer.Enabled(),
		"held":    s.tracer.Retained(),
		"traces":  s.tracer.Traces(f),
	})
}

// handleCostModelDataset streams the training-sample ring as JSON lines
// (one costmodel.Sample per line, oldest first) — the dataset cmd/costfit
// consumes. The ring keeps serving across reloads; the v field on each line
// pins the dataset schema version.
func (s *server) handleCostModelDataset(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Dataset-Version", strconv.Itoa(costmodel.DatasetVersion))
	if _, err := s.collector.WriteJSONL(w); err != nil {
		log.Printf("ssspd: dataset write: %v", err)
	}
}

// costModelReloadRequest optionally overrides the file to load; the default
// is the -cost-model path (or the last successfully loaded path).
type costModelReloadRequest struct {
	Path string `json:"path,omitempty"`
}

// handleCostModelReload re-reads the coefficients file and swaps it in
// atomically. A file that fails validation (corrupt, checksum mismatch,
// stale version) is a 400 and the previous model keeps serving.
func (s *server) handleCostModelReload(w http.ResponseWriter, r *http.Request) {
	var req costModelReloadRequest
	if !decodeAdminBody(w, r, &req) {
		return
	}
	path := req.Path
	if path == "" {
		path = s.costProv.Path()
	}
	if path == "" {
		httpError(w, http.StatusBadRequest, "no cost-model path: pass {\"path\": ...} or start with -cost-model")
		return
	}
	if err := s.costProv.LoadFile(path); err != nil {
		httpError(w, http.StatusBadRequest, "cost model not reloaded (previous model keeps serving): "+err.Error())
		return
	}
	m := s.costProv.Model()
	log.Printf("ssspd: cost model reloaded from %s (%d solvers)", path, len(m.Solvers()))
	writeJSON(w, map[string]any{"status": "reloaded", "path": path, "solvers": m.Solvers()})
}

func (s *server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, map[string]any{
		"default": s.defaultGraph,
		"graphs":  s.cat.Status(),
	})
}

// loadRequest is the /graphs/load body: a name plus a source — a snapshot
// path, a DIMACS file, or a generator spec (with an optional CH cache file).
type loadRequest struct {
	Name     string `json:"name"`
	Snapshot string `json:"snapshot,omitempty"`
	File     string `json:"file,omitempty"`
	Class    string `json:"class,omitempty"`
	LogN     int    `json:"logn,omitempty"`
	LogC     int    `json:"logc,omitempty"`
	PWD      bool   `json:"pwd,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`
	CH       string `json:"ch,omitempty"`
}

func decodeAdminBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		httpError(w, http.StatusBadRequest, "bad body: "+err.Error())
		return false
	}
	return true
}

// adminError maps a catalog admin error: unknown names are 404, lifecycle
// conflicts (already loaded, mid-build, draining) are 409.
func adminError(w http.ResponseWriter, err error) {
	if errors.Is(err, catalog.ErrUnknownGraph) {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	httpError(w, http.StatusConflict, err.Error())
}

func (s *server) handleGraphLoad(w http.ResponseWriter, r *http.Request) {
	var req loadRequest
	if !decodeAdminBody(w, r, &req) {
		return
	}
	if req.Name == "" {
		httpError(w, http.StatusBadRequest, "name required")
		return
	}
	if req.Snapshot == "" && req.File == "" && req.Class == "" {
		httpError(w, http.StatusBadRequest, "source required: snapshot, file, or class")
		return
	}
	src := catalog.Source{
		Snapshot: req.Snapshot,
		Spec:     cli.Spec{File: req.File, Class: req.Class, LogN: req.LogN, LogC: req.LogC, PWD: req.PWD, Seed: req.Seed},
		CHCache:  req.CH,
	}
	if err := s.cat.Load(req.Name, src); err != nil {
		adminError(w, err)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]string{"status": "loading", "name": req.Name})
}

type nameRequest struct {
	Name string `json:"name"`
}

func (s *server) handleGraphReload(w http.ResponseWriter, r *http.Request) {
	var req nameRequest
	if !decodeAdminBody(w, r, &req) {
		return
	}
	gen, err := s.cat.Reload(req.Name)
	if err != nil {
		adminError(w, err)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	writeJSON(w, map[string]any{"status": "reloading", "name": req.Name, "gen": gen})
}

func (s *server) handleGraphUnload(w http.ResponseWriter, r *http.Request) {
	var req nameRequest
	if !decodeAdminBody(w, r, &req) {
		return
	}
	if err := s.cat.Unload(req.Name); err != nil {
		adminError(w, err)
		return
	}
	writeJSON(w, map[string]string{"status": "unloading", "name": req.Name})
}

// handleGraphMutate applies a JSON batch of edge mutations (set_weight,
// insert, delete) to the named graph. Small deltas repair the hierarchy
// incrementally and answer 200 with the new generation already serving;
// deltas over the threshold answer 202 and rebuild in the background. A
// malformed or invalid batch is 400, an unknown graph 404, and a graph
// mid-build (or otherwise not ready) 409 — nothing is applied in that case,
// so the client can simply retry after the build completes.
func (s *server) handleGraphMutate(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	b, err := mutate.ParseRequest(r.Body)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad mutation batch: "+err.Error())
		return
	}
	res, err := s.cat.Mutate(name, b)
	if err != nil {
		if errors.Is(err, mutate.ErrInvalid) {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		adminError(w, err)
		return
	}
	if res.Fallback {
		w.WriteHeader(http.StatusAccepted)
		writeJSON(w, map[string]any{
			"status": "rebuilding", "name": name, "gen": res.Gen,
			"fallback": true, "touched": res.Touched,
		})
		return
	}
	writeJSON(w, map[string]any{
		"status": "mutated", "name": name, "gen": res.Gen,
		"touched": res.Touched, "aliased": res.Aliased,
	})
}

// summary is the common response shape of one answered query.
func summary(res *engine.Result, via engine.Via) map[string]any {
	return map[string]any{
		"solver":       res.Solver,
		"via":          via.String(),
		"reached":      res.Reached,
		"eccentricity": res.Eccentricity,
	}
}

func (s *server) handleSSSP(w http.ResponseWriter, r *http.Request) {
	gen, release, ok := s.graphFor(w, r)
	if !ok {
		return
	}
	src, ok := vertexParam(w, r, "src", gen.G)
	if !ok {
		release()
		return
	}
	full := r.URL.Query().Get("full") == "1"
	req := engine.Request{Sources: []int32{src}, Solver: r.URL.Query().Get("solver")}
	s.query(w, r, gen, release, req, func(res *engine.Result, via engine.Via) any {
		resp := summary(res, via)
		resp["src"] = src
		if full {
			// The serialized vector (Inf as -1) is built once per result and
			// streamed verbatim on every later hit — no re-marshal.
			resp["dist"] = json.RawMessage(res.DistJSON())
		}
		return resp
	})
}

func (s *server) handleDist(w http.ResponseWriter, r *http.Request) {
	gen, release, ok := s.graphFor(w, r)
	if !ok {
		return
	}
	src, ok := vertexParam(w, r, "src", gen.G)
	if !ok {
		release()
		return
	}
	dst, ok := vertexParam(w, r, "dst", gen.G)
	if !ok {
		release()
		return
	}
	req := engine.Request{Sources: []int32{src}, Solver: r.URL.Query().Get("solver")}
	s.query(w, r, gen, release, req, func(res *engine.Result, via engine.Via) any {
		d := res.Dist[dst]
		return map[string]any{
			"src": src, "dst": dst,
			"dist": jsonDist(d), "reachable": d < graph.Inf,
			"solver": res.Solver, "via": via.String(),
		}
	})
}

func (s *server) handleST(w http.ResponseWriter, r *http.Request) {
	gen, release, ok := s.graphFor(w, r)
	if !ok {
		return
	}
	src, ok := vertexParam(w, r, "s", gen.G)
	if !ok {
		release()
		return
	}
	dst, ok := vertexParam(w, r, "t", gen.G)
	if !ok {
		release()
		return
	}
	runWithDeadline(w, r, release, func() any {
		d := dijkstra.STDistance(gen.G, src, dst)
		return map[string]any{"s": src, "t": dst, "dist": jsonDist(d), "reachable": d < graph.Inf}
	})
}

func (s *server) handleTable(w http.ResponseWriter, r *http.Request) {
	gen, release, ok := s.graphFor(w, r)
	if !ok {
		return
	}
	sources, ok := vertexListParam(w, r, "src", gen.G)
	if !ok {
		release()
		return
	}
	targets, ok := vertexListParam(w, r, "dst", gen.G)
	if !ok {
		release()
		return
	}
	if len(sources)*len(targets) > 1<<20 {
		release()
		httpError(w, http.StatusBadRequest, "table too large")
		return
	}
	// One engine query per row: rows flow through the worker pool, the cache,
	// and the deduplicator like any other query, so a hot row is free.
	solverName := r.URL.Query().Get("solver")
	reqs := make([]engine.Request, len(sources))
	for i, src := range sources {
		reqs[i] = engine.Request{Sources: []int32{src}, Solver: solverName}
	}
	if !s.admitPredicted(w, r, gen, release, reqs...) {
		return
	}
	runWithDeadline(w, r, release, func() any {
		results := gen.Engine.Batch(r.Context(), reqs)
		out := make([][]int64, len(results))
		for i, br := range results {
			if br.Err != nil {
				return errResp(br.Err)
			}
			out[i] = make([]int64, len(targets))
			for j, t := range targets {
				out[i][j] = jsonDist(br.Res.Dist[t])
			}
		}
		return map[string]any{"src": sources, "dst": targets, "dist": out}
	})
}

// batchItem is one query of a /batch request: src or srcs (multi-source),
// plus an optional per-item solver override.
type batchItem struct {
	Src    *int32  `json:"src,omitempty"`
	Srcs   []int32 `json:"srcs,omitempty"`
	Solver string  `json:"solver,omitempty"`
}

// batchRequest is the /batch body. Solver and Full apply to every item
// unless the item overrides the solver itself.
type batchRequest struct {
	Queries []batchItem `json:"queries"`
	Solver  string      `json:"solver,omitempty"`
	Full    bool        `json:"full,omitempty"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	gen, release, ok := s.graphFor(w, r)
	if !ok {
		return
	}
	var breq batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		release()
		httpError(w, http.StatusBadRequest, "bad batch body: "+err.Error())
		return
	}
	if len(breq.Queries) == 0 {
		release()
		httpError(w, http.StatusBadRequest, "batch has no queries")
		return
	}
	if len(breq.Queries) > maxBatchItems {
		release()
		httpError(w, http.StatusBadRequest, fmt.Sprintf("batch too large: %d queries (max %d)", len(breq.Queries), maxBatchItems))
		return
	}
	reqs := make([]engine.Request, len(breq.Queries))
	for i, it := range breq.Queries {
		srcs := it.Srcs
		if it.Src != nil {
			srcs = append(srcs, *it.Src)
		}
		name := it.Solver
		if name == "" {
			name = breq.Solver
		}
		reqs[i] = engine.Request{Sources: srcs, Solver: name}
	}
	if !s.admitPredicted(w, r, gen, release, reqs...) {
		return
	}
	// Every item inherits the request's trace ID: batch items are spans of
	// the parent trace, not traces of their own, so one slow item is found
	// by the one ID the client already holds.
	traceID := trace.FromContext(r.Context()).ID()
	runWithDeadline(w, r, release, func() any {
		results := gen.Engine.Batch(r.Context(), reqs)
		out := make([]map[string]any, len(results))
		for i, br := range results {
			if br.Err != nil {
				qe := errResp(br.Err).(queryError)
				out[i] = map[string]any{"error": qe.msg, "status": qe.code}
			} else {
				out[i] = summary(br.Res, br.Via)
				if breq.Full {
					out[i]["dist"] = json.RawMessage(br.Res.DistJSON())
				}
			}
			if traceID != "" {
				out[i]["trace_id"] = traceID
			}
		}
		return map[string]any{"results": out}
	})
}

func vertexParam(w http.ResponseWriter, r *http.Request, name string, g *graph.Graph) (int32, bool) {
	raw := r.URL.Query().Get(name)
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil || v < 0 || int(v) >= g.NumVertices() {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parameter %q must be a vertex in [0,%d)", name, g.NumVertices()))
		return 0, false
	}
	return int32(v), true
}

func vertexListParam(w http.ResponseWriter, r *http.Request, name string, g *graph.Graph) ([]int32, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parameter %q required (comma-separated vertices)", name))
		return nil, false
	}
	parts := strings.Split(raw, ",")
	out := make([]int32, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
		if err != nil || v < 0 || int(v) >= g.NumVertices() {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad vertex %q in %q", p, name))
			return nil, false
		}
		out = append(out, int32(v))
	}
	return out, true
}

func jsonDist(d int64) int64 {
	if d >= graph.Inf {
		return -1
	}
	return d
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("ssspd: encode: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
