// Command ssspd is a shortest-path query daemon: it loads (or generates) a
// graph, builds the Component Hierarchy once, and serves concurrent queries
// over HTTP — the service shape the paper's shared-CH design is made for
// (one immutable hierarchy, many simultaneous traversals, cheap per-query
// state).
//
// Usage:
//
//	ssspd -gen rand -logn 16 -addr :8080
//	ssspd -graph city.gr -ch city.chb -workers 8 -max-inflight 64 -timeout 10s
//
// Endpoints (all return JSON):
//
//	GET  /sssp?src=17              distances summary + optional full vector
//	GET  /sssp?src=17&full=1       include the distance vector
//	GET  /sssp?src=17&solver=delta force a specific solver (default: policy)
//	GET  /dist?src=17&dst=99       one source-target distance
//	GET  /st?s=17&t=99             one s-t distance (bidirectional Dijkstra)
//	GET  /table?src=1,2&dst=3,4    many-to-many distance table
//	POST /batch                    many queries in one request (JSON body)
//	GET  /stats                    instance, hierarchy, and cache statistics
//	GET  /metrics                  per-endpoint + engine metrics, Thorup trace
//	GET  /healthz                  liveness
//
// Query execution runs through the internal/engine query plane: pooled
// solver state, singleflight deduplication of concurrent identical queries,
// a bounded LRU result cache (-cache-entries / -cache-bytes), and a
// policy-driven solver choice overridable with ?solver=.
//
// Query endpoints sit behind an admission controller: at most -max-inflight
// queries execute at once and excess load is shed with 503 + Retry-After.
// Each request carries a -timeout context deadline (exceeded queries answer
// 504). SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/ch"
	"repro/internal/cli"
	"repro/internal/dijkstra"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/solver"
)

func main() {
	var (
		graphFile    = flag.String("graph", "", "DIMACS .gr input file")
		genClass     = flag.String("gen", "rand", "generator: rand, rmat, grid, geometric, smallworld")
		logN         = flag.Int("logn", 14, "generated size: n = 2^logn")
		logC         = flag.Int("logc", 14, "generated weights: C = 2^logc")
		seed         = flag.Uint64("seed", 1, "generator seed")
		workers      = flag.Int("workers", 4, "query workers")
		addr         = flag.String("addr", ":8080", "listen address")
		chFile       = flag.String("ch", "", "component hierarchy cache file")
		timeout      = flag.Duration("timeout", 30*time.Second, "per-request deadline for query endpoints (0 disables)")
		maxInflight  = flag.Int("max-inflight", 64, "concurrent query admission limit; excess load is shed with 503")
		drain        = flag.Duration("drain", 15*time.Second, "graceful shutdown drain budget")
		cacheEntries = flag.Int("cache-entries", 256, "result cache capacity in distance vectors (0 disables)")
		cacheBytes   = flag.Int64("cache-bytes", 64<<20, "result cache byte budget (0 = entry-bounded only)")
	)
	flag.Parse()

	g, name, err := cli.Spec{File: *graphFile, Class: *genClass, LogN: *logN, LogC: *logC, Seed: *seed}.Load()
	if err != nil {
		log.Fatalf("ssspd: %v", err)
	}
	h := loadOrBuild(g, *chFile)
	srv := newServer(g, h, name, *workers, *maxInflight, *timeout,
		engine.Config{CacheEntries: *cacheEntries, CacheBytes: *cacheBytes})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.mux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		// The write timeout must outlive the slowest admitted query plus the
		// serialisation of a full=1 distance vector.
		WriteTimeout: writeTimeout(*timeout),
		IdleTimeout:  2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	log.Printf("ssspd: serving %s (n=%d m=%d, CH %d nodes) on %s (workers=%d max-inflight=%d timeout=%s cache=%d/%dB)",
		name, g.NumVertices(), g.NumEdges(), h.NumNodes(), *addr, *workers, *maxInflight, *timeout, *cacheEntries, *cacheBytes)
	if err := serve(ctx, hs, *drain); err != nil {
		log.Fatalf("ssspd: %v", err)
	}
	log.Printf("ssspd: drained, bye")
}

// serve runs the HTTP server until ctx is cancelled, then shuts it down
// gracefully, giving in-flight requests up to drain to complete.
func serve(ctx context.Context, hs *http.Server, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		return err // listen failed before any shutdown signal
	case <-ctx.Done():
	}
	log.Printf("ssspd: shutdown signal, draining in-flight requests (budget %s)", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return <-errc
}

func writeTimeout(queryTimeout time.Duration) time.Duration {
	if queryTimeout <= 0 {
		return 0 // unlimited queries: let Shutdown/drain bound them instead
	}
	return queryTimeout + 30*time.Second
}

func loadOrBuild(g *graph.Graph, chFile string) *ch.Hierarchy {
	if chFile != "" {
		if f, err := os.Open(chFile); err == nil {
			h, lerr := ch.ReadFrom(f, g)
			f.Close()
			if lerr == nil {
				return h
			}
			log.Printf("ssspd: ignoring cache %s: %v", chFile, lerr)
		}
	}
	h := ch.BuildKruskal(g)
	if chFile != "" {
		if err := writeCache(h, chFile); err != nil {
			log.Printf("ssspd: cache write: %v", err)
		}
	}
	return h
}

// writeCache persists the hierarchy atomically: serialise to a temp file in
// the destination directory, fsync-close it, then rename into place. A crash
// mid-write leaves the old cache (or nothing) — never a truncated file that
// the next start would have to detect.
func writeCache(h *ch.Hierarchy, chFile string) error {
	dir := filepath.Dir(chFile)
	f, err := os.CreateTemp(dir, filepath.Base(chFile)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := h.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, chFile); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// maxBatchItems caps one /batch request; larger workloads should paginate
// rather than hold one connection (and its admission token) for minutes.
const maxBatchItems = 4096

// server holds the shared immutable state and the query-execution engine
// (pooling, deduplication, caching, batching, solver policy).
type server struct {
	g      *graph.Graph
	h      *ch.Hierarchy
	name   string
	engine *engine.Engine
	ecfg   engine.Config

	metrics *obs.Registry
	sem     chan struct{} // admission: one token per in-flight query
	timeout time.Duration
}

func newServer(g *graph.Graph, h *ch.Hierarchy, name string, workers, maxInflight int, timeout time.Duration, ecfg engine.Config) *server {
	if maxInflight < 1 {
		maxInflight = 1
	}
	if ecfg.BatchWorkers == 0 {
		ecfg.BatchWorkers = workers
	}
	in := solver.NewInstanceWithHierarchy(g, par.NewExec(workers), h)
	return &server{
		g:       g,
		h:       h,
		name:    name,
		engine:  engine.New(in, ecfg),
		ecfg:    ecfg,
		metrics: obs.NewRegistry("healthz", "stats", "metrics", "sssp", "dist", "st", "table", "batch"),
		sem:     make(chan struct{}, maxInflight),
		timeout: timeout,
	}
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("GET /healthz", s.instrument("healthz", false, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	}))
	m.HandleFunc("GET /stats", s.instrument("stats", false, s.handleStats))
	m.HandleFunc("GET /metrics", s.instrument("metrics", false, s.handleMetrics))
	m.HandleFunc("GET /sssp", s.instrument("sssp", true, s.handleSSSP))
	m.HandleFunc("GET /dist", s.instrument("dist", true, s.handleDist))
	m.HandleFunc("GET /st", s.instrument("st", true, s.handleST))
	m.HandleFunc("GET /table", s.instrument("table", true, s.handleTable))
	m.HandleFunc("POST /batch", s.instrument("batch", true, s.handleBatch))
	return m
}

// instrument wraps a handler with the daemon's middleware: in-flight gauge,
// request counting, latency histogram, status classing, structured access
// logging, and — for query endpoints (admit=true) — semaphore admission
// control and the per-request context deadline.
func (s *server) instrument(name string, admit bool, h http.HandlerFunc) http.HandlerFunc {
	ep := s.metrics.Endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ep.InFlight.Inc()
		defer ep.InFlight.Dec()
		rw := &statusWriter{ResponseWriter: w}

		if admit {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			default:
				// Saturated: shed instead of queueing unboundedly. The client
				// is told when to come back; a well-behaved one backs off.
				ep.Shed.Inc()
				rw.Header().Set("Retry-After", "1")
				httpError(rw, http.StatusServiceUnavailable, "overloaded: query admission limit reached")
				s.finish(name, ep, rw, r, start)
				return
			}
			if s.timeout > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		h(rw, r)
		s.finish(name, ep, rw, r, start)
	}
}

// finish records the completed request in the endpoint metrics and emits one
// structured access-log line.
func (s *server) finish(name string, ep *obs.Endpoint, rw *statusWriter, r *http.Request, start time.Time) {
	d := time.Since(start)
	ep.Requests.Inc()
	ep.Latency.Observe(d)
	ep.RecordStatus(rw.Status())
	if rw.Status() == http.StatusGatewayTimeout {
		ep.Timeout.Inc()
	}
	log.Printf("ssspd: access endpoint=%s method=%s path=%q status=%d bytes=%d dur=%s remote=%s",
		name, r.Method, truncate(r.URL.RequestURI(), 256), rw.Status(), rw.bytes, d.Round(time.Microsecond), r.RemoteAddr)
}

// truncate caps a logged string: a /table request can carry a multi-kilobyte
// query string, which would make the access log unreadable.
func truncate(s string, max int) string {
	if len(s) <= max {
		return s
	}
	return s[:max] + fmt.Sprintf("...(%d bytes)", len(s))
}

// statusWriter captures the status code and body size of a response.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

// queryError is a handler result that should be written as an HTTP error
// instead of a 200 body.
type queryError struct {
	code int
	msg  string
}

// errResp maps an engine error to its HTTP form: request mistakes are the
// client's fault (400), expired contexts are a timeout (504).
func errResp(err error) any {
	switch {
	case errors.Is(err, engine.ErrBadQuery):
		return queryError{http.StatusBadRequest, err.Error()}
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return queryError{http.StatusGatewayTimeout, "query deadline exceeded"}
	default:
		return queryError{http.StatusInternalServerError, err.Error()}
	}
}

// runWithDeadline executes fn and writes its result as JSON (or as an HTTP
// error for a queryError result), answering 504 if the request's deadline
// expires first. A traversal cannot be cancelled mid-flight, so on timeout
// fn keeps running in the background — its result still lands in the engine
// cache — while the client is unblocked immediately.
func runWithDeadline(w http.ResponseWriter, r *http.Request, fn func() any) {
	if err := r.Context().Err(); err != nil {
		httpError(w, http.StatusGatewayTimeout, "deadline exceeded before query start")
		return
	}
	done := make(chan any, 1)
	go func() { done <- fn() }()
	select {
	case resp := <-done:
		if qe, ok := resp.(queryError); ok {
			httpError(w, qe.code, qe.msg)
			return
		}
		writeJSON(w, resp)
	case <-r.Context().Done():
		httpError(w, http.StatusGatewayTimeout, "query deadline exceeded")
	}
}

// query runs one engine query under the request's deadline and shapes the
// response with fn.
func (s *server) query(w http.ResponseWriter, r *http.Request, req engine.Request, fn func(res *engine.Result, via engine.Via) any) {
	runWithDeadline(w, r, func() any {
		res, via, err := s.engine.Query(r.Context(), req)
		if err != nil {
			return errResp(err)
		}
		return fn(res, via)
	})
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.h.ComputeStats()
	writeJSON(w, map[string]any{
		"instance":      s.name,
		"vertices":      s.g.NumVertices(),
		"edges":         s.g.NumEdges(),
		"maxWeight":     s.g.MaxWeight(),
		"chNodes":       st.Components,
		"chHeight":      st.Height,
		"chAvgChildren": st.AvgChildren,
		"chBytes":       st.CHBytes,
		// Arithmetic from the hierarchy's dimensions — no query allocation.
		"instanceBytes":   s.engine.InstanceBytes(),
		"cacheMaxEntries": s.ecfg.CacheEntries,
		"cacheMaxBytes":   s.ecfg.CacheBytes,
		"batchWorkers":    s.ecfg.BatchWorkers,
	})
}

func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	agg, runs := s.engine.ThorupTrace()
	writeJSON(w, map[string]any{
		"instance":       s.name,
		"uptime_seconds": s.metrics.UptimeSeconds(),
		"inflight_limit": cap(s.sem),
		"endpoints":      s.metrics.Snapshot(),
		"engine":         s.engine.StatsSnapshot(),
		"thorup": map[string]any{
			"queries":             runs,
			"settled":             agg.Settled,
			"relaxations":         agg.Relaxations,
			"propagation_hops":    agg.PropagationHops,
			"hops_per_relaxation": agg.HopsPerRelaxation(),
			"gathers":             agg.Gathers,
			"gather_scanned":      agg.GatherScanned,
			"gather_taken":        agg.GatherTaken,
			"bucket_advances":     agg.BucketAdvances,
			"max_tovisit":         agg.MaxTovisit,
		},
	})
}

// summary is the common response shape of one answered query.
func summary(res *engine.Result, via engine.Via) map[string]any {
	return map[string]any{
		"solver":       res.Solver,
		"via":          via.String(),
		"reached":      res.Reached,
		"eccentricity": res.Eccentricity,
	}
}

func (s *server) handleSSSP(w http.ResponseWriter, r *http.Request) {
	src, ok := s.vertexParam(w, r, "src")
	if !ok {
		return
	}
	full := r.URL.Query().Get("full") == "1"
	req := engine.Request{Sources: []int32{src}, Solver: r.URL.Query().Get("solver")}
	s.query(w, r, req, func(res *engine.Result, via engine.Via) any {
		resp := summary(res, via)
		resp["src"] = src
		if full {
			// The serialized vector (Inf as -1) is built once per result and
			// streamed verbatim on every later hit — no re-marshal.
			resp["dist"] = json.RawMessage(res.DistJSON())
		}
		return resp
	})
}

func (s *server) handleDist(w http.ResponseWriter, r *http.Request) {
	src, ok := s.vertexParam(w, r, "src")
	if !ok {
		return
	}
	dst, ok := s.vertexParam(w, r, "dst")
	if !ok {
		return
	}
	req := engine.Request{Sources: []int32{src}, Solver: r.URL.Query().Get("solver")}
	s.query(w, r, req, func(res *engine.Result, via engine.Via) any {
		d := res.Dist[dst]
		return map[string]any{
			"src": src, "dst": dst,
			"dist": jsonDist(d), "reachable": d < graph.Inf,
			"solver": res.Solver, "via": via.String(),
		}
	})
}

func (s *server) handleST(w http.ResponseWriter, r *http.Request) {
	src, ok := s.vertexParam(w, r, "s")
	if !ok {
		return
	}
	dst, ok := s.vertexParam(w, r, "t")
	if !ok {
		return
	}
	runWithDeadline(w, r, func() any {
		d := dijkstra.STDistance(s.g, src, dst)
		return map[string]any{"s": src, "t": dst, "dist": jsonDist(d), "reachable": d < graph.Inf}
	})
}

func (s *server) handleTable(w http.ResponseWriter, r *http.Request) {
	sources, ok := s.vertexListParam(w, r, "src")
	if !ok {
		return
	}
	targets, ok := s.vertexListParam(w, r, "dst")
	if !ok {
		return
	}
	if len(sources)*len(targets) > 1<<20 {
		httpError(w, http.StatusBadRequest, "table too large")
		return
	}
	// One engine query per row: rows flow through the worker pool, the cache,
	// and the deduplicator like any other query, so a hot row is free.
	solverName := r.URL.Query().Get("solver")
	reqs := make([]engine.Request, len(sources))
	for i, src := range sources {
		reqs[i] = engine.Request{Sources: []int32{src}, Solver: solverName}
	}
	runWithDeadline(w, r, func() any {
		results := s.engine.Batch(r.Context(), reqs)
		out := make([][]int64, len(results))
		for i, br := range results {
			if br.Err != nil {
				return errResp(br.Err)
			}
			out[i] = make([]int64, len(targets))
			for j, t := range targets {
				out[i][j] = jsonDist(br.Res.Dist[t])
			}
		}
		return map[string]any{"src": sources, "dst": targets, "dist": out}
	})
}

// batchItem is one query of a /batch request: src or srcs (multi-source),
// plus an optional per-item solver override.
type batchItem struct {
	Src    *int32  `json:"src,omitempty"`
	Srcs   []int32 `json:"srcs,omitempty"`
	Solver string  `json:"solver,omitempty"`
}

// batchRequest is the /batch body. Solver and Full apply to every item
// unless the item overrides the solver itself.
type batchRequest struct {
	Queries []batchItem `json:"queries"`
	Solver  string      `json:"solver,omitempty"`
	Full    bool        `json:"full,omitempty"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var breq batchRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&breq); err != nil {
		httpError(w, http.StatusBadRequest, "bad batch body: "+err.Error())
		return
	}
	if len(breq.Queries) == 0 {
		httpError(w, http.StatusBadRequest, "batch has no queries")
		return
	}
	if len(breq.Queries) > maxBatchItems {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("batch too large: %d queries (max %d)", len(breq.Queries), maxBatchItems))
		return
	}
	reqs := make([]engine.Request, len(breq.Queries))
	for i, it := range breq.Queries {
		srcs := it.Srcs
		if it.Src != nil {
			srcs = append(srcs, *it.Src)
		}
		name := it.Solver
		if name == "" {
			name = breq.Solver
		}
		reqs[i] = engine.Request{Sources: srcs, Solver: name}
	}
	runWithDeadline(w, r, func() any {
		results := s.engine.Batch(r.Context(), reqs)
		out := make([]map[string]any, len(results))
		for i, br := range results {
			if br.Err != nil {
				qe := errResp(br.Err).(queryError)
				out[i] = map[string]any{"error": qe.msg, "status": qe.code}
				continue
			}
			item := summary(br.Res, br.Via)
			if breq.Full {
				item["dist"] = json.RawMessage(br.Res.DistJSON())
			}
			out[i] = item
		}
		return map[string]any{"results": out}
	})
}

func (s *server) vertexParam(w http.ResponseWriter, r *http.Request, name string) (int32, bool) {
	raw := r.URL.Query().Get(name)
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil || v < 0 || int(v) >= s.g.NumVertices() {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parameter %q must be a vertex in [0,%d)", name, s.g.NumVertices()))
		return 0, false
	}
	return int32(v), true
}

func (s *server) vertexListParam(w http.ResponseWriter, r *http.Request, name string) ([]int32, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parameter %q required (comma-separated vertices)", name))
		return nil, false
	}
	parts := strings.Split(raw, ",")
	out := make([]int32, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
		if err != nil || v < 0 || int(v) >= s.g.NumVertices() {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad vertex %q in %q", p, name))
			return nil, false
		}
		out = append(out, int32(v))
	}
	return out, true
}

func jsonDist(d int64) int64 {
	if d >= graph.Inf {
		return -1
	}
	return d
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("ssspd: encode: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
