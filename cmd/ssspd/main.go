// Command ssspd is a shortest-path query daemon: it loads (or generates) a
// graph, builds the Component Hierarchy once, and serves concurrent queries
// over HTTP — the service shape the paper's shared-CH design is made for
// (one immutable hierarchy, many simultaneous traversals, cheap per-query
// state).
//
// Usage:
//
//	ssspd -gen rand -logn 16 -addr :8080
//	ssspd -graph city.gr -ch city.chb -workers 8
//
// Endpoints (all return JSON):
//
//	GET /sssp?src=17              distances summary + optional full vector
//	GET /sssp?src=17&full=1       include the distance vector
//	GET /dist?src=17&dst=99       one source-target distance (Thorup query)
//	GET /st?s=17&t=99             one s-t distance (bidirectional Dijkstra)
//	GET /table?src=1,2&dst=3,4    many-to-many distance table
//	GET /stats                    instance and hierarchy statistics
//	GET /healthz                  liveness
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"

	"repro/internal/ch"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/dijkstra"
	"repro/internal/graph"
	"repro/internal/par"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "DIMACS .gr input file")
		genClass  = flag.String("gen", "rand", "generator: rand, rmat, grid, geometric, smallworld")
		logN      = flag.Int("logn", 14, "generated size: n = 2^logn")
		logC      = flag.Int("logc", 14, "generated weights: C = 2^logc")
		seed      = flag.Uint64("seed", 1, "generator seed")
		workers   = flag.Int("workers", 4, "query workers")
		addr      = flag.String("addr", ":8080", "listen address")
		chFile    = flag.String("ch", "", "component hierarchy cache file")
	)
	flag.Parse()

	g, name, err := cli.Spec{File: *graphFile, Class: *genClass, LogN: *logN, LogC: *logC, Seed: *seed}.Load()
	if err != nil {
		log.Fatalf("ssspd: %v", err)
	}
	h := loadOrBuild(g, *chFile)
	srv := newServer(g, h, name, *workers)

	log.Printf("ssspd: serving %s (n=%d m=%d, CH %d nodes) on %s",
		name, g.NumVertices(), g.NumEdges(), h.NumNodes(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv.mux()))
}

func loadOrBuild(g *graph.Graph, chFile string) *ch.Hierarchy {
	if chFile != "" {
		if f, err := os.Open(chFile); err == nil {
			h, lerr := ch.ReadFrom(f, g)
			f.Close()
			if lerr == nil {
				return h
			}
			log.Printf("ssspd: ignoring cache %s: %v", chFile, lerr)
		}
	}
	h := ch.BuildKruskal(g)
	if chFile != "" {
		if f, err := os.Create(chFile); err == nil {
			if _, werr := h.WriteTo(f); werr != nil {
				log.Printf("ssspd: cache write: %v", werr)
			}
			f.Close()
		}
	}
	return h
}

// server holds the shared immutable state plus a pool of reusable query
// instances (the paper's cheap per-query allocation, amortised to zero).
type server struct {
	g      *graph.Graph
	h      *ch.Hierarchy
	name   string
	solver *core.Solver
	pool   sync.Pool
}

func newServer(g *graph.Graph, h *ch.Hierarchy, name string, workers int) *server {
	s := &server{
		g:      g,
		h:      h,
		name:   name,
		solver: core.NewSolver(h, par.NewExec(workers)),
	}
	s.pool.New = func() any { return s.solver.Query() }
	return s
}

func (s *server) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	})
	m.HandleFunc("GET /stats", s.handleStats)
	m.HandleFunc("GET /sssp", s.handleSSSP)
	m.HandleFunc("GET /dist", s.handleDist)
	m.HandleFunc("GET /st", s.handleST)
	m.HandleFunc("GET /table", s.handleTable)
	return m
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.h.ComputeStats()
	q := s.solver.Query()
	writeJSON(w, map[string]any{
		"instance":      s.name,
		"vertices":      s.g.NumVertices(),
		"edges":         s.g.NumEdges(),
		"maxWeight":     s.g.MaxWeight(),
		"chNodes":       st.Components,
		"chHeight":      st.Height,
		"chAvgChildren": st.AvgChildren,
		"chBytes":       st.CHBytes,
		"instanceBytes": q.InstanceBytes(),
	})
}

func (s *server) handleSSSP(w http.ResponseWriter, r *http.Request) {
	src, ok := s.vertexParam(w, r, "src")
	if !ok {
		return
	}
	q := s.pool.Get().(*core.Query)
	defer s.pool.Put(q)
	dist := q.Run(src)
	resp := map[string]any{
		"src":          src,
		"reached":      q.Reached(),
		"eccentricity": q.Eccentricity(),
	}
	if r.URL.Query().Get("full") == "1" {
		// Inf is not JSON-friendly; report unreachable as -1.
		out := make([]int64, len(dist))
		for i, d := range dist {
			if d == graph.Inf {
				out[i] = -1
			} else {
				out[i] = d
			}
		}
		resp["dist"] = out
	}
	writeJSON(w, resp)
}

func (s *server) handleDist(w http.ResponseWriter, r *http.Request) {
	src, ok := s.vertexParam(w, r, "src")
	if !ok {
		return
	}
	dst, ok := s.vertexParam(w, r, "dst")
	if !ok {
		return
	}
	q := s.pool.Get().(*core.Query)
	defer s.pool.Put(q)
	d := q.Run(src)[dst]
	writeJSON(w, map[string]any{"src": src, "dst": dst, "dist": jsonDist(d), "reachable": d < graph.Inf})
}

func (s *server) handleST(w http.ResponseWriter, r *http.Request) {
	src, ok := s.vertexParam(w, r, "s")
	if !ok {
		return
	}
	dst, ok := s.vertexParam(w, r, "t")
	if !ok {
		return
	}
	d := dijkstra.STDistance(s.g, src, dst)
	writeJSON(w, map[string]any{"s": src, "t": dst, "dist": jsonDist(d), "reachable": d < graph.Inf})
}

func (s *server) handleTable(w http.ResponseWriter, r *http.Request) {
	sources, ok := s.vertexListParam(w, r, "src")
	if !ok {
		return
	}
	targets, ok := s.vertexListParam(w, r, "dst")
	if !ok {
		return
	}
	if len(sources)*len(targets) > 1<<20 {
		httpError(w, http.StatusBadRequest, "table too large")
		return
	}
	table := s.solver.DistanceTable(sources, targets)
	out := make([][]int64, len(table))
	for i, row := range table {
		out[i] = make([]int64, len(row))
		for j, d := range row {
			out[i][j] = jsonDist(d)
		}
	}
	writeJSON(w, map[string]any{"src": sources, "dst": targets, "dist": out})
}

func (s *server) vertexParam(w http.ResponseWriter, r *http.Request, name string) (int32, bool) {
	raw := r.URL.Query().Get(name)
	v, err := strconv.ParseInt(raw, 10, 32)
	if err != nil || v < 0 || int(v) >= s.g.NumVertices() {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parameter %q must be a vertex in [0,%d)", name, s.g.NumVertices()))
		return 0, false
	}
	return int32(v), true
}

func (s *server) vertexListParam(w http.ResponseWriter, r *http.Request, name string) ([]int32, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("parameter %q required (comma-separated vertices)", name))
		return nil, false
	}
	parts := strings.Split(raw, ",")
	out := make([]int32, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 32)
		if err != nil || v < 0 || int(v) >= s.g.NumVertices() {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("bad vertex %q in %q", p, name))
			return nil, false
		}
		out = append(out, int32(v))
	}
	return out, true
}

func jsonDist(d int64) int64 {
	if d >= graph.Inf {
		return -1
	}
	return d
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		log.Printf("ssspd: encode: %v", err)
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
