package main

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/ch"
	"repro/internal/dijkstra"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/snapshot"
)

// TestServeFromMmapSnapshot walks the -mmap startup path end to end: map a
// v2 snapshot, serve it as the default graph, answer queries straight off
// the mapped arrays, hot-swap via /graphs/reload (the new generation maps
// the same file again), and report mapped residency in /metrics and
// /graphs.
func TestServeFromMmapSnapshot(t *testing.T) {
	g0 := gen.Random(400, 1600, 1<<10, gen.UWD, 21)
	h0 := ch.BuildKruskal(g0)
	snap := filepath.Join(t.TempDir(), "serve.snap")
	if err := snapshot.WriteFile(snap, g0, h0); err != nil {
		t.Fatal(err)
	}

	// Exactly what main does under -mmap: Map first, ReadFile only as the
	// not-mappable fallback (in which case this platform can't run the rest).
	g, h, mapping, err := snapshot.Map(snap)
	if errors.Is(err, snapshot.ErrNotMappable) {
		t.Skipf("mmap snapshots unsupported here: %v", err)
	}
	if err != nil {
		t.Fatal(err)
	}

	srv := newServer(g, h, "mapped", catalog.Source{Snapshot: snap}, serverOptions{
		workers: 4, maxInflight: 64, timeout: 30 * time.Second,
		engine: engine.Config{CacheEntries: 64},
		mmap:   true, mapping: mapping,
	})
	t.Cleanup(srv.cat.Close)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)

	// Answers come off the mapped arrays and must match Dijkstra on the
	// graph the snapshot encodes.
	var resp struct {
		Dist []int64 `json:"dist"`
	}
	if code := getJSON(t, ts.URL+"/sssp?src=5&full=1", &resp); code != 200 {
		t.Fatalf("sssp: code %d", code)
	}
	want := dijkstra.SSSP(g0, 5)
	for v, w := range want {
		if w == graph.Inf {
			w = -1
		}
		if resp.Dist[v] != w {
			t.Fatalf("dist[%d]=%d want %d", v, resp.Dist[v], w)
		}
	}

	// The default generation is mapped and /metrics says so.
	gen1, release, err := srv.cat.Acquire("mapped")
	if err != nil {
		t.Fatal(err)
	}
	if !gen1.Mapped() || gen1.MappedBytes == 0 || gen1.HeapBytes != 0 {
		t.Fatalf("startup generation not mapped: %+v", gen1)
	}
	release()
	var metrics struct {
		Catalog map[string]any `json:"catalog"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &metrics); code != 200 {
		t.Fatalf("metrics: code %d", code)
	}
	if mb, _ := metrics.Catalog["ready_mapped_bytes"].(float64); mb <= 0 {
		t.Fatalf("metrics ready_mapped_bytes = %v, want > 0", metrics.Catalog["ready_mapped_bytes"])
	}
	if hb, _ := metrics.Catalog["ready_heap_bytes"].(float64); hb != 0 {
		t.Fatalf("metrics ready_heap_bytes = %v, want 0 (all graphs mapped)", metrics.Catalog["ready_heap_bytes"])
	}

	// Hot-swap: the reload re-maps the same file (warm verification path).
	// The old mapping must stay readable until the swap completes — queries
	// keep running meanwhile.
	if code := postJSON(t, ts.URL+"/graphs/reload", `{"name":"mapped"}`, &map[string]any{}); code != http.StatusAccepted {
		t.Fatalf("reload: code %d, want 202", code)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		cur, rel, err := srv.cat.Acquire("mapped")
		if err != nil {
			t.Fatal(err)
		}
		gn, mapped := cur.Gen, cur.Mapped()
		rel()
		if gn == 2 {
			if !mapped {
				t.Fatal("reloaded generation lost mmap residency")
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("reload never swapped")
		}
		time.Sleep(2 * time.Millisecond)
	}
	select {
	case <-gen1.Drained():
	case <-time.After(30 * time.Second):
		t.Fatalf("startup generation never drained (in-flight %d)", gen1.InFlight())
	}

	// /graphs reports the per-graph mapped footprint.
	var listing struct {
		Graphs []struct {
			Name        string `json:"name"`
			MappedBytes int64  `json:"mapped_bytes"`
			HeapBytes   int64  `json:"heap_bytes"`
		} `json:"graphs"`
	}
	if code := getJSON(t, ts.URL+"/graphs", &listing); code != 200 {
		t.Fatalf("graphs: code %d", code)
	}
	if len(listing.Graphs) != 1 || listing.Graphs[0].MappedBytes == 0 || listing.Graphs[0].HeapBytes != 0 {
		t.Fatalf("graphs listing: %+v", listing)
	}

	// Same snapshot served with mmap off loads onto the heap instead.
	gc, hc, err := snapshot.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	srvCopy := newServer(gc, hc, "copied", catalog.Source{Snapshot: snap}, serverOptions{
		workers: 2, maxInflight: 8, timeout: 30 * time.Second,
	})
	t.Cleanup(srvCopy.cat.Close)
	genC, relC, err := srvCopy.cat.Acquire("copied")
	if err != nil {
		t.Fatal(err)
	}
	defer relC()
	if genC.Mapped() || genC.HeapBytes == 0 || genC.MappedBytes != 0 {
		t.Fatalf("copy-loaded generation claims mmap residency: %+v", genC)
	}
}
