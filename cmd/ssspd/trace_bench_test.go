package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/ch"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/trace"
)

// traceBenchVerts sizes the overhead-measurement graph: mid-size, so a query
// costs what serving actually costs (solve + encode dominate) rather than the
// micro graph the batch benchmarks use to isolate per-request overhead.
const traceBenchVerts = 1 << 11

// tracedBenchServer is benchServer with a tracing config: sampleN 0 is the
// disabled baseline, 100 the production default (1-in-100 tail sampling).
func tracedBenchServer(tb testing.TB, sampleN int) (*httptest.Server, func()) {
	tb.Helper()
	g := gen.Random(traceBenchVerts, 1<<13, 1<<10, gen.UWD, 99)
	srv := newServer(g, ch.BuildKruskal(g), "bench", catalog.Source{}, serverOptions{
		workers: 2, maxInflight: 256, timeout: time.Minute,
		engine: engine.Config{CacheEntries: 0},
		trace:  trace.Config{SampleN: sampleN, RingSize: 256, Logf: func(string, ...any) {}},
	})
	ts := httptest.NewServer(srv.mux())
	old := log.Writer()
	log.SetOutput(io.Discard)
	return ts, func() {
		ts.Close()
		srv.cat.Close()
		log.SetOutput(old)
	}
}

// sampleLatencies runs count sequential queries and returns each one's
// client-observed wall time.
func sampleLatencies(tb testing.TB, ts *httptest.Server, client *http.Client, count int) []time.Duration {
	out := make([]time.Duration, count)
	for i := 0; i < count; i++ {
		start := time.Now()
		resp, err := client.Get(fmt.Sprintf("%s/sssp?src=%d&solver=dijkstra", ts.URL, i%traceBenchVerts))
		if err != nil {
			tb.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		out[i] = time.Since(start)
		if resp.StatusCode != 200 {
			tb.Fatalf("status %d", resp.StatusCode)
		}
	}
	return out
}

func percentile(samples []time.Duration, p float64) time.Duration {
	s := append([]time.Duration(nil), samples...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

// TestWriteTraceBenchJSON emits BENCH_trace.json when BENCH_TRACE_OUT is set
// (see `make bench-trace`): client-observed query latency with tracing at the
// default 1-in-100 sampling versus tracing disabled. Rounds alternate between
// the two servers so machine drift (frequency scaling, background load) hits
// both sides equally; p50 over all rounds is the headline number. The tracing
// layer records spans for every request when enabled — sampling only gates
// retention — so this measures the full per-request recording cost.
func TestWriteTraceBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_TRACE_OUT")
	if out == "" {
		t.Skip("set BENCH_TRACE_OUT=path to write the tracing benchmark JSON")
	}

	const (
		rounds   = 8
		perRound = 150
	)
	tsOff, doneOff := tracedBenchServer(t, 0)
	defer doneOff()
	tsOn, doneOn := tracedBenchServer(t, 100)
	defer doneOn()
	clientOff, clientOn := tsOff.Client(), tsOn.Client()

	// Warm both sides: connection setup, first-solve page faults, JIT'd maps.
	sampleLatencies(t, tsOff, clientOff, perRound)
	sampleLatencies(t, tsOn, clientOn, perRound)

	var off, on []time.Duration
	for r := 0; r < rounds; r++ {
		off = append(off, sampleLatencies(t, tsOff, clientOff, perRound)...)
		on = append(on, sampleLatencies(t, tsOn, clientOn, perRound)...)
	}

	p50Off, p50On := percentile(off, 0.50), percentile(on, 0.50)
	p99Off, p99On := percentile(off, 0.99), percentile(on, 0.99)
	overheadPct := 100 * (float64(p50On) - float64(p50Off)) / float64(p50Off)

	doc := map[string]any{
		"sample_n":          100,
		"rounds":            rounds,
		"queries_per_round": perRound,
		"tracing_off": map[string]any{
			"p50_us": p50Off.Microseconds(), "p99_us": p99Off.Microseconds(),
		},
		"tracing_on": map[string]any{
			"p50_us": p50On.Microseconds(), "p99_us": p99On.Microseconds(),
		},
		"p50_overhead_pct": overheadPct,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: p50 off=%s on=%s overhead=%.2f%%", out, p50Off, p50On, overheadPct)
	if overheadPct >= 5 {
		t.Errorf("tracing p50 overhead %.2f%% at 1-in-100 sampling, want < 5%%", overheadPct)
	}
}
