package main

import (
	"context"
	"encoding/json"
	"net/http"
	"os"
	"testing"
	"time"

	"repro/internal/loadgen"
)

// TestWriteRouterBenchJSON runs the three committed workload specs at full
// size twice — directly against one hermetic ssspd, and through an ssspr
// fronting two full-replica backends — and writes BENCH_router.json with the
// router-vs-direct comparison plus the measured failover re-route latency.
// Run via `make bench-router`; skipped unless BENCH_ROUTER_OUT is set.
//
// Gates: every workload must pass its committed SLO through the router
// (zero violations), and the router's p99 overhead over direct must stay
// within 2ms — the tier buys failover and scale-out, not a latency tax.
//
// A single run's p99 is the ~4th-worst of 400 samples and swings by several
// ms under scheduler noise, so each side runs `trials` times against the same
// servers (the first pass doubles as cache warmup) and the gate compares
// best-of-trials p99s — the steady-state floor of each configuration, which
// is where systematic routing overhead shows.
//
// Both sides run the committed specs at reduced pressure (open-loop rates
// ×1/4, closed-loop workers 1): on this bench host the committed rates
// saturate the CPU, and p99 at saturation measures queueing collapse — the
// extra server stacks time-slicing one core — not the routing hop. The
// shapes, mixes, seeds, and SLOs stay exactly as committed, and the applied
// pressure is recorded in the output via each report's offered rate.
func TestWriteRouterBenchJSON(t *testing.T) {
	outPath := os.Getenv("BENCH_ROUTER_OUT")
	if outPath == "" {
		t.Skip("set BENCH_ROUTER_OUT to write BENCH_router.json (make bench-router)")
	}
	const (
		maxOverheadMs = 2.0
		trials        = 4
	)
	// httptest clients keep only DefaultMaxIdleConnsPerHost (2) idle
	// connections; past that the loadgen re-dials per request, and the churn
	// penalty scales with in-flight concurrency — i.e. it charges the slower
	// side extra. A real fleet client pools aggressively, so both sides get
	// the same pooled transport here.
	tune := func(c *http.Client) *http.Client {
		if tr, ok := c.Transport.(*http.Transport); ok {
			tr.MaxIdleConnsPerHost = 256
		}
		return c
	}
	benchShape := func(w *loadgen.Workload) *loadgen.Workload {
		if w.Spec.Mode == loadgen.ModeOpen {
			w.Spec.Rate /= 4
		} else {
			w.Spec.Workers = 1
		}
		return w
	}

	type entry struct {
		Direct        *loadgen.Report `json:"direct"`
		Router        *loadgen.Report `json:"router"`
		Trials        int             `json:"trials"`
		OverheadP99Ms float64         `json:"overhead_p99_ms"`
	}
	doc := struct {
		Workloads map[string]*entry `json:"workloads"`
		Failover  struct {
			HealthIntervalMs float64 `json:"health_interval_ms"`
			RerouteMs        float64 `json:"reroute_ms"`
		} `json:"failover"`
	}{Workloads: map[string]*entry{}}

	for _, file := range serveWorkloadFiles {
		// Direct baseline: one fresh ssspd per workload (no cross-warming).
		ts, _ := serveBenchBoot(t)
		tune(ts.Client())
		var direct *loadgen.Report
		for i := 0; i < trials; i++ {
			rep := runServeWorkload(t, ts, benchShape(readServeWorkload(t, file)))
			if direct == nil || rep.Latency.P99Ms < direct.Latency.P99Ms {
				direct = rep
			}
		}

		// Through the tier: two fresh full-replica backends behind ssspr.
		b1 := bootBackend(t, "wl-a", "wl-b")
		b2 := bootBackend(t, "wl-a", "wl-b")
		rts, _ := routerBoot(t, time.Second, map[string]string{"b1": b1.URL, "b2": b2.URL})
		tune(rts.Client())
		var routed *loadgen.Report
		for i := 0; i < trials; i++ {
			w := benchShape(readServeWorkload(t, file))
			out, err := loadgen.Run(context.Background(), w, loadgen.Options{
				BaseURL: rts.URL, Client: rts.Client(),
				TracePrefix: "bench-router-" + w.Spec.Name,
			})
			if err != nil {
				t.Fatal(err)
			}
			rep := loadgen.BuildReport(w, out)
			if routed == nil || rep.Latency.P99Ms < routed.Latency.P99Ms {
				routed = rep
			}
		}

		w := readServeWorkload(t, file)
		e := &entry{
			Direct:        direct,
			Router:        routed,
			Trials:        trials,
			OverheadP99Ms: routed.Latency.P99Ms - direct.Latency.P99Ms,
		}
		doc.Workloads[w.Spec.Name] = e
		t.Logf("%s: direct p99=%.2fms router p99=%.2fms overhead=%.2fms per_backend=%v",
			w.Spec.Name, direct.Latency.P99Ms, routed.Latency.P99Ms, e.OverheadP99Ms, routed.PerBackend)
		for _, v := range routed.Violations {
			t.Errorf("%s: SLO violation through the router: %s", w.Spec.Name, v)
		}
		if e.OverheadP99Ms > maxOverheadMs {
			t.Errorf("%s: router p99 overhead %.2fms exceeds %.1fms", w.Spec.Name, e.OverheadP99Ms, maxOverheadMs)
		}
		if len(routed.PerBackend) < 2 {
			t.Errorf("%s: router used backends %v, want load spread across both replicas",
				w.Spec.Name, routed.PerBackend)
		}
	}

	// Failover: kill one replica, measure how long until the router's route
	// view shows only the survivor.
	const interval = 100 * time.Millisecond
	b1 := bootBackend(t, "wl-a", "wl-b")
	b2 := bootBackend(t, "wl-a", "wl-b")
	rts, _ := routerBoot(t, interval, map[string]string{"b1": b1.URL, "b2": b2.URL})
	if got := routeEligible(t, rts.Client(), rts.URL, "wl-a"); len(got) != 2 {
		t.Fatalf("eligible(wl-a) = %v, want both before the kill", got)
	}
	start := time.Now()
	b2.CloseClientConnections()
	b2.Close()
	for {
		if got := routeEligible(t, rts.Client(), rts.URL, "wl-a"); len(got) == 1 && got[0] == "b1" {
			break
		}
		if time.Since(start) > 20*interval {
			t.Fatalf("router never evicted the killed backend (%v elapsed)", time.Since(start))
		}
		time.Sleep(2 * time.Millisecond)
	}
	doc.Failover.HealthIntervalMs = float64(interval) / 1e6
	doc.Failover.RerouteMs = float64(time.Since(start)) / 1e6
	t.Logf("failover: re-routed %.1fms after backend kill (health interval %v)", doc.Failover.RerouteMs, interval)

	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", outPath)
}
