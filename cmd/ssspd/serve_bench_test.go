package main

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/ch"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/loadgen"
)

// The committed service workloads (testdata/workloads/*.jsonl) name two
// graphs; serveBenchBoot must serve exactly these shapes or the specs'
// declared vertex counts would drift from reality (the smoke test asserts
// they match).
// mixed-mutate runs single-worker closed-loop on purpose: mutations to one
// graph serialize behind the catalog's pending flag (concurrent ones answer
// 409), and the committed SLO demands zero errors.
var serveWorkloadFiles = []string{"zipf-single.jsonl", "batch-heavy.jsonl", "cache-hostile.jsonl", "mixed-mutate.jsonl"}

func serveWorkloadGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"wl-a": gen.Random(512, 2048, 1<<10, gen.UWD, 101),
		"wl-b": gen.Random(384, 1536, 1<<10, gen.UWD, 102),
	}
}

// serveBenchBoot starts a hermetic ssspd serving the catalog the committed
// workload specs are written against: graphs wl-a and wl-b, generous
// admission, the daemon's -timeout active. The returned server answers on
// every endpoint the load generator can emit.
func serveBenchBoot(tb testing.TB) (*httptest.Server, *server) {
	tb.Helper()
	graphs := serveWorkloadGraphs()
	ga := graphs["wl-a"]
	srv := newServer(ga, ch.BuildKruskal(ga), "wl-a", catalog.Source{}, serverOptions{
		workers: 4, maxInflight: 256, timeout: 30 * time.Second,
		engine: engine.Config{CacheEntries: 64, CacheBytes: 8 << 20},
	})
	gb := graphs["wl-b"]
	if _, err := srv.cat.AddPrebuilt("wl-b", catalog.Source{}, gb, ch.BuildKruskal(gb), nil); err != nil {
		tb.Fatal(err)
	}
	ts := httptest.NewServer(srv.mux())
	old := log.Writer()
	log.SetOutput(io.Discard) // thousands of access-log lines otherwise
	tb.Cleanup(func() {
		ts.Close()
		srv.cat.Close()
		log.SetOutput(old)
	})
	return ts, srv
}

func readServeWorkload(tb testing.TB, file string) *loadgen.Workload {
	tb.Helper()
	w, err := loadgen.ReadFile(filepath.Join("..", "..", "testdata", "workloads", file))
	if err != nil {
		tb.Fatalf("%s: %v", file, err)
	}
	return w
}

func runServeWorkload(tb testing.TB, ts *httptest.Server, w *loadgen.Workload) *loadgen.Report {
	tb.Helper()
	out, err := loadgen.Run(context.Background(), w, loadgen.Options{
		BaseURL:       ts.URL,
		Client:        ts.Client(),
		TracePrefix:   "bench-" + w.Spec.Name,
		ScrapeMetrics: true,
	})
	if err != nil {
		tb.Fatalf("%s: %v", w.Spec.Name, err)
	}
	return loadgen.BuildReport(w, out)
}

// Always-on smoke: every committed workload spec parses, matches the bench
// catalog's real graph shapes, and a shrunk run of it passes its own SLO
// with clean attribution (client-observed counts match the daemon's
// counters). `make bench-serve-smoke` and `make check` run this.
func TestServeWorkloadSmoke(t *testing.T) {
	graphs := serveWorkloadGraphs()
	for _, file := range serveWorkloadFiles {
		t.Run(file, func(t *testing.T) {
			w := readServeWorkload(t, file)
			for _, gm := range w.Spec.Graphs {
				g := graphs[gm.Graph]
				if g == nil {
					t.Fatalf("spec names graph %q, which serveBenchBoot does not serve", gm.Graph)
				}
				if int32(g.NumVertices()) != gm.N {
					t.Fatalf("spec declares %s with %d vertices, bench catalog has %d",
						gm.Graph, gm.N, g.NumVertices())
				}
			}
			// Shrink to smoke size; overrides invalidate nothing (the specs
			// are header-only) but keep the spec's shape and SLO.
			w.Spec.Requests = 80
			if w.Spec.Mode == loadgen.ModeOpen {
				w.Spec.Rate = 400
			}
			ts, _ := serveBenchBoot(t)
			rep := runServeWorkload(t, ts, w)
			if len(rep.Violations) != 0 {
				t.Fatalf("smoke run violates its own SLO: %v", rep.Violations)
			}
			if rep.OK != 80 || rep.Errors != 0 || rep.Shed != 0 {
				t.Fatalf("smoke run not clean: ok=%d errors=%d shed=%d status=%v",
					rep.OK, rep.Errors, rep.Shed, rep.StatusCounts)
			}
			// Attribution: the daemon counted exactly the requests we sent.
			if rep.Metrics == nil {
				t.Fatal("no metrics delta")
			}
			var daemonSaw int64
			for _, name := range []string{"sssp", "dist", "batch", "graphs_mutate"} {
				daemonSaw += rep.Metrics.Endpoints[name].Requests
			}
			if daemonSaw != 80 {
				t.Fatalf("daemon counted %d query requests, client sent 80", daemonSaw)
			}
			if w.Spec.CacheHostile && rep.Metrics.Engine.CacheHits != 0 {
				// The strider never repeats a source within a graph's vertex
				// count, so a cache-hostile run must not hit the result cache.
				t.Fatalf("cache-hostile run scored %d cache hits", rep.Metrics.Engine.CacheHits)
			}
		})
	}
}

// Deterministic expansion is what makes a committed spec a pinned traffic
// shape: the same file must expand to the same sequence in every session.
func TestServeWorkloadsExpandDeterministically(t *testing.T) {
	for _, file := range serveWorkloadFiles {
		w1 := readServeWorkload(t, file)
		w2 := readServeWorkload(t, file)
		if err := w1.Expand(); err != nil {
			t.Fatal(err)
		}
		if err := w2.Expand(); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(w1.Requests, w2.Requests) {
			t.Fatalf("%s: expansions differ", file)
		}
	}
}

// The gate actually trips: a daemon with an injected 25ms stall on every
// query must violate a 5ms p99 SLO. This is the regression-detection
// mechanism `make bench-serve` relies on — remove the stall and the same
// machinery passes (TestServeWorkloadSmoke).
func TestServeStallInjectionTripsGate(t *testing.T) {
	ts, _ := serveBenchBoot(t)
	stalled := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(25 * time.Millisecond)
		req, err := http.NewRequest(r.Method, ts.URL+r.URL.RequestURI(), r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		req.Header = r.Header.Clone()
		resp, err := ts.Client().Do(req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		io.Copy(w, resp.Body)
	}))
	defer stalled.Close()

	w := readServeWorkload(t, "zipf-single.jsonl")
	w.Spec.Requests = 40
	w.Spec.Rate = 400
	w.Spec.SLO = &loadgen.SLO{P99Ms: 5}
	out, err := loadgen.Run(context.Background(), w, loadgen.Options{
		BaseURL: stalled.URL, Client: stalled.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := loadgen.BuildReport(w, out)
	if rep.Latency.P99Ms < 20 {
		t.Fatalf("injected stall invisible: p99 %.2fms", rep.Latency.P99Ms)
	}
	if len(rep.Violations) == 0 {
		t.Fatal("25ms stall did not trip the 5ms p99 gate")
	}
}

// TestWriteServeBenchJSON runs the three committed workload specs at full
// size against a hermetic daemon and writes BENCH_serve.json. Run via
// `make bench-serve`; skipped unless BENCH_SERVE_OUT is set. The test FAILS
// if any workload violates its committed SLO — this is the service-level
// regression gate.
func TestWriteServeBenchJSON(t *testing.T) {
	outPath := os.Getenv("BENCH_SERVE_OUT")
	if outPath == "" {
		t.Skip("set BENCH_SERVE_OUT to write BENCH_serve.json (make bench-serve)")
	}
	doc := struct {
		Graphs    map[string]int             `json:"graphs"`
		Workloads map[string]*loadgen.Report `json:"workloads"`
	}{
		Graphs:    map[string]int{},
		Workloads: map[string]*loadgen.Report{},
	}
	for name, g := range serveWorkloadGraphs() {
		doc.Graphs[name] = g.NumVertices()
	}
	for _, file := range serveWorkloadFiles {
		w := readServeWorkload(t, file)
		ts, _ := serveBenchBoot(t) // fresh daemon per workload: no cross-warming
		rep := runServeWorkload(t, ts, w)
		doc.Workloads[w.Spec.Name] = rep
		t.Logf("%s: %d requests, %.1f/s achieved (offered %.1f/s), p50=%.2fms p99=%.2fms ok=%d shed=%d err=%d",
			w.Spec.Name, rep.Requests, rep.AchievedRate, rep.OfferedRate,
			rep.Latency.P50Ms, rep.Latency.P99Ms, rep.OK, rep.Shed, rep.Errors)
		for _, v := range rep.Violations {
			t.Errorf("%s: SLO violation: %s", w.Spec.Name, v)
		}
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(outPath, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", outPath)
}
