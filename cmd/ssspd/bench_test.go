package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/ch"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/solver"
)

// The 64-query comparison workload: a small graph whose solves are cheap,
// distinct sources, the serial solver, cache off on both sides — so the
// measured difference is per-request overhead, which is exactly what /batch
// amortizes (on this host the solvers share one CPU, so the win is overhead
// elimination, not parallelism).
const benchQueries = 64

func benchServer(tb testing.TB) (*httptest.Server, func()) {
	tb.Helper()
	g := gen.Random(1<<7, 1<<9, 1<<10, gen.UWD, 99)
	srv := newServer(g, ch.BuildKruskal(g), "bench", catalog.Source{}, serverOptions{
		workers: 2, maxInflight: 256, timeout: time.Minute,
		engine: engine.Config{CacheEntries: 0}, // uncached: both sides pay every solve
	})
	ts := httptest.NewServer(srv.mux())
	old := log.Writer()
	log.SetOutput(io.Discard) // access logging still formats; don't spam stderr
	return ts, func() {
		ts.Close()
		srv.cat.Close()
		log.SetOutput(old)
	}
}

func sequential64(tb testing.TB, ts *httptest.Server, client *http.Client) {
	for i := 0; i < benchQueries; i++ {
		resp, err := client.Get(fmt.Sprintf("%s/sssp?src=%d&solver=dijkstra", ts.URL, i))
		if err != nil {
			tb.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			tb.Fatalf("status %d", resp.StatusCode)
		}
	}
}

func batch64Body() string {
	var b bytes.Buffer
	b.WriteString(`{"solver":"dijkstra","queries":[`)
	for i := 0; i < benchQueries; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"src":%d}`, i)
	}
	b.WriteString(`]}`)
	return b.String()
}

func batch64(tb testing.TB, ts *httptest.Server, client *http.Client, body string) {
	resp, err := client.Post(ts.URL+"/batch", "application/json", bytes.NewBufferString(body))
	if err != nil {
		tb.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		tb.Fatalf("status %d", resp.StatusCode)
	}
}

// 64 individual HTTP queries, one round-trip each.
func BenchmarkEngineSequential64(b *testing.B) {
	ts, done := benchServer(b)
	defer done()
	client := ts.Client()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sequential64(b, ts, client)
	}
}

// The same 64 queries in one POST /batch round-trip.
func BenchmarkEngineBatch64(b *testing.B) {
	ts, done := benchServer(b)
	defer done()
	client := ts.Client()
	body := batch64Body()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch64(b, ts, client, body)
	}
}

// engineBenchResult is one scenario's measurement in BENCH_engine.json.
type engineBenchResult struct {
	NsPerOp     int64 `json:"ns_per_op"`
	BytesPerOp  int64 `json:"bytes_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

func measure(f func(b *testing.B)) engineBenchResult {
	r := testing.Benchmark(f)
	return engineBenchResult{
		NsPerOp:     r.NsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		AllocsPerOp: r.AllocsPerOp(),
	}
}

// TestWriteEngineBenchJSON emits BENCH_engine.json when BENCH_ENGINE_OUT is
// set (see `make bench-engine`): the pooled-vs-cold, cache-hit-vs-miss, and
// batch-vs-sequential comparisons with their speedup ratios.
func TestWriteEngineBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_ENGINE_OUT")
	if out == "" {
		t.Skip("set BENCH_ENGINE_OUT=path to write the engine benchmark JSON")
	}

	// Engine-level scenarios: a mid-size instance, pinned to the serial
	// Dijkstra path where pooled scratch shows up cleanly in allocations.
	g := gen.Random(1<<12, 1<<14, 1<<10, gen.UWD, 42)
	in := solver.NewInstance(g, par.NewExec(2))
	in.Hierarchy()
	query := func(e *engine.Engine, src int32, name string) {
		if _, _, err := e.Query(context.Background(), engine.Request{Sources: []int32{src}, Solver: name}); err != nil {
			t.Fatal(err)
		}
	}
	cold := engine.New(in, engine.Config{DisablePool: true})
	pooled := engine.New(in, engine.Config{})
	cached := engine.New(in, engine.Config{CacheEntries: 16})
	query(cached, 17, "thorup") // warm the hot entry

	results := map[string]engineBenchResult{
		"engine_cold_query": measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				query(cold, int32(i%g.NumVertices()), "dijkstra")
			}
		}),
		"engine_pooled_query": measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				query(pooled, int32(i%g.NumVertices()), "dijkstra")
			}
		}),
		"engine_cache_miss": measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				query(cached, int32(i%g.NumVertices()), "thorup")
			}
		}),
		"engine_cache_hit": measure(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				query(cached, 17, "thorup")
			}
		}),
	}

	ts, done := benchServer(t)
	defer done()
	client := ts.Client()
	body := batch64Body()
	results["http_sequential_64"] = measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sequential64(b, ts, client)
		}
	})
	results["http_batch_64"] = measure(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			batch64(b, ts, client, body)
		}
	})

	ratio := func(num, den string) float64 {
		return float64(results[num].NsPerOp) / float64(results[den].NsPerOp)
	}
	doc := map[string]any{
		"queries_per_batch": benchQueries,
		"results":           results,
		"pooling_alloc_bytes_saved": results["engine_cold_query"].BytesPerOp -
			results["engine_pooled_query"].BytesPerOp,
		"cache_hit_speedup": ratio("engine_cache_miss", "engine_cache_hit"),
		"batch_speedup":     ratio("http_sequential_64", "http_batch_64"),
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: cache_hit_speedup=%.1fx batch_speedup=%.2fx",
		out, doc["cache_hit_speedup"], doc["batch_speedup"])
	if s := doc["cache_hit_speedup"].(float64); s < 10 {
		t.Errorf("cache hit speedup %.1fx, want >= 10x", s)
	}
	if s := doc["batch_speedup"].(float64); s < 2 {
		t.Errorf("batch speedup %.2fx, want >= 2x", s)
	}
}
