package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/trace"
)

// logSink collects slow-query lines emitted through the tracer.
type logSink struct {
	mu    sync.Mutex
	lines []string
}

func (l *logSink) logf(format string, args ...any) {
	l.mu.Lock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
	l.mu.Unlock()
}

func (l *logSink) all() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.lines...)
}

// tracedServer is testServerOpts with tracing on: retain every trace, flag
// everything slower than slow as a slow query.
func tracedServer(t *testing.T, sampleN int, slow time.Duration) (*httptest.Server, *server, *logSink) {
	t.Helper()
	g, h := testGraph()
	sink := &logSink{}
	srv := newServer(g, h, "test-instance", catalog.Source{}, serverOptions{
		workers: 4, maxInflight: 64, timeout: 30 * time.Second,
		engine: engine.Config{CacheEntries: 64, CacheBytes: 8 << 20},
		trace:  trace.Config{SampleN: sampleN, RingSize: 64, SlowQuery: slow, Logf: sink.logf},
	})
	t.Cleanup(srv.cat.Close)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts, srv, sink
}

func getTraces(t *testing.T, ts *httptest.Server, query string) []*trace.TraceJSON {
	t.Helper()
	var resp struct {
		Enabled bool               `json:"enabled"`
		Traces  []*trace.TraceJSON `json:"traces"`
	}
	if code := getJSON(t, ts.URL+"/debug/traces"+query, &resp); code != 200 {
		t.Fatalf("/debug/traces%s: status %d", query, code)
	}
	return resp.Traces
}

func TestTraceIDGeneratedAndEchoed(t *testing.T) {
	ts, _, _ := tracedServer(t, 1, 0)
	resp, err := http.Get(ts.URL + "/sssp?src=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	id := resp.Header.Get("X-Trace-Id")
	if id == "" {
		t.Fatal("no X-Trace-Id on a traced query response")
	}
	traces := getTraces(t, ts, "")
	if len(traces) != 1 || traces[0].ID != id {
		t.Fatalf("retained traces %+v, want one with ID %s", traces, id)
	}
}

func TestExplicitTraceIDSurvivesToRingAndSlowLog(t *testing.T) {
	// Sampling effectively off and the slow threshold at 1ns: retention must
	// come from the explicit ID and the slow path, both tagged with the
	// client's ID.
	ts, _, sink := tracedServer(t, 1<<30, time.Nanosecond)
	req, _ := http.NewRequest("GET", ts.URL+"/sssp?src=3", nil)
	req.Header.Set("X-Trace-Id", "my-debug-id-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "my-debug-id-42" {
		t.Fatalf("echoed ID %q, want the client's", got)
	}
	traces := getTraces(t, ts, "")
	if len(traces) != 1 || traces[0].ID != "my-debug-id-42" {
		t.Fatalf("explicit ID not in /debug/traces: %+v", traces)
	}
	lines := sink.all()
	if len(lines) != 1 || !strings.Contains(lines[0], "trace=my-debug-id-42") {
		t.Fatalf("slow-query log %v must carry the explicit trace ID", lines)
	}
	if !strings.Contains(lines[0], "endpoint=sssp") || !strings.Contains(lines[0], `graph="test-instance"`) {
		t.Fatalf("slow-query line missing endpoint/graph: %q", lines[0])
	}
}

func TestTraceSpanTreeCoversStages(t *testing.T) {
	ts, _, _ := tracedServer(t, 1, time.Nanosecond)
	resp, err := http.Get(ts.URL + "/sssp?src=5&solver=thorup")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	traces := getTraces(t, ts, "")
	if len(traces) != 1 {
		t.Fatalf("retained %d traces, want 1", len(traces))
	}
	tr := traces[0]
	if tr.Endpoint != "sssp" || tr.Graph != "test-instance" || tr.Solver != "thorup" || tr.Status != 200 {
		t.Fatalf("trace metadata: %+v", tr)
	}
	names := map[string]*trace.SpanJSON{}
	var walk func(s *trace.SpanJSON)
	walk = func(s *trace.SpanJSON) {
		names[s.Name] = s
		for _, c := range s.Children {
			walk(c)
		}
	}
	walk(tr.Spans)
	for _, want := range []string{"admission_wait", "catalog_acquire", "cache_lookup", "solve", "pool_checkout"} {
		if names[want] == nil {
			t.Errorf("span %q missing from trace (have %v)", want, keys(names))
		}
	}
	// The solve span carries the solver-phase counters derived from
	// core.Trace.
	solve := names["solve"]
	if solve == nil {
		t.Fatal("no solve span")
	}
	if solve.Attrs["solver"] != "thorup" {
		t.Fatalf("solve attrs: %v", solve.Attrs)
	}
	for _, attr := range []string{"settled", "relaxations", "bucket_advances", "gathers"} {
		if _, ok := solve.Attrs[attr]; !ok {
			t.Errorf("solve span missing phase attribute %q (have %v)", attr, solve.Attrs)
		}
	}
	if settled, ok := solve.Attrs["settled"].(float64); !ok || settled <= 0 {
		t.Errorf("settled attr = %v, want > 0", solve.Attrs["settled"])
	}
	// Acceptance: the stage durations sum to within the request's measured
	// wall time — stages are sequential, so their sum can never exceed it.
	var sumUS int64
	for _, c := range tr.Spans.Children {
		sumUS += c.DurUS
	}
	wallUS := int64(tr.DurMS * 1e3)
	if sumUS > wallUS+1 { // +1us for independent microsecond truncation
		t.Fatalf("stage durations sum to %dus > wall time %dus", sumUS, wallUS)
	}
	if sumUS == 0 {
		t.Fatal("all stage durations are zero; spans not measuring")
	}
}

func TestBatchItemsCarryParentTraceID(t *testing.T) {
	ts, _, _ := tracedServer(t, 1, 0)
	body := `{"queries":[{"src":1},{"src":2},{"src":-9}]}`
	req, _ := http.NewRequest("POST", ts.URL+"/batch", bytes.NewBufferString(body))
	req.Header.Set("X-Trace-Id", "batch-parent-7")
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	var out struct {
		Results []map[string]any `json:"results"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != 3 {
		t.Fatalf("results: %d", len(out.Results))
	}
	for i, item := range out.Results {
		if item["trace_id"] != "batch-parent-7" {
			t.Fatalf("item %d trace_id = %v, want the parent's", i, item["trace_id"])
		}
	}
	if _, isErr := out.Results[2]["error"]; !isErr {
		t.Fatal("item 2 should be a per-item error and still carry the trace ID")
	}
	// The retained batch trace holds one "item" span per item.
	traces := getTraces(t, ts, "")
	if len(traces) != 1 {
		t.Fatalf("retained %d traces", len(traces))
	}
	items := 0
	for _, c := range traces[0].Spans.Children {
		if c.Name == "item" {
			items++
		}
	}
	if items != 3 {
		t.Fatalf("batch trace has %d item spans, want 3", items)
	}
}

func TestDebugTracesFilters(t *testing.T) {
	ts, _, _ := tracedServer(t, 1, 0)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(fmt.Sprintf("%s/sssp?src=%d", ts.URL, i))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if got := getTraces(t, ts, ""); len(got) != 3 {
		t.Fatalf("unfiltered: %d, want 3", len(got))
	}
	if got := getTraces(t, ts, "?graph=test-instance"); len(got) != 3 {
		t.Fatalf("graph match: %d, want 3", len(got))
	}
	if got := getTraces(t, ts, "?graph=nope"); len(got) != 0 {
		t.Fatalf("graph mismatch: %d, want 0", len(got))
	}
	if got := getTraces(t, ts, "?min_ms=60000"); len(got) != 0 {
		t.Fatalf("min_ms huge: %d, want 0", len(got))
	}
	if got := getTraces(t, ts, "?limit=2"); len(got) != 2 {
		t.Fatalf("limit: %d, want 2", len(got))
	}
	var resp map[string]any
	if code := getJSON(t, ts.URL+"/debug/traces?min_ms=-1", &resp); code != 400 {
		t.Fatalf("negative min_ms: status %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/debug/traces?limit=zero", &resp); code != 400 {
		t.Fatalf("bad limit: status %d, want 400", code)
	}
}

func TestTracingDisabled(t *testing.T) {
	// SampleN 0 turns the layer off entirely: no header, no retained traces,
	// and /debug/traces still answers (empty) rather than 404ing.
	ts, _, _ := tracedServer(t, 0, 0)
	resp, err := http.Get(ts.URL + "/sssp?src=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != "" {
		t.Fatalf("disabled tracing still issued ID %q", got)
	}
	var out struct {
		Enabled bool             `json:"enabled"`
		Traces  []map[string]any `json:"traces"`
	}
	if code := getJSON(t, ts.URL+"/debug/traces", &out); code != 200 {
		t.Fatalf("/debug/traces: %d", code)
	}
	if out.Enabled || len(out.Traces) != 0 {
		t.Fatalf("disabled tracer reported %+v", out)
	}
}

func TestMetricsTracingAndRuntimeSections(t *testing.T) {
	ts, _, _ := tracedServer(t, 1, 0)
	resp, err := http.Get(ts.URL + "/sssp?src=2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var m map[string]any
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	tr, ok := m["tracing"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing tracing section: %v", m["tracing"])
	}
	if tr["enabled"] != true || tr["traces_started"].(float64) < 1 {
		t.Fatalf("tracing section: %+v", tr)
	}
	stages, ok := tr["stages"].(map[string]any)
	if !ok {
		t.Fatalf("tracing stages: %v", tr["stages"])
	}
	for _, want := range []string{"solve", "cache_lookup", "admission_wait", "catalog_acquire"} {
		if _, ok := stages[want]; !ok {
			t.Errorf("stage histogram %q missing (have %v)", want, keys(stages))
		}
	}
	rt, ok := m["runtime"].(map[string]any)
	if !ok {
		t.Fatalf("metrics missing runtime section: %v", m["runtime"])
	}
	if rt["goroutines"].(float64) < 1 || rt["heap_alloc_bytes"].(float64) <= 0 {
		t.Fatalf("runtime section: %+v", rt)
	}
}

// The shed path (503) still produces a finished trace with the admission
// span marked, and the middleware never leaks the admission token.
func TestShedRequestIsTraced(t *testing.T) {
	g, h := testGraph()
	sink := &logSink{}
	srv := newServer(g, h, "shed-test", catalog.Source{}, serverOptions{
		workers: 1, maxInflight: 1, timeout: 30 * time.Second,
		trace: trace.Config{SampleN: 1, RingSize: 16, Logf: sink.logf},
	})
	defer srv.cat.Close()
	// Fill the only admission slot.
	srv.sem <- struct{}{}
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/sssp?src=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	<-srv.sem
	traces := srv.tracer.Traces(trace.Filter{})
	if len(traces) != 1 || traces[0].Status != 503 {
		t.Fatalf("shed trace: %+v", traces)
	}
	found := false
	for _, c := range traces[0].Spans.Children {
		if c.Name == "admission_wait" && c.Attrs["shed"] == true {
			found = true
		}
	}
	if !found {
		t.Fatalf("shed admission span missing: %+v", traces[0].Spans.Children)
	}
}

func keys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
