package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/ch"
	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
)

func testServer(t *testing.T) (*httptest.Server, *graph.Graph) {
	t.Helper()
	g := gen.Random(500, 2000, 1<<10, gen.UWD, 7)
	h := ch.BuildKruskal(g)
	srv := newServer(g, h, "test-instance", 4)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts, g
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestHealthAndStats(t *testing.T) {
	ts, g := testServer(t)
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, health)
	}
	var stats map[string]any
	if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if int(stats["vertices"].(float64)) != g.NumVertices() {
		t.Fatalf("stats vertices %v", stats["vertices"])
	}
	if stats["chNodes"].(float64) <= float64(g.NumVertices()) {
		t.Fatalf("chNodes %v", stats["chNodes"])
	}
}

func TestSSSPEndpoint(t *testing.T) {
	ts, g := testServer(t)
	var resp struct {
		Src          int32   `json:"src"`
		Reached      int     `json:"reached"`
		Eccentricity int64   `json:"eccentricity"`
		Dist         []int64 `json:"dist"`
	}
	if code := getJSON(t, ts.URL+"/sssp?src=3&full=1", &resp); code != 200 {
		t.Fatalf("code %d", code)
	}
	want := dijkstra.SSSP(g, 3)
	if resp.Reached != g.NumVertices() {
		t.Fatalf("reached %d", resp.Reached)
	}
	for v := range want {
		w := want[v]
		if w == graph.Inf {
			w = -1
		}
		if resp.Dist[v] != w {
			t.Fatalf("dist[%d]=%d want %d", v, resp.Dist[v], w)
		}
	}
}

func TestDistAndSTEndpointsAgree(t *testing.T) {
	ts, g := testServer(t)
	want := dijkstra.SSSP(g, 10)[450]
	var d1, d2 struct {
		Dist      int64 `json:"dist"`
		Reachable bool  `json:"reachable"`
	}
	if code := getJSON(t, ts.URL+"/dist?src=10&dst=450", &d1); code != 200 {
		t.Fatalf("dist code %d", code)
	}
	if code := getJSON(t, ts.URL+"/st?s=10&t=450", &d2); code != 200 {
		t.Fatalf("st code %d", code)
	}
	if d1.Dist != want || d2.Dist != want || !d1.Reachable {
		t.Fatalf("dist=%d st=%d want %d", d1.Dist, d2.Dist, want)
	}
}

func TestTableEndpoint(t *testing.T) {
	ts, g := testServer(t)
	var resp struct {
		Dist [][]int64 `json:"dist"`
	}
	if code := getJSON(t, ts.URL+"/table?src=0,5&dst=7,9,11", &resp); code != 200 {
		t.Fatalf("code %d", code)
	}
	for i, src := range []int32{0, 5} {
		want := dijkstra.SSSP(g, src)
		for j, tgt := range []int32{7, 9, 11} {
			if resp.Dist[i][j] != want[tgt] {
				t.Fatalf("table[%d][%d]=%d want %d", i, j, resp.Dist[i][j], want[tgt])
			}
		}
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := testServer(t)
	for _, path := range []string{
		"/sssp?src=99999", "/sssp?src=-1", "/sssp?src=abc", "/sssp",
		"/dist?src=0&dst=99999", "/st?s=0&t=zz",
		"/table?src=0&dst=", "/table?src=&dst=0", "/table?src=0,x&dst=1",
	} {
		var e map[string]string
		if code := getJSON(t, ts.URL+path, &e); code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", path, code)
		}
	}
}

func TestConcurrentQueries(t *testing.T) {
	ts, g := testServer(t)
	oracle := make(map[int32][]int64)
	for _, src := range []int32{0, 100, 200, 300, 400} {
		oracle[src] = dijkstra.SSSP(g, src)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := int32((i % 5) * 100)
			dst := int32(7 + i)
			var resp struct {
				Dist int64 `json:"dist"`
			}
			r, err := http.Get(fmt.Sprintf("%s/dist?src=%d&dst=%d", ts.URL, src, dst))
			if err != nil {
				errs <- err
				return
			}
			defer r.Body.Close()
			if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
				errs <- err
				return
			}
			if want := oracle[src][dst]; resp.Dist != want {
				errs <- fmt.Errorf("src %d dst %d: got %d want %d", src, dst, resp.Dist, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
