package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bytes"

	"repro/internal/catalog"
	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/dijkstra"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/snapshot"
)

func testGraph() (*graph.Graph, *ch.Hierarchy) {
	g := gen.Random(500, 2000, 1<<10, gen.UWD, 7)
	return g, ch.BuildKruskal(g)
}

func testServerOpts(t *testing.T, maxInflight int, timeout time.Duration) (*httptest.Server, *server, *graph.Graph) {
	t.Helper()
	g, h := testGraph()
	srv := newServer(g, h, "test-instance", catalog.Source{}, serverOptions{
		workers: 4, maxInflight: maxInflight, timeout: timeout,
		engine: engine.Config{CacheEntries: 64, CacheBytes: 8 << 20},
	})
	t.Cleanup(srv.cat.Close)
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts, srv, g
}

func testServer(t *testing.T) (*httptest.Server, *graph.Graph) {
	t.Helper()
	ts, _, g := testServerOpts(t, 64, 30*time.Second)
	return ts, g
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestHealthAndStats(t *testing.T) {
	ts, g := testServer(t)
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, health)
	}
	var stats map[string]any
	if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if int(stats["vertices"].(float64)) != g.NumVertices() {
		t.Fatalf("stats vertices %v", stats["vertices"])
	}
	if stats["chNodes"].(float64) <= float64(g.NumVertices()) {
		t.Fatalf("chNodes %v", stats["chNodes"])
	}
	if stats["instanceBytes"].(float64) <= 0 {
		t.Fatalf("instanceBytes %v", stats["instanceBytes"])
	}
	cat, ok := stats["catalog"].(map[string]any)
	if !ok {
		t.Fatalf("stats missing catalog section: %v", stats["catalog"])
	}
	if cat["graphs"].(float64) != 1 || cat["ready"].(float64) != 1 {
		t.Fatalf("catalog occupancy: %v", cat)
	}
}

// /stats must report the same instance footprint as an allocated query would,
// without allocating one.
func TestStatsInstanceBytesMatchesQuery(t *testing.T) {
	ts, srv, _ := testServerOpts(t, 8, time.Minute)
	var stats struct {
		InstanceBytes int64 `json:"instanceBytes"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	gen1, release, err := srv.cat.Acquire(srv.defaultGraph)
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if want := core.NewSolver(gen1.H, par.NewExec(1)).Query().InstanceBytes(); stats.InstanceBytes != want {
		t.Fatalf("instanceBytes %d, want %d", stats.InstanceBytes, want)
	}
}

func TestSSSPEndpoint(t *testing.T) {
	ts, g := testServer(t)
	var resp struct {
		Src          int32   `json:"src"`
		Reached      int     `json:"reached"`
		Eccentricity int64   `json:"eccentricity"`
		Dist         []int64 `json:"dist"`
	}
	if code := getJSON(t, ts.URL+"/sssp?src=3&full=1", &resp); code != 200 {
		t.Fatalf("code %d", code)
	}
	want := dijkstra.SSSP(g, 3)
	if resp.Reached != g.NumVertices() {
		t.Fatalf("reached %d", resp.Reached)
	}
	for v := range want {
		w := want[v]
		if w == graph.Inf {
			w = -1
		}
		if resp.Dist[v] != w {
			t.Fatalf("dist[%d]=%d want %d", v, resp.Dist[v], w)
		}
	}
}

// full=1 must report unreachable vertices as -1, not Inf.
func TestSSSPFullUnreachableIsMinusOne(t *testing.T) {
	// Two-vertex graph with a single self-loop: vertex 1 is unreachable.
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 0, W: 5}})
	srv := newServer(g, ch.BuildKruskal(g), "disconnected", catalog.Source{},
		serverOptions{workers: 2, maxInflight: 8, timeout: time.Minute})
	t.Cleanup(srv.cat.Close)
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()
	var resp struct {
		Reached int     `json:"reached"`
		Dist    []int64 `json:"dist"`
	}
	if code := getJSON(t, ts.URL+"/sssp?src=0&full=1", &resp); code != 200 {
		t.Fatalf("code %d", code)
	}
	if resp.Reached != 1 {
		t.Fatalf("reached %d, want 1", resp.Reached)
	}
	if len(resp.Dist) != 2 || resp.Dist[0] != 0 || resp.Dist[1] != -1 {
		t.Fatalf("dist %v, want [0 -1]", resp.Dist)
	}
}

func TestDistAndSTEndpointsAgree(t *testing.T) {
	ts, g := testServer(t)
	want := dijkstra.SSSP(g, 10)[450]
	var d1, d2 struct {
		Dist      int64 `json:"dist"`
		Reachable bool  `json:"reachable"`
	}
	if code := getJSON(t, ts.URL+"/dist?src=10&dst=450", &d1); code != 200 {
		t.Fatalf("dist code %d", code)
	}
	if code := getJSON(t, ts.URL+"/st?s=10&t=450", &d2); code != 200 {
		t.Fatalf("st code %d", code)
	}
	if d1.Dist != want || d2.Dist != want || !d1.Reachable {
		t.Fatalf("dist=%d st=%d want %d", d1.Dist, d2.Dist, want)
	}
}

func TestTableEndpoint(t *testing.T) {
	ts, g := testServer(t)
	var resp struct {
		Dist [][]int64 `json:"dist"`
	}
	if code := getJSON(t, ts.URL+"/table?src=0,5&dst=7,9,11", &resp); code != 200 {
		t.Fatalf("code %d", code)
	}
	for i, src := range []int32{0, 5} {
		want := dijkstra.SSSP(g, src)
		for j, tgt := range []int32{7, 9, 11} {
			if resp.Dist[i][j] != want[tgt] {
				t.Fatalf("table[%d][%d]=%d want %d", i, j, resp.Dist[i][j], want[tgt])
			}
		}
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := testServer(t)
	for _, path := range []string{
		"/sssp?src=99999", "/sssp?src=-1", "/sssp?src=abc", "/sssp",
		"/dist?src=0&dst=99999", "/st?s=0&t=zz",
		"/table?src=0&dst=", "/table?src=&dst=0", "/table?src=0,x&dst=1",
	} {
		var e map[string]string
		if code := getJSON(t, ts.URL+path, &e); code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", path, code)
		}
		if e["error"] == "" {
			t.Errorf("%s: missing error message", path)
		}
	}
}

// A src×dst product beyond the limit must be rejected before any work runs.
func TestTableTooLarge(t *testing.T) {
	g := gen.Random(500, 2000, 1<<10, gen.UWD, 7)
	srv := newServer(g, ch.BuildKruskal(g), "big-table", catalog.Source{},
		serverOptions{workers: 2, maxInflight: 8, timeout: time.Minute})
	t.Cleanup(srv.cat.Close)
	// 500 sources x 500 targets = 250000 <= 1<<20 is fine; force the limit
	// down by hitting the real one: build a 1049-long src list crossing a
	// 1000-long dst list (1049*1000 > 1<<20) from in-range vertices.
	src, dst := "", ""
	for i := 0; i < 500; i++ {
		if i > 0 {
			src += ","
			dst += ","
		}
		src += fmt.Sprint(i % 500)
		dst += fmt.Sprint(i % 500)
	}
	// 500*500 = 250k: allowed. Repeat src 5x -> 2500*500 = 1.25M > 1<<20.
	bigSrc := src + "," + src + "," + src + "," + src + "," + src
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()
	var e map[string]string
	if code := getJSON(t, ts.URL+"/table?src="+bigSrc+"&dst="+dst, &e); code != http.StatusBadRequest {
		t.Fatalf("code %d, want 400", code)
	}
	if e["error"] != "table too large" {
		t.Fatalf("error %q", e["error"])
	}
}

// With the admission semaphore saturated, query endpoints shed with 503 +
// Retry-After while health and metrics stay available.
func TestLoadSheddingWhenSaturated(t *testing.T) {
	ts, srv, _ := testServerOpts(t, 2, time.Minute)
	srv.sem <- struct{}{} // occupy both slots, as two stuck queries would
	srv.sem <- struct{}{}
	defer func() { <-srv.sem; <-srv.sem }()

	for _, path := range []string{"/sssp?src=1", "/dist?src=0&dst=1", "/st?s=0&t=1", "/table?src=0&dst=1", "/batch"} {
		var resp *http.Response
		var err error
		if path == "/batch" {
			resp, err = http.Post(ts.URL+path, "application/json",
				bytes.NewBufferString(`{"queries":[{"src":1}]}`))
		} else {
			resp, err = http.Get(ts.URL + path)
		}
		if err != nil {
			t.Fatal(err)
		}
		var e map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s: code %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s: missing Retry-After", path)
		}
		if e["error"] == "" {
			t.Fatalf("%s: missing error body", path)
		}
	}
	// Non-query endpoints are not subject to admission control.
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz sheddable: %d", code)
	}
	var m struct {
		Endpoints map[string]struct {
			Shed int64 `json:"shed"`
		} `json:"endpoints"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics sheddable: %d", code)
	}
	if m.Endpoints["sssp"].Shed != 1 || m.Endpoints["table"].Shed != 1 || m.Endpoints["batch"].Shed != 1 {
		t.Fatalf("shed counters not recorded: %+v", m.Endpoints)
	}
}

// An expired per-request deadline answers 504 on every query endpoint and
// counts as a timeout in the metrics.
func TestQueryTimeout(t *testing.T) {
	ts, _, _ := testServerOpts(t, 8, time.Nanosecond)
	for _, path := range []string{"/sssp?src=1", "/dist?src=0&dst=1", "/st?s=0&t=1", "/table?src=0&dst=1"} {
		var e map[string]string
		if code := getJSON(t, ts.URL+path, &e); code != http.StatusGatewayTimeout {
			t.Fatalf("%s: code %d, want 504", path, code)
		}
	}
	resp, err := http.Post(ts.URL+"/batch", "application/json",
		bytes.NewBufferString(`{"queries":[{"src":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("/batch: code %d, want 504", resp.StatusCode)
	}
	var m struct {
		Endpoints map[string]struct {
			Timeout int64 `json:"timeout"`
		} `json:"endpoints"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	for _, ep := range []string{"sssp", "dist", "st", "table", "batch"} {
		if m.Endpoints[ep].Timeout != 1 {
			t.Fatalf("%s timeout counter %d, want 1", ep, m.Endpoints[ep].Timeout)
		}
	}
}

// /metrics reflects per-endpoint requests, status classes, latency
// histograms, the aggregated Thorup trace of completed queries, and the
// catalog counters.
func TestMetricsEndpoint(t *testing.T) {
	ts, _, g := testServerOpts(t, 8, time.Minute)
	// Distinct sources pinned to the Thorup solver: the cache must not
	// collapse them, and each run must fold its trace into the aggregate.
	for i := 0; i < 3; i++ {
		var r map[string]any
		if code := getJSON(t, fmt.Sprintf("%s/sssp?src=%d&solver=thorup", ts.URL, i), &r); code != 200 {
			t.Fatalf("sssp: %d", code)
		}
		if r["solver"] != "thorup" || r["via"] != "solve" {
			t.Fatalf("sssp response routing: solver=%v via=%v", r["solver"], r["via"])
		}
	}
	var bad map[string]string
	getJSON(t, ts.URL+"/sssp?src=banana", &bad)

	var m struct {
		Instance      string  `json:"instance"`
		Generation    uint64  `json:"generation"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		InflightLimit int     `json:"inflight_limit"`
		Endpoints     map[string]struct {
			Requests int64            `json:"requests"`
			InFlight int64            `json:"in_flight"`
			Status   map[string]int64 `json:"status"`
			Latency  struct {
				Count   int64 `json:"count"`
				Buckets []struct {
					LEMillis float64 `json:"le_ms"`
					Count    int64   `json:"count"`
				} `json:"buckets"`
			} `json:"latency"`
		} `json:"endpoints"`
		Catalog struct {
			Graphs int64 `json:"graphs"`
			Ready  int64 `json:"ready"`
			Swaps  int64 `json:"swaps"`
		} `json:"catalog"`
		Engine struct {
			Solves      int64            `json:"solves"`
			CacheMisses int64            `json:"cache_misses"`
			SolverRuns  map[string]int64 `json:"solver_runs"`
		} `json:"engine"`
		Thorup struct {
			Queries           int64   `json:"queries"`
			Settled           int64   `json:"settled"`
			Relaxations       int64   `json:"relaxations"`
			PropagationHops   int64   `json:"propagation_hops"`
			HopsPerRelaxation float64 `json:"hops_per_relaxation"`
			Gathers           int64   `json:"gathers"`
			BucketAdvances    int64   `json:"bucket_advances"`
			MaxTovisit        int64   `json:"max_tovisit"`
		} `json:"thorup"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	if m.Instance != "test-instance" || m.InflightLimit != 8 || m.Generation != 1 {
		t.Fatalf("identity fields: %+v", m)
	}
	ep := m.Endpoints["sssp"]
	if ep.Requests != 4 || ep.Status["2xx"] != 3 || ep.Status["4xx"] != 1 {
		t.Fatalf("sssp endpoint metrics: %+v", ep)
	}
	if ep.Latency.Count != 4 || len(ep.Latency.Buckets) == 0 {
		t.Fatalf("latency histogram: %+v", ep.Latency)
	}
	// 3 successful queries over a connected 500-vertex graph.
	if m.Thorup.Queries != 3 || m.Thorup.Settled != int64(3*g.NumVertices()) {
		t.Fatalf("thorup aggregate: %+v", m.Thorup)
	}
	if m.Thorup.Relaxations == 0 || m.Thorup.Gathers == 0 || m.Thorup.HopsPerRelaxation <= 0 {
		t.Fatalf("thorup counters empty: %+v", m.Thorup)
	}
	if m.Engine.Solves != 3 || m.Engine.CacheMisses != 3 || m.Engine.SolverRuns["thorup"] != 3 {
		t.Fatalf("engine metrics: %+v", m.Engine)
	}
	if m.Catalog.Graphs != 1 || m.Catalog.Ready != 1 || m.Catalog.Swaps != 1 {
		t.Fatalf("catalog metrics: %+v", m.Catalog)
	}
}

func TestConcurrentQueries(t *testing.T) {
	ts, g := testServer(t)
	oracle := make(map[int32][]int64)
	for _, src := range []int32{0, 100, 200, 300, 400} {
		oracle[src] = dijkstra.SSSP(g, src)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := int32((i % 5) * 100)
			dst := int32(7 + i)
			var resp struct {
				Dist int64 `json:"dist"`
			}
			r, err := http.Get(fmt.Sprintf("%s/dist?src=%d&dst=%d", ts.URL, src, dst))
			if err != nil {
				errs <- err
				return
			}
			defer r.Body.Close()
			if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
				errs <- err
				return
			}
			if want := oracle[src][dst]; resp.Dist != want {
				errs <- fmt.Errorf("src %d dst %d: got %d want %d", src, dst, resp.Dist, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// A second graph loaded through the admin API serves under ?graph= with
// correct answers, independent of the default graph; reload advances its
// generation and unload takes it back out of service.
func TestMultiGraphServing(t *testing.T) {
	ts, srv, _ := testServerOpts(t, 64, 30*time.Second)

	// Unknown name: 404 before any work runs.
	var e map[string]string
	if code := getJSON(t, ts.URL+"/sssp?src=0&graph=nope", &e); code != http.StatusNotFound {
		t.Fatalf("unknown graph: code %d, want 404", code)
	}

	// Load a second, different graph from a snapshot so the test knows its
	// exact contents.
	g2 := gen.Random(300, 1200, 1<<10, gen.UWD, 99)
	h2 := ch.BuildKruskal(g2)
	snap := filepath.Join(t.TempDir(), "g2.snap")
	if err := snapshot.WriteFile(snap, g2, h2); err != nil {
		t.Fatal(err)
	}
	var loadResp map[string]string
	body := fmt.Sprintf(`{"name":"g2","snapshot":%q}`, snap)
	if code := postJSON(t, ts.URL+"/graphs/load", body, &loadResp); code != http.StatusAccepted {
		t.Fatalf("load: code %d (%v), want 202", code, loadResp)
	}
	if err := srv.cat.WaitReady("g2", 30*time.Second); err != nil {
		t.Fatal(err)
	}

	// The second graph answers under its own name, exactly per Dijkstra on it.
	var resp struct {
		Reached int     `json:"reached"`
		Dist    []int64 `json:"dist"`
	}
	if code := getJSON(t, ts.URL+"/sssp?src=3&full=1&graph=g2", &resp); code != 200 {
		t.Fatalf("g2 query: code %d", code)
	}
	want := dijkstra.SSSP(g2, 3)
	if len(resp.Dist) != g2.NumVertices() {
		t.Fatalf("g2 dist length %d, want %d", len(resp.Dist), g2.NumVertices())
	}
	for v, w := range want {
		if w == graph.Inf {
			w = -1
		}
		if resp.Dist[v] != w {
			t.Fatalf("g2 dist[%d]=%d want %d", v, resp.Dist[v], w)
		}
	}
	// The default graph still serves without ?graph=.
	var def map[string]any
	if code := getJSON(t, ts.URL+"/sssp?src=3", &def); code != 200 {
		t.Fatalf("default graph: code %d", code)
	}

	// /graphs lists both graphs as ready.
	var listing struct {
		Default string `json:"default"`
		Graphs  []struct {
			Name  string `json:"name"`
			State string `json:"state"`
			Gen   uint64 `json:"gen"`
		} `json:"graphs"`
	}
	if code := getJSON(t, ts.URL+"/graphs", &listing); code != 200 {
		t.Fatalf("graphs: code %d", code)
	}
	if listing.Default != "test-instance" || len(listing.Graphs) != 2 {
		t.Fatalf("graphs listing: %+v", listing)
	}
	for _, gs := range listing.Graphs {
		if gs.State != "ready" {
			t.Fatalf("graph %s state %s, want ready", gs.Name, gs.State)
		}
	}

	// Reload hot-swaps in a new generation.
	if code := postJSON(t, ts.URL+"/graphs/reload", `{"name":"g2"}`, &map[string]any{}); code != http.StatusAccepted {
		t.Fatalf("reload: code %d, want 202", code)
	}
	if err := srv.cat.WaitReady("g2", 30*time.Second); err != nil {
		t.Fatal(err)
	}
	gen2, release, err := srv.cat.Acquire("g2")
	if err != nil {
		t.Fatal(err)
	}
	if gen2.Gen != 2 {
		t.Fatalf("after reload gen %d, want 2", gen2.Gen)
	}
	release()

	// Unload drains it out of service: queries stop with 503 (evicted), the
	// default graph is untouched.
	if code := postJSON(t, ts.URL+"/graphs/unload", `{"name":"g2"}`, &map[string]string{}); code != 200 {
		t.Fatalf("unload: code %d, want 200", code)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var e map[string]string
		code := getJSON(t, ts.URL+"/sssp?src=0&graph=g2", &e)
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("g2 still answering %d after unload", code)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code := getJSON(t, ts.URL+"/sssp?src=3", &def); code != 200 {
		t.Fatalf("default graph after unload: code %d", code)
	}
}

// Admin endpoint validation: malformed bodies and lifecycle conflicts map to
// the right status codes, and a generator-source load works end to end.
func TestGraphAdminValidation(t *testing.T) {
	ts, srv, _ := testServerOpts(t, 64, 30*time.Second)
	for _, tc := range []struct {
		path, body string
		want       int
	}{
		{"/graphs/load", `not json`, http.StatusBadRequest},
		{"/graphs/load", `{"snapshot":"x.snap"}`, http.StatusBadRequest},                 // no name
		{"/graphs/load", `{"name":"x"}`, http.StatusBadRequest},                          // no source
		{"/graphs/load", `{"name":"test-instance","class":"rand"}`, http.StatusConflict}, // already loaded
		{"/graphs/reload", `{"name":"nope"}`, http.StatusNotFound},
		{"/graphs/unload", `{"name":"nope"}`, http.StatusNotFound},
	} {
		var e map[string]string
		if code := postJSON(t, ts.URL+tc.path, tc.body, &e); code != tc.want {
			t.Errorf("%s %s: code %d, want %d (%v)", tc.path, tc.body, code, tc.want, e)
		} else if e["error"] == "" {
			t.Errorf("%s %s: missing error message", tc.path, tc.body)
		}
	}

	// A generator-described source loads in the background and serves.
	body := `{"name":"little","class":"rand","logn":8,"logc":8,"seed":3}`
	if code := postJSON(t, ts.URL+"/graphs/load", body, &map[string]string{}); code != http.StatusAccepted {
		t.Fatalf("generator load: code %d, want 202", code)
	}
	if err := srv.cat.WaitReady("little", 30*time.Second); err != nil {
		t.Fatal(err)
	}
	var resp struct {
		Reached int `json:"reached"`
	}
	if code := getJSON(t, ts.URL+"/sssp?src=0&graph=little", &resp); code != 200 || resp.Reached <= 0 {
		t.Fatalf("generator graph query: code %d reached %d", code, resp.Reached)
	}
}

// Shutdown must drain in-flight requests: a request that is mid-handler when
// the stop signal arrives still completes with 200.
func TestGracefulShutdownDrains(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		w.WriteHeader(200)
		fmt.Fprint(w, `{"ok":true}`)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: mux}
	ctx, cancel := context.WithCancel(context.Background())

	serveErr := make(chan error, 1)
	go func() {
		errc := make(chan error, 1)
		go func() { errc <- hs.Serve(ln) }()
		select {
		case err := <-errc:
			serveErr <- err
			return
		case <-ctx.Done():
		}
		sctx, c := context.WithTimeout(context.Background(), 5*time.Second)
		defer c()
		if err := hs.Shutdown(sctx); err != nil {
			serveErr <- err
			return
		}
		serveErr <- nil
	}()

	reqErr := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			reqErr <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			reqErr <- fmt.Errorf("status %d", resp.StatusCode)
			return
		}
		reqErr <- nil
	}()

	<-started // request is in-flight
	cancel()  // shutdown begins while the handler is blocked
	time.Sleep(50 * time.Millisecond)
	close(release) // handler finishes during the drain window

	if err := <-reqErr; err != nil {
		t.Fatalf("in-flight request not drained: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// The production serve() helper: clean drain returns nil.
func TestServeHelperShutsDownCleanly(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	g, h := testGraph()
	srv := newServer(g, h, "drain-test", catalog.Source{},
		serverOptions{workers: 2, maxInflight: 8, timeout: time.Minute})
	t.Cleanup(srv.cat.Close)
	// serve() uses hs.ListenAndServe; grab a free port for it.
	addr := ln.Addr().String()
	ln.Close()
	hs := &http.Server{Addr: addr, Handler: srv.mux()}
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, hs, 5*time.Second)
	}()
	// Wait until the server answers, proving ListenAndServe is up.
	url := "http://" + hs.Addr + "/healthz"
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after cancel")
	}
}
