package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"bytes"

	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/dijkstra"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
)

func testGraph() (*graph.Graph, *ch.Hierarchy) {
	g := gen.Random(500, 2000, 1<<10, gen.UWD, 7)
	return g, ch.BuildKruskal(g)
}

func testServerOpts(t *testing.T, maxInflight int, timeout time.Duration) (*httptest.Server, *server, *graph.Graph) {
	t.Helper()
	g, h := testGraph()
	srv := newServer(g, h, "test-instance", 4, maxInflight, timeout,
		engine.Config{CacheEntries: 64, CacheBytes: 8 << 20})
	ts := httptest.NewServer(srv.mux())
	t.Cleanup(ts.Close)
	return ts, srv, g
}

func testServer(t *testing.T) (*httptest.Server, *graph.Graph) {
	t.Helper()
	ts, _, g := testServerOpts(t, 64, 30*time.Second)
	return ts, g
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decode %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestHealthAndStats(t *testing.T) {
	ts, g := testServer(t)
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 || health["status"] != "ok" {
		t.Fatalf("healthz: %d %v", code, health)
	}
	var stats map[string]any
	if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if int(stats["vertices"].(float64)) != g.NumVertices() {
		t.Fatalf("stats vertices %v", stats["vertices"])
	}
	if stats["chNodes"].(float64) <= float64(g.NumVertices()) {
		t.Fatalf("chNodes %v", stats["chNodes"])
	}
	if stats["instanceBytes"].(float64) <= 0 {
		t.Fatalf("instanceBytes %v", stats["instanceBytes"])
	}
}

// /stats must report the same instance footprint as an allocated query would,
// without allocating one.
func TestStatsInstanceBytesMatchesQuery(t *testing.T) {
	ts, srv, _ := testServerOpts(t, 8, time.Minute)
	var stats struct {
		InstanceBytes int64 `json:"instanceBytes"`
	}
	if code := getJSON(t, ts.URL+"/stats", &stats); code != 200 {
		t.Fatalf("stats: %d", code)
	}
	if want := core.NewSolver(srv.h, par.NewExec(1)).Query().InstanceBytes(); stats.InstanceBytes != want {
		t.Fatalf("instanceBytes %d, want %d", stats.InstanceBytes, want)
	}
}

func TestSSSPEndpoint(t *testing.T) {
	ts, g := testServer(t)
	var resp struct {
		Src          int32   `json:"src"`
		Reached      int     `json:"reached"`
		Eccentricity int64   `json:"eccentricity"`
		Dist         []int64 `json:"dist"`
	}
	if code := getJSON(t, ts.URL+"/sssp?src=3&full=1", &resp); code != 200 {
		t.Fatalf("code %d", code)
	}
	want := dijkstra.SSSP(g, 3)
	if resp.Reached != g.NumVertices() {
		t.Fatalf("reached %d", resp.Reached)
	}
	for v := range want {
		w := want[v]
		if w == graph.Inf {
			w = -1
		}
		if resp.Dist[v] != w {
			t.Fatalf("dist[%d]=%d want %d", v, resp.Dist[v], w)
		}
	}
}

// full=1 must report unreachable vertices as -1, not Inf.
func TestSSSPFullUnreachableIsMinusOne(t *testing.T) {
	// Two-vertex graph with a single self-loop: vertex 1 is unreachable.
	g := graph.FromEdges(2, []graph.Edge{{U: 0, V: 0, W: 5}})
	srv := newServer(g, ch.BuildKruskal(g), "disconnected", 2, 8, time.Minute, engine.Config{})
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()
	var resp struct {
		Reached int     `json:"reached"`
		Dist    []int64 `json:"dist"`
	}
	if code := getJSON(t, ts.URL+"/sssp?src=0&full=1", &resp); code != 200 {
		t.Fatalf("code %d", code)
	}
	if resp.Reached != 1 {
		t.Fatalf("reached %d, want 1", resp.Reached)
	}
	if len(resp.Dist) != 2 || resp.Dist[0] != 0 || resp.Dist[1] != -1 {
		t.Fatalf("dist %v, want [0 -1]", resp.Dist)
	}
}

func TestDistAndSTEndpointsAgree(t *testing.T) {
	ts, g := testServer(t)
	want := dijkstra.SSSP(g, 10)[450]
	var d1, d2 struct {
		Dist      int64 `json:"dist"`
		Reachable bool  `json:"reachable"`
	}
	if code := getJSON(t, ts.URL+"/dist?src=10&dst=450", &d1); code != 200 {
		t.Fatalf("dist code %d", code)
	}
	if code := getJSON(t, ts.URL+"/st?s=10&t=450", &d2); code != 200 {
		t.Fatalf("st code %d", code)
	}
	if d1.Dist != want || d2.Dist != want || !d1.Reachable {
		t.Fatalf("dist=%d st=%d want %d", d1.Dist, d2.Dist, want)
	}
}

func TestTableEndpoint(t *testing.T) {
	ts, g := testServer(t)
	var resp struct {
		Dist [][]int64 `json:"dist"`
	}
	if code := getJSON(t, ts.URL+"/table?src=0,5&dst=7,9,11", &resp); code != 200 {
		t.Fatalf("code %d", code)
	}
	for i, src := range []int32{0, 5} {
		want := dijkstra.SSSP(g, src)
		for j, tgt := range []int32{7, 9, 11} {
			if resp.Dist[i][j] != want[tgt] {
				t.Fatalf("table[%d][%d]=%d want %d", i, j, resp.Dist[i][j], want[tgt])
			}
		}
	}
}

func TestBadRequests(t *testing.T) {
	ts, _ := testServer(t)
	for _, path := range []string{
		"/sssp?src=99999", "/sssp?src=-1", "/sssp?src=abc", "/sssp",
		"/dist?src=0&dst=99999", "/st?s=0&t=zz",
		"/table?src=0&dst=", "/table?src=&dst=0", "/table?src=0,x&dst=1",
	} {
		var e map[string]string
		if code := getJSON(t, ts.URL+path, &e); code != http.StatusBadRequest {
			t.Errorf("%s: code %d, want 400", path, code)
		}
		if e["error"] == "" {
			t.Errorf("%s: missing error message", path)
		}
	}
}

// A src×dst product beyond the limit must be rejected before any work runs.
func TestTableTooLarge(t *testing.T) {
	g := gen.Random(500, 2000, 1<<10, gen.UWD, 7)
	srv := newServer(g, ch.BuildKruskal(g), "big-table", 2, 8, time.Minute, engine.Config{})
	// 500 sources x 500 targets = 250000 <= 1<<20 is fine; force the limit
	// down by hitting the real one: build a 1049-long src list crossing a
	// 1000-long dst list (1049*1000 > 1<<20) from in-range vertices.
	src, dst := "", ""
	for i := 0; i < 500; i++ {
		if i > 0 {
			src += ","
			dst += ","
		}
		src += fmt.Sprint(i % 500)
		dst += fmt.Sprint(i % 500)
	}
	// 500*500 = 250k: allowed. Repeat src 5x -> 2500*500 = 1.25M > 1<<20.
	bigSrc := src + "," + src + "," + src + "," + src + "," + src
	ts := httptest.NewServer(srv.mux())
	defer ts.Close()
	var e map[string]string
	if code := getJSON(t, ts.URL+"/table?src="+bigSrc+"&dst="+dst, &e); code != http.StatusBadRequest {
		t.Fatalf("code %d, want 400", code)
	}
	if e["error"] != "table too large" {
		t.Fatalf("error %q", e["error"])
	}
}

// With the admission semaphore saturated, query endpoints shed with 503 +
// Retry-After while health and metrics stay available.
func TestLoadSheddingWhenSaturated(t *testing.T) {
	ts, srv, _ := testServerOpts(t, 2, time.Minute)
	srv.sem <- struct{}{} // occupy both slots, as two stuck queries would
	srv.sem <- struct{}{}
	defer func() { <-srv.sem; <-srv.sem }()

	for _, path := range []string{"/sssp?src=1", "/dist?src=0&dst=1", "/st?s=0&t=1", "/table?src=0&dst=1", "/batch"} {
		var resp *http.Response
		var err error
		if path == "/batch" {
			resp, err = http.Post(ts.URL+path, "application/json",
				bytes.NewBufferString(`{"queries":[{"src":1}]}`))
		} else {
			resp, err = http.Get(ts.URL + path)
		}
		if err != nil {
			t.Fatal(err)
		}
		var e map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s: code %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s: missing Retry-After", path)
		}
		if e["error"] == "" {
			t.Fatalf("%s: missing error body", path)
		}
	}
	// Non-query endpoints are not subject to admission control.
	var health map[string]string
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz sheddable: %d", code)
	}
	var m struct {
		Endpoints map[string]struct {
			Shed int64 `json:"shed"`
		} `json:"endpoints"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics sheddable: %d", code)
	}
	if m.Endpoints["sssp"].Shed != 1 || m.Endpoints["table"].Shed != 1 || m.Endpoints["batch"].Shed != 1 {
		t.Fatalf("shed counters not recorded: %+v", m.Endpoints)
	}
}

// An expired per-request deadline answers 504 on every query endpoint and
// counts as a timeout in the metrics.
func TestQueryTimeout(t *testing.T) {
	ts, _, _ := testServerOpts(t, 8, time.Nanosecond)
	for _, path := range []string{"/sssp?src=1", "/dist?src=0&dst=1", "/st?s=0&t=1", "/table?src=0&dst=1"} {
		var e map[string]string
		if code := getJSON(t, ts.URL+path, &e); code != http.StatusGatewayTimeout {
			t.Fatalf("%s: code %d, want 504", path, code)
		}
	}
	resp, err := http.Post(ts.URL+"/batch", "application/json",
		bytes.NewBufferString(`{"queries":[{"src":1}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("/batch: code %d, want 504", resp.StatusCode)
	}
	var m struct {
		Endpoints map[string]struct {
			Timeout int64 `json:"timeout"`
		} `json:"endpoints"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	for _, ep := range []string{"sssp", "dist", "st", "table", "batch"} {
		if m.Endpoints[ep].Timeout != 1 {
			t.Fatalf("%s timeout counter %d, want 1", ep, m.Endpoints[ep].Timeout)
		}
	}
}

// /metrics reflects per-endpoint requests, status classes, latency
// histograms, and the aggregated Thorup trace of completed queries.
func TestMetricsEndpoint(t *testing.T) {
	ts, _, g := testServerOpts(t, 8, time.Minute)
	// Distinct sources pinned to the Thorup solver: the cache must not
	// collapse them, and each run must fold its trace into the aggregate.
	for i := 0; i < 3; i++ {
		var r map[string]any
		if code := getJSON(t, fmt.Sprintf("%s/sssp?src=%d&solver=thorup", ts.URL, i), &r); code != 200 {
			t.Fatalf("sssp: %d", code)
		}
		if r["solver"] != "thorup" || r["via"] != "solve" {
			t.Fatalf("sssp response routing: solver=%v via=%v", r["solver"], r["via"])
		}
	}
	var bad map[string]string
	getJSON(t, ts.URL+"/sssp?src=banana", &bad)

	var m struct {
		Instance      string  `json:"instance"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		InflightLimit int     `json:"inflight_limit"`
		Endpoints     map[string]struct {
			Requests int64            `json:"requests"`
			InFlight int64            `json:"in_flight"`
			Status   map[string]int64 `json:"status"`
			Latency  struct {
				Count   int64 `json:"count"`
				Buckets []struct {
					LEMillis float64 `json:"le_ms"`
					Count    int64   `json:"count"`
				} `json:"buckets"`
			} `json:"latency"`
		} `json:"endpoints"`
		Engine struct {
			Solves      int64            `json:"solves"`
			CacheMisses int64            `json:"cache_misses"`
			SolverRuns  map[string]int64 `json:"solver_runs"`
		} `json:"engine"`
		Thorup struct {
			Queries           int64   `json:"queries"`
			Settled           int64   `json:"settled"`
			Relaxations       int64   `json:"relaxations"`
			PropagationHops   int64   `json:"propagation_hops"`
			HopsPerRelaxation float64 `json:"hops_per_relaxation"`
			Gathers           int64   `json:"gathers"`
			BucketAdvances    int64   `json:"bucket_advances"`
			MaxTovisit        int64   `json:"max_tovisit"`
		} `json:"thorup"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &m); code != 200 {
		t.Fatalf("metrics: %d", code)
	}
	if m.Instance != "test-instance" || m.InflightLimit != 8 {
		t.Fatalf("identity fields: %+v", m)
	}
	ep := m.Endpoints["sssp"]
	if ep.Requests != 4 || ep.Status["2xx"] != 3 || ep.Status["4xx"] != 1 {
		t.Fatalf("sssp endpoint metrics: %+v", ep)
	}
	if ep.Latency.Count != 4 || len(ep.Latency.Buckets) == 0 {
		t.Fatalf("latency histogram: %+v", ep.Latency)
	}
	// 3 successful queries over a connected 500-vertex graph.
	if m.Thorup.Queries != 3 || m.Thorup.Settled != int64(3*g.NumVertices()) {
		t.Fatalf("thorup aggregate: %+v", m.Thorup)
	}
	if m.Thorup.Relaxations == 0 || m.Thorup.Gathers == 0 || m.Thorup.HopsPerRelaxation <= 0 {
		t.Fatalf("thorup counters empty: %+v", m.Thorup)
	}
	if m.Engine.Solves != 3 || m.Engine.CacheMisses != 3 || m.Engine.SolverRuns["thorup"] != 3 {
		t.Fatalf("engine metrics: %+v", m.Engine)
	}
}

func TestConcurrentQueries(t *testing.T) {
	ts, g := testServer(t)
	oracle := make(map[int32][]int64)
	for _, src := range []int32{0, 100, 200, 300, 400} {
		oracle[src] = dijkstra.SSSP(g, src)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := int32((i % 5) * 100)
			dst := int32(7 + i)
			var resp struct {
				Dist int64 `json:"dist"`
			}
			r, err := http.Get(fmt.Sprintf("%s/dist?src=%d&dst=%d", ts.URL, src, dst))
			if err != nil {
				errs <- err
				return
			}
			defer r.Body.Close()
			if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
				errs <- err
				return
			}
			if want := oracle[src][dst]; resp.Dist != want {
				errs <- fmt.Errorf("src %d dst %d: got %d want %d", src, dst, resp.Dist, want)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// The CH cache must be written atomically (temp + rename, no stray files)
// and load back identically.
func TestCacheAtomicWriteAndReload(t *testing.T) {
	g, h := testGraph()
	dir := t.TempDir()
	cache := filepath.Join(dir, "test.chb")

	h1 := loadOrBuild(g, cache) // builds and writes
	if h1.NumNodes() != h.NumNodes() {
		t.Fatalf("built hierarchy differs: %d vs %d nodes", h1.NumNodes(), h.NumNodes())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "test.chb" {
		t.Fatalf("cache dir should hold exactly test.chb, got %v", entries)
	}

	h2 := loadOrBuild(g, cache) // loads from cache
	if h2.NumNodes() != h1.NumNodes() || h2.Root() != h1.Root() {
		t.Fatalf("reloaded hierarchy differs")
	}

	// A corrupt (truncated) cache is ignored and rebuilt, not fatal.
	if err := os.WriteFile(cache, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	h3 := loadOrBuild(g, cache)
	if h3.NumNodes() != h1.NumNodes() {
		t.Fatalf("rebuild after corruption differs")
	}
}

// writeCache must not leave a temp file behind when serialisation fails.
func TestWriteCacheCleansUpOnError(t *testing.T) {
	g, h := testGraph()
	dir := t.TempDir()
	// Writing into a path whose parent is a file forces CreateTemp to fail.
	if err := writeCache(h, filepath.Join(dir, "missing", "x.chb")); err == nil {
		t.Fatal("expected error for unwritable directory")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("stray files: %v", entries)
	}
	_ = g
}

// Shutdown must drain in-flight requests: a request that is mid-handler when
// the stop signal arrives still completes with 200.
func TestGracefulShutdownDrains(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		w.WriteHeader(200)
		fmt.Fprint(w, `{"ok":true}`)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: mux}
	ctx, cancel := context.WithCancel(context.Background())

	serveErr := make(chan error, 1)
	go func() {
		errc := make(chan error, 1)
		go func() { errc <- hs.Serve(ln) }()
		select {
		case err := <-errc:
			serveErr <- err
			return
		case <-ctx.Done():
		}
		sctx, c := context.WithTimeout(context.Background(), 5*time.Second)
		defer c()
		if err := hs.Shutdown(sctx); err != nil {
			serveErr <- err
			return
		}
		serveErr <- nil
	}()

	reqErr := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			reqErr <- err
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			reqErr <- fmt.Errorf("status %d", resp.StatusCode)
			return
		}
		reqErr <- nil
	}()

	<-started // request is in-flight
	cancel()  // shutdown begins while the handler is blocked
	time.Sleep(50 * time.Millisecond)
	close(release) // handler finishes during the drain window

	if err := <-reqErr; err != nil {
		t.Fatalf("in-flight request not drained: %v", err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v", err)
	}
}

// The production serve() helper: clean drain returns nil.
func TestServeHelperShutsDownCleanly(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	g, h := testGraph()
	srv := newServer(g, h, "drain-test", 2, 8, time.Minute, engine.Config{})
	// serve() uses hs.ListenAndServe; grab a free port for it.
	addr := ln.Addr().String()
	ln.Close()
	hs := &http.Server{Addr: addr, Handler: srv.mux()}
	ctx, cancel := context.WithCancel(context.Background())

	done := make(chan error, 1)
	go func() {
		done <- serve(ctx, hs, 5*time.Second)
	}()
	// Wait until the server answers, proving ListenAndServe is up.
	url := "http://" + hs.Addr + "/healthz"
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after cancel")
	}
}
