package main

import (
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/dijkstra"
	"repro/internal/graph"
	"repro/internal/mutate"
)

// mutateBody renders a batch as the endpoint's JSON request body.
func mutateBody(t *testing.T, b *mutate.Batch) string {
	t.Helper()
	return string(mutate.EncodeDelta(b))
}

// pickEdges returns k ops re-weighting distinct edge slots of g.
func pickEdges(g *graph.Graph, k int, bump uint32) *mutate.Batch {
	seen := make(map[[2]int32]bool)
	var ops []mutate.Op
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if seen[[2]int32{u, v}] {
			continue
		}
		seen[[2]int32{u, v}] = true
		w := e.W + bump
		if w > graph.MaxWeight {
			w = e.W - bump
		}
		ops = append(ops, mutate.Op{Op: mutate.OpSetWeight, U: e.U, V: e.V, W: w})
		if len(ops) == k {
			break
		}
	}
	return &mutate.Batch{Ops: ops}
}

// checkServedDistances queries /sssp with full=1 and compares against a
// Dijkstra run on want.
func checkServedDistances(t *testing.T, base, graphName string, src int32, want *graph.Graph) {
	t.Helper()
	var resp struct {
		Dist []int64 `json:"dist"`
	}
	url := fmt.Sprintf("%s/sssp?src=%d&full=1&graph=%s", base, src, graphName)
	if code := getJSON(t, url, &resp); code != 200 {
		t.Fatalf("query after mutation: code %d", code)
	}
	exp := dijkstra.SSSP(want, src)
	for v, w := range exp {
		if w == graph.Inf {
			w = -1
		}
		if resp.Dist[v] != w {
			t.Fatalf("dist[%d]=%d, want %d", v, resp.Dist[v], w)
		}
	}
}

// TestGraphMutateEndpoint drives the full HTTP mutation path: a small batch
// takes the incremental path (200, generation already serving), an over-
// threshold batch falls back to a background rebuild (202), and the served
// distances after each swap match Dijkstra on a reference-applied graph.
func TestGraphMutateEndpoint(t *testing.T) {
	ts, srv, g := testServerOpts(t, 64, 30*time.Second)

	b1 := pickEdges(g, 4, 11)
	var ok map[string]any
	if code := postJSON(t, ts.URL+"/graphs/test-instance/mutate", mutateBody(t, b1), &ok); code != 200 {
		t.Fatalf("incremental mutate: code %d (%v), want 200", code, ok)
	}
	if ok["status"] != "mutated" || ok["gen"].(float64) != 2 || ok["aliased"] != true {
		t.Fatalf("incremental mutate response %v", ok)
	}
	want1, err := mutate.ReferenceApply(g, b1)
	if err != nil {
		t.Fatal(err)
	}
	checkServedDistances(t, ts.URL, "test-instance", 3, want1)

	// Lineage in the listing.
	var listing struct {
		Graphs []struct {
			Name      string `json:"name"`
			Gen       uint64 `json:"gen"`
			ParentGen uint64 `json:"parent_gen"`
			DeltaSize int    `json:"delta_size"`
			Deltas    int    `json:"deltas"`
		} `json:"graphs"`
	}
	if code := getJSON(t, ts.URL+"/graphs", &listing); code != 200 {
		t.Fatalf("graphs listing: %d", code)
	}
	if gs := listing.Graphs[0]; gs.Gen != 2 || gs.ParentGen != 1 || gs.DeltaSize != len(b1.Ops) || gs.Deltas != 1 {
		t.Fatalf("lineage in listing: %+v", gs)
	}

	// A wide batch (insert spokes from one hub: > 5% of 500 vertices
	// touched) validates but falls back to the background rebuild.
	var wide mutate.Batch
	for i := 0; i < 40; i++ {
		wide.Ops = append(wide.Ops, mutate.Op{Op: mutate.OpInsert, U: 0, V: int32(100 + 10*i), W: 2})
	}
	var fb map[string]any
	if code := postJSON(t, ts.URL+"/graphs/test-instance/mutate", mutateBody(t, &wide), &fb); code != http.StatusAccepted {
		t.Fatalf("fallback mutate: code %d (%v), want 202", code, fb)
	}
	if fb["status"] != "rebuilding" || fb["fallback"] != true || fb["gen"].(float64) != 3 {
		t.Fatalf("fallback mutate response %v", fb)
	}
	if err := srv.cat.WaitReady("test-instance", 30*time.Second); err != nil {
		t.Fatal(err)
	}
	want2, err := mutate.ReferenceApply(g, b1, &wide)
	if err != nil {
		t.Fatal(err)
	}
	checkServedDistances(t, ts.URL, "test-instance", 17, want2)

	// Metrics carry the mutation counters and the endpoint section.
	var metrics struct {
		Catalog map[string]any `json:"catalog"`
		Ends    map[string]any `json:"endpoints"`
	}
	if code := getJSON(t, ts.URL+"/metrics", &metrics); code != 200 {
		t.Fatal("metrics")
	}
	if metrics.Catalog["mutations"].(float64) != 2 ||
		metrics.Catalog["mutate_incremental"].(float64) != 1 ||
		metrics.Catalog["mutate_fallback"].(float64) != 1 {
		t.Fatalf("mutation counters: %v", metrics.Catalog)
	}
	if _, ok := metrics.Ends["graphs_mutate"]; !ok {
		t.Fatal("endpoints.graphs_mutate missing from /metrics")
	}
}

// Error mapping: malformed and invalid batches are 400 with nothing applied,
// unknown graphs 404, and a graph mid-build 409.
func TestGraphMutateErrors(t *testing.T) {
	ts, srv, g := testServerOpts(t, 64, 30*time.Second)

	for _, tc := range []struct {
		name, body string
		want       int
	}{
		{"not json", `nope`, http.StatusBadRequest},
		{"unknown field", `{"ops":[{"op":"insert","u":0,"v":1,"w":1}],"mode":"x"}`, http.StatusBadRequest},
		{"empty batch", `{"ops":[]}`, http.StatusBadRequest},
		{"unknown op", `{"ops":[{"op":"reverse","u":0,"v":1}]}`, http.StatusBadRequest},
		{"out of range", `{"ops":[{"op":"insert","u":0,"v":100000,"w":1}]}`, http.StatusBadRequest},
	} {
		var e map[string]string
		if code := postJSON(t, ts.URL+"/graphs/test-instance/mutate", tc.body, &e); code != tc.want {
			t.Errorf("%s: code %d, want %d (%v)", tc.name, code, tc.want, e)
		} else if e["error"] == "" {
			t.Errorf("%s: missing error message", tc.name)
		}
	}
	// Nothing was applied: still generation 1.
	gen1, release, err := srv.cat.Acquire("test-instance")
	if err != nil {
		t.Fatal(err)
	}
	if gen1.Gen != 1 {
		t.Fatalf("rejected mutations advanced the generation to %d", gen1.Gen)
	}
	release()

	var e map[string]string
	if code := postJSON(t, ts.URL+"/graphs/nope/mutate", `{"ops":[{"op":"delete","u":0,"v":1}]}`, &e); code != http.StatusNotFound {
		t.Fatalf("unknown graph: code %d, want 404", code)
	}

	// A graph whose build is still running conflicts with 409.
	if code := postJSON(t, ts.URL+"/graphs/load", `{"name":"big","class":"rand","logn":18,"logc":10,"seed":5}`, &map[string]string{}); code != http.StatusAccepted {
		t.Fatalf("load big: code %d", code)
	}
	body := mutateBody(t, pickEdges(g, 1, 1))
	if code := postJSON(t, ts.URL+"/graphs/big/mutate", body, &e); code != http.StatusConflict {
		t.Fatalf("mutate mid-build: code %d (%v), want 409", code, e)
	}
	if !strings.Contains(e["error"], "build in progress") {
		t.Fatalf("mid-build error message: %q", e["error"])
	}
	_ = srv.cat.WaitReady("big", 60*time.Second) // let the build finish before teardown
}
