package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/costmodel"
)

// writeDataset renders samples as the JSON-lines export the daemon serves.
func writeDataset(t *testing.T, samples []costmodel.Sample) string {
	t.Helper()
	var buf bytes.Buffer
	for _, s := range samples {
		s.V = costmodel.DatasetVersion
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	path := filepath.Join(t.TempDir(), "dataset.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// synthetic generates samples whose durations follow a known linear law, so
// the end-to-end fit is checkable.
func synthetic() []costmodel.Sample {
	var out []costmodel.Sample
	for i := 0; i < 32; i++ {
		n := 512 + 256*i
		m := int64(4 * n)
		srcs := 1 + i%4
		// dijkstra: 100 + 0.01·s·m µs; thorup: 3000 + 0.05·m µs.
		out = append(out, costmodel.Sample{
			Solver: "dijkstra", N: n, M: m, MaxWeight: 1 << 10, Sources: srcs,
			DurUS: int64(100 + 0.01*float64(srcs)*float64(m)),
		})
		out = append(out, costmodel.Sample{
			Solver: "thorup", N: n, M: m, MaxWeight: 1 << 10, Sources: srcs,
			DurUS: int64(3000 + 0.05*float64(m)),
		})
	}
	return out
}

// The fit pipeline end to end: dataset file in, sealed coefficients file
// out, loadable by the same reader the daemon uses, with sane predictions.
func TestFitRoundTrip(t *testing.T) {
	dataset := writeDataset(t, synthetic())
	out := filepath.Join(t.TempDir(), "model.json")
	var stdout bytes.Buffer
	err := run([]string{"-dataset", dataset, "-out", out, "-trained-at", "2026-08-07T00:00:00Z"}, &stdout)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stdout.String(), "2 solvers") {
		t.Fatalf("stdout: %s", stdout.String())
	}
	f, err := costmodel.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if f.TrainedAt != "2026-08-07T00:00:00Z" || len(f.Solvers) != 2 {
		t.Fatalf("file: %+v", f)
	}
	m := costmodel.NewModel(f)
	// At s·m = 8·4096 the truth is 100+327.68µs ≈ 428µs; allow 10%.
	pred, ok := m.Predict("dijkstra", costmodel.Features{N: 1024, M: 4096, MaxWeight: 1 << 10, Sources: 8})
	if !ok {
		t.Fatal("no dijkstra prediction")
	}
	if us := float64(pred.Microseconds()); us < 385 || us > 470 {
		t.Fatalf("dijkstra prediction %v outside 10%% of 428µs", pred)
	}
}

// Capacity mode renders a markdown table with a row per grid size and a
// throughput column sized to -workers.
func TestCapacityTable(t *testing.T) {
	dataset := writeDataset(t, synthetic())
	dir := t.TempDir()
	model := filepath.Join(dir, "model.json")
	if err := run([]string{"-dataset", dataset, "-out", model}, new(bytes.Buffer)); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err := run([]string{"-capacity", "-model", model, "-workers", "16",
		"-min-logn", "12", "-max-logn", "14", "-timeout", "1s"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"| n | m |", "QPS@16", "| 2^12 |", "| 2^14 |", "dijkstra", "thorup"} {
		if !strings.Contains(got, want) {
			t.Fatalf("capacity output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "| 2^15 |") {
		t.Fatal("grid exceeded -max-logn")
	}
}

// A dataset from a different schema version is refused, not silently
// misfitted.
func TestFitRefusesWrongDatasetVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	line := fmt.Sprintf(`{"v":%d,"solver":"dijkstra","n":10,"m":40,"max_weight":4,"sources":1,"dur_us":50}`,
		costmodel.DatasetVersion+1)
	if err := os.WriteFile(path, []byte(line+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-dataset", path, "-out", filepath.Join(t.TempDir(), "m.json")}, new(bytes.Buffer))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want dataset version refusal", err)
	}
}
