// Command costfit fits the learned cost model from a ssspd training
// dataset and generates capacity-planning tables from the result.
//
// Fit mode (default) consumes the JSON-lines dataset exported by
// GET /debug/costmodel/dataset — one executed solve per line, with the
// instance features and the measured duration — and fits one ridge
// regression per solver over the shared feature basis
// (costmodel.FeatureNames). The output is the versioned, checksummed
// coefficients file ssspd loads with -cost-model or hot-swaps with
// POST /debug/costmodel/reload:
//
//	curl -s http://host:8080/debug/costmodel/dataset > dataset.jsonl
//	costfit -dataset dataset.jsonl -out model.json
//	curl -s -X POST http://host:8080/debug/costmodel/reload -d '{"path":"model.json"}'
//
// After fitting, per-solver training error (MAE and median absolute
// percentage error) is printed so a regression in model quality is visible
// before the file ever reaches a daemon.
//
// Capacity mode (-capacity) renders a markdown table from an existing
// coefficients file instead of fitting: for a grid of instance sizes it
// prints every solver's predicted cost, the cheapest solver, and the
// single-worker and fleet throughput that prediction implies. The capacity
// tables in OPERATIONS.md §6 are generated this way — from measured
// coefficients, not hand-waved constants:
//
//	costfit -capacity -model model.json -workers 8 -timeout 30s
//
// The grid is controlled by -min-logn/-max-logn (n = 2^logn), -degree
// (m = degree·n), -logc (max weight 2^logc), and -sources. Every solver in
// the model file gets a column, but bfs — which only answers unit-weight
// graphs — is excluded from the best/throughput columns on weighted grids.
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/costmodel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "costfit: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("costfit", flag.ContinueOnError)
	var (
		dataset   = fs.String("dataset", "-", "JSON-lines training dataset (/debug/costmodel/dataset export); - reads stdin")
		out       = fs.String("out", "costmodel.json", "output coefficients file (fit mode)")
		ridge     = fs.Float64("ridge", 0, "ridge regularization strength (0 = default)")
		trainedAt = fs.String("trained-at", "", "timestamp to stamp into the file (default: now, RFC 3339)")
		capacity  = fs.Bool("capacity", false, "capacity mode: render markdown throughput tables from -model instead of fitting")
		model     = fs.String("model", "", "coefficients file to plan capacity from (capacity mode)")
		workers   = fs.Int("workers", 8, "fleet size for the capacity table's aggregate-throughput column")
		timeout   = fs.Duration("timeout", 30*time.Second, "per-query deadline the capacity table checks predictions against")
		headroom  = fs.Float64("admit-headroom", 0.8, "predictive-admission headroom factor used for the table's admitted/shed column")
		minLogN   = fs.Int("min-logn", 12, "capacity grid: smallest instance, n = 2^min-logn")
		maxLogN   = fs.Int("max-logn", 20, "capacity grid: largest instance, n = 2^max-logn")
		degree    = fs.Int("degree", 4, "capacity grid: edges per vertex (m = degree*n)")
		logC      = fs.Int("logc", 14, "capacity grid: max edge weight 2^logc")
		sources   = fs.Int("sources", 1, "capacity grid: sources per query")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *capacity {
		if *model == "" {
			return fmt.Errorf("capacity mode needs -model")
		}
		f, err := costmodel.ReadFile(*model)
		if err != nil {
			return err
		}
		return writeCapacity(stdout, costmodel.NewModel(f), capacityPlan{
			workers: *workers, timeout: *timeout, headroom: *headroom,
			minLogN: *minLogN, maxLogN: *maxLogN, degree: *degree, logC: *logC, sources: *sources,
		})
	}
	return fit(stdout, *dataset, *out, *ridge, *trainedAt)
}

func fit(stdout io.Writer, dataset, out string, ridge float64, trainedAt string) error {
	var r io.Reader = os.Stdin
	if dataset != "-" {
		fh, err := os.Open(dataset)
		if err != nil {
			return err
		}
		defer fh.Close()
		r = fh
	}
	samples, err := costmodel.ReadSamples(r)
	if err != nil {
		return err
	}
	if len(samples) == 0 {
		return fmt.Errorf("dataset is empty")
	}
	f, err := costmodel.Fit(samples, ridge)
	if err != nil {
		return err
	}
	if trainedAt == "" {
		trainedAt = time.Now().UTC().Format(time.RFC3339)
	}
	f.TrainedAt = trainedAt
	b, err := f.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, b, 0o644); err != nil {
		return err
	}
	// Round-trip through the exact load path the daemon uses: a file this
	// binary cannot re-read must never be shipped.
	if _, err := costmodel.ReadFile(out); err != nil {
		return fmt.Errorf("self-check failed on %s: %w", out, err)
	}
	fmt.Fprintf(stdout, "wrote %s: %d solvers from %d samples (%d usable)\n",
		out, len(f.Solvers), len(samples), f.TotalSamples)
	reportErrors(stdout, costmodel.NewModel(f), samples)
	return nil
}

// reportErrors prints per-solver training error: mean absolute error and
// the median absolute percentage error, which together catch both a bad fit
// and a fit dominated by a few huge queries.
func reportErrors(stdout io.Writer, m *costmodel.Model, samples []costmodel.Sample) {
	type agg struct {
		absSum float64
		pct    []float64
		n      int
	}
	by := make(map[string]*agg)
	for _, s := range samples {
		if s.DurUS <= 0 {
			continue
		}
		pred, ok := m.PredictFor(s.Graph, s.Solver, s.Features())
		if !ok {
			continue
		}
		a := by[s.Solver]
		if a == nil {
			a = &agg{}
			by[s.Solver] = a
		}
		errUS := math.Abs(float64(pred.Microseconds()) - float64(s.DurUS))
		a.absSum += errUS
		a.pct = append(a.pct, errUS/float64(s.DurUS))
		a.n++
	}
	names := make([]string, 0, len(by))
	for name := range by {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := by[name]
		sort.Float64s(a.pct)
		fmt.Fprintf(stdout, "  %-14s n=%-6d mae=%.0fus  medape=%.1f%%\n",
			name, a.n, a.absSum/float64(a.n), 100*a.pct[len(a.pct)/2])
	}
}

type capacityPlan struct {
	workers  int
	timeout  time.Duration
	headroom float64
	minLogN  int
	maxLogN  int
	degree   int
	logC     int
	sources  int
}

// writeCapacity renders the capacity table: one row per instance size, one
// predicted-cost column per solver in the model, then the cheapest solver
// and the throughput its prediction implies.
func writeCapacity(w io.Writer, m *costmodel.Model, p capacityPlan) error {
	if p.minLogN > p.maxLogN {
		return fmt.Errorf("min-logn %d > max-logn %d", p.minLogN, p.maxLogN)
	}
	if p.workers < 1 {
		p.workers = 1
	}
	file := m.File()
	fmt.Fprintf(w, "Capacity plan: model v%d (trained %s, %d samples), %d sources/query, m = %d·n, C = 2^%d.\n",
		file.Version, orDash(file.TrainedAt), file.TotalSamples, p.sources, p.degree, p.logC)
	limit := time.Duration(float64(p.timeout) * p.headroom)
	fmt.Fprintf(w, "Deadline %s, admission headroom %.2f (predictions over %s are shed with 503).\n\n",
		p.timeout, p.headroom, limit.Round(time.Millisecond))

	solvers := m.Solvers()
	fmt.Fprint(w, "| n | m |")
	for _, s := range solvers {
		fmt.Fprintf(w, " %s |", s)
	}
	fmt.Fprintf(w, " best | QPS/worker | QPS@%d | admitted |\n", p.workers)
	fmt.Fprint(w, "|---|---|")
	for range solvers {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprint(w, "---|---|---|---|\n")

	for logN := p.minLogN; logN <= p.maxLogN; logN++ {
		n := 1 << logN
		f := costmodel.Features{
			N:         n,
			M:         int64(n) * int64(p.degree),
			MaxWeight: uint32(1) << p.logC,
			Sources:   p.sources,
		}
		fmt.Fprintf(w, "| 2^%d | %s |", logN, humanCount(f.M))
		best, bestCost := "", time.Duration(0)
		for _, s := range solvers {
			cost, ok := m.Predict(s, f)
			if !ok {
				fmt.Fprint(w, " — |")
				continue
			}
			fmt.Fprintf(w, " %s |", humanDur(cost))
			if s == "bfs" && f.MaxWeight > 1 {
				continue // bfs only answers unit-weight graphs; price it, don't pick it
			}
			if best == "" || cost < bestCost {
				best, bestCost = s, cost
			}
		}
		if best == "" {
			fmt.Fprint(w, " — | — | — | — |\n")
			continue
		}
		perWorker := 0.0
		if us := bestCost.Microseconds(); us > 0 {
			perWorker = 1e6 / float64(us)
		}
		admitted := "yes"
		if limit > 0 && bestCost > limit {
			admitted = "shed"
		}
		fmt.Fprintf(w, " %s | %.1f | %.1f | %s |\n", best, perWorker, perWorker*float64(p.workers), admitted)
	}
	fmt.Fprint(w, "\nPredictions are per-solver regressions priced at the grid point; the bfs\n")
	fmt.Fprint(w, "column is shown but excluded from `best` on weighted grids (-logc >= 1),\n")
	fmt.Fprint(w, "since bfs only answers unit-weight graphs.\n")
	return nil
}

func orDash(s string) string {
	if s == "" {
		return "—"
	}
	return s
}

func humanDur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1e3)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

func humanCount(m int64) string {
	switch {
	case m >= 1<<20:
		return fmt.Sprintf("%.1fM", float64(m)/float64(1<<20))
	case m >= 1<<10:
		return fmt.Sprintf("%.1fK", float64(m)/float64(1<<10))
	default:
		return fmt.Sprintf("%d", m)
	}
}
