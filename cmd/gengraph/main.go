// Command gengraph emits synthetic benchmark instances in DIMACS .gr format,
// following the paper's families and naming convention.
//
// Usage:
//
//	gengraph -class rand -dist uwd -logn 16 -logc 16 -seed 1 -o rand.gr
//	gengraph -class rmat -dist pwd -logn 14 -logc 2
//	gengraph -class grid -logn 12 -logc 4 -o grid.gr
//	gengraph -class rand -logn 18 -snap rand.snap
//
// With no -o the graph is written to stdout. With -snap the Component
// Hierarchy is also built and the (graph, hierarchy) pair written as one
// binary snapshot — the compiled artifact ssspd's catalog loads an order of
// magnitude faster than re-parsing text and rebuilding the hierarchy.
// Snapshots are written in format v2 (page-aligned sections), which ssspd
// can serve zero-copy via mmap; rewrite old v1 snapshots through this flag
// to pick up the mmap fast path.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/ch"
	"repro/internal/cli"
	"repro/internal/dimacs"
	"repro/internal/snapshot"
)

func main() {
	var (
		class = flag.String("class", "rand", "graph family: rand, rmat, grid, geometric, smallworld")
		dist  = flag.String("dist", "uwd", "weight distribution: uwd, pwd")
		logN  = flag.Int("logn", 14, "vertices = 2^logn")
		logC  = flag.Int("logc", 14, "max weight = 2^logc")
		seed  = flag.Uint64("seed", 1, "generator seed")
		out   = flag.String("o", "", "output file (default stdout)")
		snap  = flag.String("snap", "", "also build the hierarchy and write a binary snapshot here")
	)
	flag.Parse()

	pwd := false
	switch strings.ToLower(*dist) {
	case "uwd":
	case "pwd":
		pwd = true
	default:
		fmt.Fprintf(os.Stderr, "gengraph: unknown distribution %q\n", *dist)
		os.Exit(2)
	}
	g, name, err := cli.Spec{Class: *class, LogN: *logN, LogC: *logC, PWD: pwd, Seed: *seed}.Generate()
	if err != nil {
		fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
		os.Exit(2)
	}
	// Text output goes to -o, or stdout — unless only a snapshot was asked
	// for, in which case a megabyte text dump on stdout helps nobody.
	if *out != "" || *snap == "" {
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		comment := fmt.Sprintf("%s (9th DIMACS Challenge style)", name)
		if err := dimacs.WriteGraph(w, g, comment); err != nil {
			fmt.Fprintf(os.Stderr, "gengraph: %v\n", err)
			os.Exit(1)
		}
	}
	if *snap != "" {
		h := ch.BuildKruskal(g)
		if err := snapshot.WriteFile(*snap, g, h); err != nil {
			fmt.Fprintf(os.Stderr, "gengraph: snapshot: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "gengraph: snapshot %s: CH %d nodes, fingerprint %s\n",
			*snap, h.NumNodes(), g.Fingerprint())
	}
	fmt.Fprintf(os.Stderr, "gengraph: wrote %s: n=%d m=%d weights [%d,%d]\n",
		name, g.NumVertices(), g.NumEdges(), g.MinWeight(), g.MaxWeight())
}
