package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, path, content string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func run(t *testing.T, root string) []string {
	t.Helper()
	var got []string
	report := func(format string, args ...any) {
		got = append(got, fmt.Sprintf(format, args...))
	}
	checkMarkdownLinks(root, report)
	checkPackageComments(root, report)
	return got
}

func TestLinksAndComments(t *testing.T) {
	root := t.TempDir()
	write(t, filepath.Join(root, "README.md"), strings.Join([]string{
		"[good](DESIGN.md) and [anchored](DESIGN.md#section)",
		"[external](https://example.com/x.md) [mail](mailto:a@b)",
		"[anchor-only](#local) [broken](MISSING.md)",
		"```",
		"[inside a fence](ALSO_MISSING.md)",
		"```",
		"[img] ![shot](img/missing.png)",
	}, "\n"))
	write(t, filepath.Join(root, "DESIGN.md"), "# design\n[up](README.md)\n")
	write(t, filepath.Join(root, "internal/documented/doc.go"),
		"// Package documented has a comment.\npackage documented\n")
	write(t, filepath.Join(root, "internal/documented/other.go"), "package documented\n")
	write(t, filepath.Join(root, "internal/bare/bare.go"), "package bare\n")
	write(t, filepath.Join(root, "internal/bare/bare_test.go"),
		"// Package bare — test files don't count.\npackage bare\n")

	got := run(t, root)
	want := []string{`broken link "MISSING.md"`, `broken link "img/missing.png"`, "internal/bare"}
	for _, w := range want {
		found := false
		for _, g := range got {
			if strings.Contains(g, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("expected a problem mentioning %q, got %v", w, got)
		}
	}
	if len(got) != len(want) {
		t.Errorf("got %d problems %v, want %d", len(got), got, len(want))
	}
	for _, g := range got {
		if strings.Contains(g, "ALSO_MISSING") {
			t.Errorf("link inside code fence reported: %s", g)
		}
	}
}

func TestRepoIsClean(t *testing.T) {
	// The real repo must pass its own linter; `make docs-check` enforces the
	// same from the command line.
	if got := run(t, "../.."); len(got) != 0 {
		t.Errorf("docscheck problems in repo:\n%s", strings.Join(got, "\n"))
	}
}
