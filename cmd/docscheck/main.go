// Command docscheck is the repo's documentation linter, run by `make
// docs-check` (and transitively by `make check`). It enforces two invariants
// that rot silently otherwise:
//
//   - Every intra-repo markdown link resolves. All *.md files are scanned for
//     [text](target) links; relative targets (after stripping #anchors) must
//     exist on disk. External schemes (http, https, mailto) and pure-anchor
//     links are skipped, as are links inside fenced code blocks.
//
//   - Every internal/* package has a package comment. godoc is the first
//     thing a reader sees; a bare `package foo` clause means the package's
//     purpose lives only in tribal knowledge.
//
// Exit status is non-zero if any problem is found, with one line per problem.
package main

import (
	"flag"
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches the target of inline markdown links and images. The target
// group stops at whitespace or ')' so titles ([t](url "title")) don't leak in.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)[^)]*\)`)

func main() {
	root := flag.String("root", ".", "repository root to check")
	flag.Parse()
	var problems []string
	report := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	checkMarkdownLinks(*root, report)
	checkPackageComments(*root, report)
	for _, p := range problems {
		fmt.Fprintln(os.Stderr, p)
	}
	if len(problems) > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// checkMarkdownLinks verifies that every relative link in every *.md file
// under root points at an existing file or directory.
func checkMarkdownLinks(root string, report func(string, ...any)) {
	filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if d.Name() == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			report("%s: %v", path, err)
			return nil
		}
		inFence := false
		for ln, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if i := strings.IndexByte(target, '#'); i >= 0 {
					target = target[:i]
				}
				if target == "" || strings.Contains(target, "://") ||
					strings.HasPrefix(target, "mailto:") {
					continue
				}
				resolved := filepath.Join(filepath.Dir(path), target)
				if _, err := os.Stat(resolved); err != nil {
					report("%s:%d: broken link %q (%s does not exist)",
						path, ln+1, m[1], resolved)
				}
			}
		}
		return nil
	})
}

// checkPackageComments verifies that every package under internal/ carries a
// package comment in at least one of its non-test files.
func checkPackageComments(root string, report func(string, ...any)) {
	internal := filepath.Join(root, "internal")
	dirs := map[string]bool{} // dir -> has a package comment
	fset := token.NewFileSet()
	filepath.WalkDir(internal, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") ||
			strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		if _, ok := dirs[dir]; !ok {
			dirs[dir] = false
		}
		f, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			report("%s: %v", path, err)
			return nil
		}
		if f.Doc != nil {
			dirs[dir] = true
		}
		return nil
	})
	for dir, documented := range dirs {
		if !documented {
			report("%s: package has no package comment (add a doc.go)", dir)
		}
	}
}
