package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/router"
)

// slowSsspd is a fake backend whose query handler blocks until released, so a
// test can hold a request in flight across a table reload.
func slowSsspd(t *testing.T, entered chan<- struct{}, release <-chan struct{}) *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"catalog": map[string]any{
				"graph_states": []map[string]string{{"name": "g", "state": "ready"}},
			},
		})
	})
	mux.HandleFunc("GET /dist", func(w http.ResponseWriter, r *http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		json.NewEncoder(w).Encode(map[string]any{"dist": 1})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func writeTable(t *testing.T, path string, backends ...[2]string) {
	t.Helper()
	tbl := router.Table{Version: 1, Replicas: len(backends)}
	for _, b := range backends {
		tbl.Backends = append(tbl.Backends, router.Backend{Name: b[0], URL: b[1]})
	}
	data, err := json.Marshal(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestSighupReloadKeepsInFlightRequests drives the command's SIGHUP plumbing
// end to end (through the same reloadLoop main wires to the signal): while a
// request is parked inside backend a, the table file is rewritten to replace
// a with b and the reload signal fires. The parked request must complete on
// a, and new requests must route to b without any health-interval wait.
func TestSighupReloadKeepsInFlightRequests(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	slow := slowSsspd(t, entered, release)
	fast := fakeSsspd(t) // serves graph g, answers instantly

	tablePath := filepath.Join(t.TempDir(), "fleet.json")
	writeTable(t, tablePath, [2]string{"a", slow.URL})

	tbl, err := router.ReadTableFile(tablePath)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := router.New(router.Config{Table: tbl, HealthInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	mux := rt.Mux()

	hup := make(chan os.Signal, 1)
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		reloadLoop(hup, rt, tablePath)
	}()
	defer func() { close(hup); <-loopDone }()

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/dist?graph=g&s=0&t=1", nil))
		done <- w
	}()
	<-entered

	// Swap the fleet under the parked request: the file now names only b.
	writeTable(t, tablePath, [2]string{"b", fast.URL})
	hup <- syscall.SIGHUP
	waitFor(t, func() bool { return rt.Counter("table_reloads") == 1 })

	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/dist?graph=g&s=0&t=1", nil))
	if w.Code != http.StatusOK || w.Header().Get("X-Backend") != "b" {
		t.Fatalf("post-reload request: status %d backend %q, want 200 from b", w.Code, w.Header().Get("X-Backend"))
	}

	close(release)
	in := <-done
	if in.Code != http.StatusOK || in.Header().Get("X-Backend") != "a" {
		t.Fatalf("in-flight request across SIGHUP reload: status %d backend %q, want 200 from a",
			in.Code, in.Header().Get("X-Backend"))
	}

	// A broken table file must be skipped, keeping the current fleet.
	if err := os.WriteFile(tablePath, []byte(`{"v": 1, "backends": []}`), 0o644); err != nil {
		t.Fatal(err)
	}
	hup <- syscall.SIGHUP
	time.Sleep(50 * time.Millisecond) // let the loop consume and reject it
	if got := rt.Counter("table_reloads"); got != 1 {
		t.Fatalf("table_reloads = %d after invalid file, want still 1", got)
	}
	w2 := httptest.NewRecorder()
	mux.ServeHTTP(w2, httptest.NewRequest(http.MethodGet, "/dist?graph=g&s=0&t=1", nil))
	if w2.Code != http.StatusOK {
		t.Fatalf("request after rejected reload: %d, want 200", w2.Code)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not reached within 5s")
}
