package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/router"
	"repro/internal/trace"
)

// OPERATIONS.md §"Running a fleet" is the operator contract for the routing
// tier. These tests keep it honest mechanically, exactly like ssspd's: every
// flag this binary declares and every key the live router /metrics document
// emits must be mentioned there.

func readOperationsMD(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../OPERATIONS.md")
	if err != nil {
		t.Fatalf("OPERATIONS.md must exist at the repo root: %v", err)
	}
	return string(data)
}

func TestOperationsDocCoversEveryRouterFlag(t *testing.T) {
	ops := readOperationsMD(t)
	src, err := os.ReadFile("main.go")
	if err != nil {
		t.Fatal(err)
	}
	flagDecl := regexp.MustCompile(`flag\.(?:String|Int|Int64|Uint64|Bool|Duration|Float64)\("([^"]+)"`)
	matches := flagDecl.FindAllStringSubmatch(string(src), -1)
	if len(matches) < 10 {
		t.Fatalf("found only %d flag declarations in main.go; the regex has rotted", len(matches))
	}
	for _, m := range matches {
		if !strings.Contains(ops, "`-"+m[1]+"`") {
			t.Errorf("flag -%s is not documented in OPERATIONS.md", m[1])
		}
	}
}

// fakeSsspd is the minimal backend surface a router needs: /metrics with
// per-graph states, plus query endpoints.
func fakeSsspd(t *testing.T) *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{
			"endpoints": map[string]any{},
			"engine":    map[string]any{},
			"catalog": map[string]any{
				"graph_states": []map[string]string{{"name": "g", "state": "ready"}},
			},
		})
	})
	ok := func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(map[string]any{"dist": 1})
	}
	mux.HandleFunc("GET /dist", ok)
	mux.HandleFunc("GET /sssp", ok)
	mux.HandleFunc("POST /batch", func(w http.ResponseWriter, r *http.Request) {
		var env struct {
			Queries []json.RawMessage `json:"queries"`
		}
		json.NewDecoder(r.Body).Decode(&env)
		results := make([]map[string]any, len(env.Queries))
		for i := range results {
			results[i] = map[string]any{"reached": 1}
		}
		json.NewEncoder(w).Encode(map[string]any{"results": results})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

func TestOperationsDocCoversEveryRouterMetricKey(t *testing.T) {
	ops := readOperationsMD(t)
	b1 := fakeSsspd(t)
	b2 := fakeSsspd(t)
	rt, err := router.New(router.Config{
		Table: &router.Table{Version: 1, Replicas: 2, Backends: []router.Backend{
			{Name: "b1", URL: b1.URL}, {Name: "b2", URL: b2.URL},
		}},
		HealthInterval: time.Hour,
		Retry:          true,
		Trace:          trace.Config{SampleN: 1, RingSize: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	mux := rt.Mux()

	// Exercise enough of the router that every metrics section materializes:
	// a routed read (route + backend_wait spans), a retry (retry span), and a
	// fanned-out batch (fanout_join span).
	do := func(req *http.Request, want int) {
		t.Helper()
		w := httptest.NewRecorder()
		mux.ServeHTTP(w, req)
		if w.Code != want {
			t.Fatalf("%s %s: status %d, want %d: %s", req.Method, req.URL, w.Code, want, w.Body)
		}
	}
	do(httptest.NewRequest(http.MethodGet, "/dist?graph=g&src=0&dst=1", nil), 200)
	do(httptest.NewRequest(http.MethodGet, "/dist?graph=missing&src=0&dst=1", nil), 503)
	var batch struct {
		Queries []map[string]int `json:"queries"`
	}
	for i := 0; i < 32; i++ {
		batch.Queries = append(batch.Queries, map[string]int{"source": i})
	}
	body, _ := json.Marshal(batch)
	do(httptest.NewRequest(http.MethodPost, "/batch?graph=g", bytes.NewReader(body)), 200)

	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if w.Code != 200 {
		t.Fatalf("metrics: %d", w.Code)
	}
	var m map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	statusClass := regexp.MustCompile(`^\dxx$`)
	var undocumented []string
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		obj, ok := v.(map[string]any)
		if !ok {
			return
		}
		for k, child := range obj {
			if statusClass.MatchString(k) {
				continue
			}
			if !strings.Contains(ops, "`"+k+"`") {
				undocumented = append(undocumented, prefix+k)
			}
			walk(prefix+k+".", child)
		}
	}
	walk("", m)
	for _, k := range undocumented {
		t.Errorf("router /metrics key %q is not documented in OPERATIONS.md", k)
	}
}
