// Command ssspr is the routing tier in front of a fleet of ssspd backends:
// one endpoint that consistent-hashes graphs across the fleet, replicates
// hot graphs, health-checks backends through their /metrics, retries
// idempotent reads, and fans large batches out by shard. All behavior lives
// in internal/router; this command is flag wiring.
//
// Usage:
//
//	ssspr -table fleet.json [-addr :8090] [flags]
//
// where fleet.json is a routing table (see internal/router.Table):
//
//	{"v": 1, "replicas": 2,
//	 "backends": [{"name": "b1", "url": "http://10.0.0.1:8080", "weight": 2},
//	              {"name": "b2", "url": "http://10.0.0.2:8080"}],
//	 "graphs": {"hot-graph": {"replicas": 3}}}
//
// SIGHUP re-reads -table and hot-swaps the fleet view in place: backends
// that persist keep their health state, and in-flight requests finish on the
// backends they started with.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/router"
	"repro/internal/trace"
)

func main() {
	var (
		tablePath      = flag.String("table", "", "routing table JSON file (required)")
		addr           = flag.String("addr", ":8090", "listen address")
		defaultGraph   = flag.String("default-graph", "", "graph used by requests without ?graph= (empty makes the parameter mandatory)")
		healthInterval = flag.Duration("health-interval", 2*time.Second, "backend /metrics scrape period")
		healthTimeout  = flag.Duration("health-timeout", time.Second, "per-backend scrape deadline")
		timeout        = flag.Duration("timeout", 30*time.Second, "per-request deadline for proxied query endpoints (0 disables)")
		retry          = flag.Bool("retry", true, "retry a failed idempotent read once on a different replica")
		retryBudget    = flag.Float64("retry-budget", 10, "retry token-bucket refill rate in retries/second")
		retryBackoff   = flag.Duration("retry-backoff", 5*time.Millisecond, "pause before a retry attempt")
		drain          = flag.Duration("drain", 15*time.Second, "graceful shutdown drain budget")
		traceSample    = flag.Int("trace-sample", 100, "tail-sample 1 in N finished routed traces into /debug/traces (0 disables tracing)")
		traceRing      = flag.Int("trace-ring", 256, "retained-trace ring buffer capacity for /debug/traces")
		slowQuery      = flag.Duration("slow-query", 0, "log and always retain routed traces at least this slow (0 disables the slow-query log)")
	)
	flag.Parse()
	if *tablePath == "" {
		log.Fatalf("ssspr: -table required")
	}
	tbl, err := router.ReadTableFile(*tablePath)
	if err != nil {
		log.Fatalf("ssspr: %v", err)
	}
	rt, err := router.New(router.Config{
		Table:          tbl,
		DefaultGraph:   *defaultGraph,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		Timeout:        *timeout,
		Retry:          *retry,
		RetryBudget:    *retryBudget,
		RetryBackoff:   *retryBackoff,
		Trace: trace.Config{
			SampleN:   *traceSample,
			RingSize:  *traceRing,
			SlowQuery: *slowQuery,
			Logf:      log.Printf,
		},
		Logf: func(format string, args ...any) {
			// Access lines are debug-volume; keep transitions and errors only.
			if len(format) >= 22 && format[:22] == "router: access endpoin" {
				return
			}
			log.Printf(format, args...)
		},
	})
	if err != nil {
		log.Fatalf("ssspr: %v", err)
	}
	defer rt.Close()

	hs := &http.Server{
		Addr:              *addr,
		Handler:           rt.Mux(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      writeTimeout(*timeout),
		IdleTimeout:       2 * time.Minute,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// SIGHUP re-reads the table file and hot-swaps the fleet view; in-flight
	// requests keep the backends they started with.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go reloadLoop(hup, rt, *tablePath)

	log.Printf("ssspr: routing %d backends on %s (replicas=%d health-interval=%s retry=%v timeout=%s)",
		len(tbl.Backends), *addr, tbl.ReplicaCount(""), *healthInterval, *retry, *timeout)
	if err := serve(ctx, hs, *drain); err != nil {
		log.Fatalf("ssspr: %v", err)
	}
	log.Printf("ssspr: drained, bye")
}

// reloadLoop re-reads the routing table and swaps it into rt each time a
// signal arrives (main wires SIGHUP to it). A table that fails to read or
// validate is logged and skipped — the router keeps serving the current one.
func reloadLoop(sig <-chan os.Signal, rt *router.Router, path string) {
	for range sig {
		tbl, err := router.ReadTableFile(path)
		if err == nil {
			err = rt.Reload(tbl)
		}
		if err != nil {
			log.Printf("ssspr: reload %s: %v (keeping current table)", path, err)
			continue
		}
		log.Printf("ssspr: table reloaded from %s (%d backends)", path, len(tbl.Backends))
	}
}

// serve runs the HTTP server until ctx is cancelled, then shuts it down
// gracefully, giving in-flight proxied requests up to drain to complete.
func serve(ctx context.Context, hs *http.Server, drain time.Duration) error {
	errc := make(chan error, 1)
	go func() {
		if err := hs.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	log.Printf("ssspr: shutdown signal, draining in-flight requests (budget %s)", drain)
	sctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	return <-errc
}

// writeTimeout bounds response writes: the proxied query deadline plus body
// streaming headroom (a full=1 distance vector is megabytes).
func writeTimeout(queryTimeout time.Duration) time.Duration {
	if queryTimeout <= 0 {
		return 0
	}
	return queryTimeout + 30*time.Second
}
