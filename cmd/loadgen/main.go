// Command loadgen generates or replays a recorded workload against a live
// ssspd and reports latency percentiles, achieved vs offered rate, error and
// shed counts, and SLO verdicts. Exit status 1 means an SLO gate was
// violated (or the run failed outright), so it slots directly into CI.
//
// Usage:
//
//	loadgen -url http://127.0.0.1:8080 -spec testdata/workloads/zipf-single.jsonl
//	loadgen -url ... -spec wl.jsonl -record run.jsonl     # save the exact sequence
//	loadgen -url ... -replay run.jsonl                    # re-run it identically
//	loadgen -spec wl.jsonl -record run.jsonl              # expand only, no run
//	loadgen -url ... -spec wl.jsonl -slo-p99 50 -slo-error-rate 0
//
// A workload file is JSON lines: a spec header (seed, request count,
// open/closed mode, rate or workers, Zipf skew or cache-hostile striding,
// graph/endpoint/solver mixes, optional SLO gates), optionally followed by
// the concrete request lines of a recording. A header-only spec expands
// deterministically — same seed, same bytes — so committed specs pin traffic
// shapes; see internal/loadgen.
//
// The run stamps every request with X-Trace-Id <prefix>-<index> (so slow
// outliers join against the daemon's GET /debug/traces), and scrapes
// GET /metrics before and after to attribute sheds, cache hits and
// evictions to the run (disable with -no-metrics against non-ssspd
// servers).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/loadgen"
)

func main() {
	var (
		baseURL   = flag.String("url", "", "base URL of the ssspd under load (empty: expand/record only, no run)")
		specFile  = flag.String("spec", "", "workload spec file (header-only specs are expanded deterministically)")
		replay    = flag.String("replay", "", "recorded workload to replay; must contain request lines (alternative to -spec)")
		record    = flag.String("record", "", "write the concrete expanded request sequence to this file")
		outFile   = flag.String("out", "", "write the JSON report here (default stdout)")
		seed      = flag.Uint64("seed", 0, "override the spec's seed (0 keeps the spec's)")
		requests  = flag.Int("requests", 0, "override the spec's request count (0 keeps the spec's)")
		rate      = flag.Float64("rate", 0, "override the spec's open-loop rate in requests/second (0 keeps the spec's)")
		workers   = flag.Int("workers", 0, "override the spec's closed-loop worker count (0 keeps the spec's)")
		mode      = flag.String("mode", "", "override the spec's mode: open or closed (empty keeps the spec's)")
		sloP99    = flag.Float64("slo-p99", 0, "p99 latency gate in milliseconds (0 keeps the spec's SLO)")
		sloErrs   = flag.Float64("slo-error-rate", -1, "error-rate gate as a fraction (negative keeps the spec's SLO)")
		sloSheds  = flag.Float64("slo-shed-rate", -1, "shed-rate gate as a fraction (negative keeps the spec's SLO)")
		timeout   = flag.Duration("timeout", 0, "client-side per-request timeout (0: rely on the daemon's -timeout)")
		tracePfx  = flag.String("trace-prefix", "loadgen", "X-Trace-Id prefix stamped on every request (empty disables)")
		noMetrics = flag.Bool("no-metrics", false, "skip the before/after GET /metrics scrape")
	)
	flag.Parse()

	w, err := loadWorkload(*specFile, *replay)
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	applyOverrides(w, *seed, *requests, *rate, *workers, *mode)
	if err := w.Spec.Validate(); err != nil {
		log.Fatalf("loadgen: after overrides: %v", err)
	}
	if err := w.Expand(); err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	if *record != "" {
		if err := w.WriteFile(*record); err != nil {
			log.Fatalf("loadgen: record: %v", err)
		}
		log.Printf("loadgen: recorded %d requests to %s", len(w.Requests), *record)
	}
	if *baseURL == "" {
		if *record == "" {
			log.Fatalf("loadgen: nothing to do: give -url to run, or -record to expand")
		}
		return
	}
	applySLOOverrides(w, *sloP99, *sloErrs, *sloSheds)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	outcome, err := loadgen.Run(ctx, w, loadgen.Options{
		BaseURL:       *baseURL,
		Client:        &http.Client{Timeout: *timeout},
		TracePrefix:   *tracePfx,
		ScrapeMetrics: !*noMetrics,
	})
	if err != nil {
		log.Fatalf("loadgen: run: %v", err)
	}
	report := loadgen.BuildReport(w, outcome)

	buf, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		log.Fatalf("loadgen: %v", err)
	}
	buf = append(buf, '\n')
	if *outFile == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*outFile, buf, 0o644); err != nil {
		log.Fatalf("loadgen: write report: %v", err)
	}
	log.Printf("loadgen: %s: %d requests in %.2fs (%.1f/s achieved), ok=%d shed=%d timeout=%d err=%d p99=%.2fms",
		report.Workload, report.Requests, report.WallSeconds, report.AchievedRate,
		report.OK, report.Shed, report.Timeouts, report.Errors, report.Latency.P99Ms)
	if len(report.Violations) > 0 {
		for _, v := range report.Violations {
			log.Printf("loadgen: SLO VIOLATION: %s", v)
		}
		os.Exit(1)
	}
}

// loadWorkload reads the workload from -spec or -replay (exactly one).
// -replay additionally requires the file to be a real recording: a
// header-only file would regenerate, which is what -spec is for.
func loadWorkload(spec, replay string) (*loadgen.Workload, error) {
	switch {
	case spec != "" && replay != "":
		return nil, fmt.Errorf("give -spec or -replay, not both")
	case spec != "":
		return loadgen.ReadFile(spec)
	case replay != "":
		w, err := loadgen.ReadFile(replay)
		if err != nil {
			return nil, err
		}
		if w.Requests == nil {
			return nil, fmt.Errorf("%s is a header-only spec, not a recording; use -spec to expand it", replay)
		}
		return w, nil
	default:
		return nil, fmt.Errorf("a workload file is required: -spec or -replay")
	}
}

// applyOverrides rewrites spec knobs from flags. Any override invalidates a
// recording's concrete requests (the sequence would no longer match the
// spec), so Requests is dropped and re-expanded.
func applyOverrides(w *loadgen.Workload, seed uint64, requests int, rate float64, workers int, mode string) {
	changed := false
	if seed != 0 && seed != w.Spec.Seed {
		w.Spec.Seed = seed
		changed = true
	}
	if requests != 0 && requests != w.Spec.Requests {
		w.Spec.Requests = requests
		changed = true
	}
	if rate != 0 && rate != w.Spec.Rate {
		w.Spec.Rate = rate
		changed = true
	}
	if workers != 0 && workers != w.Spec.Workers {
		w.Spec.Workers = workers
		changed = true
	}
	if mode != "" && mode != w.Spec.Mode {
		w.Spec.Mode = mode
		changed = true
	}
	if changed {
		w.Requests = nil
	}
}

func applySLOOverrides(w *loadgen.Workload, p99, errRate, shedRate float64) {
	if p99 <= 0 && errRate < 0 && shedRate < 0 {
		return
	}
	if w.Spec.SLO == nil {
		w.Spec.SLO = &loadgen.SLO{}
	}
	if p99 > 0 {
		w.Spec.SLO.P99Ms = p99
	}
	if errRate >= 0 {
		w.Spec.SLO.MaxErrorRate = &errRate
	}
	if shedRate >= 0 {
		w.Spec.SLO.MaxShedRate = &shedRate
	}
}
