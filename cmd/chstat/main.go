// Command chstat prints Component Hierarchy statistics (the paper's Table 2)
// for a DIMACS instance or a generated one.
//
// Usage:
//
//	chstat -graph rand.gr
//	chstat -gen rmat -logn 16 -logc 2
//	chstat -families -logn 14       # all six paper families
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ch"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/par"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "DIMACS .gr input file")
		genClass  = flag.String("gen", "rand", "generator: rand, rmat, grid")
		logN      = flag.Int("logn", 14, "n = 2^logn")
		logC      = flag.Int("logc", 14, "C = 2^logc")
		pwd       = flag.Bool("pwd", false, "poly-log weights")
		seed      = flag.Uint64("seed", 1, "generator seed")
		families  = flag.Bool("families", false, "print the full Table 2 over the paper's six families")
	)
	flag.Parse()

	if *families {
		cfg := harness.DefaultConfig()
		cfg.LogN = *logN
		cfg.Seed = *seed
		tb, err := cfg.Table2()
		if err != nil {
			fmt.Fprintf(os.Stderr, "chstat: %v\n", err)
			os.Exit(1)
		}
		tb.Fprint(os.Stdout)
		return
	}

	g, name, err := cli.Spec{
		File: *graphFile, Class: *genClass,
		LogN: *logN, LogC: *logC, PWD: *pwd, Seed: *seed,
	}.Load()
	if err != nil {
		fmt.Fprintf(os.Stderr, "chstat: %v\n", err)
		os.Exit(1)
	}

	h := ch.BuildKruskal(g)
	st := h.ComputeStats()
	q := core.NewSolver(h, par.NewExec(1)).Query()
	fmt.Printf("instance %s: n=%d m=%d\n", name, g.NumVertices(), g.NumEdges())
	fmt.Printf("  components       %d (internal %d, leaves %d)\n", st.Components, st.Internal, g.NumVertices())
	fmt.Printf("  avg children     %.2f (max %d)\n", st.AvgChildren, st.MaxChildren)
	fmt.Printf("  height           %d levels (max level %d)\n", st.Height, h.MaxLevel())
	fmt.Printf("  CH memory        %d bytes\n", st.CHBytes)
	fmt.Printf("  query instance   %d bytes\n", q.InstanceBytes())
	fmt.Printf("  graph memory     %d bytes\n", g.MemoryBytes())
}
