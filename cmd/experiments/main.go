// Command experiments regenerates every table and figure of the paper's
// evaluation section (plus the repository's ablations) at a configurable
// scale and prints them in the paper's layout.
//
// Usage:
//
//	experiments -all                      # everything at the default scale
//	experiments -run table5,figure5       # specific experiments
//	experiments -run figure4 -logn 18     # bigger instances
//	experiments -all -csv out/            # also write CSV files for plotting
//
// Experiments: table1..table6, figure4, figure5, ablation-ch, ablation-cc,
// ablation-buckets, road.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/harness"
)

// figure5Long reshapes the wide Figure 5 table (three time columns) into a
// long (series, x, y) table for plotting.
func figure5Long(tb *harness.Table) *harness.Table {
	out := &harness.Table{Title: tb.Title, Header: []string{"Series", "Sources", "Time"}}
	for _, row := range tb.Rows {
		for col, label := range []string{"", "", "baseline-thorup", "baseline-deltastep", "simul-thorup"} {
			if label == "" {
				continue
			}
			out.AddRow(label+"/"+row[0], row[1], row[col])
		}
	}
	return out
}

func main() {
	cfg := harness.DefaultConfig()
	var (
		all    = flag.Bool("all", false, "run every experiment")
		run    = flag.String("run", "", "comma-separated experiment names")
		csvDir = flag.String("csv", "", "also write <name>.csv files into this directory")
		plot   = flag.Bool("plot", false, "render figure4/figure5 as ASCII plots after their tables")
		list   = flag.Bool("list", false, "list experiment names and exit")
	)
	flag.IntVar(&cfg.LogN, "logn", cfg.LogN, "instance scale: n = 2^logn, m = 4n")
	flag.IntVar(&cfg.Procs, "procs", cfg.Procs, "simulated MTA-2 processors")
	flag.IntVar(&cfg.Workers, "workers", cfg.Workers, "host goroutines for wall-clock runs")
	flag.Uint64Var(&cfg.Seed, "seed", cfg.Seed, "generator seed")
	flag.BoolVar(&cfg.Verify, "verify", cfg.Verify, "cross-check solver outputs against Dijkstra")
	flag.Parse()

	if *list {
		for _, name := range harness.Order {
			fmt.Println(name)
		}
		return
	}

	var names []string
	switch {
	case *all:
		names = harness.Order
	case *run != "":
		names = strings.Split(*run, ",")
	default:
		fmt.Fprintln(os.Stderr, "experiments: pass -all or -run <names>; -list shows choices")
		os.Exit(2)
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	for _, name := range names {
		name = strings.TrimSpace(name)
		fn, ok := harness.Experiments[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown experiment %q (try -list)\n", name)
			os.Exit(2)
		}
		start := time.Now()
		tb, err := fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		tb.Fprint(os.Stdout)
		if *plot {
			switch name {
			case "figure4":
				// Columns: Series, Procs, Time, Speedup -> plot speedup vs procs.
				fmt.Println()
				fmt.Print(harness.PlotFromTable(tb, 0, 1, 3, 70, 16))
			case "figure5":
				// Columns: Instance, Sources, then the three time series;
				// reshape to long form before plotting.
				fmt.Println()
				fmt.Print(harness.PlotFromTable(figure5Long(tb), 0, 1, 2, 70, 16))
			}
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
		if *csvDir != "" {
			f, err := os.Create(filepath.Join(*csvDir, name+".csv"))
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			if err := tb.WriteCSV(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
				os.Exit(1)
			}
			f.Close()
		}
	}
}
