// Command sssp solves shortest-path problems on a DIMACS .gr instance (or a
// generated one) with any of the repository's solvers.
//
// Usage:
//
//	sssp -graph rand.gr -algo thorup -src 0 -workers 8 -certify
//	sssp -gen rand -logn 16 -algo delta
//	sssp -gen rmat -logn 14 -algo all -certify
//	sssp -gen rand -logn 14 -sources q.ss -algo thorup    # batch, shared CH
//	sssp -gen grid -logn 14 -st 12345                     # point-to-point
//	sssp -gen rand -logn 16 -ch cache.chb -algo thorup    # persist the CH
//
// Algorithms: thorup, thorup-serial, delta, dijkstra, mlb, bfs (unit
// weights), all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/bfs"
	"repro/internal/ch"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/deltastep"
	"repro/internal/dijkstra"
	"repro/internal/graph"
	"repro/internal/mlb"
	"repro/internal/par"
	"repro/internal/verify"
)

func main() {
	var (
		graphFile = flag.String("graph", "", "DIMACS .gr input file")
		genClass  = flag.String("gen", "", "generate instead: rand, rmat, grid, geometric, smallworld")
		logN      = flag.Int("logn", 14, "generated size: n = 2^logn")
		logC      = flag.Int("logc", 14, "generated weights: C = 2^logc")
		pwd       = flag.Bool("pwd", false, "generated weights poly-log instead of uniform")
		seed      = flag.Uint64("seed", 1, "generator seed")
		algo      = flag.String("algo", "thorup", "thorup, thorup-serial, delta, dijkstra, mlb, bfs, all")
		src       = flag.Int("src", 0, "source vertex (0-based)")
		srcFile   = flag.String("sources", "", "DIMACS .ss file: run one query per source (shared CH)")
		st        = flag.Int("st", -1, "target vertex: print the s-t distance (bidirectional Dijkstra) and exit")
		workers   = flag.Int("workers", 4, "goroutines for parallel solvers")
		certify   = flag.Bool("certify", false, "certify results in linear time (feasibility+tightness)")
		delta     = flag.Int64("delta", 0, "delta-stepping bucket width (0 = heuristic)")
		chFile    = flag.String("ch", "", "component hierarchy cache file (loaded if present, else built and saved)")
	)
	flag.Parse()

	g, name, err := cli.Spec{
		File: *graphFile, Class: *genClass,
		LogN: *logN, LogC: *logC, PWD: *pwd, Seed: *seed,
	}.Load()
	if err != nil {
		fatal(err)
	}
	if *src < 0 || *src >= g.NumVertices() {
		fatalf("source %d out of range [0,%d)", *src, g.NumVertices())
	}
	fmt.Printf("instance %s: n=%d m=%d weights [%d,%d]\n",
		name, g.NumVertices(), g.NumEdges(), g.MinWeight(), g.MaxWeight())

	s := int32(*src)
	rt := par.NewExec(*workers)

	if *st >= 0 {
		if *st >= g.NumVertices() {
			fatalf("target %d out of range", *st)
		}
		start := time.Now()
		d := dijkstra.STDistance(g, s, int32(*st))
		if d == graph.Inf {
			fmt.Printf("st(%d,%d) = unreachable (%v)\n", s, *st, time.Since(start).Round(time.Microsecond))
		} else {
			fmt.Printf("st(%d,%d) = %d (%v)\n", s, *st, d, time.Since(start).Round(time.Microsecond))
		}
		return
	}

	var h *ch.Hierarchy
	buildCH := func() *ch.Hierarchy {
		if h != nil {
			return h
		}
		if *chFile != "" {
			if f, err := os.Open(*chFile); err == nil {
				loaded, lerr := ch.ReadFrom(f, g)
				f.Close()
				if lerr == nil {
					fmt.Printf("component hierarchy: %d nodes loaded from %s\n", loaded.NumNodes(), *chFile)
					h = loaded
					return h
				}
				fmt.Fprintf(os.Stderr, "sssp: ignoring cache %s: %v\n", *chFile, lerr)
			}
		}
		start := time.Now()
		h = ch.BuildKruskal(g)
		fmt.Printf("component hierarchy: %d nodes built in %v\n", h.NumNodes(), time.Since(start).Round(time.Microsecond))
		if *chFile != "" {
			if f, err := os.Create(*chFile); err == nil {
				if _, werr := h.WriteTo(f); werr != nil {
					fmt.Fprintf(os.Stderr, "sssp: cache write: %v\n", werr)
				}
				f.Close()
			}
		}
		return h
	}

	if *srcFile != "" {
		runBatch(rt, g, buildCH(), *srcFile, *certify, *workers)
		return
	}

	algos := map[string]func() []int64{
		"thorup":        func() []int64 { return core.NewSolver(buildCH(), rt).SSSP(s) },
		"thorup-serial": func() []int64 { return core.SerialSSSP(buildCH(), s) },
		"delta": func() []int64 {
			d := *delta
			if d <= 0 {
				d = deltastep.DefaultDelta(g)
			}
			return deltastep.SSSP(rt, g, s, d)
		},
		"dijkstra": func() []int64 { return dijkstra.SSSP(g, s) },
		"mlb":      func() []int64 { return mlb.SSSP(g, s) },
		"bfs":      func() []int64 { return bfs.Distances(bfs.Parallel(rt, g, s)) },
	}
	order := []string{"thorup", "thorup-serial", "delta", "dijkstra", "mlb"}

	selected := strings.Split(strings.ToLower(*algo), ",")
	if *algo == "all" {
		selected = order
	}
	failed := false
	for _, a := range selected {
		run, ok := algos[a]
		if !ok {
			fatalf("unknown algorithm %q", a)
		}
		start := time.Now()
		dist := run()
		elapsed := time.Since(start)
		reached, maxD := summarize(dist)
		fmt.Printf("%-14s %10v  reached=%d maxDist=%d\n", a, elapsed.Round(time.Microsecond), reached, maxD)
		if *certify && a != "bfs" {
			if err := verify.Distances(rt, g, []int32{s}, dist); err != nil {
				fmt.Fprintf(os.Stderr, "sssp: %s: %v\n", a, err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	if *certify {
		fmt.Println("certification: all results are exact shortest-path distances")
	}
}

// runBatch answers one Thorup query per source in the .ss file, all sharing
// one hierarchy, and prints per-source reachability summaries.
func runBatch(rt *par.Runtime, g *graph.Graph, h *ch.Hierarchy, srcFile string, certify bool, workers int) {
	f, err := os.Open(srcFile)
	if err != nil {
		fatal(err)
	}
	sources, err := cli.ReadSources(f, g)
	f.Close()
	if err != nil {
		fatal(err)
	}
	solver := core.NewSolver(h, rt)
	start := time.Now()
	results := solver.RunMany(sources)
	elapsed := time.Since(start)
	for i, s := range sources {
		reached, maxD := summarize(results[i])
		fmt.Printf("source %-8d reached=%d maxDist=%d\n", s, reached, maxD)
		if certify {
			if err := verify.Distances(rt, g, []int32{s}, results[i]); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Printf("%d simultaneous queries over one shared CH: %v\n", len(sources), elapsed.Round(time.Microsecond))
}

func summarize(dist []int64) (reached int, max int64) {
	for _, d := range dist {
		if d < graph.Inf {
			reached++
			if d > max {
				max = d
			}
		}
	}
	return reached, max
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "sssp: %v\n", err)
	os.Exit(1)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sssp: "+format+"\n", args...)
	os.Exit(1)
}
