c sources in both components
p aux sp ss 2
s 1
s 5
