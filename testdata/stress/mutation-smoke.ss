c sources for the mutation smoke replay
p aux sp ss 2
s 1
s 3
