// Quickstart: generate a paper-style random instance, build the Component
// Hierarchy once, run Thorup SSSP on it, and verify against Dijkstra.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// A Random-UWD-2^14-2^14 instance: cycle + random edges, m = 4n,
	// uniform weights in [1, 2^14] (paper §4.2).
	n := 1 << 14
	g := repro.RandomGraph(n, 4*n, uint32(n), repro.UWD, 42)
	fmt.Printf("instance: n=%d, m=%d, weights [%d,%d]\n",
		g.NumVertices(), g.NumEdges(), g.MinWeight(), g.MaxWeight())

	// The Component Hierarchy is built once and then shared by every query.
	start := time.Now()
	h := repro.BuildHierarchy(g)
	fmt.Printf("component hierarchy: %d nodes, height %d, built in %v\n",
		h.NumNodes(), h.ComputeStats().Height, time.Since(start).Round(time.Microsecond))

	solver := repro.NewSolver(h, repro.NewExecRuntime(4))

	start = time.Now()
	dist := solver.SSSP(0)
	fmt.Printf("thorup SSSP from 0: %v\n", time.Since(start).Round(time.Microsecond))

	// Cross-check against the Dijkstra oracle.
	want := repro.Dijkstra(g, 0)
	for v := range want {
		if dist[v] != want[v] {
			log.Fatalf("mismatch at vertex %d: thorup %d, dijkstra %d", v, dist[v], want[v])
		}
	}
	far, farDist := 0, int64(0)
	for v, d := range dist {
		if d < repro.Inf && d > farDist {
			far, farDist = v, d
		}
	}
	fmt.Printf("verified against Dijkstra; farthest vertex %d at distance %d\n", far, farDist)
}
