// Facility location: multi-source SSSP on a road-network-like instance.
//
// Thorup's algorithm handles several distance-zero sources in one traversal
// (a virtual super-source without the zero-weight edges Thorup forbids), so
// "distance to the nearest facility for every address" is a single query —
// and the assignment of each address to its nearest facility falls out of the
// shortest-path tree.
//
//	go run ./examples/facilities
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	// A random geometric graph stands in for a metro road network.
	g := repro.GeometricGraph(20000, 0.012, 100, 11)
	fmt.Printf("road network: n=%d m=%d (mean degree %.1f)\n",
		g.NumVertices(), g.NumEdges(), g.Degrees().Mean)

	h := repro.BuildHierarchy(g)
	solver := repro.NewSolver(h, repro.NewExecRuntime(4))
	q := solver.Query()

	// Facilities at arbitrary network positions.
	facilities := []int32{17, 4242, 9001, 15000, 19999}

	start := time.Now()
	dist := q.RunFromSources(facilities)
	elapsed := time.Since(start)

	// Certify the multi-source result in linear time.
	if err := repro.CertifyDistances(repro.NewExecRuntime(4), g, facilities, dist); err != nil {
		panic(err)
	}

	// Coverage statistics: how far is the farthest address from help?
	var worst int64
	worstV := int32(-1)
	reached := 0
	var sum float64
	for v, d := range dist {
		if d == repro.Inf {
			continue
		}
		reached++
		sum += float64(d)
		if d > worst {
			worst, worstV = d, int32(v)
		}
	}
	fmt.Printf("one multi-source Thorup query: %v (certified)\n", elapsed.Round(time.Millisecond))
	fmt.Printf("coverage: %d/%d addresses reached, mean distance %.0f, worst %d (address %d)\n",
		reached, g.NumVertices(), sum/float64(reached), worst, worstV)

	// Which facility serves the worst-off address? Walk the shortest-path
	// tree downhill from it.
	parent := q.Parents()
	if err := repro.CertifyTree(g, facilities, dist, parent); err != nil {
		panic(err)
	}
	path := repro.ShortestPath(dist, parent, worstV)
	fmt.Printf("worst address is served by facility %d via %d hops\n", path[0], len(path)-1)

	// The naive alternative: one Dijkstra per facility plus a min-reduce.
	start = time.Now()
	for _, f := range facilities {
		repro.Dijkstra(g, f)
	}
	fmt.Printf("baseline (%d separate Dijkstra runs): %v\n", len(facilities), time.Since(start).Round(time.Millisecond))
}
