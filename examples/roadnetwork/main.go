// Road networks: the paper's §6 future-work scenario.
//
// Structured, high-diameter instances (road networks, modelled here as a 2D
// grid) are hard for parallel delta-stepping — the frontier per bucket is
// tiny, so there is no parallelism to exploit — and they expose the
// "trapping" behaviour of Thorup's traversal: the Component Hierarchy is a
// deep chain and the recursion descends and re-ascends it once per bucket.
// This example measures both effects and compares against the unstructured
// random family at the same size.
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"time"

	"repro"
)

func main() {
	side := 128
	n := side * side
	grid := repro.GridGraph(side, side, 64, repro.UWD, 3)
	random := repro.RandomGraph(n, 4*n, 64, repro.UWD, 3)

	fmt.Printf("grid   (road-like): n=%d m=%d\n", grid.NumVertices(), grid.NumEdges())
	fmt.Printf("random (unstructured): n=%d m=%d\n\n", random.NumVertices(), random.NumEdges())

	rt := repro.NewExecRuntime(4)
	for _, tc := range []struct {
		name string
		g    *repro.Graph
	}{{"grid", grid}, {"random", random}} {
		// Delta-stepping phase structure: the road-like instance needs far
		// more buckets (diameter) and phases, killing parallelism (paper §2:
		// "structured instances with large diameter ... prove to be very
		// difficult for parallel delta stepping regardless of instance size").
		_, st := repro.DeltaSteppingStats(rt, tc.g, 0, 0)
		fmt.Printf("%-7s delta-stepping: %4d buckets, %4d phases, %6d light + %6d heavy relaxations\n",
			tc.name, st.Buckets, st.Phases, st.LightRelax, st.HeavyRelax)

		// Thorup hierarchy shape: deep and narrow on the grid.
		h := repro.BuildHierarchy(tc.g)
		stats := h.ComputeStats()
		fmt.Printf("%-7s component hierarchy: %5d nodes, height %2d, avg children %.1f\n",
			tc.name, stats.Components, stats.Height, stats.AvgChildren)

		start := time.Now()
		dist := repro.ThorupSerial(h, 0)
		thorup := time.Since(start)
		start = time.Now()
		want := repro.Dijkstra(tc.g, 0)
		dij := time.Since(start)
		for v := range want {
			if dist[v] != want[v] {
				panic("thorup result mismatch")
			}
		}
		fmt.Printf("%-7s serial thorup %v vs dijkstra %v (verified)\n\n",
			tc.name, thorup.Round(time.Microsecond), dij.Round(time.Microsecond))
	}

	fmt.Println("simulated 40-processor comparison: go run ./cmd/experiments -run road")
}
