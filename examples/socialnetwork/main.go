// Social-network analytics: the workload the paper's introduction motivates.
//
// Scale-free (R-MAT) graphs model social and economic transaction networks.
// A typical analysis — here, approximate closeness centrality — needs
// shortest path trees from many sources. This example shows the paper's
// headline idea: one shared Component Hierarchy serves all queries
// concurrently, while a Dijkstra/delta-stepping pipeline must run them one
// after another (or copy per-query graph state).
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"sort"
	"time"

	"repro"
)

func main() {
	// An RMAT-UWD-2^13 social-network-like instance.
	n := 1 << 13
	g := repro.RMATGraph(n, 4*n, 100, repro.UWD, 7)
	fmt.Printf("social network: n=%d, m=%d, max degree %d (scale-free)\n",
		g.NumVertices(), g.NumEdges(), g.Degrees().Max)

	h := repro.BuildHierarchy(g)
	solver := repro.NewSolver(h, repro.NewExecRuntime(4))

	// Sample sources: the highest-degree "influencers".
	type hub struct {
		v   int32
		deg int
	}
	hubs := make([]hub, n)
	for v := 0; v < n; v++ {
		hubs[v] = hub{int32(v), g.Degree(int32(v))}
	}
	sort.Slice(hubs, func(i, j int) bool { return hubs[i].deg > hubs[j].deg })
	const k = 16
	sources := make([]int32, k)
	for i := 0; i < k; i++ {
		sources[i] = hubs[i].v
	}

	// All k queries run concurrently against the shared hierarchy.
	start := time.Now()
	closeness := repro.Closeness(solver, sources)
	shared := time.Since(start)

	fmt.Println("\nhub   degree  closeness")
	for i, src := range sources[:8] {
		fmt.Printf("%-5d %-7d %.6f\n", src, g.Degree(src), closeness[i])
	}
	top := repro.TopKCloseness(solver, sources, 3)
	fmt.Printf("\nmost central hubs: %v\n", top)
	fmt.Printf("weighted diameter (double-sweep lower bound): %d\n",
		repro.DiameterEstimate(solver, sources[0], 3))

	// Baseline: the same queries, one after another, with delta-stepping.
	rt := repro.NewExecRuntime(4)
	start = time.Now()
	for _, src := range sources {
		repro.DeltaStepping(rt, g, src, 0)
	}
	sequential := time.Since(start)

	fmt.Printf("\n%d shared-CH thorup queries (concurrent): %v\n", k, shared.Round(time.Millisecond))
	fmt.Printf("%d delta-stepping queries (sequential):  %v\n", k, sequential.Round(time.Millisecond))
	fmt.Println("\n(the paper's Figure 5 quantifies this trade-off on the simulated MTA-2;")
	fmt.Println(" run `go run ./cmd/experiments -run figure5`)")
}
