// Simultaneous SSSP runs from multiple sources — the paper's Figure 5
// experiment, on the simulated 40-processor MTA-2.
//
// One Thorup query underutilises the machine (Table 5: delta-stepping wins
// single-source), but k queries sharing one Component Hierarchy fill the
// machine with independent traversals. The baseline must run k parallel
// delta-stepping queries back to back. Past a modest k, the shared-CH batch
// wins.
//
//	go run ./examples/manysources
package main

import (
	"fmt"

	"repro"
)

func main() {
	n := 1 << 14
	g := repro.RandomGraph(n, 4*n, uint32(n), repro.UWD, 1)
	h := repro.BuildHierarchy(g)
	machine := repro.MTA2(40)
	fmt.Printf("instance Rand-UWD-2^14-2^14, simulated %d-processor MTA-2\n\n", machine.Procs)

	// Per-query costs of the two algorithms.
	rt := repro.NewSimRuntime(machine)
	repro.NewSolver(h, rt).SSSP(0)
	thorupOnce := rt.SimCost().Span

	rtD := repro.NewSimRuntime(machine)
	repro.DeltaStepping(rtD, g, 0, 0)
	deltaOnce := rtD.SimCost().Span

	fmt.Printf("single query: thorup %.4gms, delta-stepping %.4gms (delta-stepping wins single-source)\n\n",
		machine.Seconds(thorupOnce)*1e3, machine.Seconds(deltaOnce)*1e3)

	fmt.Println("sources  baseline-thorup  baseline-deltastep  simul-thorup")
	for _, k := range []int{1, 2, 4, 8, 16, 30} {
		sources := make([]int32, k)
		for i := range sources {
			sources[i] = int32(i * (n / k))
		}
		simul, _ := repro.SimultaneousCost(h, machine, sources)
		fmt.Printf("%-8d %-16.4g %-19.4g %.4g\n", k,
			machine.Seconds(int64(k)*thorupOnce)*1e3,
			machine.Seconds(int64(k)*deltaOnce)*1e3,
			machine.Seconds(simul)*1e3)
	}
	fmt.Println("\n(times in simulated milliseconds; the shared-CH batch scales sublinearly")
	fmt.Println(" in k while both baselines scale linearly — the paper's Figure 5)")
}
