package repro

import (
	"bytes"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	g := RandomGraph(2000, 8000, 1<<12, UWD, 42)
	if g.NumVertices() != 2000 || g.NumEdges() != 8000 {
		t.Fatalf("generator: %v", g)
	}
	h := BuildHierarchy(g)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	solver := NewSolver(h, NewExecRuntime(4))
	got := solver.SSSP(0)
	want := Dijkstra(g, 0)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("thorup d[%d]=%d, dijkstra %d", v, got[v], want[v])
		}
	}
}

func TestPublicAPISolversAgree(t *testing.T) {
	g := RMATGraph(1024, 4096, 1<<10, PWD, 7)
	h := BuildHierarchy(g)
	rt := NewExecRuntime(4)
	want := Dijkstra(g, 3)
	for name, got := range map[string][]int64{
		"thorup-serial": ThorupSerial(h, 3),
		"delta":         DeltaStepping(rt, g, 3, 0),
		"mlb":           MultiLevelBuckets(g, 3),
		"thorup-naive":  NewSolver(h, rt, WithStrategy(NaiveStrategy)).SSSP(3),
	} {
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("%s: d[%d]=%d, want %d", name, v, got[v], want[v])
			}
		}
	}
}

func TestPublicAPISimMode(t *testing.T) {
	g := RandomGraph(1000, 4000, 1<<10, UWD, 1)
	rt := NewSimRuntime(MTA2(40))
	h := BuildHierarchyParallel(rt, g)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	buildCost := rt.SimCost()
	if buildCost.Work <= 0 || buildCost.Span <= 0 {
		t.Fatalf("no cost recorded: %+v", buildCost)
	}
	rt.ResetCost()
	NewSolver(h, rt, WithThresholds(TuneThresholds(MTA2(40)))).SSSP(0)
	if rt.SimCost().Span <= 0 {
		t.Fatal("no query cost recorded")
	}
}

func TestPublicAPISharedHierarchy(t *testing.T) {
	g := GridGraph(30, 30, 16, UWD, 5)
	h := BuildHierarchy(g)
	solver := NewSolver(h, NewExecRuntime(4))
	res := solver.RunMany([]int32{0, 450, 899})
	for i, src := range []int32{0, 450, 899} {
		want := Dijkstra(g, src)
		for v := range want {
			if res[i][v] != want[v] {
				t.Fatalf("query %d wrong at %d", i, v)
			}
		}
	}
}

func TestPublicAPIDIMACSRoundTrip(t *testing.T) {
	g := RandomGraph(100, 400, 64, UWD, 9)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g, "api round trip"); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	a, b := Dijkstra(g, 0), Dijkstra(g2, 0)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("distances changed at %d", v)
		}
	}
}

func TestPublicAPIZeroWeightPreprocessing(t *testing.T) {
	edges := []Edge{{U: 0, V: 1, W: 0}, {U: 1, V: 2, W: 5}}
	g, label := ContractZeroEdges(3, edges)
	if g.NumVertices() != 2 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	h := BuildHierarchy(g)
	d := ThorupSerial(h, label[0])
	if d[label[2]] != 5 {
		t.Fatalf("d=%v", d)
	}
}

func TestPublicAPIConnectedComponents(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1, 2)
	b.MustAddEdge(2, 3, 2)
	label, count := ConnectedComponents(NewExecRuntime(2), b.Build())
	if count != 2 || label[0] != label[1] || label[0] == label[2] {
		t.Fatalf("labels %v count %d", label, count)
	}
}

func TestPublicAPIDeltaStats(t *testing.T) {
	g := RandomGraph(500, 2000, 256, UWD, 3)
	_, st := DeltaSteppingStats(NewExecRuntime(2), g, 0, 0)
	if st.Buckets == 0 || st.HeavyRelax == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestPublicAPIBFS(t *testing.T) {
	g := RandomGraph(500, 2000, 1, UWD, 1) // unit weights
	levels := BFSLevels(NewExecRuntime(4), g, 0)
	want := Dijkstra(g, 0)
	for v := range want {
		if want[v] == Inf {
			if levels[v] != -1 {
				t.Fatalf("level[%d]=%d for unreachable", v, levels[v])
			}
			continue
		}
		if int64(levels[v]) != want[v] {
			t.Fatalf("level[%d]=%d, dijkstra %d", v, levels[v], want[v])
		}
	}
}

func TestPublicAPISTAndPaths(t *testing.T) {
	g := GridGraph(20, 20, 16, UWD, 2)
	dist, parent := DijkstraTree(g, 0)
	if err := CertifyDistances(NewExecRuntime(2), g, []int32{0}, dist); err != nil {
		t.Fatal(err)
	}
	if err := CertifyTree(g, []int32{0}, dist, parent); err != nil {
		t.Fatal(err)
	}
	tgt := int32(399)
	if got := STDistance(g, 0, tgt); got != dist[tgt] {
		t.Fatalf("st=%d, want %d", got, dist[tgt])
	}
	p := ShortestPath(dist, parent, tgt)
	if len(p) == 0 || p[0] != 0 || p[len(p)-1] != tgt {
		t.Fatalf("path %v", p)
	}
}

func TestPublicAPIHierarchyPersistence(t *testing.T) {
	g := RandomGraph(400, 1600, 1<<8, PWD, 3)
	h := BuildHierarchy(g)
	var buf bytes.Buffer
	if err := SaveHierarchy(&buf, h); err != nil {
		t.Fatal(err)
	}
	h2, err := LoadHierarchy(&buf, g)
	if err != nil {
		t.Fatal(err)
	}
	a := NewSolver(h, NewExecRuntime(2)).SSSP(0)
	b := NewSolver(h2, NewExecRuntime(2)).SSSP(0)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("loaded hierarchy gives different distances at %d", v)
		}
	}
}

func TestPublicAPINewGenerators(t *testing.T) {
	geo := GeometricGraph(1000, 0.07, 64, 4)
	if err := geo.Validate(); err != nil {
		t.Fatal(err)
	}
	sw := SmallWorldGraph(500, 2, 0.1, 32, UWD, 5)
	if err := sw.Validate(); err != nil {
		t.Fatal(err)
	}
	// Solve on both with Thorup and certify.
	for _, g := range []*Graph{geo, sw} {
		h := BuildHierarchy(g)
		d := NewSolver(h, NewExecRuntime(2)).SSSP(0)
		if err := CertifyDistances(NewExecRuntime(2), g, []int32{0}, d); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPublicAPIAnalytics(t *testing.T) {
	g := RMATGraph(512, 2048, 64, UWD, 11)
	giant, ids := LargestComponent(g)
	if giant.NumVertices() == 0 || len(ids) != giant.NumVertices() {
		t.Fatalf("giant component: %v", giant)
	}
	s := NewSolver(BuildHierarchy(giant), NewExecRuntime(4))
	verts := []int32{0, 1, 2, 3}
	cl := Closeness(s, verts)
	ha := Harmonic(s, verts)
	for i := range verts {
		if cl[i] < 0 || ha[i] < 0 {
			t.Fatalf("negative centrality at %d", i)
		}
	}
	if d := DiameterEstimate(s, 0, 3); d <= 0 {
		t.Fatalf("diameter estimate %d", d)
	}
	top := TopKCloseness(s, verts, 2)
	if len(top) != 2 {
		t.Fatalf("top-k %v", top)
	}
}
