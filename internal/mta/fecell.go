package mta

import "sync"

// FECell emulates an MTA full/empty-bit synchronized memory word. Every
// memory word on the MTA-2 carries a full/empty tag bit; synchronized loads
// (readfe) block until the word is full and leave it empty, synchronized
// stores (writeef) block until the word is empty and leave it full. These
// primitives are the machine's native fine-grained synchronization and the
// basis of MTGL's lock-free-looking kernels.
//
// The zero value is an empty cell holding 0.
type FECell struct {
	mu   sync.Mutex
	cond *sync.Cond
	val  int64
	full bool
}

// NewFull returns a cell that starts full with the given value.
func NewFull(v int64) *FECell {
	c := &FECell{val: v, full: true}
	return c
}

func (c *FECell) lockInit() {
	if c.cond == nil {
		c.cond = sync.NewCond(&c.mu)
	}
}

// ReadFE blocks until the cell is full, returns its value, and leaves the
// cell empty (the MTA readfe operation).
func (c *FECell) ReadFE() int64 {
	c.mu.Lock()
	c.lockInit()
	for !c.full {
		c.cond.Wait()
	}
	c.full = false
	v := c.val
	c.cond.Broadcast()
	c.mu.Unlock()
	return v
}

// WriteEF blocks until the cell is empty, stores v, and leaves the cell full
// (the MTA writeef operation).
func (c *FECell) WriteEF(v int64) {
	c.mu.Lock()
	c.lockInit()
	for c.full {
		c.cond.Wait()
	}
	c.val = v
	c.full = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// ReadFF blocks until the cell is full and returns its value, leaving it full
// (the MTA readff operation).
func (c *FECell) ReadFF() int64 {
	c.mu.Lock()
	c.lockInit()
	for !c.full {
		c.cond.Wait()
	}
	v := c.val
	c.mu.Unlock()
	return v
}

// WriteXF stores v and marks the cell full regardless of its previous state
// (the MTA unconditional tagged store).
func (c *FECell) WriteXF(v int64) {
	c.mu.Lock()
	c.lockInit()
	c.val = v
	c.full = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// IntFetchAdd atomically adds delta to a full cell and returns the previous
// value (the MTA int_fetch_add primitive, the machine's workhorse for
// parallel reductions and queue indices). It blocks until the cell is full.
func (c *FECell) IntFetchAdd(delta int64) int64 {
	c.mu.Lock()
	c.lockInit()
	for !c.full {
		c.cond.Wait()
	}
	v := c.val
	c.val += delta
	c.cond.Broadcast()
	c.mu.Unlock()
	return v
}
