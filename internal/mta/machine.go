package mta

import "fmt"

// LoopMode is the degree of parallelism requested for a loop. The MTA-2
// programming environment exposed exactly these three choices (paper §3.3,
// §5.4): serial, parallel on a single processor, or parallel on all
// processors.
type LoopMode int

const (
	// Serial runs the loop on the issuing stream.
	Serial LoopMode = iota
	// SinglePar forks the loop across the streams of one processor.
	SinglePar
	// MultiPar forks the loop across all processors.
	MultiPar
	// Futures spawns one lightweight thread per iteration (the MTA "future"
	// mechanism): the whole machine is available and the per-spawn cost is
	// tiny compared to a processor-team loop fork. Thorup's recursive child
	// visits run this way.
	Futures
)

func (m LoopMode) String() string {
	switch m {
	case Serial:
		return "serial"
	case SinglePar:
		return "single-proc"
	case MultiPar:
		return "multi-proc"
	case Futures:
		return "futures"
	default:
		return fmt.Sprintf("LoopMode(%d)", int(m))
	}
}

// Machine holds the cost parameters of a simulated MTA-2 configuration. All
// costs are in clock cycles; one unit of charged work is one cycle (one
// memory reference, since the MTA-2 sustains one reference per processor per
// cycle).
type Machine struct {
	// Procs is the number of processors (the paper's machine had 40).
	Procs int
	// StreamsPerProc is the number of hardware streams each processor can
	// usefully saturate. The MTA-2 had 128 contexts; ~100 are typically
	// usable for work.
	StreamsPerProc int
	// ClockMHz converts cycles to wall-clock seconds for paper-style tables.
	ClockMHz float64
	// ForkMulti is the cost of forking a loop across all processors: the
	// runtime must create thread teams on every processor and divide the
	// iteration space (paper §3.3: "the runtime system must fork threads and
	// divide the work across processors").
	ForkMulti int64
	// ForkSingle is the (much smaller) cost of forking a loop across the
	// streams of a single processor.
	ForkSingle int64
	// ForkFutures is the cost of spawning a batch of lightweight threads
	// (the MTA future mechanism); nearly free next to a team fork.
	ForkFutures int64
	// SingleProcAnomaly emulates the MTA-2 runtime artifact the paper
	// reports in §5.3: on single-processor runs, "loops with a large amount
	// of work only receive a single thread of execution in some cases
	// because the remainder of the threads are occupied visiting other
	// components", which starves team loops and makes the measured 1->2
	// processor step look 3-7x — the source of the paper's super-linear
	// relative speedups. When set (and Procs == 1), team loops get only a
	// fraction of the streams. Off by default; this repository's headline
	// speedups do not use it.
	SingleProcAnomaly bool
}

// MTA2 returns the cost model for a p-processor MTA-2. The fork costs are
// calibrated so that the relative benefit of selective parallelization
// (Table 6) and the scaling knees (Figure 4) match the paper's shapes.
func MTA2(p int) Machine {
	if p < 1 {
		panic(fmt.Sprintf("mta: invalid processor count %d", p))
	}
	return Machine{
		Procs:          p,
		StreamsPerProc: 100,
		ClockMHz:       220,
		// Team forks pay a per-processor setup: cheap on one processor,
		// expensive across the full machine (p=40 gives 500 cycles).
		ForkMulti:   100 + int64(p)*10,
		ForkSingle:  60,
		ForkFutures: 15,
	}
}

// Lanes returns how many iterations can proceed concurrently in the given
// loop mode.
func (m Machine) Lanes(mode LoopMode) int64 {
	switch mode {
	case Serial:
		return 1
	case SinglePar:
		return int64(m.StreamsPerProc)
	case MultiPar, Futures:
		lanes := int64(m.Procs) * int64(m.StreamsPerProc)
		if m.SingleProcAnomaly && m.Procs == 1 {
			lanes /= 8 // starved team loops (paper §5.3)
			if lanes < 1 {
				lanes = 1
			}
		}
		return lanes
	default:
		panic("mta: unknown loop mode")
	}
}

// ForkCost returns the loop setup cost for the given mode.
func (m Machine) ForkCost(mode LoopMode) int64 {
	switch mode {
	case Serial:
		return 0
	case SinglePar:
		return m.ForkSingle
	case MultiPar:
		return m.ForkMulti
	case Futures:
		return m.ForkFutures
	default:
		panic("mta: unknown loop mode")
	}
}

// Seconds converts a cycle count to wall-clock seconds on this machine.
func (m Machine) Seconds(cycles int64) float64 {
	return float64(cycles) / (m.ClockMHz * 1e6)
}

// Cost is a (work, span) pair in cycles. Work is the total number of cycles
// consumed across all streams; span is the length of the critical path. On a
// machine with L lanes a computation with cost c completes in roughly
// c.Work/L + c.Span cycles (Brent's bound).
type Cost struct {
	Work int64
	Span int64
}

// Add accumulates serial composition: work and span both add.
func (c *Cost) Add(d Cost) {
	c.Work += d.Work
	c.Span += d.Span
}

// Makespan estimates the completion time of this cost on a machine with the
// given number of lanes via Brent's bound.
func (c Cost) Makespan(lanes int64) int64 {
	if lanes < 1 {
		lanes = 1
	}
	return c.Work/lanes + c.Span
}

// ParallelLoop folds the per-iteration costs of a loop into a single cost
// charged to the enclosing region.
//
// In Serial mode the iterations run one after another, each free to use the
// whole machine internally, so the loop's span is the sum of the iteration
// spans. In a parallel mode the iterations run concurrently: the fork
// overhead is paid on both axes and the span follows the greedy-schedule
// (Brent) bound fork + sumWork/lanes + maxSpan.
func (m Machine) ParallelLoop(mode LoopMode, sumWork, sumSpan, maxSpan int64) Cost {
	if mode == Serial {
		return Cost{Work: sumWork, Span: sumSpan}
	}
	fork := m.ForkCost(mode)
	lanes := m.Lanes(mode)
	span := fork + sumWork/lanes + maxSpan
	return Cost{Work: fork + sumWork, Span: span}
}

// MTA2Anomalous is MTA2 with the paper's single-processor starvation
// artifact enabled, for reproducing the paper's super-linear relative
// speedup numbers (see SingleProcAnomaly).
func MTA2Anomalous(p int) Machine {
	m := MTA2(p)
	m.SingleProcAnomaly = true
	return m
}

// CoSchedule estimates the makespan of k independent jobs running
// concurrently on the whole machine (Figure 5's simultaneous SSSP runs): the
// machine retires at most Lanes(MultiPar) cycles of work per cycle, and no
// job finishes before its own span.
func (m Machine) CoSchedule(jobs []Cost) int64 {
	var totalWork, maxSpan int64
	for _, j := range jobs {
		totalWork += j.Work
		if j.Span > maxSpan {
			maxSpan = j.Span
		}
	}
	t := totalWork / m.Lanes(MultiPar)
	if maxSpan > t {
		return maxSpan
	}
	return t
}
