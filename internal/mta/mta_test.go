package mta

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestLanes(t *testing.T) {
	m := MTA2(40)
	if m.Lanes(Serial) != 1 {
		t.Errorf("serial lanes = %d", m.Lanes(Serial))
	}
	if m.Lanes(SinglePar) != 100 {
		t.Errorf("single-proc lanes = %d", m.Lanes(SinglePar))
	}
	if m.Lanes(MultiPar) != 4000 {
		t.Errorf("multi-proc lanes = %d", m.Lanes(MultiPar))
	}
}

func TestForkCostOrdering(t *testing.T) {
	m := MTA2(4)
	if !(m.ForkCost(Serial) < m.ForkCost(SinglePar) && m.ForkCost(SinglePar) < m.ForkCost(MultiPar)) {
		t.Fatalf("fork costs not ordered: %d %d %d",
			m.ForkCost(Serial), m.ForkCost(SinglePar), m.ForkCost(MultiPar))
	}
}

func TestInvalidProcsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MTA2(0) did not panic")
		}
	}()
	MTA2(0)
}

func TestSeconds(t *testing.T) {
	m := MTA2(1)
	if got := m.Seconds(220e6); got != 1.0 {
		t.Fatalf("220e6 cycles = %v s, want 1", got)
	}
}

func TestMakespanBrent(t *testing.T) {
	c := Cost{Work: 1000, Span: 10}
	if got := c.Makespan(1); got != 1010 {
		t.Errorf("1 lane: %d", got)
	}
	if got := c.Makespan(100); got != 20 {
		t.Errorf("100 lanes: %d", got)
	}
	if got := c.Makespan(0); got != 1010 {
		t.Errorf("0 lanes should clamp to 1: %d", got)
	}
}

func TestParallelLoopSerialHasNoFork(t *testing.T) {
	m := MTA2(40)
	c := m.ParallelLoop(Serial, 100, 100, 5)
	if c.Work != 100 {
		t.Errorf("serial loop work = %d", c.Work)
	}
	if c.Span != 100 {
		t.Errorf("serial loop span = %d (want sumSpan)", c.Span)
	}
}

func TestParallelLoopMultiSpeedsUp(t *testing.T) {
	m := MTA2(40)
	big := m.ParallelLoop(MultiPar, 1e9, 1e9, 100)
	ser := m.ParallelLoop(Serial, 1e9, 1e9, 100)
	if big.Span >= ser.Span {
		t.Fatalf("multi-proc span %d not below serial span %d for large loop", big.Span, ser.Span)
	}
	// For a tiny loop the fork cost must dominate, making MultiPar worse.
	smallM := m.ParallelLoop(MultiPar, 10, 10, 5)
	smallS := m.ParallelLoop(Serial, 10, 10, 5)
	if smallM.Span <= smallS.Span {
		t.Fatalf("multi-proc span %d not above serial span %d for tiny loop", smallM.Span, smallS.Span)
	}
}

func TestCoScheduleSpanBound(t *testing.T) {
	m := MTA2(40)
	jobs := []Cost{{Work: 100, Span: 1000}, {Work: 100, Span: 10}}
	if got := m.CoSchedule(jobs); got != 1000 {
		t.Fatalf("co-schedule = %d, want span bound 1000", got)
	}
}

func TestCoScheduleWorkBound(t *testing.T) {
	m := MTA2(1) // 100 lanes
	jobs := []Cost{{Work: 100000, Span: 10}, {Work: 100000, Span: 10}}
	if got := m.CoSchedule(jobs); got != 2000 {
		t.Fatalf("co-schedule = %d, want work bound 2000", got)
	}
}

func TestCostAdd(t *testing.T) {
	c := Cost{Work: 1, Span: 2}
	c.Add(Cost{Work: 10, Span: 20})
	if c.Work != 11 || c.Span != 22 {
		t.Fatalf("Add gave %+v", c)
	}
}

// Property: makespan is monotone non-increasing in lanes and never below
// span or work/lanes.
func TestQuickMakespanBounds(t *testing.T) {
	f := func(w, s uint32, lanes uint16) bool {
		c := Cost{Work: int64(w), Span: int64(s)}
		l := int64(lanes%512) + 1
		ms := c.Makespan(l)
		return ms >= c.Span && ms >= c.Work/l && ms <= c.Makespan(1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFECellHandoff(t *testing.T) {
	c := &FECell{} // empty
	done := make(chan int64)
	go func() { done <- c.ReadFE() }()
	c.WriteEF(42)
	if v := <-done; v != 42 {
		t.Fatalf("handoff got %d", v)
	}
	// Cell is now empty again; WriteEF must succeed immediately.
	c.WriteEF(7)
	if v := c.ReadFF(); v != 7 {
		t.Fatalf("ReadFF got %d", v)
	}
	if v := c.ReadFF(); v != 7 {
		t.Fatalf("ReadFF should leave full; second read got %d", v)
	}
}

func TestFECellNewFull(t *testing.T) {
	c := NewFull(9)
	if v := c.ReadFE(); v != 9 {
		t.Fatalf("got %d", v)
	}
	// Now empty: WriteXF forces full regardless.
	c.WriteXF(11)
	if v := c.ReadFF(); v != 11 {
		t.Fatalf("got %d", v)
	}
}

func TestIntFetchAddConcurrent(t *testing.T) {
	c := NewFull(0)
	const workers, perWorker = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.IntFetchAdd(1)
			}
		}()
	}
	wg.Wait()
	if v := c.ReadFF(); v != workers*perWorker {
		t.Fatalf("counter = %d, want %d", v, workers*perWorker)
	}
}

func TestFECellPingPong(t *testing.T) {
	// Producer/consumer strict alternation through full/empty bits.
	c := &FECell{}
	const rounds = 200
	var sum int64
	done := make(chan struct{})
	go func() {
		for i := 0; i < rounds; i++ {
			sum += c.ReadFE()
		}
		close(done)
	}()
	for i := 1; i <= rounds; i++ {
		c.WriteEF(int64(i))
	}
	<-done
	if want := int64(rounds * (rounds + 1) / 2); sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestLoopModeString(t *testing.T) {
	if Serial.String() != "serial" || SinglePar.String() != "single-proc" || MultiPar.String() != "multi-proc" {
		t.Fatal("LoopMode strings wrong")
	}
	if LoopMode(9).String() == "" {
		t.Fatal("unknown mode should still format")
	}
}

func TestSingleProcAnomaly(t *testing.T) {
	plain := MTA2(1)
	anom := MTA2Anomalous(1)
	if anom.Lanes(MultiPar) >= plain.Lanes(MultiPar) {
		t.Fatalf("anomaly did not starve team loops: %d vs %d",
			anom.Lanes(MultiPar), plain.Lanes(MultiPar))
	}
	// Only p=1 is affected.
	if MTA2Anomalous(2).Lanes(MultiPar) != MTA2(2).Lanes(MultiPar) {
		t.Fatal("anomaly leaked to p=2")
	}
	// SinglePar loops unaffected (they are not team-forked).
	if anom.Lanes(SinglePar) != plain.Lanes(SinglePar) {
		t.Fatal("anomaly affected single-processor loops")
	}
}

func TestCoScheduleEmpty(t *testing.T) {
	if MTA2(4).CoSchedule(nil) != 0 {
		t.Fatal("empty job set should cost 0")
	}
}

func TestFuturesLanesAndCost(t *testing.T) {
	m := MTA2(40)
	if m.Lanes(Futures) != m.Lanes(MultiPar) {
		t.Fatal("futures should span the whole machine")
	}
	if m.ForkCost(Futures) >= m.ForkCost(SinglePar) {
		t.Fatal("futures spawn should be cheaper than a team fork")
	}
	if Futures.String() != "futures" {
		t.Fatal("string")
	}
}
