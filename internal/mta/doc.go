// Package mta models the Cray MTA-2, the machine the paper's experiments ran
// on, closely enough to reproduce the *shapes* of its parallel results on
// commodity hardware.
//
// The MTA-2 is a massively multithreaded machine: each 220 MHz processor holds
// 128 hardware thread contexts ("streams") and the network retires one memory
// reference per processor per cycle, so performance is governed by available
// parallelism and loop-management overhead rather than by caches. The paper's
// findings — insufficient parallelism in small instances, loop fork cost
// dominating small toVisit loops (Table 6), throughput saturation for
// simultaneous queries (Figure 5) — are all consequences of this model.
//
// Package mta provides:
//
//   - Machine: the cost parameters of a simulated MTA-2 configuration.
//   - Acct: work/span accounting for parallel regions executed serially,
//     with makespan estimated by Brent's bound
//     T_p = fork + work/lanes + span.
//   - FECell: the MTA's full/empty-bit synchronized memory word, implemented
//     with mutex+condvar, for the real-execution mode.
//
// The accounting side is driven by internal/par's simulation runtime; the
// algorithms themselves never import this package directly.
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package mta
