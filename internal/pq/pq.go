package pq

import "fmt"

// VertexQueue is a monotone priority queue over dense int32 vertex ids with
// int64 keys. Keys passed to InsertOrDecrease must not be below the last
// popped key (Dijkstra's monotonicity).
type VertexQueue interface {
	// InsertOrDecrease inserts v with the key, or lowers v's key if already
	// queued (higher keys are ignored).
	InsertOrDecrease(v int32, key int64)
	// PopMin removes and returns a vertex with minimal key; ok is false when
	// the queue is empty.
	PopMin() (v int32, key int64, ok bool)
	// Len returns the number of queued vertices.
	Len() int
}

// --- Pairing heap ---

// PairingHeap is a classic pairing heap with an auxiliary node index per
// vertex for decrease-key.
type PairingHeap struct {
	root  *pairNode
	nodes []*pairNode // vertex -> node, nil if absent
	size  int
}

type pairNode struct {
	v                    int32
	key                  int64
	child, sibling, prev *pairNode // prev: parent if first child, else left sibling
}

// NewPairingHeap returns a pairing heap for vertices in [0, n).
func NewPairingHeap(n int) *PairingHeap {
	return &PairingHeap{nodes: make([]*pairNode, n)}
}

// Len returns the number of queued vertices.
func (h *PairingHeap) Len() int { return h.size }

func meld(a, b *pairNode) *pairNode {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if b.key < a.key {
		a, b = b, a
	}
	// b becomes the first child of a.
	b.prev = a
	b.sibling = a.child
	if a.child != nil {
		a.child.prev = b
	}
	a.child = b
	a.sibling = nil
	return a
}

// InsertOrDecrease implements VertexQueue.
func (h *PairingHeap) InsertOrDecrease(v int32, key int64) {
	if n := h.nodes[v]; n != nil {
		if key >= n.key {
			return
		}
		n.key = key
		if n == h.root {
			return
		}
		// Detach n from its parent/sibling chain and meld with the root.
		if n.prev.child == n { // n is the first child of its parent
			n.prev.child = n.sibling
		} else {
			n.prev.sibling = n.sibling
		}
		if n.sibling != nil {
			n.sibling.prev = n.prev
		}
		n.sibling, n.prev = nil, nil
		h.root = meld(h.root, n)
		return
	}
	n := &pairNode{v: v, key: key}
	h.nodes[v] = n
	h.root = meld(h.root, n)
	h.size++
}

// PopMin implements VertexQueue with two-pass pairing.
func (h *PairingHeap) PopMin() (int32, int64, bool) {
	if h.root == nil {
		return -1, 0, false
	}
	min := h.root
	h.nodes[min.v] = nil
	h.size--

	// First pass: meld children pairwise left to right.
	var pairs []*pairNode
	c := min.child
	for c != nil {
		next := c.sibling
		c.sibling, c.prev = nil, nil
		var d *pairNode
		if next != nil {
			d = next
			next = next.sibling
			d.sibling, d.prev = nil, nil
		}
		pairs = append(pairs, meld(c, d))
		c = next
	}
	// Second pass: meld right to left.
	var root *pairNode
	for i := len(pairs) - 1; i >= 0; i-- {
		root = meld(root, pairs[i])
	}
	h.root = root
	return min.v, min.key, true
}

// --- Dial's bucket queue ---

// BucketQueue is Dial's queue: an array of buckets indexed by key, scanned
// monotonically. It needs keys bounded by maxKey and is only sensible when
// the key range is modest (the multi-level structure in internal/mlb removes
// that restriction).
type BucketQueue struct {
	buckets [][]int32
	pos     []int32 // vertex -> index within its bucket, -1 if absent
	key     []int64
	cur     int64 // scan finger (no key below cur is live)
	size    int
}

// NewBucketQueue returns a bucket queue for vertices in [0, n) and keys in
// [0, maxKey].
func NewBucketQueue(n int, maxKey int64) *BucketQueue {
	if maxKey < 0 {
		panic(fmt.Sprintf("pq: negative maxKey %d", maxKey))
	}
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	return &BucketQueue{
		buckets: make([][]int32, maxKey+1),
		pos:     pos,
		key:     make([]int64, n),
	}
}

// Len returns the number of queued vertices.
func (q *BucketQueue) Len() int { return q.size }

// InsertOrDecrease implements VertexQueue.
func (q *BucketQueue) InsertOrDecrease(v int32, key int64) {
	if key < 0 || key >= int64(len(q.buckets)) {
		panic(fmt.Sprintf("pq: key %d out of range [0,%d]", key, len(q.buckets)-1))
	}
	if q.pos[v] >= 0 {
		if key >= q.key[v] {
			return
		}
		q.remove(v)
	}
	q.key[v] = key
	q.pos[v] = int32(len(q.buckets[key]))
	q.buckets[key] = append(q.buckets[key], v)
	q.size++
}

func (q *BucketQueue) remove(v int32) {
	k := q.key[v]
	lst := q.buckets[k]
	i := q.pos[v]
	last := int32(len(lst)) - 1
	if i != last {
		moved := lst[last]
		lst[i] = moved
		q.pos[moved] = i
	}
	q.buckets[k] = lst[:last]
	q.pos[v] = -1
	q.size--
}

// PopMin implements VertexQueue.
func (q *BucketQueue) PopMin() (int32, int64, bool) {
	if q.size == 0 {
		return -1, 0, false
	}
	for len(q.buckets[q.cur]) == 0 {
		q.cur++
	}
	lst := q.buckets[q.cur]
	v := lst[len(lst)-1]
	q.buckets[q.cur] = lst[:len(lst)-1]
	q.pos[v] = -1
	q.size--
	return v, q.cur, true
}
