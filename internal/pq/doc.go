// Package pq provides the monotone priority queues used and compared by the
// sequential shortest-path solvers: a pairing heap (comparison-based,
// decrease-key in O(1) amortised) and Dial's bucket queue (one bucket per
// distance value, the degenerate single-level version of the multi-level
// buckets in internal/mlb).
//
// Both implement the same vertex-keyed interface as the heaps embedded in
// internal/dijkstra, so the bench suite can attribute constant factors to the
// queue choice — the axis along which the paper's Table 1 comparison
// (Thorup vs bucket-based reference solver) differs.
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package pq
