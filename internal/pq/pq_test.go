package pq

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func queues(n int, maxKey int64) map[string]VertexQueue {
	return map[string]VertexQueue{
		"pairing": NewPairingHeap(n),
		"bucket":  NewBucketQueue(n, maxKey),
	}
}

func TestBasicOrdering(t *testing.T) {
	for name, q := range queues(10, 100) {
		q.InsertOrDecrease(3, 30)
		q.InsertOrDecrease(1, 10)
		q.InsertOrDecrease(2, 20)
		if q.Len() != 3 {
			t.Fatalf("%s: len %d", name, q.Len())
		}
		for want := int64(10); want <= 30; want += 10 {
			v, k, ok := q.PopMin()
			if !ok || k != want || int64(v)*10 != want {
				t.Fatalf("%s: popped (%d,%d,%v), want key %d", name, v, k, ok, want)
			}
		}
		if _, _, ok := q.PopMin(); ok {
			t.Fatalf("%s: pop from empty succeeded", name)
		}
	}
}

func TestDecreaseKey(t *testing.T) {
	for name, q := range queues(5, 100) {
		q.InsertOrDecrease(0, 50)
		q.InsertOrDecrease(1, 40)
		q.InsertOrDecrease(0, 10) // decrease below 1
		q.InsertOrDecrease(1, 60) // increase attempt: ignored
		v, k, _ := q.PopMin()
		if v != 0 || k != 10 {
			t.Fatalf("%s: popped (%d,%d), want (0,10)", name, v, k)
		}
		v, k, _ = q.PopMin()
		if v != 1 || k != 40 {
			t.Fatalf("%s: popped (%d,%d), want (1,40)", name, v, k)
		}
	}
}

func TestDuplicateInsertIsDecrease(t *testing.T) {
	for name, q := range queues(3, 50) {
		q.InsertOrDecrease(2, 30)
		q.InsertOrDecrease(2, 30)
		q.InsertOrDecrease(2, 25)
		if q.Len() != 1 {
			t.Fatalf("%s: len %d after duplicate inserts", name, q.Len())
		}
		_, k, _ := q.PopMin()
		if k != 25 {
			t.Fatalf("%s: key %d", name, k)
		}
	}
}

func TestTiesAllowed(t *testing.T) {
	for name, q := range queues(4, 10) {
		for v := int32(0); v < 4; v++ {
			q.InsertOrDecrease(v, 5)
		}
		seen := map[int32]bool{}
		for i := 0; i < 4; i++ {
			v, k, ok := q.PopMin()
			if !ok || k != 5 || seen[v] {
				t.Fatalf("%s: bad tie pop (%d,%d,%v)", name, v, k, ok)
			}
			seen[v] = true
		}
	}
}

func TestBucketQueuePanics(t *testing.T) {
	q := NewBucketQueue(2, 10)
	for _, f := range []func(){
		func() { q.InsertOrDecrease(0, 11) },
		func() { q.InsertOrDecrease(0, -1) },
		func() { NewBucketQueue(1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Monotone stress: mirrors Dijkstra usage — pop, then insert/decrease keys
// >= the popped key; both queues must emit an identical sorted key sequence.
func TestMonotoneStressAgree(t *testing.T) {
	const n = 2000
	r := rng.New(99)
	type op struct {
		v int32
		k int64
	}
	// Generate a monotone trace.
	var ops [][]op
	base := int64(0)
	for round := 0; round < 500; round++ {
		var batch []op
		for j := 0; j < 1+r.Intn(5); j++ {
			batch = append(batch, op{v: int32(r.Intn(n)), k: base + int64(r.Intn(50))})
		}
		ops = append(ops, batch)
		base += int64(r.Intn(3))
	}
	run := func(q VertexQueue) []int64 {
		var popped []int64
		var floor int64 // last popped key: monotone queues require keys >= floor
		q.InsertOrDecrease(0, 0)
		for _, batch := range ops {
			v, k, ok := q.PopMin()
			if !ok {
				kk := batch[0].k
				if kk < floor {
					kk = floor
				}
				q.InsertOrDecrease(batch[0].v, kk)
				continue
			}
			_ = v
			popped = append(popped, k)
			floor = k
			for _, o := range batch {
				if o.k >= k {
					q.InsertOrDecrease(o.v, o.k)
				}
			}
		}
		for {
			_, k, ok := q.PopMin()
			if !ok {
				break
			}
			popped = append(popped, k)
		}
		return popped
	}
	a := run(NewPairingHeap(n))
	b := run(NewBucketQueue(n, 1<<20))
	if len(a) != len(b) {
		t.Fatalf("pop counts differ: %d vs %d", len(a), len(b))
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] }) {
		t.Fatal("pairing heap pops not sorted")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pop %d: %d vs %d", i, a[i], b[i])
		}
	}
}

// Property: inserting distinct keys pops them in sorted order.
func TestQuickSortedPops(t *testing.T) {
	f := func(keysRaw []uint16) bool {
		if len(keysRaw) == 0 || len(keysRaw) > 300 {
			return true
		}
		seen := map[int64]bool{}
		var keys []int64
		for _, k := range keysRaw {
			if !seen[int64(k)] {
				seen[int64(k)] = true
				keys = append(keys, int64(k))
			}
		}
		h := NewPairingHeap(len(keys))
		b := NewBucketQueue(len(keys), 1<<16)
		for i, k := range keys {
			h.InsertOrDecrease(int32(i), k)
			b.InsertOrDecrease(int32(i), k)
		}
		sorted := append([]int64(nil), keys...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for _, want := range sorted {
			_, hk, hok := h.PopMin()
			_, bk, bok := b.PopMin()
			if !hok || !bok || hk != want || bk != want {
				return false
			}
		}
		return h.Len() == 0 && b.Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
