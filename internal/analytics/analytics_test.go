package analytics

import (
	"math"
	"testing"

	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
)

func solverFor(g *graph.Graph) *core.Solver {
	return core.NewSolver(ch.BuildKruskal(g), par.NewExec(4))
}

func TestClosenessStar(t *testing.T) {
	// Star with unit weights: center has distance 1 to all n-1 leaves;
	// each leaf has distance 1 to center and 2 to the other n-2 leaves.
	n := 11
	s := solverFor(gen.Star(n, 1))
	scores := Closeness(s, []int32{0, 1})
	wantCenter := float64(n-1) / float64(n-1)
	wantLeaf := float64(n-1) / float64(1+2*(n-2))
	if math.Abs(scores[0]-wantCenter) > 1e-12 {
		t.Fatalf("center closeness %v, want %v", scores[0], wantCenter)
	}
	if math.Abs(scores[1]-wantLeaf) > 1e-12 {
		t.Fatalf("leaf closeness %v, want %v", scores[1], wantLeaf)
	}
	if scores[0] <= scores[1] {
		t.Fatal("center must be more central than a leaf")
	}
}

func TestClosenessIsolated(t *testing.T) {
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 2)
	s := solverFor(b.Build())
	scores := Closeness(s, []int32{2})
	if scores[0] != 0 {
		t.Fatalf("isolated closeness %v", scores[0])
	}
}

func TestHarmonicPath(t *testing.T) {
	// Path 0-1-2 with unit weights: harmonic(0) = 1 + 1/2.
	s := solverFor(gen.Path(3, 1))
	h := Harmonic(s, []int32{0, 1})
	if math.Abs(h[0]-1.5) > 1e-12 {
		t.Fatalf("harmonic(0) = %v", h[0])
	}
	if math.Abs(h[1]-2.0) > 1e-12 {
		t.Fatalf("harmonic(1) = %v", h[1])
	}
}

func TestHarmonicHandlesDisconnection(t *testing.T) {
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(2, 3, 1)
	s := solverFor(b.Build())
	h := Harmonic(s, []int32{0})
	if math.Abs(h[0]-1.0) > 1e-12 {
		t.Fatalf("harmonic across components = %v", h[0])
	}
}

func TestDiameterExactOnPath(t *testing.T) {
	// Weighted path: diameter = sum of weights; the double sweep finds it
	// from any start.
	g := gen.Path(50, 3)
	s := solverFor(g)
	if d := DiameterEstimate(s, 25, 3); d != 49*3 {
		t.Fatalf("diameter %d, want %d", d, 49*3)
	}
}

func TestDiameterLowerBound(t *testing.T) {
	g := gen.Random(500, 2000, 64, gen.UWD, 3)
	s := solverFor(g)
	est := DiameterEstimate(s, 0, 4)
	if est <= 0 {
		t.Fatal("no estimate")
	}
	// It must be a valid eccentricity lower bound: at least the max distance
	// from vertex 0.
	q := s.Query()
	q.Run(0)
	if est < q.Eccentricity() {
		t.Fatalf("estimate %d below ecc(0) %d", est, q.Eccentricity())
	}
}

func TestHistogram(t *testing.T) {
	g := gen.Random(400, 1600, 64, gen.UWD, 5)
	s := solverFor(g)
	h := Histogram(s, 8, 10, 42)
	if h.Samples != 8 || h.Max <= 0 || h.Mean <= 0 {
		t.Fatalf("histogram %+v", h)
	}
	var total int64
	for _, c := range h.Buckets {
		total += c
	}
	// 8 sources x (n-1) reachable targets (graph is connected).
	if total != 8*399 {
		t.Fatalf("histogram counted %d distances, want %d", total, 8*399)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	s := solverFor(gen.Path(1, 1))
	h := Histogram(s, 4, 5, 1)
	if h.Max != 0 {
		t.Fatalf("single vertex: %+v", h)
	}
	h2 := Histogram(s, 0, 0, 1)
	if len(h2.Buckets) == 0 {
		t.Fatal("no buckets allocated")
	}
}

func TestTopKCloseness(t *testing.T) {
	// Two stars joined by a long path: centers beat leaves.
	b := graph.NewBuilder(8)
	// star A: center 0, leaves 1,2,3 ; star B: center 4, leaves 5,6
	for _, v := range []int32{1, 2, 3} {
		b.MustAddEdge(0, v, 1)
	}
	for _, v := range []int32{5, 6} {
		b.MustAddEdge(4, v, 1)
	}
	b.MustAddEdge(3, 7, 8)
	b.MustAddEdge(7, 4, 8)
	s := solverFor(b.Build())
	top := TopKCloseness(s, []int32{0, 1, 2, 4, 5, 6}, 2)
	if len(top) != 2 {
		t.Fatalf("top %v", top)
	}
	if top[0] != 0 && top[0] != 4 {
		t.Fatalf("top-1 %d is not a star center", top[0])
	}
	// k larger than candidates: clamped.
	all := TopKCloseness(s, []int32{0, 1}, 10)
	if len(all) != 2 {
		t.Fatalf("clamp failed: %v", all)
	}
}
