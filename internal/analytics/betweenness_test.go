package analytics

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func exactBetweenness(g *graph.Graph) []float64 {
	s := solverFor(g)
	return Betweenness(s, AllSources(g.NumVertices()))
}

func TestBetweennessPath(t *testing.T) {
	// On a path, the vertex at index i has directed-pair betweenness
	// 2*i*(n-1-i).
	n := 7
	b := exactBetweenness(gen.Path(n, 3))
	for i := 0; i < n; i++ {
		want := float64(2 * i * (n - 1 - i))
		if math.Abs(b[i]-want) > 1e-9 {
			t.Fatalf("betweenness[%d] = %v, want %v", i, b[i], want)
		}
	}
}

func TestBetweennessStar(t *testing.T) {
	// Star center carries every leaf pair: (n-1)(n-2) directed pairs; leaves
	// carry none.
	n := 9
	b := exactBetweenness(gen.Star(n, 2))
	wantCenter := float64((n - 1) * (n - 2))
	if math.Abs(b[0]-wantCenter) > 1e-9 {
		t.Fatalf("center = %v, want %v", b[0], wantCenter)
	}
	for v := 1; v < n; v++ {
		if b[v] != 0 {
			t.Fatalf("leaf %d = %v", v, b[v])
		}
	}
}

func TestBetweennessTiesSplit(t *testing.T) {
	// Unit-weight 4-cycle: every vertex carries exactly 1 (two ordered
	// opposite pairs x 1/2 each).
	b := exactBetweenness(gen.Cycle(4, 1))
	for v, x := range b {
		if math.Abs(x-1) > 1e-9 {
			t.Fatalf("C4 betweenness[%d] = %v, want 1", v, x)
		}
	}
}

func TestBetweennessDisconnected(t *testing.T) {
	bld := graph.NewBuilder(5)
	bld.MustAddEdge(0, 1, 1)
	bld.MustAddEdge(1, 2, 1) // path of 3 + two isolated vertices
	b := exactBetweenness(bld.Build())
	if math.Abs(b[1]-2) > 1e-9 {
		t.Fatalf("middle = %v, want 2", b[1])
	}
	if b[3] != 0 || b[4] != 0 {
		t.Fatalf("isolated vertices %v %v", b[3], b[4])
	}
}

func TestBetweennessSamplingPartitionsToExact(t *testing.T) {
	// The sampled estimator is unbiased: averaging the estimates over a
	// partition of the sources must give the exact values.
	g := gen.Cycle(9, 2)
	exact := exactBetweenness(g)
	s := solverFor(g)
	samples := [][]int32{{0, 3, 6}, {1, 4, 7}, {2, 5, 8}}
	avg := make([]float64, g.NumVertices())
	for _, srcs := range samples {
		est := Betweenness(s, srcs)
		for v := range est {
			avg[v] += est[v] / float64(len(samples))
		}
	}
	for v := range exact {
		if math.Abs(avg[v]-exact[v]) > 1e-9 {
			t.Fatalf("partition average[%d] = %v, exact %v", v, avg[v], exact[v])
		}
	}
}

func TestBetweennessEmpty(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	if len(Betweenness(solverFor(g), nil)) != 0 {
		t.Fatal("empty graph")
	}
}
