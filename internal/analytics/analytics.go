package analytics

import (
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Closeness computes closeness centrality for the given vertices:
// (reached-1) / sum of distances to reached vertices, 0 for isolated
// vertices. One shared-CH query per vertex, all concurrent.
func Closeness(s *core.Solver, vertices []int32) []float64 {
	results := s.RunMany(vertices)
	out := make([]float64, len(vertices))
	for i := range vertices {
		var sum int64
		reached := 0
		for _, d := range results[i] {
			if d < graph.Inf && d > 0 {
				sum += d
				reached++
			}
		}
		if sum > 0 {
			out[i] = float64(reached) / float64(sum)
		}
	}
	return out
}

// Harmonic computes harmonic centrality (sum of 1/d over reachable vertices),
// which, unlike closeness, is well-behaved on disconnected graphs.
func Harmonic(s *core.Solver, vertices []int32) []float64 {
	results := s.RunMany(vertices)
	out := make([]float64, len(vertices))
	for i := range vertices {
		var sum float64
		for _, d := range results[i] {
			if d < graph.Inf && d > 0 {
				sum += 1 / float64(d)
			}
		}
		out[i] = sum
	}
	return out
}

// DiameterEstimate lower-bounds the weighted diameter by the double-sweep
// heuristic: run from a start vertex, then from the farthest vertex found,
// repeating for the given number of sweeps. Exact on trees; a strong lower
// bound in general.
func DiameterEstimate(s *core.Solver, start int32, sweeps int) int64 {
	if sweeps < 1 {
		sweeps = 1
	}
	q := s.Query()
	best := int64(0)
	src := start
	for i := 0; i < sweeps; i++ {
		dist := q.Run(src)
		far, farD := src, int64(0)
		for v, d := range dist {
			if d < graph.Inf && d > farD {
				far, farD = int32(v), d
			}
		}
		if farD > best {
			best = farD
		}
		if far == src {
			break // isolated or fully explored
		}
		src = far
	}
	return best
}

// DistanceHistogram runs queries from sampled sources and returns the counts
// of shortest-path distances falling into numBuckets equal-width buckets over
// [0, max]; the small-world "hop plot" of network analysis, weighted.
type DistanceHistogram struct {
	Max     int64   // largest finite distance seen
	Buckets []int64 // counts per bucket
	Samples int     // number of source samples
	Mean    float64 // mean finite distance
}

// Histogram samples k sources (deterministically from seed) and aggregates
// all finite, non-zero distances.
func Histogram(s *core.Solver, k, numBuckets int, seed uint64) DistanceHistogram {
	n := s.Hierarchy().NumLeaves()
	if n == 0 || k < 1 || numBuckets < 1 {
		return DistanceHistogram{Buckets: make([]int64, max(numBuckets, 1))}
	}
	if k > n {
		k = n
	}
	r := rng.New(seed)
	sources := make([]int32, k)
	for i := range sources {
		sources[i] = int32(r.Intn(n))
	}
	results := s.RunMany(sources)

	h := DistanceHistogram{Samples: k, Buckets: make([]int64, numBuckets)}
	var sum float64
	var count int64
	for _, dist := range results {
		for _, d := range dist {
			if d > 0 && d < graph.Inf {
				if d > h.Max {
					h.Max = d
				}
			}
		}
	}
	if h.Max == 0 {
		return h
	}
	width := h.Max/int64(numBuckets) + 1
	for _, dist := range results {
		for _, d := range dist {
			if d > 0 && d < graph.Inf {
				h.Buckets[d/width]++
				sum += float64(d)
				count++
			}
		}
	}
	if count > 0 {
		h.Mean = sum / float64(count)
	}
	return h
}

func (h DistanceHistogram) String() string {
	return fmt.Sprintf("hist{samples=%d max=%d mean=%.1f}", h.Samples, h.Max, h.Mean)
}

// TopKCloseness returns the k vertices with the highest closeness among the
// given candidates (ties broken by vertex id), using one batched run.
func TopKCloseness(s *core.Solver, candidates []int32, k int) []int32 {
	scores := Closeness(s, candidates)
	idx := make([]int, len(candidates))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if scores[idx[a]] != scores[idx[b]] {
			return scores[idx[a]] > scores[idx[b]]
		}
		return candidates[idx[a]] < candidates[idx[b]]
	})
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		out[i] = candidates[idx[i]]
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
