package analytics

import (
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// Betweenness estimates betweenness centrality by Brandes' dependency
// accumulation over the shortest-path DAGs of the sampled sources (exact when
// sources covers every vertex). Distances come from shared-CH Thorup queries;
// the DAG walk runs per source:
//
//	sigma(v)  — number of shortest s-v paths, accumulated in distance order;
//	delta(v)  — dependency, accumulated in reverse distance order:
//	            delta(u) += sigma(u)/sigma(v) * (1 + delta(v)) over tight
//	            edges (u,v);
//	score(v) += delta(v) for every v != s.
//
// Scores are scaled by n/len(sources) so sampled runs estimate the exact
// full-source quantity.
func Betweenness(s *core.Solver, sources []int32) []float64 {
	h := s.Hierarchy()
	g := h.Graph()
	n := g.NumVertices()
	score := make([]float64, n)
	if n == 0 || len(sources) == 0 {
		return score
	}

	results := s.RunMany(sources)
	sigma := make([]float64, n)
	delta := make([]float64, n)
	order := make([]int32, 0, n)

	for si, src := range sources {
		dist := results[si]
		order = order[:0]
		for v := 0; v < n; v++ {
			sigma[v], delta[v] = 0, 0
			if dist[v] < graph.Inf {
				order = append(order, int32(v))
			}
		}
		sort.Slice(order, func(a, b int) bool { return dist[order[a]] < dist[order[b]] })
		sigma[src] = 1

		// Path counting in non-decreasing distance order: every tight edge
		// (u,v) with dist[u] + w == dist[v] contributes sigma(u) to sigma(v).
		for _, v := range order {
			if v == src {
				continue
			}
			ts, ws := g.Neighbors(v)
			for i, u := range ts {
				if u != v && dist[u]+int64(ws[i]) == dist[v] {
					sigma[v] += sigma[u]
				}
			}
		}
		// Dependency accumulation in reverse order.
		for i := len(order) - 1; i >= 0; i-- {
			v := order[i]
			if sigma[v] == 0 {
				continue
			}
			ts, ws := g.Neighbors(v)
			for k, u := range ts {
				if u != v && dist[u]+int64(ws[k]) == dist[v] {
					delta[u] += sigma[u] / sigma[v] * (1 + delta[v])
				}
			}
			if v != src {
				score[v] += delta[v]
			}
		}
	}
	scale := float64(n) / float64(len(sources))
	for v := range score {
		score[v] *= scale
	}
	return score
}

// AllSources returns [0, n) for exact (non-sampled) analytics runs.
func AllSources(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}
