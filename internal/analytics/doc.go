// Package analytics implements the graph-analysis workloads the paper's
// introduction motivates ("unstructured networks, such as social networks and
// economic transaction networks"): centrality and distance statistics that
// consume many shortest-path trees. Every routine is built on batched
// shared-Component-Hierarchy Thorup queries — the access pattern the paper's
// Figure 5 shows this system is built for.
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package analytics
