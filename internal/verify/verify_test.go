package verify

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mta"
	"repro/internal/par"
)

func rt() *par.Runtime { return par.NewExec(4) }

func TestAcceptsCorrectDistances(t *testing.T) {
	gs := []*graph.Graph{
		gen.Random(500, 2000, 1<<10, gen.UWD, 1),
		gen.RMATGraph(512, 2048, 1<<8, gen.PWD, 2),
		gen.GridGraph(20, 20, 16, gen.UWD, 3),
		gen.Path(50, 7),
	}
	for gi, g := range gs {
		d := dijkstra.SSSP(g, 0)
		if err := Distances(rt(), g, []int32{0}, d); err != nil {
			t.Errorf("graph %d: rejected correct distances: %v", gi, err)
		}
	}
}

func TestAcceptsDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1, 5)
	g := b.Build()
	d := dijkstra.SSSP(g, 0)
	if err := Distances(rt(), g, []int32{0}, d); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptsMultiSource(t *testing.T) {
	g := gen.Path(10, 2)
	sources := []int32{0, 9}
	d := dijkstra.SSSP(g, 0)
	d9 := dijkstra.SSSP(g, 9)
	for v := range d {
		if d9[v] < d[v] {
			d[v] = d9[v]
		}
	}
	if err := Distances(rt(), g, sources, d); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsCorruption(t *testing.T) {
	g := gen.Random(300, 1200, 1<<8, gen.UWD, 4)
	base := dijkstra.SSSP(g, 0)
	cases := map[string]func(d []int64){
		"too small (feasibility at neighbour)": func(d []int64) { d[100] = d[100] / 2 },
		"too large (feasibility)":              func(d []int64) { d[100] += 1 },
		"zero at non-source":                   func(d []int64) { d[100] = 0 },
		"negative":                             func(d []int64) { d[100] = -5 },
		"nonzero source":                       func(d []int64) { d[0] = 3 },
		"fake infinity":                        func(d []int64) { d[100] = graph.Inf },
	}
	for name, corrupt := range cases {
		d := make([]int64, len(base))
		copy(d, base)
		corrupt(d)
		if err := Distances(rt(), g, []int32{0}, d); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRejectsUniformShift(t *testing.T) {
	// Adding a constant to every non-source distance preserves feasibility
	// on most edges but breaks tightness at some vertex next to the source.
	g := gen.Path(10, 3)
	d := dijkstra.SSSP(g, 0)
	for v := 1; v < 10; v++ {
		d[v] += 1
	}
	err := Distances(rt(), g, []int32{0}, d)
	if err == nil {
		t.Fatal("accepted shifted distances")
	}
	if !strings.Contains(err.Error(), "tight") && !strings.Contains(err.Error(), "feas") {
		t.Fatalf("unexpected failure kind: %v", err)
	}
}

func TestRejectsShapeAndSourceErrors(t *testing.T) {
	g := gen.Path(5, 1)
	if err := Distances(rt(), g, []int32{0}, make([]int64, 3)); err == nil {
		t.Error("wrong-length distances accepted")
	}
	if err := Distances(rt(), g, nil, dijkstra.SSSP(g, 0)); err == nil {
		t.Error("empty sources accepted")
	}
	if err := Distances(rt(), g, []int32{99}, dijkstra.SSSP(g, 0)); err == nil {
		t.Error("out-of-range source accepted")
	}
}

func TestWorksInSimMode(t *testing.T) {
	g := gen.Random(200, 800, 64, gen.UWD, 5)
	d := dijkstra.SSSP(g, 0)
	srt := par.NewSim(mta.MTA2(8))
	if err := Distances(srt, g, []int32{0}, d); err != nil {
		t.Fatal(err)
	}
	if srt.SimCost().Work == 0 {
		t.Fatal("verification cost not accounted")
	}
}

func TestTreeCertification(t *testing.T) {
	g := gen.Random(400, 1600, 1<<8, gen.UWD, 6)
	dist, parent := dijkstra.SSSPWithParents(g, 0)
	if err := Tree(g, []int32{0}, dist, parent); err != nil {
		t.Fatal(err)
	}
	// Corrupt one parent pointer.
	bad := make([]int32, len(parent))
	copy(bad, parent)
	bad[100] = (bad[100] + 1) % 50
	if err := Tree(g, []int32{0}, dist, bad); err == nil {
		t.Fatal("accepted corrupted tree")
	}
	// Parent on the source.
	bad2 := make([]int32, len(parent))
	copy(bad2, parent)
	bad2[0] = 1
	if err := Tree(g, []int32{0}, dist, bad2); err == nil {
		t.Fatal("accepted parent on source")
	}
}

func TestPathReconstruction(t *testing.T) {
	g := gen.Path(6, 4)
	dist, parent := dijkstra.SSSPWithParents(g, 0)
	p := Path(dist, parent, 5)
	if len(p) != 6 || p[0] != 0 || p[5] != 5 {
		t.Fatalf("path %v", p)
	}
	// Unreachable.
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 1)
	g2 := b.Build()
	d2, p2 := dijkstra.SSSPWithParents(g2, 0)
	if Path(d2, p2, 2) != nil {
		t.Fatal("path to unreachable vertex")
	}
}

// Property: the certifier accepts exact distances and rejects any single
// perturbed finite entry.
func TestQuickCertifier(t *testing.T) {
	r := rt()
	f := func(seed uint32, bump int8) bool {
		n := int(seed%150) + 2
		g := gen.Random(n, 4*n, 1<<8, gen.UWD, uint64(seed))
		src := int32(seed % uint32(n))
		d := dijkstra.SSSP(g, src)
		if Distances(r, g, []int32{src}, d) != nil {
			return false
		}
		if bump == 0 {
			return true
		}
		v := int32((seed / 7) % uint32(n))
		if v == src || d[v] == graph.Inf {
			return true
		}
		d[v] += int64(bump)
		return Distances(r, g, []int32{src}, d) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
