// Package verify certifies single-source (and multi-source) shortest path
// results in linear time, without re-running a solver.
//
// A distance labelling d is THE shortest-path distance function from a source
// set S if and only if:
//
//  1. d(s) = 0 exactly for s in S (and nowhere else);
//  2. feasibility: d(v) <= d(u) + w for every edge (u,v) with d(u) finite
//     (in an undirected graph this also forces |d(u)-d(v)| <= w and that no
//     finite vertex neighbours an infinite one);
//  3. tightness: every vertex with 0 < d(v) < Inf has a neighbour u with
//     d(u) + w(u,v) = d(v).
//
// Sufficiency: applying (2) edge by edge along any path from a source shows
// d(v) <= delta(v). Conversely (3) plus positive integer weights makes every
// finite d(v) the length of an actual path: follow tight edges downhill — d
// strictly decreases by at least 1 per step, so the walk terminates at a
// d = 0 vertex, which (1) forces to be a source — hence d(v) >= delta(v).
// Infinite labels are correct because (2) forbids a finite/infinite
// adjacency, so the infinite region is exactly the part not reachable from S.
//
// The checks cost one parallel sweep over the arcs. This is what
// `cmd/sssp -certify` and the harness's verification mode use.
//
// See DESIGN.md §7 ("Correctness methodology") for how this package fits the system.
package verify
