package verify

import (
	"fmt"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// Error describes a certification failure.
type Error struct {
	Rule   string // which rule failed
	Vertex int32
	Detail string
}

func (e *Error) Error() string {
	return fmt.Sprintf("verify: %s at vertex %d: %s", e.Rule, e.Vertex, e.Detail)
}

// precheck validates shape and source set and returns the source indicator
// array shared by both certification entry points.
func precheck(g *graph.Graph, sources []int32, dist []int64) ([]bool, *Error) {
	n := g.NumVertices()
	if len(dist) != n {
		return nil, &Error{Rule: "shape", Vertex: -1,
			Detail: fmt.Sprintf("%d distances for %d vertices", len(dist), n)}
	}
	if len(sources) == 0 && n > 0 {
		return nil, &Error{Rule: "sources", Vertex: -1, Detail: "empty source set"}
	}
	isSource := make([]bool, n)
	for _, s := range sources {
		if s < 0 || int(s) >= n {
			return nil, &Error{Rule: "sources", Vertex: s, Detail: "source out of range"}
		}
		isSource[s] = true
	}
	return isSource, nil
}

// checkVertex applies rules (1)-(3) at one vertex and returns the first
// violation, or nil. It is the shared kernel of Distances and
// DistancesSerial.
func checkVertex(g *graph.Graph, isSource []bool, dist []int64, v int32) *Error {
	dv := dist[v]
	switch {
	case dv < 0:
		return &Error{Rule: "range", Vertex: v, Detail: fmt.Sprintf("negative distance %d", dv)}
	case dv == 0 && !isSource[v]:
		return &Error{Rule: "zero", Vertex: v, Detail: "distance 0 at a non-source"}
	case dv != 0 && isSource[v]:
		return &Error{Rule: "zero", Vertex: v, Detail: fmt.Sprintf("source with distance %d", dv)}
	}
	ts, ws := g.Neighbors(v)
	tight := dv == 0 || dv == graph.Inf
	for i, u := range ts {
		if u == v {
			continue
		}
		w := int64(ws[i])
		du := dist[u]
		if du != graph.Inf && dv > du+w {
			return &Error{Rule: "feasibility", Vertex: v,
				Detail: fmt.Sprintf("d=%d but neighbour %d offers %d+%d", dv, u, du, w)}
		}
		if !tight && du != graph.Inf && du+w == dv {
			tight = true
		}
	}
	if !tight {
		return &Error{Rule: "tightness", Vertex: v,
			Detail: fmt.Sprintf("finite distance %d has no tight incoming edge", dv)}
	}
	return nil
}

// Distances certifies that dist is the exact shortest-path distance labelling
// of g from the given source set. It returns nil on success and a *Error
// describing the first violation found otherwise. The sweep runs on rt.
func Distances(rt *par.Runtime, g *graph.Graph, sources []int32, dist []int64) error {
	isSource, perr := precheck(g, sources, dist)
	if perr != nil {
		return perr
	}
	var failure atomic.Pointer[Error]
	rt.For(g.NumVertices(), func(vi int) {
		if failure.Load() != nil {
			return
		}
		rt.Charge(int64(g.Degree(int32(vi))))
		if e := checkVertex(g, isSource, dist, int32(vi)); e != nil {
			failure.CompareAndSwap(nil, e)
		}
	})
	if e := failure.Load(); e != nil {
		return e
	}
	return nil
}

// DistancesSerial is Distances without a parallel runtime: a deterministic
// serial sweep reporting the lowest-vertex violation first. Harnesses that
// certify many small labellings (internal/stress) use it so certification
// stays cheap, single-threaded, and reproducible; it accepts the same
// multi-source source sets as Distances.
func DistancesSerial(g *graph.Graph, sources []int32, dist []int64) error {
	isSource, perr := precheck(g, sources, dist)
	if perr != nil {
		return perr
	}
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		if e := checkVertex(g, isSource, dist, v); e != nil {
			return e
		}
	}
	return nil
}

// Tree certifies that parent is a valid shortest-path tree for dist: parents
// are -1 exactly at sources and unreachable vertices, and every other parent
// edge is tight. Distances must already be certified (or trusted).
func Tree(g *graph.Graph, sources []int32, dist []int64, parent []int32) error {
	n := g.NumVertices()
	if len(parent) != n || len(dist) != n {
		return &Error{Rule: "shape", Vertex: -1, Detail: "length mismatch"}
	}
	isSource := make([]bool, n)
	for _, s := range sources {
		isSource[s] = true
	}
	for v := int32(0); v < int32(n); v++ {
		p := parent[v]
		if isSource[v] || dist[v] == graph.Inf {
			if p != -1 {
				return &Error{Rule: "tree", Vertex: v, Detail: "source/unreachable vertex has a parent"}
			}
			continue
		}
		if p < 0 || int(p) >= n {
			return &Error{Rule: "tree", Vertex: v, Detail: fmt.Sprintf("invalid parent %d", p)}
		}
		ts, ws := g.Neighbors(p)
		ok := false
		for i, u := range ts {
			if u == v && dist[p]+int64(ws[i]) == dist[v] {
				ok = true
				break
			}
		}
		if !ok {
			return &Error{Rule: "tree", Vertex: v, Detail: fmt.Sprintf("parent edge (%d,%d) not tight", p, v)}
		}
	}
	return nil
}

// Path reconstructs the shortest path from the source set to v using a
// certified parent array, returned as source-to-v vertex sequence. It returns
// nil if v is unreachable.
func Path(dist []int64, parent []int32, v int32) []int32 {
	if dist[v] == graph.Inf {
		return nil
	}
	var rev []int32
	for x := v; x >= 0; x = parent[x] {
		rev = append(rev, x)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
