package verify

import (
	"errors"
	"testing"

	"repro/internal/dijkstra"
	"repro/internal/graph"
)

// line returns the weighted path 0-1-2-3-4 with edge weights 2,3,4,5.
func line() *graph.Graph {
	b := graph.NewBuilder(5)
	b.MustAddEdge(0, 1, 2)
	b.MustAddEdge(1, 2, 3)
	b.MustAddEdge(2, 3, 4)
	b.MustAddEdge(3, 4, 5)
	return b.Build()
}

// TestErrorPaths violates each certification rule individually and asserts
// the certifier reports that rule (not merely "some error") at a sensible
// vertex. Both entry points must agree on the verdict; DistancesSerial must
// additionally report the lowest-vertex violation.
func TestErrorPaths(t *testing.T) {
	r := rt()
	for _, tc := range []struct {
		name     string
		g        *graph.Graph
		sources  []int32
		dist     []int64
		wantRule string
		wantV    int32 // deterministic vertex expected from DistancesSerial; -1 = header error
	}{
		{
			name: "shape-short", g: line(), sources: []int32{0},
			dist: make([]int64, 3), wantRule: "shape", wantV: -1,
		},
		{
			name: "shape-long", g: line(), sources: []int32{0},
			dist: make([]int64, 9), wantRule: "shape", wantV: -1,
		},
		{
			name: "sources-empty", g: line(), sources: nil,
			dist: dijkstra.SSSP(line(), 0), wantRule: "sources", wantV: -1,
		},
		{
			name: "sources-negative", g: line(), sources: []int32{-1},
			dist: dijkstra.SSSP(line(), 0), wantRule: "sources", wantV: -1,
		},
		{
			name: "sources-beyond-n", g: line(), sources: []int32{5},
			dist: dijkstra.SSSP(line(), 0), wantRule: "sources", wantV: 5,
		},
		{
			name: "range-negative", g: line(), sources: []int32{0},
			dist: []int64{0, 2, -1, 9, 14}, wantRule: "range", wantV: 2,
		},
		{
			name: "zero-at-non-source", g: line(), sources: []int32{0},
			dist: []int64{0, 2, 0, 9, 14}, wantRule: "zero", wantV: 2,
		},
		{
			name: "nonzero-at-source", g: line(), sources: []int32{0, 3},
			dist: []int64{0, 2, 5, 9, 14}, wantRule: "zero", wantV: 3,
		},
		{
			// d[2] exceeds d[1]+w(1,2): caught as feasibility at vertex 2.
			name: "feasibility-too-large", g: line(), sources: []int32{0},
			dist: []int64{0, 2, 6, 10, 15}, wantRule: "feasibility", wantV: 2,
		},
		{
			// d[2] too small: vertex 2 loses its tight incoming edge (the
			// serial sweep reaches it before neighbour 3's feasibility
			// violation).
			name: "tightness-too-small", g: line(), sources: []int32{0},
			dist: []int64{0, 2, 3, 9, 14}, wantRule: "tightness", wantV: 2,
		},
		{
			// Fake infinity next to a finite vertex: rule (2) forbids a
			// finite/infinite adjacency, reported as feasibility at the Inf
			// vertex (its finite neighbour offers a finite path).
			name: "inf-adjacent-to-finite", g: line(), sources: []int32{0},
			dist: []int64{0, 2, 5, graph.Inf, graph.Inf}, wantRule: "feasibility", wantV: 3,
		},
		{
			// Finite label in an unreachable component: no path exists, so
			// the label has no tight incoming edge.
			name: "finite-at-unreachable", g: func() *graph.Graph {
				b := graph.NewBuilder(3)
				b.MustAddEdge(0, 1, 1)
				return b.Build()
			}(), sources: []int32{0},
			dist: []int64{0, 1, 7}, wantRule: "tightness", wantV: 2,
		},
		{
			// Self-loops must not count as tight incoming edges: vertex 1's
			// only support is its own loop, which is not a path from 0.
			name: "self-loop-not-tight", g: func() *graph.Graph {
				b := graph.NewBuilder(2)
				b.MustAddEdge(0, 1, 4)
				b.MustAddEdge(1, 1, 1)
				return b.Build()
			}(), sources: []int32{0},
			dist: []int64{0, 3}, wantRule: "tightness", wantV: 1,
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// The serial sweep is deterministic: exact rule and vertex.
			var e *Error
			if err := DistancesSerial(tc.g, tc.sources, tc.dist); !errors.As(err, &e) {
				t.Fatalf("serial: got %v, want *Error", err)
			}
			if e.Rule != tc.wantRule {
				t.Errorf("serial: rule %q, want %q (%v)", e.Rule, tc.wantRule, e)
			}
			if e.Vertex != tc.wantV {
				t.Errorf("serial: vertex %d, want %d (%v)", e.Vertex, tc.wantV, e)
			}
			// The parallel sweep reports whichever violating vertex wins the
			// CAS, so only the reject verdict is asserted.
			if err := Distances(r, tc.g, tc.sources, tc.dist); !errors.As(err, &e) {
				t.Fatalf("parallel: got %v, want *Error", err)
			}
		})
	}
}

// TestMultiSourceEdgeCases: accepted labellings that trip naive certifiers.
func TestMultiSourceEdgeCases(t *testing.T) {
	g := line()
	min2 := func(sources ...int32) []int64 {
		d := dijkstra.SSSP(g, sources[0])
		for _, s := range sources[1:] {
			for v, dv := range dijkstra.SSSP(g, s) {
				if dv < d[v] {
					d[v] = dv
				}
			}
		}
		return d
	}
	for _, tc := range []struct {
		name    string
		sources []int32
		dist    []int64
	}{
		{"duplicate-sources", []int32{0, 0, 4, 4}, min2(0, 4)},
		{"all-vertices-sources", []int32{0, 1, 2, 3, 4}, []int64{0, 0, 0, 0, 0}},
		{"adjacent-sources", []int32{1, 2}, min2(1, 2)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := DistancesSerial(g, tc.sources, tc.dist); err != nil {
				t.Errorf("serial rejected: %v", err)
			}
			if err := Distances(rt(), g, tc.sources, tc.dist); err != nil {
				t.Errorf("parallel rejected: %v", err)
			}
		})
	}
	// Empty graph with empty sources is the one legal empty-source case.
	if err := DistancesSerial(graph.NewBuilder(0).Build(), nil, nil); err != nil {
		t.Errorf("empty graph rejected: %v", err)
	}
}

// TestSerialMatchesParallelVerdict: on a batch of corrupted labellings both
// entry points must agree accept/reject (the stress harness relies on
// DistancesSerial being exactly as strong as Distances).
func TestSerialMatchesParallelVerdict(t *testing.T) {
	g := line()
	base := dijkstra.SSSP(g, 0)
	r := rt()
	for v := 0; v < len(base); v++ {
		for _, delta := range []int64{-2, -1, 1, 2} {
			d := append([]int64(nil), base...)
			d[v] += delta
			s := DistancesSerial(g, []int32{0}, d) != nil
			p := Distances(r, g, []int32{0}, d) != nil
			if s != p {
				t.Errorf("v=%d delta=%d: serial reject=%v, parallel reject=%v", v, delta, s, p)
			}
			if !s {
				t.Errorf("v=%d delta=%d: corruption accepted", v, delta)
			}
		}
	}
}
