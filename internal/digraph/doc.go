// Package digraph provides the directed-graph substrate: the DIMACS
// Challenge .gr format is natively a directed-arc format, and the
// delta-stepping kernel the paper builds on (Madduri, Bader, Berry, Crobak)
// was written "for solving large-scale instances" of *directed* graphs
// before the paper adapted it to the undirected setting Thorup requires.
// This package keeps that original form available: a CSR digraph, directed
// Dijkstra and delta-stepping, and conversion to/from the undirected
// representation.
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package digraph
