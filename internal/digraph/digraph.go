package digraph

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// Arc is one directed arc.
type Arc struct {
	From, To int32
	W        uint32
}

// Digraph is a directed weighted graph in CSR form (out-adjacency).
type Digraph struct {
	n       int32
	offsets []int64
	heads   []int32
	weights []uint32
	maxW    uint32
}

// FromArcs builds a digraph from an arc list. Weights must be positive.
func FromArcs(n int, arcs []Arc) *Digraph {
	if n < 0 || n > math.MaxInt32 {
		panic(fmt.Sprintf("digraph: invalid vertex count %d", n))
	}
	g := &Digraph{n: int32(n)}
	g.offsets = make([]int64, n+1)
	for _, a := range arcs {
		if a.From < 0 || a.From >= g.n || a.To < 0 || a.To >= g.n {
			panic(fmt.Sprintf("digraph: arc (%d,%d) out of range", a.From, a.To))
		}
		if a.W == 0 {
			panic(fmt.Sprintf("digraph: zero-weight arc (%d,%d)", a.From, a.To))
		}
		g.offsets[a.From+1]++
	}
	for v := 0; v < n; v++ {
		g.offsets[v+1] += g.offsets[v]
	}
	g.heads = make([]int32, len(arcs))
	g.weights = make([]uint32, len(arcs))
	next := make([]int64, n)
	copy(next, g.offsets[:n])
	for _, a := range arcs {
		i := next[a.From]
		next[a.From]++
		g.heads[i] = a.To
		g.weights[i] = a.W
		if a.W > g.maxW {
			g.maxW = a.W
		}
	}
	return g
}

// NumVertices returns the vertex count.
func (g *Digraph) NumVertices() int { return int(g.n) }

// NumArcs returns the arc count.
func (g *Digraph) NumArcs() int64 { return int64(len(g.heads)) }

// MaxWeight returns the largest arc weight (0 if arcless).
func (g *Digraph) MaxWeight() uint32 { return g.maxW }

// Out returns v's out-arcs (heads and weights). Read-only aliases.
func (g *Digraph) Out(v int32) ([]int32, []uint32) {
	lo, hi := g.offsets[v], g.offsets[v+1]
	return g.heads[lo:hi], g.weights[lo:hi]
}

// OutDegree returns the number of arcs out of v.
func (g *Digraph) OutDegree(v int32) int { return int(g.offsets[v+1] - g.offsets[v]) }

// Reverse returns the transpose digraph (every arc flipped) — the substrate
// for backward searches and for in-degree caliber computations.
func (g *Digraph) Reverse() *Digraph {
	arcs := make([]Arc, 0, len(g.heads))
	for v := int32(0); v < g.n; v++ {
		hs, ws := g.Out(v)
		for i, u := range hs {
			arcs = append(arcs, Arc{From: u, To: v, W: ws[i]})
		}
	}
	return FromArcs(int(g.n), arcs)
}

// Symmetrize converts to the undirected representation by keeping each arc as
// an undirected edge (the DIMACS undirected convention collapses reciprocal
// arc pairs; here every arc contributes, so reciprocal pairs become parallel
// edges, matching how the paper converted the delta-stepping inputs).
func (g *Digraph) Symmetrize() *graph.Graph {
	edges := make([]graph.Edge, 0, len(g.heads))
	seen := make(map[[3]int64]int64)
	for v := int32(0); v < g.n; v++ {
		hs, ws := g.Out(v)
		for i, u := range hs {
			lo, hi := v, u
			if lo > hi {
				lo, hi = hi, lo
			}
			key := [3]int64{int64(lo), int64(hi), int64(ws[i])}
			if lo != hi && seen[key] > 0 {
				seen[key]-- // reciprocal arc: same undirected edge
				continue
			}
			seen[key]++
			edges = append(edges, graph.Edge{U: v, V: u, W: ws[i]})
		}
	}
	return graph.FromEdges(int(g.n), edges)
}

// FromUndirected expands an undirected graph into the equivalent digraph
// (two arcs per edge, one per self-loop).
func FromUndirected(g *graph.Graph) *Digraph {
	arcs := make([]Arc, 0, g.NumArcs())
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		ts, ws := g.Neighbors(v)
		for i, u := range ts {
			arcs = append(arcs, Arc{From: v, To: u, W: ws[i]})
		}
	}
	return FromArcs(g.NumVertices(), arcs)
}

// Dijkstra computes directed single-source shortest paths with a lazy binary
// heap.
func Dijkstra(g *Digraph, src int32) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0
	h := heap{{v: src, d: 0}}
	for len(h) > 0 {
		top := h.pop()
		if top.d > dist[top.v] {
			continue
		}
		hs, ws := g.Out(top.v)
		for i, u := range hs {
			nd := top.d + int64(ws[i])
			if nd < dist[u] {
				dist[u] = nd
				h.push(entry{v: u, d: nd})
			}
		}
	}
	return dist
}

// BellmanFord is the O(nm) oracle for the directed tests.
func BellmanFord(g *Digraph, src int32) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0
	for round := 0; round < n; round++ {
		changed := false
		for v := int32(0); v < int32(n); v++ {
			if dist[v] == graph.Inf {
				continue
			}
			hs, ws := g.Out(v)
			for i, u := range hs {
				if nd := dist[v] + int64(ws[i]); nd < dist[u] {
					dist[u] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

type entry struct {
	v int32
	d int64
}

type heap []entry

func (h *heap) push(e entry) {
	*h = append(*h, e)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].d <= s[i].d {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *heap) pop() entry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && s[l].d < s[min].d {
			min = l
		}
		if r < len(s) && s[r].d < s[min].d {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// DefaultDelta mirrors the undirected heuristic: max weight / average
// out-degree.
func DefaultDelta(g *Digraph) int64 {
	if g.NumVertices() == 0 || g.NumArcs() == 0 {
		return 1
	}
	avg := g.NumArcs() / int64(g.NumVertices())
	if avg < 1 {
		avg = 1
	}
	d := int64(g.MaxWeight()) / avg
	if d < 1 {
		d = 1
	}
	return d
}

// DeltaStepping computes directed SSSP with the Meyer–Sanders algorithm — the
// original (directed) form of the kernel the paper benchmarks against. The
// phase structure matches internal/deltastep; arcs replace edges.
func DeltaStepping(rt *par.Runtime, g *Digraph, src int32, delta int64) []int64 {
	if delta < 1 {
		panic("digraph: delta must be >= 1")
	}
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	if n == 0 {
		return dist
	}
	buckets := make([][]int32, 1, 64)
	addBucket := func(v int32, idx int64) {
		for int64(len(buckets)) <= idx {
			buckets = append(buckets, nil)
		}
		buckets[idx] = append(buckets[idx], v)
	}
	dist[src] = 0
	addBucket(src, 0)

	scanned := make([]int64, n)
	inRemoved := make([]int64, n)
	for i := range scanned {
		scanned[i] = -1
		inRemoved[i] = -1
	}
	var frontier, removed, touched []int32

	relax := func(sources []int32, light bool, i int64) {
		total := 0
		for _, v := range sources {
			total += g.OutDegree(v)
		}
		if cap(touched) < total {
			touched = make([]int32, total)
		}
		touched = touched[:total]
		var cursor int64
		rt.ForAuto(par.DefaultThresholds, len(sources), func(k int) {
			v := sources[k]
			dv := atomic.LoadInt64(&dist[v])
			hs, ws := g.Out(v)
			rt.Charge(int64(len(hs)))
			for e, u := range hs {
				w := int64(ws[e])
				if light != (w < delta) {
					continue
				}
				if nd := dv + w; par.CASMin(&dist[u], nd) {
					touched[atomic.AddInt64(&cursor, 1)-1] = u
				}
			}
		})
		for _, u := range touched[:cursor] {
			addBucket(u, dist[u]/delta)
		}
	}

	for i := int64(0); i < int64(len(buckets)); i++ {
		if len(buckets[i]) == 0 {
			continue
		}
		removed = removed[:0]
		for len(buckets[i]) > 0 {
			cand := buckets[i]
			buckets[i] = nil
			frontier = frontier[:0]
			for _, v := range cand {
				if dist[v]/delta != i || scanned[v] == dist[v] {
					continue
				}
				scanned[v] = dist[v]
				frontier = append(frontier, v)
				if inRemoved[v] != i {
					inRemoved[v] = i
					removed = append(removed, v)
				}
			}
			if len(frontier) == 0 {
				continue
			}
			relax(frontier, true, i)
		}
		if len(removed) > 0 {
			relax(removed, false, i)
		}
	}
	return dist
}
