package digraph

import (
	"testing"
	"testing/quick"

	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mta"
	"repro/internal/par"
	"repro/internal/rng"
)

func randomDigraph(n, m int, c uint32, seed uint64) *Digraph {
	r := rng.New(seed)
	arcs := make([]Arc, 0, m)
	for i := 0; i < m; i++ {
		arcs = append(arcs, Arc{
			From: int32(r.Intn(n)),
			To:   int32(r.Intn(n)),
			W:    uint32(r.Intn(int(c))) + 1,
		})
	}
	return FromArcs(n, arcs)
}

func sameDists(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestDirectionalityMatters(t *testing.T) {
	// 0 -> 1 -> 2 with no back arcs.
	g := FromArcs(3, []Arc{{0, 1, 4}, {1, 2, 5}})
	d := Dijkstra(g, 0)
	if d[2] != 9 {
		t.Fatalf("forward d[2]=%d", d[2])
	}
	back := Dijkstra(g, 2)
	if back[0] != graph.Inf {
		t.Fatalf("backward reachable: %d", back[0])
	}
	rev := Dijkstra(g.Reverse(), 2)
	if rev[0] != 9 {
		t.Fatalf("reverse d[0]=%d", rev[0])
	}
}

func TestDijkstraVsBellmanFord(t *testing.T) {
	for seed := uint64(0); seed < 10; seed++ {
		g := randomDigraph(200, 1000, 64, seed)
		want := BellmanFord(g, 0)
		if got := Dijkstra(g, 0); !sameDists(got, want) {
			t.Fatalf("seed %d: Dijkstra != Bellman-Ford", seed)
		}
	}
}

func TestDeltaSteppingDirected(t *testing.T) {
	rts := map[string]*par.Runtime{
		"exec1": par.NewExec(1),
		"exec4": par.NewExec(4),
		"sim":   par.NewSim(mta.MTA2(8)),
	}
	for seed := uint64(0); seed < 5; seed++ {
		g := randomDigraph(300, 1800, 256, seed)
		want := Dijkstra(g, 0)
		for name, rt := range rts {
			for _, delta := range []int64{1, 7, DefaultDelta(g), 1 << 12} {
				if got := DeltaStepping(rt, g, 0, delta); !sameDists(got, want) {
					t.Fatalf("seed %d %s delta %d: mismatch", seed, name, delta)
				}
			}
		}
	}
}

func TestRoundTripWithUndirected(t *testing.T) {
	// Undirected -> directed -> undirected preserves distances.
	ug := gen.Random(300, 1200, 128, gen.UWD, 3)
	dg := FromUndirected(ug)
	if dg.NumArcs() != ug.NumArcs() {
		t.Fatalf("arcs %d vs %d", dg.NumArcs(), ug.NumArcs())
	}
	want := dijkstra.SSSP(ug, 0)
	if got := Dijkstra(dg, 0); !sameDists(got, want) {
		t.Fatal("directed view changed distances")
	}
	back := dg.Symmetrize()
	if back.NumEdges() != ug.NumEdges() {
		t.Fatalf("symmetrize: %d edges vs %d", back.NumEdges(), ug.NumEdges())
	}
	if got := dijkstra.SSSP(back, 0); !sameDists(got, want) {
		t.Fatal("symmetrized graph changed distances")
	}
}

func TestSymmetrizeOneWayArc(t *testing.T) {
	// A one-way arc becomes a two-way edge (the paper's undirected adaptation).
	g := FromArcs(2, []Arc{{0, 1, 3}})
	u := g.Symmetrize()
	if u.NumEdges() != 1 {
		t.Fatalf("edges %d", u.NumEdges())
	}
	if d := dijkstra.SSSP(u, 1); d[0] != 3 {
		t.Fatalf("symmetrized distance %d", d[0])
	}
}

func TestTrivialAndPanics(t *testing.T) {
	empty := FromArcs(0, nil)
	if len(Dijkstra(empty, 0)) != 0 {
		t.Fatal("empty digraph")
	}
	for _, f := range []func(){
		func() { FromArcs(1, []Arc{{0, 0, 0}}) },
		func() { FromArcs(1, []Arc{{0, 5, 1}}) },
		func() { DeltaStepping(par.NewExec(1), empty, 0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Property: directed delta-stepping matches directed Dijkstra.
func TestQuickDirectedDeltaMatches(t *testing.T) {
	rt := par.NewExec(4)
	f := func(seed uint32, deltaRaw uint16) bool {
		n := int(seed%100) + 1
		g := randomDigraph(n, 5*n, 128, uint64(seed))
		delta := int64(deltaRaw%256) + 1
		src := int32(seed % uint32(n))
		return sameDists(DeltaStepping(rt, g, src, delta), Dijkstra(g, src))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDirectedDeltaStepping(b *testing.B) {
	g := randomDigraph(1<<14, 1<<17, 1<<14, 42)
	rt := par.NewExec(4)
	delta := DefaultDelta(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DeltaStepping(rt, g, 0, delta)
	}
}
