package gen

import (
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Geometric generates a random geometric graph: n points uniform in the unit
// square, an edge between every pair within distance radius, with the edge
// weight proportional to the Euclidean distance (scaled so the longest
// possible edge weighs c). This is a closer road-network surrogate than the
// grid — low degree, high diameter, spatially correlated weights — and
// serves the paper's §6 future-work scenario alongside GridGraph.
//
// Neighbour search uses a uniform cell grid, so generation is O(n) expected
// for constant expected degree.
func Geometric(n int, radius float64, c uint32, seed uint64) *graph.Graph {
	if n < 1 {
		panic("gen: Geometric requires n >= 1")
	}
	if radius <= 0 || radius > 1 {
		panic("gen: Geometric requires 0 < radius <= 1")
	}
	if c < 1 {
		c = 1
	}
	r := rng.New(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}
	// Bucket points into cells of side >= radius.
	cells := int(1 / radius)
	if cells < 1 {
		cells = 1
	}
	side := 1.0 / float64(cells)
	cellOf := func(x, y float64) (int, int) {
		cx := int(x / side)
		cy := int(y / side)
		if cx >= cells {
			cx = cells - 1
		}
		if cy >= cells {
			cy = cells - 1
		}
		return cx, cy
	}
	grid := make([][]int32, cells*cells)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(xs[i], ys[i])
		grid[cy*cells+cx] = append(grid[cy*cells+cx], int32(i))
	}

	b := graph.NewBuilder(n)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		cx, cy := cellOf(xs[i], ys[i])
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || ny < 0 || nx >= cells || ny >= cells {
					continue
				}
				for _, j := range grid[ny*cells+nx] {
					if j <= int32(i) {
						continue // each pair once
					}
					ddx := xs[i] - xs[j]
					ddy := ys[i] - ys[j]
					d2 := ddx*ddx + ddy*ddy
					if d2 > r2 {
						continue
					}
					w := uint32(math.Sqrt(d2) / radius * float64(c))
					if w < 1 {
						w = 1
					}
					b.MustAddEdge(int32(i), j, w)
				}
			}
		}
	}
	return b.Build()
}

// SmallWorld generates a Watts–Strogatz-style small-world graph: a ring
// lattice where each vertex connects to its k nearest neighbours on each
// side, with each lattice edge rewired to a uniform random endpoint with
// probability p. Weights follow dist over [1, c]. Small p interpolates
// between the high-diameter lattice (road-like) and an expander — useful for
// studying where delta-stepping's bucket count collapses.
func SmallWorld(n, k int, p float64, c uint32, dist WeightDist, seed uint64) *graph.Graph {
	if n < 3 || k < 1 || 2*k >= n {
		panic("gen: SmallWorld requires n >= 3 and 1 <= k < n/2")
	}
	if p < 0 || p > 1 {
		panic("gen: SmallWorld requires 0 <= p <= 1")
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			u := (v + j) % n
			if r.Float64() < p {
				u = r.Intn(n)
			}
			b.MustAddEdge(int32(v), int32(u), sampleWeight(r, c, dist))
		}
	}
	return b.Build()
}
