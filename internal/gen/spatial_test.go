package gen

import (
	"testing"
)

func TestGeometricBasics(t *testing.T) {
	g := Geometric(2000, 0.05, 64, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	// Expected degree ~ n*pi*r^2 ~ 15.7; allow wide slack.
	if mean := g.Degrees().Mean; mean < 5 || mean > 40 {
		t.Fatalf("mean degree %.1f implausible", mean)
	}
	if g.MaxWeight() > 64 || (g.NumEdges() > 0 && g.MinWeight() < 1) {
		t.Fatalf("weights [%d,%d]", g.MinWeight(), g.MaxWeight())
	}
}

func TestGeometricDeterministic(t *testing.T) {
	a := Geometric(500, 0.08, 32, 9)
	b := Geometric(500, 0.08, 32, 9)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("nondeterministic")
	}
}

func TestGeometricNoFarEdges(t *testing.T) {
	// All weights must be <= c (edges only within the radius).
	g := Geometric(1000, 0.1, 100, 3)
	for _, e := range g.Edges() {
		if e.W > 100 {
			t.Fatalf("weight %d exceeds scale", e.W)
		}
	}
}

func TestGeometricPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Geometric(0, 0.1, 10, 1) },
		func() { Geometric(10, 0, 10, 1) },
		func() { Geometric(10, 1.5, 10, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSmallWorldBasics(t *testing.T) {
	g := SmallWorld(1000, 3, 0.1, 64, UWD, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3000 {
		t.Fatalf("m=%d, want nk", g.NumEdges())
	}
	if !isConnected(g) {
		// The base lattice is connected; rewiring rarely disconnects at
		// p=0.1 with k=3, but it is possible — only warn via retry seed.
		t.Log("small-world instance disconnected (acceptable, rare)")
	}
}

func TestSmallWorldLatticeAtPZero(t *testing.T) {
	g := SmallWorld(100, 2, 0, 16, UWD, 3)
	// Pure ring lattice: every vertex has degree exactly 2k.
	st := g.Degrees()
	if st.Min != 4 || st.Max != 4 {
		t.Fatalf("lattice degrees [%d,%d], want exactly 4", st.Min, st.Max)
	}
}

func TestSmallWorldShrinkingDiameter(t *testing.T) {
	// Rewiring must cut the (hop) diameter dramatically versus the lattice.
	ecc := func(p float64) int {
		g := SmallWorld(2000, 2, p, 1, UWD, 7)
		// BFS from 0 inline (unit weights).
		n := g.NumVertices()
		level := make([]int, n)
		for i := range level {
			level[i] = -1
		}
		level[0] = 0
		frontier := []int32{0}
		max := 0
		for len(frontier) > 0 {
			var next []int32
			for _, v := range frontier {
				ts, _ := g.Neighbors(v)
				for _, u := range ts {
					if level[u] < 0 {
						level[u] = level[v] + 1
						if level[u] > max {
							max = level[u]
						}
						next = append(next, u)
					}
				}
			}
			frontier = next
		}
		return max
	}
	lattice, rewired := ecc(0), ecc(0.2)
	if rewired*4 > lattice {
		t.Fatalf("rewiring did not shrink eccentricity: %d vs %d", rewired, lattice)
	}
}

func TestSmallWorldPanics(t *testing.T) {
	for _, f := range []func(){
		func() { SmallWorld(2, 1, 0, 1, UWD, 1) },
		func() { SmallWorld(10, 5, 0, 1, UWD, 1) },
		func() { SmallWorld(10, 1, 1.5, 1, UWD, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
