// Package gen generates the synthetic graph instances the paper evaluates on,
// following the 9th DIMACS Implementation Challenge generators (paper §4.2):
//
//   - Random graphs: a Hamiltonian cycle plus m-n edges chosen uniformly at
//     random; the generator may produce parallel edges and self-loops, and we
//     keep them, exactly like the Challenge generator.
//   - Scale-free graphs (R-MAT): the recursive adjacency-matrix model of
//     Chakrabarti, Zhan and Faloutsos, producing an inverse-power-law degree
//     distribution.
//
// Both families fix m = 4n in the paper's experimental design. Edge weights
// come from one of two distributions over [1, C]:
//
//   - UWD: uniform integers in [1, C];
//   - PWD: poly-logarithmic, 2^i with i uniform in [1, log2 C] (paper §4.2).
//
// Additional deterministic families (Path, Cycle, Star, Complete, Grid) serve
// the test suite and the road-network extension experiment (paper §6).
//
// Instances are named with the paper's convention <class>-<dist>-<n>-<C>,
// e.g. "Rand-UWD-2^20-2^20".
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package gen
