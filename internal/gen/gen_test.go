package gen

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// isConnected checks connectivity with a simple BFS (self-contained so the
// gen tests do not depend on internal/cc).
func isConnected(g *graph.Graph) bool {
	n := g.NumVertices()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	queue := []int32{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		ts, _ := g.Neighbors(v)
		for _, u := range ts {
			if !seen[u] {
				seen[u] = true
				count++
				queue = append(queue, u)
			}
		}
	}
	return count == n
}

func TestRandomBasics(t *testing.T) {
	g := Random(1000, 4000, 1<<10, UWD, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1000 || g.NumEdges() != 4000 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	if !isConnected(g) {
		t.Fatal("random graph with cycle base must be connected")
	}
	if g.MaxWeight() > 1<<10 || g.MinWeight() < 1 {
		t.Fatalf("weights out of range: [%d,%d]", g.MinWeight(), g.MaxWeight())
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(500, 2000, 100, UWD, 7)
	b := Random(500, 2000, 100, UWD, 7)
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("edge counts differ")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ea[i], eb[i])
		}
	}
}

func TestRandomSeedsDiffer(t *testing.T) {
	a := Random(500, 2000, 100, UWD, 1)
	b := Random(500, 2000, 100, UWD, 2)
	ea, eb := a.Edges(), b.Edges()
	same := 0
	for i := range ea {
		if ea[i] == eb[i] {
			same++
		}
	}
	if same == len(ea) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRandomSingleVertex(t *testing.T) {
	g := Random(1, 3, 10, UWD, 5)
	if g.NumVertices() != 1 || g.NumEdges() != 3 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestRandomPanicsOnBadArgs(t *testing.T) {
	for _, f := range []func(){
		func() { Random(0, 0, 1, UWD, 0) },
		func() { Random(10, 5, 1, UWD, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestPWDWeightsArePowersOfTwo(t *testing.T) {
	g := Random(200, 800, 1<<8, PWD, 3)
	for _, e := range g.Edges() {
		if e.W&(e.W-1) != 0 {
			t.Fatalf("PWD weight %d not a power of two", e.W)
		}
		if e.W < 2 || e.W > 1<<8 {
			t.Fatalf("PWD weight %d out of [2, 256]", e.W)
		}
	}
}

func TestPWDFavoursSmallWeights(t *testing.T) {
	// The paper observes PWD favours small weights; the median weight must
	// be far below C/2.
	g := Random(2000, 8000, 1<<20, PWD, 9)
	var ws []uint32
	for _, e := range g.Edges() {
		ws = append(ws, e.W)
	}
	sort.Slice(ws, func(i, j int) bool { return ws[i] < ws[j] })
	if med := ws[len(ws)/2]; med > 1<<11 {
		t.Fatalf("PWD median weight %d too large", med)
	}
}

func TestUWDWeightsSpanRange(t *testing.T) {
	g := Random(2000, 8000, 1<<10, UWD, 11)
	if g.MinWeight() > 16 {
		t.Errorf("UWD min weight %d suspiciously large", g.MinWeight())
	}
	if g.MaxWeight() < 1<<9 {
		t.Errorf("UWD max weight %d suspiciously small", g.MaxWeight())
	}
}

func TestUWDSmallC(t *testing.T) {
	g := Random(100, 400, 4, UWD, 13) // C = 2^2 per the paper's small-C rows
	for _, e := range g.Edges() {
		if e.W < 1 || e.W > 4 {
			t.Fatalf("weight %d out of [1,4]", e.W)
		}
	}
}

func TestRMATBasics(t *testing.T) {
	g := RMATGraph(1024, 4096, 1<<10, UWD, 2)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 1024 || g.NumEdges() != 4096 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	// R-MAT must be much more skewed than the random family: its max degree
	// should far exceed the random graph's.
	rm := RMATGraph(4096, 16384, 100, UWD, 4)
	rd := Random(4096, 16384, 100, UWD, 4)
	if rm.Degrees().Max < 2*rd.Degrees().Max {
		t.Fatalf("RMAT max degree %d vs random %d: not skewed",
			rm.Degrees().Max, rd.Degrees().Max)
	}
}

func TestGridBasics(t *testing.T) {
	g := GridGraph(10, 20, 16, UWD, 6)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 200 {
		t.Fatalf("n=%d", g.NumVertices())
	}
	// Grid edges: rows*(cols-1) + (rows-1)*cols.
	want := int64(10*19 + 9*20)
	if g.NumEdges() != want {
		t.Fatalf("m=%d, want %d", g.NumEdges(), want)
	}
	if !isConnected(g) {
		t.Fatal("grid must be connected")
	}
	if g.Degrees().Max > 4 {
		t.Fatalf("grid max degree %d", g.Degrees().Max)
	}
}

func TestPathCycleStarComplete(t *testing.T) {
	p := Path(5, 3)
	if p.NumEdges() != 4 || !isConnected(p) {
		t.Fatalf("path: %v", p)
	}
	c := Cycle(5, 2)
	if c.NumEdges() != 5 || c.Degrees().Max != 2 {
		t.Fatalf("cycle: %v", c)
	}
	s := Star(6, 1)
	if s.NumEdges() != 5 || s.Degree(0) != 5 {
		t.Fatalf("star: %v", s)
	}
	k := Complete(6, 50, 1)
	if k.NumEdges() != 15 {
		t.Fatalf("complete: %v", k)
	}
}

func TestInstanceNaming(t *testing.T) {
	in := Instance{Class: RMAT, Dist: PWD, LogN: 20, LogC: 20}
	if in.Name() != "RMAT-PWD-2^20-2^20" {
		t.Fatalf("name = %q", in.Name())
	}
	in2 := Instance{Class: Rand, Dist: UWD, LogN: 14, LogC: 2}
	if in2.Name() != "Rand-UWD-2^14-2^2" {
		t.Fatalf("name = %q", in2.Name())
	}
}

func TestInstanceGenerate(t *testing.T) {
	for _, in := range []Instance{
		{Class: Rand, Dist: UWD, LogN: 10, LogC: 10, Seed: 1},
		{Class: Rand, Dist: PWD, LogN: 10, LogC: 10, Seed: 1},
		{Class: RMAT, Dist: UWD, LogN: 10, LogC: 2, Seed: 1},
		{Class: Grid, Dist: UWD, LogN: 10, LogC: 4, Seed: 1},
	} {
		g := in.Generate()
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", in.Name(), err)
		}
		if g.NumVertices() != in.N() {
			t.Errorf("%s: n=%d, want %d", in.Name(), g.NumVertices(), in.N())
		}
		if in.Class != Grid && g.NumEdges() != int64(4*in.N()) {
			t.Errorf("%s: m=%d, want 4n", in.Name(), g.NumEdges())
		}
	}
}

// Property: every generated instance validates and has weights within [1,C].
func TestQuickGeneratedInstancesValid(t *testing.T) {
	f := func(seed uint32, logN uint8, pwd bool) bool {
		ln := int(logN%5) + 4 // 16..256 vertices
		dist := UWD
		if pwd {
			dist = PWD
		}
		in := Instance{Class: Rand, Dist: dist, LogN: ln, LogC: ln, Seed: uint64(seed)}
		g := in.Generate()
		if g.Validate() != nil {
			return false
		}
		return g.MaxWeight() <= in.C() && (g.NumEdges() == 0 || g.MinWeight() >= 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
