package gen

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/rng"
)

// WeightDist identifies an edge weight distribution.
type WeightDist int

const (
	// UWD draws weights uniformly from [1, C].
	UWD WeightDist = iota
	// PWD draws weights of the form 2^i with i uniform in [1, log2 C]
	// (poly-logarithmic distribution, favouring small weights).
	PWD
)

func (d WeightDist) String() string {
	switch d {
	case UWD:
		return "UWD"
	case PWD:
		return "PWD"
	default:
		return fmt.Sprintf("WeightDist(%d)", int(d))
	}
}

// Class identifies a graph family.
type Class int

const (
	// Rand is the DIMACS random family: a cycle plus random edges.
	Rand Class = iota
	// RMAT is the DIMACS scale-free family.
	RMAT
	// Grid is a 2D grid with unit-ish weights: a stand-in for the road
	// networks of the paper's §6 future-work discussion (high diameter, low
	// degree).
	Grid
)

func (c Class) String() string {
	switch c {
	case Rand:
		return "Rand"
	case RMAT:
		return "RMAT"
	case Grid:
		return "Grid"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Instance describes one paper-style experimental instance.
type Instance struct {
	Class Class
	Dist  WeightDist
	LogN  int // n = 2^LogN vertices
	LogC  int // C = 2^LogC maximum edge weight
	Seed  uint64
}

// Name returns the paper's instance naming, e.g. "RMAT-PWD-2^25-2^25".
func (in Instance) Name() string {
	return fmt.Sprintf("%s-%s-2^%d-2^%d", in.Class, in.Dist, in.LogN, in.LogC)
}

// N returns the vertex count 2^LogN.
func (in Instance) N() int { return 1 << in.LogN }

// C returns the maximum edge weight 2^LogC.
func (in Instance) C() uint32 { return 1 << in.LogC }

// Generate builds the instance's graph with m = 4n undirected edges (the
// paper's experimental design).
func (in Instance) Generate() *graph.Graph {
	n := in.N()
	m := 4 * n
	switch in.Class {
	case Rand:
		return Random(n, m, in.C(), in.Dist, in.Seed)
	case RMAT:
		return RMATGraph(n, m, in.C(), in.Dist, in.Seed)
	case Grid:
		side := 1 << (in.LogN / 2)
		return GridGraph(side, n/side, in.C(), in.Dist, in.Seed)
	default:
		panic("gen: unknown class " + in.Class.String())
	}
}

// sampleWeight draws one weight from the distribution.
func sampleWeight(r *rng.Xoshiro256, c uint32, dist WeightDist) uint32 {
	if c < 1 {
		c = 1
	}
	switch dist {
	case UWD:
		return uint32(r.Uint64n(uint64(c))) + 1
	case PWD:
		logC := 0
		for (uint32(1) << (logC + 1)) <= c {
			logC++
		}
		if logC < 1 {
			return 1
		}
		i := int(r.Uint64n(uint64(logC))) + 1 // i uniform in [1, log2 C]
		return uint32(1) << i
	default:
		panic("gen: unknown weight distribution")
	}
}

// Random generates the DIMACS random family: vertices 0..n-1 joined in a
// cycle (guaranteeing connectivity), plus m-n uniformly random edges which
// may include self-loops and parallel edges.
func Random(n, m int, c uint32, dist WeightDist, seed uint64) *graph.Graph {
	if n < 1 {
		panic("gen: Random requires n >= 1")
	}
	if m < n {
		panic(fmt.Sprintf("gen: Random requires m >= n (got m=%d n=%d)", m, n))
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	if n == 1 {
		// Degenerate cycle: skip the self-loop, emit random self-loops below.
	} else {
		for v := 0; v < n; v++ {
			b.MustAddEdge(int32(v), int32((v+1)%n), sampleWeight(r, c, dist))
		}
	}
	extra := m - n
	if n == 1 {
		extra = m
	}
	for i := 0; i < extra; i++ {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		b.MustAddEdge(u, v, sampleWeight(r, c, dist))
	}
	return b.Build()
}

// RMATGraph generates the R-MAT scale-free family with the standard DIMACS
// parameters (a,b,c,d) = (0.45, 0.15, 0.15, 0.25). n is rounded up to a
// power of two internally (the paper's instances are powers of two already).
func RMATGraph(n, m int, c uint32, dist WeightDist, seed uint64) *graph.Graph {
	if n < 2 {
		panic("gen: RMAT requires n >= 2")
	}
	levels := 0
	for (1 << levels) < n {
		levels++
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	const pa, pb, pc = 0.45, 0.15, 0.15
	for i := 0; i < m; i++ {
		var u, v int
		for {
			u, v = 0, 0
			for l := 0; l < levels; l++ {
				f := r.Float64()
				switch {
				case f < pa:
					// top-left: nothing to add
				case f < pa+pb:
					v |= 1 << l
				case f < pa+pb+pc:
					u |= 1 << l
				default:
					u |= 1 << l
					v |= 1 << l
				}
			}
			if u < n && v < n {
				break
			}
		}
		b.MustAddEdge(int32(u), int32(v), sampleWeight(r, c, dist))
	}
	return b.Build()
}

// GridGraph generates a rows×cols 2D grid (4-neighbour), the stand-in for
// road networks: high diameter, maximum degree 4. Weights follow dist.
func GridGraph(rows, cols int, c uint32, dist WeightDist, seed uint64) *graph.Graph {
	if rows < 1 || cols < 1 {
		panic("gen: Grid requires positive dimensions")
	}
	r := rng.New(seed)
	n := rows * cols
	b := graph.NewBuilder(n)
	id := func(i, j int) int32 { return int32(i*cols + j) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				b.MustAddEdge(id(i, j), id(i, j+1), sampleWeight(r, c, dist))
			}
			if i+1 < rows {
				b.MustAddEdge(id(i, j), id(i+1, j), sampleWeight(r, c, dist))
			}
		}
	}
	return b.Build()
}

// Path generates a path 0-1-...-n-1 with the given constant weight.
func Path(n int, w uint32) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.MustAddEdge(int32(v), int32(v+1), w)
	}
	return b.Build()
}

// Cycle generates a cycle on n >= 3 vertices with the given constant weight.
func Cycle(n int, w uint32) *graph.Graph {
	if n < 3 {
		panic("gen: Cycle requires n >= 3")
	}
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.MustAddEdge(int32(v), int32((v+1)%n), w)
	}
	return b.Build()
}

// Star generates a star with center 0 and n-1 leaves.
func Star(n int, w uint32) *graph.Graph {
	if n < 1 {
		panic("gen: Star requires n >= 1")
	}
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(0, int32(v), w)
	}
	return b.Build()
}

// Complete generates the complete graph K_n with random weights in [1, c].
func Complete(n int, c uint32, seed uint64) *graph.Graph {
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.MustAddEdge(int32(u), int32(v), sampleWeight(r, c, UWD))
		}
	}
	return b.Build()
}

// RandomConnected generates a Random-family graph guaranteed connected (the
// cycle base does this already); exported separately for test readability.
func RandomConnected(n, m int, c uint32, seed uint64) *graph.Graph {
	return Random(n, m, c, UWD, seed)
}
