package deltastep

import (
	"testing"

	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
)

// A reused State must produce byte-identical distances to a fresh run, across
// graphs of different sizes and weight distributions.
func TestStateReuseMatchesFresh(t *testing.T) {
	rt := par.NewExec(4)
	big := gen.Random(400, 1600, 1<<10, gen.UWD, 9)
	small := gen.Random(50, 200, 1<<4, gen.PWD, 10)

	st := NewState()
	for _, g := range []*graph.Graph{big, small, big} {
		delta := DefaultDelta(g)
		for _, src := range []int32{0, int32(g.NumVertices() - 1)} {
			want := dijkstra.SSSP(g, src)
			got, _ := st.Run(rt, g, src, delta)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("n=%d src=%d: dist[%d] = %d, want %d", g.NumVertices(), src, v, got[v], want[v])
				}
			}
		}
	}

	// Stats from a reused state must match a fresh run's stats exactly
	// (the phase structure is deterministic for a fixed runtime).
	wantDist, wantStats := Run(rt, big, 7, DefaultDelta(big))
	gotDist, gotStats := st.Run(rt, big, 7, DefaultDelta(big))
	for v := range wantDist {
		if gotDist[v] != wantDist[v] {
			t.Fatalf("stats-run dist[%d] = %d, want %d", v, gotDist[v], wantDist[v])
		}
	}
	if gotStats.Buckets != wantStats.Buckets || gotStats.Phases != wantStats.Phases {
		t.Fatalf("reused stats %+v, fresh %+v", gotStats, wantStats)
	}

	// Reset leaves a scrubbed, still-working state.
	st.Reset()
	want := dijkstra.SSSP(small, 3)
	got, _ := st.Run(rt, small, 3, DefaultDelta(small))
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("after Reset: dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}
