package deltastep

import (
	"testing"
	"testing/quick"

	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mta"
	"repro/internal/par"
)

func sameDists(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPath(t *testing.T) {
	g := gen.Path(10, 4)
	rt := par.NewExec(2)
	d := SSSP(rt, g, 0, 3)
	for v := 0; v < 10; v++ {
		if d[v] != int64(4*v) {
			t.Fatalf("d[%d] = %d", v, d[v])
		}
	}
}

func TestTrivialGraphs(t *testing.T) {
	rt := par.NewExec(2)
	if d := SSSP(rt, graph.NewBuilder(0).Build(), 0, 1); len(d) != 0 {
		t.Fatal("empty graph")
	}
	if d := SSSP(rt, graph.NewBuilder(1).Build(), 0, 1); d[0] != 0 {
		t.Fatalf("singleton: %v", d)
	}
}

func TestUnreachable(t *testing.T) {
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 5)
	g := b.Build()
	d := SSSP(par.NewExec(2), g, 0, 2)
	if d[2] != graph.Inf {
		t.Fatalf("d = %v", d)
	}
}

func TestInvalidDeltaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("delta=0 did not panic")
		}
	}()
	SSSP(par.NewExec(1), gen.Path(3, 1), 0, 0)
}

func TestDefaultDelta(t *testing.T) {
	g := gen.Random(1000, 4000, 1<<10, gen.UWD, 1)
	d := DefaultDelta(g)
	if d < 1 || d > int64(g.MaxWeight()) {
		t.Fatalf("DefaultDelta = %d", d)
	}
	if DefaultDelta(graph.NewBuilder(0).Build()) != 1 {
		t.Fatal("empty-graph delta")
	}
}

func TestMatchesDijkstraAcrossDeltas(t *testing.T) {
	g := gen.Random(800, 3200, 1<<10, gen.UWD, 3)
	want := dijkstra.SSSP(g, 0)
	for _, delta := range []int64{1, 2, 7, 64, 1 << 10, 1 << 20} {
		for name, rt := range map[string]*par.Runtime{
			"exec1": par.NewExec(1), "exec4": par.NewExec(4), "sim": par.NewSim(mta.MTA2(40)),
		} {
			if got := SSSP(rt, g, 0, delta); !sameDists(got, want) {
				t.Errorf("delta=%d %s: mismatch vs Dijkstra", delta, name)
			}
		}
	}
}

func TestMatchesDijkstraOnFamilies(t *testing.T) {
	gs := []*graph.Graph{
		gen.Random(1000, 4000, 1<<16, gen.UWD, 1),
		gen.Random(1000, 4000, 1<<16, gen.PWD, 2),
		gen.Random(1000, 4000, 4, gen.UWD, 3),
		gen.RMATGraph(1024, 4096, 1<<10, gen.UWD, 4),
		gen.GridGraph(25, 40, 64, gen.UWD, 5),
		gen.Star(200, 9),
	}
	rt := par.NewExec(4)
	for gi, g := range gs {
		for _, src := range []int32{0, int32(g.NumVertices() - 1)} {
			want := dijkstra.SSSP(g, src)
			if got := SSSP(rt, g, src, DefaultDelta(g)); !sameDists(got, want) {
				t.Errorf("graph %d src %d: delta-stepping mismatch", gi, src)
			}
		}
	}
}

func TestDeltaOneActsLikeDijkstra(t *testing.T) {
	// With delta = 1 every bucket is a single distance value: no light
	// re-insertions are possible because light edges need w < 1.
	g := gen.Random(300, 1200, 100, gen.UWD, 7)
	_, st := Run(par.NewExec(2), g, 0, 1)
	if st.LightRelax != 0 {
		t.Fatalf("delta=1 produced %d light relaxations", st.LightRelax)
	}
	if st.HeavyRelax == 0 {
		t.Fatal("no heavy relaxations recorded")
	}
}

func TestStatsPhaseCounts(t *testing.T) {
	g := gen.GridGraph(30, 30, 64, gen.UWD, 11)
	_, stGrid := Run(par.NewExec(2), g, 0, DefaultDelta(g))
	r := gen.Random(900, 3600, 64, gen.UWD, 11)
	_, stRand := Run(par.NewExec(2), r, 0, DefaultDelta(r))
	if stGrid.Buckets == 0 || stRand.Buckets == 0 {
		t.Fatal("no buckets processed")
	}
	// The high-diameter grid needs far more buckets than the random graph —
	// the effect that makes road networks hard for delta-stepping (paper §2).
	if stGrid.Buckets <= stRand.Buckets {
		t.Errorf("grid buckets %d not above random %d", stGrid.Buckets, stRand.Buckets)
	}
}

func TestSimCostRecorded(t *testing.T) {
	g := gen.Random(1000, 4000, 1<<10, gen.UWD, 13)
	rt := par.NewSim(mta.MTA2(40))
	SSSP(rt, g, 0, DefaultDelta(g))
	if rt.SimCost().Work < int64(g.NumEdges()) {
		t.Fatalf("sim work %d too low", rt.SimCost().Work)
	}
}

// Property: delta-stepping matches Dijkstra for random graphs, deltas,
// sources and weight distributions.
func TestQuickMatchesDijkstra(t *testing.T) {
	rt := par.NewExec(4)
	f := func(seed uint32, deltaRaw uint16, pwd bool) bool {
		n := int(seed%120) + 1
		dist := gen.UWD
		if pwd {
			dist = gen.PWD
		}
		g := gen.Random(n, 4*n, 1<<12, dist, uint64(seed))
		delta := int64(deltaRaw%512) + 1
		src := int32(seed % uint32(n))
		return sameDists(SSSP(rt, g, src, delta), dijkstra.SSSP(g, src))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDeltaStepping(b *testing.B) {
	g := gen.Random(1<<14, 1<<16, 1<<14, gen.UWD, 42)
	rt := par.NewExec(4)
	delta := DefaultDelta(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SSSP(rt, g, 0, delta)
	}
}

func TestReinsertionWithinBucket(t *testing.T) {
	// A chain of light edges inside one bucket forces re-scans: with delta
	// large enough, path relaxations cascade within bucket 0 across phases.
	g := gen.Path(64, 1)
	_, st := Run(par.NewExec(1), g, 0, 1<<20)
	if st.Buckets != 1 {
		t.Fatalf("expected a single bucket, got %d", st.Buckets)
	}
	if st.Phases < 32 {
		t.Fatalf("expected many light phases in one bucket, got %d", st.Phases)
	}
	if st.HeavyRelax != 0 {
		t.Fatalf("no heavy edges exist, got %d heavy relaxations", st.HeavyRelax)
	}
}

func TestStaleBucketEntriesSkipped(t *testing.T) {
	// Star center relaxed from many leaves: duplicates must not distort the
	// result, and light relaxations stay bounded by successful decreases.
	g := gen.Star(200, 3)
	d, st := Run(par.NewExec(4), g, 1, 4)
	want := dijkstra.SSSP(g, 1)
	if !sameDists(d, want) {
		t.Fatal("star distances wrong")
	}
	if st.LightRelax+st.HeavyRelax > int64(4*g.NumArcs()) {
		t.Fatalf("relaxations exploded: %d light %d heavy", st.LightRelax, st.HeavyRelax)
	}
}
