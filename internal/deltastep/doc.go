// Package deltastep implements delta-stepping (Meyer & Sanders), the parallel
// Dijkstra variant of Madduri et al. that the paper compares Thorup's
// algorithm against (Table 5 and Figure 5).
//
// Delta-stepping groups queued vertices into buckets of width Delta. The
// smallest non-empty bucket is emptied in sub-phases that relax only light
// edges (weight < Delta; these may re-insert vertices into the current
// bucket); once the bucket stays empty, the heavy edges (weight >= Delta) of
// every vertex removed from it are relaxed in one final parallel phase.
// Within a sub-phase all requests are independent, which is where the
// parallelism comes from.
//
// The implementation is written against par.Runtime, so the same code runs
// with real goroutines (relaxation via CAS-min) or on the simulated MTA-2
// cost model. Bucket membership is lazy: insertions append (possibly
// duplicate) candidates and the scan filters by the vertex's current bucket,
// which avoids the concurrent-deletion problem the paper notes buckets have
// on parallel machines.
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package deltastep
