package deltastep

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// Stats reports the phase structure of one run (useful for analysis and for
// the road-network experiment, where the number of phases explodes).
type Stats struct {
	Buckets     int   // non-empty buckets processed
	Phases      int   // light sub-phases
	LightRelax  int64 // light edge relaxation requests
	HeavyRelax  int64 // heavy edge relaxation requests
	Reinsertion int64 // vertices rescanned within one bucket
}

// DefaultDelta returns the standard heuristic bucket width Delta = C/d, where
// C is the maximum edge weight and d the average degree (at least 1). For
// d >= C this degenerates to Dijkstra-like width 1.
func DefaultDelta(g *graph.Graph) int64 {
	if g.NumVertices() == 0 || g.NumEdges() == 0 {
		return 1
	}
	avgDeg := int64(g.NumArcs()) / int64(g.NumVertices())
	if avgDeg < 1 {
		avgDeg = 1
	}
	d := int64(g.MaxWeight()) / avgDeg
	if d < 1 {
		d = 1
	}
	return d
}

// SSSP computes single-source shortest path distances from src with bucket
// width delta (use DefaultDelta for the standard choice).
func SSSP(rt *par.Runtime, g *graph.Graph, src int32, delta int64) []int64 {
	d, _ := Run(rt, g, src, delta)
	return d
}

// Run is SSSP returning phase statistics as well. It allocates fresh state;
// callers running many queries should hold a State and call its Run instead.
func Run(rt *par.Runtime, g *graph.Graph, src int32, delta int64) ([]int64, Stats) {
	return NewState().Run(rt, g, src, delta)
}

// State is reusable delta-stepping query state: the distance vector, the
// bucket structure, and every per-phase scratch array. Reusing a State across
// queries amortizes all per-query allocations (a pooled serving layer's hot
// path); buffers grow to the largest graph served and are resliced for
// smaller ones. A State is not safe for concurrent use — the parallelism is
// inside one run, not across runs.
type State struct {
	dist      []int64
	buckets   [][]int32
	frontier  []int32 // deduplicated current-bucket members
	removed   []int32 // everything removed from the current bucket
	scanned   []int64 // bucket epoch when last light-scanned, per vertex
	inRemoved []int64 // bucket index when last appended to removed, per vertex
	touched   []int32 // relax-phase output, filled via atomic cursor
}

// NewState returns an empty State; buffers are grown on first use.
func NewState() *State { return &State{} }

// Reset scrubs the state so nothing leaks to the next user across a pool
// boundary. Not required between runs — Run reinitialises everything it
// reads.
func (st *State) Reset() {
	clear(st.dist)
	clear(st.scanned)
	clear(st.inRemoved)
	for i := range st.buckets {
		st.buckets[i] = st.buckets[i][:0]
	}
	st.frontier = st.frontier[:0]
	st.removed = st.removed[:0]
}

// grow sizes the per-vertex arrays for n vertices, reusing capacity, and
// empties the bucket structure (keeping each bucket's backing array).
func (st *State) grow(n int) {
	if cap(st.dist) < n {
		st.dist = make([]int64, n)
		st.scanned = make([]int64, n)
		st.inRemoved = make([]int64, n)
	}
	st.dist = st.dist[:n]
	st.scanned = st.scanned[:n]
	st.inRemoved = st.inRemoved[:n]
	for i := range st.buckets {
		st.buckets[i] = st.buckets[i][:0]
	}
}

// Run computes single-source shortest path distances from src with bucket
// width delta, reusing the state's buffers. The returned slice aliases the
// state and is valid until the next Run.
func (st *State) Run(rt *par.Runtime, g *graph.Graph, src int32, delta int64) ([]int64, Stats) {
	if delta < 1 {
		panic("deltastep: delta must be >= 1")
	}
	n := g.NumVertices()
	st.grow(n)
	dist := st.dist
	for i := range dist {
		dist[i] = graph.Inf
	}
	var stats Stats
	if n == 0 {
		return dist, stats
	}

	buckets := st.buckets
	if len(buckets) == 0 {
		buckets = make([][]int32, 1, 64)
	}
	addBucket := func(v int32, idx int64) {
		for int64(len(buckets)) <= idx {
			buckets = append(buckets, nil)
		}
		buckets[idx] = append(buckets[idx], v)
	}

	dist[src] = 0
	addBucket(src, 0)

	frontier := st.frontier[:0]
	removed := st.removed[:0]
	scanned := st.scanned
	for i := range scanned {
		scanned[i] = -1
	}
	inRemoved := st.inRemoved
	for i := range inRemoved {
		inRemoved[i] = -1
	}

	// touched is the shared output array of one relax phase: improved
	// vertices are appended with an atomic cursor (the MTA int_fetch_add
	// reduction idiom) and distributed into buckets afterwards.
	touched := st.touched
	var cursor int64

	relaxPhase := func(sources []int32, light bool, i int64) {
		// Size the output by the total degree of the sources.
		total := 0
		for _, v := range sources {
			total += g.Degree(v)
		}
		if cap(touched) < total {
			touched = make([]int32, total)
		}
		touched = touched[:total]
		atomic.StoreInt64(&cursor, 0)
		rt.ForAuto(par.DefaultThresholds, len(sources), func(k int) {
			v := sources[k]
			dv := atomic.LoadInt64(&dist[v])
			ts, ws := g.Neighbors(v)
			rt.Charge(int64(len(ts)))
			for e, u := range ts {
				w := int64(ws[e])
				if light != (w < delta) {
					continue
				}
				nd := dv + w
				if par.CASMin(&dist[u], nd) {
					slot := atomic.AddInt64(&cursor, 1) - 1
					touched[slot] = u
				}
			}
		})
		cnt := atomic.LoadInt64(&cursor)
		if light {
			stats.LightRelax += cnt
		} else {
			stats.HeavyRelax += cnt
		}
		// Distribute improved vertices into their (new) buckets. Duplicates
		// are fine: the scan filters lazily by current distance.
		// A relaxation never lands below the bucket being processed (all
		// sources have distance >= i*delta and weights are positive), so
		// idx >= i: light requests may re-enter bucket i, heavy ones always
		// land strictly above it.
		rt.ChargeLoop(rt.ModeFor(par.DefaultThresholds, int(cnt)), int(cnt), 2)
		for _, u := range touched[:cnt] {
			addBucket(u, dist[u]/delta)
		}
	}

	for i := int64(0); i < int64(len(buckets)); i++ {
		if len(buckets[i]) == 0 {
			continue
		}
		stats.Buckets++
		removed = removed[:0]
		for len(buckets[i]) > 0 {
			// Collect the sub-phase frontier: members whose current distance
			// really lies in this bucket and that were not already scanned
			// at this distance.
			cand := buckets[i]
			buckets[i] = nil
			frontier = frontier[:0]
			rt.ChargeLoop(rt.ModeFor(par.DefaultThresholds, len(cand)), len(cand), 2)
			for _, v := range cand {
				if dist[v]/delta != i {
					continue // stale entry
				}
				if scanned[v] == dist[v] {
					continue // already light-scanned at this distance
				}
				if scanned[v] >= 0 {
					stats.Reinsertion++
				}
				scanned[v] = dist[v]
				frontier = append(frontier, v)
				if inRemoved[v] != i {
					inRemoved[v] = i
					removed = append(removed, v)
				}
			}
			if len(frontier) == 0 {
				continue
			}
			stats.Phases++
			relaxPhase(frontier, true, i)
		}
		if len(removed) > 0 {
			relaxPhase(removed, false, i)
		}
	}
	// Hand the (possibly grown) buffers back to the state for the next run.
	st.buckets = buckets
	st.frontier = frontier
	st.removed = removed
	st.touched = touched
	return dist, stats
}
