package mst

import (
	"testing"
	"testing/quick"

	"repro/internal/cc"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mta"
	"repro/internal/par"
)

// validateForest checks that forest is acyclic, spans every component of g,
// and uses only edges of g.
func validateForest(t *testing.T, g *graph.Graph, forest []graph.Edge) {
	t.Helper()
	n := g.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range forest {
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			t.Fatalf("forest contains a cycle at edge %+v", e)
		}
		parent[ru] = rv
	}
	_, comps := cc.SerialBFS(g, cc.All)
	if len(forest) != n-comps {
		t.Fatalf("forest has %d edges, want n-components = %d", len(forest), n-comps)
	}
	// Forest connectivity must match the graph's components.
	label, _ := cc.SerialBFS(g, cc.All)
	for v := 0; v < n; v++ {
		for u := 0; u < n; u++ {
			if label[v] == label[u] && find(int32(v)) != find(int32(u)) {
				t.Fatalf("vertices %d and %d connected in g but not in forest", v, u)
			}
		}
	}
}

func TestKruskalTriangle(t *testing.T) {
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 2)
	b.MustAddEdge(2, 0, 3)
	g := b.Build()
	f := Kruskal(g)
	if TotalWeight(f) != 3 || len(f) != 2 {
		t.Fatalf("kruskal triangle: weight=%d len=%d", TotalWeight(f), len(f))
	}
}

func TestBoruvkaTriangle(t *testing.T) {
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 2)
	b.MustAddEdge(2, 0, 3)
	g := b.Build()
	f := Boruvka(par.NewExec(2), g)
	if TotalWeight(f) != 3 || len(f) != 2 {
		t.Fatalf("boruvka triangle: weight=%d len=%d", TotalWeight(f), len(f))
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	for _, g := range []*graph.Graph{graph.NewBuilder(0).Build(), graph.NewBuilder(1).Build()} {
		if f := Kruskal(g); len(f) != 0 {
			t.Errorf("kruskal: %d edges on trivial graph", len(f))
		}
		if f := Boruvka(par.NewExec(2), g); len(f) != 0 {
			t.Errorf("boruvka: %d edges on trivial graph", len(f))
		}
	}
}

func TestDisconnectedForest(t *testing.T) {
	b := graph.NewBuilder(5)
	b.MustAddEdge(0, 1, 2)
	b.MustAddEdge(2, 3, 3) // vertex 4 isolated
	g := b.Build()
	for name, f := range map[string][]graph.Edge{
		"kruskal": Kruskal(g),
		"boruvka": Boruvka(par.NewExec(2), g),
	} {
		if len(f) != 2 || TotalWeight(f) != 5 {
			t.Errorf("%s: forest %v", name, f)
		}
	}
}

func TestEqualWeightsAcyclic(t *testing.T) {
	// All weights equal: tie-breaking must keep Borůvka acyclic.
	g := gen.Complete(32, 1, 0) // C=1 forces every weight to 1
	f := Boruvka(par.NewExec(4), g)
	validateForest(t, g, f)
	if TotalWeight(f) != 31 {
		t.Fatalf("weight %d", TotalWeight(f))
	}
}

func TestBoruvkaMatchesKruskalOnFamilies(t *testing.T) {
	rts := map[string]*par.Runtime{
		"exec1": par.NewExec(1),
		"exec4": par.NewExec(4),
		"sim":   par.NewSim(mta.MTA2(40)),
	}
	gs := []*graph.Graph{
		gen.Random(500, 2000, 1<<10, gen.UWD, 1),
		gen.Random(500, 2000, 1<<10, gen.PWD, 2),
		gen.RMATGraph(512, 2048, 1<<8, gen.UWD, 3),
		gen.GridGraph(20, 25, 16, gen.UWD, 4),
		gen.Path(100, 7),
		gen.Star(100, 3),
	}
	for gi, g := range gs {
		want := TotalWeight(Kruskal(g))
		for name, rt := range rts {
			f := Boruvka(rt, g)
			validateForest(t, g, f)
			if got := TotalWeight(f); got != want {
				t.Errorf("graph %d %s: boruvka weight %d, kruskal %d", gi, name, got, want)
			}
		}
	}
}

func TestSimCostRecorded(t *testing.T) {
	g := gen.Random(1000, 4000, 256, gen.UWD, 9)
	rt := par.NewSim(mta.MTA2(40))
	Boruvka(rt, g)
	if rt.SimCost().Work < int64(g.NumEdges()) {
		t.Fatalf("simulated work %d too low", rt.SimCost().Work)
	}
}

// Property: Borůvka's forest weight equals Kruskal's on random multigraphs
// (parallel edges, self-loops and duplicate weights included).
func TestQuickForestWeightsAgree(t *testing.T) {
	rt := par.NewExec(4)
	f := func(seed uint32) bool {
		n := int(seed%60) + 1
		m := n + int(seed%120)
		g := gen.Random(n, m, 8, gen.UWD, uint64(seed)) // tiny C → many ties
		return TotalWeight(Boruvka(rt, g)) == TotalWeight(Kruskal(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkKruskal(b *testing.B) {
	g := gen.Random(1<<13, 1<<15, 1<<20, gen.UWD, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Kruskal(g)
	}
}

func BenchmarkBoruvka(b *testing.B) {
	g := gen.Random(1<<13, 1<<15, 1<<20, gen.UWD, 42)
	rt := par.NewExec(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Boruvka(rt, g)
	}
}
