package mst

import (
	"sort"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// Kruskal returns a minimum spanning forest of g as a list of edges, using a
// serial sort plus union-find. For a connected graph the forest has
// n-1 edges. Ties are broken by edge-list order, so the result is
// deterministic.
func Kruskal(g *graph.Graph) []graph.Edge {
	edges := g.Edges()
	idx := make([]int, len(edges))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return edges[idx[a]].W < edges[idx[b]].W })

	parent := make([]int32, g.NumVertices())
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	var forest []graph.Edge
	for _, i := range idx {
		e := edges[i]
		ru, rv := find(e.U), find(e.V)
		if ru == rv {
			continue
		}
		parent[ru] = rv
		forest = append(forest, e)
	}
	return forest
}

// packed candidate: weight in the high 32 bits, edge index in the low 32,
// so an atomic CAS-min picks the lightest edge with deterministic
// index-based tie-breaking (which guarantees the chosen edge set is acyclic).
func pack(w uint32, idx int) int64 {
	return int64(uint64(w)<<32 | uint64(uint32(idx)))
}

const noCandidate int64 = int64(^uint64(0) >> 1) // MaxInt64

// Boruvka returns a minimum spanning forest of g computed with parallel
// Borůvka rounds on the given runtime: each round every component selects its
// minimum outgoing edge concurrently (atomic CAS-min of packed candidates),
// the chosen edges merge components, and labels are flattened by pointer
// jumping. The result is the same forest weight as Kruskal.
func Boruvka(rt *par.Runtime, g *graph.Graph) []graph.Edge {
	n := g.NumVertices()
	edges := g.Edges()
	label := make([]int32, n)
	for i := range label {
		label[i] = int32(i)
	}
	best := make([]int64, n)
	var forest []graph.Edge

	for {
		// Reset candidates for live component roots.
		rt.For(n, func(i int) {
			rt.Charge(1)
			atomic.StoreInt64(&best[i], noCandidate)
		})
		// Each edge offers itself to both endpoint components.
		rt.For(len(edges), func(i int) {
			e := edges[i]
			rt.Charge(4)
			lu := atomic.LoadInt32(&label[e.U])
			lv := atomic.LoadInt32(&label[e.V])
			if lu == lv {
				return
			}
			cand := pack(e.W, i)
			par.CASMin(&best[lu], cand)
			par.CASMin(&best[lv], cand)
		})
		// Adopt the chosen edges (serial: at most one per component, and the
		// union-find merge is inherently sequential bookkeeping; its cost is
		// charged to the model).
		merged := false
		for c := 0; c < n; c++ {
			cand := best[c]
			if cand == noCandidate || int32(c) != label[c] {
				continue
			}
			e := edges[int(uint32(uint64(cand)))]
			rt.Charge(4)
			ru, rv := root(label, e.U), root(label, e.V)
			if ru == rv {
				continue // the other endpoint's component already adopted it
			}
			if ru > rv {
				ru, rv = rv, ru
			}
			label[rv] = ru
			forest = append(forest, e)
			merged = true
		}
		if !merged {
			break
		}
		// Flatten labels for the next round.
		flatten(rt, label)
	}
	return forest
}

func root(label []int32, v int32) int32 {
	for label[v] != v {
		v = label[v]
	}
	return v
}

func flatten(rt *par.Runtime, label []int32) {
	for {
		var changed int32
		rt.For(len(label), func(vi int) {
			rt.Charge(2)
			v := int32(vi)
			p := atomic.LoadInt32(&label[v])
			pp := atomic.LoadInt32(&label[p])
			if p != pp {
				atomic.StoreInt32(&label[v], pp)
				atomic.StoreInt32(&changed, 1)
			}
		})
		if atomic.LoadInt32(&changed) == 0 {
			return
		}
	}
}

// TotalWeight sums the weights of a forest.
func TotalWeight(forest []graph.Edge) int64 {
	var total int64
	for _, e := range forest {
		total += int64(e.W)
	}
	return total
}
