// Package mst computes minimum spanning forests. Thorup's linear-time
// component-hierarchy construction is built on the minimum spanning tree
// (paper §3.1); this package provides the substrate for that construction
// path, which the repository implements as an ablation against the paper's
// naive repeated-connected-components construction.
//
// Two algorithms are provided: Kruskal (serial, sort + union-find) and
// Borůvka (parallel rounds of minimum-outgoing-edge selection, the natural
// MST algorithm for the MTA-2's flat loops).
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package mst
