package dimacs

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadGraph checks that the reader never panics on arbitrary input and
// that anything it accepts is a structurally valid graph that survives a
// write/read round trip.
func FuzzReadGraph(f *testing.F) {
	f.Add("p sp 3 4\na 1 2 5\na 2 1 5\na 2 3 7\na 3 2 7\n")
	f.Add("c comment\np sp 1 1\na 1 1 9\n")
	f.Add("p sp 2 1\na 1 2 3\n")
	f.Add("p sp 0 0\n")
	f.Add("")
	f.Add("p sp 2 2\na 1 2 1000000000\na 2 1 1000000000\n")
	f.Add("a 1 2 3\np sp 2 1\n")
	f.Add("p sp 2 1\na 1 2 -1\n")
	// Regression: arcs referencing vertex 0 / vertices beyond the declared
	// count must be rejected with a parse error, never a panic.
	f.Add("p sp 2 1\na 0 1 3\n")
	f.Add("p sp 2 1\na 1 0 3\n")
	f.Add("p sp 2 1\na 1 5 3\n")
	f.Add("p sp 2 1\na 3 1 3\n")
	f.Add("p sp 0 1\na 1 1 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadGraph(strings.NewReader(in))
		if err != nil {
			return // rejected: fine, as long as no panic
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted invalid graph: %v\ninput: %q", verr, in)
		}
		var buf bytes.Buffer
		if werr := WriteGraph(&buf, g, ""); werr != nil {
			t.Fatalf("write: %v", werr)
		}
		g2, rerr := ReadGraph(&buf)
		if rerr != nil {
			t.Fatalf("round trip rejected: %v", rerr)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %v vs %v", g2, g)
		}
	})
}

// FuzzReadSources checks the .ss parser never panics and bounds its output.
func FuzzReadSources(f *testing.F) {
	f.Add("p aux sp ss 2\ns 1\ns 7\n")
	f.Add("s 0\n")
	f.Add("c\n\n\ns 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		sources, err := ReadSources(strings.NewReader(in))
		if err != nil {
			return
		}
		for _, s := range sources {
			if s < 0 {
				t.Fatalf("negative source %d accepted from %q", s, in)
			}
		}
	})
}
