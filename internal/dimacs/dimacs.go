package dimacs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/graph"
)

// ReadGraph parses a .gr file into an undirected graph. Arcs that appear in
// both directions with equal weight are collapsed into a single undirected
// edge; an arc that appears in only one direction is kept as one undirected
// edge.
func ReadGraph(r io.Reader) (*graph.Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var (
		b        *graph.Builder
		nVerts   int64
		declared int64
		seen     int64
		line     int
		// pending counts each (min,max,w) arc; a reverse arc cancels one.
		pending map[[3]int64]int64
	)
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == 'c' {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "p":
			if b != nil {
				return nil, fmt.Errorf("dimacs: line %d: duplicate problem line", line)
			}
			if len(fields) != 4 || fields[1] != "sp" {
				return nil, fmt.Errorf("dimacs: line %d: malformed problem line %q", line, text)
			}
			n, err := strconv.ParseInt(fields[2], 10, 32)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("dimacs: line %d: bad vertex count %q", line, fields[2])
			}
			m, err := strconv.ParseInt(fields[3], 10, 64)
			if err != nil || m < 0 {
				return nil, fmt.Errorf("dimacs: line %d: bad arc count %q", line, fields[3])
			}
			nVerts = n
			declared = m
			b = graph.NewBuilder(int(n))
			pending = make(map[[3]int64]int64)
		case "a":
			if b == nil {
				return nil, fmt.Errorf("dimacs: line %d: arc before problem line", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("dimacs: line %d: malformed arc %q", line, text)
			}
			u, err1 := strconv.ParseInt(fields[1], 10, 32)
			v, err2 := strconv.ParseInt(fields[2], 10, 32)
			w, err3 := strconv.ParseInt(fields[3], 10, 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("dimacs: line %d: malformed arc %q", line, text)
			}
			// Explicit 1-based range check, phrased in the file's own
			// coordinates. Vertex 0 and ids past the problem line's count are
			// the classic off-by-one corruptions; without this guard the
			// builder's 0-based error message would misreport them.
			if u < 1 || v < 1 {
				return nil, fmt.Errorf("dimacs: line %d: vertex ids are 1-based, got %d %d", line, u, v)
			}
			if u > nVerts || v > nVerts {
				return nil, fmt.Errorf("dimacs: line %d: arc (%d,%d) references a vertex beyond the declared count %d", line, u, v, nVerts)
			}
			if w < 1 || w > int64(graph.MaxWeight) {
				return nil, fmt.Errorf("dimacs: line %d: weight %d out of [1,%d]", line, w, graph.MaxWeight)
			}
			seen++
			lo, hi := u-1, v-1
			if lo > hi {
				lo, hi = hi, lo
			}
			key := [3]int64{lo, hi, w}
			if pending[key] > 0 && lo != hi {
				// Reverse of an arc we already have: same undirected edge.
				pending[key]--
				continue
			}
			pending[key]++
			if err := b.AddEdge(int32(u-1), int32(v-1), uint32(w)); err != nil {
				return nil, fmt.Errorf("dimacs: line %d: %v", line, err)
			}
		default:
			return nil, fmt.Errorf("dimacs: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dimacs: read: %v", err)
	}
	if b == nil {
		return nil, fmt.Errorf("dimacs: no problem line")
	}
	if declared != 0 && seen != declared {
		return nil, fmt.Errorf("dimacs: problem line declares %d arcs, file has %d", declared, seen)
	}
	g := b.Build()
	return g, nil
}

// WriteGraph emits g as a .gr file using the Challenge convention of two arcs
// per undirected edge (one for self-loops). Output is buffered (1 MiB) and
// arc lines are formatted with strconv into a reused scratch buffer rather
// than per-line fmt calls, so exporting a large graph is neither
// syscall-bound nor allocation-bound. Every write error is checked, and a
// failing sink (full disk, closed pipe) aborts the export at the first
// failed flush instead of formatting the remaining millions of lines.
func WriteGraph(w io.Writer, g *graph.Graph, comment string) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if comment != "" {
		for _, l := range strings.Split(comment, "\n") {
			if _, err := fmt.Fprintf(bw, "c %s\n", l); err != nil {
				return fmt.Errorf("dimacs: write: %w", err)
			}
		}
	}
	if _, err := fmt.Fprintf(bw, "p sp %d %d\n", g.NumVertices(), g.NumArcs()); err != nil {
		return fmt.Errorf("dimacs: write: %w", err)
	}
	line := make([]byte, 0, 48)
	for v := int32(0); v < int32(g.NumVertices()); v++ {
		ts, ws := g.Neighbors(v)
		for i, u := range ts {
			line = append(line[:0], 'a', ' ')
			line = strconv.AppendInt(line, int64(v)+1, 10)
			line = append(line, ' ')
			line = strconv.AppendInt(line, int64(u)+1, 10)
			line = append(line, ' ')
			line = strconv.AppendUint(line, uint64(ws[i]), 10)
			line = append(line, '\n')
			// bufio's error is sticky: the first failed flush surfaces here
			// and stops the export immediately.
			if _, err := bw.Write(line); err != nil {
				return fmt.Errorf("dimacs: write: %w", err)
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("dimacs: write: %w", err)
	}
	return nil
}

// ReadSources parses a .ss auxiliary file listing SSSP source vertices.
func ReadSources(r io.Reader) ([]int32, error) {
	sc := bufio.NewScanner(r)
	var out []int32
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || text[0] == 'c' || text[0] == 'p' {
			continue
		}
		fields := strings.Fields(text)
		if fields[0] != "s" || len(fields) != 2 {
			return nil, fmt.Errorf("dimacs: line %d: malformed source line %q", line, text)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("dimacs: line %d: bad source %q", line, fields[1])
		}
		out = append(out, int32(v-1))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteSources emits a .ss file.
func WriteSources(w io.Writer, sources []int32) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "p aux sp ss %d\n", len(sources))
	for _, s := range sources {
		fmt.Fprintf(bw, "s %d\n", s+1)
	}
	return bw.Flush()
}
