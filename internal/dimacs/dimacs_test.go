package dimacs

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
)

func TestReadSimpleGraph(t *testing.T) {
	in := `c tiny test graph
p sp 3 4
a 1 2 5
a 2 1 5
a 2 3 7
a 3 2 7
`
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumVertices(), g.NumEdges())
	}
	d := dijkstra.SSSP(g, 0)
	if d[2] != 12 {
		t.Fatalf("d[2] = %d", d[2])
	}
}

func TestReadSingleArcPerEdge(t *testing.T) {
	in := "p sp 2 1\na 1 2 3\n"
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || g.Degree(0) != 1 || g.Degree(1) != 1 {
		t.Fatalf("bad graph: %v", g)
	}
}

func TestReadParallelEdgesPreserved(t *testing.T) {
	// Two distinct parallel undirected edges, each listed as two arcs.
	in := "p sp 2 4\na 1 2 3\na 2 1 3\na 1 2 3\na 2 1 3\n"
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("m=%d, want 2 parallel edges", g.NumEdges())
	}
}

func TestReadSelfLoop(t *testing.T) {
	in := "p sp 1 1\na 1 1 9\n"
	g, err := ReadGraph(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("m=%d", g.NumEdges())
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"no problem line":    "a 1 2 3\n",
		"duplicate p":        "p sp 2 0\np sp 2 0\n",
		"bad record":         "p sp 2 1\nx 1 2 3\n",
		"zero weight":        "p sp 2 1\na 1 2 0\n",
		"negative weight":    "p sp 2 1\na 1 2 -4\n",
		"zero-based vertex":  "p sp 2 1\na 0 1 3\n",
		"zero-based target":  "p sp 2 1\na 1 0 3\n",
		"out-of-range":       "p sp 2 1\na 1 3 3\n",
		"out-of-range src":   "p sp 2 1\na 3 1 3\n",
		"arc in empty graph": "p sp 0 1\na 1 1 1\n",
		"arc count mismatch": "p sp 2 2\na 1 2 3\n",
		"malformed arc":      "p sp 2 1\na 1 2\n",
		"not sp":             "p max 2 1\n",
		"empty":              "",
	}
	for name, in := range cases {
		if _, err := ReadGraph(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestGraphRoundTrip(t *testing.T) {
	g := gen.Random(200, 800, 1<<10, gen.PWD, 5)
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g, "round trip\nsecond comment line"); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed sizes: %v vs %v", g2, g)
	}
	// Distances must be identical.
	a, b := dijkstra.SSSP(g, 0), dijkstra.SSSP(g2, 0)
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("distance changed at %d: %d vs %d", v, a[v], b[v])
		}
	}
}

func TestSourcesRoundTrip(t *testing.T) {
	want := []int32{0, 5, 17, 123}
	var buf bytes.Buffer
	if err := WriteSources(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSources(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestReadSourcesErrors(t *testing.T) {
	for name, in := range map[string]string{
		"malformed": "s\n",
		"zero":      "s 0\n",
		"garbage":   "s abc\n",
	} {
		if _, err := ReadSources(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestVertexRangeErrorsAreDescriptive: out-of-range arcs must produce errors
// phrased in the file's 1-based coordinates with the offending line number,
// not the in-memory 0-based builder message.
func TestVertexRangeErrorsAreDescriptive(t *testing.T) {
	_, err := ReadGraph(strings.NewReader("p sp 2 1\na 0 1 3\n"))
	if err == nil || !strings.Contains(err.Error(), "1-based") || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("vertex-0 error not descriptive: %v", err)
	}
	_, err = ReadGraph(strings.NewReader("p sp 2 1\na 1 5 3\n"))
	if err == nil || !strings.Contains(err.Error(), "declared count 2") || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("beyond-count error not descriptive: %v", err)
	}
}

// errAfterWriter fails every write after the first n bytes, like a disk
// filling up mid-export.
type errAfterWriter struct {
	n       int
	written int
}

func (w *errAfterWriter) Write(p []byte) (int, error) {
	if w.written+len(p) > w.n {
		return 0, fmt.Errorf("sink full after %d bytes", w.written)
	}
	w.written += len(p)
	return len(p), nil
}

// WriteGraph must surface sink errors instead of silently dropping output,
// for failures in the header as well as deep in the arc stream.
func TestWriteGraphPropagatesErrors(t *testing.T) {
	b := graph.NewBuilder(2000)
	for i := int32(0); i < 1999; i++ {
		b.MustAddEdge(i, i+1, uint32(i%7+1))
	}
	g := b.Build()
	for _, limit := range []int{0, 10, 20000} { // header, comment, mid-arcs
		if err := WriteGraph(&errAfterWriter{n: limit}, g, "big export"); err == nil {
			t.Errorf("limit %d: error not propagated", limit)
		}
	}
	// Sanity: an unbounded sink still round-trips.
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g, "big export"); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Fingerprint() != g.Fingerprint() {
		t.Fatal("round trip changed the graph")
	}
}
