// Package dimacs reads and writes the 9th DIMACS Implementation Challenge
// shortest-path file formats, the formats of the instances the paper
// evaluates on (paper §4.2):
//
//   - .gr graph files:   "c <comment>", "p sp <n> <m>", "a <u> <v> <w>"
//   - .ss source files:  "c <comment>", "p aux sp ss <k>", "s <v>"
//
// Vertices are 1-based in the files and 0-based in memory. The Challenge's
// .gr files list each undirected edge as two arcs; ReadGraph accepts both
// that convention (pairs are collapsed) and single-arc-per-edge files.
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package dimacs
