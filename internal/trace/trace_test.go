package trace

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestNilSafety(t *testing.T) {
	// Every recording call must be a no-op on nil receivers: instrumentation
	// sites never branch on whether tracing is enabled.
	var tr *Trace
	var sp *Span
	tr.SetGraph("g")
	tr.SetSolver("s")
	sp = tr.StartSpan("x")
	sp.SetAttr("k", 1)
	sp.End()
	sp.StartChild("y").End()
	if tr.ID() != "" || tr.Root() != nil || tr.Export() != nil || sp.Trace() != nil {
		t.Fatal("nil trace accessors must return zero values")
	}
	var tc *Tracer
	if tc.Enabled() {
		t.Fatal("nil tracer is disabled")
	}
	tc.Finish(nil, 200)
	if tc.Traces(Filter{}) != nil || tc.Retained() != 0 {
		t.Fatal("nil tracer holds no traces")
	}
	ctx := context.Background()
	if SpanFromContext(ctx) != nil || FromContext(ctx) != nil {
		t.Fatal("untraced context must yield nil span and trace")
	}
	if got := NewContext(ctx, nil); got != ctx {
		t.Fatal("NewContext(nil) must return ctx unchanged")
	}
	if got := WithSpan(ctx, nil); got != ctx {
		t.Fatal("WithSpan(nil) must return ctx unchanged")
	}
}

func TestSpanTreeShape(t *testing.T) {
	tc := New(Config{SampleN: 1, RingSize: 4})
	tr := tc.StartRequest("", "sssp")
	if tr == nil {
		t.Fatal("enabled tracer returned nil trace")
	}
	if tr.ID() == "" {
		t.Fatal("generated ID is empty")
	}
	adm := tr.StartSpan("admission_wait")
	adm.End()
	solve := tr.StartSpan("solve")
	solve.SetAttr("solver", "thorup")
	pool := solve.StartChild("pool_checkout")
	pool.End()
	solve.End()
	tr.SetGraph("g1")
	tr.SetSolver("thorup")
	tc.Finish(tr, 200)

	got := tc.Traces(Filter{})
	if len(got) != 1 {
		t.Fatalf("retained %d traces, want 1", len(got))
	}
	j := got[0]
	if j.Graph != "g1" || j.Solver != "thorup" || j.Status != 200 || j.Endpoint != "sssp" {
		t.Fatalf("trace metadata = %+v", j)
	}
	if len(j.Spans.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(j.Spans.Children))
	}
	if j.Spans.Children[0].Name != "admission_wait" || j.Spans.Children[1].Name != "solve" {
		t.Fatalf("children = %v, %v", j.Spans.Children[0].Name, j.Spans.Children[1].Name)
	}
	sv := j.Spans.Children[1]
	if sv.Attrs["solver"] != "thorup" {
		t.Fatalf("solve attrs = %v", sv.Attrs)
	}
	if len(sv.Children) != 1 || sv.Children[0].Name != "pool_checkout" {
		t.Fatalf("solve children = %+v", sv.Children)
	}
	// Stage durations never exceed the trace's wall time.
	var sum int64
	for _, c := range j.Spans.Children {
		sum += c.DurUS
	}
	if float64(sum)/1e3 > j.DurMS+0.001 {
		t.Fatalf("stage sum %dus exceeds wall %fms", sum, j.DurMS)
	}
}

func TestUnendedSpanNeverAppears(t *testing.T) {
	tc := New(Config{SampleN: 1})
	tr := tc.StartRequest("", "sssp")
	tr.StartSpan("abandoned") // e.g. a singleflight wait by the leader itself
	tr.StartSpan("kept").End()
	tc.Finish(tr, 200)
	j := tc.Traces(Filter{})[0]
	if len(j.Spans.Children) != 1 || j.Spans.Children[0].Name != "kept" {
		t.Fatalf("children = %+v, want only 'kept'", j.Spans.Children)
	}
}

func TestSpansAfterFinishAreDropped(t *testing.T) {
	tc := New(Config{SampleN: 1})
	tr := tc.StartRequest("", "sssp")
	late := tr.StartSpan("background_solve")
	tc.Finish(tr, 504)
	late.End() // the query outlived its deadline and finished later
	j := tc.Traces(Filter{})[0]
	if len(j.Spans.Children) != 0 {
		t.Fatalf("post-finish span was attached: %+v", j.Spans.Children)
	}
}

func TestSpanCap(t *testing.T) {
	tc := New(Config{SampleN: 1})
	tr := tc.StartRequest("", "batch")
	for i := 0; i < maxSpans+100; i++ {
		tr.StartSpan("item").End()
	}
	tc.Finish(tr, 200)
	j := tc.Traces(Filter{})[0]
	if len(j.Spans.Children) != maxSpans-1 { // root occupies one slot
		t.Fatalf("attached %d spans, want %d", len(j.Spans.Children), maxSpans-1)
	}
	if j.DroppedSpans != 101 {
		t.Fatalf("dropped %d spans, want 101", j.DroppedSpans)
	}
	if tc.Counter("spans_dropped") != 101 {
		t.Fatalf("spans_dropped counter = %d", tc.Counter("spans_dropped"))
	}
}

func TestExplicitIDValidationAndRetention(t *testing.T) {
	tc := New(Config{SampleN: 1 << 30}) // sampling effectively off
	ok := tc.StartRequest("req-1234.ABC", "sssp")
	if ok.ID() != "req-1234.ABC" {
		t.Fatalf("valid client ID replaced: %q", ok.ID())
	}
	bad := tc.StartRequest("evil\nheader", "sssp")
	if bad.ID() == "evil\nheader" || bad.ID() == "" {
		t.Fatalf("invalid client ID accepted: %q", bad.ID())
	}
	tc.Finish(ok, 200)
	tc.Finish(bad, 200)
	got := tc.Traces(Filter{})
	if len(got) != 1 || got[0].ID != "req-1234.ABC" {
		t.Fatalf("explicit-ID retention: got %+v", got)
	}
}

func TestTailSampling(t *testing.T) {
	tc := New(Config{SampleN: 10, RingSize: 64})
	for i := 0; i < 100; i++ {
		tc.Finish(tc.StartRequest("", "sssp"), 200)
	}
	if n := tc.Counter("traces_sampled"); n != 10 {
		t.Fatalf("sampled %d of 100 at 1-in-10, want 10", n)
	}
	if n := tc.Retained(); n != 10 {
		t.Fatalf("retained %d, want 10", n)
	}
}

func TestSlowQueryLogAndRetention(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	tc := New(Config{
		SampleN:   1 << 30,
		SlowQuery: time.Nanosecond, // everything is slow
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	tr := tc.StartRequest("slow-abc", "dist")
	tr.SetGraph("g1")
	tr.SetSolver("dijkstra")
	sp := tr.StartSpan("solve")
	time.Sleep(time.Millisecond)
	sp.End()
	tc.Finish(tr, 200)
	if tc.Counter("slow_queries") != 1 {
		t.Fatal("slow query not counted")
	}
	if len(lines) != 1 {
		t.Fatalf("slow log lines = %v", lines)
	}
	for _, want := range []string{"trace=slow-abc", "endpoint=dist", `graph="g1"`, "solver=dijkstra", "solve="} {
		if !strings.Contains(lines[0], want) {
			t.Fatalf("slow log line %q missing %q", lines[0], want)
		}
	}
	if got := tc.Traces(Filter{MinDur: time.Millisecond}); len(got) != 1 || got[0].ID != "slow-abc" {
		t.Fatalf("slow trace not retained/filterable: %+v", got)
	}
}

func TestTracesFilter(t *testing.T) {
	tc := New(Config{SampleN: 1, RingSize: 16})
	mk := func(graph, solver string) {
		tr := tc.StartRequest("", "sssp")
		tr.SetGraph(graph)
		tr.SetSolver(solver)
		tc.Finish(tr, 200)
	}
	mk("a", "thorup")
	mk("b", "thorup")
	mk("a", "delta")
	if got := tc.Traces(Filter{Graph: "a"}); len(got) != 2 {
		t.Fatalf("graph filter: %d, want 2", len(got))
	}
	if got := tc.Traces(Filter{Solver: "delta"}); len(got) != 1 {
		t.Fatalf("solver filter: %d, want 1", len(got))
	}
	if got := tc.Traces(Filter{Limit: 1}); len(got) != 1 {
		t.Fatalf("limit: %d, want 1", len(got))
	}
	if got := tc.Traces(Filter{MinDur: time.Hour}); len(got) != 0 {
		t.Fatalf("min duration filter: %d, want 0", len(got))
	}
}

// TestRingBoundConcurrentWriters is the issue's bound guarantee: the ring
// never exceeds its capacity no matter how many writers race into it.
func TestRingBoundConcurrentWriters(t *testing.T) {
	const ringSize = 32
	tc := New(Config{SampleN: 1, RingSize: ringSize})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr := tc.StartRequest("", "sssp")
				tr.StartSpan("solve").End()
				tc.Finish(tr, 200)
				if n := tc.Retained(); n > ringSize {
					t.Errorf("ring holds %d > bound %d", n, ringSize)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n := tc.Retained(); n != ringSize {
		t.Fatalf("ring holds %d after 3200 writes, want full bound %d", n, ringSize)
	}
	if got := tc.Counter("traces_retained"); got != 16*200 {
		t.Fatalf("retained counter = %d, want 3200", got)
	}
}

func TestConcurrentSpanRecording(t *testing.T) {
	// Batch workers record spans into one trace concurrently; meaningful
	// under -race (make race covers this package).
	tc := New(Config{SampleN: 1})
	tr := tc.StartRequest("", "batch")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 32; i++ {
				sp := tr.StartSpan("item")
				sp.SetAttr("i", i)
				sp.StartChild("cache_lookup").End()
				sp.End()
				tr.SetSolver("thorup")
			}
		}(w)
	}
	wg.Wait()
	tc.Finish(tr, 200)
	j := tc.Traces(Filter{})[0]
	if len(j.Spans.Children) == 0 {
		t.Fatal("no spans recorded")
	}
}

func TestStageHistogramsAggregateUnretained(t *testing.T) {
	// Stage histograms must see every finished trace, retained or not.
	tc := New(Config{SampleN: 1 << 30})
	for i := 0; i < 5; i++ {
		tr := tc.StartRequest("", "sssp")
		tr.StartSpan("solve").End()
		tc.Finish(tr, 200)
	}
	if tc.Retained() != 0 {
		t.Fatal("nothing should be retained at this sample rate")
	}
	stages := tc.StatsSnapshot()["stages"].(map[string]obs.HistogramSnapshot)
	if stages["solve"].Count != 5 {
		t.Fatalf("solve stage count = %d, want 5", stages["solve"].Count)
	}
	if stages["sssp"].Count != 5 { // the root span observes under the endpoint name
		t.Fatalf("root stage count = %d, want 5", stages["sssp"].Count)
	}
}

func TestStatsSnapshot(t *testing.T) {
	tc := New(Config{SampleN: 100, RingSize: 8, SlowQuery: time.Second})
	tr := tc.StartRequest("", "sssp")
	tr.StartSpan("solve").End()
	tc.Finish(tr, 200)
	snap := tc.StatsSnapshot()
	if snap["enabled"] != true || snap["sample_n"] != 100 || snap["ring_size"] != 8 {
		t.Fatalf("snapshot config = %+v", snap)
	}
	if snap["traces_started"].(int64) != 1 {
		t.Fatalf("traces_started = %v", snap["traces_started"])
	}
	if _, ok := snap["stages"].(map[string]obs.HistogramSnapshot); !ok {
		t.Fatalf("stages section missing: %T", snap["stages"])
	}
}

func TestValidID(t *testing.T) {
	for id, want := range map[string]bool{
		"abc":                   true,
		"A-b_c.9":               true,
		"":                      false,
		"with space":            false,
		"new\nline":             false,
		strings.Repeat("x", 64): true,
		strings.Repeat("x", 65): false,
	} {
		if ValidID(id) != want {
			t.Errorf("ValidID(%q) = %v, want %v", id, !want, want)
		}
	}
}

func TestNewIDUnique(t *testing.T) {
	tc := New(Config{SampleN: 1})
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := tc.NewID()
		if len(id) != 16 || seen[id] {
			t.Fatalf("bad or duplicate ID %q", id)
		}
		seen[id] = true
	}
}
