// Package trace is the request-tracing and profiling layer of the query
// daemon: per-request span trees that attribute one query's latency to the
// stages it passed through — admission wait, catalog generation acquire,
// engine cache lookup, singleflight wait, pool checkout, solve — plus the
// solver-phase counters (core.Trace) attached to the solve span.
//
// Every traced request gets a Trace carrying an ID (client-supplied via the
// X-Trace-Id header or generated), a root span, and children recorded by the
// layers the request crosses; the Trace travels in the context.Context. Span
// recording is always on while the Tracer is enabled — cheap enough for every
// request — and retention is tail-based: a finished trace is kept in a
// bounded lock-free ring buffer when it is slow (Config.SlowQuery), carries a
// client-supplied ID, or lands on the 1-in-Config.SampleN counter sample.
// Slow traces additionally emit one structured slow-query log line. Every
// finished trace — retained or not — feeds the per-stage latency histograms
// that a /metrics endpoint exposes.
//
// See DESIGN.md §10 "Request tracing & profiling" for the design rationale
// and OPERATIONS.md for the operator-facing knobs and endpoints.
package trace
