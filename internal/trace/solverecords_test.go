package trace

import (
	"testing"
)

// SolveRecords must extract exactly the executed solves: solver, source
// count, duration, and integer phase counters — skipping non-solve spans,
// non-integer attrs, and the model's own predicted_us annotation.
func TestSolveRecords(t *testing.T) {
	tr := newTrace("t1", "sssp", false)
	tr.SetGraph("road")

	lk := tr.StartSpan("cache_lookup")
	lk.SetAttr("hit", false)
	lk.End()

	sp := tr.StartSpan("solve")
	sp.SetAttr("solver", "thorup")
	sp.SetAttr("sources", 3)
	sp.SetAttr("visits", int64(12345))
	sp.SetAttr("relaxations", 678)
	sp.SetAttr("predicted_us", int64(999)) // model output, not a feature
	sp.SetAttr("note", "not a counter")
	sp.End()

	sp2 := tr.StartSpan("solve")
	sp2.SetAttr("solver", "dijkstra")
	sp2.SetAttr("sources", 1)
	sp2.End()

	// A solve span with no solver attr (malformed) is dropped.
	sp3 := tr.StartSpan("solve")
	sp3.End()

	tr.finish(200)
	recs := tr.SolveRecords()
	if len(recs) != 2 {
		t.Fatalf("got %d records: %+v", len(recs), recs)
	}
	r := recs[0]
	if r.Graph != "road" || r.Solver != "thorup" || r.Sources != 3 {
		t.Fatalf("record 0: %+v", r)
	}
	if r.Counters["visits"] != 12345 || r.Counters["relaxations"] != 678 {
		t.Fatalf("counters: %+v", r.Counters)
	}
	if _, ok := r.Counters["predicted_us"]; ok {
		t.Fatal("predicted_us leaked into counters")
	}
	if _, ok := r.Counters["note"]; ok {
		t.Fatal("string attr leaked into counters")
	}
	if recs[1].Solver != "dijkstra" || recs[1].Sources != 1 || recs[1].Counters != nil {
		t.Fatalf("record 1: %+v", recs[1])
	}

	var nilTrace *Trace
	if nilTrace.SolveRecords() != nil {
		t.Fatal("nil trace should yield nil records")
	}
}

// The OnFinish hook fires exactly once per finished trace, retained or not.
func TestTracerOnFinish(t *testing.T) {
	var got []*Trace
	tc := New(Config{SampleN: 1000, OnFinish: func(tr *Trace) { got = append(got, tr) }})
	for i := 0; i < 3; i++ {
		tr := tc.StartRequest("", "sssp")
		sp := tr.StartSpan("solve")
		sp.SetAttr("solver", "delta")
		sp.SetAttr("sources", 1)
		sp.End()
		tc.Finish(tr, 200)
		tc.Finish(tr, 200) // idempotent: must not re-fire
	}
	if len(got) != 3 {
		t.Fatalf("OnFinish fired %d times, want 3", len(got))
	}
	// SampleN=1000 retained (almost) nothing, but the hook still saw solves.
	if recs := got[1].SolveRecords(); len(recs) != 1 || recs[0].Solver != "delta" {
		t.Fatalf("records via hook: %+v", recs)
	}
}
