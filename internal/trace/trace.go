package trace

import (
	"context"
	"sync"
	"time"
)

// maxSpans bounds one trace's span tree. A /batch request may carry thousands
// of items; beyond the cap further spans are counted as dropped instead of
// attached, so a single request can never hold unbounded trace memory.
const maxSpans = 512

// Trace is one request's span tree. It is created by Tracer.StartRequest,
// carried through the request in its context.Context, populated by the layers
// the request crosses, and sealed by Tracer.Finish. All methods are safe for
// concurrent use (batch workers record spans concurrently) and nil-safe, so
// instrumentation sites never branch on whether tracing is enabled.
type Trace struct {
	id       string
	endpoint string
	explicit bool // ID was supplied by the client (always retained)
	start    time.Time

	mu       sync.Mutex
	root     *Span
	nspans   int
	dropped  int64
	graph    string
	solver   string
	backend  string
	status   int
	durUS    int64
	finished bool
}

// Span is one timed stage of a trace. A span is created with StartChild (or
// Trace.StartSpan for a child of the root), optionally annotated with
// SetAttr, and attached to the tree by End; a span that is never ended never
// appears. Once attached a span is immutable.
type Span struct {
	trace    *Trace
	parent   *Span
	name     string
	start    time.Time
	startUS  int64
	durUS    int64
	attrs    map[string]any
	children []*Span
	ended    bool
}

// newTrace builds an unfinished trace with its root span attached.
func newTrace(id, endpoint string, explicit bool) *Trace {
	t := &Trace{id: id, endpoint: endpoint, explicit: explicit, start: time.Now()}
	t.root = &Span{trace: t, name: endpoint, start: t.start}
	t.nspans = 1
	return t
}

// ID returns the trace identifier ("" for a nil trace).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Root returns the root span (nil for a nil trace).
func (t *Trace) Root() *Span {
	if t == nil {
		return nil
	}
	return t.root
}

// StartSpan starts a child of the root span.
func (t *Trace) StartSpan(name string) *Span { return t.Root().StartChild(name) }

// SetGraph records the catalog graph this request resolved to, for
// /debug/traces?graph= filtering.
func (t *Trace) SetGraph(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.finished {
		t.graph = name
	}
	t.mu.Unlock()
}

// SetSolver records the solver the engine picked, for
// /debug/traces?solver= filtering. A batch of mixed solvers keeps the last
// one recorded; per-item solvers live on the item spans.
func (t *Trace) SetSolver(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.finished {
		t.solver = name
	}
	t.mu.Unlock()
}

// SetBackend records the backend a routing tier sent this request to, for
// /debug/traces?backend= filtering. A retried request keeps the last
// (answering) backend; per-attempt backends live on the attempt spans.
func (t *Trace) SetBackend(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if !t.finished {
		t.backend = name
	}
	t.mu.Unlock()
}

// StartChild starts a new span under s. The span is not part of the trace
// until End is called, so an abandoned span (e.g. a singleflight wait that
// turned out to be the leader's own execution) simply never appears.
func (s *Span) StartChild(name string) *Span {
	if s == nil || s.trace == nil {
		return nil
	}
	return &Span{
		trace:   s.trace,
		parent:  s,
		name:    name,
		start:   time.Now(),
		startUS: time.Since(s.trace.start).Microseconds(),
	}
}

// SetAttr annotates the span. Must be called before End; attributes are
// immutable once the span is attached.
func (s *Span) SetAttr(key string, v any) {
	if s == nil || s.ended {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = v
}

// Trace returns the trace this span records into (nil-safe).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.trace
}

// End stamps the span's duration and attaches it to its parent. Spans ending
// after the trace is finished (a query that outlived its HTTP deadline keeps
// solving in the background) or beyond the per-trace span cap are counted as
// dropped rather than attached, which keeps finished traces immutable.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.durUS = time.Since(s.start).Microseconds()
	t := s.trace
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished || t.nspans >= maxSpans {
		t.dropped++
		return
	}
	t.nspans++
	s.parent.children = append(s.parent.children, s)
}

// finish seals the trace: stamps the total duration and status and refuses
// all later span attachment. Returns false if already finished.
func (t *Trace) finish(status int) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.finished {
		return false
	}
	t.finished = true
	t.status = status
	t.durUS = time.Since(t.start).Microseconds()
	t.root.durUS = t.durUS
	t.root.ended = true
	return true
}

// TraceJSON is the wire form of one finished trace, as served by
// GET /debug/traces.
type TraceJSON struct {
	ID           string    `json:"id"`
	Endpoint     string    `json:"endpoint"`
	Graph        string    `json:"graph,omitempty"`
	Solver       string    `json:"solver,omitempty"`
	Backend      string    `json:"backend,omitempty"`
	Status       int       `json:"status"`
	Start        time.Time `json:"start"`
	DurMS        float64   `json:"dur_ms"`
	DroppedSpans int64     `json:"dropped_spans,omitempty"`
	Spans        *SpanJSON `json:"spans"`
}

// SpanJSON is the wire form of one span. StartUS is the offset from the
// trace's start; children appear in the order they ended.
type SpanJSON struct {
	Name     string         `json:"name"`
	StartUS  int64          `json:"start_us"`
	DurUS    int64          `json:"dur_us"`
	Attrs    map[string]any `json:"attrs,omitempty"`
	Children []*SpanJSON    `json:"children,omitempty"`
}

// Export deep-copies the trace into its JSON form. Safe to call on a live
// trace (the copy is taken under the trace lock), though the ring only ever
// holds finished ones.
func (t *Trace) Export() *TraceJSON {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return &TraceJSON{
		ID:           t.id,
		Endpoint:     t.endpoint,
		Graph:        t.graph,
		Solver:       t.solver,
		Backend:      t.backend,
		Status:       t.status,
		Start:        t.start,
		DurMS:        float64(t.durUS) / 1e3,
		DroppedSpans: t.dropped,
		Spans:        t.root.export(),
	}
}

func (s *Span) export() *SpanJSON {
	out := &SpanJSON{Name: s.name, StartUS: s.startUS, DurUS: s.durUS}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]any, len(s.attrs))
		for k, v := range s.attrs {
			out.Attrs[k] = v
		}
	}
	for _, c := range s.children {
		out.Children = append(out.Children, c.export())
	}
	return out
}

// SolveRecord is one executed solve extracted from a finished trace: the
// solver that ran, the source-set size, the measured solve-stage duration
// (the cost model's training label), and any integer counters the solver
// attached to its span (Thorup's core.Trace phase counters). The graph is
// the trace-level graph name; per-graph features (n, m, weight class) are
// resolved from the catalog by the consumer.
type SolveRecord struct {
	Graph    string
	Solver   string
	Sources  int
	DurUS    int64
	Counters map[string]int64
}

// SolveRecords extracts every "solve" span from the trace — one per solver
// execution this request led (cache hits and singleflight joiners record no
// solve span). Safe on finished traces; nil-safe.
func (t *Trace) SolveRecords() []SolveRecord {
	if t == nil {
		return nil
	}
	var out []SolveRecord
	t.mu.Lock()
	graph := t.graph
	t.mu.Unlock()
	t.visit(func(s *Span) {
		if s.name != "solve" {
			return
		}
		rec := SolveRecord{Graph: graph, DurUS: s.durUS}
		for k, v := range s.attrs {
			switch k {
			case "solver":
				if name, ok := v.(string); ok {
					rec.Solver = name
				}
			case "sources":
				if n, ok := v.(int); ok {
					rec.Sources = n
				}
			case "predicted_us":
				// Already a model output, not a training feature.
			default:
				var c int64
				switch n := v.(type) {
				case int:
					c = int64(n)
				case int64:
					c = n
				default:
					continue // non-integer attr: not a phase counter
				}
				if rec.Counters == nil {
					rec.Counters = make(map[string]int64, 8)
				}
				rec.Counters[k] = c
			}
		}
		if rec.Solver != "" {
			out = append(out, rec)
		}
	})
	return out
}

// visit walks the attached span tree under the trace lock. Used by the tracer
// to feed stage histograms at finish time.
func (t *Trace) visit(f func(s *Span)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	var walk func(*Span)
	walk = func(s *Span) {
		f(s)
		for _, c := range s.children {
			walk(c)
		}
	}
	walk(t.root)
}

// ctxKey keys the current span in a context.
type ctxKey struct{}

// NewContext returns ctx carrying the trace's root span as the current span.
func NewContext(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, t.root)
}

// WithSpan returns ctx with sp as the current span, so downstream layers
// (engine batch items, nested stages) parent their spans under it.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sp)
}

// SpanFromContext returns the current span, or nil when the request is not
// traced. All Span methods are nil-safe, so callers use the result directly.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(ctxKey{}).(*Span)
	return sp
}

// FromContext returns the trace the current span records into, or nil.
func FromContext(ctx context.Context) *Trace { return SpanFromContext(ctx).Trace() }
