package trace

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Config parameterizes a Tracer.
type Config struct {
	// SampleN tail-samples 1 in N finished traces into the ring buffer on top
	// of the slow and explicit-ID retention rules. 0 disables the tracer
	// entirely (StartRequest returns nil and nothing is recorded); 1 retains
	// every trace.
	SampleN int
	// RingSize is the retained-trace ring capacity (default 256).
	RingSize int
	// SlowQuery is the slow-query threshold: a finished trace at least this
	// slow is always retained and logged through Logf. 0 disables the slow
	// path.
	SlowQuery time.Duration
	// Logf receives slow-query lines (default: drop them).
	Logf func(format string, args ...any)
	// OnFinish, when set, receives every finished trace exactly once —
	// retained or not — after it is sealed. The cost-model collector hooks
	// here to harvest SolveRecords. Runs synchronously on the request
	// goroutine, so it must be cheap and must not block.
	OnFinish func(*Trace)
}

// Counter names of Tracer.StatsSnapshot, in snapshot order.
const (
	cStarted      = "traces_started"
	cRetained     = "traces_retained"
	cSampled      = "traces_sampled"
	cSlow         = "slow_queries"
	cDroppedSpans = "spans_dropped"
)

// Tracer records request traces: always-on span recording (cheap per
// request), tail-based retention into a bounded lock-free ring, a slow-query
// log, and per-stage latency histograms aggregated over every finished trace.
// A nil *Tracer is valid and disabled. Safe for concurrent use.
type Tracer struct {
	cfg      Config
	idBase   uint64        // random per-process base XOR'd into generated IDs
	idSeq    atomic.Uint64 // generated-ID sequence
	tailSeq  atomic.Uint64 // finished-trace counter for 1-in-N sampling
	ring     ring
	counters *obs.Group

	stageMu sync.RWMutex
	stages  map[string]*obs.Histogram
}

// New creates a tracer. A SampleN of 0 returns a disabled (but non-nil)
// tracer, which keeps wiring uniform: StartRequest just returns nil traces.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 256
	}
	t := &Tracer{
		cfg:      cfg,
		counters: obs.NewGroup(cStarted, cRetained, cSampled, cSlow, cDroppedSpans),
		stages:   make(map[string]*obs.Histogram),
	}
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		t.idBase = binary.LittleEndian.Uint64(b[:])
	}
	t.ring.slots = make([]atomic.Pointer[Trace], cfg.RingSize)
	return t
}

// Enabled reports whether the tracer records anything at all.
func (t *Tracer) Enabled() bool { return t != nil && t.cfg.SampleN > 0 }

// NewID returns a fresh 16-hex-digit trace ID: a per-process random base
// XOR'd with a sequence number — unique within the process, no per-request
// entropy read. Hand-rolled hex keeps this off the fmt slow path; it runs
// once per traced request.
func (t *Tracer) NewID() string {
	const hexdigits = "0123456789abcdef"
	v := t.idBase ^ t.idSeq.Add(1)
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}

// ValidID reports whether a client-supplied X-Trace-Id is acceptable:
// non-empty, at most 64 bytes, and limited to [A-Za-z0-9._-]. Anything else
// is ignored and a fresh ID generated, so a hostile header can neither grow
// memory nor corrupt the log format.
func ValidID(id string) bool {
	if id == "" || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return true
}

// StartRequest begins a trace for one request. id is the client-supplied
// X-Trace-Id ("" or invalid generates one); client-supplied IDs mark the
// trace for unconditional retention — a client that sends an ID is debugging.
// Returns nil when the tracer is disabled; every downstream recording call is
// nil-safe.
func (t *Tracer) StartRequest(id, endpoint string) *Trace {
	if !t.Enabled() {
		return nil
	}
	explicit := ValidID(id)
	if !explicit {
		id = t.NewID()
	}
	t.counters.C(cStarted).Inc()
	return newTrace(id, endpoint, explicit)
}

// Finish seals a finished request's trace, feeds the stage histograms, and
// applies the tail retention rules: slow traces are logged and retained,
// explicit-ID traces are retained, and 1 in SampleN of everything else is
// retained. Idempotent; a nil trace is a no-op.
func (t *Tracer) Finish(tr *Trace, status int) {
	if t == nil || tr == nil || !tr.finish(status) {
		return
	}
	slow := t.cfg.SlowQuery > 0 && tr.durUS >= t.cfg.SlowQuery.Microseconds()
	tr.visit(func(s *Span) {
		t.stage(s.name).Observe(time.Duration(s.durUS) * time.Microsecond)
	})
	if tr.dropped > 0 {
		t.counters.C(cDroppedSpans).Add(tr.dropped)
	}
	sampled := t.tailSeq.Add(1)%uint64(t.cfg.SampleN) == 0
	if sampled {
		t.counters.C(cSampled).Inc()
	}
	if slow {
		t.counters.C(cSlow).Inc()
		if t.cfg.Logf != nil {
			t.cfg.Logf("slowquery trace=%s endpoint=%s graph=%q solver=%s status=%d dur=%s stages=[%s]",
				tr.id, tr.endpoint, tr.graph, tr.solver, status,
				(time.Duration(tr.durUS) * time.Microsecond).String(), stageLine(tr))
		}
	}
	if slow || sampled || tr.explicit {
		t.counters.C(cRetained).Inc()
		t.ring.put(tr)
	}
	if t.cfg.OnFinish != nil {
		t.cfg.OnFinish(tr)
	}
}

// stageLine renders the root's direct children as "name=dur" pairs for the
// slow-query log line.
func stageLine(tr *Trace) string {
	var b strings.Builder
	tr.mu.Lock()
	for i, c := range tr.root.children {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", c.name, time.Duration(c.durUS)*time.Microsecond)
	}
	tr.mu.Unlock()
	return b.String()
}

// stage returns the histogram for a span name, creating it on first use. The
// name set is small and fixed by the instrumentation sites, so the lazy map
// stays tiny; lookups take the read lock only.
func (t *Tracer) stage(name string) *obs.Histogram {
	t.stageMu.RLock()
	h, ok := t.stages[name]
	t.stageMu.RUnlock()
	if ok {
		return h
	}
	t.stageMu.Lock()
	defer t.stageMu.Unlock()
	if h, ok = t.stages[name]; ok {
		return h
	}
	h = obs.NewHistogram(nil)
	t.stages[name] = h
	return h
}

// Filter selects traces for Traces: zero values match everything.
type Filter struct {
	// MinDur keeps traces at least this slow.
	MinDur time.Duration
	// Graph keeps traces that resolved to this catalog graph.
	Graph string
	// Solver keeps traces whose (last) solver matches.
	Solver string
	// Backend keeps traces a routing tier sent to this backend.
	Backend string
	// Limit caps the result count (0 = all retained traces).
	Limit int
}

// Traces returns the retained traces matching f, newest first, exported to
// their JSON form.
func (t *Tracer) Traces(f Filter) []*TraceJSON {
	if t == nil {
		return nil
	}
	all := t.ring.snapshot()
	sort.Slice(all, func(i, j int) bool { return all[i].start.After(all[j].start) })
	out := make([]*TraceJSON, 0, len(all))
	for _, tr := range all {
		if f.MinDur > 0 && tr.durUS < f.MinDur.Microseconds() {
			continue
		}
		if f.Graph != "" && tr.graph != f.Graph {
			continue
		}
		if f.Solver != "" && tr.solver != f.Solver {
			continue
		}
		if f.Backend != "" && tr.backend != f.Backend {
			continue
		}
		out = append(out, tr.Export())
		if f.Limit > 0 && len(out) >= f.Limit {
			break
		}
	}
	return out
}

// Retained reports how many traces the ring currently holds (≤ RingSize).
func (t *Tracer) Retained() int {
	if t == nil {
		return 0
	}
	return len(t.ring.snapshot())
}

// Counter returns the named tracer counter (see the c* snapshot names).
// Unknown names panic.
func (t *Tracer) Counter(name string) int64 { return t.counters.C(name).Value() }

// StatsSnapshot returns the tracer's observable state for a /metrics
// endpoint: retention counters, configuration, and the per-stage latency
// histograms every finished trace fed.
func (t *Tracer) StatsSnapshot() map[string]any {
	if t == nil {
		return map[string]any{"enabled": false}
	}
	out := make(map[string]any, 8)
	for k, v := range t.counters.Snapshot() {
		out[k] = v
	}
	out["enabled"] = t.Enabled()
	out["sample_n"] = t.cfg.SampleN
	out["ring_size"] = t.cfg.RingSize
	out["ring_held"] = t.Retained()
	out["slow_query_ms"] = float64(t.cfg.SlowQuery) / 1e6
	stages := make(map[string]obs.HistogramSnapshot, 8)
	t.stageMu.RLock()
	for name, h := range t.stages {
		stages[name] = h.Snapshot()
	}
	t.stageMu.RUnlock()
	out["stages"] = stages
	return out
}

// ring is a bounded lock-free overwrite buffer: writers claim a slot with one
// atomic add and store unconditionally; the newest RingSize traces survive.
// Concurrent writers can never grow it past its bound because the slot array
// is fixed at construction.
type ring struct {
	seq   atomic.Uint64
	slots []atomic.Pointer[Trace]
}

func (r *ring) put(t *Trace) {
	i := r.seq.Add(1) - 1
	r.slots[i%uint64(len(r.slots))].Store(t)
}

func (r *ring) snapshot() []*Trace {
	out := make([]*Trace, 0, len(r.slots))
	for i := range r.slots {
		if t := r.slots[i].Load(); t != nil {
			out = append(out, t)
		}
	}
	return out
}
