package costmodel

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// synthSamples generates noiseless samples from known ground-truth
// coefficients over a spread of instance shapes.
func synthSamples(truth map[string][]float64, rng *rand.Rand, perSolver int) []Sample {
	var out []Sample
	for name, coef := range truth {
		for i := 0; i < perSolver; i++ {
			f := Features{
				N:         1 << (6 + rng.Intn(8)),
				MaxWeight: uint32(1) << (2 * rng.Intn(8)),
				Sources:   1 + rng.Intn(16),
			}
			f.M = int64(f.N) * int64(2+rng.Intn(6))
			x := f.Vector()
			var us float64
			for j := range x {
				us += coef[j] * x[j]
			}
			out = append(out, Sample{
				Solver: name, N: f.N, M: f.M, MaxWeight: f.MaxWeight, Sources: f.Sources,
				DurUS: int64(math.Max(1, us)),
			})
		}
	}
	return out
}

func TestFitRecoversGroundTruth(t *testing.T) {
	// thorup is native multi-source (no sources_m term); dijkstra and delta
	// pay one fold per source — the crossover structure the model must learn.
	truth := map[string][]float64{
		"dijkstra": {100, 0, 0, 0.08, 0, 0.01, 0},
		"delta":    {2000, 0, 0.02, 0, 0, 0.01, 50},
		"thorup":   {5000, 0.1, 0.05, 0, 0, 0, 0},
	}
	rng := rand.New(rand.NewSource(7))
	samples := synthSamples(truth, rng, 200)
	f, err := Fit(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("fitted file invalid: %v", err)
	}
	if f.TotalSamples != 600 {
		t.Fatalf("total samples = %d", f.TotalSamples)
	}
	m := NewModel(f)
	// Predictions must track ground truth within 5% on held-out shapes.
	for i := 0; i < 50; i++ {
		feats := Features{
			N:         1 << (6 + rng.Intn(8)),
			MaxWeight: uint32(1) << (2 * rng.Intn(8)),
			Sources:   1 + rng.Intn(16),
		}
		feats.M = int64(feats.N) * int64(2+rng.Intn(6))
		for name, coef := range truth {
			x := feats.Vector()
			var wantUS float64
			for j := range x {
				wantUS += coef[j] * x[j]
			}
			got, ok := m.Predict(name, feats)
			if !ok {
				t.Fatalf("%s: no prediction", name)
			}
			gotUS := float64(got) / float64(time.Microsecond)
			if rel := math.Abs(gotUS-wantUS) / wantUS; rel > 0.05 {
				t.Fatalf("%s on %+v: predicted %.0fµs, truth %.0fµs (rel %.3f)", name, feats, gotUS, wantUS, rel)
			}
		}
	}
	// And argmin must reproduce the ground-truth crossover: small single-
	// source instances go to dijkstra, heavy multi-source to thorup.
	small := Features{N: 64, M: 128, MaxWeight: 4, Sources: 1}
	heavy := Features{N: 8192, M: 49152, MaxWeight: 1 << 14, Sources: 16}
	if best := argmin(m, small); best != "dijkstra" {
		t.Fatalf("small instance argmin = %s", best)
	}
	if best := argmin(m, heavy); best != "thorup" {
		t.Fatalf("heavy instance argmin = %s", best)
	}
}

func argmin(m *Model, f Features) string {
	best, bestD := "", time.Duration(math.MaxInt64)
	for _, name := range m.Solvers() {
		if d, ok := m.Predict(name, f); ok && d < bestD {
			best, bestD = name, d
		}
	}
	return best
}

// Per-graph calibration: two graphs follow the same linear law except one
// runs a consistent 2x slower (structure the feature basis cannot see).
// The fitted file must carry factors that separate them again.
func TestFitPerGraphCalibration(t *testing.T) {
	truth := []float64{100, 0, 0, 0.08, 0, 0.01, 0}
	rng := rand.New(rand.NewSource(13))
	var samples []Sample
	for i := 0; i < 64; i++ {
		f := Features{
			N:         1 << (6 + rng.Intn(8)),
			MaxWeight: uint32(1) << (2 * rng.Intn(8)),
			Sources:   1 + rng.Intn(16),
		}
		f.M = int64(f.N) * int64(2+rng.Intn(6))
		x := f.Vector()
		var us float64
		for j := range x {
			us += truth[j] * x[j]
		}
		base := Sample{Solver: "dijkstra", N: f.N, M: f.M, MaxWeight: f.MaxWeight, Sources: f.Sources}
		cold, hot := base, base
		cold.Graph, cold.DurUS = "cold", int64(math.Max(1, us))
		hot.Graph, hot.DurUS = "hot", int64(math.Max(1, 2*us))
		samples = append(samples, cold, hot)
	}
	// Below MinSamplesPerGraph: no factor for this graph.
	samples = append(samples, Sample{Graph: "sparse", Solver: "dijkstra", N: 64, M: 128, Sources: 1, DurUS: 50})
	f, err := Fit(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("calibrated file invalid: %v", err)
	}
	if _, ok := f.Graphs["sparse"]; ok {
		t.Fatal("under-sampled graph got a calibration factor")
	}
	hotF, coldF := f.Graphs["hot"]["dijkstra"], f.Graphs["cold"]["dijkstra"]
	if hotF == 0 || coldF == 0 {
		t.Fatalf("missing factors: %+v", f.Graphs)
	}
	if ratio := hotF / coldF; ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("hot/cold factor ratio = %.3f, want ~2", ratio)
	}
	m := NewModel(f)
	feats := Features{N: 1024, M: 4096, MaxWeight: 1 << 8, Sources: 4}
	x := feats.Vector()
	var wantUS float64
	for j := range x {
		wantUS += truth[j] * x[j]
	}
	coldPred, _ := m.PredictFor("cold", "dijkstra", feats)
	hotPred, _ := m.PredictFor("hot", "dijkstra", feats)
	coldUS, hotUS := float64(coldPred)/float64(time.Microsecond), float64(hotPred)/float64(time.Microsecond)
	if rel := math.Abs(coldUS-wantUS) / wantUS; rel > 0.1 {
		t.Fatalf("cold prediction %.0fµs vs truth %.0fµs (rel %.3f)", coldUS, wantUS, rel)
	}
	if rel := math.Abs(hotUS-2*wantUS) / (2 * wantUS); rel > 0.1 {
		t.Fatalf("hot prediction %.0fµs vs truth %.0fµs (rel %.3f)", hotUS, 2*wantUS, rel)
	}
	// An unknown graph gets the uncalibrated global prediction, which must
	// sit between the two calibrated planes.
	global, _ := m.PredictFor("never-seen", "dijkstra", feats)
	if global < coldPred || global > hotPred {
		t.Fatalf("global prediction %v outside [%v, %v]", global, coldPred, hotPred)
	}
}

func TestFitThresholds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	samples := synthSamples(map[string][]float64{"dijkstra": {100, 0, 0, 0.08, 0, 0.004, 0}}, rng, 20)
	// A solver below MinSamplesPerSolver is omitted, not fitted badly.
	samples = append(samples, Sample{Solver: "rare", N: 10, M: 20, Sources: 1, DurUS: 5})
	// Non-positive durations are discarded.
	samples = append(samples, Sample{Solver: "dijkstra", N: 10, M: 20, Sources: 1, DurUS: 0})
	f, err := Fit(samples, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := f.Solvers["rare"]; ok {
		t.Fatal("under-sampled solver should be omitted")
	}
	if f.Solvers["dijkstra"].Samples != 20 {
		t.Fatalf("dijkstra samples = %d", f.Solvers["dijkstra"].Samples)
	}
	if _, err := Fit(nil, 0); err == nil || !strings.Contains(err.Error(), "usable samples") {
		t.Fatalf("empty fit: %v", err)
	}
}

// A daemon serving one graph with one query shape exports a dataset where
// every sample has identical features — rank-deficient, so only the ridge
// term keeps the system solvable. The samples are also deliberately slow
// (seconds): with the 1/y² relative weighting that makes every accumulated
// entry ~1e-13, which once starved both the ridge term and the pivot check
// before the system was weight-normalized. Fit must still succeed and
// predict the observed cost at the training point.
func TestFitDegenerateSingleInstance(t *testing.T) {
	var samples []Sample
	for i := 0; i < 16; i++ {
		samples = append(samples, Sample{
			Graph: "only", Solver: "dijkstra",
			N: 16384, M: 65536, MaxWeight: 16384, Sources: 1,
			DurUS: 3_000_000 + int64(i%2)*200_000, // ~3s per solve
		})
	}
	f, err := Fit(samples, 0)
	if err != nil {
		t.Fatalf("single-instance fit must not be singular: %v", err)
	}
	m := NewModel(f)
	feats := Features{N: 16384, M: 65536, MaxWeight: 16384, Sources: 1}
	d, ok := m.PredictFor("only", "dijkstra", feats)
	if !ok {
		t.Fatal("no prediction at the training point")
	}
	got := float64(d) / float64(time.Microsecond)
	if want := 3_100_000.0; math.Abs(got-want)/want > 0.1 {
		t.Fatalf("training-point prediction %vµs, want ~%vµs", got, want)
	}
}
