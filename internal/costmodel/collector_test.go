package costmodel

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCollectorRing(t *testing.T) {
	c := NewCollector(4)
	if c.Len() != 0 || c.Total() != 0 {
		t.Fatal("fresh collector not empty")
	}
	for i := 1; i <= 6; i++ {
		c.Add(Sample{Solver: "dijkstra", N: i, DurUS: int64(i)})
	}
	if c.Len() != 4 || c.Total() != 6 {
		t.Fatalf("len=%d total=%d", c.Len(), c.Total())
	}
	snap := c.Snapshot()
	for i, s := range snap {
		if s.N != i+3 {
			t.Fatalf("snapshot not oldest-first: %+v", snap)
		}
		if s.V != DatasetVersion {
			t.Fatalf("sample missing dataset version: %+v", s)
		}
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	c := NewCollector(16)
	c.Add(Sample{Graph: "g", Gen: 3, Solver: "delta", N: 100, M: 400, MaxWeight: 255, Sources: 2, DurUS: 1234,
		Counters: map[string]int64{"relaxations": 800}})
	c.Add(Sample{Graph: "g", Gen: 3, Solver: "bfs", N: 100, M: 400, MaxWeight: 1, Sources: 1, DurUS: 77})
	var buf bytes.Buffer
	n, err := c.WriteJSONL(&buf)
	if err != nil || n != 2 {
		t.Fatalf("WriteJSONL n=%d err=%v", n, err)
	}
	got, err := ReadSamples(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Counters["relaxations"] != 800 || got[1].Solver != "bfs" {
		t.Fatalf("round trip: %+v", got)
	}
	f := got[0].Features()
	if f.N != 100 || f.M != 400 || f.MaxWeight != 255 || f.Sources != 2 {
		t.Fatalf("features projection: %+v", f)
	}
}

func TestReadSamplesRefusals(t *testing.T) {
	if _, err := ReadSamples(strings.NewReader(`{"v":1,"solver":"x","dur_us":1}` + "\n\n")); err != nil {
		t.Fatalf("blank lines should be fine: %v", err)
	}
	if _, err := ReadSamples(strings.NewReader(`{"v":99,"solver":"x"}`)); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future dataset version accepted: %v", err)
	}
	if _, err := ReadSamples(strings.NewReader(`{"v":1}`)); err == nil || !strings.Contains(err.Error(), "solver") {
		t.Fatalf("missing solver accepted: %v", err)
	}
	if _, err := ReadSamples(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}
