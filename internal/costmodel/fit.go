package costmodel

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// DefaultRidge is the default L2 regularization strength (applied in the
// column-scaled basis, so it is dimensionless).
const DefaultRidge = 1e-6

// MinSamplesPerSolver is how many samples a solver needs before Fit will
// emit coefficients for it. Below that, the solver is left out of the file
// and the static policy keeps handling it.
const MinSamplesPerSolver = 8

// MinSamplesPerGraph is how many samples a (graph, solver) pair needs
// before Fit will emit a per-graph calibration factor for it (File.Graphs).
const MinSamplesPerGraph = 3

// MaxCalibration bounds per-graph calibration factors: a residual outside
// [1/MaxCalibration, MaxCalibration] means the global fit is nonsense for
// that pair, and amplifying it severalfold-squared would let one bad batch
// of samples dominate selection.
const MaxCalibration = 64.0

// Fit fits one ridge-regularized least-squares regression per solver over
// the FeatureNames basis and returns the (unsealed) coefficients file.
// ridge <= 0 selects DefaultRidge. Samples with non-positive durations are
// ignored; solvers with fewer than MinSamplesPerSolver usable samples are
// omitted.
//
// The loss is relative, not absolute: each residual is divided by the
// sample's own duration (weighted least squares, weight 1/y²). Solver
// selection compares predictions across solvers at one instance, so a 100µs
// miss on a 200µs query matters far more than a 100µs miss on a 50ms one —
// an unweighted fit lets the slowest instances buy accuracy where it is
// worth the least.
//
// The normal equations are solved in a column-scaled basis (each feature
// divided by its max absolute value) so the 7×7 system stays
// well-conditioned even though raw feature magnitudes span ~10 orders;
// coefficients are unscaled before being written out.
func Fit(samples []Sample, ridge float64) (*File, error) {
	if ridge <= 0 {
		ridge = DefaultRidge
	}
	bySolver := make(map[string][]Sample)
	for _, s := range samples {
		if s.DurUS <= 0 {
			continue
		}
		bySolver[s.Solver] = append(bySolver[s.Solver], s)
	}
	f := &File{
		Version:        FileVersion,
		Features:       append([]string(nil), FeatureNames...),
		DatasetVersion: DatasetVersion,
		Solvers:        make(map[string]SolverCoef),
	}
	names := make([]string, 0, len(bySolver))
	for name := range bySolver {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rows := bySolver[name]
		if len(rows) < MinSamplesPerSolver {
			continue
		}
		coef, err := fitOne(rows, ridge)
		if err != nil {
			return nil, fmt.Errorf("costmodel: fit %s: %w", name, err)
		}
		f.Solvers[name] = SolverCoef{Coef: coef, Samples: len(rows)}
		f.TotalSamples += len(rows)
	}
	if len(f.Solvers) == 0 {
		return nil, fmt.Errorf("costmodel: no solver had %d+ usable samples", MinSamplesPerSolver)
	}
	calibrate(f, samples)
	return f, nil
}

// calibrate fills File.Graphs: for every (graph, solver) pair with
// MinSamplesPerGraph+ usable samples and a fitted solver, the geometric
// mean of measured/predicted becomes that pair's multiplicative correction.
// The geometric mean is the least-squares answer in log space, matching the
// relative-error loss of the underlying fit.
func calibrate(f *File, samples []Sample) {
	m := NewModel(f)
	type key struct{ graph, solver string }
	logRatios := make(map[key][]float64)
	for _, s := range samples {
		if s.DurUS <= 0 || s.Graph == "" {
			continue
		}
		if _, ok := f.Solvers[s.Solver]; !ok {
			continue
		}
		pred, ok := m.Predict(s.Solver, s.Features())
		if !ok {
			continue
		}
		predUS := float64(pred) / float64(time.Microsecond)
		if predUS < 1 {
			predUS = 1 // clamped or sub-µs predictions: avoid exploding ratios
		}
		k := key{s.Graph, s.Solver}
		logRatios[k] = append(logRatios[k], math.Log(float64(s.DurUS)/predUS))
	}
	for k, lr := range logRatios {
		if len(lr) < MinSamplesPerGraph {
			continue
		}
		sum := 0.0
		for _, v := range lr {
			sum += v
		}
		factor := math.Exp(sum / float64(len(lr)))
		factor = math.Min(math.Max(factor, 1/MaxCalibration), MaxCalibration)
		if f.Graphs == nil {
			f.Graphs = make(map[string]map[string]float64)
		}
		if f.Graphs[k.graph] == nil {
			f.Graphs[k.graph] = make(map[string]float64)
		}
		f.Graphs[k.graph][k.solver] = factor
	}
}

func fitOne(rows []Sample, ridge float64) ([]float64, error) {
	const k = NumFeatures
	// Column scales: max |x_j| over the training rows, 1 where degenerate.
	var scale [k]float64
	xs := make([][k]float64, len(rows))
	for i, s := range rows {
		xs[i] = s.Features().Vector()
		for j, v := range xs[i] {
			if a := math.Abs(v); a > scale[j] {
				scale[j] = a
			}
		}
	}
	for j := range scale {
		if scale[j] == 0 {
			scale[j] = 1
		}
	}
	// Accumulate XᵀWX and XᵀWy in the scaled basis, with w = 1/y² so the
	// loss is relative error.
	var xtx [k][k]float64
	var xty [k]float64
	var wsum float64
	for i, s := range rows {
		var x [k]float64
		for j := range x {
			x[j] = xs[i][j] / scale[j]
		}
		y := float64(s.DurUS)
		w := 1 / (y * y)
		wsum += w
		for a := 0; a < k; a++ {
			xty[a] += w * x[a] * y
			for b := a; b < k; b++ {
				xtx[a][b] += w * x[a] * x[b]
			}
		}
	}
	// Normalize by the total weight so the system is O(1)-scale no matter
	// how slow the samples are (w = 1/y² makes raw entries vanish for
	// second-long queries, which would starve both the ridge term and the
	// solver's pivot check). The minimizer is unchanged.
	for a := 0; a < k; a++ {
		xty[a] /= wsum
		for b := a; b < k; b++ {
			xtx[a][b] /= wsum
		}
	}
	for a := 0; a < k; a++ {
		for b := 0; b < a; b++ {
			xtx[a][b] = xtx[b][a]
		}
		xtx[a][a] += ridge
	}
	beta, err := solveLinear(xtx, xty)
	if err != nil {
		return nil, err
	}
	out := make([]float64, k)
	for j := range out {
		out[j] = beta[j] / scale[j]
	}
	return out, nil
}

// solveLinear solves Ax = b by Gaussian elimination with partial pivoting.
func solveLinear(a [NumFeatures][NumFeatures]float64, b [NumFeatures]float64) ([NumFeatures]float64, error) {
	const k = NumFeatures
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return b, fmt.Errorf("singular system at column %d", col)
		}
		a[col], a[pivot] = a[pivot], a[col]
		b[col], b[pivot] = b[pivot], b[col]
		inv := 1 / a[col][col]
		for r := col + 1; r < k; r++ {
			f := a[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c < k; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	var x [NumFeatures]float64
	for r := k - 1; r >= 0; r-- {
		sum := b[r]
		for c := r + 1; c < k; c++ {
			sum -= a[r][c] * x[c]
		}
		x[r] = sum / a[r][r]
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return x, fmt.Errorf("non-finite solution")
		}
	}
	return x, nil
}
