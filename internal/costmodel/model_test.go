package costmodel

import (
	"math"
	"strings"
	"testing"
	"time"
)

func validFile(t *testing.T) *File {
	t.Helper()
	f := &File{
		Version:        FileVersion,
		Features:       append([]string(nil), FeatureNames...),
		DatasetVersion: DatasetVersion,
		TrainedAt:      "2026-08-07T00:00:00Z",
		TotalSamples:   64,
		Solvers: map[string]SolverCoef{
			"dijkstra": {Coef: []float64{100, 0, 0, 0.05, 0, 0.002, 0}, Samples: 32},
			"delta":    {Coef: []float64{2000, 0, 0.01, 0, 0, 0.0005, 0}, Samples: 32},
		},
	}
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFileRoundTrip(t *testing.T) {
	f := validFile(t)
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got.Checksum != f.Checksum || got.TotalSamples != f.TotalSamples {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, f)
	}
	if len(got.Solvers) != 2 || got.Solvers["dijkstra"].Samples != 32 {
		t.Fatalf("solvers lost in round trip: %+v", got.Solvers)
	}
	// Re-encoding a parsed file must be byte-identical (stable artifact).
	again, err := got.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("re-encode not byte-identical")
	}
}

func TestParseRefusals(t *testing.T) {
	base := func() *File { return validFile(t) }
	encode := func(f *File) []byte {
		data, err := f.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "decode"},
		{"garbage", []byte("not json"), "decode"},
		{"trailing", append(encode(base()), []byte("{}")...), "trailing"},
		{"unknown field", []byte(`{"version":1,"bogus":true}`), "bogus"},
		{"missing checksum", []byte(`{"version":1,"features":[],"dataset_version":1,"total_samples":0,"solvers":{}}`), "missing checksum"},
	}
	{
		f := base()
		f.Version = FileVersion + 1
		cases = append(cases, struct {
			name string
			data []byte
			want string
		}{"future version", encode(f), "stale"})
	}
	{
		f := base()
		f.Features[2] = "edges" // renamed feature = schema drift
		cases = append(cases, struct {
			name string
			data []byte
			want string
		}{"schema drift", encode(f), "stale"})
	}
	{
		f := base()
		f.DatasetVersion = DatasetVersion + 1
		cases = append(cases, struct {
			name string
			data []byte
			want string
		}{"dataset version", encode(f), "stale"})
	}
	{
		f := base()
		f.Solvers["dijkstra"] = SolverCoef{Coef: []float64{1, 2, 3}, Samples: 1}
		cases = append(cases, struct {
			name string
			data []byte
			want string
		}{"short coef", encode(f), "coefficients"})
	}
	{
		f := base()
		f.Solvers = nil
		cases = append(cases, struct {
			name string
			data []byte
			want string
		}{"no solvers", encode(f), "no solvers"})
	}
	{
		f := base()
		f.Graphs = map[string]map[string]float64{"g": {"unknown-solver": 2}}
		cases = append(cases, struct {
			name string
			data []byte
			want string
		}{"calibration unknown solver", encode(f), "unknown solver"})
	}
	{
		f := base()
		f.Graphs = map[string]map[string]float64{"g": {"dijkstra": -1}}
		cases = append(cases, struct {
			name string
			data []byte
			want string
		}{"negative calibration", encode(f), "positive finite"})
	}
	{
		f := base()
		f.Graphs = map[string]map[string]float64{"": {"dijkstra": 2}}
		cases = append(cases, struct {
			name string
			data []byte
			want string
		}{"empty graph name", encode(f), "empty graph"})
	}
	{
		// Flip one byte inside a sealed file: checksum must catch it.
		data := encode(base())
		i := strings.Index(string(data), "32")
		data[i] = '9'
		cases = append(cases, struct {
			name string
			data []byte
			want string
		}{"bit flip", data, "checksum mismatch"})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.data)
			if err == nil {
				t.Fatal("Parse accepted a bad file")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestValidateNonFinite(t *testing.T) {
	f := validFile(t)
	c := f.Solvers["delta"]
	c.Coef[3] = math.NaN()
	f.Solvers["delta"] = c
	if err := f.Validate(); err == nil || !strings.Contains(err.Error(), "not finite") {
		t.Fatalf("want non-finite refusal, got %v", err)
	}
}

func TestModelPredict(t *testing.T) {
	f := validFile(t)
	f.Solvers["zeroed"] = SolverCoef{Coef: make([]float64, NumFeatures), Samples: 10}
	f.Solvers["negative"] = SolverCoef{Coef: []float64{-1000, 0, 0, 0, 0, 0, 0}, Samples: 10}
	m := NewModel(f)

	feats := Features{N: 1000, M: 4000, MaxWeight: 255, Sources: 2}
	d, ok := m.Predict("dijkstra", feats)
	if !ok {
		t.Fatal("dijkstra should predict")
	}
	x := feats.Vector()
	wantUS := 100 + 0.05*x[3] + 0.002*x[5]
	// Duration truncates to whole nanoseconds, so allow 1ns of slack.
	if got := float64(d) / float64(time.Microsecond); math.Abs(got-wantUS) > 1e-3 {
		t.Fatalf("predict = %vµs, want %vµs", got, wantUS)
	}
	if _, ok := m.Predict("absent", feats); ok {
		t.Fatal("unknown solver must not predict")
	}
	if _, ok := m.Predict("zeroed", feats); ok {
		t.Fatal("all-zero solver must fall back to static policy, not predict")
	}
	if d, ok := m.Predict("negative", feats); !ok || d != 0 {
		t.Fatalf("negative prediction should clamp to 0, got %v ok=%v", d, ok)
	}
	want := []string{"delta", "dijkstra", "negative", "zeroed"}
	got := m.Solvers()
	if len(got) != len(want) {
		t.Fatalf("Solvers() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Solvers() = %v, want %v", got, want)
		}
	}
}

// PredictFor applies the file's per-graph calibration; files without it —
// and graphs the training traces never covered — behave exactly like the
// global Predict, and the calibrated file round-trips bit-exactly.
func TestModelPredictFor(t *testing.T) {
	f := validFile(t)
	f.Graphs = map[string]map[string]float64{"roads": {"dijkstra": 2.5}}
	if err := f.Seal(); err != nil {
		t.Fatal(err)
	}
	data, err := f.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Parse(data)
	if err != nil {
		t.Fatalf("Parse calibrated file: %v", err)
	}
	if got.Graphs["roads"]["dijkstra"] != 2.5 {
		t.Fatalf("calibration lost in round trip: %+v", got.Graphs)
	}
	m := NewModel(got)
	feats := Features{N: 1000, M: 4000, MaxWeight: 255, Sources: 2}
	global, ok := m.Predict("dijkstra", feats)
	if !ok {
		t.Fatal("no global prediction")
	}
	calibrated, ok := m.PredictFor("roads", "dijkstra", feats)
	if !ok {
		t.Fatal("no calibrated prediction")
	}
	// Duration truncates to whole nanoseconds, so allow 1ns of slack.
	if want := 2.5 * float64(global); math.Abs(float64(calibrated)-want) > 1 {
		t.Fatalf("calibrated = %v, want 2.5x global %v", calibrated, global)
	}
	// Uncovered graph and uncovered solver: global behavior.
	if d, ok := m.PredictFor("unknown-graph", "dijkstra", feats); !ok || d != global {
		t.Fatalf("unknown graph: %v ok=%v, want global %v", d, ok, global)
	}
	if d, ok := m.PredictFor("roads", "delta", feats); !ok {
		t.Fatal("delta should predict")
	} else if g, _ := m.Predict("delta", feats); d != g {
		t.Fatalf("uncalibrated solver on calibrated graph: %v != %v", d, g)
	}
}

func TestProviderFallbackAndReload(t *testing.T) {
	var nilP *Provider
	if _, ok := nilP.Predict("dijkstra", Features{N: 10}); ok {
		t.Fatal("nil provider must not predict")
	}
	nilP.CountModelPick() // must not panic
	nilP.ObservePrediction(time.Millisecond, time.Millisecond)
	if s := nilP.StatsSnapshot(); s["enabled"] != false {
		t.Fatalf("nil provider snapshot: %v", s)
	}

	p := NewProvider()
	if p.Enabled() {
		t.Fatal("fresh provider should be disabled")
	}
	dir := t.TempDir()
	good := dir + "/model.json"
	data, err := validFile(t).Encode()
	if err != nil {
		t.Fatal(err)
	}
	writeFile(t, good, data)
	if err := p.LoadFile(good); err != nil {
		t.Fatal(err)
	}
	if !p.Enabled() || p.Path() != good {
		t.Fatal("model not installed")
	}
	// Corrupt reload: the old model must survive.
	bad := dir + "/bad.json"
	data[len(data)/2] ^= 0xff
	writeFile(t, bad, data)
	if err := p.LoadFile(bad); err == nil {
		t.Fatal("corrupt file accepted")
	}
	if !p.Enabled() || p.Path() != good {
		t.Fatal("failed reload must keep the previous model")
	}
	snap := p.StatsSnapshot()
	ctrs := snap["counters"].(map[string]int64)
	if ctrs[CtrReloads] != 1 || ctrs[CtrReloadFailures] != 1 {
		t.Fatalf("reload counters: %v", ctrs)
	}
}

func TestObservePredictionAccounting(t *testing.T) {
	p := NewProvider()
	p.ObservePrediction(2*time.Millisecond, time.Millisecond)   // over, rel err 1.0
	p.ObservePrediction(time.Millisecond, 4*time.Millisecond)   // under, rel err 0.75
	p.ObservePrediction(3*time.Millisecond, 3*time.Millisecond) // exact
	ctrs := p.Counters().Snapshot()
	if ctrs[CtrPredictions] != 3 || ctrs[CtrPredictionOver] != 2 || ctrs[CtrPredictionUnder] != 1 {
		t.Fatalf("counters: %v", ctrs)
	}
	if got := p.PredictedCost.Snapshot().Count; got != 3 {
		t.Fatalf("predicted_cost count = %d", got)
	}
	if got := p.AbsError.Snapshot().Count; got != 3 {
		t.Fatalf("abs_error count = %d", got)
	}
	rel := p.RelError.Snapshot()
	if rel.Count != 3 {
		t.Fatalf("rel_error count = %d", rel.Count)
	}
	if math.Abs(rel.Sum-(1.0+0.75+0)) > 1e-12 {
		t.Fatalf("rel_error sum = %v", rel.Sum)
	}
}
