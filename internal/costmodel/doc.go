// Package costmodel is the learned latency model behind solver selection,
// predictive admission, and capacity planning (DESIGN.md §14).
//
// The paper's central finding is that no single SSSP solver wins everywhere:
// the right choice shifts with instance shape (n, m, weight range, source
// count). The serving plane therefore records every executed solve as a
// training Sample (instance features plus the measured solve-stage duration),
// exports the collected samples as a versioned JSON-lines dataset, and — once
// cmd/costfit has fitted a small per-solver linear regression over that
// dataset — selects solvers by predicted-cost argmin instead of the static
// threshold ladder.
//
// The package has four parts:
//
//   - Features/Sample/Collector: the pre-solve feature vector (n, m,
//     n·log₂n, source count, source·m cross term, weight class), the
//     versioned dataset record, and the bounded in-memory ring the daemon
//     fills from the trace layer's per-query solve records.
//   - File: the versioned, CRC-64/ECMA-checksummed coefficients artifact
//     cmd/costfit writes and ssspd loads (-cost-model). Parse refuses
//     corruption, version mismatches, and feature-schema drift, so a stale
//     model can never silently misprice queries.
//   - Model/Provider: pure-Go inference (one dot product per candidate
//     solver) behind an atomically swappable holder, so the admin API can
//     hot-reload retrained coefficients under live traffic; Provider also
//     owns the observability surface (prediction counters, predicted-cost
//     and prediction-error histograms) that makes model drift visible in
//     /metrics.
//   - Fit: the ridge-regularized least-squares fitter shared by cmd/costfit
//     and the benchmark harness.
//
// Everything degrades safely: with no model loaded (or one whose
// coefficients are all zero for every candidate), engine.Policy falls back
// to the static heuristic unchanged.
package costmodel
