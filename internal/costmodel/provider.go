package costmodel

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Counter names exported by Provider.StatsSnapshot under "counters".
const (
	CtrPredictions       = "predictions"
	CtrModelPicks        = "model_picks"
	CtrStaticFallbacks   = "static_fallbacks"
	CtrAdmissionRejected = "admission_rejected_predicted"
	CtrPredictionOver    = "prediction_over"
	CtrPredictionUnder   = "prediction_under"
	CtrReloads           = "reloads"
	CtrReloadFailures    = "reload_failures"
)

// RelErrorBuckets are the relative-error histogram bounds: |pred-actual| /
// actual. 0.1 means the prediction was within 10% of the truth.
var RelErrorBuckets = []float64{0.1, 0.25, 0.5, 1, 2, 4, 8}

// Provider is the atomically swappable model holder plus the model's
// observability surface. One Provider lives for the life of the process;
// the model behind it can be replaced under live traffic (hot reload).
// All methods are safe on a nil *Provider, which behaves as "no model".
type Provider struct {
	model atomic.Pointer[Model]

	mu   sync.Mutex // guards path (reload bookkeeping only)
	path string

	counters *obs.Group
	// PredictedCost is the distribution of predicted solve costs.
	PredictedCost *obs.Histogram
	// AbsError is |predicted - actual| per observed solve.
	AbsError *obs.Histogram
	// RelError is |predicted - actual| / actual per observed solve.
	RelError *obs.FloatHistogram
}

// NewProvider returns an empty provider (no model loaded; everything falls
// back to the static policy until LoadFile or SetModel succeeds).
func NewProvider() *Provider {
	return &Provider{
		counters: obs.NewGroup(
			CtrPredictions, CtrModelPicks, CtrStaticFallbacks,
			CtrAdmissionRejected, CtrPredictionOver, CtrPredictionUnder,
			CtrReloads, CtrReloadFailures,
		),
		PredictedCost: obs.NewHistogram(nil),
		AbsError:      obs.NewHistogram(nil),
		RelError:      obs.NewFloatHistogram(RelErrorBuckets),
	}
}

// Model returns the current model, or nil when none is loaded.
func (p *Provider) Model() *Model {
	if p == nil {
		return nil
	}
	return p.model.Load()
}

// Enabled reports whether a model is loaded.
func (p *Provider) Enabled() bool { return p.Model() != nil }

// SetModel swaps the model directly (tests, and LoadFile's success path).
func (p *Provider) SetModel(m *Model) {
	if p == nil {
		return
	}
	p.model.Store(m)
}

// LoadFile reads, verifies, and installs a coefficients file. On any
// failure the previous model (if any) stays installed and keeps serving —
// a bad push can never take out selection.
func (p *Provider) LoadFile(path string) error {
	if p == nil {
		return fmt.Errorf("costmodel: nil provider")
	}
	f, err := ReadFile(path)
	if err != nil {
		p.counters.C(CtrReloadFailures).Inc()
		return err
	}
	p.model.Store(NewModel(f))
	p.mu.Lock()
	p.path = path
	p.mu.Unlock()
	p.counters.C(CtrReloads).Inc()
	return nil
}

// Path returns the path of the last successfully loaded file.
func (p *Provider) Path() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.path
}

// Predict prices solver name on features f with the current model.
// ok is false with no model, an unknown solver, or all-zero coefficients.
func (p *Provider) Predict(name string, f Features) (time.Duration, bool) {
	return p.PredictFor("", name, f)
}

// PredictFor is Predict with the model's per-graph calibration applied
// when the training traces covered graph (Model.PredictFor).
func (p *Provider) PredictFor(graph, name string, f Features) (time.Duration, bool) {
	m := p.Model()
	if m == nil {
		return 0, false
	}
	return m.PredictFor(graph, name, f)
}

// CountModelPick records that the model's argmin chose this query's solver.
func (p *Provider) CountModelPick() {
	if p != nil {
		p.counters.C(CtrModelPicks).Inc()
	}
}

// CountStaticFallback records that selection fell back to the static
// heuristic (no model, inapplicable solvers, or zero coefficients).
func (p *Provider) CountStaticFallback() {
	if p != nil {
		p.counters.C(CtrStaticFallbacks).Inc()
	}
}

// CountAdmissionRejected records one predictive-admission 503.
func (p *Provider) CountAdmissionRejected() {
	if p != nil {
		p.counters.C(CtrAdmissionRejected).Inc()
	}
}

// ObservePrediction records one prediction-vs-actual pair: exactly one call
// per executed solve that had a prediction (cache hits and dedup joiners
// never reach it).
func (p *Provider) ObservePrediction(predicted, actual time.Duration) {
	if p == nil {
		return
	}
	p.counters.C(CtrPredictions).Inc()
	p.PredictedCost.Observe(predicted)
	diff := predicted - actual
	if diff >= 0 {
		p.counters.C(CtrPredictionOver).Inc()
	} else {
		p.counters.C(CtrPredictionUnder).Inc()
		diff = -diff
	}
	p.AbsError.Observe(diff)
	if actual > 0 {
		p.RelError.Observe(float64(diff) / float64(actual))
	}
}

// Counters exposes the provider's counter group (nil-safe; nil when the
// provider is nil).
func (p *Provider) Counters() *obs.Group {
	if p == nil {
		return nil
	}
	return p.counters
}

// StatsSnapshot is the /metrics "costmodel" payload: model identity,
// selection/admission counters, and the drift histograms.
func (p *Provider) StatsSnapshot() map[string]any {
	if p == nil {
		return map[string]any{"enabled": false}
	}
	out := map[string]any{
		"enabled":              false,
		"path":                 p.Path(),
		"counters":             p.counters.Snapshot(),
		"predicted_cost":       p.PredictedCost.Snapshot(),
		"prediction_abs_error": p.AbsError.Snapshot(),
		"prediction_rel_error": p.RelError.Snapshot(),
	}
	if m := p.Model(); m != nil {
		f := m.File()
		out["enabled"] = true
		out["model_version"] = f.Version
		out["trained_at"] = f.TrainedAt
		out["total_samples"] = f.TotalSamples
		out["solvers"] = m.Solvers()
		out["calibrated_graphs"] = len(f.Graphs)
	}
	return out
}
