package costmodel

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Sample is one dataset record: the instance features the prediction would
// have been made from, the solver that actually ran, the per-phase trace
// counters, and the measured solve-stage duration (the label). It is the
// JSON-lines schema of /debug/costmodel/dataset, stamped with
// DatasetVersion so readers can refuse lines they don't understand.
type Sample struct {
	V         int              `json:"v"`
	Graph     string           `json:"graph,omitempty"`
	Gen       uint64           `json:"gen,omitempty"`
	Solver    string           `json:"solver"`
	N         int              `json:"n"`
	M         int64            `json:"m"`
	MaxWeight uint32           `json:"max_weight"`
	Sources   int              `json:"sources"`
	DurUS     int64            `json:"dur_us"`
	Counters  map[string]int64 `json:"counters,omitempty"`
}

// Features projects the sample onto the model's feature space.
func (s Sample) Features() Features {
	return Features{N: s.N, M: s.M, MaxWeight: s.MaxWeight, Sources: s.Sources}
}

// Collector is the bounded in-memory sample ring the daemon fills from the
// trace layer. When full, the oldest sample is dropped — the dataset is a
// sliding window over recent traffic, which is exactly what a retrain
// wants.
type Collector struct {
	mu    sync.Mutex
	buf   []Sample
	next  int
	full  bool
	total uint64
}

// NewCollector returns a collector holding at most capacity samples
// (minimum 1).
func NewCollector(capacity int) *Collector {
	if capacity < 1 {
		capacity = 1
	}
	return &Collector{buf: make([]Sample, capacity)}
}

// Add records one sample, stamping DatasetVersion.
func (c *Collector) Add(s Sample) {
	s.V = DatasetVersion
	c.mu.Lock()
	c.buf[c.next] = s
	c.next++
	if c.next == len(c.buf) {
		c.next = 0
		c.full = true
	}
	c.total++
	c.mu.Unlock()
}

// Len returns how many samples are currently held.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.full {
		return len(c.buf)
	}
	return c.next
}

// Total returns how many samples have ever been added, including ones that
// have since slid out of the window.
func (c *Collector) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Snapshot returns the held samples, oldest first.
func (c *Collector) Snapshot() []Sample {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.full {
		return append([]Sample(nil), c.buf[:c.next]...)
	}
	out := make([]Sample, 0, len(c.buf))
	out = append(out, c.buf[c.next:]...)
	out = append(out, c.buf[:c.next]...)
	return out
}

// WriteJSONL streams the held samples as JSON lines, oldest first, and
// returns how many it wrote.
func (c *Collector) WriteJSONL(w io.Writer) (int, error) {
	samples := c.Snapshot()
	bw := bufio.NewWriter(w)
	for _, s := range samples {
		b, err := json.Marshal(s)
		if err != nil {
			return 0, err
		}
		b = append(b, '\n')
		if _, err := bw.Write(b); err != nil {
			return 0, err
		}
	}
	return len(samples), bw.Flush()
}

// ReadSamples parses a JSON-lines dataset, refusing lines from a different
// dataset version. Blank lines are skipped so concatenated exports work.
func ReadSamples(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var out []Sample
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var s Sample
		if err := json.Unmarshal(b, &s); err != nil {
			return nil, fmt.Errorf("costmodel: dataset line %d: %w", line, err)
		}
		if s.V != DatasetVersion {
			return nil, fmt.Errorf("costmodel: dataset line %d: version %d, this binary speaks %d", line, s.V, DatasetVersion)
		}
		if s.Solver == "" {
			return nil, fmt.Errorf("costmodel: dataset line %d: missing solver", line)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
