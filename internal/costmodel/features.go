package costmodel

import "math"

// DatasetVersion is the version stamped on every exported Sample line; a
// reader refuses lines from a future version rather than misinterpreting
// them.
const DatasetVersion = 1

// FileVersion is the coefficients-file format version this binary speaks.
const FileVersion = 1

// FeatureNames is the ordered feature schema of FileVersion. A coefficients
// file whose feature list differs (schema drift from an older or newer
// fitter) is refused at load time — predictions against the wrong basis are
// worse than no predictions.
var FeatureNames = []string{
	"intercept", // 1
	"n",         // vertices
	"m",         // edges
	"n_log_n",   // n·log₂(n+1): comparison-based solver cost shape
	"sources",   // source-set size s
	"sources_m", // s·m: solvers that fold per-source pay one full run per source
	"log_c",     // log₂(maxWeight+1): the weight class (bucket-width regime)
}

// NumFeatures is len(FeatureNames).
const NumFeatures = 7

// Features is the pre-solve instance description a prediction is made from.
// Everything here is known before the solver runs — O(1) reads off the graph
// header plus the query's source count.
type Features struct {
	// N is the vertex count.
	N int
	// M is the edge count.
	M int64
	// MaxWeight is the largest edge weight (the weight class is its log).
	MaxWeight uint32
	// Sources is the canonical (deduplicated) source-set size.
	Sources int
}

// Vector expands the features into the FeatureNames basis.
func (f Features) Vector() [NumFeatures]float64 {
	n := float64(f.N)
	m := float64(f.M)
	s := float64(f.Sources)
	return [NumFeatures]float64{
		1,
		n,
		m,
		n * math.Log2(n+1),
		s,
		s * m,
		math.Log2(float64(f.MaxWeight) + 1),
	}
}
