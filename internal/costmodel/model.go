package costmodel

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc64"
	"math"
	"os"
	"sort"
	"time"
)

// SolverCoef holds one solver's fitted coefficients over FeatureNames, in
// microseconds per feature unit.
type SolverCoef struct {
	// Coef is the coefficient vector, aligned with the file's Features list.
	Coef []float64 `json:"coef"`
	// Samples is how many training samples backed this solver's fit.
	Samples int `json:"samples"`
}

// File is the on-disk coefficients artifact written by cmd/costfit and
// loaded by ssspd (-cost-model, POST /debug/costmodel/reload). It is
// versioned and checksummed so a truncated, hand-edited, or
// schema-drifted file is refused instead of silently mispricing queries.
type File struct {
	Version        int                   `json:"version"`
	Features       []string              `json:"features"`
	DatasetVersion int                   `json:"dataset_version"`
	TrainedAt      string                `json:"trained_at,omitempty"`
	TotalSamples   int                   `json:"total_samples"`
	Solvers        map[string]SolverCoef `json:"solvers"`
	// Graphs holds per-graph multiplicative calibration: for a graph the
	// training traces covered, Graphs[graph][solver] scales the solver's
	// global prediction. The feature basis cannot see graph structure
	// (degree skew, weight distribution shape), so per-solver cost varies
	// severalfold between graphs with identical (n, m, C); a daemon serves
	// long-lived named graphs, and calibrating each one's residual from its
	// own traces removes exactly that error. Unknown graphs fall back to
	// the uncalibrated global regression.
	Graphs   map[string]map[string]float64 `json:"graphs,omitempty"`
	Checksum string                        `json:"checksum"`
}

// checksum returns the canonical CRC-64/ECMA of the file with the Checksum
// field emptied. encoding/json sorts map keys, so the encoding — and
// therefore the digest — is deterministic.
func (f *File) checksum() (string, error) {
	cp := *f
	cp.Checksum = ""
	b, err := json.Marshal(&cp)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("crc64:%016x", crc64.Checksum(b, crc64.MakeTable(crc64.ECMA))), nil
}

// Seal recomputes and stores the checksum. cmd/costfit calls it last
// before writing.
func (f *File) Seal() error {
	sum, err := f.checksum()
	if err != nil {
		return err
	}
	f.Checksum = sum
	return nil
}

// Encode seals the file and renders it as indented JSON with a trailing
// newline.
func (f *File) Encode() ([]byte, error) {
	if err := f.Seal(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Validate checks everything about the file except the checksum: version,
// feature schema, and coefficient-vector shape. A file that fails Validate
// is "stale" in the sense of the design doc — it was written for a
// different binary and must not be served from.
func (f *File) Validate() error {
	if f.Version != FileVersion {
		return fmt.Errorf("costmodel: file version %d, this binary speaks %d (stale)", f.Version, FileVersion)
	}
	if len(f.Features) != NumFeatures {
		return fmt.Errorf("costmodel: file has %d features, schema has %d (stale)", len(f.Features), NumFeatures)
	}
	for i, name := range f.Features {
		if name != FeatureNames[i] {
			return fmt.Errorf("costmodel: feature %d is %q, schema says %q (stale)", i, name, FeatureNames[i])
		}
	}
	if f.DatasetVersion != DatasetVersion {
		return fmt.Errorf("costmodel: dataset version %d, this binary speaks %d (stale)", f.DatasetVersion, DatasetVersion)
	}
	if len(f.Solvers) == 0 {
		return fmt.Errorf("costmodel: file has no solvers")
	}
	for name, sc := range f.Solvers {
		if name == "" {
			return fmt.Errorf("costmodel: empty solver name")
		}
		if len(sc.Coef) != NumFeatures {
			return fmt.Errorf("costmodel: solver %q has %d coefficients, want %d", name, len(sc.Coef), NumFeatures)
		}
		for i, c := range sc.Coef {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return fmt.Errorf("costmodel: solver %q coefficient %d is not finite", name, i)
			}
		}
		if sc.Samples < 0 {
			return fmt.Errorf("costmodel: solver %q has negative sample count", name)
		}
	}
	for graph, factors := range f.Graphs {
		if graph == "" {
			return fmt.Errorf("costmodel: empty graph name in calibration map")
		}
		for solver, factor := range factors {
			if _, ok := f.Solvers[solver]; !ok {
				return fmt.Errorf("costmodel: graph %q calibrates unknown solver %q", graph, solver)
			}
			if math.IsNaN(factor) || math.IsInf(factor, 0) || factor <= 0 {
				return fmt.Errorf("costmodel: graph %q solver %q calibration %v is not a positive finite factor", graph, solver, factor)
			}
		}
	}
	return nil
}

// Parse decodes, checksums, and validates a coefficients file. Unknown
// fields, a bad digest, or any Validate failure is an error — the caller
// keeps whatever model it had.
func Parse(data []byte) (*File, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var f File
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("costmodel: decode: %w", err)
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err == nil {
		return nil, fmt.Errorf("costmodel: trailing data after coefficients object")
	}
	if f.Checksum == "" {
		return nil, fmt.Errorf("costmodel: missing checksum")
	}
	want, err := f.checksum()
	if err != nil {
		return nil, err
	}
	if f.Checksum != want {
		return nil, fmt.Errorf("costmodel: checksum mismatch (file %s, computed %s)", f.Checksum, want)
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	return &f, nil
}

// ReadFile loads and parses a coefficients file from disk.
func ReadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Model is the immutable inference form of a parsed File: one dot product
// per candidate solver. Build one with NewModel; share it freely.
type Model struct {
	file    *File
	coef    map[string][NumFeatures]float64
	nonZero map[string]bool
	solvers []string // sorted, for stable iteration/reporting
}

// NewModel compiles a validated File into inference form.
func NewModel(f *File) *Model {
	m := &Model{
		file:    f,
		coef:    make(map[string][NumFeatures]float64, len(f.Solvers)),
		nonZero: make(map[string]bool, len(f.Solvers)),
	}
	for name, sc := range f.Solvers {
		var v [NumFeatures]float64
		any := false
		for i, c := range sc.Coef {
			v[i] = c
			if c != 0 {
				any = true
			}
		}
		m.coef[name] = v
		m.nonZero[name] = any
		m.solvers = append(m.solvers, name)
	}
	sort.Strings(m.solvers)
	return m
}

// File returns the artifact this model was compiled from.
func (m *Model) File() *File { return m.file }

// Solvers returns the solver names the model has coefficients for, sorted.
func (m *Model) Solvers() []string { return m.solvers }

// Predict returns the predicted solve duration for running solver name on
// an instance with the given features. ok is false when the model has no
// coefficients for that solver, or only zero coefficients — the caller
// must fall back to the static policy rather than trust a zero prediction.
// Negative predictions (possible at the edge of the training distribution)
// are clamped to zero.
func (m *Model) Predict(name string, f Features) (time.Duration, bool) {
	return m.PredictFor("", name, f)
}

// PredictFor is Predict with the file's per-graph calibration applied when
// the training traces covered graph (File.Graphs). An empty or unknown
// graph yields the uncalibrated global prediction.
func (m *Model) PredictFor(graph, name string, f Features) (time.Duration, bool) {
	coef, present := m.coef[name]
	if !present || !m.nonZero[name] {
		return 0, false
	}
	x := f.Vector()
	var us float64
	for i := range x {
		us += coef[i] * x[i]
	}
	if us < 0 {
		us = 0
	}
	if factor, ok := m.file.Graphs[graph][name]; ok {
		us *= factor
	}
	return time.Duration(us * float64(time.Microsecond)), true
}
