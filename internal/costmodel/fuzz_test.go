package costmodel

import (
	"reflect"
	"testing"
)

// FuzzCoefficientsFile asserts the coefficients-file contract: anything
// Parse accepts must (a) pass Validate, (b) re-encode deterministically,
// and (c) round-trip through Encode→Parse to an identical file. Everything
// else must be rejected without panicking — this is the artifact operators
// hand-copy between machines, so a truncated or bit-rotted file has to
// fail loudly at load time, never at query time.
func FuzzCoefficientsFile(f *testing.F) {
	seed := &File{
		Version:        FileVersion,
		Features:       append([]string(nil), FeatureNames...),
		DatasetVersion: DatasetVersion,
		TrainedAt:      "2026-08-07T00:00:00Z",
		TotalSamples:   16,
		Solvers: map[string]SolverCoef{
			"dijkstra": {Coef: []float64{100, 0, 0, 0.08, 0, 0.01, 0}, Samples: 8},
			"thorup":   {Coef: []float64{5000, 0.1, 0.05, 0, 0, 0, 0}, Samples: 8},
		},
	}
	data, err := seed.Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":1,"features":[],"dataset_version":1,"total_samples":0,"solvers":{},"checksum":"crc64:0000000000000000"}`))
	f.Add(data[:len(data)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		parsed, err := Parse(data)
		if err != nil {
			return
		}
		if err := parsed.Validate(); err != nil {
			t.Fatalf("Parse accepted a file Validate rejects: %v", err)
		}
		enc, err := parsed.Encode()
		if err != nil {
			t.Fatalf("accepted file failed to re-encode: %v", err)
		}
		again, err := Parse(enc)
		if err != nil {
			t.Fatalf("re-encoded file failed to parse: %v", err)
		}
		if !reflect.DeepEqual(parsed, again) {
			t.Fatalf("round trip not identical:\n%+v\n%+v", parsed, again)
		}
	})
}
