package rng

import "math/bits"

// SplitMix64 is the 64-bit SplitMix generator of Steele, Lea and Flood.
// The zero value is a valid generator (seeded with 0).
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 is the xoshiro256** 1.0 generator of Blackman and Vigna.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a Xoshiro256 generator seeded from seed via SplitMix64.
func New(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// xoshiro256** must not start in the all-zero state; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway for belt and braces.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

// NewStream derives the i-th independent stream from seed. Streams with
// distinct indices are seeded from well-separated SplitMix64 outputs.
func NewStream(seed uint64, i int) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	base := sm.Next()
	return New(base + uint64(i)*0x9e3779b97f4a7c15)
}

// Uint64 returns the next 64 uniformly random bits.
func (x *Xoshiro256) Uint64() uint64 {
	result := bits.RotateLeft64(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = bits.RotateLeft64(x.s[3], 45)
	return result
}

// Uint32 returns 32 uniformly random bits.
func (x *Xoshiro256) Uint32() uint32 {
	return uint32(x.Uint64() >> 32)
}

// Intn returns a uniformly random int in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(x.Uint64n(uint64(n)))
}

// Int63 returns a uniformly random non-negative int64.
func (x *Xoshiro256) Int63() int64 {
	return int64(x.Uint64() >> 1)
}

// Uint64n returns a uniformly random uint64 in [0, n) using Lemire's
// multiply-shift rejection method. It panics if n == 0.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's nearly-divisionless method.
	hi, lo := bits.Mul64(x.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(x.Uint64(), n)
		}
	}
	return hi
}

// Float64 returns a uniformly random float64 in [0, 1).
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n).
func (x *Xoshiro256) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	x.Shuffle(p)
	return p
}

// Shuffle permutes p uniformly at random (Fisher–Yates).
func (x *Xoshiro256) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
