package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs for seed 1234567 from the canonical C implementation.
	s := NewSplitMix64(1234567)
	want := []uint64{
		0x599ed017fb08fc85, 0x2c73f08458540fa5, 0x883ebce5a3f27c77,
	}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("SplitMix64(1234567) output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSplitMix64ZeroSeedDiffers(t *testing.T) {
	a := NewSplitMix64(0)
	b := NewSplitMix64(1)
	if a.Next() == b.Next() {
		t.Fatal("different seeds produced identical first outputs")
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("same-seed generators diverged at step %d: %#x vs %#x", i, x, y)
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 agree on %d of 100 outputs", same)
	}
}

func TestStreamsIndependent(t *testing.T) {
	a := NewStream(7, 0)
	b := NewStream(7, 1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 0 and 1 agree on %d of 100 outputs", same)
	}
}

func TestIntnRange(t *testing.T) {
	x := New(99)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := x.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestUint64nUniformSmall(t *testing.T) {
	// Chi-squared-ish sanity check on a small modulus.
	x := New(2024)
	const n, trials = 8, 80000
	var counts [n]int
	for i := 0; i < trials; i++ {
		counts[x.Uint64n(n)]++
	}
	want := float64(trials) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d: %d draws, want about %.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	x := New(5)
	for i := 0; i < 10000; i++ {
		f := x.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	x := New(11)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := x.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestQuickIntnInRange(t *testing.T) {
	x := New(7777)
	f := func(n uint16) bool {
		m := int(n)%1000 + 1
		v := x.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickUint64nInRange(t *testing.T) {
	x := New(8888)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return x.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkXoshiroUint64(b *testing.B) {
	x := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += x.Uint64()
	}
	_ = sink
}

func TestShuffleIsPermutation(t *testing.T) {
	x := New(31)
	p := []int{5, 6, 7, 8, 9}
	x.Shuffle(p)
	seen := map[int]bool{}
	for _, v := range p {
		if v < 5 || v > 9 || seen[v] {
			t.Fatalf("shuffle broke contents: %v", p)
		}
		seen[v] = true
	}
}

func TestInt63NonNegative(t *testing.T) {
	x := New(17)
	for i := 0; i < 1000; i++ {
		if x.Int63() < 0 {
			t.Fatal("negative Int63")
		}
	}
}
