// Package rng provides small, fast, deterministic pseudo-random number
// generators used by the graph generators, the experiment harness, and the
// property-based tests.
//
// Two generators are provided:
//
//   - SplitMix64: a tiny, stateless-stepping generator. It is primarily used
//     to seed other generators and to derive independent streams from a single
//     experiment seed.
//   - Xoshiro256: xoshiro256** 1.0, the general-purpose generator used by the
//     workload generators. It is seeded via SplitMix64 as recommended by its
//     authors.
//
// All generators in this package are deterministic given their seed, so every
// experiment in the repository is exactly reproducible. None of them are safe
// for concurrent use; derive one stream per goroutine with NewStream.
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package rng
