package cc

import (
	"math"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// All is an exclusive weight bound that admits every edge (weights are
// bounded by graph.MaxWeight < All).
const All uint32 = math.MaxUint32

// SerialBFS labels components by breadth-first sweeps considering only edges
// with weight < below. It returns the dense labelling and component count.
func SerialBFS(g *graph.Graph, below uint32) ([]int32, int) {
	n := g.NumVertices()
	label := make([]int32, n)
	for i := range label {
		label[i] = -1
	}
	count := int32(0)
	queue := make([]int32, 0, 64)
	for s := 0; s < n; s++ {
		if label[s] >= 0 {
			continue
		}
		label[s] = count
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			ts, ws := g.Neighbors(v)
			for i, u := range ts {
				if ws[i] < below && label[u] < 0 {
					label[u] = count
					queue = append(queue, u)
				}
			}
		}
		count++
	}
	return label, int(count)
}

// UnionFind labels components with a serial union-find (union by smaller
// root id, path halving) considering only edges with weight < below.
func UnionFind(g *graph.Graph, below uint32) ([]int32, int) {
	n := g.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for v := int32(0); v < int32(n); v++ {
		ts, ws := g.Neighbors(v)
		for i, u := range ts {
			if ws[i] >= below {
				continue
			}
			ru, rv := find(u), find(v)
			if ru == rv {
				continue
			}
			// Union by smaller id keeps the min-id root invariant.
			if ru < rv {
				parent[rv] = ru
			} else {
				parent[ru] = rv
			}
		}
	}
	label := make([]int32, n)
	for v := 0; v < n; v++ {
		label[v] = find(int32(v))
	}
	return densify(label)
}

// ShiloachVishkin labels components with the classic parallel algorithm:
// alternate hooking of roots onto smaller-labelled neighbours with pointer
// jumping, running on the given runtime. Only edges with weight < below
// participate.
func ShiloachVishkin(rt *par.Runtime, g *graph.Graph, below uint32) ([]int32, int) {
	n := g.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	if n == 0 {
		return parent, 0
	}
	edges := lightEdges(rt, g, below)
	for {
		var changed int32
		// Hook phase: for every light edge, hook the root of the larger
		// endpoint label onto the smaller. The loop is flat over edges (as in
		// MTGL) so contracted hub vertices cannot serialize it. All hooks
		// funnel through roots — the hot spot the bully algorithm avoids.
		rt.ForAuto(par.DefaultThresholds, len(edges), func(i int) {
			e := edges[i]
			rt.Charge(4)
			pu := atomic.LoadInt32(&parent[e.U])
			pv := atomic.LoadInt32(&parent[e.V])
			if pu == pv {
				return
			}
			lo, hi := pu, pv
			if lo > hi {
				lo, hi = hi, lo
			}
			// Hook only if hi is currently a root.
			if atomic.LoadInt32(&parent[hi]) == hi &&
				atomic.CompareAndSwapInt32(&parent[hi], hi, lo) {
				atomic.StoreInt32(&changed, 1)
			}
		})
		// Shortcut phase: full pointer jumping to flatten the forest.
		pointerJump(rt, parent)
		if atomic.LoadInt32(&changed) == 0 {
			break
		}
	}
	return densifyAtomic(rt, parent)
}

// lightEdges extracts the undirected edges below the weight bound as a flat
// array — the edge-centric layout the parallel kernels iterate over.
func lightEdges(rt *par.Runtime, g *graph.Graph, below uint32) []graph.Edge {
	all := g.Edges()
	rt.ChargeLoop(rt.ModeFor(par.DefaultThresholds, int(g.NumArcs())), int(g.NumArcs()), 1)
	out := all[:0]
	for _, e := range all {
		if e.W < below && e.U != e.V {
			out = append(out, e)
		}
	}
	return out
}

// Bully labels components with an aggressive-grafting kernel in the spirit of
// the MTGL bully algorithm: every arc tries to lower both the parent and the
// grandparent of each endpoint toward the other side's grandparent, so
// updates diffuse through the tree instead of converging on root words.
// Only edges with weight < below participate.
func Bully(rt *par.Runtime, g *graph.Graph, below uint32) ([]int32, int) {
	n := g.NumVertices()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	if n == 0 {
		return parent, 0
	}
	gp := func(v int32) int32 { // grandparent
		return atomic.LoadInt32(&parent[atomic.LoadInt32(&parent[v])])
	}
	edges := lightEdges(rt, g, below)
	for {
		var changed int32
		rt.ForAuto(par.DefaultThresholds, len(edges), func(i int) {
			e := edges[i]
			u, v := e.U, e.V
			rt.Charge(6)
			gu, gv := gp(u), gp(v)
			// The smaller grandparent bullies the larger side: both the
			// larger grandparent and the vertex itself are pulled down.
			if gu < gv {
				if casMin32(&parent[gv], gu) {
					atomic.StoreInt32(&changed, 1)
				}
				casMin32(&parent[v], gu)
			} else if gv < gu {
				if casMin32(&parent[gu], gv) {
					atomic.StoreInt32(&changed, 1)
				}
				casMin32(&parent[u], gv)
			}
		})
		// Shortcutting: one jump per vertex per round (the diffusion step).
		rt.ForAuto(par.DefaultThresholds, n, func(vi int) {
			v := int32(vi)
			rt.Charge(2)
			if casMin32(&parent[v], gp(v)) {
				atomic.StoreInt32(&changed, 1)
			}
		})
		if atomic.LoadInt32(&changed) == 0 {
			break
		}
	}
	// The forest is flat on exit (no vertex changed in the last round, so
	// parent[v] == parent[parent[v]] for all v).
	return densifyAtomic(rt, parent)
}

// casMin32 lowers *addr to v if smaller; reports whether it stored.
func casMin32(addr *int32, v int32) bool {
	for {
		cur := atomic.LoadInt32(addr)
		if v >= cur {
			return false
		}
		if atomic.CompareAndSwapInt32(addr, cur, v) {
			return true
		}
	}
}

// pointerJump flattens the parent forest completely.
func pointerJump(rt *par.Runtime, parent []int32) {
	for {
		var changed int32
		rt.ForAuto(par.DefaultThresholds, len(parent), func(vi int) {
			v := int32(vi)
			rt.Charge(2)
			p := atomic.LoadInt32(&parent[v])
			pp := atomic.LoadInt32(&parent[p])
			if p != pp {
				atomic.StoreInt32(&parent[v], pp)
				atomic.StoreInt32(&changed, 1)
			}
		})
		if atomic.LoadInt32(&changed) == 0 {
			return
		}
	}
}

// densify renumbers root labels to dense [0, count) in min-vertex order.
// parent must map every vertex to its component's minimum vertex id.
func densify(parent []int32) ([]int32, int) {
	n := len(parent)
	label := make([]int32, n)
	count := int32(0)
	for v := 0; v < n; v++ {
		if parent[v] == int32(v) {
			label[v] = count
			count++
		}
	}
	for v := 0; v < n; v++ {
		label[v] = label[parent[v]]
	}
	return label, int(count)
}

// densifyAtomic is densify with its two linear renumbering passes accounted
// as parallel sweeps on the modelled machine.
func densifyAtomic(rt *par.Runtime, parent []int32) ([]int32, int) {
	mode := rt.ModeFor(par.DefaultThresholds, len(parent))
	rt.ChargeLoop(mode, len(parent), 1)
	rt.ChargeLoop(mode, len(parent), 1)
	return densify(parent)
}

// LargestComponent returns the induced subgraph of g's largest connected
// component together with the mapping from new vertex ids to original ones —
// the standard preprocessing for analytics over real-world datasets whose
// giant component carries the structure.
func LargestComponent(g *graph.Graph) (*graph.Graph, []int32) {
	label, count := SerialBFS(g, All)
	if count <= 1 {
		ids := make([]int32, g.NumVertices())
		for i := range ids {
			ids[i] = int32(i)
		}
		return g, ids
	}
	sizes := make([]int64, count)
	for _, l := range label {
		sizes[l]++
	}
	best := int32(0)
	for c := int32(1); c < int32(count); c++ {
		if sizes[c] > sizes[best] {
			best = c
		}
	}
	var members []int32
	for v, l := range label {
		if l == best {
			members = append(members, int32(v))
		}
	}
	return g.InducedSubgraph(members)
}
