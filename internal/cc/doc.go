// Package cc provides connected-components kernels, the substrate the paper's
// Component Hierarchy construction is built on (paper §3.1: "Our
// implementation relies on repeated calls of a connected components
// algorithm, and we use the bully algorithm for connected components
// available in the MultiThreaded Graph Library").
//
// Four kernels are provided:
//
//   - SerialBFS: a queue-based serial sweep; the correctness oracle.
//   - UnionFind: serial union-find with path halving; the fast serial choice.
//   - ShiloachVishkin: the classic PRAM algorithm (hook roots onto smaller
//     labels, then pointer-jump). On the MTA-2 its root label is a memory
//     hot spot.
//   - Bully: an aggressive-grafting variant in the spirit of MTGL's bully
//     algorithm, which spreads updates across grandparent pointers instead
//     of funnelling them through component roots, avoiding the hot spot and
//     converging in fewer rounds.
//
// Every kernel takes an exclusive weight bound: only edges with weight < below
// participate. This is exactly the operation Algorithm 1 of the paper needs
// at each level of the hierarchy ("remove edges of weight >= 2^i ... find the
// connected components").
//
// All kernels return a dense component labelling (label[v] in [0, count)) in
// which labels are assigned in order of the smallest vertex id per component,
// so all four kernels produce the identical labelling for the same input.
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package cc
