package cc

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mta"
	"repro/internal/par"
	"repro/internal/rng"
)

type kernel struct {
	name string
	run  func(g *graph.Graph, below uint32) ([]int32, int)
}

func kernels() []kernel {
	exec := par.NewExec(4)
	sim := par.NewSim(mta.MTA2(8))
	return []kernel{
		{"SerialBFS", SerialBFS},
		{"UnionFind", UnionFind},
		{"SV-exec", func(g *graph.Graph, b uint32) ([]int32, int) { return ShiloachVishkin(exec, g, b) }},
		{"SV-sim", func(g *graph.Graph, b uint32) ([]int32, int) { return ShiloachVishkin(sim, g, b) }},
		{"Bully-exec", func(g *graph.Graph, b uint32) ([]int32, int) { return Bully(exec, g, b) }},
		{"Bully-sim", func(g *graph.Graph, b uint32) ([]int32, int) { return Bully(sim, g, b) }},
	}
}

func sameLabelling(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyAndSingleton(t *testing.T) {
	empty := graph.NewBuilder(0).Build()
	single := graph.NewBuilder(1).Build()
	for _, k := range kernels() {
		if _, c := k.run(empty, All); c != 0 {
			t.Errorf("%s: empty graph has %d components", k.name, c)
		}
		if l, c := k.run(single, All); c != 1 || l[0] != 0 {
			t.Errorf("%s: singleton labelling %v count %d", k.name, l, c)
		}
	}
}

func TestTwoTriangles(t *testing.T) {
	b := graph.NewBuilder(6)
	for _, e := range [][3]int{{0, 1, 1}, {1, 2, 1}, {2, 0, 1}, {3, 4, 1}, {4, 5, 1}, {5, 3, 1}} {
		b.MustAddEdge(int32(e[0]), int32(e[1]), uint32(e[2]))
	}
	g := b.Build()
	for _, k := range kernels() {
		label, count := k.run(g, All)
		if count != 2 {
			t.Errorf("%s: count = %d", k.name, count)
			continue
		}
		want := []int32{0, 0, 0, 1, 1, 1}
		if !sameLabelling(label, want) {
			t.Errorf("%s: labelling %v, want %v", k.name, label, want)
		}
	}
}

func TestWeightBound(t *testing.T) {
	// Path with increasing weights: 0 -1- 1 -2- 2 -4- 3 -8- 4.
	b := graph.NewBuilder(5)
	ws := []uint32{1, 2, 4, 8}
	for i, w := range ws {
		b.MustAddEdge(int32(i), int32(i+1), w)
	}
	g := b.Build()
	wantCounts := map[uint32]int{1: 5, 2: 4, 3: 3, 4: 3, 5: 2, 8: 2, 9: 1, All: 1}
	for _, k := range kernels() {
		for below, want := range wantCounts {
			if _, c := k.run(g, below); c != want {
				t.Errorf("%s: below=%d count=%d, want %d", k.name, below, c, want)
			}
		}
	}
}

func TestSelfLoopsAndParallelEdges(t *testing.T) {
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 0, 1)
	b.MustAddEdge(0, 1, 5)
	b.MustAddEdge(1, 0, 5)
	g := b.Build()
	for _, k := range kernels() {
		label, count := k.run(g, All)
		if count != 2 {
			t.Errorf("%s: count=%d", k.name, count)
		}
		if label[0] != label[1] || label[0] == label[2] {
			t.Errorf("%s: labelling %v", k.name, label)
		}
	}
}

func TestPathWorstCase(t *testing.T) {
	// Long path: worst case for naive label propagation; parallel kernels
	// must still converge (in few rounds) and agree with the oracle.
	g := gen.Path(4096, 1)
	want, _ := SerialBFS(g, All)
	for _, k := range kernels() {
		label, count := k.run(g, All)
		if count != 1 {
			t.Errorf("%s: path count=%d", k.name, count)
		}
		if !sameLabelling(label, want) {
			t.Errorf("%s: path labelling differs from oracle", k.name)
		}
	}
}

func TestStarHotSpot(t *testing.T) {
	g := gen.Star(10000, 1)
	for _, k := range kernels() {
		if _, c := k.run(g, All); c != 1 {
			t.Errorf("%s: star count=%d", k.name, c)
		}
	}
}

func TestAllKernelsAgreeOnFamilies(t *testing.T) {
	instances := []*graph.Graph{
		gen.Random(2000, 8000, 1<<10, gen.UWD, 1),
		gen.RMATGraph(2048, 8192, 1<<10, gen.PWD, 2),
		gen.GridGraph(40, 50, 16, gen.UWD, 3),
	}
	ks := kernels()
	for gi, g := range instances {
		for _, below := range []uint32{2, 16, 300, All} {
			want, wantCount := SerialBFS(g, below)
			for _, k := range ks[1:] {
				label, count := k.run(g, below)
				if count != wantCount {
					t.Errorf("graph %d below %d: %s count=%d, oracle %d", gi, below, k.name, count, wantCount)
					continue
				}
				if !sameLabelling(label, want) {
					t.Errorf("graph %d below %d: %s labelling differs from oracle", gi, below, k.name)
				}
			}
		}
	}
}

func TestParallelKernelsManyWorkers(t *testing.T) {
	g := gen.Random(5000, 20000, 1<<8, gen.UWD, 77)
	want, wantCount := SerialBFS(g, 100)
	for _, workers := range []int{1, 2, 8} {
		rt := par.NewExec(workers)
		for name, f := range map[string]func(*par.Runtime, *graph.Graph, uint32) ([]int32, int){
			"SV": ShiloachVishkin, "Bully": Bully,
		} {
			label, count := f(rt, g, 100)
			if count != wantCount || !sameLabelling(label, want) {
				t.Errorf("%s workers=%d: wrong labelling (count %d vs %d)", name, workers, count, wantCount)
			}
		}
	}
}

func TestSimCostsRecorded(t *testing.T) {
	g := gen.Random(1000, 4000, 100, gen.UWD, 5)
	for name, f := range map[string]func(*par.Runtime, *graph.Graph, uint32) ([]int32, int){
		"SV": ShiloachVishkin, "Bully": Bully,
	} {
		rt := par.NewSim(mta.MTA2(40))
		f(rt, g, All)
		c := rt.SimCost()
		if c.Work <= int64(g.NumArcs()) {
			t.Errorf("%s: suspiciously low simulated work %d", name, c.Work)
		}
		if c.Span <= 0 || c.Span > c.Work {
			t.Errorf("%s: span %d out of range (work %d)", name, c.Span, c.Work)
		}
	}
}

// Property: on random graphs with random weight bounds, all kernels agree
// with the BFS oracle.
func TestQuickKernelsMatchOracle(t *testing.T) {
	exec := par.NewExec(4)
	sim := par.NewSim(mta.MTA2(4))
	r := rng.New(1234)
	f := func(seed uint32, belowRaw uint16) bool {
		n := int(seed%200) + 2
		m := n + int(seed%400)
		g := gen.Random(n, m, 1<<10, gen.UWD, uint64(seed))
		below := uint32(belowRaw%2000) + 1
		_ = r
		want, wantCount := SerialBFS(g, below)
		for _, run := range []func() ([]int32, int){
			func() ([]int32, int) { return UnionFind(g, below) },
			func() ([]int32, int) { return ShiloachVishkin(exec, g, below) },
			func() ([]int32, int) { return Bully(exec, g, below) },
			func() ([]int32, int) { return ShiloachVishkin(sim, g, below) },
			func() ([]int32, int) { return Bully(sim, g, below) },
		} {
			label, count := run()
			if count != wantCount || !sameLabelling(label, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCCKernels(b *testing.B) {
	g := gen.Random(1<<14, 1<<16, 1<<10, gen.UWD, 42)
	exec := par.NewExec(4)
	b.Run("SerialBFS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SerialBFS(g, All)
		}
	})
	b.Run("UnionFind", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			UnionFind(g, All)
		}
	})
	b.Run("ShiloachVishkin", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ShiloachVishkin(exec, g, All)
		}
	})
	b.Run("Bully", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Bully(exec, g, All)
		}
	})
}

func TestLargestComponent(t *testing.T) {
	b := graph.NewBuilder(7)
	// component A: 0-1-2 (3 vertices), component B: 3-4-5-6 (4 vertices)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 1)
	b.MustAddEdge(3, 4, 2)
	b.MustAddEdge(4, 5, 2)
	b.MustAddEdge(5, 6, 2)
	g := b.Build()
	sub, ids := LargestComponent(g)
	if sub.NumVertices() != 4 || sub.NumEdges() != 3 {
		t.Fatalf("largest component: %v", sub)
	}
	for _, old := range ids {
		if old < 3 {
			t.Fatalf("wrong component member %d", old)
		}
	}
	// Connected graph: returned unchanged.
	conn := gen.Path(5, 1)
	same, ids2 := LargestComponent(conn)
	if same.NumVertices() != 5 || ids2[3] != 3 {
		t.Fatalf("connected graph altered")
	}
}
