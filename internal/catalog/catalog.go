package catalog

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"repro/internal/ch"
	"repro/internal/cli"
	"repro/internal/costmodel"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mutate"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/snapshot"
	"repro/internal/solver"
	"repro/internal/trace"
)

// ErrUnknownGraph marks queries that name a graph the catalog has never
// heard of; a serving layer should map it to 404.
var ErrUnknownGraph = errors.New("unknown graph")

// NotReadyError marks queries against a graph that exists but is not
// currently serving (still building, draining, evicted, or failed); a
// serving layer should map it to 503 (retryable) or 500 (failed).
type NotReadyError struct {
	Name  string
	State State
	Err   error // the load error when State is StateFailed
}

func (e *NotReadyError) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("graph %q is %s: %v", e.Name, e.State, e.Err)
	}
	return fmt.Sprintf("graph %q is %s", e.Name, e.State)
}

// Source says where a graph comes from, in priority order: an in-process
// Loader (tests, stress harnesses), a binary snapshot (graph + prebuilt
// hierarchy in one read), or a cli.Spec (DIMACS file or generator, with the
// hierarchy built here — optionally through a CHCache file).
type Source struct {
	// Loader produces the instance directly; it wins over the other fields.
	Loader func() (*graph.Graph, *ch.Hierarchy, error)
	// Snapshot is a snapshot.WriteFile artifact.
	Snapshot string
	// Spec is a DIMACS file or generator description.
	Spec cli.Spec
	// CHCache is a hierarchy cache file used (read and written) when the
	// graph comes from Spec. A cache whose fingerprint does not match the
	// loaded graph is refused and the hierarchy rebuilt.
	CHCache string
}

func (s Source) String() string {
	switch {
	case s.Loader != nil:
		return "loader"
	case s.Snapshot != "":
		return "snapshot:" + s.Snapshot
	case s.Spec.File != "":
		return "file:" + s.Spec.File
	default:
		return fmt.Sprintf("gen:%s/2^%d", s.Spec.Class, s.Spec.LogN)
	}
}

// load resolves the source. The hierarchy may be nil (Spec sources build it
// in the Building phase); logf narrates cache decisions. With mmap set,
// snapshot sources are mapped zero-copy when the file format and platform
// allow it, falling back to the copy read otherwise; a non-nil mapping is
// returned exactly when the instance's arrays alias it, and the caller owns
// its lifetime.
func (s Source) load(mmap bool, logf func(string, ...any)) (*graph.Graph, *ch.Hierarchy, *snapshot.Mapping, error) {
	switch {
	case s.Loader != nil:
		g, h, err := s.Loader()
		return g, h, nil, err
	case s.Snapshot != "":
		if mmap {
			g, h, m, err := snapshot.Map(s.Snapshot)
			if err == nil {
				return g, h, m, nil
			}
			if !errors.Is(err, snapshot.ErrNotMappable) {
				return nil, nil, nil, err
			}
			logf("catalog: %s not mappable, falling back to copy read: %v", s.Snapshot, err)
		}
		g, h, err := snapshot.ReadFile(s.Snapshot)
		return g, h, nil, err
	case s.Spec != (cli.Spec{}):
		g, _, err := s.Spec.Load()
		return g, nil, nil, err
	default:
		return nil, nil, nil, errors.New("catalog: empty source (need Loader, Snapshot, or Spec)")
	}
}

// Config parameterizes a Catalog.
type Config struct {
	// Workers is the number of background build workers (default 2).
	Workers int
	// MemoryBudget bounds the summed Bytes of ready graphs; exceeding it
	// evicts least-recently-used idle graphs. 0 means unlimited.
	MemoryBudget int64
	// QueryWorkers sizes each generation's parallel runtime (default 4).
	QueryWorkers int
	// WarmQueries is how many spread-out single-source queries prime a fresh
	// engine before it goes ready (default 4; 0 disables warming).
	WarmQueries int
	// Engine is the template engine configuration; KeyPrefix is overwritten
	// per generation with "name@gen|".
	Engine engine.Config
	// MMap serves snapshot sources zero-copy from mmap'd files when the
	// format and platform allow it (v1 snapshots and mmap-less platforms
	// silently fall back to the copy read).
	MMap bool
	// MutateThreshold is the maximum fraction of vertices a mutation batch
	// may touch and still take the incremental repair path; larger deltas
	// fall back to a background full rebuild. 0 means mutate.DefaultThreshold;
	// a negative value forces fallback for every mutation.
	MutateThreshold float64
	// Logf receives progress lines (default log.Printf).
	Logf func(string, ...any)
}

// Catalog coordinates the graphs. All public methods are safe for concurrent
// use.
type Catalog struct {
	cfg  Config
	logf func(string, ...any)

	mu      sync.Mutex
	entries map[string]*entry
	clock   int64 // logical time for LRU ordering
	closed  bool

	jobs     chan string
	done     chan struct{}
	wg       sync.WaitGroup
	counters *obs.Group
}

// entry is the per-name lifecycle record. gen is non-nil exactly while the
// name is serving (ready, or draining its final generation).
type entry struct {
	name     string
	state    State
	src      Source
	gen      *Generation
	genSeq   uint64
	lastUsed int64
	err      error // most recent load failure
	pending  bool  // a build job is queued or running
	// deltas is the accepted-mutation replay log for this lineage: every
	// batch that produced a generation (incrementally or via fallback
	// rebuild), in acceptance order. A rebuild from source replays it so the
	// rebuilt generation reproduces the mutated graph, not the base one.
	// Load with a fresh source resets the log (new lineage).
	deltas []*mutate.Batch
}

// setState validates the lifecycle edge; an invalid transition is an
// internal bug and panics.
func (e *entry) setState(next State) {
	if !validNext[e.state][next] {
		panic(fmt.Sprintf("catalog: invalid transition %s -> %s for %q", e.state, next, e.name))
	}
	e.state = next
}

// Counter names of Catalog counters, in snapshot order.
const (
	cLoads             = "loads"
	cReloads           = "reloads"
	cUnloads           = "unloads"
	cBuilds            = "builds"
	cSwaps             = "swaps"
	cEvictions         = "evictions"
	cLoadFailures      = "load_failures"
	cAcquires          = "acquires"
	cNotReady          = "acquire_not_ready"
	cWarmQueries       = "warm_queries"
	cMutations         = "mutations"
	cMutateIncremental = "mutate_incremental"
	cMutateFallback    = "mutate_fallback"
)

// New creates a catalog and starts its build workers. Call Close to stop
// them.
func New(cfg Config) *Catalog {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueryWorkers <= 0 {
		cfg.QueryWorkers = 4
	}
	if cfg.WarmQueries == 0 {
		cfg.WarmQueries = 4
	}
	logf := cfg.Logf
	if logf == nil {
		logf = log.Printf
	}
	c := &Catalog{
		cfg:     cfg,
		logf:    logf,
		entries: make(map[string]*entry),
		jobs:    make(chan string, 64),
		done:    make(chan struct{}),
		counters: obs.NewGroup(cLoads, cReloads, cUnloads, cBuilds, cSwaps,
			cEvictions, cLoadFailures, cAcquires, cNotReady, cWarmQueries,
			cMutations, cMutateIncremental, cMutateFallback),
	}
	for i := 0; i < cfg.Workers; i++ {
		c.wg.Add(1)
		go c.worker()
	}
	return c
}

// Close stops the build workers. Pending jobs are abandoned; graphs already
// ready keep serving (Acquire still works) so a server can drain on its own
// schedule.
func (c *Catalog) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	c.wg.Wait()
}

func (c *Catalog) worker() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case name := <-c.jobs:
			c.runJob(name)
		}
	}
}

// enqueue hands a name to the workers without racing Close: a closed catalog
// drops the job (the entry was already marked, but no worker will come).
func (c *Catalog) enqueue(name string) {
	select {
	case c.jobs <- name:
	case <-c.done:
	}
}

// AddPrebuilt installs an already-built instance synchronously as generation
// 1 — the path for a daemon's startup graph, which is built before the
// listener opens. src is remembered for later reloads. When the instance was
// loaded via snapshot.Map, pass its mapping (nil otherwise): the generation
// takes ownership and unmaps it after its last query drains.
func (c *Catalog) AddPrebuilt(name string, src Source, g *graph.Graph, h *ch.Hierarchy, m *snapshot.Mapping) (*Generation, error) {
	eng := c.newEngine(name, 1, g, h)
	gen := newGeneration(name, 1, g, h, eng, m)

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[name]; ok {
		// The rejected generation still owns the mapping; release it.
		gen.retire()
		return nil, fmt.Errorf("catalog: graph %q already exists", name)
	}
	c.clock++
	c.entries[name] = &entry{
		name: name, state: StateReady, src: src,
		gen: gen, genSeq: 1, lastUsed: c.clock,
	}
	c.counters.C(cSwaps).Inc()
	c.evictLocked(name)
	return gen, nil
}

// Load brings a named graph into service in the background. Loading an
// already-pending name is a no-op; loading a ready name is an error (use
// Reload); loading a failed or evicted name retries with the new source.
func (c *Catalog) Load(name string, src Source) error {
	if name == "" {
		return errors.New("catalog: empty graph name")
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("catalog: closed")
	}
	e, ok := c.entries[name]
	switch {
	case !ok:
		e = &entry{name: name, state: StateLoading, src: src, pending: true}
		c.entries[name] = e
	case e.pending:
		c.mu.Unlock()
		return nil // idempotent: a build for this name is already queued
	case e.state == StateReady:
		c.mu.Unlock()
		return fmt.Errorf("catalog: graph %q already loaded (use reload)", name)
	case e.state == StateDraining:
		c.mu.Unlock()
		return fmt.Errorf("catalog: graph %q is draining; retry when evicted", name)
	default: // failed or evicted: retry with the (possibly new) source
		e.setState(StateLoading)
		e.src = src
		e.err = nil
		e.pending = true
		e.deltas = nil // fresh lineage: the old replay log no longer applies
	}
	e.genSeq++ // pre-assign the generation this load will install
	c.counters.C(cLoads).Inc()
	c.mu.Unlock()
	c.enqueue(name)
	return nil
}

// Reload rebuilds a graph from its remembered source — replaying any accepted
// mutation deltas on top, so the rebuilt generation reproduces the graph's
// current logical state — and swaps the result in atomically. The old
// generation keeps serving until the swap, then drains. Returns the
// generation number the rebuild will install; reloading while a build is
// already pending returns that build's generation without queueing another.
func (c *Catalog) Reload(name string) (uint64, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return 0, errors.New("catalog: closed")
	}
	e, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		return 0, fmt.Errorf("catalog: %w: %q", ErrUnknownGraph, name)
	}
	if e.pending {
		gen := e.genSeq
		c.mu.Unlock()
		return gen, nil
	}
	switch e.state {
	case StateReady:
		// Stay ready: the new generation builds off to the side.
	case StateFailed, StateEvicted:
		e.setState(StateLoading)
		e.err = nil
	default:
		c.mu.Unlock()
		return 0, fmt.Errorf("catalog: graph %q is %s; cannot reload", name, e.state)
	}
	e.pending = true
	e.genSeq++ // pre-assign the generation this rebuild will install
	gen := e.genSeq
	c.counters.C(cReloads).Inc()
	c.mu.Unlock()
	c.enqueue(name)
	return gen, nil
}

// Unload takes a graph out of service: ready graphs drain their in-flight
// queries and become evicted; failed or evicted graphs are forgotten
// entirely. A graph mid-build cannot be unloaded.
func (c *Catalog) Unload(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return fmt.Errorf("catalog: %w: %q", ErrUnknownGraph, name)
	}
	if e.pending {
		return fmt.Errorf("catalog: graph %q has a build in progress; retry after it completes", name)
	}
	switch e.state {
	case StateReady:
		c.counters.C(cUnloads).Inc()
		c.retireLocked(e)
		return nil
	case StateFailed, StateEvicted:
		c.counters.C(cUnloads).Inc()
		delete(c.entries, name)
		return nil
	default:
		return fmt.Errorf("catalog: graph %q is %s; cannot unload", name, e.state)
	}
}

// retireLocked moves a ready entry to draining and arranges the
// draining→evicted edge once the last in-flight query releases.
func (c *Catalog) retireLocked(e *entry) {
	e.setState(StateDraining)
	gen := e.gen
	gen.retire()
	go func() {
		<-gen.Drained()
		c.mu.Lock()
		if e.state == StateDraining && e.gen == gen {
			e.setState(StateEvicted)
			e.gen = nil
		}
		c.mu.Unlock()
	}()
}

// Acquire returns the current generation of a ready graph with a reference
// held, plus the release function the caller must invoke when its query is
// finished (idempotent). The reference pins the generation across swaps: a
// concurrent reload or unload never invalidates it.
func (c *Catalog) Acquire(name string) (*Generation, func(), error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		c.counters.C(cNotReady).Inc()
		return nil, nil, fmt.Errorf("catalog: %w: %q", ErrUnknownGraph, name)
	}
	if e.state != StateReady || e.gen == nil {
		c.counters.C(cNotReady).Inc()
		return nil, nil, &NotReadyError{Name: name, State: e.state, Err: e.err}
	}
	c.clock++
	e.lastUsed = c.clock
	gen := e.gen
	gen.acquire()
	c.counters.C(cAcquires).Inc()
	var once sync.Once
	return gen, func() { once.Do(gen.release) }, nil
}

// AcquireTraced is Acquire with request tracing: when ctx carries a trace,
// the acquire is recorded as a "catalog_acquire" span under the context's
// current span, annotated with the resolved generation (or the failure), and
// the trace is tagged with the graph name for /debug/traces?graph= filtering.
func (c *Catalog) AcquireTraced(ctx context.Context, name string) (*Generation, func(), error) {
	sp := trace.SpanFromContext(ctx)
	if sp == nil {
		return c.Acquire(name)
	}
	acq := sp.StartChild("catalog_acquire")
	gen, release, err := c.Acquire(name)
	if err != nil {
		acq.SetAttr("error", err.Error())
	} else {
		acq.SetAttr("gen", gen.Gen)
		sp.Trace().SetGraph(name)
	}
	acq.End()
	return gen, release, err
}

// Features returns the cost-model feature description of a graph's current
// serving generation (its vertex/edge counts and weight class, plus the
// generation number so dataset rows can be tied to the exact graph version
// they were measured on). ok is false when the graph is unknown or not
// ready. It reads under the catalog lock without acquiring a reference —
// callers want O(1) metadata, not a pinned generation.
func (c *Catalog) Features(name string) (costmodel.Features, uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok || e.state != StateReady || e.gen == nil {
		return costmodel.Features{}, 0, false
	}
	g := e.gen.G
	return costmodel.Features{
		N:         g.NumVertices(),
		M:         g.NumEdges(),
		MaxWeight: g.MaxWeight(),
	}, e.gen.Gen, true
}

// runJob executes one background build: load the source, build the
// hierarchy if the source did not carry one, construct and warm a fresh
// engine, then swap it in. Initial loads walk the entry through
// loading→building→warming→ready; reloads leave the serving state alone.
func (c *Catalog) runJob(name string) {
	c.mu.Lock()
	e, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		return
	}
	src := e.src
	isReload := e.state == StateReady
	genNum := e.genSeq // pre-assigned by Load/Reload/Mutate when the job was queued
	deltas := append([]*mutate.Batch(nil), e.deltas...)
	c.mu.Unlock()

	start := time.Now()
	g, h, m, err := src.load(c.cfg.MMap, c.logf)
	if err != nil {
		c.failJob(name, fmt.Errorf("load %s: %w", src, err))
		return
	}
	c.advance(name, StateBuilding, isReload)
	if len(deltas) > 0 {
		// Replay the accepted-mutation log so the rebuilt generation carries
		// the graph's logical state, not the base source. The hierarchy is
		// rebuilt from scratch afterwards (a snapshot-carried one matches the
		// base graph, and the CH cache belongs to the base fingerprint).
		base := g
		for i, b := range deltas {
			g2, _, aerr := mutate.Apply(g, b)
			if aerr != nil {
				c.failJob(name, fmt.Errorf("replay delta %d/%d on %s: %w", i+1, len(deltas), src, aerr))
				return
			}
			g = g2
		}
		h = ch.BuildKruskal(g)
		if m != nil && !g.AliasesArrays(base) {
			// The replay produced fresh arrays; the mapping backs nothing.
			m.Close()
			m = nil
		}
	} else if h == nil {
		h = LoadOrBuildCH(g, src.CHCache, c.logf)
	}
	c.counters.C(cBuilds).Inc()

	eng := c.newEngine(name, genNum, g, h)
	gen := newGeneration(name, genNum, g, h, eng, m)
	c.advance(name, StateWarming, isReload)
	c.warm(eng, g)

	c.mu.Lock()
	e, ok = c.entries[name]
	if !ok || (e.state != StateWarming && e.state != StateReady) {
		// The entry vanished or changed under us (e.g. unloaded mid-build of
		// a reload); discard the built generation.
		c.mu.Unlock()
		gen.retire()
		return
	}
	old := e.gen
	e.gen = gen
	e.err = nil
	e.pending = false
	if e.state != StateReady {
		e.setState(StateReady)
	}
	c.clock++
	e.lastUsed = c.clock
	c.counters.C(cSwaps).Inc()
	c.evictLocked(name)
	c.mu.Unlock()
	if old != nil {
		old.retire()
	}
	residence := "heap"
	if gen.Mapped() {
		residence = "mmap"
	}
	c.logf("catalog: %s gen %d ready from %s (n=%d m=%d, %d bytes %s, %s)",
		name, genNum, src, g.NumVertices(), g.NumEdges(), gen.Bytes, residence, time.Since(start).Round(time.Millisecond))
}

// advance moves an initial load to its next lifecycle phase; reloads keep
// serving in ready and skip the walk.
func (c *Catalog) advance(name string, next State, isReload bool) {
	if isReload {
		return
	}
	c.mu.Lock()
	if e, ok := c.entries[name]; ok && validNext[e.state][next] {
		e.setState(next)
	}
	c.mu.Unlock()
}

// failJob records a build failure. An initial load lands in failed; a failed
// reload keeps the old generation serving and only records the error.
func (c *Catalog) failJob(name string, err error) {
	c.counters.C(cLoadFailures).Inc()
	c.logf("catalog: %s load failed: %v", name, err)
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[name]
	if !ok {
		return
	}
	e.pending = false
	e.err = err
	if e.state != StateReady && validNext[e.state][StateFailed] {
		e.setState(StateFailed)
	}
}

// newEngine builds the per-generation query plane. The key prefix makes
// cache and singleflight keys unique per (name, generation), so a stale
// generation's results can never be served for a new one.
func (c *Catalog) newEngine(name string, gen uint64, g *graph.Graph, h *ch.Hierarchy) *engine.Engine {
	ecfg := c.cfg.Engine
	ecfg.KeyPrefix = fmt.Sprintf("%s@%d|", name, gen)
	ecfg.Graph = name
	in := solver.NewInstanceWithHierarchy(g, par.NewExec(c.cfg.QueryWorkers), h)
	return engine.New(in, ecfg)
}

// warm primes a fresh engine with spread-out single-source queries so the
// query pools, the Thorup solver, and the result cache are hot before the
// generation takes real traffic.
func (c *Catalog) warm(eng *engine.Engine, g *graph.Graph) {
	n := g.NumVertices()
	k := c.cfg.WarmQueries
	if n == 0 || k <= 0 {
		return
	}
	if k > n {
		k = n
	}
	for i := 0; i < k; i++ {
		src := int32(i * n / k)
		if _, _, err := eng.Query(context.Background(), engine.Request{Sources: []int32{src}}); err == nil {
			c.counters.C(cWarmQueries).Inc()
		}
	}
}

// evictLocked enforces the memory budget: while ready graphs exceed it, the
// least-recently-used idle (no in-flight queries) ready graph other than
// except is drained out. Busy graphs are never evicted — the budget is a
// target, not a guillotine.
func (c *Catalog) evictLocked(except string) {
	if c.cfg.MemoryBudget <= 0 {
		return
	}
	for {
		var total int64
		var victim *entry
		for _, e := range c.entries {
			if e.state != StateReady || e.gen == nil {
				continue
			}
			total += e.gen.Bytes
			if e.name == except || e.gen.InFlight() > 0 {
				continue
			}
			if victim == nil || e.lastUsed < victim.lastUsed {
				victim = e
			}
		}
		if total <= c.cfg.MemoryBudget || victim == nil {
			return
		}
		c.counters.C(cEvictions).Inc()
		c.logf("catalog: evicting %s (LRU, %d bytes; ready total %d > budget %d)",
			victim.name, victim.gen.Bytes, total, c.cfg.MemoryBudget)
		c.retireLocked(victim)
	}
}

// WaitReady blocks until the named graph is ready with no build pending, the
// load fails, or the timeout expires. A polling helper for startup paths and
// tests; the serving path uses Acquire directly.
func (c *Catalog) WaitReady(name string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		c.mu.Lock()
		e, ok := c.entries[name]
		var state State
		var pending bool
		var lastErr error
		if ok {
			state, pending, lastErr = e.state, e.pending, e.err
		}
		c.mu.Unlock()
		switch {
		case !ok:
			return fmt.Errorf("catalog: %w: %q", ErrUnknownGraph, name)
		case state == StateReady && !pending:
			return nil
		case state == StateFailed && !pending:
			return lastErr
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("catalog: graph %q not ready after %s (state %s)", name, timeout, state)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// GraphStatus is one catalog row, shaped for a JSON listing endpoint.
type GraphStatus struct {
	Name     string `json:"name"`
	State    string `json:"state"`
	Gen      uint64 `json:"gen,omitempty"`
	Source   string `json:"source"`
	Vertices int    `json:"vertices,omitempty"`
	Edges    int64  `json:"edges,omitempty"`
	Bytes    int64  `json:"bytes,omitempty"`
	// HeapBytes/MappedBytes split Bytes by residence: process heap for
	// copy-loaded generations, mmap'd page cache for zero-copy ones.
	HeapBytes   int64 `json:"heap_bytes,omitempty"`
	MappedBytes int64 `json:"mapped_bytes,omitempty"`
	// ParentGen/DeltaSize expose delta lineage when the serving generation
	// came from a mutation: the generation it was derived from and the op
	// count of the delta. Deltas is the length of the accepted-mutation
	// replay log for the lineage.
	ParentGen uint64 `json:"parent_gen,omitempty"`
	DeltaSize int    `json:"delta_size,omitempty"`
	Deltas    int    `json:"deltas,omitempty"`
	InFlight  int64  `json:"in_flight,omitempty"`
	Pending   bool   `json:"pending,omitempty"`
	Error     string `json:"error,omitempty"`
}

// Status lists every known graph, sorted by name.
func (c *Catalog) Status() []GraphStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]GraphStatus, 0, len(c.entries))
	for _, e := range c.entries {
		gs := GraphStatus{
			Name:    e.name,
			State:   e.state.String(),
			Source:  e.src.String(),
			Pending: e.pending,
		}
		if e.gen != nil {
			gs.Gen = e.gen.Gen
			gs.Vertices = e.gen.G.NumVertices()
			gs.Edges = e.gen.G.NumEdges()
			gs.Bytes = e.gen.Bytes
			gs.HeapBytes = e.gen.HeapBytes
			gs.MappedBytes = e.gen.MappedBytes
			gs.ParentGen = e.gen.ParentGen
			gs.DeltaSize = e.gen.DeltaSize
			gs.InFlight = e.gen.InFlight()
		}
		gs.Deltas = len(e.deltas)
		if e.err != nil {
			gs.Error = e.err.Error()
		}
		out = append(out, gs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Counter returns the named catalog counter (see the c* constants' snapshot
// names). Unknown names panic.
func (c *Catalog) Counter(name string) int64 { return c.counters.C(name).Value() }

// StatsSnapshot returns the catalog's observable state for a /metrics
// endpoint: every counter plus occupancy against the budget.
func (c *Catalog) StatsSnapshot() map[string]any {
	out := make(map[string]any, 16)
	for k, v := range c.counters.Snapshot() {
		out[k] = v
	}
	c.mu.Lock()
	var ready int
	var bytes, heapBytes, mappedBytes int64
	states := make([]obs.GraphState, 0, len(c.entries))
	for _, e := range c.entries {
		states = append(states, obs.GraphState{Name: e.name, State: e.state.String()})
		if e.state == StateReady && e.gen != nil {
			ready++
			bytes += e.gen.Bytes
			heapBytes += e.gen.HeapBytes
			mappedBytes += e.gen.MappedBytes
		}
	}
	sort.Slice(states, func(i, j int) bool { return states[i].Name < states[j].Name })
	out["graph_states"] = states
	out["graphs"] = len(c.entries)
	out["ready"] = ready
	out["ready_bytes"] = bytes
	out["ready_heap_bytes"] = heapBytes
	out["ready_mapped_bytes"] = mappedBytes
	c.mu.Unlock()
	out["memory_budget"] = c.cfg.MemoryBudget
	out["build_workers"] = c.cfg.Workers
	return out
}
