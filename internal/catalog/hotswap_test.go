package catalog

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ch"
	"repro/internal/dijkstra"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestHotSwapZeroFailedQueries hammers one catalog name with concurrent
// queries while the main goroutine reloads it repeatedly. Every reload
// produces a graph with different weights, so any cross-generation staleness
// — a query mixing one generation's engine with another's graph, or a cache
// entry leaking across the swap — shows up as a distance that disagrees with
// Dijkstra run on the very graph the query acquired. The test requires:
//
//   - zero failed queries: once the graph is first ready, Acquire never
//     returns an error, across every swap;
//   - zero stale answers: each engine result matches its own generation's
//     graph exactly;
//   - every retired generation drains: refcounts reach zero and the drained
//     channel closes.
//
// Run under -race (make check does) to also prove the swap publishes the new
// generation safely.
func TestHotSwapZeroFailedQueries(t *testing.T) {
	const (
		reloads  = 6
		queriers = 8
		n        = 300
	)
	var version atomic.Uint64
	loader := func() (*graph.Graph, *ch.Hierarchy, error) {
		g := gen.Random(n, 4*n, 1<<10, gen.UWD, version.Add(1))
		return g, ch.BuildKruskal(g), nil
	}
	c := testCatalog(t, Config{Engine: engine.Config{CacheEntries: 64}})
	if err := c.Load("hot", Source{Loader: loader}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("hot", waitFor); err != nil {
		t.Fatal(err)
	}

	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		queries  atomic.Int64
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			src := int32(q % n)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				gen1, release, err := c.Acquire("hot")
				if err != nil {
					fail(fmt.Errorf("querier %d: acquire failed mid-swap: %w", q, err))
					return
				}
				res, _, err := gen1.Engine.Query(context.Background(),
					engine.Request{Sources: []int32{src}})
				if err != nil {
					release()
					fail(fmt.Errorf("querier %d: query on gen %d: %w", q, gen1.Gen, err))
					return
				}
				// The answer must be exact for the acquired generation's own
				// graph; a stale cache hit from another generation would
				// disagree (weights differ per version).
				want := dijkstra.SSSP(gen1.G, src)
				for v := range want {
					if res.Dist[v] != want[v] {
						release()
						fail(fmt.Errorf("querier %d: stale answer on gen %d at vertex %d: %d vs %d",
							q, gen1.Gen, v, res.Dist[v], want[v]))
						return
					}
				}
				release()
				queries.Add(1)
				src = (src + int32(queriers)) % n
			}
		}(q)
	}

	// Swap generations under load, holding on to each retired generation so
	// its drain can be verified.
	var retired []*Generation
	for r := 0; r < reloads; r++ {
		g, release, err := c.Acquire("hot")
		if err != nil {
			t.Fatal(err)
		}
		retired = append(retired, g)
		release()
		if _, err := c.Reload("hot"); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(waitFor)
		for {
			cur, rel, err := c.Acquire("hot")
			if err != nil {
				t.Fatalf("acquire during reload %d: %v", r, err)
			}
			gn := cur.Gen
			rel()
			if gn > g.Gen {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("reload %d never swapped", r)
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if q := queries.Load(); q < int64(queriers*reloads) {
		t.Fatalf("only %d queries completed; the swap loop starved the queriers", q)
	}
	for _, g := range retired {
		select {
		case <-g.Drained():
		case <-time.After(waitFor):
			t.Fatalf("generation %d never drained (in-flight %d)", g.Gen, g.InFlight())
		}
		if g.InFlight() != 0 {
			t.Fatalf("generation %d drained with %d references", g.Gen, g.InFlight())
		}
	}
	final, release, err := c.Acquire("hot")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if final.Gen != reloads+1 {
		t.Fatalf("final generation %d, want %d", final.Gen, reloads+1)
	}
	t.Logf("hot swap: %d queries across %d reloads, zero failures", queries.Load(), reloads)
}

// TestConcurrentAdminOps drives load/unload/reload of several names from
// many goroutines at once; the catalog must stay internally consistent (no
// panics from invalid lifecycle transitions, no deadlocks) and end with
// every name either ready, failed, or evicted.
func TestConcurrentAdminOps(t *testing.T) {
	c := testCatalog(t, Config{Workers: 3})
	names := []string{"a", "b", "c", "d"}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := names[i%len(names)]
			for j := 0; j < 10; j++ {
				switch (i + j) % 3 {
				case 0:
					c.Load(name, Source{Loader: loaderFor(uint64(i*100 + j))})
				case 1:
					c.Reload(name)
				case 2:
					c.Unload(name)
				}
				if g, release, err := c.Acquire(name); err == nil {
					if g.G.NumVertices() != 400 {
						t.Error("acquired a malformed generation")
					}
					release()
				}
			}
		}(i)
	}
	wg.Wait()
	// Let in-flight builds settle, then check terminal states.
	deadline := time.Now().Add(waitFor)
	for {
		settled := true
		for _, s := range c.Status() {
			if s.Pending || s.State == "loading" || s.State == "building" ||
				s.State == "warming" || s.State == "draining" {
				settled = false
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("catalog never settled: %+v", c.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	for _, s := range c.Status() {
		if s.State != "ready" && s.State != "evicted" && s.State != "failed" {
			t.Fatalf("non-terminal state after settle: %+v", s)
		}
	}
}
