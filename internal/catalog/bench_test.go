package catalog

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ch"
	"repro/internal/dimacs"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/snapshot"
	"repro/internal/solver"
)

// TestWriteCatalogBenchJSON emits BENCH_catalog.json when BENCH_CATALOG_OUT
// is set (see `make bench-catalog`): the ladder of graph-activation costs a
// catalog can pay — text parse plus hierarchy rebuild, v1 copy load, v2 copy
// load, cold mmap (first map of a file: full verification), warm mmap
// (re-map of a verified file: O(1)) — and the first-query latency of a
// warmed versus a cold engine, the cost the warming phase hides from the
// first client after a swap. Gates: v2 copy load >= 10x over text, and warm
// mmap >= 50x over the v1 copy load it replaces.
func TestWriteCatalogBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_CATALOG_OUT")
	if out == "" {
		t.Skip("set BENCH_CATALOG_OUT=path to write the catalog benchmark JSON")
	}

	dir := t.TempDir()
	g := gen.Random(1<<15, 1<<17, 1<<10, gen.UWD, 42)
	h := ch.BuildKruskal(g)

	grPath := filepath.Join(dir, "g.gr")
	f, err := os.Create(grPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dimacs.WriteGraph(f, g, "bench instance"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "g.snap")
	if err := snapshot.WriteFile(snapPath, g, h); err != nil {
		t.Fatal(err)
	}
	v1Path := filepath.Join(dir, "g.v1.snap")
	v1f, err := os.Create(v1Path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.WriteV1(v1f, g, h); err != nil {
		t.Fatal(err)
	}
	if err := v1f.Close(); err != nil {
		t.Fatal(err)
	}

	avg := func(reps int, fn func()) time.Duration {
		var total time.Duration
		for i := 0; i < reps; i++ {
			start := time.Now()
			fn()
			total += time.Since(start)
		}
		return total / time.Duration(reps)
	}

	// The text path a catalog without snapshots would pay: parse DIMACS, then
	// rebuild the Component Hierarchy.
	textLoad := avg(3, func() {
		rf, err := os.Open(grPath)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := dimacs.ReadGraph(rf)
		rf.Close()
		if err != nil {
			t.Fatal(err)
		}
		ch.BuildKruskal(g2)
	})
	v1Load := avg(10, func() {
		if _, _, err := snapshot.ReadFile(v1Path); err != nil {
			t.Fatal(err)
		}
	})
	snapLoad := avg(10, func() {
		if _, _, err := snapshot.ReadFile(snapPath); err != nil {
			t.Fatal(err)
		}
	})

	// Cold mmap: the first Map of a never-seen file pays full CRC
	// verification and a deep hierarchy check. Each rep copies the snapshot
	// to a fresh path (new inode) so none of them hits the verification
	// registry.
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	coldIdx := 0
	mmapCold := avg(5, func() {
		coldIdx++
		p := filepath.Join(dir, "cold", "g"+string(rune('0'+coldIdx))+".snap")
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		_, _, m, err := snapshot.Map(p)
		if err != nil {
			t.Skipf("mmap unavailable: %v", err)
		}
		m.Close()
	})
	// Prime the registry, then time the warm path the serving system
	// actually pays on every reload/evict-restore of an unchanged file.
	if _, _, m, err := snapshot.Map(snapPath); err != nil {
		t.Skipf("mmap unavailable: %v", err)
	} else {
		m.Close()
	}
	var mappings []*snapshot.Mapping
	mmapWarm := avg(20, func() {
		_, _, m, err := snapshot.Map(snapPath)
		if err != nil {
			t.Fatal(err)
		}
		mappings = append(mappings, m) // Close outside the clock
	})
	for _, m := range mappings {
		m.Close()
	}

	// First-query latency right after a swap: a cold engine pays core-solver
	// and pool construction on the first request; a warmed one already did.
	// Only the first post-swap query is timed — setup and warming run outside
	// the clock, exactly as the catalog runs them off the request path.
	firstQuery := func(warm bool) time.Duration {
		var total time.Duration
		const reps = 5
		for i := 0; i < reps; i++ {
			eng := engine.New(solver.NewInstanceWithHierarchy(g, par.NewExec(4), h), engine.Config{CacheEntries: 64})
			if warm {
				for _, src := range []int32{0, 1 << 13, 1 << 14, 3 << 13} {
					if _, _, err := eng.Query(context.Background(), engine.Request{Sources: []int32{src}}); err != nil {
						t.Fatal(err)
					}
				}
			}
			start := time.Now()
			if _, _, err := eng.Query(context.Background(), engine.Request{Sources: []int32{int32(77 + i)}}); err != nil {
				t.Fatal(err)
			}
			total += time.Since(start)
		}
		return total / reps
	}
	cold := firstQuery(false)
	warmed := firstQuery(true)

	grInfo, _ := os.Stat(grPath)
	snapInfo, _ := os.Stat(snapPath)
	speedup := float64(textLoad) / float64(snapLoad)
	mmapSpeedup := float64(v1Load) / float64(mmapWarm)
	doc := map[string]any{
		"vertices":            g.NumVertices(),
		"edges":               g.NumEdges(),
		"gr_bytes":            grInfo.Size(),
		"snapshot_bytes":      snapInfo.Size(),
		"text_load_ns":        textLoad.Nanoseconds(),
		"snapshot_v1_load_ns": v1Load.Nanoseconds(),
		"snapshot_load_ns":    snapLoad.Nanoseconds(),
		"snapshot_speedup":    speedup,
		"mmap_first_load_ns":  mmapCold.Nanoseconds(),
		"mmap_load_ns":        mmapWarm.Nanoseconds(),
		"mmap_speedup_vs_v1":  mmapSpeedup,
		"cold_first_query_ns": cold.Nanoseconds(),
		"warm_first_query_ns": warmed.Nanoseconds(),
		"warm_speedup":        float64(cold) / float64(warmed),
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: loads text %s / v1 copy %s / v2 copy %s / mmap cold %s / mmap warm %s (copy %.1fx, mmap %.0fx vs v1); first query warm %s vs cold %s",
		out, textLoad, v1Load, snapLoad, mmapCold, mmapWarm, speedup, mmapSpeedup, warmed, cold)
	if speedup < 10 {
		t.Errorf("snapshot load speedup %.1fx, want >= 10x over text parse + CH rebuild", speedup)
	}
	if mmapSpeedup < 50 {
		t.Errorf("warm mmap load speedup %.1fx over v1 copy load, want >= 50x", mmapSpeedup)
	}
}
