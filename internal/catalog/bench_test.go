package catalog

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/ch"
	"repro/internal/dimacs"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/par"
	"repro/internal/snapshot"
	"repro/internal/solver"
)

// TestWriteCatalogBenchJSON emits BENCH_catalog.json when BENCH_CATALOG_OUT
// is set (see `make bench-catalog`): snapshot load versus text parse plus
// hierarchy rebuild — the cost a catalog pays to bring a graph into service —
// and the first-query latency of a warmed versus a cold engine, the cost the
// warming phase hides from the first client after a swap.
func TestWriteCatalogBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_CATALOG_OUT")
	if out == "" {
		t.Skip("set BENCH_CATALOG_OUT=path to write the catalog benchmark JSON")
	}

	dir := t.TempDir()
	g := gen.Random(1<<15, 1<<17, 1<<10, gen.UWD, 42)
	h := ch.BuildKruskal(g)

	grPath := filepath.Join(dir, "g.gr")
	f, err := os.Create(grPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := dimacs.WriteGraph(f, g, "bench instance"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, "g.snap")
	if err := snapshot.WriteFile(snapPath, g, h); err != nil {
		t.Fatal(err)
	}

	avg := func(reps int, fn func()) time.Duration {
		var total time.Duration
		for i := 0; i < reps; i++ {
			start := time.Now()
			fn()
			total += time.Since(start)
		}
		return total / time.Duration(reps)
	}

	// The text path a catalog without snapshots would pay: parse DIMACS, then
	// rebuild the Component Hierarchy.
	textLoad := avg(3, func() {
		rf, err := os.Open(grPath)
		if err != nil {
			t.Fatal(err)
		}
		g2, err := dimacs.ReadGraph(rf)
		rf.Close()
		if err != nil {
			t.Fatal(err)
		}
		ch.BuildKruskal(g2)
	})
	snapLoad := avg(10, func() {
		if _, _, err := snapshot.ReadFile(snapPath); err != nil {
			t.Fatal(err)
		}
	})

	// First-query latency right after a swap: a cold engine pays core-solver
	// and pool construction on the first request; a warmed one already did.
	// Only the first post-swap query is timed — setup and warming run outside
	// the clock, exactly as the catalog runs them off the request path.
	firstQuery := func(warm bool) time.Duration {
		var total time.Duration
		const reps = 5
		for i := 0; i < reps; i++ {
			eng := engine.New(solver.NewInstanceWithHierarchy(g, par.NewExec(4), h), engine.Config{CacheEntries: 64})
			if warm {
				for _, src := range []int32{0, 1 << 13, 1 << 14, 3 << 13} {
					if _, _, err := eng.Query(context.Background(), engine.Request{Sources: []int32{src}}); err != nil {
						t.Fatal(err)
					}
				}
			}
			start := time.Now()
			if _, _, err := eng.Query(context.Background(), engine.Request{Sources: []int32{int32(77 + i)}}); err != nil {
				t.Fatal(err)
			}
			total += time.Since(start)
		}
		return total / reps
	}
	cold := firstQuery(false)
	warmed := firstQuery(true)

	grInfo, _ := os.Stat(grPath)
	snapInfo, _ := os.Stat(snapPath)
	speedup := float64(textLoad) / float64(snapLoad)
	doc := map[string]any{
		"vertices":            g.NumVertices(),
		"edges":               g.NumEdges(),
		"gr_bytes":            grInfo.Size(),
		"snapshot_bytes":      snapInfo.Size(),
		"text_load_ns":        textLoad.Nanoseconds(),
		"snapshot_load_ns":    snapLoad.Nanoseconds(),
		"snapshot_speedup":    speedup,
		"cold_first_query_ns": cold.Nanoseconds(),
		"warm_first_query_ns": warmed.Nanoseconds(),
		"warm_speedup":        float64(cold) / float64(warmed),
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: snapshot load %s vs text %s (%.1fx), first query warm %s vs cold %s",
		out, snapLoad, textLoad, speedup, warmed, cold)
	if speedup < 10 {
		t.Errorf("snapshot load speedup %.1fx, want >= 10x over text parse + CH rebuild", speedup)
	}
}
