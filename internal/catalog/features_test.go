package catalog

import (
	"testing"
)

// Features must expose the serving generation's cost-model features without
// pinning a reference, and report ok=false for unknown or not-ready graphs.
func TestFeatures(t *testing.T) {
	c := testCatalog(t, Config{})
	if _, _, ok := c.Features("missing"); ok {
		t.Fatal("unknown graph reported features")
	}
	if err := c.Load("g", Source{Loader: loaderFor(1)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}
	f, genNum, ok := c.Features("g")
	if !ok {
		t.Fatal("ready graph reported no features")
	}
	if f.N != 400 || f.M != 1600 || f.MaxWeight == 0 || genNum != 1 {
		t.Fatalf("features = %+v gen=%d", f, genNum)
	}
	if f.Sources != 0 {
		t.Fatal("graph-level features must leave Sources unset")
	}
	// A reload bumps the generation the features are tied to.
	if _, err := c.Reload("g"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}
	if _, genNum, ok := c.Features("g"); !ok || genNum != 2 {
		t.Fatalf("post-reload gen = %d ok=%v, want 2", genNum, ok)
	}
	c.Unload("g")
	if _, _, ok := c.Features("g"); ok {
		t.Fatal("unloaded graph reported features")
	}
}
