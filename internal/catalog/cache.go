package catalog

import (
	"os"
	"path/filepath"

	"repro/internal/ch"
	"repro/internal/graph"
)

// LoadOrBuildCH returns the graph's Component Hierarchy, preferring the
// cache file when it exists and matches. A cache built for a different graph
// — the stored fingerprint (n, m, CSR checksum) disagrees with g — or a
// pre-fingerprint cache is refused by ch.ReadFrom with a clear error; the
// refusal is logged and the hierarchy rebuilt, so a stale cache can slow a
// start but never produce wrong answers. A fresh build is written back to
// the cache path (best-effort).
func LoadOrBuildCH(g *graph.Graph, chFile string, logf func(string, ...any)) *ch.Hierarchy {
	if chFile != "" {
		if f, err := os.Open(chFile); err == nil {
			h, lerr := ch.ReadFrom(f, g)
			f.Close()
			if lerr == nil {
				return h
			}
			logf("catalog: refusing CH cache %s: %v (rebuilding)", chFile, lerr)
		}
	}
	h := ch.BuildKruskal(g)
	if chFile != "" {
		if err := WriteCHCache(h, chFile); err != nil {
			logf("catalog: CH cache write: %v", err)
		}
	}
	return h
}

// WriteCHCache persists the hierarchy atomically: serialise to a temp file
// in the destination directory, close it, then rename into place. A crash
// mid-write leaves the old cache (or nothing) — never a truncated file that
// the next start would have to detect.
func WriteCHCache(h *ch.Hierarchy, chFile string) error {
	dir := filepath.Dir(chFile)
	f, err := os.CreateTemp(dir, filepath.Base(chFile)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := h.WriteTo(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, chFile); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
