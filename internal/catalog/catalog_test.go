package catalog

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/ch"
	"repro/internal/cli"
	"repro/internal/dijkstra"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/snapshot"
)

const waitFor = 30 * time.Second

func testCatalog(t *testing.T, cfg Config) *Catalog {
	t.Helper()
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	c := New(cfg)
	t.Cleanup(c.Close)
	return c
}

// loaderFor yields graphs of the given seed; distinct seeds give distinct
// weights, so cross-generation staleness is observable in distances.
func loaderFor(seed uint64) func() (*graph.Graph, *ch.Hierarchy, error) {
	return func() (*graph.Graph, *ch.Hierarchy, error) {
		g := gen.Random(400, 1600, 1<<10, gen.UWD, seed)
		return g, ch.BuildKruskal(g), nil
	}
}

func TestInitialLoadLifecycle(t *testing.T) {
	c := testCatalog(t, Config{})
	if err := c.Load("g", Source{Loader: loaderFor(1)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}
	gen1, release, err := c.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	if gen1.Gen != 1 || gen1.Name != "g" {
		t.Fatalf("generation %s@%d, want g@1", gen1.Name, gen1.Gen)
	}
	res, _, err := gen1.Engine.Query(context.Background(), engine.Request{Sources: []int32{0}})
	if err != nil {
		t.Fatal(err)
	}
	want := dijkstra.SSSP(gen1.G, 0)
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("distance mismatch at %d: %d vs %d", v, res.Dist[v], want[v])
		}
	}
	st := c.Status()
	if len(st) != 1 || st[0].State != "ready" || st[0].Gen != 1 || st[0].Vertices != 400 {
		t.Fatalf("status %+v", st)
	}
	if c.Counter(cSwaps) != 1 || c.Counter(cLoads) != 1 {
		t.Fatalf("counters: swaps=%d loads=%d", c.Counter(cSwaps), c.Counter(cLoads))
	}
}

func TestAcquireErrors(t *testing.T) {
	c := testCatalog(t, Config{})
	if _, _, err := c.Acquire("nope"); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("want ErrUnknownGraph, got %v", err)
	}
	// A slow loader keeps the entry in a not-ready phase.
	started := make(chan struct{})
	unblock := make(chan struct{})
	src := Source{Loader: func() (*graph.Graph, *ch.Hierarchy, error) {
		close(started)
		<-unblock
		return loaderFor(1)()
	}}
	if err := c.Load("slow", src); err != nil {
		t.Fatal(err)
	}
	<-started
	_, _, err := c.Acquire("slow")
	var nr *NotReadyError
	if !errors.As(err, &nr) || nr.State == StateReady {
		t.Fatalf("want NotReadyError mid-build, got %v", err)
	}
	close(unblock)
	if err := c.WaitReady("slow", waitFor); err != nil {
		t.Fatal(err)
	}
}

func TestLoadIdempotentWhilePendingAndErrorsWhenReady(t *testing.T) {
	c := testCatalog(t, Config{})
	unblock := make(chan struct{})
	src := Source{Loader: func() (*graph.Graph, *ch.Hierarchy, error) {
		<-unblock
		return loaderFor(1)()
	}}
	if err := c.Load("g", src); err != nil {
		t.Fatal(err)
	}
	if err := c.Load("g", src); err != nil {
		t.Fatalf("pending load not idempotent: %v", err)
	}
	close(unblock)
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}
	if c.Counter(cLoads) != 1 {
		t.Fatalf("loads=%d, want 1", c.Counter(cLoads))
	}
	if err := c.Load("g", src); err == nil || !strings.Contains(err.Error(), "already loaded") {
		t.Fatalf("loading a ready graph: %v", err)
	}
}

func TestLoadFailureAndRetry(t *testing.T) {
	c := testCatalog(t, Config{})
	boom := errors.New("disk on fire")
	if err := c.Load("g", Source{Loader: func() (*graph.Graph, *ch.Hierarchy, error) {
		return nil, nil, boom
	}}); err != nil {
		t.Fatal(err)
	}
	err := c.WaitReady("g", waitFor)
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("want load failure surfaced, got %v", err)
	}
	_, _, err = c.Acquire("g")
	var nr *NotReadyError
	if !errors.As(err, &nr) || nr.State != StateFailed || !errors.Is(nr.Err, boom) {
		t.Fatalf("acquire after failure: %v", err)
	}
	if c.Counter(cLoadFailures) != 1 {
		t.Fatalf("load_failures=%d", c.Counter(cLoadFailures))
	}
	// Retrying with a working source recovers.
	if err := c.Load("g", Source{Loader: loaderFor(2)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}
}

func TestUnloadDrainsInFlight(t *testing.T) {
	c := testCatalog(t, Config{})
	if err := c.Load("g", Source{Loader: loaderFor(1)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}
	g1, release, err := c.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Unload("g"); err != nil {
		t.Fatal(err)
	}
	// Out of service for new queries immediately...
	if _, _, err := c.Acquire("g"); err == nil {
		t.Fatal("acquired a draining graph")
	}
	// ...but the held generation still answers, and is not drained yet.
	if _, _, err := g1.Engine.Query(context.Background(), engine.Request{Sources: []int32{3}}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-g1.Drained():
		t.Fatal("drained while a query held a reference")
	default:
	}
	release()
	select {
	case <-g1.Drained():
	case <-time.After(waitFor):
		t.Fatal("never drained after release")
	}
	// The entry settles in evicted and can be loaded again.
	deadline := time.Now().Add(waitFor)
	for {
		st := c.Status()
		if len(st) == 1 && st[0].State == "evicted" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stuck: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if err := c.Load("g", Source{Loader: loaderFor(3)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}
	g2, release2, err := c.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer release2()
	if g2.Gen != 2 {
		t.Fatalf("gen %d after reload-from-evicted, want 2", g2.Gen)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	c := testCatalog(t, Config{})
	if err := c.Load("g", Source{Loader: loaderFor(1)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}
	gen1, release, err := c.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	release()
	release() // double release must not underflow the refcount
	if n := gen1.InFlight(); n != 0 {
		t.Fatalf("in-flight %d after double release", n)
	}
}

func TestReloadKeepsServingAndFailedReloadKeepsOldGeneration(t *testing.T) {
	c := testCatalog(t, Config{})
	if err := c.Load("g", Source{Loader: loaderFor(1)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}

	// Swap the source so the reload fails; the old generation must survive.
	c.mu.Lock()
	c.entries["g"].src = Source{Loader: func() (*graph.Graph, *ch.Hierarchy, error) {
		return nil, nil, errors.New("flaky source")
	}}
	c.mu.Unlock()
	if _, err := c.Reload("g"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitFor)
	for c.Counter(cLoadFailures) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("reload never failed")
		}
		time.Sleep(time.Millisecond)
	}
	g1, release, err := c.Acquire("g")
	if err != nil {
		t.Fatalf("old generation gone after failed reload: %v", err)
	}
	if g1.Gen != 1 {
		t.Fatalf("gen %d, want the original 1", g1.Gen)
	}
	release()
	st := c.Status()
	if st[0].Error == "" || st[0].State != "ready" {
		t.Fatalf("status should stay ready and record the error: %+v", st[0])
	}

	// A working reload swaps in a fresh generation and drains the old one.
	c.mu.Lock()
	c.entries["g"].src = Source{Loader: loaderFor(9)}
	c.mu.Unlock()
	if _, err := c.Reload("g"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}
	g3, release3, err := c.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer release3()
	if g3.Gen <= g1.Gen {
		t.Fatalf("generation did not advance: %d -> %d", g1.Gen, g3.Gen)
	}
	select {
	case <-g1.Drained():
	case <-time.After(waitFor):
		t.Fatal("old generation never drained after swap")
	}
}

func TestMemoryBudgetEvictsLRU(t *testing.T) {
	// Budget fits roughly two of the three identical graphs.
	probe := gen.Random(400, 1600, 1<<10, gen.UWD, 1)
	one := probe.MemoryBytes() + ch.BuildKruskal(probe).ComputeStats().CHBytes
	c := testCatalog(t, Config{MemoryBudget: 2*one + one/2})
	for i, name := range []string{"a", "b", "c"} {
		if err := c.Load(name, Source{Loader: loaderFor(uint64(i + 1))}); err != nil {
			t.Fatal(err)
		}
		if err := c.WaitReady(name, waitFor); err != nil {
			t.Fatal(err)
		}
		// Touch so LRU order is load order: a oldest.
		_, release, err := c.Acquire(name)
		if err != nil {
			t.Fatal(err)
		}
		release()
	}
	if c.Counter(cEvictions) == 0 {
		t.Fatal("no eviction despite exceeding the budget")
	}
	// "a" was least recently used; it must be the one out of service.
	deadline := time.Now().Add(waitFor)
	for {
		if _, _, err := c.Acquire("a"); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("a never evicted")
		}
		time.Sleep(time.Millisecond)
	}
	for _, name := range []string{"b", "c"} {
		_, release, err := c.Acquire(name)
		if err != nil {
			t.Fatalf("%s should have survived: %v", name, err)
		}
		release()
	}
	// An evicted graph reloads on demand from its remembered source.
	if err := c.Load("a", Source{Loader: loaderFor(1)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("a", waitFor); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotAndSpecSources(t *testing.T) {
	dir := t.TempDir()
	g := gen.Random(300, 1200, 256, gen.UWD, 4)
	h := ch.BuildKruskal(g)
	snap := filepath.Join(dir, "g.snap")
	if err := snapshot.WriteFile(snap, g, h); err != nil {
		t.Fatal(err)
	}
	c := testCatalog(t, Config{})
	if err := c.Load("snap", Source{Snapshot: snap}); err != nil {
		t.Fatal(err)
	}
	if err := c.Load("spec", Source{
		Spec:    cli.Spec{Class: "rand", LogN: 8, LogC: 8, Seed: 5},
		CHCache: filepath.Join(dir, "spec.chb"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Load("empty", Source{}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("snap", waitFor); err != nil {
		t.Fatal(err)
	}
	gs, release, err := c.Acquire("snap")
	if err != nil {
		t.Fatal(err)
	}
	if gs.G.Fingerprint() != g.Fingerprint() {
		t.Fatal("snapshot source loaded a different graph")
	}
	release()
	if err := c.WaitReady("spec", waitFor); err != nil {
		t.Fatal(err)
	}
	if _, err := filepath.Glob(filepath.Join(dir, "spec.chb")); err != nil {
		t.Fatal(err)
	}
	// The empty source must fail with a clear error, not hang or panic.
	err = c.WaitReady("empty", waitFor)
	if err == nil || !strings.Contains(err.Error(), "empty source") {
		t.Fatalf("empty source: %v", err)
	}
}

func TestStatsSnapshotShape(t *testing.T) {
	c := testCatalog(t, Config{MemoryBudget: 1 << 30})
	if err := c.Load("g", Source{Loader: loaderFor(1)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}
	st := c.StatsSnapshot()
	for _, key := range []string{cLoads, cSwaps, cEvictions, "graphs", "ready", "ready_bytes", "memory_budget", "build_workers"} {
		if _, ok := st[key]; !ok {
			t.Errorf("stats missing %q", key)
		}
	}
	if st["ready"].(int) != 1 || st["ready_bytes"].(int64) <= 0 {
		t.Fatalf("stats %+v", st)
	}
}
