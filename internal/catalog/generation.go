package catalog

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/ch"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/snapshot"
)

// State is a graph's position in the catalog lifecycle:
//
//	loading ──▶ building ──▶ warming ──▶ ready ──▶ draining ──▶ evicted
//	   │            │            │                                 │
//	   └────────────┴────────────┴──▶ failed ──────(load)──────────┘
//
// A reload does not leave ready: the new generation walks the
// loading/building/warming phases off to the side while the old one keeps
// serving, and the swap is a single pointer exchange.
type State int32

const (
	// StateLoading: the graph source (snapshot, DIMACS file, or generator) is
	// being read.
	StateLoading State = iota
	// StateBuilding: the Component Hierarchy is being constructed (skipped in
	// effect when a snapshot carried one).
	StateBuilding
	// StateWarming: the fresh engine is primed with a few queries so the
	// first real request does not pay pool and cache cold-start costs.
	StateWarming
	// StateReady: serving queries.
	StateReady
	// StateDraining: removed from service; in-flight queries on the final
	// generation are completing.
	StateDraining
	// StateEvicted: fully out of memory; the source is remembered so a load
	// can bring the graph back.
	StateEvicted
	// StateFailed: the last load or build errored; the error is retained and
	// a new load may retry.
	StateFailed
)

func (s State) String() string {
	switch s {
	case StateLoading:
		return "loading"
	case StateBuilding:
		return "building"
	case StateWarming:
		return "warming"
	case StateReady:
		return "ready"
	case StateDraining:
		return "draining"
	case StateEvicted:
		return "evicted"
	case StateFailed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// validNext encodes the lifecycle edges. Transitions are entirely internal to
// the package, so an invalid one is a programming error and panics rather
// than limping on with a corrupted lifecycle.
var validNext = map[State]map[State]bool{
	StateLoading:  {StateBuilding: true, StateFailed: true},
	StateBuilding: {StateWarming: true, StateFailed: true},
	StateWarming:  {StateReady: true, StateFailed: true},
	StateReady:    {StateDraining: true},
	StateDraining: {StateEvicted: true},
	StateEvicted:  {StateLoading: true},
	StateFailed:   {StateLoading: true},
}

// Generation is one immutable (graph, hierarchy, engine) triple installed
// under a name. Queries acquire a generation, run against it, and release it;
// a swap retires the old generation, which stays fully usable until its last
// in-flight query releases, then reports itself drained. Nothing is ever
// mutated in place — a reload installs a new Generation.
type Generation struct {
	// Name is the catalog name this generation serves.
	Name string
	// Gen is the monotonically increasing generation number within the name.
	Gen uint64
	// G and H are the instance; Engine is its private query plane (its cache
	// keys carry Name@Gen, so results can never alias across generations).
	G      *graph.Graph
	H      *ch.Hierarchy
	Engine *engine.Engine
	// Bytes is the resident footprint charged against the memory budget:
	// HeapBytes + MappedBytes.
	Bytes int64
	// HeapBytes is what the instance costs in process heap (CSR plus
	// hierarchy arrays for copy-loaded generations; zero for mapped ones,
	// whose arrays alias the file mapping).
	HeapBytes int64
	// MappedBytes is the size of the mmap'd snapshot backing the instance
	// (zero for copy-loaded generations). Mapped pages are reclaimable page
	// cache, not heap, but still count against the budget: they are the
	// working set a query touches.
	MappedBytes int64
	// ParentGen and DeltaSize record delta lineage: a generation produced by
	// a mutation names the generation it was derived from and how many ops
	// the delta carried. Both are zero for generations built from source.
	ParentGen uint64
	DeltaSize int

	// mapping, when non-nil, owns the mmap'd file the arrays alias. It is
	// closed exactly once, after the generation is retired and the last
	// in-flight query has released — never while a query can still read the
	// arrays.
	mapping *snapshot.Mapping

	// parent, when non-nil, holds a reference on the generation whose CSR
	// arrays this one aliases (a weight-only mutation overlay shares offsets
	// and targets with its parent). Set only when the parent's storage chain
	// reaches an mmap — heap arrays survive through the garbage collector,
	// but mapped ones must not be unmapped while a descendant can read them.
	// The reference is released in finishDrain, chaining transitively.
	parent *Generation

	refs        atomic.Int64
	retired     atomic.Bool
	drainedOnce sync.Once
	drained     chan struct{}
}

func newGeneration(name string, gen uint64, g *graph.Graph, h *ch.Hierarchy, eng *engine.Engine, m *snapshot.Mapping) *Generation {
	gn := &Generation{
		Name:    name,
		Gen:     gen,
		G:       g,
		H:       h,
		Engine:  eng,
		mapping: m,
		drained: make(chan struct{}),
	}
	if m != nil {
		gn.MappedBytes = m.Bytes()
	} else {
		gn.HeapBytes = g.MemoryBytes() + h.ComputeStats().CHBytes
	}
	gn.Bytes = gn.HeapBytes + gn.MappedBytes
	return gn
}

// Mapped reports whether this generation serves straight from an mmap'd
// snapshot.
func (g *Generation) Mapped() bool { return g.mapping != nil }

// finishDrain runs the end-of-life sequence exactly once: unmap the backing
// file (no query can hold the arrays anymore — the last reference is gone
// and the generation is retired), then announce drained.
func (g *Generation) finishDrain() {
	g.drainedOnce.Do(func() {
		if g.mapping != nil {
			g.mapping.Close()
		}
		if g.parent != nil {
			g.parent.release()
		}
		close(g.drained)
	})
}

// acquire takes a reference. Callers hold the catalog lock, which is what
// orders acquire against retire: a generation is only handed out while it is
// the entry's current one, and retire happens after the swap.
func (g *Generation) acquire() { g.refs.Add(1) }

// release drops a reference; the last release of a retired generation unmaps
// its backing file and closes the drained channel. Safe after the query
// outlives its HTTP deadline — the generation (and its mapping) stays valid
// until this returns.
func (g *Generation) release() {
	if g.refs.Add(-1) == 0 && g.retired.Load() {
		g.finishDrain()
	}
}

// retire marks the generation as no longer current. In-flight queries keep
// their references and finish normally; once the count reaches zero the
// mapping is unmapped and the drained channel closes. Idempotent.
func (g *Generation) retire() {
	g.retired.Store(true)
	if g.refs.Load() == 0 {
		g.finishDrain()
	}
}

// Drained is closed once the generation is retired, its last in-flight
// query has released, and any backing mapping is unmapped.
func (g *Generation) Drained() <-chan struct{} { return g.drained }

// InFlight reports the current reference count.
func (g *Generation) InFlight() int64 { return g.refs.Load() }
