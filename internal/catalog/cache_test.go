package catalog

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/ch"
	"repro/internal/gen"
)

// The CH cache must be written atomically (temp + rename, no stray files)
// and load back identically.
func TestCacheAtomicWriteAndReload(t *testing.T) {
	g := gen.Random(500, 2000, 1<<10, gen.UWD, 7)
	h := ch.BuildKruskal(g)
	dir := t.TempDir()
	cache := filepath.Join(dir, "test.chb")

	h1 := LoadOrBuildCH(g, cache, t.Logf) // builds and writes
	if h1.NumNodes() != h.NumNodes() {
		t.Fatalf("built hierarchy differs: %d vs %d nodes", h1.NumNodes(), h.NumNodes())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "test.chb" {
		t.Fatalf("cache dir should hold exactly test.chb, got %v", entries)
	}

	h2 := LoadOrBuildCH(g, cache, t.Logf) // loads from cache
	if h2.NumNodes() != h1.NumNodes() || h2.Root() != h1.Root() {
		t.Fatalf("reloaded hierarchy differs")
	}

	// A corrupt (truncated) cache is ignored and rebuilt, not fatal.
	if err := os.WriteFile(cache, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	h3 := LoadOrBuildCH(g, cache, t.Logf)
	if h3.NumNodes() != h1.NumNodes() {
		t.Fatalf("rebuild after corruption differs")
	}
}

// A cache built for a different graph must be refused — the stored
// fingerprint disagrees — and the hierarchy rebuilt for the right graph.
func TestCacheRefusesWrongGraph(t *testing.T) {
	g1 := gen.Random(500, 2000, 1<<10, gen.UWD, 7)
	g2 := gen.Random(500, 2000, 1<<10, gen.UWD, 8) // same shape, different weights
	dir := t.TempDir()
	cache := filepath.Join(dir, "g1.chb")

	LoadOrBuildCH(g1, cache, t.Logf) // seeds the cache with g1's hierarchy

	refused := false
	logf := func(format string, args ...any) {
		refused = true
		t.Logf(format, args...)
	}
	h := LoadOrBuildCH(g2, cache, logf)
	if !refused {
		t.Fatal("mismatched cache was not refused")
	}
	if h.Graph() != g2 {
		t.Fatal("rebuilt hierarchy not bound to the requested graph")
	}
	// The rebuild overwrote the cache; loading for g2 is now clean.
	refused = false
	LoadOrBuildCH(g2, cache, logf)
	if refused {
		t.Fatal("freshly rewritten cache refused")
	}
}

// WriteCHCache must not leave a temp file behind when serialisation fails.
func TestWriteCHCacheCleansUpOnError(t *testing.T) {
	g := gen.Random(500, 2000, 1<<10, gen.UWD, 7)
	h := ch.BuildKruskal(g)
	dir := t.TempDir()
	// Writing into a path whose parent is a file forces CreateTemp to fail.
	if err := WriteCHCache(h, filepath.Join(dir, "missing", "x.chb")); err == nil {
		t.Fatal("expected error for unwritable directory")
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 0 {
		t.Fatalf("stray files: %v", entries)
	}
}
