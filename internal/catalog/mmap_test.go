package catalog

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ch"
	"repro/internal/dijkstra"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/snapshot"
)

// writeMappedSnap writes a fresh v2 snapshot for the given seed at path
// (atomically: new inode each time) and returns the graph it encodes.
func writeMappedSnap(t *testing.T, path string, n int, seed uint64) *graph.Graph {
	t.Helper()
	g := gen.Random(n, 4*n, 1<<10, gen.UWD, seed)
	if err := snapshot.WriteFile(path, g, ch.BuildKruskal(g)); err != nil {
		t.Fatal(err)
	}
	return g
}

// requireCatalogMmap skips on platforms where snapshot.Map cannot serve
// (no mmap, or big-endian).
func requireCatalogMmap(t *testing.T, path string) {
	t.Helper()
	_, _, m, err := snapshot.Map(path)
	if errors.Is(err, snapshot.ErrNotMappable) {
		t.Skipf("mmap snapshots unsupported here: %v", err)
	}
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMmapHotSwapChurn is the mmap analogue of TestHotSwapZeroFailedQueries:
// one catalog name backed by an on-disk v2 snapshot, served zero-copy
// (Config.MMap), reloaded repeatedly while queriers hammer it. Each reload
// first rewrites the snapshot file with different weights (atomic rename, so
// a new inode — exercising the re-verification path in snapshot.Map), so any
// use-after-unmap or cross-generation staleness is observable: the former
// crashes under -race/SIGSEGV, the latter disagrees with Dijkstra run on the
// acquired generation's own graph. Every retired generation must drain and
// close its mapping only after its last in-flight query released.
func TestMmapHotSwapChurn(t *testing.T) {
	const (
		reloads  = 5
		queriers = 6
		n        = 300
	)
	path := filepath.Join(t.TempDir(), "churn.snap")
	writeMappedSnap(t, path, n, 1)
	requireCatalogMmap(t, path)

	c := testCatalog(t, Config{MMap: true, Engine: engine.Config{CacheEntries: 64}})
	if err := c.Load("m", Source{Snapshot: path}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("m", waitFor); err != nil {
		t.Fatal(err)
	}
	g0, release, err := c.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	if !g0.Mapped() || g0.MappedBytes == 0 || g0.HeapBytes != 0 {
		t.Fatalf("generation not served from mmap: mapped=%v mappedBytes=%d heapBytes=%d",
			g0.Mapped(), g0.MappedBytes, g0.HeapBytes)
	}
	release()

	var (
		stop     = make(chan struct{})
		wg       sync.WaitGroup
		queries  atomic.Int64
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for q := 0; q < queriers; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			src := int32(q % n)
			for {
				select {
				case <-stop:
					return
				default:
				}
				gen1, release, err := c.Acquire("m")
				if err != nil {
					fail(fmt.Errorf("querier %d: acquire failed mid-swap: %w", q, err))
					return
				}
				res, _, err := gen1.Engine.Query(context.Background(),
					engine.Request{Sources: []int32{src}})
				if err != nil {
					release()
					fail(fmt.Errorf("querier %d: query on gen %d: %w", q, gen1.Gen, err))
					return
				}
				// Verify against Dijkstra on the mapped arrays themselves —
				// this both checks staleness and keeps reads on the mapping
				// live right up until release.
				want := dijkstra.SSSP(gen1.G, src)
				for v := range want {
					if res.Dist[v] != want[v] {
						release()
						fail(fmt.Errorf("querier %d: stale answer on gen %d at vertex %d",
							q, gen1.Gen, v))
						return
					}
				}
				release()
				queries.Add(1)
				src = (src + int32(queriers)) % n
			}
		}(q)
	}

	var retired []*Generation
	for r := 0; r < reloads; r++ {
		g, rel, err := c.Acquire("m")
		if err != nil {
			t.Fatal(err)
		}
		retired = append(retired, g)
		rel()
		// New snapshot contents → new inode → the next generation maps and
		// fully re-verifies a different file.
		writeMappedSnap(t, path, n, uint64(r+2))
		if _, err := c.Reload("m"); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(waitFor)
		for {
			cur, rel, err := c.Acquire("m")
			if err != nil {
				t.Fatalf("acquire during reload %d: %v", r, err)
			}
			gn := cur.Gen
			rel()
			if gn > g.Gen {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("reload %d never swapped", r)
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if q := queries.Load(); q < int64(queriers*reloads) {
		t.Fatalf("only %d queries completed; the swap loop starved the queriers", q)
	}
	for _, g := range retired {
		select {
		case <-g.Drained():
		case <-time.After(waitFor):
			t.Fatalf("generation %d never drained (in-flight %d)", g.Gen, g.InFlight())
		}
		if g.InFlight() != 0 {
			t.Fatalf("generation %d drained with %d references", g.Gen, g.InFlight())
		}
		// Drained implies finishDrain ran, which closes the mapping; a second
		// Close must report the same (nil) result, proving the first happened.
		if !g.Mapped() {
			t.Fatalf("generation %d lost its mapped identity", g.Gen)
		}
		if err := g.mapping.Close(); err != nil {
			t.Fatalf("generation %d mapping close: %v", g.Gen, err)
		}
	}
	t.Logf("mmap hot swap: %d queries across %d reloads, zero failures", queries.Load(), reloads)
}

// TestMmapEvictionUnmaps loads two mapped graphs under a budget that only
// fits one; the budget sweep must evict the idle one and its drain must close
// the mapping. The survivor keeps serving from its mapping.
func TestMmapEvictionUnmaps(t *testing.T) {
	dir := t.TempDir()
	pathA := filepath.Join(dir, "a.snap")
	pathB := filepath.Join(dir, "b.snap")
	writeMappedSnap(t, pathA, 400, 1)
	writeMappedSnap(t, pathB, 400, 2)
	requireCatalogMmap(t, pathA)

	// A mapped generation's Bytes is exactly its file size, so the budget can
	// be sized up front to fit one snapshot but not two.
	fi, err := os.Stat(pathA)
	if err != nil {
		t.Fatal(err)
	}
	c := testCatalog(t, Config{MMap: true, MemoryBudget: fi.Size() + fi.Size()/2})
	if err := c.Load("a", Source{Snapshot: pathA}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("a", waitFor); err != nil {
		t.Fatal(err)
	}
	genA, relA, err := c.Acquire("a")
	if err != nil {
		t.Fatal(err)
	}
	relA()
	if !genA.Mapped() {
		t.Fatal("graph a not mapped")
	}
	if genA.Bytes != fi.Size() {
		t.Fatalf("mapped generation charges %d bytes, file is %d", genA.Bytes, fi.Size())
	}
	// Loading b must push a out (a is idle, LRU-first).
	if err := c.Load("b", Source{Snapshot: pathB}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("b", waitFor); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitFor)
	for {
		if _, _, err := c.Acquire("a"); err != nil {
			break // evicted (or draining): no longer acquirable
		}
		if time.Now().After(deadline) {
			t.Fatalf("graph a never evicted under budget: %+v", c.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	select {
	case <-genA.Drained():
	case <-time.After(waitFor):
		t.Fatalf("evicted generation never drained (in-flight %d)", genA.InFlight())
	}
	if err := genA.mapping.Close(); err != nil {
		t.Fatalf("evicted mapping close: %v", err)
	}
	// b still serves from its own mapping.
	genB, relB, err := c.Acquire("b")
	if err != nil {
		t.Fatal(err)
	}
	defer relB()
	if !genB.Mapped() {
		t.Fatal("graph b not mapped")
	}
	res, _, err := genB.Engine.Query(context.Background(), engine.Request{Sources: []int32{0}})
	if err != nil {
		t.Fatal(err)
	}
	want := dijkstra.SSSP(genB.G, 0)
	for v := range want {
		if res.Dist[v] != want[v] {
			t.Fatalf("post-eviction distance mismatch at %d", v)
		}
	}
}
