package catalog

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/dijkstra"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/mutate"
)

// weightBatch builds a weight-only batch over the first k distinct edge slots
// of g, bumping each weight by delta (clamped into the legal range).
func weightBatch(g *graph.Graph, k int, delta uint32) *mutate.Batch {
	seen := make(map[[2]int32]bool)
	var ops []mutate.Op
	for _, e := range g.Edges() {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		if seen[[2]int32{u, v}] {
			continue
		}
		seen[[2]int32{u, v}] = true
		w := e.W + delta
		if w > graph.MaxWeight {
			w = e.W - delta
		}
		ops = append(ops, mutate.Op{Op: mutate.OpSetWeight, U: e.U, V: e.V, W: w})
		if len(ops) == k {
			break
		}
	}
	return &mutate.Batch{Ops: ops}
}

// checkDistances verifies the serving generation's engine agrees with a
// Dijkstra run on want for a few sources.
func checkDistances(t *testing.T, gn *Generation, want *graph.Graph) {
	t.Helper()
	for _, src := range []int32{0, 7, 123} {
		res, _, err := gn.Engine.Query(context.Background(), engine.Request{Sources: []int32{src}})
		if err != nil {
			t.Fatal(err)
		}
		exp := dijkstra.SSSP(want, src)
		for v := range exp {
			if res.Dist[v] != exp[v] {
				t.Fatalf("gen %d source %d: dist[%d]=%d, want %d", gn.Gen, src, v, res.Dist[v], exp[v])
			}
		}
	}
}

func TestMutateIncremental(t *testing.T) {
	c := testCatalog(t, Config{})
	if err := c.Load("g", Source{Loader: loaderFor(7)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}
	g1, rel1, err := c.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	base := g1.G
	rel1()

	b := weightBatch(base, 4, 3)
	res, err := c.Mutate("g", b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback || res.Gen != 2 || !res.Aliased {
		t.Fatalf("mutate result %+v, want incremental aliased gen 2", res)
	}

	g2, rel2, err := c.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer rel2()
	if g2.Gen != 2 || g2.ParentGen != 1 || g2.DeltaSize != len(b.Ops) {
		t.Fatalf("generation lineage gen=%d parent=%d delta=%d, want 2/1/%d",
			g2.Gen, g2.ParentGen, g2.DeltaSize, len(b.Ops))
	}
	if !g2.G.AliasesArrays(base) {
		t.Fatal("weight-only mutation should alias the parent's structure arrays")
	}
	want, err := mutate.ReferenceApply(base, b)
	if err != nil {
		t.Fatal(err)
	}
	checkDistances(t, g2, want)

	if c.Counter(cMutations) != 1 || c.Counter(cMutateIncremental) != 1 || c.Counter(cMutateFallback) != 0 {
		t.Fatalf("counters: mutations=%d incr=%d fb=%d",
			c.Counter(cMutations), c.Counter(cMutateIncremental), c.Counter(cMutateFallback))
	}
	st := c.Status()
	if st[0].ParentGen != 1 || st[0].DeltaSize != len(b.Ops) || st[0].Deltas != 1 {
		t.Fatalf("status lineage %+v", st[0])
	}
}

func TestMutateStructuralNotAliased(t *testing.T) {
	c := testCatalog(t, Config{})
	if err := c.Load("g", Source{Loader: loaderFor(8)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}
	g1, rel1, err := c.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	base := g1.G
	rel1()

	b := &mutate.Batch{Ops: []mutate.Op{{Op: mutate.OpInsert, U: 1, V: 399, W: 2}}}
	res, err := c.Mutate("g", b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback || res.Aliased {
		t.Fatalf("structural mutation result %+v, want incremental non-aliased", res)
	}
	g2, rel2, err := c.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer rel2()
	want, err := mutate.ReferenceApply(base, b)
	if err != nil {
		t.Fatal(err)
	}
	checkDistances(t, g2, want)

	// The parent holds no pin from the child: it must drain promptly.
	select {
	case <-g1.Drained():
	case <-time.After(waitFor):
		t.Fatal("parent generation never drained after structural mutation")
	}
}

func TestMutateFallbackRebuild(t *testing.T) {
	c := testCatalog(t, Config{MutateThreshold: -1}) // force fallback
	if err := c.Load("g", Source{Loader: loaderFor(9)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}
	g1, rel1, err := c.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	base := g1.G
	rel1()

	b := weightBatch(base, 6, 5)
	res, err := c.Mutate("g", b)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Fallback || res.Gen != 2 {
		t.Fatalf("mutate result %+v, want fallback gen 2", res)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}
	g2, rel2, err := c.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer rel2()
	if g2.Gen != 2 {
		t.Fatalf("gen %d after fallback rebuild, want 2", g2.Gen)
	}
	if g2.ParentGen != 0 {
		t.Fatalf("fallback rebuild should not record delta lineage, got parent %d", g2.ParentGen)
	}
	want, err := mutate.ReferenceApply(base, b)
	if err != nil {
		t.Fatal(err)
	}
	checkDistances(t, g2, want)
	if c.Counter(cMutateFallback) != 1 || c.Counter(cMutateIncremental) != 0 {
		t.Fatalf("counters: incr=%d fb=%d", c.Counter(cMutateIncremental), c.Counter(cMutateFallback))
	}
}

func TestReloadReplaysDeltaLog(t *testing.T) {
	c := testCatalog(t, Config{})
	if err := c.Load("g", Source{Loader: loaderFor(10)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}
	g1, rel1, err := c.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	base := g1.G
	rel1()

	b1 := weightBatch(base, 3, 2)
	if _, err := c.Mutate("g", b1); err != nil {
		t.Fatal(err)
	}
	g2, rel2, err := c.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	b2 := &mutate.Batch{Ops: []mutate.Op{{Op: mutate.OpInsert, U: 0, V: 250, W: 1}}}
	rel2()
	if _, err := c.Mutate("g", b2); err != nil {
		t.Fatal(err)
	}
	_ = g2

	// A reload rebuilds from the source and must replay both deltas: the
	// rebuilt generation serves the mutated graph, not the base one.
	gen, err := c.Reload("g")
	if err != nil {
		t.Fatal(err)
	}
	if gen != 4 {
		t.Fatalf("reload pre-assigned gen %d, want 4", gen)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}
	g4, rel4, err := c.Acquire("g")
	if err != nil {
		t.Fatal(err)
	}
	defer rel4()
	if g4.Gen != 4 || g4.ParentGen != 0 {
		t.Fatalf("rebuilt generation gen=%d parent=%d, want 4/0", g4.Gen, g4.ParentGen)
	}
	want, err := mutate.ReferenceApply(base, b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	checkDistances(t, g4, want)
	st := c.Status()
	if st[0].Deltas != 2 {
		t.Fatalf("delta log length %d after reload, want 2 (log survives reloads)", st[0].Deltas)
	}
}

func TestMutateErrors(t *testing.T) {
	c := testCatalog(t, Config{})
	ok := &mutate.Batch{Ops: []mutate.Op{{Op: mutate.OpInsert, U: 0, V: 1, W: 1}}}

	if _, err := c.Mutate("nope", ok); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("want ErrUnknownGraph, got %v", err)
	}

	if err := c.Load("g", Source{Loader: loaderFor(11)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}

	// Invalid batches surface mutate.ErrInvalid and change nothing.
	bad := &mutate.Batch{Ops: []mutate.Op{{Op: mutate.OpSetWeight, U: 0, V: 1, W: 0}}}
	if _, err := c.Mutate("g", bad); !errors.Is(err, mutate.ErrInvalid) {
		t.Fatalf("want ErrInvalid, got %v", err)
	}
	if g, rel, err := c.Acquire("g"); err != nil || g.Gen != 1 {
		t.Fatalf("rejected mutation must not advance the generation: gen=%v err=%v", g, err)
	} else {
		rel()
	}

	// A pending build conflicts.
	c.mu.Lock()
	c.entries["g"].pending = true
	c.mu.Unlock()
	_, err := c.Mutate("g", ok)
	if err == nil || !strings.Contains(err.Error(), "build in progress") {
		t.Fatalf("want pending conflict, got %v", err)
	}
	c.mu.Lock()
	c.entries["g"].pending = false
	c.mu.Unlock()

	// Not-ready graphs conflict with NotReadyError.
	if err := c.Unload("g"); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(waitFor)
	for {
		st := c.Status()
		if st[0].State == "evicted" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("graph never evicted: %+v", st[0])
		}
		time.Sleep(time.Millisecond)
	}
	var nre *NotReadyError
	if _, err := c.Mutate("g", ok); !errors.As(err, &nre) {
		t.Fatalf("want NotReadyError, got %v", err)
	}
}

// TestMutateAliasedMmapChain chains weight-only mutations on top of an
// mmap-served snapshot. Each overlay aliases the mapped offset/target arrays,
// so every ancestor must stay mapped (not drained) while the chain head
// serves, then the whole chain must unwind — drain and unmap — once a reload
// swaps in a generation with its own storage.
func TestMutateAliasedMmapChain(t *testing.T) {
	path := filepath.Join(t.TempDir(), "chain.snap")
	writeMappedSnap(t, path, 300, 42)
	requireCatalogMmap(t, path)

	c := testCatalog(t, Config{MMap: true})
	if err := c.Load("m", Source{Snapshot: path}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("m", waitFor); err != nil {
		t.Fatal(err)
	}
	g1, rel1, err := c.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	if !g1.Mapped() {
		rel1()
		t.Skip("snapshot did not map; aliasing chain not exercised")
	}
	base := g1.G
	rel1()

	b1 := weightBatch(base, 3, 2)
	if _, err := c.Mutate("m", b1); err != nil {
		t.Fatal(err)
	}
	g2, rel2, err := c.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	b2 := weightBatch(g2.G, 3, 4)
	rel2()
	if _, err := c.Mutate("m", b2); err != nil {
		t.Fatal(err)
	}

	g3, rel3, err := c.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	if !g3.G.AliasesArrays(base) {
		t.Fatal("overlay chain should still alias the mapped arrays")
	}
	// The retired ancestors must NOT have drained: the chain head reads
	// their mapped storage.
	select {
	case <-g1.Drained():
		t.Fatal("mapped root drained while an aliasing descendant serves")
	case <-g2.Drained():
		t.Fatal("intermediate overlay drained while an aliasing descendant serves")
	default:
	}
	want, err := mutate.ReferenceApply(base, b1, b2)
	if err != nil {
		t.Fatal(err)
	}
	checkDistances(t, g3, want)
	rel3()

	// A reload rebuilds with fresh storage (replaying the deltas); the old
	// chain unwinds: head drains, releasing each ancestor in turn.
	if _, err := c.Reload("m"); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("m", waitFor); err != nil {
		t.Fatal(err)
	}
	for i, gn := range []*Generation{g3, g2, g1} {
		select {
		case <-gn.Drained():
		case <-time.After(waitFor):
			t.Fatalf("chain generation %d (gen %d) never drained", i, gn.Gen)
		}
	}
	g4, rel4, err := c.Acquire("m")
	if err != nil {
		t.Fatal(err)
	}
	defer rel4()
	checkDistances(t, g4, want)
}

// TestMutateUnderLoad streams queries while a chain of mutations swaps
// generations; every response must be exactly consistent with the generation
// that served it, and every retired generation must drain.
func TestMutateUnderLoad(t *testing.T) {
	c := testCatalog(t, Config{})
	if err := c.Load("g", Source{Loader: loaderFor(12)}); err != nil {
		t.Fatal(err)
	}
	if err := c.WaitReady("g", waitFor); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var queries atomic.Int64
	var firstErr error
	var mu sync.Mutex
	fail := func(format string, args ...any) {
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
		mu.Unlock()
	}
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				gn, rel, err := c.Acquire("g")
				if err != nil {
					fail("acquire: %v", err)
					return
				}
				src := int32((q*131 + i*17) % gn.G.NumVertices())
				res, _, err := gn.Engine.Query(context.Background(), engine.Request{Sources: []int32{src}})
				if err != nil {
					rel()
					fail("query: %v", err)
					return
				}
				exp := dijkstra.SSSP(gn.G, src)
				for v := range exp {
					if res.Dist[v] != exp[v] {
						rel()
						fail("gen %d source %d: dist[%d]=%d want %d", gn.Gen, src, v, res.Dist[v], exp[v])
						return
					}
				}
				rel()
				queries.Add(1)
			}
		}(q)
	}

	var retired []*Generation
	for r := 0; r < 8; r++ {
		gn, rel, err := c.Acquire("g")
		if err != nil {
			t.Fatal(err)
		}
		b := weightBatch(gn.G, 3, uint32(r+1))
		retired = append(retired, gn)
		rel()
		if _, err := c.Mutate("g", b); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	for _, gn := range retired {
		select {
		case <-gn.Drained():
		case <-time.After(waitFor):
			t.Fatalf("generation %d never drained (in-flight %d)", gn.Gen, gn.InFlight())
		}
	}
	if queries.Load() == 0 {
		t.Fatal("no queries completed under mutation load")
	}
	t.Logf("mutate under load: %d queries across 8 mutations", queries.Load())
}
