package catalog

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/mutate"
)

// MutateResult reports an accepted mutation. Gen is the generation the batch
// produced: already serving when Fallback is false (the incremental repair
// path installed it synchronously), or pre-assigned to a queued background
// rebuild when Fallback is true (poll /graphs or WaitReady for readiness).
type MutateResult struct {
	// Gen is the generation number the mutation produced (or will produce,
	// on the fallback path).
	Gen uint64
	// Fallback reports that the delta exceeded the incremental threshold and
	// a background full rebuild (source + delta replay) was queued instead.
	Fallback bool
	// Touched is the distinct mutated-endpoint count; Frac is it as a
	// fraction of the vertex set — the number the threshold judged.
	Touched int
	Frac    float64
	// Aliased reports that the new generation's CSR shares offset and target
	// arrays with its parent (weight-only batch); meaningful only on the
	// incremental path.
	Aliased bool
}

// Mutate applies a validated mutation batch to a ready graph and installs the
// result as a new generation. Small deltas (touched-vertex fraction within
// Config.MutateThreshold) take the incremental path — copy-on-write CSR
// overlay plus hierarchy repair — and swap in synchronously, typically
// milliseconds. Larger deltas fall back to a queued background full rebuild
// that replays the accepted-delta log on top of the source, exactly like a
// reload; the old generation keeps serving until the rebuild swaps in.
//
// Errors: validation failures wrap mutate.ErrInvalid (map to 400); unknown
// names wrap ErrUnknownGraph (404); a graph mid-build or not ready is a
// conflict (409/503). Exactly one mutation or build is in flight per name at
// a time — the pending flag serializes mutations against loads, reloads,
// unloads, and each other.
func (c *Catalog) Mutate(name string, b *mutate.Batch) (MutateResult, error) {
	var res MutateResult
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return res, errors.New("catalog: closed")
	}
	e, ok := c.entries[name]
	if !ok {
		c.mu.Unlock()
		return res, fmt.Errorf("catalog: %w: %q", ErrUnknownGraph, name)
	}
	if e.pending {
		c.mu.Unlock()
		return res, fmt.Errorf("catalog: graph %q has a build in progress; retry after it completes", name)
	}
	if e.state != StateReady || e.gen == nil {
		c.mu.Unlock()
		return res, &NotReadyError{Name: name, State: e.state, Err: e.err}
	}
	parent := e.gen
	parent.acquire() // pin the parent arrays across the off-lock compute
	e.pending = true // serialize: no reload/unload/mutation until we finish
	threshold := c.cfg.MutateThreshold
	c.mu.Unlock()

	start := time.Now()
	mres, err := mutate.Mutate(parent.G, parent.H, b, mutate.Options{Threshold: threshold})
	if err != nil {
		c.mu.Lock()
		e.pending = false
		c.mu.Unlock()
		parent.release()
		return res, err
	}
	c.counters.C(cMutations).Inc() // accepted batches only; a rejected delta changes nothing
	res.Touched, res.Frac = mres.Touched, mres.Frac

	if mres.Fallback {
		// Too large for incremental repair: log the delta and queue a full
		// rebuild, which replays the log on top of the source. The queued job
		// owns the pending flag from here.
		c.mu.Lock()
		e.deltas = append(e.deltas, b)
		e.genSeq++ // pre-assign the generation the rebuild will install
		res.Gen = e.genSeq
		res.Fallback = true
		c.counters.C(cMutateFallback).Inc()
		c.mu.Unlock()
		parent.release()
		c.enqueue(name)
		c.logf("catalog: %s mutation (%d ops, %d touched, frac %.3f) exceeds threshold; queued full rebuild as gen %d",
			name, len(b.Ops), res.Touched, res.Frac, res.Gen)
		return res, nil
	}

	// Incremental: build the generation and swap synchronously. No warming —
	// the parent's arrays are hot and the repair reused most of the
	// hierarchy; the first queries pay only a cold result cache.
	c.mu.Lock()
	e.genSeq++
	genNum := e.genSeq
	c.mu.Unlock()
	eng := c.newEngine(name, genNum, mres.G, mres.H)
	gen := newGeneration(name, genNum, mres.G, mres.H, eng, nil)
	gen.ParentGen = parent.Gen
	gen.DeltaSize = len(b.Ops)
	// When the overlay shares offset/target arrays with a parent whose
	// storage chain reaches an mmap, hand our pin to the new generation; it
	// releases it on drain, so the mapping stays valid while any descendant
	// can still read it. Heap-backed parents need no pin — the overlay's
	// slices keep the shared arrays alive through the garbage collector.
	needPin := mres.Aliased && (parent.mapping != nil || parent.parent != nil)
	if needPin {
		gen.parent = parent
	}

	c.mu.Lock()
	e.deltas = append(e.deltas, b)
	old := e.gen
	e.gen = gen
	e.err = nil
	e.pending = false
	c.clock++
	e.lastUsed = c.clock
	c.counters.C(cSwaps).Inc()
	c.counters.C(cMutateIncremental).Inc()
	c.evictLocked(name)
	c.mu.Unlock()
	old.retire() // old == parent: our pin keeps it readable until released
	if !needPin {
		parent.release() // the parent pin has no further use
	}
	c.logf("catalog: %s gen %d mutated from gen %d (%d ops, %d touched, reused %d/%d nodes, aliased=%v, %s)",
		name, genNum, parent.Gen, len(b.Ops), res.Touched, mres.Stats.ReusedNodes,
		mres.Stats.ReusedNodes+mres.Stats.NewNodes, mres.Aliased, time.Since(start).Round(time.Microsecond))
	res.Gen = genNum
	res.Aliased = mres.Aliased
	return res, nil
}
