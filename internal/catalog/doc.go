// Package catalog manages a set of named shortest-path instances — graph,
// Component Hierarchy, and query engine — behind one serving surface. The
// paper's two-phase shape (build the hierarchy once, answer many queries)
// makes the build the expensive step, so the catalog keeps it entirely off
// the request path: background workers load snapshots or build hierarchies,
// warm the fresh engine, and then install the result with a single atomic
// generation swap. In-flight queries keep the generation they acquired until
// they release it, so a reload never fails a running query and never lets a
// query observe a mix of old and new state.
//
// Each graph moves through an explicit lifecycle (see State), and the
// catalog enforces a memory budget by evicting the least-recently-used idle
// graph; evicted graphs remember their source and can be loaded again on
// demand.
//
// See DESIGN.md §9 ("Graph catalog & snapshots") for how this package fits the system.
package catalog
