package mutate

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/ch"
	"repro/internal/graph"
)

// Op kinds accepted in a mutation batch.
const (
	OpSetWeight = "set_weight"
	OpInsert    = "insert"
	OpDelete    = "delete"
)

// Limits on one mutation request. MaxOps bounds validation and repair work
// per call; MaxRequestBytes bounds the JSON body a server will buffer.
const (
	MaxOps          = 65536
	MaxRequestBytes = 4 << 20
)

// DefaultThreshold is the touched-vertex fraction above which Mutate
// signals fallback to a full rebuild.
const DefaultThreshold = 0.05

// ErrInvalid marks a batch that fails validation — a malformed op, an
// out-of-range endpoint, a reference to a missing edge, or conflicting ops on
// one edge. Servers map it to 400; everything else is an internal failure.
var ErrInvalid = errors.New("invalid mutation")

// Op is one edge mutation. set_weight re-weights every stored copy of edge
// (u,v) — parallel copies do not survive with distinct weights; delete
// removes every copy; insert adds one new copy (parallel edges and
// self-loops are allowed, matching what the DIMACS generators emit).
type Op struct {
	Op string `json:"op"`
	U  int32  `json:"u"`
	V  int32  `json:"v"`
	W  uint32 `json:"w,omitempty"`
}

// Batch is one mutation request: ops applied together as a single delta,
// producing one new generation. At most one op per undirected edge slot is
// allowed per batch — sequencing within a batch would make the delta
// order-sensitive and the replay log ambiguous.
type Batch struct {
	Ops []Op `json:"ops"`
}

// ParseRequest decodes a JSON mutation request strictly: unknown fields,
// trailing garbage, and bodies over MaxRequestBytes are rejected. The result
// still needs Validate against the target graph.
func ParseRequest(r io.Reader) (*Batch, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxRequestBytes+1))
	dec.DisallowUnknownFields()
	var b Batch
	if err := dec.Decode(&b); err != nil {
		return nil, fmt.Errorf("%w: bad request body: %v", ErrInvalid, err)
	}
	if err := checkTrailing(dec); err != nil {
		return nil, err
	}
	return &b, nil
}

func checkTrailing(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("%w: trailing data after request object", ErrInvalid)
	}
	return nil
}

// pairKey normalizes an undirected edge slot.
func pairKey(u, v int32) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{u, v}
}

// Validate checks the batch against the graph it will be applied to: op kinds
// and endpoint ranges, weight bounds (the same ones Builder.AddEdge
// enforces), existence of set_weight/delete targets, and one-op-per-edge.
// All failures wrap ErrInvalid.
func (b *Batch) Validate(g *graph.Graph) error {
	if len(b.Ops) == 0 {
		return fmt.Errorf("%w: batch has no ops", ErrInvalid)
	}
	if len(b.Ops) > MaxOps {
		return fmt.Errorf("%w: batch has %d ops (max %d)", ErrInvalid, len(b.Ops), MaxOps)
	}
	n := int32(g.NumVertices())
	seen := make(map[[2]int32]bool, len(b.Ops))
	for i, op := range b.Ops {
		if op.U < 0 || op.U >= n || op.V < 0 || op.V >= n {
			return fmt.Errorf("%w: op %d: edge (%d,%d) out of range [0,%d)", ErrInvalid, i, op.U, op.V, n)
		}
		k := pairKey(op.U, op.V)
		if seen[k] {
			return fmt.Errorf("%w: op %d: duplicate op on edge (%d,%d)", ErrInvalid, i, k[0], k[1])
		}
		seen[k] = true
		switch op.Op {
		case OpSetWeight, OpInsert:
			if op.W == 0 {
				return fmt.Errorf("%w: op %d: %s needs a positive weight", ErrInvalid, i, op.Op)
			}
			if op.W > graph.MaxWeight {
				return fmt.Errorf("%w: op %d: weight %d exceeds max %d", ErrInvalid, i, op.W, graph.MaxWeight)
			}
		case OpDelete:
			if op.W != 0 {
				return fmt.Errorf("%w: op %d: delete takes no weight", ErrInvalid, i)
			}
		default:
			return fmt.Errorf("%w: op %d: unknown op %q (want %s, %s, or %s)", ErrInvalid, i, op.Op, OpSetWeight, OpInsert, OpDelete)
		}
		if op.Op == OpSetWeight || op.Op == OpDelete {
			if !edgeExists(g, op.U, op.V) {
				return fmt.Errorf("%w: op %d: %s of missing edge (%d,%d)", ErrInvalid, i, op.Op, op.U, op.V)
			}
		}
	}
	return nil
}

func edgeExists(g *graph.Graph, u, v int32) bool {
	ts, _ := g.Neighbors(u)
	for _, t := range ts {
		if t == v {
			return true
		}
	}
	return false
}

// Split separates the batch into the three normalized lists graph.Overlay
// takes.
func (b *Batch) Split() (set, ins, del []graph.Edge) {
	for _, op := range b.Ops {
		e := graph.Edge{U: op.U, V: op.V, W: op.W}
		switch op.Op {
		case OpSetWeight:
			set = append(set, e)
		case OpInsert:
			ins = append(ins, e)
		case OpDelete:
			del = append(del, e)
		}
	}
	return set, ins, del
}

// Touched returns the sorted distinct endpoints of every op — the dirty leaf
// set ch.Repair starts from.
func (b *Batch) Touched() []int32 {
	seen := make(map[int32]bool, 2*len(b.Ops))
	out := make([]int32, 0, 2*len(b.Ops))
	for _, op := range b.Ops {
		for _, v := range [2]int32{op.U, op.V} {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EncodeDelta renders the batch in its canonical byte form: the form the
// catalog's replay log stores and repro files embed. DecodeDelta inverts it
// exactly (the fuzz target holds ParseRequest-accepted batches to the same
// round-trip).
func EncodeDelta(b *Batch) []byte {
	data, err := json.Marshal(b)
	if err != nil {
		// Batch is plain data; Marshal cannot fail on it.
		panic(fmt.Sprintf("mutate: encode delta: %v", err))
	}
	return data
}

// DecodeDelta parses a canonical delta produced by EncodeDelta.
func DecodeDelta(data []byte) (*Batch, error) {
	return ParseRequest(bytes.NewReader(data))
}

// Apply validates the batch and produces the mutated graph through the
// copy-on-write overlay. aliased reports that the result shares CSR arrays
// with g (weight-only batches), in which case g's backing storage must
// outlive the result.
func Apply(g *graph.Graph, b *Batch) (g2 *graph.Graph, aliased bool, err error) {
	if err := b.Validate(g); err != nil {
		return nil, false, err
	}
	set, ins, del := b.Split()
	g2, aliased, err = g.Overlay(set, ins, del)
	if err != nil {
		// Validate vouched for the batch; an overlay rejection is a bug here,
		// not client error.
		return nil, false, fmt.Errorf("mutate: overlay after validation: %v", err)
	}
	return g2, aliased, nil
}

// ReferenceApply replays batches onto g's edge multiset naively — no overlay,
// no repair, just list surgery and a from-scratch CSR build — and returns the
// resulting graph. It is the independent reference the stress oracle and the
// catalog's fallback path diff the incremental machinery against, so it must
// stay implementation-disjoint from Apply.
func ReferenceApply(g *graph.Graph, batches ...*Batch) (*graph.Graph, error) {
	edges := g.Edges()
	for bi, b := range batches {
		for i, op := range b.Ops {
			k := pairKey(op.U, op.V)
			switch op.Op {
			case OpSetWeight:
				found := 0
				for j := range edges {
					if pairKey(edges[j].U, edges[j].V) == k {
						edges[j].W = op.W
						found++
					}
				}
				if found == 0 {
					return nil, fmt.Errorf("%w: batch %d op %d: set_weight of missing edge (%d,%d)", ErrInvalid, bi, i, op.U, op.V)
				}
			case OpDelete:
				kept := edges[:0]
				found := 0
				for _, e := range edges {
					if pairKey(e.U, e.V) == k {
						found++
						continue
					}
					kept = append(kept, e)
				}
				if found == 0 {
					return nil, fmt.Errorf("%w: batch %d op %d: delete of missing edge (%d,%d)", ErrInvalid, bi, i, op.U, op.V)
				}
				edges = kept
			case OpInsert:
				edges = append(edges, graph.Edge{U: op.U, V: op.V, W: op.W})
			default:
				return nil, fmt.Errorf("%w: batch %d op %d: unknown op %q", ErrInvalid, bi, i, op.Op)
			}
		}
	}
	return graph.FromEdges(g.NumVertices(), edges), nil
}

// Options tunes Mutate.
type Options struct {
	// Threshold is the maximum fraction of vertices a batch may touch and
	// still take the incremental repair path; larger deltas signal fallback.
	// 0 means DefaultThreshold; a negative value forces fallback always
	// (stress and operational escape hatch).
	Threshold float64
	// InjectFault, for tests only, makes the incremental path mis-apply the
	// first weighted op by one — the planted repair bug the stress harness
	// proves its mutation oracle catches.
	InjectFault bool
}

// Result is an accepted mutation. With Fallback set, the batch validated but
// exceeded the threshold: G/H are nil and the caller should rebuild in the
// background from its source plus replay log. Otherwise G is the overlay
// graph, H the incrementally repaired hierarchy, and Aliased reports whether
// G shares arrays with the parent graph.
type Result struct {
	G       *graph.Graph
	H       *ch.Hierarchy
	Aliased bool
	Stats   ch.RepairStats
	// Additive reports that the repair ran on the additive fast path (no
	// deletes, no weight increases): structure replayed from the old
	// hierarchy instead of re-sweeping the graph's edges.
	Additive bool
	// Touched is the distinct mutated-endpoint count; Frac is it as a
	// fraction of the vertex set — the number the threshold judged.
	Touched  int
	Frac     float64
	Fallback bool
}

// Mutate validates the batch against g and either performs the incremental
// path — copy-on-write overlay plus hierarchy repair — or reports that the
// delta is too large and the caller should fall back to a full rebuild.
// Validation errors wrap ErrInvalid; any other error means the incremental
// machinery itself failed and a full rebuild is the safe recovery.
func Mutate(g *graph.Graph, h *ch.Hierarchy, b *Batch, opts Options) (*Result, error) {
	if err := b.Validate(g); err != nil {
		return nil, err
	}
	touched := b.Touched()
	res := &Result{Touched: len(touched)}
	if n := g.NumVertices(); n > 0 {
		res.Frac = float64(len(touched)) / float64(n)
	}
	threshold := opts.Threshold
	if threshold == 0 {
		threshold = DefaultThreshold
	}
	if res.Frac > threshold {
		res.Fallback = true
		return res, nil
	}

	applied := b
	if opts.InjectFault {
		applied = corruptForTest(b)
	}
	set, ins, del := applied.Split()
	g2, aliased, err := g.Overlay(set, ins, del)
	if err != nil {
		return nil, fmt.Errorf("mutate: overlay: %v", err)
	}
	var (
		h2    *ch.Hierarchy
		stats ch.RepairStats
	)
	if len(del) == 0 && setsNonIncreasing(g, set) {
		// Connectivity can only grow: every insert adds an edge and every
		// set_weight lowers one, so the additive repair can replay the old
		// hierarchy's structure instead of re-sweeping the graph's edges.
		added := make([]graph.Edge, 0, len(ins)+len(set))
		added = append(added, ins...)
		added = append(added, set...)
		h2, stats, err = ch.RepairAdditive(h, g2, added)
		res.Additive = true
	} else {
		h2, stats, err = ch.Repair(h, g2, touched)
	}
	if err != nil {
		return nil, fmt.Errorf("mutate: repair: %v", err)
	}
	res.G, res.H, res.Aliased, res.Stats = g2, h2, aliased, stats
	return res, nil
}

// setsNonIncreasing reports whether every set_weight op lowers (or keeps) the
// weight of every stored copy of its edge — the condition under which a
// re-weight only adds connectivity and qualifies for the additive repair.
func setsNonIncreasing(g *graph.Graph, set []graph.Edge) bool {
	for _, e := range set {
		ts, ws := g.Neighbors(e.U)
		for i, t := range ts {
			if t == e.V && ws[i] < e.W {
				return false
			}
		}
	}
	return true
}

// corruptForTest returns a copy of the batch with the first weighted op's
// weight off by one — a minimal model of a repair that applied the delta
// wrong, invisible to structural validation but visible to a distance oracle.
func corruptForTest(b *Batch) *Batch {
	ops := append([]Op(nil), b.Ops...)
	for i := range ops {
		if ops[i].Op != OpSetWeight && ops[i].Op != OpInsert {
			continue
		}
		if ops[i].W < graph.MaxWeight {
			ops[i].W++
		} else {
			ops[i].W--
		}
		break
	}
	return &Batch{Ops: ops}
}
