package mutate

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// fuzzGraph is the fixed target the fuzzer validates batches against. Small
// enough that many random (u,v) pairs are in range, with a self-loop and a
// parallel edge so every op kind has live targets.
var fuzzGraph = func() *graph.Graph {
	g := gen.Random(32, 96, 1<<8, gen.UWD, 9)
	b := graph.NewBuilder(32)
	for _, e := range g.Edges() {
		b.MustAddEdge(e.U, e.V, e.W)
	}
	b.MustAddEdge(3, 3, 7)
	b.MustAddEdge(5, 9, 2)
	b.MustAddEdge(5, 9, 4)
	return b.Build()
}()

// FuzzMutateRequest holds the whole request path to its contract: parsing
// never panics, and an accepted batch validates structurally, applies through
// the overlay to a graph that passes Validate, agrees with the naive
// reference replay, and round-trips exactly through the delta encoder.
func FuzzMutateRequest(f *testing.F) {
	f.Add([]byte(`{"ops":[{"op":"set_weight","u":5,"v":9,"w":11}]}`))
	f.Add([]byte(`{"ops":[{"op":"insert","u":0,"v":31,"w":1},{"op":"delete","u":3,"v":3}]}`))
	f.Add([]byte(`{"ops":[{"op":"delete","u":5,"v":9}]}`))
	f.Add([]byte(`{"ops":[]}`))
	f.Add([]byte(`{"ops":[{"op":"insert","u":-1,"v":99,"w":0}]}`))
	f.Add([]byte(`{"ops":null}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := ParseRequest(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs only need to not panic
		}
		// Accepted ⇒ the delta encoder round-trips it exactly.
		b2, err := DecodeDelta(EncodeDelta(b))
		if err != nil {
			t.Fatalf("canonical delta does not re-parse: %v", err)
		}
		if !reflect.DeepEqual(b, b2) {
			t.Fatalf("delta round trip mismatch: %+v vs %+v", b, b2)
		}
		if err := b.Validate(fuzzGraph); err != nil {
			return
		}
		// Validated ⇒ applies, and the result is a well-formed CSR graph that
		// matches the naive reference replay.
		g2, _, err := Apply(fuzzGraph, b)
		if err != nil {
			t.Fatalf("validated batch failed to apply: %v", err)
		}
		if err := g2.Validate(); err != nil {
			t.Fatalf("applied overlay is corrupt: %v", err)
		}
		ref, err := ReferenceApply(fuzzGraph, b)
		if err != nil {
			t.Fatalf("validated batch failed reference replay: %v", err)
		}
		if g2.NumEdges() != ref.NumEdges() {
			t.Fatalf("overlay has %d edges, reference %d", g2.NumEdges(), ref.NumEdges())
		}
		counts := map[graph.Edge]int{}
		for _, e := range g2.Edges() {
			if e.U > e.V {
				e.U, e.V = e.V, e.U
			}
			counts[e]++
		}
		for _, e := range ref.Edges() {
			if e.U > e.V {
				e.U, e.V = e.V, e.U
			}
			counts[e]--
			if counts[e] == 0 {
				delete(counts, e)
			}
		}
		if len(counts) != 0 {
			t.Fatalf("overlay and reference replay disagree on %d edge slots", len(counts))
		}
	})
}
