// Package mutate is the streaming graph-mutation subsystem: it parses and
// validates JSON batches of edge mutations (weight changes, inserts,
// deletes), applies them copy-on-write through graph.Overlay, and repairs the
// Component Hierarchy incrementally through ch.Repair when the touched
// vertex set is a small fraction of the graph — signalling fallback to a full
// background rebuild otherwise. The catalog turns an accepted batch into a
// new serving generation whose lineage (parent generation, delta size) is
// recorded, and the delta encoder gives batches a canonical byte form for
// replay logs and repro files. ReferenceApply is the deliberately naive
// edge-multiset replay the stress oracle diffs repaired generations against.
package mutate
