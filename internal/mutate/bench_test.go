package mutate

import (
	"encoding/json"
	"os"
	"testing"
	"time"

	"repro/internal/ch"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestWriteMutateBenchJSON emits BENCH_mutate.json when BENCH_MUTATE_OUT is
// set (see `make bench-mutate`). The headline number is the cost of repairing
// the hierarchy after a small additive delta — two weight decreases and two
// inserts, the shape the service's mutation traffic has — on the logn=14
// bench family, against rebuilding the same hierarchy from scratch on the
// mutated graph. Both mutation paths pay the identical copy-on-write overlay
// first, so repair-vs-build on the same post-overlay graph is the isolated
// comparison; the end-to-end generation step (Mutate, overlay included)
// against apply-plus-rebuild is reported alongside as mutate_ns /
// apply_build_ns. Gate: repair >= 10x faster than rebuild, the economics
// that justify the mutation subsystem existing at all.
//
// A delete-bearing delta is measured alongside and reported un-gated
// (mixed_*): deletes can split components, so they take the general repair,
// whose level re-sweep is near O(m) on this family's high-fanout hierarchy.
func TestWriteMutateBenchJSON(t *testing.T) {
	out := os.Getenv("BENCH_MUTATE_OUT")
	if out == "" {
		t.Skip("set BENCH_MUTATE_OUT=path to write the mutation benchmark JSON (make bench-mutate)")
	}

	g := gen.Random(1<<14, 1<<16, 1<<10, gen.UWD, 42)
	h := ch.BuildKruskal(g)

	// Pick three distinct edge slots spread through the edge list, then two
	// insert slots that collide with nothing.
	edges := g.Edges()
	seen := map[[2]int32]bool{}
	var picked []int
	for i := 0; i < len(edges) && len(picked) < 3; i += len(edges)/7 + 1 {
		k := pairKey(edges[i].U, edges[i].V)
		if seen[k] {
			continue
		}
		seen[k] = true
		picked = append(picked, i)
	}
	if len(picked) < 3 {
		t.Fatalf("could not pick 3 distinct edge slots from %d edges", len(edges))
	}
	freeSlot := func(u, v int32) (int32, int32) {
		for seen[pairKey(u, v)] {
			v++
		}
		seen[pairKey(u, v)] = true
		return u, v
	}
	insU, insV := freeSlot(3, 4097)
	ins2U, ins2V := freeSlot(9000, 123)
	e0, e1, e2 := edges[picked[0]], edges[picked[1]], edges[picked[2]]
	additive := &Batch{Ops: []Op{
		{Op: OpSetWeight, U: e0.U, V: e0.V, W: 1},
		{Op: OpSetWeight, U: e1.U, V: e1.V, W: 2},
		{Op: OpInsert, U: insU, V: insV, W: 7},
		{Op: OpInsert, U: ins2U, V: ins2V, W: 300},
	}}
	mixed := &Batch{Ops: []Op{
		{Op: OpSetWeight, U: e0.U, V: e0.V, W: e0.W%1024 + 1},
		{Op: OpDelete, U: e2.U, V: e2.V},
		{Op: OpInsert, U: insU, V: insV, W: 7},
	}}
	for _, b := range []*Batch{additive, mixed} {
		if err := b.Validate(g); err != nil {
			t.Fatal(err)
		}
	}

	// One un-clocked run for the delta's shape numbers and sanity.
	probe, err := Mutate(g, h, additive, Options{Threshold: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if probe.Fallback || probe.H == nil {
		t.Fatalf("small delta fell back (touched %d, frac %.4f)", probe.Touched, probe.Frac)
	}
	if !probe.Additive {
		t.Fatal("additive delta missed the additive repair path")
	}

	avg := func(reps int, fn func()) time.Duration {
		var total time.Duration
		for i := 0; i < reps; i++ {
			start := time.Now()
			fn()
			total += time.Since(start)
		}
		return total / time.Duration(reps)
	}
	clockMutate := func(b *Batch) func() {
		return func() {
			res, err := Mutate(g, h, b, Options{Threshold: 1.0})
			if err != nil {
				t.Fatal(err)
			}
			if res.Fallback {
				t.Fatal("incremental rep fell back")
			}
		}
	}

	// The isolated repair-vs-rebuild comparison runs both stages on the same
	// post-overlay graph, exactly the inputs Mutate hands them.
	g2, _, err := Apply(g, additive)
	if err != nil {
		t.Fatal(err)
	}
	added := make([]graph.Edge, 0, len(additive.Ops))
	for _, op := range additive.Ops {
		added = append(added, graph.Edge{U: op.U, V: op.V, W: op.W})
	}
	repair := avg(100, func() {
		if _, _, err := ch.RepairAdditive(h, g2, added); err != nil {
			t.Fatal(err)
		}
	})
	build := avg(5, func() { ch.BuildKruskal(g2) })

	mutateNS := avg(50, clockMutate(additive))
	mixedInc := avg(5, clockMutate(mixed))
	applyBuild := avg(3, func() {
		ag, _, err := Apply(g, additive)
		if err != nil {
			t.Fatal(err)
		}
		ch.BuildKruskal(ag)
	})

	speedup := float64(build) / float64(repair)
	doc := map[string]any{
		"vertices":             g.NumVertices(),
		"edges":                g.NumEdges(),
		"delta_ops":            len(additive.Ops),
		"touched":              probe.Touched,
		"touched_frac":         probe.Frac,
		"repair_ns":            repair.Nanoseconds(),
		"rebuild_ns":           build.Nanoseconds(),
		"speedup":              speedup,
		"mutate_ns":            mutateNS.Nanoseconds(),
		"apply_build_ns":       applyBuild.Nanoseconds(),
		"mutate_speedup":       float64(applyBuild) / float64(mutateNS),
		"mixed_delta_ops":      len(mixed.Ops),
		"mixed_incremental_ns": mixedInc.Nanoseconds(),
		"mixed_speedup":        float64(applyBuild) / float64(mixedInc),
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d-op additive delta touching %d/%d vertices — repair %s vs rebuild %s (%.1fx); end-to-end %s vs %s (%.1fx); mixed delta %s (%.1fx)",
		out, len(additive.Ops), probe.Touched, g.NumVertices(), repair, build, speedup,
		mutateNS, applyBuild, float64(applyBuild)/float64(mutateNS),
		mixedInc, float64(applyBuild)/float64(mixedInc))
	if speedup < 10 {
		t.Errorf("incremental repair speedup %.1fx over full rebuild, want >= 10x", speedup)
	}
}
