package mutate

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ch"
	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
)

func testGraph() *graph.Graph {
	return gen.Random(200, 800, 1<<10, gen.UWD, 7)
}

func TestParseRequestStrict(t *testing.T) {
	if b, err := ParseRequest(strings.NewReader(`{"ops":[{"op":"insert","u":1,"v":2,"w":3}]}`)); err != nil || len(b.Ops) != 1 {
		t.Fatalf("valid request rejected: %v", err)
	}
	bad := []string{
		`{"ops":[{"op":"insert","u":1,"v":2,"w":3}], "extra": true}`,
		`{"ops":[{"op":"insert","u":1,"v":2,"w":3,"x":1}]}`,
		`{"ops":[]}{"ops":[]}`,
		`[1,2,3]`,
		`{"ops":[{"op":"insert","u":"one","v":2,"w":3}]}`,
		``,
	}
	for _, s := range bad {
		if _, err := ParseRequest(strings.NewReader(s)); err == nil {
			t.Errorf("accepted bad request %q", s)
		}
	}
}

func TestValidate(t *testing.T) {
	g := testGraph()
	e := g.Edges()[0]
	ok := []*Batch{
		{Ops: []Op{{Op: OpSetWeight, U: e.U, V: e.V, W: 9}}},
		{Ops: []Op{{Op: OpDelete, U: e.V, V: e.U}}}, // reversed endpoints fine
		{Ops: []Op{{Op: OpInsert, U: 0, V: 199, W: graph.MaxWeight}}},
	}
	for i, b := range ok {
		if err := b.Validate(g); err != nil {
			t.Errorf("valid batch %d rejected: %v", i, err)
		}
	}
	bad := []*Batch{
		{},
		{Ops: []Op{{Op: "upsert", U: 0, V: 1, W: 1}}},
		{Ops: []Op{{Op: OpInsert, U: 0, V: 200, W: 1}}},
		{Ops: []Op{{Op: OpInsert, U: -1, V: 0, W: 1}}},
		{Ops: []Op{{Op: OpInsert, U: 0, V: 1, W: 0}}},
		{Ops: []Op{{Op: OpInsert, U: 0, V: 1, W: graph.MaxWeight + 1}}},
		{Ops: []Op{{Op: OpDelete, U: e.U, V: e.V, W: 5}}},
		{Ops: []Op{{Op: OpSetWeight, U: e.U, V: e.V, W: 5}, {Op: OpDelete, U: e.V, V: e.U}}},
		{Ops: []Op{{Op: OpSetWeight, U: 0, V: 0, W: 5}}}, // no self-loop at 0 in this graph
	}
	for i, b := range bad {
		err := b.Validate(g)
		if err == nil {
			t.Errorf("bad batch %d accepted", i)
			continue
		}
		if !strings.Contains(err.Error(), "invalid mutation") {
			t.Errorf("bad batch %d error does not wrap ErrInvalid: %v", i, err)
		}
	}
}

func TestDeltaRoundTrip(t *testing.T) {
	b := &Batch{Ops: []Op{
		{Op: OpSetWeight, U: 3, V: 9, W: 77},
		{Op: OpDelete, U: 4, V: 4},
		{Op: OpInsert, U: 0, V: 1, W: 1},
	}}
	got, err := DecodeDelta(EncodeDelta(b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b, got) {
		t.Fatalf("round trip mismatch: %+v vs %+v", b, got)
	}
}

// randomBatch builds a valid batch against g.
func randomBatch(rnd *rand.Rand, g *graph.Graph) *Batch {
	edges := g.Edges()
	used := map[[2]int32]bool{}
	var ops []Op
	for i := 0; i < 1+rnd.Intn(8); i++ {
		switch rnd.Intn(3) {
		case 0, 1:
			if len(edges) == 0 {
				continue
			}
			e := edges[rnd.Intn(len(edges))]
			if used[pairKey(e.U, e.V)] {
				continue
			}
			used[pairKey(e.U, e.V)] = true
			if rnd.Intn(2) == 0 {
				ops = append(ops, Op{Op: OpSetWeight, U: e.U, V: e.V, W: uint32(1 + rnd.Intn(1<<11))})
			} else {
				ops = append(ops, Op{Op: OpDelete, U: e.U, V: e.V})
			}
		default:
			n := int32(g.NumVertices())
			u, v := rnd.Int31n(n), rnd.Int31n(n)
			if used[pairKey(u, v)] {
				continue
			}
			used[pairKey(u, v)] = true
			ops = append(ops, Op{Op: OpInsert, U: u, V: v, W: uint32(1 + rnd.Intn(1<<11))})
		}
	}
	if len(ops) == 0 {
		ops = []Op{{Op: OpInsert, U: 0, V: 1, W: 5}}
	}
	return &Batch{Ops: ops}
}

func sameEdgeMultiset(t *testing.T, a, b *graph.Graph) {
	t.Helper()
	count := func(g *graph.Graph) map[graph.Edge]int {
		m := map[graph.Edge]int{}
		for _, e := range g.Edges() {
			if e.U > e.V {
				e.U, e.V = e.V, e.U
			}
			m[e]++
		}
		return m
	}
	ca, cb := count(a), count(b)
	if !reflect.DeepEqual(ca, cb) {
		t.Fatalf("edge multisets differ: %d vs %d edges", a.NumEdges(), b.NumEdges())
	}
}

func TestApplyMatchesReferenceApply(t *testing.T) {
	rnd := rand.New(rand.NewSource(42))
	g := testGraph()
	cur := g
	var batches []*Batch
	for round := 0; round < 10; round++ {
		b := randomBatch(rnd, cur)
		g2, _, err := Apply(cur, b)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if err := g2.Validate(); err != nil {
			t.Fatalf("round %d: overlay invalid: %v", round, err)
		}
		batches = append(batches, b)
		cur = g2
	}
	ref, err := ReferenceApply(g, batches...)
	if err != nil {
		t.Fatal(err)
	}
	sameEdgeMultiset(t, cur, ref)
}

func TestMutateIncrementalAndThreshold(t *testing.T) {
	g := testGraph()
	h := ch.BuildKruskal(g)
	e := g.Edges()[10]
	b := &Batch{Ops: []Op{{Op: OpSetWeight, U: e.U, V: e.V, W: 3}}}

	res, err := Mutate(g, h, b, Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback || res.G == nil || res.H == nil {
		t.Fatalf("small delta fell back: %+v", res)
	}
	if !res.Aliased {
		t.Fatal("weight-only mutation should alias parent arrays")
	}
	if err := res.H.Validate(); err != nil {
		t.Fatalf("repaired hierarchy invalid: %v", err)
	}
	ref, err := ReferenceApply(g, b)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int32{0, 57, 199} {
		want := dijkstra.SSSP(ref, s)
		got := dijkstra.SSSP(res.G, s)
		for v := range want {
			if want[v] != got[v] {
				t.Fatalf("src %d: d[%d] = %d, want %d", s, v, got[v], want[v])
			}
		}
	}

	// Negative threshold forces fallback; tiny positive threshold trips on a
	// wide batch.
	res, err = Mutate(g, h, b, Options{Threshold: -1})
	if err != nil || !res.Fallback {
		t.Fatalf("forced fallback not taken: %+v err=%v", res, err)
	}
	wide := &Batch{}
	for i := int32(0); i < 40; i += 2 {
		wide.Ops = append(wide.Ops, Op{Op: OpInsert, U: i, V: i + 1, W: 2})
	}
	res, err = Mutate(g, h, wide, Options{Threshold: 0.05})
	if err != nil || !res.Fallback {
		t.Fatalf("over-threshold batch did not fall back: %+v err=%v", res, err)
	}
	if res.Touched != 40 {
		t.Fatalf("touched %d, want 40", res.Touched)
	}
}

func TestMutateStructuralNotAliased(t *testing.T) {
	g := testGraph()
	h := ch.BuildKruskal(g)
	b := &Batch{Ops: []Op{{Op: OpInsert, U: 2, V: 180, W: 4}}}
	res, err := Mutate(g, h, b, Options{Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Aliased {
		t.Fatal("structural mutation must not alias")
	}
	if err := res.H.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestInjectFaultIsVisibleToDistanceOracle(t *testing.T) {
	g := gen.Path(50, 3) // a path: every edge is on many shortest paths
	h := ch.BuildKruskal(g)
	e := g.Edges()[25]
	b := &Batch{Ops: []Op{{Op: OpSetWeight, U: e.U, V: e.V, W: 100}}}
	res, err := Mutate(g, h, b, Options{Threshold: 1, InjectFault: true})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := ReferenceApply(g, b)
	if err != nil {
		t.Fatal(err)
	}
	want := dijkstra.SSSP(ref, 0)
	got := dijkstra.SSSP(res.G, 0)
	diff := false
	for v := range want {
		if want[v] != got[v] {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("injected fault produced identical distances; the planted bug is invisible")
	}
}
