package bfs

import (
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/par"
)

// Serial computes BFS levels from src (-1 for unreachable vertices).
func Serial(g *graph.Graph, src int32) []int32 {
	n := g.NumVertices()
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	if n == 0 {
		return level
	}
	level[src] = 0
	frontier := []int32{src}
	for depth := int32(1); len(frontier) > 0; depth++ {
		var next []int32
		for _, v := range frontier {
			ts, _ := g.Neighbors(v)
			for _, u := range ts {
				if level[u] < 0 {
					level[u] = depth
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return level
}

// Parallel computes the same levels with level-synchronous parallel frontier
// expansion on the given runtime.
func Parallel(rt *par.Runtime, g *graph.Graph, src int32) []int32 {
	n := g.NumVertices()
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	if n == 0 {
		return level
	}
	level[src] = 0
	frontier := []int32{src}
	var next []int32
	for depth := int32(1); len(frontier) > 0; depth++ {
		// Size the output by the frontier's total degree, then compact with
		// an atomic cursor.
		total := 0
		for _, v := range frontier {
			total += g.Degree(v)
		}
		rt.ChargeLoop(rt.ModeFor(par.DefaultThresholds, len(frontier)), len(frontier), 1)
		if cap(next) < total {
			next = make([]int32, total)
		}
		next = next[:total]
		var cursor int64
		rt.ForAuto(par.DefaultThresholds, len(frontier), func(i int) {
			v := frontier[i]
			ts, _ := g.Neighbors(v)
			rt.Charge(int64(len(ts)) * 2)
			for _, u := range ts {
				if atomic.LoadInt32(&level[u]) >= 0 {
					continue
				}
				if atomic.CompareAndSwapInt32(&level[u], -1, depth) {
					next[atomic.AddInt64(&cursor, 1)-1] = u
				}
			}
		})
		frontier = append(frontier[:0], next[:cursor]...)
	}
	return level
}

// Distances converts BFS levels to unit-weight shortest-path distances
// (graph.Inf for unreachable), for direct comparison with the SSSP solvers.
func Distances(level []int32) []int64 {
	out := make([]int64, len(level))
	for i, l := range level {
		if l < 0 {
			out[i] = graph.Inf
		} else {
			out[i] = int64(l)
		}
	}
	return out
}

// Eccentricity returns the maximum finite level (the source's eccentricity),
// or -1 if only the source is reachable.
func Eccentricity(level []int32) int32 {
	max := int32(-1)
	for _, l := range level {
		if l > max {
			max = l
		}
	}
	return max
}
