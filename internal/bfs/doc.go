// Package bfs provides breadth-first search, the other flagship kernel of
// the MTGL on the MTA-2 (the paper's companion work, Bader/Madduri's
// "Designing Multithreaded Algorithms for Breadth-First Search and
// st-connectivity on the Cray MTA-2", shares this code lineage). BFS is the
// unweighted special case of SSSP and doubles as an oracle: on a unit-weight
// graph every solver in this repository must produce exactly these levels.
//
// The parallel variant is level-synchronous: each frontier expands in one
// parallel sweep, discoveries are claimed with a CAS on the level array, and
// the next frontier is compacted through an atomic cursor — the MTA
// int_fetch_add idiom.
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package bfs
