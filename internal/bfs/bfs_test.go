package bfs

import (
	"testing"
	"testing/quick"

	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mta"
	"repro/internal/par"
)

func sameLevels(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSerialPath(t *testing.T) {
	g := gen.Path(6, 1)
	l := Serial(g, 0)
	for v := 0; v < 6; v++ {
		if l[v] != int32(v) {
			t.Fatalf("level[%d]=%d", v, l[v])
		}
	}
	if Eccentricity(l) != 5 {
		t.Fatalf("eccentricity %d", Eccentricity(l))
	}
}

func TestUnreachableAndTrivial(t *testing.T) {
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 7)
	g := b.Build()
	l := Serial(g, 0)
	if l[2] != -1 || l[1] != 1 {
		t.Fatalf("levels %v", l)
	}
	if len(Serial(graph.NewBuilder(0).Build(), 0)) != 0 {
		t.Fatal("empty graph")
	}
	if Eccentricity([]int32{0, -1, -1}) != 0 {
		t.Fatal("eccentricity of isolated source")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	gs := []*graph.Graph{
		gen.Random(2000, 8000, 1<<10, gen.UWD, 1),
		gen.RMATGraph(1024, 4096, 4, gen.PWD, 2),
		gen.GridGraph(40, 40, 16, gen.UWD, 3),
		gen.Star(500, 1),
		gen.Path(300, 5),
	}
	rts := map[string]*par.Runtime{
		"exec1": par.NewExec(1),
		"exec4": par.NewExec(4),
		"sim":   par.NewSim(mta.MTA2(40)),
	}
	for gi, g := range gs {
		want := Serial(g, 0)
		for name, rt := range rts {
			if got := Parallel(rt, g, 0); !sameLevels(got, want) {
				t.Errorf("graph %d %s: parallel BFS differs", gi, name)
			}
		}
	}
}

func TestDistancesMatchDijkstraOnUnitWeights(t *testing.T) {
	g := gen.Cycle(101, 1)
	want := dijkstra.SSSP(g, 0)
	got := Distances(Serial(g, 0))
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("d[%d]=%d want %d", v, got[v], want[v])
		}
	}
}

func TestDistancesInf(t *testing.T) {
	d := Distances([]int32{0, 2, -1})
	if d[2] != graph.Inf || d[1] != 2 {
		t.Fatalf("d=%v", d)
	}
}

func TestSimCostRecorded(t *testing.T) {
	g := gen.Random(1000, 4000, 16, gen.UWD, 5)
	rt := par.NewSim(mta.MTA2(40))
	Parallel(rt, g, 0)
	if rt.SimCost().Work < int64(g.NumEdges()) {
		t.Fatalf("sim work %d too low", rt.SimCost().Work)
	}
}

// Property: parallel BFS equals serial BFS on random multigraphs.
func TestQuickParallelMatchesSerial(t *testing.T) {
	rt := par.NewExec(4)
	f := func(seed uint32) bool {
		n := int(seed%200) + 1
		g := gen.Random(n, 4*n, 16, gen.UWD, uint64(seed))
		src := int32(seed % uint32(n))
		return sameLevels(Parallel(rt, g, src), Serial(g, src))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBFS(b *testing.B) {
	g := gen.Random(1<<15, 1<<17, 16, gen.UWD, 42)
	rt := par.NewExec(4)
	b.Run("Serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Serial(g, 0)
		}
	})
	b.Run("Parallel", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Parallel(rt, g, 0)
		}
	})
}
