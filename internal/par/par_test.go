package par

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"

	"repro/internal/mta"
)

func TestExecForCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		rt := NewExec(workers)
		const n = 10000
		hits := make([]int32, n)
		rt.For(n, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d executed %d times", workers, i, h)
			}
		}
	}
}

func TestExecForEmpty(t *testing.T) {
	rt := NewExec(4)
	ran := false
	rt.For(0, func(int) { ran = true })
	rt.For(-3, func(int) { ran = true })
	if ran {
		t.Fatal("body ran for empty loop")
	}
}

func TestExecNestedLoops(t *testing.T) {
	rt := NewExec(4)
	const outer, inner = 50, 200
	var total int64
	rt.For(outer, func(i int) {
		rt.For(inner, func(j int) {
			atomic.AddInt64(&total, 1)
		})
	})
	if total != outer*inner {
		t.Fatalf("nested total = %d, want %d", total, outer*inner)
	}
}

func TestExecDeepNesting(t *testing.T) {
	// Deeply nested parallel loops must not deadlock even with few tokens.
	rt := NewExec(2)
	var total int64
	var rec func(depth int)
	rec = func(depth int) {
		if depth == 0 {
			atomic.AddInt64(&total, 1)
			return
		}
		rt.For(3, func(int) { rec(depth - 1) })
	}
	rec(6)
	if total != 729 {
		t.Fatalf("total = %d, want 3^6", total)
	}
}

func TestExecForModeSerialInOrder(t *testing.T) {
	rt := NewExec(8)
	var order []int
	rt.ForSerial(100, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial mode out of order at %d: %d", i, v)
		}
	}
}

func TestNewExecPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewExec(0) did not panic")
		}
	}()
	NewExec(0)
}

func TestSimForDeterministicAndSerial(t *testing.T) {
	rt := NewSim(mta.MTA2(40))
	var order []int
	rt.For(50, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("sim execution out of order at %d: %d", i, v)
		}
	}
}

func TestSimAccountingFlatLoop(t *testing.T) {
	m := mta.MTA2(40)
	rt := NewSim(m)
	const n = 100000
	rt.For(n, func(i int) { rt.Charge(9) }) // 10 units per iteration total
	c := rt.SimCost()
	wantWork := m.ForkCost(mta.MultiPar) + n*10
	if c.Work != wantWork {
		t.Errorf("work = %d, want %d", c.Work, wantWork)
	}
	wantSpan := m.ForkCost(mta.MultiPar) + (n*10)/m.Lanes(mta.MultiPar) + 10
	if c.Span != wantSpan {
		t.Errorf("span = %d, want %d", c.Span, wantSpan)
	}
}

func TestSimSpeedupGrowsWithProcs(t *testing.T) {
	span := func(p int) int64 {
		rt := NewSim(mta.MTA2(p))
		rt.For(1<<22, func(i int) { rt.Charge(49) })
		return rt.SimCost().Span
	}
	s1, s8, s40 := span(1), span(8), span(40)
	if !(s40 < s8 && s8 < s1) {
		t.Fatalf("spans not decreasing: p1=%d p8=%d p40=%d", s1, s8, s40)
	}
	speedup := float64(s1) / float64(s40)
	if speedup < 15 {
		t.Fatalf("40-proc speedup only %.1f on a large flat loop", speedup)
	}
}

func TestSimTinyLoopPrefersSerial(t *testing.T) {
	// For a tiny loop, MultiPar must cost more span than Serial (fork
	// dominates) — the effect behind the paper's Table 6.
	spanOf := func(mode mta.LoopMode) int64 {
		rt := NewSim(mta.MTA2(40))
		rt.ForMode(mode, 8, func(i int) { rt.Charge(3) })
		return rt.SimCost().Span
	}
	if spanOf(mta.MultiPar) <= spanOf(mta.Serial) {
		t.Fatal("multi-proc fork cost did not dominate a tiny loop")
	}
}

func TestForAutoSelectsRegime(t *testing.T) {
	th := Thresholds{Single: 10, Multi: 100}
	m := mta.MTA2(40)

	costAt := func(n int) mta.Cost {
		rt := NewSim(m)
		rt.ForAuto(th, n, func(int) {})
		return rt.SimCost()
	}
	// Serial regime: no fork cost at all.
	if c := costAt(5); c.Work != 5 {
		t.Errorf("n=5: work %d, want 5 (serial)", c.Work)
	}
	// Single-processor regime: single fork cost.
	if c := costAt(50); c.Work != m.ForkCost(mta.SinglePar)+50 {
		t.Errorf("n=50: work %d, want single-proc fork", c.Work)
	}
	// Multi-processor regime.
	if c := costAt(500); c.Work != m.ForkCost(mta.MultiPar)+500 {
		t.Errorf("n=500: work %d, want multi-proc fork", c.Work)
	}
}

func TestResetCost(t *testing.T) {
	rt := NewSim(mta.MTA2(4))
	rt.For(100, func(int) {})
	if rt.SimCost().Work == 0 {
		t.Fatal("no cost recorded")
	}
	rt.ResetCost()
	if c := rt.SimCost(); c.Work != 0 || c.Span != 0 {
		t.Fatalf("cost after reset: %+v", c)
	}
}

func TestNestedSimAccounting(t *testing.T) {
	// An outer serial loop of parallel inner loops: outer span must be the
	// sum of inner spans.
	m := mta.MTA2(40)
	rt := NewSim(m)
	const outer, inner = 10, 100000
	rt.ForSerial(outer, func(int) {
		rt.For(inner, func(int) { rt.Charge(1) })
	})
	innerSpan := m.ForkCost(mta.MultiPar) + (inner*2)/m.Lanes(mta.MultiPar) + 2
	wantSpan := outer * (1 + innerSpan) // +1 base charge per outer iteration
	if got := rt.SimCost().Span; got != wantSpan {
		t.Errorf("span = %d, want %d", got, wantSpan)
	}
}

func TestReduce(t *testing.T) {
	for _, rt := range []*Runtime{NewExec(4), NewSim(mta.MTA2(8))} {
		got := rt.Reduce(1000, func(i int) int64 { return int64(i) })
		if got != 499500 {
			t.Fatalf("Reduce = %d", got)
		}
	}
}

func TestCASMin(t *testing.T) {
	v := int64(100)
	if !CASMin(&v, 50) || v != 50 {
		t.Fatalf("CASMin failed to lower: %d", v)
	}
	if CASMin(&v, 50) {
		t.Fatal("CASMin reported change for equal value")
	}
	if CASMin(&v, 80) || v != 50 {
		t.Fatalf("CASMin raised the value: %d", v)
	}
}

func TestCASMax(t *testing.T) {
	v := int64(10)
	if !CASMax(&v, 50) || v != 50 {
		t.Fatalf("CASMax failed to raise: %d", v)
	}
	if CASMax(&v, 20) || v != 50 {
		t.Fatalf("CASMax lowered the value: %d", v)
	}
}

func TestCASMinConcurrent(t *testing.T) {
	var v int64 = 1 << 60
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10000; i++ {
				CASMin(&v, int64(w*10000+i))
			}
		}(w)
	}
	wg.Wait()
	if v != 0 {
		t.Fatalf("concurrent CASMin settled at %d, want 0", v)
	}
}

// Property: exec-mode For computes the same reduction as a serial loop.
func TestQuickExecMatchesSerial(t *testing.T) {
	rt := NewExec(4)
	f := func(n uint16) bool {
		m := int(n % 5000)
		var got int64
		rt.For(m, func(i int) { atomic.AddInt64(&got, int64(i*i)) })
		var want int64
		for i := 0; i < m; i++ {
			want += int64(i * i)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// For loops with enough work to amortise the per-processor fork cost, the
// simulated span is monotone non-increasing in processor count. (For tiny
// loops more processors can legitimately hurt — team forks cost more on a
// bigger machine, the effect behind the paper's small-instance results — so
// monotonicity is only promised in the work-dominated regime.)
func TestSimMonotoneInProcsForLargeLoops(t *testing.T) {
	const n = 1 << 20
	for _, cost := range []int64{1, 3, 7} {
		span := func(p int) int64 {
			rt := NewSim(mta.MTA2(p))
			rt.For(n, func(int) { rt.Charge(cost) })
			return rt.SimCost().Span
		}
		last := span(1)
		for _, p := range []int{2, 4, 8, 16, 40} {
			s := span(p)
			if s > last {
				t.Fatalf("cost %d: span grew from %d to %d at p=%d", cost, last, s, p)
			}
			last = s
		}
	}
}

// Tiny loops on a bigger machine may cost more span — the fork effect.
func TestSimTinyLoopForkPenaltyGrowsWithProcs(t *testing.T) {
	span := func(p int) int64 {
		rt := NewSim(mta.MTA2(p))
		rt.For(8, func(int) { rt.Charge(1) })
		return rt.SimCost().Span
	}
	if span(40) <= span(1) {
		t.Fatal("expected the 40-processor fork cost to dominate a tiny loop")
	}
}

func BenchmarkExecForOverhead(b *testing.B) {
	rt := NewExec(4)
	for i := 0; i < b.N; i++ {
		rt.For(64, func(int) {})
	}
}

func BenchmarkSimForOverhead(b *testing.B) {
	rt := NewSim(mta.MTA2(40))
	for i := 0; i < b.N; i++ {
		rt.For(64, func(int) {})
	}
}

func TestExecForPanicPropagates(t *testing.T) {
	rt := NewExec(4)
	for _, n := range []int{1, 100, 10000} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("n=%d: panic swallowed", n)
				}
				if s, ok := r.(string); !ok || s != "boom" {
					t.Fatalf("n=%d: wrong panic value %v", n, r)
				}
			}()
			rt.For(n, func(i int) {
				if i == n/2 {
					panic("boom")
				}
			})
		}()
	}
	// The runtime must remain usable afterwards (tokens returned).
	var total int64
	rt.For(1000, func(i int) { atomic.AddInt64(&total, 1) })
	if total != 1000 {
		t.Fatalf("runtime broken after panic: %d", total)
	}
}

func TestChargeLoopAccounting(t *testing.T) {
	m := mta.MTA2(40)
	rt := NewSim(m)
	rt.ChargeLoop(mta.MultiPar, 100000, 2) // 3 units x 100k iterations
	c := rt.SimCost()
	wantWork := m.ForkCost(mta.MultiPar) + 300000
	if c.Work != wantWork {
		t.Fatalf("work %d, want %d", c.Work, wantWork)
	}
	wantSpan := m.ForkCost(mta.MultiPar) + 300000/m.Lanes(mta.MultiPar) + 3
	if c.Span != wantSpan {
		t.Fatalf("span %d, want %d", c.Span, wantSpan)
	}
	// No-ops.
	rt2 := NewSim(m)
	rt2.ChargeLoop(mta.Serial, 0, 5)
	if rt2.SimCost().Work != 0 {
		t.Fatal("empty ChargeLoop charged")
	}
	NewExec(2).ChargeLoop(mta.MultiPar, 100, 1) // exec: must not panic
}

func TestModeFor(t *testing.T) {
	rt := NewSim(mta.MTA2(4))
	th := Thresholds{Single: 10, Multi: 100}
	cases := map[int]mta.LoopMode{
		0: mta.Serial, 9: mta.Serial,
		10: mta.SinglePar, 99: mta.SinglePar,
		100: mta.MultiPar, 1 << 20: mta.MultiPar,
	}
	for n, want := range cases {
		if got := rt.ModeFor(th, n); got != want {
			t.Errorf("ModeFor(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestExecFuturesMode(t *testing.T) {
	rt := NewExec(4)
	var total int64
	rt.ForMode(mta.Futures, 500, func(i int) { atomic.AddInt64(&total, int64(i)) })
	if total != 124750 {
		t.Fatalf("futures loop total %d", total)
	}
}

func TestSimFuturesCheaperThanMultiForSmallLoops(t *testing.T) {
	m := mta.MTA2(40)
	span := func(mode mta.LoopMode) int64 {
		rt := NewSim(m)
		rt.ForMode(mode, 4, func(int) { rt.Charge(2) })
		return rt.SimCost().Span
	}
	if span(mta.Futures) >= span(mta.MultiPar) {
		t.Fatal("futures fork not cheaper than team fork")
	}
}

func TestChargeContended(t *testing.T) {
	m := mta.MTA2(40)
	rt := NewSim(m)
	// 100 contended ops on one word inside one parallel loop: the loop pays
	// a 100-cycle serial chain on top of its normal cost.
	rt.For(100, func(i int) { rt.ChargeContended(7) })
	withHot := rt.SimCost().Span
	if rt.HotSerialization() != 100 {
		t.Fatalf("hot serialization %d, want 100", rt.HotSerialization())
	}
	rt2 := NewSim(m)
	rt2.For(100, func(i int) { rt2.Charge(1) })
	if withHot-rt2.SimCost().Span != 100 {
		t.Fatalf("contended span delta %d, want 100", withHot-rt2.SimCost().Span)
	}
	// Spread across distinct words: chain length 1.
	rt3 := NewSim(m)
	rt3.For(100, func(i int) { rt3.ChargeContended(uint64(i)) })
	if rt3.HotSerialization() != 1 {
		t.Fatalf("spread ops serialized: %d", rt3.HotSerialization())
	}
	// Outside any loop and in exec mode: no-ops.
	rt4 := NewSim(m)
	rt4.ChargeContended(1)
	if rt4.HotSerialization() != 0 {
		t.Fatal("loop-less op tallied")
	}
	NewExec(2).ChargeContended(1)
	// Reset clears the tally.
	rt.ResetCost()
	if rt.HotSerialization() != 0 {
		t.Fatal("reset did not clear hot tally")
	}
}

func TestSerialLoopsHaveNoContention(t *testing.T) {
	rt := NewSim(mta.MTA2(8))
	rt.ForSerial(50, func(i int) { rt.ChargeContended(3) })
	if rt.HotSerialization() != 0 {
		t.Fatalf("serial loop tallied contention: %d", rt.HotSerialization())
	}
}
