package par

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/mta"
)

// Thresholds controls selective parallelization (paper §3.3): loops shorter
// than Single run serially, loops shorter than Multi run single-processor
// parallel, and longer loops run on all processors. The paper determined
// these experimentally by simulating the toVisit computation; see
// core.TuneThresholds for the equivalent tuner.
type Thresholds struct {
	Single int // minimum iterations for single-processor parallelism
	Multi  int // minimum iterations for all-processor parallelism
}

// DefaultThresholds are reasonable starting thresholds for the MTA2 cost
// model; the tuner usually lands near these values.
var DefaultThresholds = Thresholds{Single: 64, Multi: 2048}

type frame struct {
	work int64
	span int64
}

// Runtime executes and accounts parallel loops. A Runtime is not safe for
// concurrent use in sim mode (sim execution is serial by design); in exec
// mode all methods are safe for concurrent use.
type Runtime struct {
	machine mta.Machine

	// Sim-mode state.
	sim      bool
	frames   []frame
	hotStack []map[uint64]int64 // per-active-parallel-loop contention tallies
	hotTotal int64              // accumulated serialization cycles from hot spots

	// Exec-mode state.
	workers   int           // total concurrent workers (MultiPar cap)
	singleCap int           // worker cap for SinglePar loops
	tokens    chan struct{} // workers-1 spawn tokens
}

// NewExec returns a runtime that really runs loops on up to workers
// goroutines. workers < 1 panics.
func NewExec(workers int) *Runtime {
	if workers < 1 {
		panic(fmt.Sprintf("par: invalid worker count %d", workers))
	}
	singleCap := 4
	if singleCap > workers {
		singleCap = workers
	}
	rt := &Runtime{
		machine:   mta.MTA2(1),
		workers:   workers,
		singleCap: singleCap,
		tokens:    make(chan struct{}, workers-1),
	}
	for i := 0; i < workers-1; i++ {
		rt.tokens <- struct{}{}
	}
	return rt
}

// NewSim returns a runtime that executes serially and accounts costs against
// the given machine model.
func NewSim(m mta.Machine) *Runtime {
	return &Runtime{machine: m, sim: true, workers: 1, singleCap: 1, frames: make([]frame, 1, 8)}
}

// IsSim reports whether this runtime is in simulation mode.
func (rt *Runtime) IsSim() bool { return rt.sim }

// Machine returns the cost model (meaningful in sim mode).
func (rt *Runtime) Machine() mta.Machine { return rt.machine }

// Workers returns the exec-mode concurrency cap (1 in sim mode).
func (rt *Runtime) Workers() int { return rt.workers }

// ChargeContended records one synchronized memory operation on the word
// identified by key (a vertex or node id). On the MTA-2, synchronized
// operations on the same word serialize at the memory bank. In sim mode the
// op costs one unit like Charge(1), and the enclosing parallel loop
// additionally pays span equal to the longest per-word chain of its
// contended ops. No-op in exec mode.
//
// The model is sound only where the set of touched words does not depend on
// the interleaving (sim mode replays one serial interleaving): Thorup's minD
// propagation qualifies (the leaf-to-root path is fixed by the tree), so the
// paper's §3.2 locking claim can be quantified; read-steered kernels like the
// connected-components hooks do not, and are left unannotated.
func (rt *Runtime) ChargeContended(key uint64) {
	if !rt.sim {
		return
	}
	rt.Charge(1)
	if len(rt.hotStack) == 0 {
		return // not inside a parallel loop: no concurrent contenders
	}
	rt.hotStack[len(rt.hotStack)-1][key]++
}

// HotSerialization returns the total span (cycles) attributed to hot-spot
// serialization so far — the quantitative form of the paper's contention
// arguments (§3.1 for connected components, §3.2 for minD locking).
func (rt *Runtime) HotSerialization() int64 { return rt.hotTotal }

// Charge adds units of serial cost (work and span) to the current region.
// No-op in exec mode.
func (rt *Runtime) Charge(units int64) {
	if !rt.sim {
		return
	}
	f := &rt.frames[len(rt.frames)-1]
	f.work += units
	f.span += units
}

// SimCost returns the accumulated (work, span) of the root region. The
// simulated elapsed time of everything run so far is SimCost().Span.
func (rt *Runtime) SimCost() mta.Cost {
	f := rt.frames[0]
	return mta.Cost{Work: f.work, Span: f.span}
}

// ResetCost zeroes the accounting (sim mode); used between timed phases.
func (rt *Runtime) ResetCost() {
	if rt.sim {
		rt.frames = rt.frames[:1]
		rt.frames[0] = frame{}
		rt.hotTotal = 0
	}
}

// For runs body(i) for i in [0, n) with all-processor parallelism.
func (rt *Runtime) For(n int, body func(i int)) {
	rt.ForMode(mta.MultiPar, n, body)
}

// ForSerial runs body(i) for i in [0, n) serially (still accounted in sim
// mode).
func (rt *Runtime) ForSerial(n int, body func(i int)) {
	rt.ForMode(mta.Serial, n, body)
}

// ForAuto runs the loop with the parallelism regime selected from n by the
// thresholds — the paper's selective parallelization.
func (rt *Runtime) ForAuto(th Thresholds, n int, body func(i int)) {
	rt.ForMode(rt.ModeFor(th, n), n, body)
}

// ModeFor returns the loop mode ForAuto would select for n iterations.
func (rt *Runtime) ModeFor(th Thresholds, n int) mta.LoopMode {
	switch {
	case n >= th.Multi:
		return mta.MultiPar
	case n >= th.Single:
		return mta.SinglePar
	default:
		return mta.Serial
	}
}

// ForMode runs body(i) for i in [0, n) with the requested loop mode.
func (rt *Runtime) ForMode(mode mta.LoopMode, n int, body func(i int)) {
	if n <= 0 {
		return
	}
	if rt.sim {
		rt.simFor(mode, n, body)
		return
	}
	cap := 1
	switch mode {
	case mta.Serial:
		cap = 1
	case mta.SinglePar:
		cap = rt.singleCap
	case mta.MultiPar, mta.Futures:
		cap = rt.workers
	}
	rt.execFor(cap, n, body)
}

// ChargeLoop accounts for a loop that the host code runs as plain serial Go
// but that the modelled machine would execute as a parallel loop (bookkeeping
// sweeps such as counting passes, contraction, bucket distribution). Each of
// the n iterations costs perIter+1 units. No-op in exec mode.
func (rt *Runtime) ChargeLoop(mode mta.LoopMode, n int, perIter int64) {
	if !rt.sim || n <= 0 {
		return
	}
	iter := perIter + 1
	c := rt.machine.ParallelLoop(mode, int64(n)*iter, int64(n)*iter, iter)
	top := &rt.frames[len(rt.frames)-1]
	top.work += c.Work
	top.span += c.Span
}

func (rt *Runtime) simFor(mode mta.LoopMode, n int, body func(i int)) {
	parallel := mode != mta.Serial
	if parallel {
		rt.hotStack = append(rt.hotStack, make(map[uint64]int64))
	}
	var sumW, sumS, maxS int64
	for i := 0; i < n; i++ {
		rt.frames = append(rt.frames, frame{})
		rt.Charge(1) // base per-iteration cost
		body(i)
		f := rt.frames[len(rt.frames)-1]
		rt.frames = rt.frames[:len(rt.frames)-1]
		sumW += f.work
		sumS += f.span
		if f.span > maxS {
			maxS = f.span
		}
	}
	var contended int64
	if parallel {
		tally := rt.hotStack[len(rt.hotStack)-1]
		rt.hotStack = rt.hotStack[:len(rt.hotStack)-1]
		for _, c := range tally {
			if c > contended {
				contended = c
			}
		}
		rt.hotTotal += contended
	}
	c := rt.machine.ParallelLoop(mode, sumW, sumS, maxS)
	top := &rt.frames[len(rt.frames)-1]
	top.work += c.Work
	top.span += c.Span + contended
}

func (rt *Runtime) execFor(workerCap, n int, body func(i int)) {
	if workerCap > n {
		workerCap = n
	}
	if workerCap <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}
	grain := n / (workerCap * 8)
	if grain < 1 {
		grain = 1
	}
	var next int64
	run := func() {
		for {
			lo := int(atomic.AddInt64(&next, int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			for i := lo; i < hi; i++ {
				body(i)
			}
		}
	}
	// A panic in a helper goroutine would kill the process; capture the
	// first one and re-raise it on the calling goroutine instead, matching
	// what a plain serial loop would do.
	var panicked atomic.Pointer[panicValue]
	var wg sync.WaitGroup
	// Spawn helpers only while tokens are available; otherwise the caller
	// simply does the work inline. This makes nested parallel loops safe.
	for spawned := 1; spawned < workerCap; spawned++ {
		select {
		case <-rt.tokens:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { rt.tokens <- struct{}{} }()
				defer func() {
					if r := recover(); r != nil {
						panicked.CompareAndSwap(nil, &panicValue{v: r})
						// Drain the remaining range so other workers and the
						// caller finish promptly.
						atomic.StoreInt64(&next, int64(n))
					}
				}()
				run()
			}()
		default:
			spawned = workerCap // no tokens left; stop trying
		}
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, &panicValue{v: r})
				atomic.StoreInt64(&next, int64(n))
			}
		}()
		run()
	}()
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(p.v)
	}
}

type panicValue struct{ v any }

// Reduce computes a parallel sum-style reduction: it runs body(i) for i in
// [0, n) and adds the returned values. In sim mode the reduction itself is
// charged one unit per iteration (already covered by the base charge).
func (rt *Runtime) Reduce(n int, body func(i int) int64) int64 {
	var total int64
	rt.For(n, func(i int) {
		v := body(i)
		if v != 0 {
			atomic.AddInt64(&total, v)
		}
	})
	return total
}

// CASMin atomically lowers *addr to v if v is smaller. It reports whether the
// stored value was lowered. This is the relaxation primitive: on the MTA-2 it
// would be a readfe/writeef pair, here it is a CAS loop.
func CASMin(addr *int64, v int64) bool {
	for {
		cur := atomic.LoadInt64(addr)
		if v >= cur {
			return false
		}
		if atomic.CompareAndSwapInt64(addr, cur, v) {
			return true
		}
	}
}

// CASMax atomically raises *addr to v if v is larger; reports whether it did.
func CASMax(addr *int64, v int64) bool {
	for {
		cur := atomic.LoadInt64(addr)
		if v <= cur {
			return false
		}
		if atomic.CompareAndSwapInt64(addr, cur, v) {
			return true
		}
	}
}
