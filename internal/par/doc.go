// Package par is the parallel runtime every algorithm in this repository is
// written against. It plays the role the MTA-2 compiler/runtime plays in the
// paper: algorithms express loops with a requested degree of parallelism
// (serial, single-processor, all-processors — exactly the three choices the
// paper's §3.3 describes) and the runtime decides how to execute and account
// for them.
//
// A Runtime operates in one of two modes:
//
//   - Exec mode (NewExec): loops really run on goroutines, bounded by a token
//     bucket so that nested parallel loops degrade gracefully to inline
//     execution instead of deadlocking or oversubscribing. This mode is used
//     by the public API, the examples, and the -race-validated concurrency
//     tests.
//
//   - Sim mode (NewSim): loops execute serially (and therefore
//     deterministically) while the runtime performs work/span accounting
//     against an mta.Machine cost model. The simulated elapsed time of the
//     computation is the span of the root region. This mode reproduces the
//     paper's 40-processor scaling results on a host with any number of
//     cores.
//
// Algorithms charge abstract cost units (≈ memory references) via Charge;
// each loop iteration is additionally charged one unit automatically. In exec
// mode Charge is a no-op.
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package par
