package solver

import (
	"testing"

	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/par"
)

func TestRegistryNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range All() {
		if s.Name == "" {
			t.Fatal("solver with empty name")
		}
		if seen[s.Name] {
			t.Fatalf("duplicate solver name %q", s.Name)
		}
		seen[s.Name] = true
		got, ok := ByName(s.Name)
		if !ok || got.Name != s.Name {
			t.Fatalf("ByName(%q) = %v, %v", s.Name, got.Name, ok)
		}
	}
	if _, ok := ByName("no-such-solver"); ok {
		t.Fatal("ByName accepted an unknown name")
	}
	if len(Names()) != len(All()) {
		t.Fatalf("Names() has %d entries, All() has %d", len(Names()), len(All()))
	}
	want := 6 // thorup, thorup-serial, dijkstra, delta, mlb, bfs
	if len(All()) != want {
		t.Fatalf("registry has %d solvers, want %d", len(All()), want)
	}
}

func TestApplicable(t *testing.T) {
	weighted := gen.Random(32, 96, 8, gen.UWD, 1)
	unit := gen.Random(32, 96, 1, gen.UWD, 1)
	empty := graph.NewBuilder(4).Build()
	for _, s := range All() {
		if !s.Applicable(weighted) && !s.UnitWeightsOnly {
			t.Errorf("%s not applicable to a weighted graph", s.Name)
		}
		if s.UnitWeightsOnly && s.Applicable(weighted) {
			t.Errorf("%s (unit-only) applicable to a weighted graph", s.Name)
		}
		if !s.Applicable(unit) {
			t.Errorf("%s not applicable to a unit-weight graph", s.Name)
		}
		if !s.Applicable(empty) {
			t.Errorf("%s not applicable to an edgeless graph", s.Name)
		}
	}
}

func TestAllSolversAgree(t *testing.T) {
	rt := par.NewExec(2)
	for _, tc := range []struct {
		name    string
		g       *graph.Graph
		sources []int32
	}{
		{"weighted", gen.Random(64, 256, 32, gen.UWD, 7), []int32{3, 40}},
		{"unit", gen.Random(64, 256, 1, gen.UWD, 8), []int32{0}},
		{"single-vertex", graph.NewBuilder(1).Build(), []int32{0}},
	} {
		in := NewInstance(tc.g, rt)
		want := dijkstra.SSSP(tc.g, tc.sources[0])
		for _, s := range tc.sources[1:] {
			for v, dv := range dijkstra.SSSP(tc.g, s) {
				if dv < want[v] {
					want[v] = dv
				}
			}
		}
		for _, s := range All() {
			if !s.Applicable(tc.g) {
				continue
			}
			got := s.Solve(in, tc.sources)
			for v := range want {
				if got[v] != want[v] {
					t.Errorf("%s/%s: d[%d] = %d, want %d", tc.name, s.Name, v, got[v], want[v])
					break
				}
			}
		}
		for _, pp := range PointToPoints() {
			tgt := int32(tc.g.NumVertices() - 1)
			ref := dijkstra.SSSP(tc.g, tc.sources[0])
			if got := pp.Dist(in, tc.sources[0], tgt); got != ref[tgt] {
				t.Errorf("%s/%s: st = %d, want %d", tc.name, pp.Name, got, ref[tgt])
			}
		}
	}
}

func TestInstanceHierarchyLazyAndCached(t *testing.T) {
	g := gen.Random(32, 96, 8, gen.UWD, 2)
	in := NewInstance(g, par.NewExec(1))
	h1 := in.Hierarchy()
	if h1 == nil {
		t.Fatal("nil hierarchy")
	}
	if h2 := in.Hierarchy(); h2 != h1 {
		t.Fatal("Hierarchy not cached")
	}
}
