// Package solver is a small registry unifying every SSSP implementation in
// the repository behind one interface, so that harnesses (differential
// stress testing, experiments, the CLI) can enumerate and run "all solvers"
// without hard-coding each package's entry point.
//
// Six full solvers are registered — the parallel Thorup core, the serial
// Thorup reference, Dijkstra, delta-stepping, Goldberg's multi-level buckets
// and BFS — plus bidirectional Dijkstra as a point-to-point solver (it
// computes one s-t distance, not a distance vector). Solvers that natively
// handle only a single source answer multi-source queries by folding the
// per-source runs with an elementwise minimum, which is the definition of
// multi-source shortest paths and therefore a valid differential oracle.
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package solver
