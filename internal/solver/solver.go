package solver

import (
	"repro/internal/bfs"
	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/deltastep"
	"repro/internal/dijkstra"
	"repro/internal/graph"
	"repro/internal/mlb"
	"repro/internal/par"
)

// Instance bundles a graph with the runtime and the lazily-built Component
// Hierarchy the CH-based solvers share. Build one Instance per graph and run
// any number of solvers against it; the hierarchy is constructed at most once.
type Instance struct {
	G  *graph.Graph
	RT *par.Runtime
	h  *ch.Hierarchy
}

// NewInstance wraps a graph for the registry's solvers.
func NewInstance(g *graph.Graph, rt *par.Runtime) *Instance {
	return &Instance{G: g, RT: rt}
}

// NewInstanceWithHierarchy wraps a graph together with an already-built
// hierarchy (e.g. loaded from a cache file), skipping the lazy construction.
func NewInstanceWithHierarchy(g *graph.Graph, rt *par.Runtime, h *ch.Hierarchy) *Instance {
	return &Instance{G: g, RT: rt, h: h}
}

// Hierarchy returns the instance's Component Hierarchy, building it on first
// use (Kruskal construction; all constructions yield the same hierarchy).
func (in *Instance) Hierarchy() *ch.Hierarchy {
	if in.h == nil {
		in.h = ch.BuildKruskal(in.G)
	}
	return in.h
}

// Solver is one registered full-distance-vector SSSP implementation.
type Solver struct {
	// Name is the registry key, matching the cmd/sssp -algo spelling.
	Name string
	// NativeMultiSource reports whether Solve handles len(sources) > 1 in a
	// single run (rather than by the registry's per-source min fold).
	NativeMultiSource bool
	// UnitWeightsOnly marks solvers whose output equals shortest-path
	// distances only when every edge weighs 1 (BFS).
	UnitWeightsOnly bool
	// Parallel marks solvers that run goroutines on the instance runtime,
	// i.e. the ones worth exercising under the race detector.
	Parallel bool
	// NeedsCH marks solvers that consume the Component Hierarchy.
	NeedsCH bool
	// Solve returns the distance from the nearest source for every vertex
	// (graph.Inf where unreachable). sources must be non-empty and in range.
	Solve func(in *Instance, sources []int32) []int64
}

// PointToPoint is a solver that answers a single s-t distance query.
type PointToPoint struct {
	Name string
	Dist func(in *Instance, s, t int32) int64
}

// foldSingle answers a multi-source query with a single-source solver: the
// distance to the nearest of several sources is the elementwise minimum of
// the individual single-source labellings.
func foldSingle(run func(src int32) []int64, sources []int32) []int64 {
	out := run(sources[0])
	for _, s := range sources[1:] {
		for v, d := range run(s) {
			if d < out[v] {
				out[v] = d
			}
		}
	}
	return out
}

// All returns the registry of full solvers, in a stable order. The returned
// slice is fresh; callers may append (e.g. fault-injected variants in tests).
func All() []Solver {
	return []Solver{
		{
			Name:              "thorup",
			NativeMultiSource: true,
			Parallel:          true,
			NeedsCH:           true,
			Solve: func(in *Instance, sources []int32) []int64 {
				q := core.NewSolver(in.Hierarchy(), in.RT).Query()
				d := q.RunFromSources(sources)
				out := make([]int64, len(d))
				copy(out, d) // detach from the query's reusable state
				return out
			},
		},
		{
			Name:              "thorup-serial",
			NativeMultiSource: true,
			NeedsCH:           true,
			Solve: func(in *Instance, sources []int32) []int64 {
				return core.SerialSSSPFromSources(in.Hierarchy(), sources)
			},
		},
		{
			Name: "dijkstra",
			Solve: func(in *Instance, sources []int32) []int64 {
				return foldSingle(func(s int32) []int64 { return dijkstra.SSSP(in.G, s) }, sources)
			},
		},
		{
			Name:     "delta",
			Parallel: true,
			Solve: func(in *Instance, sources []int32) []int64 {
				delta := deltastep.DefaultDelta(in.G)
				return foldSingle(func(s int32) []int64 {
					return deltastep.SSSP(in.RT, in.G, s, delta)
				}, sources)
			},
		},
		{
			Name: "mlb",
			Solve: func(in *Instance, sources []int32) []int64 {
				return foldSingle(func(s int32) []int64 { return mlb.SSSP(in.G, s) }, sources)
			},
		},
		{
			Name:            "bfs",
			UnitWeightsOnly: true,
			Parallel:        true,
			Solve: func(in *Instance, sources []int32) []int64 {
				return foldSingle(func(s int32) []int64 {
					return bfs.Distances(bfs.Parallel(in.RT, in.G, s))
				}, sources)
			},
		},
	}
}

// PointToPoints returns the registered point-to-point solvers.
func PointToPoints() []PointToPoint {
	return []PointToPoint{
		{
			Name: "bidirectional",
			Dist: func(in *Instance, s, t int32) int64 {
				return dijkstra.STDistance(in.G, s, t)
			},
		},
	}
}

// ByName looks a full solver up by its registry name.
func ByName(name string) (Solver, bool) {
	for _, s := range All() {
		if s.Name == name {
			return s, true
		}
	}
	return Solver{}, false
}

// Names returns the registry names in order.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, s := range all {
		names[i] = s.Name
	}
	return names
}

// Applicable reports whether the solver's output is exact shortest-path
// distances on g (BFS requires unit weights; an edgeless graph has no
// weights to violate that).
func (s Solver) Applicable(g *graph.Graph) bool {
	if !s.UnitWeightsOnly {
		return true
	}
	return g.NumEdges() == 0 || (g.MinWeight() == 1 && g.MaxWeight() == 1)
}
