package ch

import (
	"fmt"

	"repro/internal/graph"
)

// RepairStats describes how much of an incremental repair was reused versus
// rebuilt, for mutation metrics and threshold decisions.
type RepairStats struct {
	// Touched is the number of distinct mutated-edge endpoints.
	Touched int
	// DirtyNodes is how many old CH nodes had a touched leaf beneath them and
	// were discarded.
	DirtyNodes int
	// KeptSubtrees is the number of maximal clean subtrees adopted verbatim
	// (each becomes one super-node of the stitching sweep).
	KeptSubtrees int
	// ReusedNodes is how many internal nodes were copied from the old
	// hierarchy; NewNodes is how many the stitching sweep created.
	ReusedNodes, NewNodes int
	// SweptEdges is how many crossing edges the level sweep processed —
	// the work the repair did instead of sweeping every edge.
	SweptEdges int
}

// Repair builds the component hierarchy of g2 by reusing the parts of old
// that a mutation batch cannot have changed. g2 must have the same vertex set
// as old's graph; touched must list every endpoint of every mutated edge
// (weight change, insert, or delete).
//
// The correctness basis: let X be a maximal subtree of old containing no
// touched leaf. Every edge with an endpoint under X is unchanged — internal
// edges because both endpoints are untouched, and edges leaving X because a
// changed edge's endpoints are both touched, hence not under X. So X's leaf
// set is still connected by edges of weight < 2^level(X), and every g2 edge
// leaving it still has level > level(X) (for unchanged edges this is old's
// separation property; mutated edges cannot touch X). X therefore remains
// exactly a component with an identical sub-hierarchy in g2, and the repair
// only has to re-run the level sweep over the quotient graph whose
// super-nodes are these kept subtrees (touched vertices ride along as
// singleton leaves). Deletions that split components arbitrarily high — a
// bridge removal — are handled naturally: everything above the kept roots is
// recomputed, and a disconnection surfaces as multiple tops under a virtual
// root exactly as in a fresh build.
//
// Copied nodes keep their relative id order and stitch nodes are appended
// after them, preserving the child-id < parent-id topological invariant. The
// result passes Validate against g2; it may number nodes differently than
// BuildKruskal(g2) but induces the same component partition at every level.
func Repair(old *Hierarchy, g2 *graph.Graph, touched []int32) (*Hierarchy, RepairStats, error) {
	var stats RepairStats
	if old == nil {
		return nil, stats, fmt.Errorf("ch: repair of nil hierarchy")
	}
	n := old.g.NumVertices()
	if g2.NumVertices() != n {
		return nil, stats, fmt.Errorf("ch: repair vertex set changed: %d != %d", g2.NumVertices(), n)
	}
	if len(touched) == 0 {
		return nil, stats, fmt.Errorf("ch: repair with empty touched set (nothing mutated)")
	}
	nodes := old.NumNodes()

	// Phase 1: mark every node with a touched leaf beneath it dirty, walking
	// parent pointers until an already-dirty ancestor stops the climb.
	dirty := make([]bool, nodes)
	seen := 0
	for _, t := range touched {
		if t < 0 || int(t) >= n {
			return nil, stats, fmt.Errorf("ch: touched vertex %d out of range [0,%d)", t, n)
		}
		if !dirty[t] {
			seen++
		}
		for x := t; x >= 0 && !dirty[x]; x = old.parent[x] {
			dirty[x] = true
			stats.DirtyNodes++
		}
	}
	stats.Touched = seen

	// Phase 2: copy the clean internal nodes in old-id order. A clean node's
	// children are clean (a dirty child would dirty its parent), so mapped
	// child ids always exist by the time the parent is added.
	b := newBuilder(g2)
	newID := make([]int32, nodes)
	for v := 0; v < n; v++ {
		newID[v] = int32(v)
	}
	for x := n; x < nodes; x++ {
		if dirty[x] {
			newID[x] = -1
			continue
		}
		oldChildren := old.Children(int32(x))
		mapped := make([]int32, len(oldChildren))
		for i, c := range oldChildren {
			if newID[c] < 0 {
				return nil, stats, fmt.Errorf("ch: repair invariant broken: clean node %d has dirty child %d", x, c)
			}
			mapped[i] = newID[c]
		}
		newID[x] = b.addNode(old.level[x], mapped)
		stats.ReusedNodes++
	}

	// Phase 3: identify the super-nodes — maximal clean subtrees (clean nodes
	// with a dirty parent) plus every dirty leaf as a singleton — and label
	// each vertex with its super-node index.
	compIdx := make([]int32, n)
	for i := range compIdx {
		compIdx[i] = -1
	}
	var superNode []int32 // super index -> new CH node id
	var superLevel []int32
	addSuper := func(root int32) int32 {
		idx := int32(len(superNode))
		superNode = append(superNode, newID[root])
		superLevel = append(superLevel, old.level[root])
		return idx
	}
	var stack []int32
	for x := 0; x < nodes; x++ {
		if dirty[x] {
			if x < n {
				compIdx[x] = addSuper(int32(x)) // touched leaf: its own super-node
			}
			continue
		}
		p := old.parent[x]
		if p >= 0 && !dirty[p] {
			continue // interior of a kept subtree; its root covers it
		}
		// x is a kept root (clean with dirty parent; a clean node with no
		// parent would mean nothing was touched, excluded above).
		idx := addSuper(int32(x))
		stats.KeptSubtrees++
		stack = append(stack[:0], int32(x))
		for len(stack) > 0 {
			y := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if int(y) < n {
				compIdx[y] = idx
				continue
			}
			stack = append(stack, old.Children(y)...)
		}
	}

	// Phase 4: level sweep over the crossing edges only, with the kept roots
	// as pre-built nodes. Any g2 edge between two different super-nodes has
	// level strictly above both of their levels (see the doc comment), so
	// every merge happens at a valid level.
	levels := numLevels(g2)
	byLevel := make([][]graph.Edge, levels+1)
	for v := int32(0); v < int32(n); v++ {
		ts, ws := g2.Neighbors(v)
		for i, u := range ts {
			if u < v {
				continue // each undirected edge once
			}
			su, sv := compIdx[v], compIdx[u]
			if su == sv {
				continue // internal to a kept subtree (or a self-loop)
			}
			l := levelOf(ws[i])
			byLevel[l] = append(byLevel[l], graph.Edge{U: su, V: sv, W: ws[i]})
			stats.SweptEdges++
		}
	}

	k := len(superNode)
	parent := make([]int32, k)
	nodeOf := make([]int32, k)
	for i := 0; i < k; i++ {
		parent[i] = int32(i)
		nodeOf[i] = superNode[i]
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	preNew := len(b.level)
	var oldRoots []int32
	for l := int32(1); l <= levels; l++ {
		oldRoots = oldRoots[:0]
		for _, e := range byLevel[l] {
			ru, rv := find(e.U), find(e.V)
			if ru == rv {
				continue
			}
			if superLevel[ru] >= l || superLevel[rv] >= l {
				return nil, stats, fmt.Errorf("ch: repair separation violated: level-%d edge between super-nodes at levels %d and %d",
					l, superLevel[ru], superLevel[rv])
			}
			oldRoots = append(oldRoots, ru, rv)
			parent[ru] = rv
		}
		if len(oldRoots) == 0 {
			continue
		}
		groups := make(map[int32][]int32)
		var order []int32
		for _, r := range oldRoots {
			fr := find(r)
			if _, ok := groups[fr]; !ok {
				order = append(order, fr)
			}
			groups[fr] = append(groups[fr], nodeOf[r])
		}
		for _, fr := range order {
			nodeOf[fr] = b.addNode(l, dedupe(groups[fr]))
			superLevel[fr] = l
		}
	}
	stats.NewNodes = len(b.level) - preNew

	var tops []int32
	for i := int32(0); i < int32(k); i++ {
		if find(i) == i {
			tops = append(tops, nodeOf[i])
		}
	}
	return b.finish(tops, levels), stats, nil
}
