package ch

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

func roundTrip(t *testing.T, g *graph.Graph) *Hierarchy {
	t.Helper()
	h := BuildKruskal(g)
	var buf bytes.Buffer
	n, err := h.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if int64(buf.Len()) != n {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	h2, err := ReadFrom(&buf, g)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	return h2
}

func TestSerializeRoundTrip(t *testing.T) {
	for _, g := range []*graph.Graph{
		gen.Random(500, 2000, 1<<10, gen.UWD, 1),
		gen.RMATGraph(256, 1024, 4, gen.UWD, 2),
		gen.Path(40, 9),
		graph.NewBuilder(1).Build(),
		graph.NewBuilder(0).Build(),
	} {
		h := BuildKruskal(g)
		h2 := roundTrip(t, g)
		if h2.NumNodes() != h.NumNodes() || h2.Root() != h.Root() || h2.MaxLevel() != h.MaxLevel() {
			t.Fatalf("round trip changed structure: %v vs %v", h2, h)
		}
		for x := int32(0); x < int32(h.NumNodes()); x++ {
			if h.Level(x) != h2.Level(x) || h.Parent(x) != h2.Parent(x) || h.VertexCount(x) != h2.VertexCount(x) {
				t.Fatalf("node %d differs after round trip", x)
			}
		}
	}
}

func TestSerializeDisconnected(t *testing.T) {
	b := graph.NewBuilder(5)
	b.MustAddEdge(0, 1, 3)
	b.MustAddEdge(2, 3, 5)
	g := b.Build()
	h2 := roundTrip(t, g)
	if !h2.virtualRoot {
		t.Fatal("virtual root flag lost")
	}
}

func TestReadRejectsCorruption(t *testing.T) {
	g := gen.Random(200, 800, 256, gen.UWD, 3)
	h := BuildKruskal(g)
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	for name, corrupt := range map[string]func([]byte) []byte{
		"flipped byte": func(b []byte) []byte { c := append([]byte(nil), b...); c[len(c)/2] ^= 0x40; return c },
		"truncated":    func(b []byte) []byte { return b[:len(b)-9] },
		"bad magic":    func(b []byte) []byte { c := append([]byte(nil), b...); c[0] = 'X'; return c },
		"empty":        func([]byte) []byte { return nil },
		"header only":  func(b []byte) []byte { return b[:12] },
		// The array region starts after the 45-byte header (29 bytes of
		// structure fields + 16 bytes of graph fingerprint).
		"flipped level": func(b []byte) []byte { c := append([]byte(nil), b...); c[45] ^= 1; return c },
	} {
		if _, err := ReadFrom(bytes.NewReader(corrupt(raw)), g); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadRejectsWrongGraph(t *testing.T) {
	g := gen.Random(200, 800, 256, gen.UWD, 3)
	h := BuildKruskal(g)
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Different vertex count: rejected by the header check.
	other := gen.Random(100, 400, 256, gen.UWD, 3)
	if _, err := ReadFrom(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Fatal("accepted hierarchy for a graph of different size")
	}
	// Same size, different weights: rejected by invariant validation.
	sameSize := gen.Random(200, 800, 256, gen.UWD, 99)
	_, err := ReadFrom(bytes.NewReader(buf.Bytes()), sameSize)
	if err == nil {
		t.Fatal("accepted hierarchy for a different graph of the same size")
	}
	if !strings.Contains(err.Error(), "does not match") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestReadVersionCheck(t *testing.T) {
	g := gen.Path(4, 1)
	h := BuildKruskal(g)
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8] = 99 // version field
	if _, err := ReadFrom(bytes.NewReader(raw), g); err == nil {
		t.Fatal("accepted future version")
	}
}

// A stale cache whose fingerprint disagrees with the loaded graph must be
// refused with a fingerprint error before structural validation, and a
// pre-fingerprint (version 1) file must be refused outright.
func TestReadRejectsFingerprintMismatch(t *testing.T) {
	g := gen.Random(200, 800, 256, gen.UWD, 3)
	h := BuildKruskal(g)
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Same vertex count, different weights: the n header check passes, the
	// fingerprint check must trip.
	sameSize := gen.Random(200, 800, 256, gen.UWD, 99)
	_, err := ReadFrom(bytes.NewReader(buf.Bytes()), sameSize)
	if err == nil || !strings.Contains(err.Error(), "fingerprint mismatch") {
		t.Fatalf("want fingerprint mismatch error, got %v", err)
	}

	raw := append([]byte(nil), buf.Bytes()...)
	raw[8] = 1 // version field: pretend this is an old cache
	_, err = ReadFrom(bytes.NewReader(raw), g)
	if err == nil || !strings.Contains(err.Error(), "version 1") {
		t.Fatalf("want version-1 rejection, got %v", err)
	}
}

func TestBuildDeterministic(t *testing.T) {
	g := gen.Random(400, 1600, 1<<10, gen.UWD, 8)
	a := BuildKruskal(g)
	b := BuildKruskal(g)
	if a.NumNodes() != b.NumNodes() || a.Root() != b.Root() {
		t.Fatal("BuildKruskal nondeterministic")
	}
	for x := int32(0); x < int32(a.NumNodes()); x++ {
		if a.Level(x) != b.Level(x) || a.Parent(x) != b.Parent(x) {
			t.Fatalf("node %d differs between identical builds", x)
		}
	}
}

func TestReadRejectsCrossComponentGraph(t *testing.T) {
	// Hierarchy built for two separate components, then paired with a graph
	// that joins them: the sampled edge check must reject, not panic.
	b1 := graph.NewBuilder(4)
	b1.MustAddEdge(0, 1, 2)
	b1.MustAddEdge(2, 3, 2)
	g1 := b1.Build()
	h := BuildKruskal(g1)
	var buf bytes.Buffer
	if _, err := h.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b2 := graph.NewBuilder(4)
	b2.MustAddEdge(0, 1, 2)
	b2.MustAddEdge(2, 3, 2)
	b2.MustAddEdge(1, 2, 2) // crosses the stored components... same sizes
	g2 := b2.Build()
	if _, err := ReadFrom(bytes.NewReader(buf.Bytes()), g2); err == nil {
		t.Fatal("accepted hierarchy whose components the graph bridges")
	}
}
