package ch

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/mst"
	"repro/internal/par"
)

// Hierarchy is the Component Hierarchy of a graph. Nodes are identified by
// dense int32 ids; ids [0, n) are the leaves (leaf id == vertex id), internal
// nodes follow. The structure is immutable after construction and safe to
// share between any number of concurrent SSSP computations — the property
// that motivates the paper's Figure 5.
type Hierarchy struct {
	g *graph.Graph

	level  []int32 // formation level; 0 for leaves
	parent []int32 // parent node id; -1 for the root

	// Children of node x are children[childStart[x-n]:childStart[x-n+1]]
	// (leaves have no children and are not represented in childStart).
	childStart []int32
	children   []int32

	vertexCount []int32 // number of leaves under each node
	root        int32
	maxLevel    int32
	virtualRoot bool // root is an artificial super-root over a disconnected graph
}

// Graph returns the underlying graph.
func (h *Hierarchy) Graph() *graph.Graph { return h.g }

// NumNodes returns the total number of CH nodes (leaves + internal). This is
// the paper's Table 2 "total components" statistic.
func (h *Hierarchy) NumNodes() int { return len(h.level) }

// NumLeaves returns the number of leaves (= vertices).
func (h *Hierarchy) NumLeaves() int { return h.g.NumVertices() }

// NumInternal returns the number of internal nodes.
func (h *Hierarchy) NumInternal() int { return len(h.level) - h.g.NumVertices() }

// Root returns the root node id.
func (h *Hierarchy) Root() int32 { return h.root }

// MaxLevel returns the root's level.
func (h *Hierarchy) MaxLevel() int32 { return h.maxLevel }

// Level returns the formation level of node x.
func (h *Hierarchy) Level(x int32) int32 { return h.level[x] }

// Parent returns the parent of node x, or -1 for the root.
func (h *Hierarchy) Parent(x int32) int32 { return h.parent[x] }

// IsLeaf reports whether x is a leaf node (a vertex).
func (h *Hierarchy) IsLeaf(x int32) bool { return int(x) < h.g.NumVertices() }

// Children returns the children of node x (empty for leaves). The slice
// aliases internal storage and must not be modified.
func (h *Hierarchy) Children(x int32) []int32 {
	n := int32(h.g.NumVertices())
	if x < n {
		return nil
	}
	i := x - n
	return h.children[h.childStart[i]:h.childStart[i+1]]
}

// VertexCount returns the number of vertices (leaves) under node x.
func (h *Hierarchy) VertexCount(x int32) int32 { return h.vertexCount[x] }

// NumChildLinks returns the total number of parent→child links, i.e. the
// combined length of every node's Children slice.
func (h *Hierarchy) NumChildLinks() int { return len(h.children) }

// ChildOffset returns the start of node x's children within the flattened
// child array, so [ChildOffset(x), ChildOffset(x)+len(Children(x))) is a
// range unique to x: ranges of distinct nodes never overlap. Callers use it
// to address per-node regions of flat scratch buffers sized NumChildLinks.
// x must be an internal node.
func (h *Hierarchy) ChildOffset(x int32) int32 {
	return h.childStart[x-int32(h.g.NumVertices())]
}

// Shift returns the bucket granularity exponent of node x: children of x are
// bucketed by minD >> Shift(x), i.e. into buckets of width 2^(level-1).
func (h *Hierarchy) Shift(x int32) uint {
	l := h.level[x]
	if l <= 0 {
		return 0
	}
	return uint(l - 1)
}

// String summarises the hierarchy.
func (h *Hierarchy) String() string {
	return fmt.Sprintf("ch{nodes=%d internal=%d maxLevel=%d}", h.NumNodes(), h.NumInternal(), h.maxLevel)
}

// levelOf returns the smallest i with w < 2^i, i.e. floor(log2 w)+1: the CH
// level at which an edge of weight w can first participate in a component.
func levelOf(w uint32) int32 {
	return int32(bits.Len32(w)) // w >= 1, so Len32(w) = floor(log2 w)+1
}

// LevelOf exposes the weight→level mapping (the smallest i with w < 2^i) as
// an invariant hook: an edge of weight w may only cross the children of CH
// nodes at levels <= LevelOf(w), which is what Hierarchy.CheckEdge verifies.
func LevelOf(w uint32) int32 { return levelOf(w) }

// HasVirtualRoot reports whether the root is an artificial super-root joining
// the components of a disconnected graph (such a root is not itself a
// component, which matters to invariant checkers: its children need not be
// settled all-or-nothing by a traversal).
func (h *Hierarchy) HasVirtualRoot() bool { return h.virtualRoot }

// numLevels returns the number of construction phases for a graph: the level
// of its heaviest edge.
func numLevels(g *graph.Graph) int32 {
	if g.MaxWeight() == 0 {
		return 0
	}
	return levelOf(g.MaxWeight())
}

// builder accumulates internal nodes during construction.
type builder struct {
	g           *graph.Graph
	level       []int32
	parent      []int32
	childLists  [][]int32
	vertexCount []int32
}

func newBuilder(g *graph.Graph) *builder {
	n := g.NumVertices()
	b := &builder{
		g:           g,
		level:       make([]int32, n, 2*n+1),
		parent:      make([]int32, n, 2*n+1),
		vertexCount: make([]int32, n, 2*n+1),
	}
	for v := 0; v < n; v++ {
		b.parent[v] = -1
		b.vertexCount[v] = 1
	}
	return b
}

// addNode appends an internal node with the given children and returns its id.
func (b *builder) addNode(level int32, children []int32) int32 {
	id := int32(len(b.level))
	b.level = append(b.level, level)
	b.parent = append(b.parent, -1)
	var vc int32
	for _, c := range children {
		b.parent[c] = id
		vc += b.vertexCount[c]
	}
	b.vertexCount = append(b.vertexCount, vc)
	b.childLists = append(b.childLists, children)
	return id
}

// finish flattens the child lists and installs the root. tops are the node
// ids with no parent after all levels are processed.
func (b *builder) finish(tops []int32, topLevel int32) *Hierarchy {
	root := int32(-1)
	virtual := false
	switch len(tops) {
	case 0:
		// Graph with no vertices.
	case 1:
		root = tops[0]
	default:
		// Disconnected graph: a virtual root one level above everything
		// keeps the traversal uniform; unreachable components are simply
		// never visited.
		root = b.addNode(topLevel+1, tops)
		virtual = true
	}
	h := &Hierarchy{
		g:           b.g,
		level:       b.level,
		parent:      b.parent,
		vertexCount: b.vertexCount,
		root:        root,
		virtualRoot: virtual,
	}
	if root >= 0 {
		h.maxLevel = b.level[root]
	}
	h.childStart = make([]int32, len(b.childLists)+1)
	total := 0
	for i, cl := range b.childLists {
		total += len(cl)
		h.childStart[i+1] = int32(total)
	}
	h.children = make([]int32, 0, total)
	for _, cl := range b.childLists {
		h.children = append(h.children, cl...)
	}
	return h
}

// CCKernel is a parallel connected-components kernel as used by BuildNaive;
// cc.Bully and cc.ShiloachVishkin have this shape once curried with a
// runtime.
type CCKernel func(rt *par.Runtime, g *graph.Graph, below uint32) ([]int32, int)

// BuildNaive constructs the hierarchy with the paper's Algorithm 1: for each
// level i = 1..log C, find the connected components of the contracted graph
// using only edges of weight < 2^i (with the given parallel CC kernel),
// create a CH node for every component that merges two or more previous
// components, and contract. The runtime is used for the CC kernel and the
// contraction bookkeeping, so sim-mode accounting covers the whole
// construction (Tables 3 and 5).
func BuildNaive(rt *par.Runtime, g *graph.Graph, kernel CCKernel) *Hierarchy {
	b := newBuilder(g)
	n := g.NumVertices()
	if n == 0 {
		return b.finish(nil, 0)
	}
	cur := g
	curNodes := make([]int32, n) // CH node of each contracted vertex
	for v := 0; v < n; v++ {
		curNodes[v] = int32(v)
	}
	levels := numLevels(g)
	for i := int32(1); i <= levels; i++ {
		label, count := kernel(rt, cur, uint32(1)<<uint(i))
		if count == cur.NumVertices() {
			continue // nothing merged at this level
		}
		// Count members per component to distinguish merges from singletons.
		size := make([]int32, count)
		rt.ChargeLoop(rt.ModeFor(par.DefaultThresholds, cur.NumVertices()), cur.NumVertices(), 1)
		for v := 0; v < cur.NumVertices(); v++ {
			size[label[v]]++
		}
		newNodes := make([]int32, count)
		for c := range newNodes {
			newNodes[c] = -1
		}
		members := make([][]int32, count)
		for v := 0; v < cur.NumVertices(); v++ {
			c := label[v]
			if size[c] == 1 {
				newNodes[c] = curNodes[v] // unchanged component: keep its node
			} else {
				members[c] = append(members[c], curNodes[v])
			}
		}
		rt.ChargeLoop(rt.ModeFor(par.DefaultThresholds, cur.NumVertices()), cur.NumVertices(), 1)
		for c := 0; c < count; c++ {
			if newNodes[c] < 0 {
				newNodes[c] = b.addNode(i, members[c])
			}
		}
		// Contract: this is the paper's G'' construction (multiplicity of
		// remaining edges preserved, intra-component edges dropped).
		rt.ChargeLoop(rt.ModeFor(par.DefaultThresholds, int(cur.NumEdges())), int(cur.NumEdges()), 2)
		cur = cur.Contract(label, count)
		curNodes = newNodes
	}
	tops := make([]int32, cur.NumVertices())
	copy(tops, curNodes)
	return b.finish(tops, levels)
}

// BuildKruskal constructs the hierarchy serially with a union-find sweep over
// the edges grouped by weight level. It produces the same hierarchy as
// BuildNaive at a fraction of the serial cost.
func BuildKruskal(g *graph.Graph) *Hierarchy {
	return buildFromEdges(g, g.Edges())
}

// BuildMST constructs the hierarchy the way Thorup's analysis suggests: the
// components of the graph restricted to edges < 2^i equal the components of
// its minimum spanning forest restricted to the same edges, so the sweep only
// needs the forest's n-1 edges. The forest is computed with parallel Borůvka
// on the given runtime.
func BuildMST(rt *par.Runtime, g *graph.Graph) *Hierarchy {
	forest := mst.Boruvka(rt, g)
	rt.Charge(int64(len(forest)))
	return buildFromEdges(g, forest)
}

// buildFromEdges runs the level sweep over the given edge set (either all
// edges or a spanning forest; both yield the same component structure).
func buildFromEdges(g *graph.Graph, edges []graph.Edge) *Hierarchy {
	b := newBuilder(g)
	n := g.NumVertices()
	if n == 0 {
		return b.finish(nil, 0)
	}
	// Bucket edges by level (counting sort; levels are at most 31).
	levels := numLevels(g)
	byLevel := make([][]graph.Edge, levels+1)
	for _, e := range edges {
		if e.U == e.V {
			continue // self-loops never merge anything
		}
		l := levelOf(e.W)
		byLevel[l] = append(byLevel[l], e)
	}

	parent := make([]int32, n) // union-find over vertices
	nodeOf := make([]int32, n) // CH node of each union-find root
	for v := 0; v < n; v++ {
		parent[v] = int32(v)
		nodeOf[v] = int32(v)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}

	var oldRoots []int32
	for l := int32(1); l <= levels; l++ {
		oldRoots = oldRoots[:0]
		for _, e := range byLevel[l] {
			ru, rv := find(e.U), find(e.V)
			if ru == rv {
				continue
			}
			oldRoots = append(oldRoots, ru, rv)
			parent[ru] = rv
		}
		if len(oldRoots) == 0 {
			continue
		}
		// Group the merged pre-level nodes by their final root. Roots are
		// processed in first-touch order so node numbering is deterministic
		// (important for serialisation and reproducible experiments).
		groups := make(map[int32][]int32)
		var order []int32
		for _, r := range oldRoots {
			fr := find(r)
			if _, seen := groups[fr]; !seen {
				order = append(order, fr)
			}
			groups[fr] = append(groups[fr], nodeOf[r])
		}
		for _, fr := range order {
			nodeOf[fr] = b.addNode(l, dedupe(groups[fr]))
		}
	}
	// Collect top-level nodes (one per final component).
	var tops []int32
	for v := 0; v < n; v++ {
		if find(int32(v)) == int32(v) {
			tops = append(tops, nodeOf[v])
		}
	}
	return b.finish(tops, levels)
}

// dedupe removes duplicates from a slice of node ids, preserving first
// occurrence order. It returns fresh storage (addNode retains the result).
func dedupe(xs []int32) []int32 {
	if len(xs) <= 32 {
		res := make([]int32, 0, len(xs))
		for _, x := range xs {
			dup := false
			for _, y := range res {
				if x == y {
					dup = true
					break
				}
			}
			if !dup {
				res = append(res, x)
			}
		}
		return res
	}
	seen := make(map[int32]struct{}, len(xs))
	res := make([]int32, 0, len(xs))
	for _, x := range xs {
		if _, ok := seen[x]; ok {
			continue
		}
		seen[x] = struct{}{}
		res = append(res, x)
	}
	return res
}
