package ch

import (
	"fmt"

	"repro/internal/graph"
)

// Raw exposes the hierarchy's flat arrays and scalars for serialization
// layers (the snapshot format stores them verbatim, which is what allows an
// mmap'd snapshot to alias them without a decode pass). The slices alias the
// hierarchy's internal storage and must not be modified.
type Raw struct {
	// Level, Parent, VertexCount have one entry per CH node (leaves first).
	Level, Parent, VertexCount []int32
	// ChildStart has NumInternal+1 entries; Children holds the concatenated
	// child lists of internal nodes.
	ChildStart, Children []int32
	Root, MaxLevel       int32
	VirtualRoot          bool
}

// Raw returns the hierarchy's storage in Raw form.
func (h *Hierarchy) Raw() Raw {
	return Raw{
		Level: h.level, Parent: h.parent, VertexCount: h.vertexCount,
		ChildStart: h.childStart, Children: h.children,
		Root: h.root, MaxLevel: h.maxLevel, VirtualRoot: h.virtualRoot,
	}
}

// FromRaw reconstructs a hierarchy over g directly from its flat arrays. The
// slices are adopted, not copied — the mmap snapshot path hands in slices
// aliasing the file mapping, so the returned hierarchy is only valid while
// that mapping is.
//
// Shape checks (array lengths against each other and g, root bounds, child
// array bookends) always run in O(1). With deep set, the full load-time
// validation of ReadFrom also runs: childStart monotonicity, ValidateStructure
// (tree shape, levels, vertex counts — O(nodes)), and a deterministic sample
// of edge separation properties. Callers may pass deep=false only for arrays
// whose bytes a checksum proves identical to a previously deep-validated
// load, mirroring graph.FromCSRTrusted's contract.
func FromRaw(g *graph.Graph, r Raw, deep bool) (*Hierarchy, error) {
	n := g.NumVertices()
	nodes := len(r.Level)
	if len(r.Parent) != nodes || len(r.VertexCount) != nodes {
		return nil, fmt.Errorf("ch: raw arrays disagree: %d levels, %d parents, %d vertex counts",
			nodes, len(r.Parent), len(r.VertexCount))
	}
	if nodes < n || (n > 0 && nodes > 2*n+1) || (n == 0 && nodes != 0) {
		return nil, fmt.Errorf("ch: implausible node count %d for %d vertices", nodes, n)
	}
	if len(r.ChildStart) != nodes-n+1 {
		return nil, fmt.Errorf("ch: childStart length %d, want %d", len(r.ChildStart), nodes-n+1)
	}
	if r.ChildStart[0] != 0 {
		return nil, fmt.Errorf("ch: childStart[0] = %d, want 0", r.ChildStart[0])
	}
	if int(r.ChildStart[len(r.ChildStart)-1]) != len(r.Children) {
		return nil, fmt.Errorf("ch: childStart end %d, want %d", r.ChildStart[len(r.ChildStart)-1], len(r.Children))
	}
	if nodes == 0 {
		if r.Root != -1 {
			return nil, fmt.Errorf("ch: empty hierarchy with root %d", r.Root)
		}
	} else if r.Root < 0 || int(r.Root) >= nodes {
		return nil, fmt.Errorf("ch: root %d out of range [0,%d)", r.Root, nodes)
	} else if r.Level[r.Root] != r.MaxLevel {
		return nil, fmt.Errorf("ch: root level %d but maxLevel %d", r.Level[r.Root], r.MaxLevel)
	}
	h := &Hierarchy{
		g:           g,
		level:       r.Level,
		parent:      r.Parent,
		vertexCount: r.VertexCount,
		childStart:  r.ChildStart,
		children:    r.Children,
		root:        r.Root,
		maxLevel:    r.MaxLevel,
		virtualRoot: r.VirtualRoot,
	}
	if deep {
		last := int32(0)
		for _, cs := range h.childStart {
			if cs < last {
				return nil, fmt.Errorf("ch: childStart not monotone")
			}
			last = cs
		}
		if err := h.ValidateStructure(); err != nil {
			return nil, fmt.Errorf("ch: raw hierarchy does not match graph: %w", err)
		}
		if err := h.sampleEdgeCheck(1024); err != nil {
			return nil, fmt.Errorf("ch: raw hierarchy does not match graph: %w", err)
		}
	}
	return h, nil
}
