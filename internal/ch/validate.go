package ch

import (
	"fmt"

	"repro/internal/cc"
)

// Validate checks the structural invariants of the hierarchy against its
// graph. It is O(n log C + m log C) and intended for tests and for gating
// untrusted persisted hierarchies, not for hot paths.
//
// Checked invariants:
//
//  1. Leaves are exactly nodes [0, n) at level 0 with no children; internal
//     node levels are positive and strictly greater than their children's.
//  2. Child ids are smaller than their parents' (topological id order), the
//     parent/child links are mutually consistent, and every non-root node
//     has exactly one parent.
//  3. VertexCount sums correctly up the tree.
//  4. Partition property: for every level i, grouping leaves by their lowest
//     ancestor of level >= i yields exactly the connected components of the
//     graph restricted to edges of weight < 2^i.
//  5. Separation property: every edge's endpoints have an LCA with
//     2^(level-1) <= weight bound, i.e. w >= 2^(LCA.level - 1) whenever the
//     endpoints differ, and the endpoints are connected below the LCA's
//     level bound (w < 2^level implies LCA.level <= levelOf(w)).
func (h *Hierarchy) Validate() error {
	if err := h.ValidateStructure(); err != nil {
		return err
	}
	n := h.g.NumVertices()
	if n == 0 {
		return nil
	}

	// Partition property at every level with a real hierarchy boundary.
	for i := int32(1); i <= h.maxLevel+1; i++ {
		got := h.PartitionAtLevel(i)
		want, wantCount := cc.SerialBFS(h.g, boundAt(i))
		if !samePartition(got, want, wantCount) {
			return fmt.Errorf("ch: partition at level %d disagrees with connected components", i)
		}
	}

	// Separation property over all edges.
	for v := int32(0); v < int32(n); v++ {
		ts, ws := h.g.Neighbors(v)
		for k, u := range ts {
			if u == v {
				continue
			}
			if err := h.CheckEdge(v, u, ws[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

// CheckEdge verifies the separation property for one edge: the endpoints'
// LCA must sit at a level consistent with the edge weight. It is exported as
// an invariant hook for external harnesses (internal/stress) that spot-check
// edges without paying for a full Validate.
func (h *Hierarchy) CheckEdge(v, u int32, w uint32) error {
	l := h.lcaOrNeg(v, u)
	if l < 0 {
		return fmt.Errorf("ch: edge (%d,%d) connects vertices the hierarchy keeps in separate components", v, u)
	}
	lvl := h.level[l]
	if lvl > levelOf(w) {
		return fmt.Errorf("ch: edge (%d,%d,w=%d) endpoints only joined at level %d", v, u, w, lvl)
	}
	if lvl >= 1 && int64(w) < int64(1)<<uint(lvl-1) {
		return fmt.Errorf("ch: separation violated: edge (%d,%d,w=%d) crosses children of level-%d node", v, u, w, lvl)
	}
	return nil
}

// ValidateStructure checks the O(nodes) invariants only (tree shape, levels,
// vertex counts) without the connected-components cross-check; ReadFrom uses
// it together with edge sampling for fast loads.
func (h *Hierarchy) ValidateStructure() error {
	n := h.g.NumVertices()
	if n == 0 {
		if h.NumNodes() != 0 || h.root != -1 {
			return fmt.Errorf("ch: empty graph with %d nodes, root %d", h.NumNodes(), h.root)
		}
		return nil
	}
	if h.root < 0 || int(h.root) >= h.NumNodes() {
		return fmt.Errorf("ch: invalid root %d", h.root)
	}
	if h.parent[h.root] != -1 {
		return fmt.Errorf("ch: root %d has parent %d", h.root, h.parent[h.root])
	}
	childCount := make([]int32, h.NumNodes())
	for x := int32(0); x < int32(h.NumNodes()); x++ {
		lvl := h.level[x]
		if h.IsLeaf(x) {
			if lvl != 0 {
				return fmt.Errorf("ch: leaf %d at level %d", x, lvl)
			}
			if len(h.Children(x)) != 0 {
				return fmt.Errorf("ch: leaf %d has children", x)
			}
		} else {
			if lvl < 1 {
				return fmt.Errorf("ch: internal node %d at level %d", x, lvl)
			}
			kids := h.Children(x)
			if len(kids) < 2 {
				return fmt.Errorf("ch: internal node %d has %d children (hierarchy not compressed)", x, len(kids))
			}
			var vc int32
			for _, c := range kids {
				if c >= x {
					return fmt.Errorf("ch: child %d not smaller than parent %d", c, x)
				}
				if h.level[c] >= lvl {
					return fmt.Errorf("ch: child %d level %d >= parent %d level %d", c, h.level[c], x, lvl)
				}
				if h.parent[c] != x {
					return fmt.Errorf("ch: child %d of %d has parent %d", c, x, h.parent[c])
				}
				childCount[c]++
				vc += h.vertexCount[c]
			}
			if vc != h.vertexCount[x] {
				return fmt.Errorf("ch: node %d vertexCount %d, children sum %d", x, h.vertexCount[x], vc)
			}
		}
		if x != h.root {
			p := h.parent[x]
			if p < 0 || int(p) >= h.NumNodes() {
				return fmt.Errorf("ch: node %d has invalid parent %d", x, p)
			}
		}
	}
	for x := int32(0); x < int32(h.NumNodes()); x++ {
		if x == h.root {
			continue
		}
		if childCount[x] != 1 {
			return fmt.Errorf("ch: node %d appears in %d child lists", x, childCount[x])
		}
	}
	if h.vertexCount[h.root] != int32(n) {
		return fmt.Errorf("ch: root covers %d of %d vertices", h.vertexCount[h.root], n)
	}
	return nil
}

// boundAt returns the exclusive weight bound for level i, saturating instead
// of overflowing for the virtual-root level.
func boundAt(i int32) uint32 {
	if i >= 31 {
		return cc.All
	}
	return uint32(1) << uint(i)
}

// PartitionAtLevel returns, for each vertex, the id of its highest real
// ancestor with level <= i (the virtual root of a disconnected graph does not
// count — it is not a component). With level compression, a node formed at
// level l is the component of its vertices for every threshold in
// [l, level(parent)), so this ancestor is exactly the connected component of
// the vertex in the graph restricted to edges of weight < 2^i; for i at or
// above the top level it is the vertex's connected component in the graph.
func (h *Hierarchy) PartitionAtLevel(i int32) []int32 {
	n := h.g.NumVertices()
	out := make([]int32, n)
	for v := 0; v < n; v++ {
		x := int32(v)
		for {
			p := h.parent[x]
			if p < 0 || (h.virtualRoot && p == h.root) || h.level[p] > i {
				break // x is the component at this threshold
			}
			x = p
		}
		out[v] = x
	}
	return out
}

// LCA returns the lowest common ancestor node of leaves u and v. It panics
// if the leaves share no ancestor (disconnected graph without virtual root).
func (h *Hierarchy) LCA(u, v int32) int32 {
	l := h.lcaOrNeg(u, v)
	if l < 0 {
		panic("ch: LCA of disconnected leaves")
	}
	return l
}

// lcaOrNeg is LCA returning -1 instead of panicking when the nodes share no
// ancestor (possible when a hierarchy is paired with the wrong graph).
func (h *Hierarchy) lcaOrNeg(u, v int32) int32 {
	// Walk the deeper-by-id side up; ids are topologically ordered
	// (children < parents), so repeatedly lifting the smaller id converges.
	for u != v {
		if u < v {
			u = h.parent[u]
		} else {
			v = h.parent[v]
		}
		if u < 0 || v < 0 {
			return -1
		}
	}
	return u
}

func samePartition(a, b []int32, bCount int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := make(map[int32]int32, bCount)
	rev := make(map[int32]int32, bCount)
	for i := range a {
		if x, ok := fwd[a[i]]; ok {
			if x != b[i] {
				return false
			}
		} else {
			fwd[a[i]] = b[i]
		}
		if x, ok := rev[b[i]]; ok {
			if x != a[i] {
				return false
			}
		} else {
			rev[b[i]] = a[i]
		}
	}
	return true
}
