// Package ch implements Thorup's Component Hierarchy (CH), the tree
// structure at the heart of the paper.
//
// Component(v,i) is the subgraph reachable from v using only edges of weight
// < 2^i. The CH has one leaf per vertex (level 0) and an internal node for
// every maximal component that is strictly larger than each of its
// sub-components; the children of a level-i node are the components it is
// made of, and every edge between two distinct children has weight >= 2^(i-1)
// (the separation property Thorup's Lemma builds on). Nodes are only created
// where merges occur, so chains of identical components are compressed; each
// node stores the level at which it formed.
//
// Three constructions are provided:
//
//   - BuildNaive: the paper's Algorithm 1 — log C phases, each finding the
//     connected components of the contracted graph restricted to edges of
//     weight < 2^i with a parallel CC kernel, then contracting. This is the
//     construction the paper times in Tables 3 and 5.
//   - BuildKruskal: a serial union-find sweep over edges grouped by weight
//     level; the fast serial construction.
//   - BuildMST: Thorup's theoretically favoured route — compute the minimum
//     spanning forest first, then sweep only its n-1 edges. The paper
//     deliberately deviates from this ("we build the CH from the original
//     graph because this is faster in practice", §3.1); the ablation bench
//     quantifies that choice.
//
// All three produce the identical hierarchy.
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package ch
