package ch

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// additiveScratch recycles RepairAdditive's working arrays. The repair sits on
// the serving path of every mutation request, and its scratch is sized by the
// node count, not the delta — without reuse each call would zero and then
// garbage-collect a few hundred kilobytes. The dirty and superOf arrays are
// kept all-zero across uses (the defer in RepairAdditive undoes exactly the
// entries it set); everything else is fully reinitialized per call.
type additiveScratch struct {
	dirty                 []bool
	superOf               []int32
	dirtyList             []int32
	superNode, superLevel []int32
	levOff, levCur        []int32
	levNodes              []int32
	parent, nodeRef       []int32
	pushed, gmark, slotOf []int32
	counts, fill          []int32
	oldRoots, frs, order  []int32
	arena                 []int32
	newID                 []int32
}

var additivePool = sync.Pool{New: func() any { return new(additiveScratch) }}

func growI32(s []int32, n int) []int32 {
	if cap(s) < n {
		return make([]int32, n)
	}
	return s[:n]
}

func growBool(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

// RepairAdditive builds the component hierarchy of g2 from old for mutations
// that only ADD connectivity: inserted edges and weight decreases. added must
// list those edges with their NEW weights; g2 must contain every edge of old's
// graph at its old weight or lower, plus the insertions.
//
// Why a separate path: the general Repair discards every ancestor of a touched
// leaf and re-runs the level sweep over all edges crossing the kept subtrees.
// On graphs with high-fanout top components that sweep degenerates to nearly
// O(m) — the dirty spine always reaches the root, and most edges cross its
// children. An additive delta permits something much stronger: components can
// only merge, never split, so every merge recorded in the old hierarchy is
// still valid (its witness edges survive at the same or lower weight). The old
// structure itself therefore serves as the edge set: each dirty node at level
// l is replayed as a star of synthetic edges joining its children at level l,
// which recreates old connectivity among the kept subtrees exactly, and the
// added edges are swept alongside at their own levels to introduce the new
// merges. Completeness: any g2 edge below a threshold is either an unchanged
// old edge (its connectivity is implied by the stars plus the kept subtrees)
// or one of the added edges (swept explicitly). The union-find sweep over
// stars-plus-added computes the exact new partition at every level without
// visiting the graph's edges at all.
//
// The dirty set is also smaller than general Repair's: on each endpoint chain
// only ancestors at or above the edge's level can change (components below the
// new edge's level cannot gain it), so marking starts at the first ancestor
// with level >= levelOf(w) and climbs from there. The surviving nodes keep
// their relative order and are bulk-copied into fresh arrays; stitch nodes are
// appended after them, preserving the child-id < parent-id invariant. Work is
// O(sum of dirty-node fanouts + nodes copied), independent of edge count.
//
// A virtual root over a disconnected graph is handled specially: it is not a
// component, so it is never replayed as a star — its children simply become
// kept subtrees, and an added edge bridging two of them merges components that
// were never connected (the virtual root dissolves when one top remains).
func RepairAdditive(old *Hierarchy, g2 *graph.Graph, added []graph.Edge) (*Hierarchy, RepairStats, error) {
	var stats RepairStats
	if old == nil {
		return nil, stats, fmt.Errorf("ch: additive repair of nil hierarchy")
	}
	n := old.g.NumVertices()
	if g2.NumVertices() != n {
		return nil, stats, fmt.Errorf("ch: additive repair vertex set changed: %d != %d", g2.NumVertices(), n)
	}
	if len(added) == 0 {
		return nil, stats, fmt.Errorf("ch: additive repair with no added edges")
	}
	nodes := old.NumNodes()

	seenV := make(map[int32]struct{}, 2*len(added))
	for _, e := range added {
		seenV[e.U] = struct{}{}
		seenV[e.V] = struct{}{}
	}
	stats.Touched = len(seenV)

	sc := additivePool.Get().(*additiveScratch)
	dirtyList := sc.dirtyList[:0]
	superNode := sc.superNode[:0]
	superLevel := sc.superLevel[:0]
	oldRoots, frs, order := sc.oldRoots[:0], sc.frs[:0], sc.order[:0]
	dirty := growBool(sc.dirty, nodes)
	superOf := growI32(sc.superOf, nodes)
	defer func() {
		// Restore the all-zero invariant on the sparse arrays, then recycle.
		for _, x := range dirtyList {
			dirty[x] = false
		}
		for _, c := range superNode {
			superOf[c] = 0
		}
		sc.dirty, sc.superOf = dirty, superOf
		sc.dirtyList, sc.superNode, sc.superLevel = dirtyList[:0], superNode[:0], superLevel[:0]
		sc.oldRoots, sc.frs, sc.order = oldRoots[:0], frs[:0], order[:0]
		additivePool.Put(sc)
	}()

	// Phase 1: mark the nodes an added edge can restructure — ancestors of its
	// endpoints from the first one at level >= levelOf(w) upward. The climb
	// always continues to the root, so the dirty set is closed upward and every
	// surviving node keeps its entire subtree verbatim. A virtual root stops
	// the level skip: an edge heavier than every old edge still has to merge
	// previously disconnected components.
	for _, e := range added {
		if e.U == e.V {
			continue // self-loops never merge anything
		}
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, stats, fmt.Errorf("ch: added edge (%d,%d) out of range [0,%d)", e.U, e.V, n)
		}
		l := levelOf(e.W)
		for _, t := range [2]int32{e.U, e.V} {
			x := old.parent[t]
			for x >= 0 && old.level[x] < l && !(old.virtualRoot && x == old.root) {
				x = old.parent[x]
			}
			for ; x >= 0 && !dirty[x]; x = old.parent[x] {
				dirty[x] = true
				dirtyList = append(dirtyList, x)
			}
		}
	}
	stats.DirtyNodes = len(dirtyList)
	if len(dirtyList) == 0 {
		// Every added edge lands inside a component already joined at or below
		// its level: the structure is unchanged, only the graph is new. The
		// arrays are immutable, so the hierarchies can share them.
		return &Hierarchy{
			g: g2, level: old.level, parent: old.parent,
			childStart: old.childStart, children: old.children,
			vertexCount: old.vertexCount, root: old.root,
			maxLevel: old.maxLevel, virtualRoot: old.virtualRoot,
		}, stats, nil
	}

	// Phase 2: the kept subtrees are the non-dirty children of dirty nodes
	// (upward closure means their subtrees contain no dirty node). superOf
	// stores index+1 so zero means "none".
	for _, x := range dirtyList {
		for _, c := range old.Children(x) {
			if dirty[c] || superOf[c] != 0 {
				continue
			}
			superNode = append(superNode, c)
			superOf[c] = int32(len(superNode))
			superLevel = append(superLevel, old.level[c])
		}
	}
	stats.KeptSubtrees = len(superNode)
	k := len(superNode)

	// rep resolves a child of a dirty node to a kept subtree beneath it: any
	// descendant super works, because the star asserting connectivity at the
	// dirty node's level joins whole child components, and each dirty child's
	// own star connects everything under it at a lower level first.
	rep := func(x int32) int32 {
		for dirty[x] {
			x = old.Children(x)[0]
		}
		return superOf[x] - 1
	}
	leafRep := func(u int32) int32 {
		for {
			p := old.parent[u]
			if p < 0 || dirty[p] {
				break
			}
			u = p
		}
		return superOf[u] - 1
	}

	// Phase 3: bucket the sweep input by level — the dirty nodes whose stars
	// replay old merges, and the added edges that introduce the new ones.
	sweepMax := numLevels(g2)
	for _, x := range dirtyList {
		if old.virtualRoot && x == old.root {
			continue
		}
		if old.level[x] > sweepMax {
			sweepMax = old.level[x]
		}
	}
	lc := int(sweepMax) + 2
	levOff := growI32(sc.levOff, lc)
	sc.levOff = levOff
	clear(levOff)
	starNodes, starEdges := 0, 0
	for _, x := range dirtyList {
		if old.virtualRoot && x == old.root {
			continue // not a component; replaying it would weld disconnected parts
		}
		levOff[old.level[x]+1]++
		starNodes++
		starEdges += len(old.Children(x)) - 1
	}
	for i := 1; i < lc; i++ {
		levOff[i] += levOff[i-1]
	}
	levNodes := growI32(sc.levNodes, starNodes)
	sc.levNodes = levNodes
	levCur := growI32(sc.levCur, lc)
	sc.levCur = levCur
	copy(levCur, levOff)
	for _, x := range dirtyList {
		if old.virtualRoot && x == old.root {
			continue
		}
		l := old.level[x]
		levNodes[levCur[l]] = x
		levCur[l]++
	}

	type addPair struct{ l, a, b int32 }
	pairs := make([]addPair, 0, len(added))
	addOff := make([]int32, lc)
	for _, e := range added {
		if e.U == e.V {
			continue
		}
		ra, rb := leafRep(e.U), leafRep(e.V)
		if ra < 0 || rb < 0 {
			return nil, stats, fmt.Errorf("ch: additive repair lost the kept component of edge (%d,%d)", e.U, e.V)
		}
		if ra == rb {
			continue // both endpoints under one kept subtree: already joined below the dirty region
		}
		pairs = append(pairs, addPair{levelOf(e.W), ra, rb})
		addOff[levelOf(e.W)+1]++
	}
	for i := 1; i < lc; i++ {
		addOff[i] += addOff[i-1]
	}
	addFlat := make([]addPair, len(pairs))
	addCur := make([]int32, lc)
	copy(addCur, addOff)
	for _, p := range pairs {
		addFlat[addCur[p.l]] = p
		addCur[p.l]++
	}
	stats.SweptEdges = starEdges + len(pairs)

	// Phase 4: level sweep over the synthetic edge set — at most
	// sum-of-dirty-fanouts + len(added) edges. Stars union against an
	// accumulator root so each child costs one find; pushed marks a root as
	// already collected for the current level, and gmark/slotOf group the
	// merged roots without a map.
	parent := growI32(sc.parent, k)
	nodeRef := growI32(sc.nodeRef, k)
	pushed := growI32(sc.pushed, k)
	gmark := growI32(sc.gmark, k)
	slotOf := growI32(sc.slotOf, k)
	counts := growI32(sc.counts, k+1)
	fill := growI32(sc.fill, k)
	arena := growI32(sc.arena, 2*k+2)
	sc.parent, sc.nodeRef, sc.pushed, sc.gmark = parent, nodeRef, pushed, gmark
	sc.slotOf, sc.counts, sc.fill, sc.arena = slotOf, counts, fill, arena
	clear(pushed)
	clear(gmark)
	apos := 0
	comps := k
	for i := 0; i < k; i++ {
		parent[i] = int32(i)
		nodeRef[i] = superNode[i]
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	type stitchNode struct {
		level    int32
		children []int32 // old node ids, or nodes+j for stitch node j
	}
	var stitch []stitchNode
	for l := int32(1); l <= sweepMax; l++ {
		oldRoots = oldRoots[:0]
		for _, x := range levNodes[levOff[l]:levOff[l+1]] {
			kids := old.Children(x)
			acc := find(rep(kids[0]))
			accPushed := false
			for _, c := range kids[1:] {
				rc := find(rep(c))
				if rc == acc {
					continue
				}
				if superLevel[rc] >= l || superLevel[acc] >= l {
					return nil, stats, fmt.Errorf("ch: additive repair separation violated: level-%d merge of components at levels %d and %d",
						l, superLevel[rc], superLevel[acc])
				}
				if !accPushed {
					accPushed = true
					if pushed[acc] != l {
						pushed[acc] = l
						oldRoots = append(oldRoots, acc)
					}
				}
				if pushed[rc] != l {
					pushed[rc] = l
					oldRoots = append(oldRoots, rc)
				}
				parent[rc] = acc
				comps--
			}
		}
		for _, p := range addFlat[addOff[l]:addOff[l+1]] {
			ru, rv := find(p.a), find(p.b)
			if ru == rv {
				continue
			}
			if superLevel[ru] >= l || superLevel[rv] >= l {
				return nil, stats, fmt.Errorf("ch: additive repair separation violated: level-%d merge of components at levels %d and %d",
					l, superLevel[ru], superLevel[rv])
			}
			if pushed[ru] != l {
				pushed[ru] = l
				oldRoots = append(oldRoots, ru)
			}
			if pushed[rv] != l {
				pushed[rv] = l
				oldRoots = append(oldRoots, rv)
			}
			parent[ru] = rv
			comps--
		}
		if len(oldRoots) == 0 {
			continue
		}
		frs = frs[:0]
		order = order[:0]
		ng := int32(0)
		for _, r := range oldRoots {
			fr := find(r)
			frs = append(frs, fr)
			if gmark[fr] != l {
				gmark[fr] = l
				slotOf[fr] = ng
				order = append(order, fr)
				ng++
			}
		}
		for i := int32(0); i <= ng; i++ {
			counts[i] = 0
		}
		for _, fr := range frs {
			counts[slotOf[fr]+1]++
		}
		for i := int32(0); i < ng; i++ {
			counts[i+1] += counts[i]
			fill[i] = counts[i]
		}
		members := arena[apos : apos+len(frs)]
		apos += len(frs)
		for i, fr := range frs {
			s := slotOf[fr]
			members[fill[s]] = nodeRef[oldRoots[i]]
			fill[s]++
		}
		for i := int32(0); i < ng; i++ {
			fr := order[i]
			id := int32(nodes + len(stitch))
			stitch = append(stitch, stitchNode{level: l, children: members[counts[i]:counts[i+1]]})
			nodeRef[fr] = id
			superLevel[fr] = l
		}
	}
	stats.NewNodes = len(stitch)

	var tops []int32
	if comps == 1 {
		tops = []int32{nodeRef[find(0)]}
	} else {
		for i := int32(0); i < int32(k); i++ {
			if find(i) == i {
				tops = append(tops, nodeRef[i])
			}
		}
	}
	virtual := false
	if len(tops) > 1 {
		stitch = append(stitch, stitchNode{level: sweepMax + 1, children: tops})
		virtual = true
	}

	// Phase 5: graft. Survivors bulk-copy in old-id order (leaves keep their
	// ids and are never dirty, so they take the memmove fast path), stitch
	// nodes append after them; both preserve child < parent.
	total := nodes - len(dirtyList) + len(stitch)
	newID := growI32(sc.newID, nodes+len(stitch))
	sc.newID = newID
	for x := 0; x < n; x++ {
		newID[x] = int32(x)
	}
	next := int32(n)
	for x := n; x < nodes; x++ {
		if dirty[x] {
			newID[x] = -1
			continue
		}
		newID[x] = next
		next++
	}
	for j := range stitch {
		newID[nodes+j] = next
		next++
	}
	stats.ReusedNodes = nodes - len(dirtyList) - n

	h2 := &Hierarchy{g: g2}
	backing := make([]int32, 3*total)
	h2.level = backing[:total:total]
	h2.parent = backing[total : 2*total : 2*total]
	h2.vertexCount = backing[2*total:]
	copy(h2.level[:n], old.level[:n])
	copy(h2.vertexCount[:n], old.vertexCount[:n])
	// newID of a dirty parent is -1, which doubles as "orphan until the stitch
	// loop adopts it" — kept-subtree roots are re-parented there.
	for u := 0; u < n; u++ {
		if p := old.parent[u]; p >= 0 {
			h2.parent[u] = newID[p]
		} else {
			h2.parent[u] = -1
		}
	}
	for x := n; x < nodes; x++ {
		id := newID[x]
		if id < 0 {
			continue
		}
		h2.level[id] = old.level[x]
		h2.vertexCount[id] = old.vertexCount[x]
		p := int32(-1)
		if op := old.parent[x]; op >= 0 {
			p = newID[op]
		}
		h2.parent[id] = p
	}
	for j, sn := range stitch {
		id := newID[nodes+j]
		h2.level[id] = sn.level
		h2.parent[id] = -1
		var vc int32
		for _, c := range sn.children {
			cid := newID[c]
			h2.parent[cid] = id
			vc += h2.vertexCount[cid]
		}
		h2.vertexCount[id] = vc
	}

	internal := total - n
	h2.childStart = make([]int32, internal+1)
	idx := 0
	for x := n; x < nodes; x++ {
		if newID[x] < 0 {
			continue
		}
		h2.childStart[idx+1] = h2.childStart[idx] + int32(len(old.Children(int32(x))))
		idx++
	}
	for _, sn := range stitch {
		h2.childStart[idx+1] = h2.childStart[idx] + int32(len(sn.children))
		idx++
	}
	h2.children = make([]int32, h2.childStart[internal])
	at := 0
	for x := n; x < nodes; x++ {
		if newID[x] < 0 {
			continue
		}
		for _, c := range old.Children(int32(x)) {
			h2.children[at] = newID[c]
			at++
		}
	}
	for _, sn := range stitch {
		for _, c := range sn.children {
			h2.children[at] = newID[c]
			at++
		}
	}

	if virtual {
		h2.root = newID[nodes+len(stitch)-1]
	} else {
		h2.root = newID[tops[0]]
	}
	h2.virtualRoot = virtual
	h2.maxLevel = h2.level[h2.root]
	return h2, stats, nil
}
