package ch

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// checkRepairAdditive overlays an additive delta (inserts plus non-increasing
// re-weights), runs the additive repair, and asserts the result is a fully
// valid hierarchy isomorphic to a fresh build of the mutated graph.
func checkRepairAdditive(t *testing.T, g *graph.Graph, set, ins []graph.Edge) (*Hierarchy, RepairStats) {
	t.Helper()
	h := BuildKruskal(g)
	g2, _, err := g.Overlay(set, ins, nil)
	if err != nil {
		t.Fatalf("overlay: %v", err)
	}
	added := make([]graph.Edge, 0, len(set)+len(ins))
	added = append(added, ins...)
	added = append(added, set...)
	h2, stats, err := RepairAdditive(h, g2, added)
	if err != nil {
		t.Fatalf("additive repair: %v", err)
	}
	if err := h2.ValidateStructure(); err != nil {
		t.Fatalf("repaired structure invalid: %v", err)
	}
	if err := h2.Validate(); err != nil {
		t.Fatalf("repaired hierarchy invalid: %v", err)
	}
	fresh := BuildKruskal(g2)
	sa, sb := signature(h2), signature(fresh)
	for v := range sa {
		if len(sa[v]) != len(sb[v]) {
			t.Fatalf("vertex %d root path length %d vs fresh %d", v, len(sa[v]), len(sb[v]))
		}
		for i := range sa[v] {
			if sa[v][i] != sb[v][i] {
				t.Fatalf("vertex %d signature differs from fresh build at step %d", v, i)
			}
		}
	}
	return h2, stats
}

// minCopyWeight is the lowest stored weight among the parallel copies of
// (u,v) — the ceiling an additive re-weight must stay at or under.
func minCopyWeight(g *graph.Graph, u, v int32) uint32 {
	ts, ws := g.Neighbors(u)
	best := uint32(0)
	for i, t := range ts {
		if t == v && (best == 0 || ws[i] < best) {
			best = ws[i]
		}
	}
	return best
}

func TestRepairAdditiveInsertAndDecrease(t *testing.T) {
	g := gen.Random(300, 1200, 1<<10, gen.UWD, 21)
	checkRepairAdditive(t, g, nil, []graph.Edge{{U: 5, V: 250, W: 3}})
	e := g.Edges()[17]
	w := minCopyWeight(g, e.U, e.V)
	checkRepairAdditive(t, g, []graph.Edge{{U: e.U, V: e.V, W: w/2 + 1}}, nil)
	checkRepairAdditive(t, g, []graph.Edge{{U: e.U, V: e.V, W: 1}}, nil)
	// Mixed additive batch, including a level-crossing decrease.
	e2 := g.Edges()[40]
	checkRepairAdditive(t, g,
		[]graph.Edge{{U: e2.U, V: e2.V, W: 1}},
		[]graph.Edge{{U: 1, V: 299, W: 7}, {U: 0, V: 150, W: 1 << 20}})
}

func TestRepairAdditiveBridgesComponents(t *testing.T) {
	// Two separate clusters under a virtual root; an inserted bridge must
	// dissolve it — including a bridge heavier than every existing edge,
	// which exercises the virtual-root clamp in the dirty-marking level skip.
	b := graph.NewBuilder(20)
	for c := 0; c < 2; c++ {
		base := int32(c * 10)
		for i := int32(0); i < 10; i++ {
			b.MustAddEdge(base+i, base+(i+1)%10, uint32(i%4+1))
		}
	}
	g := b.Build()
	h2, _ := checkRepairAdditive(t, g, nil, []graph.Edge{{U: 4, V: 15, W: 2}})
	if h2.virtualRoot {
		t.Fatal("bridge insert left the virtual root standing")
	}
	h3, _ := checkRepairAdditive(t, g, nil, []graph.Edge{{U: 4, V: 15, W: 1 << 20}})
	if h3.virtualRoot {
		t.Fatal("heavy bridge insert left the virtual root standing")
	}
	// A heavy edge WITHIN one component merges nothing; the virtual root
	// must survive with both components intact.
	h4, stats := checkRepairAdditive(t, g, nil, []graph.Edge{{U: 0, V: 5, W: 1 << 20}})
	if !h4.virtualRoot {
		t.Fatal("intra-component insert dissolved the virtual root")
	}
	if stats.NewNodes != 0 {
		t.Fatalf("intra-component heavy insert created %d nodes, want 0", stats.NewNodes)
	}
}

func TestRepairAdditiveEdgelessGraph(t *testing.T) {
	g := graph.NewBuilder(5).Build()
	checkRepairAdditive(t, g, nil, []graph.Edge{{U: 0, V: 1, W: 3}})
	checkRepairAdditive(t, g, nil, []graph.Edge{{U: 0, V: 1, W: 3}, {U: 2, V: 3, W: 9}})
}

func TestRepairAdditiveNoOpSharesArrays(t *testing.T) {
	// A connected graph gaining an edge heavier than its connectivity level:
	// nothing can restructure, so the repair must return the old arrays
	// verbatim (the zero-allocation shortcut).
	b := graph.NewBuilder(8)
	for i := int32(0); i < 7; i++ {
		b.MustAddEdge(i, i+1, 1)
	}
	g := b.Build()
	h := BuildKruskal(g)
	g2, _, err := g.Overlay(nil, []graph.Edge{{U: 0, V: 5, W: 64}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h2, stats, err := RepairAdditive(h, g2, []graph.Edge{{U: 0, V: 5, W: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.DirtyNodes != 0 || stats.NewNodes != 0 {
		t.Fatalf("no-op delta dirtied %d nodes, created %d", stats.DirtyNodes, stats.NewNodes)
	}
	if &h2.level[0] != &h.level[0] || &h2.parent[0] != &h.parent[0] {
		t.Fatal("no-op repair copied the hierarchy arrays instead of sharing them")
	}
	if err := h2.Validate(); err != nil {
		t.Fatalf("shared-array hierarchy invalid against mutated graph: %v", err)
	}
}

func TestRepairAdditiveRejectsBadInput(t *testing.T) {
	g := gen.Random(50, 200, 1<<8, gen.UWD, 23)
	h := BuildKruskal(g)
	if _, _, err := RepairAdditive(nil, g, []graph.Edge{{U: 0, V: 1, W: 1}}); err == nil {
		t.Fatal("nil hierarchy accepted")
	}
	if _, _, err := RepairAdditive(h, g, nil); err == nil {
		t.Fatal("empty added list accepted")
	}
	if _, _, err := RepairAdditive(h, g, []graph.Edge{{U: 0, V: 99, W: 1}}); err == nil {
		t.Fatal("out-of-range added edge accepted")
	}
	small, _ := g.InducedSubgraph([]int32{0, 1, 2})
	if _, _, err := RepairAdditive(h, small, []graph.Edge{{U: 0, V: 1, W: 1}}); err == nil {
		t.Fatal("vertex-set change accepted")
	}
}

func TestRepairAdditiveRandomizedAcrossFamilies(t *testing.T) {
	families := []*graph.Graph{
		gen.Random(300, 1200, 1<<10, gen.UWD, 31),
		gen.Random(300, 1200, 4, gen.UWD, 32), // tiny weight range: few levels
		gen.RMATGraph(256, 1024, 1<<8, gen.UWD, 33),
		gen.GridGraph(15, 20, 16, gen.PWD, 34),
		gen.Path(64, 35),
		gen.Star(64, 36),
	}
	for fi, g := range families {
		rnd := rand.New(rand.NewSource(int64(200 + fi)))
		cur := g
		for round := 0; round < 4; round++ {
			edges := cur.Edges()
			var set, ins []graph.Edge
			used := map[[2]int32]bool{}
			pair := func(e graph.Edge) [2]int32 {
				if e.U > e.V {
					e.U, e.V = e.V, e.U
				}
				return [2]int32{e.U, e.V}
			}
			for i := 0; i < 1+rnd.Intn(6); i++ {
				n := int32(cur.NumVertices())
				if len(edges) > 0 && rnd.Intn(2) == 0 {
					e := edges[rnd.Intn(len(edges))]
					if used[pair(e)] {
						continue
					}
					used[pair(e)] = true
					// A decrease must undercut every parallel copy.
					w := minCopyWeight(cur, e.U, e.V)
					set = append(set, graph.Edge{U: e.U, V: e.V, W: uint32(1 + rnd.Intn(int(w)))})
				} else {
					cand := graph.Edge{U: rnd.Int31n(n), V: rnd.Int31n(n), W: uint32(1 + rnd.Intn(1<<12))}
					if !used[pair(cand)] {
						used[pair(cand)] = true
						ins = append(ins, cand)
					}
				}
			}
			if len(set)+len(ins) == 0 {
				continue
			}
			checkRepairAdditive(t, cur, set, ins)
			next, _, err := cur.Overlay(set, ins, nil)
			if err != nil {
				t.Fatal(err)
			}
			cur = next // chain deltas so later rounds repair mutated graphs
		}
	}
}
