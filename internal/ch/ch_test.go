package ch

import (
	"testing"
	"testing/quick"

	"repro/internal/cc"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mta"
	"repro/internal/par"
)

func builds() map[string]func(g *graph.Graph) *Hierarchy {
	exec := par.NewExec(4)
	sim := par.NewSim(mta.MTA2(8))
	return map[string]func(g *graph.Graph) *Hierarchy{
		"naive-bully-exec": func(g *graph.Graph) *Hierarchy { return BuildNaive(exec, g, cc.Bully) },
		"naive-sv-exec":    func(g *graph.Graph) *Hierarchy { return BuildNaive(exec, g, cc.ShiloachVishkin) },
		"naive-bully-sim":  func(g *graph.Graph) *Hierarchy { return BuildNaive(sim, g, cc.Bully) },
		"kruskal":          BuildKruskal,
		"mst":              func(g *graph.Graph) *Hierarchy { return BuildMST(exec, g) },
	}
}

// signature canonicalises a hierarchy for equality comparison: for every
// vertex, the sequence of (level, vertexCount) pairs on its leaf-to-root
// path. Two hierarchies over the same graph are isomorphic iff all
// signatures agree (node ids may differ between constructions).
func signature(h *Hierarchy) [][]int64 {
	n := h.g.NumVertices()
	sig := make([][]int64, n)
	for v := 0; v < n; v++ {
		x := int32(v)
		for x >= 0 {
			sig[v] = append(sig[v], int64(h.Level(x))<<32|int64(h.VertexCount(x)))
			x = h.Parent(x)
		}
	}
	return sig
}

func sameSignature(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func TestPaperExampleShape(t *testing.T) {
	// A small graph engineered to produce a two-tier hierarchy: two clusters
	// of light edges joined by one heavy edge (like the paper's Figure 1).
	b := graph.NewBuilder(6)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 2)
	b.MustAddEdge(3, 4, 1)
	b.MustAddEdge(4, 5, 3)
	b.MustAddEdge(2, 3, 12) // heavy bridge: level 4 (12 < 16 = 2^4)
	g := b.Build()
	h := BuildKruskal(g)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.MaxLevel() != 4 {
		t.Fatalf("root level = %d, want 4", h.MaxLevel())
	}
	root := h.Root()
	if len(h.Children(root)) != 2 {
		t.Fatalf("root has %d children, want the two clusters", len(h.Children(root)))
	}
	if h.VertexCount(root) != 6 {
		t.Fatalf("root vertexCount = %d", h.VertexCount(root))
	}
}

func TestLevelOf(t *testing.T) {
	cases := map[uint32]int32{1: 1, 2: 2, 3: 2, 4: 3, 7: 3, 8: 4, 1 << 20: 21}
	for w, want := range cases {
		if got := levelOf(w); got != want {
			t.Errorf("levelOf(%d) = %d, want %d", w, got, want)
		}
	}
}

func TestEmptyAndTrivialGraphs(t *testing.T) {
	for name, build := range builds() {
		h := build(graph.NewBuilder(0).Build())
		if err := h.Validate(); err != nil {
			t.Errorf("%s empty: %v", name, err)
		}
		h1 := build(graph.NewBuilder(1).Build())
		if err := h1.Validate(); err != nil {
			t.Errorf("%s singleton: %v", name, err)
		}
		if h1.Root() != 0 || h1.NumNodes() != 1 {
			t.Errorf("%s singleton: root=%d nodes=%d", name, h1.Root(), h1.NumNodes())
		}
	}
}

func TestDisconnectedVirtualRoot(t *testing.T) {
	b := graph.NewBuilder(5)
	b.MustAddEdge(0, 1, 3)
	b.MustAddEdge(2, 3, 5) // vertex 4 isolated
	g := b.Build()
	for name, build := range builds() {
		h := build(g)
		if err := h.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if !h.virtualRoot {
			t.Errorf("%s: expected virtual root", name)
		}
		if got := len(h.Children(h.Root())); got != 3 {
			t.Errorf("%s: virtual root has %d children, want 3", name, got)
		}
	}
}

func TestUniformWeightsSingleMerge(t *testing.T) {
	// All weights 1: everything merges at level 1 into one flat root.
	g := gen.Cycle(50, 1)
	for name, build := range builds() {
		h := build(g)
		if err := h.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if h.NumInternal() != 1 || h.MaxLevel() != 1 {
			t.Errorf("%s: internal=%d maxLevel=%d, want flat level-1 root", name, h.NumInternal(), h.MaxLevel())
		}
		if len(h.Children(h.Root())) != 50 {
			t.Errorf("%s: root children = %d", name, len(h.Children(h.Root())))
		}
	}
}

func TestPowerOfTwoPathChain(t *testing.T) {
	// Path with weights 1,2,4,8: each level merges exactly one more vertex
	// group; hierarchy must be a left-leaning chain of 4 internal nodes.
	b := graph.NewBuilder(5)
	for i, w := range []uint32{1, 2, 4, 8} {
		b.MustAddEdge(int32(i), int32(i+1), w)
	}
	g := b.Build()
	h := BuildKruskal(g)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if h.NumInternal() != 4 {
		t.Fatalf("internal nodes = %d, want 4", h.NumInternal())
	}
	if h.MaxLevel() != 4 {
		t.Fatalf("max level = %d, want 4", h.MaxLevel())
	}
	st := h.ComputeStats()
	if st.Height != 5 {
		t.Fatalf("height = %d, want 5", st.Height)
	}
}

func TestAllConstructionsAgree(t *testing.T) {
	gs := []*graph.Graph{
		gen.Random(300, 1200, 1<<10, gen.UWD, 1),
		gen.Random(300, 1200, 1<<10, gen.PWD, 2),
		gen.Random(300, 1200, 4, gen.UWD, 3),
		gen.RMATGraph(256, 1024, 1<<8, gen.UWD, 4),
		gen.GridGraph(15, 20, 16, gen.PWD, 5),
		gen.Path(64, 9),
		gen.Star(64, 5),
	}
	for gi, g := range gs {
		var ref [][]int64
		var refName string
		for name, build := range builds() {
			h := build(g)
			if err := h.Validate(); err != nil {
				t.Errorf("graph %d %s: %v", gi, name, err)
				continue
			}
			sig := signature(h)
			if ref == nil {
				ref, refName = sig, name
				continue
			}
			if !sameSignature(ref, sig) {
				t.Errorf("graph %d: %s and %s hierarchies differ", gi, refName, name)
			}
		}
	}
}

func TestStatsBasics(t *testing.T) {
	g := gen.Random(500, 2000, 1<<10, gen.UWD, 7)
	h := BuildKruskal(g)
	st := h.ComputeStats()
	if st.Components != h.NumNodes() || st.Internal != h.NumInternal() {
		t.Fatalf("stats counts wrong: %+v", st)
	}
	if st.AvgChildren < 2 {
		t.Fatalf("avg children %f < 2 in a compressed hierarchy", st.AvgChildren)
	}
	if st.MaxChildren < int(st.AvgChildren) {
		t.Fatalf("max children %d below average %f", st.MaxChildren, st.AvgChildren)
	}
	if st.CHBytes <= 0 || st.Height < 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSmallCHasFewerComponents(t *testing.T) {
	// The paper's Table 2 observation: small max weights (C=2^2) give
	// fewer components and more children per component than C=2^n.
	n := 1 << 10
	big := BuildKruskal(gen.Random(n, 4*n, uint32(n), gen.UWD, 11))
	small := BuildKruskal(gen.Random(n, 4*n, 4, gen.UWD, 11))
	if small.NumNodes() >= big.NumNodes() {
		t.Errorf("small-C components %d not below big-C %d", small.NumNodes(), big.NumNodes())
	}
	if small.ComputeStats().AvgChildren <= big.ComputeStats().AvgChildren {
		t.Errorf("small-C avg children %.1f not above big-C %.1f",
			small.ComputeStats().AvgChildren, big.ComputeStats().AvgChildren)
	}
}

func TestLCA(t *testing.T) {
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(2, 3, 1)
	b.MustAddEdge(1, 2, 8)
	g := b.Build()
	h := BuildKruskal(g)
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if l := h.LCA(0, 1); h.Level(l) != 1 {
		t.Errorf("LCA(0,1) at level %d, want 1", h.Level(l))
	}
	if l := h.LCA(0, 3); l != h.Root() {
		t.Errorf("LCA(0,3) = %d, want root %d", l, h.Root())
	}
	if l := h.LCA(2, 2); l != 2 {
		t.Errorf("LCA(2,2) = %d", l)
	}
}

func TestShift(t *testing.T) {
	b := graph.NewBuilder(2)
	b.MustAddEdge(0, 1, 8) // level 4 node
	h := BuildKruskal(b.Build())
	if got := h.Shift(h.Root()); got != 3 {
		t.Fatalf("Shift(root) = %d, want 3", got)
	}
	if got := h.Shift(0); got != 0 {
		t.Fatalf("Shift(leaf) = %d, want 0", got)
	}
}

func TestPartitionAtLevelMatchesCC(t *testing.T) {
	g := gen.Random(200, 800, 1<<8, gen.PWD, 13)
	h := BuildKruskal(g)
	for i := int32(1); i <= h.MaxLevel(); i++ {
		part := h.PartitionAtLevel(i)
		want, wantCount := cc.SerialBFS(g, uint32(1)<<uint(i))
		if !samePartition(part, want, wantCount) {
			t.Fatalf("partition at level %d differs from CC", i)
		}
	}
}

func TestSimCostRecorded(t *testing.T) {
	g := gen.Random(1000, 4000, 1<<10, gen.UWD, 17)
	rt := par.NewSim(mta.MTA2(40))
	BuildNaive(rt, g, cc.Bully)
	if rt.SimCost().Work < int64(g.NumEdges()) {
		t.Fatalf("simulated work %d too low", rt.SimCost().Work)
	}
}

// Property: for random graphs all constructions validate and agree.
func TestQuickConstructionsAgree(t *testing.T) {
	exec := par.NewExec(4)
	f := func(seed uint32, smallC bool) bool {
		n := int(seed%80) + 2
		c := uint32(1 << 10)
		if smallC {
			c = 4
		}
		g := gen.Random(n, 4*n, c, gen.UWD, uint64(seed))
		hk := BuildKruskal(g)
		if hk.Validate() != nil {
			return false
		}
		hn := BuildNaive(exec, g, cc.Bully)
		if hn.Validate() != nil {
			return false
		}
		hm := BuildMST(exec, g)
		if hm.Validate() != nil {
			return false
		}
		sk := signature(hk)
		return sameSignature(sk, signature(hn)) && sameSignature(sk, signature(hm))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkBuildNaive(b *testing.B) {
	g := gen.Random(1<<12, 1<<14, 1<<12, gen.UWD, 42)
	rt := par.NewExec(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildNaive(rt, g, cc.Bully)
	}
}

func BenchmarkBuildKruskal(b *testing.B) {
	g := gen.Random(1<<12, 1<<14, 1<<12, gen.UWD, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildKruskal(g)
	}
}

func BenchmarkBuildMST(b *testing.B) {
	g := gen.Random(1<<12, 1<<14, 1<<12, gen.UWD, 42)
	rt := par.NewExec(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildMST(rt, g)
	}
}
