package ch

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"

	"repro/internal/graph"
)

// The Component Hierarchy is the expensive, shareable preprocessing artifact
// of the whole system (the paper's Table 1 shows construction dominating a
// single query). WriteTo/ReadFrom persist it in a compact binary format so a
// service can build it once and load it for later query batches.
//
// Format (all little-endian):
//
//	magic   [8]byte  "THORUPCH"
//	version uint32   (currently 2)
//	n       uint32   number of leaves
//	nodes   uint32   total nodes
//	root    int32
//	maxLvl  int32
//	virtual uint8
//	fpM     uint64   graph fingerprint: undirected edge count
//	fpCRC   uint64   graph fingerprint: CRC-64/ECMA over the CSR arrays
//	level       [nodes]int32
//	parent      [nodes]int32
//	vertexCount [nodes]int32
//	childStart  [nodes-n+1]int32
//	children    [...]int32
//	crc     uint64   CRC-64/ECMA of everything above
//
// ReadFrom validates the stored graph fingerprint (version 2: n, m, and a
// CRC over the CSR arrays — the cache is bound to the graph's content, never
// to a filename), the checksum, the O(nodes) structural invariants, and a
// deterministic sample of edge separation properties before returning, so a
// corrupted or mismatched file cannot produce silent wrong answers; run
// Validate for the full O(m log C) cross-check.

var chMagic = [8]byte{'T', 'H', 'O', 'R', 'U', 'P', 'C', 'H'}

const chVersion = 2

type crcWriter struct {
	w   io.Writer
	crc uint64
	tab *crc64.Table
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc64.Update(cw.crc, cw.tab, p)
	return cw.w.Write(p)
}

type crcReader struct {
	r   io.Reader
	crc uint64
	tab *crc64.Table
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc64.Update(cr.crc, cr.tab, p[:n])
	return n, err
}

// WriteTo serialises the hierarchy (not the graph) to w.
func (h *Hierarchy) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw, tab: crc64.MakeTable(crc64.ECMA)}

	var written int64
	put := func(v any) error {
		if err := binary.Write(cw, binary.LittleEndian, v); err != nil {
			return err
		}
		written += int64(binary.Size(v))
		return nil
	}
	virtual := uint8(0)
	if h.virtualRoot {
		virtual = 1
	}
	fp := h.g.Fingerprint()
	header := []any{
		chMagic, uint32(chVersion),
		uint32(h.g.NumVertices()), uint32(h.NumNodes()),
		h.root, h.maxLevel, virtual,
		uint64(fp.M), fp.CRC,
	}
	for _, v := range header {
		if err := put(v); err != nil {
			return written, err
		}
	}
	for _, arr := range [][]int32{h.level, h.parent, h.vertexCount, h.childStart, h.children} {
		if err := put(arr); err != nil {
			return written, err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, cw.crc); err != nil {
		return written, err
	}
	written += 8
	return written, bw.Flush()
}

// ReadFrom deserialises a hierarchy for graph g, verifying the checksum and
// every structural invariant against g. It fails if the file was produced
// for a different graph.
func ReadFrom(r io.Reader, g *graph.Graph) (*Hierarchy, error) {
	cr := &crcReader{r: bufio.NewReader(r), tab: crc64.MakeTable(crc64.ECMA)}
	get := func(v any) error { return binary.Read(cr, binary.LittleEndian, v) }

	var magic [8]byte
	if err := get(&magic); err != nil {
		return nil, fmt.Errorf("ch: read header: %w", err)
	}
	if magic != chMagic {
		return nil, errors.New("ch: not a component hierarchy file")
	}
	var version, n, nodes uint32
	var root, maxLevel int32
	var virtual uint8
	var fpM, fpCRC uint64
	for _, v := range []any{&version, &n, &nodes, &root, &maxLevel, &virtual} {
		if err := get(v); err != nil {
			return nil, fmt.Errorf("ch: read header: %w", err)
		}
	}
	if version == 1 {
		return nil, errors.New("ch: cache format version 1 predates graph fingerprints; delete the file and rebuild")
	}
	if version != chVersion {
		return nil, fmt.Errorf("ch: unsupported version %d", version)
	}
	for _, v := range []any{&fpM, &fpCRC} {
		if err := get(v); err != nil {
			return nil, fmt.Errorf("ch: read header: %w", err)
		}
	}
	if int(n) != g.NumVertices() {
		return nil, fmt.Errorf("ch: file has %d leaves, graph has %d vertices", n, g.NumVertices())
	}
	// The stored fingerprint binds the hierarchy to the exact graph content it
	// was built from. A stale cache after regenerating the graph, or a cache
	// file pointed at the wrong graph, is refused here — before any of the
	// more expensive structural checks run.
	if fp := g.Fingerprint(); uint64(fp.M) != fpM || fp.CRC != fpCRC {
		return nil, fmt.Errorf("ch: cached hierarchy does not match graph: fingerprint mismatch (cache m=%d crc=%016x, graph %v)",
			fpM, fpCRC, fp)
	}
	if nodes < n || nodes > 2*n+1 {
		return nil, fmt.Errorf("ch: implausible node count %d for %d vertices", nodes, n)
	}

	h := &Hierarchy{
		g:           g,
		level:       make([]int32, nodes),
		parent:      make([]int32, nodes),
		vertexCount: make([]int32, nodes),
		childStart:  make([]int32, nodes-n+1),
		root:        root,
		maxLevel:    maxLevel,
		virtualRoot: virtual != 0,
	}
	for _, arr := range [][]int32{h.level, h.parent, h.vertexCount, h.childStart} {
		if err := get(arr); err != nil {
			return nil, fmt.Errorf("ch: read arrays: %w", err)
		}
	}
	last := int64(0)
	for _, cs := range h.childStart {
		if int64(cs) < last {
			return nil, errors.New("ch: childStart not monotone")
		}
		last = int64(cs)
	}
	total := int64(0)
	if len(h.childStart) > 0 {
		total = int64(h.childStart[len(h.childStart)-1])
	}
	if total < 0 || total > int64(nodes) {
		return nil, fmt.Errorf("ch: implausible child count %d", total)
	}
	h.children = make([]int32, total)
	if err := get(h.children); err != nil {
		return nil, fmt.Errorf("ch: read children: %w", err)
	}

	sum := cr.crc
	var stored uint64
	if err := binary.Read(cr.r, binary.LittleEndian, &stored); err != nil {
		return nil, fmt.Errorf("ch: read checksum: %w", err)
	}
	if stored != sum {
		return nil, errors.New("ch: checksum mismatch (corrupted file)")
	}
	if err := h.ValidateStructure(); err != nil {
		return nil, fmt.Errorf("ch: loaded hierarchy does not match graph: %w", err)
	}
	// Spot-check the separation property on a deterministic sample of edges
	// (the checksum already guards against corruption; this guards against
	// pairing the file with the wrong graph). Full validation: Validate().
	if err := h.sampleEdgeCheck(1024); err != nil {
		return nil, fmt.Errorf("ch: loaded hierarchy does not match graph: %w", err)
	}
	return h, nil
}

// sampleEdgeCheck verifies the separation property on up to limit edges,
// spread deterministically across the vertex range.
func (h *Hierarchy) sampleEdgeCheck(limit int) error {
	n := h.g.NumVertices()
	if n == 0 {
		return nil
	}
	step := n/limit + 1
	checked := 0
	for v := 0; v < n && checked < limit; v += step {
		ts, ws := h.g.Neighbors(int32(v))
		for k, u := range ts {
			if u == int32(v) {
				continue
			}
			if err := h.CheckEdge(int32(v), u, ws[k]); err != nil {
				return err
			}
			checked++
			if checked >= limit {
				break
			}
		}
	}
	return nil
}
