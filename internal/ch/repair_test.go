package ch

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// checkRepair applies the mutation via Overlay, repairs, and asserts the
// result is a fully valid hierarchy isomorphic to a fresh build of the
// mutated graph.
func checkRepair(t *testing.T, g *graph.Graph, set, ins, del []graph.Edge) RepairStats {
	t.Helper()
	h := BuildKruskal(g)
	g2, _, err := g.Overlay(set, ins, del)
	if err != nil {
		t.Fatalf("overlay: %v", err)
	}
	touched := touchedOf(set, ins, del)
	h2, stats, err := Repair(h, g2, touched)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if err := h2.ValidateStructure(); err != nil {
		t.Fatalf("repaired structure invalid: %v", err)
	}
	if err := h2.Validate(); err != nil {
		t.Fatalf("repaired hierarchy invalid: %v", err)
	}
	fresh := BuildKruskal(g2)
	sa, sb := signature(h2), signature(fresh)
	for v := range sa {
		if len(sa[v]) != len(sb[v]) {
			t.Fatalf("vertex %d root path length %d vs fresh %d", v, len(sa[v]), len(sb[v]))
		}
		for i := range sa[v] {
			if sa[v][i] != sb[v][i] {
				t.Fatalf("vertex %d signature differs from fresh build at step %d", v, i)
			}
		}
	}
	return stats
}

func touchedOf(lists ...[]graph.Edge) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, l := range lists {
		for _, e := range l {
			for _, v := range []int32{e.U, e.V} {
				if !seen[v] {
					seen[v] = true
					out = append(out, v)
				}
			}
		}
	}
	return out
}

func TestRepairWeightChange(t *testing.T) {
	g := gen.Random(300, 1200, 1<<10, gen.UWD, 1)
	e := g.Edges()[17]
	checkRepair(t, g, []graph.Edge{{U: e.U, V: e.V, W: e.W/2 + 1}}, nil, nil)
	// A change that moves the edge across levels.
	checkRepair(t, g, []graph.Edge{{U: e.U, V: e.V, W: 1}}, nil, nil)
	checkRepair(t, g, []graph.Edge{{U: e.U, V: e.V, W: 1 << 20}}, nil, nil)
}

func TestRepairInsertAndDelete(t *testing.T) {
	g := gen.Random(300, 1200, 1<<10, gen.UWD, 2)
	checkRepair(t, g, nil, []graph.Edge{{U: 5, V: 250, W: 3}}, nil)
	e := g.Edges()[3]
	checkRepair(t, g, nil, nil, []graph.Edge{{U: e.U, V: e.V}})
	// Mixed batch.
	e2 := g.Edges()[40]
	checkRepair(t, g,
		[]graph.Edge{{U: e2.U, V: e2.V, W: 777}},
		[]graph.Edge{{U: 1, V: 299, W: 1}},
		[]graph.Edge{{U: e.U, V: e.V}})
}

func TestRepairBridgeDeletionSplitsComponent(t *testing.T) {
	// Two dense clusters joined by one bridge: deleting it must surface a
	// virtual root over two tops.
	b := graph.NewBuilder(20)
	for c := 0; c < 2; c++ {
		base := int32(c * 10)
		for i := int32(0); i < 10; i++ {
			b.MustAddEdge(base+i, base+(i+1)%10, uint32(i%4+1))
		}
	}
	b.MustAddEdge(4, 15, 100)
	g := b.Build()
	stats := checkRepair(t, g, nil, nil, []graph.Edge{{U: 4, V: 15}})
	if stats.Touched != 2 {
		t.Fatalf("touched %d, want 2", stats.Touched)
	}
	// And the reverse: inserting a bridge merges two components.
	g2, _, err := g.Overlay(nil, nil, []graph.Edge{{U: 4, V: 15}})
	if err != nil {
		t.Fatal(err)
	}
	checkRepair(t, g2, nil, []graph.Edge{{U: 0, V: 19, W: 7}}, nil)
}

func TestRepairDisconnectedAndTinyGraphs(t *testing.T) {
	// Single vertex with a self-loop mutation target.
	b := graph.NewBuilder(1)
	b.MustAddEdge(0, 0, 5)
	g := b.Build()
	checkRepair(t, g, []graph.Edge{{U: 0, V: 0, W: 9}}, nil, nil)
	checkRepair(t, g, nil, nil, []graph.Edge{{U: 0, V: 0}})

	// Already-disconnected graph gaining an edge between components.
	b2 := graph.NewBuilder(6)
	b2.MustAddEdge(0, 1, 2)
	b2.MustAddEdge(2, 3, 4)
	g2 := b2.Build()
	checkRepair(t, g2, nil, []graph.Edge{{U: 1, V: 2, W: 8}}, nil)
	checkRepair(t, g2, nil, []graph.Edge{{U: 4, V: 5, W: 1}}, nil)
}

func TestRepairRejectsBadInput(t *testing.T) {
	g := gen.Random(50, 200, 1<<8, gen.UWD, 3)
	h := BuildKruskal(g)
	if _, _, err := Repair(h, g, nil); err == nil {
		t.Fatal("empty touched set accepted")
	}
	if _, _, err := Repair(h, g, []int32{99}); err == nil {
		t.Fatal("out-of-range touched vertex accepted")
	}
	small, _ := g.InducedSubgraph([]int32{0, 1, 2})
	if _, _, err := Repair(h, small, []int32{0}); err == nil {
		t.Fatal("vertex-set change accepted")
	}
}

func TestRepairRandomizedAcrossFamilies(t *testing.T) {
	families := []*graph.Graph{
		gen.Random(300, 1200, 1<<10, gen.UWD, 11),
		gen.Random(300, 1200, 4, gen.UWD, 12), // tiny weight range: few levels
		gen.RMATGraph(256, 1024, 1<<8, gen.UWD, 13),
		gen.GridGraph(15, 20, 16, gen.PWD, 14),
		gen.Path(64, 15),
		gen.Star(64, 16),
	}
	for fi, g := range families {
		rnd := rand.New(rand.NewSource(int64(100 + fi)))
		cur := g
		for round := 0; round < 4; round++ {
			edges := cur.Edges()
			if len(edges) == 0 {
				break
			}
			var set, ins, del []graph.Edge
			used := map[[2]int32]bool{}
			pair := func(e graph.Edge) [2]int32 {
				if e.U > e.V {
					e.U, e.V = e.V, e.U
				}
				return [2]int32{e.U, e.V}
			}
			for i := 0; i < 1+rnd.Intn(6); i++ {
				e := edges[rnd.Intn(len(edges))]
				if used[pair(e)] {
					continue
				}
				used[pair(e)] = true
				switch rnd.Intn(3) {
				case 0:
					set = append(set, graph.Edge{U: e.U, V: e.V, W: uint32(1 + rnd.Intn(1<<12))})
				case 1:
					del = append(del, graph.Edge{U: e.U, V: e.V})
				default:
					n := int32(cur.NumVertices())
					cand := graph.Edge{U: rnd.Int31n(n), V: rnd.Int31n(n), W: uint32(1 + rnd.Intn(1<<12))}
					if !used[pair(cand)] {
						used[pair(cand)] = true
						ins = append(ins, cand)
					}
				}
			}
			if len(set)+len(ins)+len(del) == 0 {
				continue
			}
			checkRepair(t, cur, set, ins, del)
			next, _, err := cur.Overlay(set, ins, del)
			if err != nil {
				t.Fatal(err)
			}
			cur = next // chain mutations so later rounds repair mutated graphs
		}
	}
}
