package ch

import "fmt"

// Stats summarises a hierarchy's structure: the paper's Table 2 reports the
// total number of CH components, the average number of children per
// component, and the memory footprint.
type Stats struct {
	// Components is the total number of CH nodes (leaves + internal).
	Components int
	// Internal is the number of internal (non-leaf) nodes.
	Internal int
	// AvgChildren is the mean number of children over internal nodes.
	AvgChildren float64
	// MaxChildren is the largest child count of any node — the irregularity
	// the paper's selective parallelization targets ("some nodes have
	// several thousand children and others only two", §3.3).
	MaxChildren int
	// Height is the number of levels on the longest root-leaf path.
	Height int
	// CHBytes is the memory footprint of the hierarchy arrays.
	CHBytes int64
}

// ComputeStats derives the Table 2 statistics of the hierarchy.
func (h *Hierarchy) ComputeStats() Stats {
	st := Stats{
		Components: h.NumNodes(),
		Internal:   h.NumInternal(),
	}
	if st.Internal > 0 {
		st.AvgChildren = float64(len(h.children)) / float64(st.Internal)
	}
	n := int32(h.g.NumVertices())
	for x := n; x < int32(h.NumNodes()); x++ {
		if c := len(h.Children(x)); c > st.MaxChildren {
			st.MaxChildren = c
		}
	}
	// Height by upward walks is O(n*h); compute by a downward pass instead.
	depth := make([]int32, h.NumNodes())
	maxDepth := int32(0)
	if h.root >= 0 {
		// Process nodes in decreasing id order: children always have smaller
		// ids than their parents (builders append parents after children).
		for x := int32(h.NumNodes()) - 1; x >= 0; x-- {
			if x == h.root {
				depth[x] = 1
			}
			for _, c := range h.Children(x) {
				depth[c] = depth[x] + 1
				if depth[c] > maxDepth {
					maxDepth = depth[c]
				}
			}
		}
		if maxDepth == 0 {
			maxDepth = 1 // single-node hierarchy
		}
	}
	st.Height = int(maxDepth)
	st.CHBytes = int64(len(h.level))*4 + // level
		int64(len(h.parent))*4 +
		int64(len(h.childStart))*4 +
		int64(len(h.children))*4 +
		int64(len(h.vertexCount))*4
	return st
}

func (s Stats) String() string {
	return fmt.Sprintf("components=%d avgChildren=%.1f maxChildren=%d height=%d chBytes=%d",
		s.Components, s.AvgChildren, s.MaxChildren, s.Height, s.CHBytes)
}
