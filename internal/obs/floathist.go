package obs

import (
	"math"
	"sync/atomic"
)

// FloatHistogram is a fixed-bucket histogram over dimensionless float64
// observations (ratios, relative errors) — the unit-free sibling of
// Histogram. Observations are atomic; the sum uses a CAS loop over the
// float's bit pattern.
type FloatHistogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; the last bucket is +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits
}

// NewFloatHistogram creates a histogram over the given strictly ascending
// bucket upper bounds.
func NewFloatHistogram(bounds []float64) *FloatHistogram {
	if len(bounds) == 0 {
		panic("obs: float histogram needs at least one bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &FloatHistogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value. NaN observations are dropped.
func (h *FloatHistogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// FloatHistogramSnapshot is a point-in-time copy, shaped for JSON. Buckets
// are cumulative: Buckets[i].Count is the number of observations <=
// Buckets[i].LE.
type FloatHistogramSnapshot struct {
	Count   int64              `json:"count"`
	Sum     float64            `json:"sum"`
	Mean    float64            `json:"mean"`
	Buckets []FloatBucketCount `json:"buckets"`
}

// FloatBucketCount is one cumulative bucket.
type FloatBucketCount struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Snapshot copies the histogram; the same mild skew caveats as
// Histogram.Snapshot apply.
func (h *FloatHistogram) Snapshot() FloatHistogramSnapshot {
	s := FloatHistogramSnapshot{
		Count:   h.count.Load(),
		Sum:     math.Float64frombits(h.sum.Load()),
		Buckets: make([]FloatBucketCount, len(h.bounds)),
	}
	if s.Count > 0 {
		s.Mean = s.Sum / float64(s.Count)
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		s.Buckets[i] = FloatBucketCount{LE: b, Count: cum}
	}
	return s
}
