package obs

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic value that can move both ways (e.g. in-flight requests).
type Gauge struct{ v atomic.Int64 }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBuckets spans 100µs to ~26s in powers of four — wide enough
// for both a cache-warm /healthz and a full-table query on a large graph.
var DefaultLatencyBuckets = []time.Duration{
	100 * time.Microsecond,
	400 * time.Microsecond,
	1600 * time.Microsecond,
	6400 * time.Microsecond,
	25600 * time.Microsecond,
	102400 * time.Microsecond,
	409600 * time.Microsecond,
	1638400 * time.Microsecond,
	6553600 * time.Microsecond,
	26214400 * time.Microsecond,
}

// Histogram is a fixed-bucket duration histogram. Bounds are set at
// construction; observations are atomic adds, snapshots are atomic loads.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1; the last bucket is +Inf
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

// NewHistogram creates a histogram over the given ascending bucket upper
// bounds. Nil bounds select DefaultLatencyBuckets.
func NewHistogram(bounds []time.Duration) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// HistogramSnapshot is a point-in-time copy of a histogram, shaped for JSON.
// Buckets are cumulative (Prometheus-style): Buckets[i].Count is the number
// of observations <= Buckets[i].LEMillis, and Count is the +Inf bucket.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	SumMs   float64       `json:"sum_ms"`
	MeanMs  float64       `json:"mean_ms"`
	Buckets []BucketCount `json:"buckets"`
}

// BucketCount is one cumulative histogram bucket.
type BucketCount struct {
	LEMillis float64 `json:"le_ms"`
	Count    int64   `json:"count"`
}

// Snapshot copies the histogram. Concurrent observations may land between
// field loads; each field is individually coherent and the skew is at most
// the handful of requests in flight during the call.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		SumMs:   float64(h.sum.Load()) / 1e6,
		Buckets: make([]BucketCount, len(h.bounds)),
	}
	if s.Count > 0 {
		s.MeanMs = s.SumMs / float64(s.Count)
	}
	var cum int64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		s.Buckets[i] = BucketCount{LEMillis: float64(b) / 1e6, Count: cum}
	}
	return s
}

// Quantile estimates the q-quantile (0 <= q <= 1) in milliseconds by linear
// interpolation within the containing bucket; observations beyond the last
// bound report that bound. Returns 0 for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	s := h.Snapshot()
	if s.Count == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var prevCum int64
	lo := 0.0
	for _, b := range s.Buckets {
		if float64(b.Count) >= rank {
			width := b.LEMillis - lo
			inBucket := float64(b.Count - prevCum)
			if inBucket == 0 {
				return b.LEMillis
			}
			return lo + width*(rank-float64(prevCum))/inBucket
		}
		prevCum = b.Count
		lo = b.LEMillis
	}
	return lo // beyond the last finite bound
}

// Endpoint holds the per-endpoint metrics the daemon's middleware records.
type Endpoint struct {
	Requests Counter    // completed requests
	InFlight Gauge      // currently executing requests
	Shed     Counter    // requests rejected by admission control (503)
	Timeout  Counter    // requests that hit their context deadline (504)
	Latency  *Histogram // completed-request latency
	status   [6]Counter // responses by status class; index = status/100
}

// RecordStatus counts one response with the given HTTP status code.
func (e *Endpoint) RecordStatus(code int) {
	i := code / 100
	if i < 0 || i >= len(e.status) {
		i = 0 // bucket malformed codes as class 0 rather than dropping them
	}
	e.status[i].Inc()
}

// EndpointSnapshot is the JSON form of one endpoint's metrics.
type EndpointSnapshot struct {
	Requests int64             `json:"requests"`
	InFlight int64             `json:"in_flight"`
	Shed     int64             `json:"shed,omitempty"`
	Timeout  int64             `json:"timeout,omitempty"`
	Status   map[string]int64  `json:"status"`
	Latency  HistogramSnapshot `json:"latency"`
}

// Snapshot copies the endpoint's metrics.
func (e *Endpoint) Snapshot() EndpointSnapshot {
	s := EndpointSnapshot{
		Requests: e.Requests.Value(),
		InFlight: e.InFlight.Value(),
		Shed:     e.Shed.Value(),
		Timeout:  e.Timeout.Value(),
		Status:   make(map[string]int64),
		Latency:  e.Latency.Snapshot(),
	}
	for i := range e.status {
		if v := e.status[i].Value(); v > 0 {
			s.Status[statusClass(i)] = v
		}
	}
	return s
}

func statusClass(i int) string {
	return string([]byte{byte('0' + i), 'x', 'x'})
}

// Group is a fixed, ordered set of named counters — the registry pattern for
// subsystem metrics (cache hits, dedup joins, solver runs, ...). The name set
// is established at construction so hot-path lookups are lock-free map reads,
// and Snapshot always emits every name (zeros included) so JSON consumers see
// a stable key set.
type Group struct {
	names    []string
	counters []Counter
	index    map[string]int
}

// NewGroup creates a group with one counter per name. Duplicate names panic:
// groups are wired at startup, so a duplicate is a programming error.
func NewGroup(names ...string) *Group {
	g := &Group{
		names:    append([]string(nil), names...),
		counters: make([]Counter, len(names)),
		index:    make(map[string]int, len(names)),
	}
	for i, n := range names {
		if _, dup := g.index[n]; dup {
			panic("obs: duplicate group counter " + n)
		}
		g.index[n] = i
	}
	return g
}

// C returns the named counter. Unknown names panic, like Registry.Endpoint.
func (g *Group) C(name string) *Counter {
	i, ok := g.index[name]
	if !ok {
		panic("obs: unknown group counter " + name)
	}
	return &g.counters[i]
}

// Snapshot copies every counter, keyed by name; zero counters are included.
func (g *Group) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(g.names))
	for i, n := range g.names {
		out[n] = g.counters[i].Value()
	}
	return out
}

// Registry is a fixed set of named endpoints. The set is established at
// construction so lookups on the request path are map reads with no locking.
type Registry struct {
	endpoints map[string]*Endpoint
	start     time.Time
}

// NewRegistry creates a registry with one Endpoint per name, all using the
// default latency buckets.
func NewRegistry(names ...string) *Registry {
	r := &Registry{endpoints: make(map[string]*Endpoint, len(names)), start: time.Now()}
	for _, n := range names {
		r.endpoints[n] = &Endpoint{Latency: NewHistogram(nil)}
	}
	return r
}

// Endpoint returns the named endpoint's metrics. Unknown names panic: the
// middleware wires names at startup, so a miss is a programming error.
func (r *Registry) Endpoint(name string) *Endpoint {
	e, ok := r.endpoints[name]
	if !ok {
		panic("obs: unknown endpoint " + name)
	}
	return e
}

// UptimeSeconds returns the seconds since the registry was created.
func (r *Registry) UptimeSeconds() float64 { return time.Since(r.start).Seconds() }

// Snapshot copies every endpoint's metrics, keyed by name.
func (r *Registry) Snapshot() map[string]EndpointSnapshot {
	out := make(map[string]EndpointSnapshot, len(r.endpoints))
	for name, e := range r.endpoints {
		out[name] = e.Snapshot()
	}
	return out
}
