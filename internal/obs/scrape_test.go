package obs

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
)

func TestScrapeMetricsAndSub(t *testing.T) {
	// A daemon-shaped /metrics document with extra keys the scraper must
	// ignore (gauges, histograms, future counters).
	doc := `{
		"endpoints": {
			"sssp":  {"requests": 10, "in_flight": 1, "shed": 2, "timeout": 1,
			          "status": {"2xx": 7, "5xx": 3}, "latency": {"p50_us": 120}},
			"batch": {"requests": 4}
		},
		"engine": {"solves": 9, "dedup_hits": 1, "cache_hits": 3, "cache_misses": 6,
		           "cache_evictions": 2, "batch_requests": 4, "batch_items": 64,
		           "cache_entries": 5},
		"catalog": {"acquires": 14, "acquire_not_ready": 1, "evictions": 0,
		            "swaps": 2, "graphs": 2},
		"uptime_seconds": 33
	}`
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(doc))
	}))
	defer ts.Close()

	m, err := ScrapeMetrics(context.Background(), ts.Client(), ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if m.Endpoints["sssp"].Requests != 10 || m.Endpoints["sssp"].Shed != 2 ||
		m.Endpoints["sssp"].Timeout != 1 || m.Endpoints["sssp"].Status["2xx"] != 7 {
		t.Fatalf("sssp counters: %+v", m.Endpoints["sssp"])
	}
	if m.Engine.Solves != 9 || m.Engine.CacheEvictions != 2 || m.Engine.BatchItems != 64 {
		t.Fatalf("engine counters: %+v", m.Engine)
	}
	if m.Catalog.Acquires != 14 || m.Catalog.Swaps != 2 {
		t.Fatalf("catalog counters: %+v", m.Catalog)
	}
	if m.TotalShed() != 2 || m.TotalTimeouts() != 1 {
		t.Fatalf("totals: shed=%d timeout=%d", m.TotalShed(), m.TotalTimeouts())
	}

	prev := &MetricsSnapshot{
		Endpoints: map[string]EndpointCounters{
			"sssp": {Requests: 6, Shed: 2, Status: map[string]int64{"2xx": 5, "5xx": 1}},
		},
		Engine:  EngineCounters{Solves: 4, CacheMisses: 2},
		Catalog: CatalogCounters{Acquires: 8},
	}
	d := m.Sub(prev)
	if d.Endpoints["sssp"].Requests != 4 || d.Endpoints["sssp"].Shed != 0 {
		t.Fatalf("sssp delta: %+v", d.Endpoints["sssp"])
	}
	if d.Endpoints["sssp"].Status["2xx"] != 2 || d.Endpoints["sssp"].Status["5xx"] != 2 {
		t.Fatalf("status delta: %+v", d.Endpoints["sssp"].Status)
	}
	// batch only exists in the later scrape: reported whole.
	if d.Endpoints["batch"].Requests != 4 {
		t.Fatalf("new-endpoint delta: %+v", d.Endpoints["batch"])
	}
	if d.Engine.Solves != 5 || d.Engine.CacheMisses != 4 {
		t.Fatalf("engine delta: %+v", d.Engine)
	}
	if d.Catalog.Acquires != 6 {
		t.Fatalf("catalog delta: %+v", d.Catalog)
	}
}

func TestScrapeMetricsErrors(t *testing.T) {
	mode := "down"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if mode == "garbage" {
			w.Write([]byte("not json"))
			return
		}
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	if _, err := ScrapeMetrics(context.Background(), ts.Client(), ts.URL); err == nil {
		t.Fatal("non-200 scrape did not error")
	}
	mode = "garbage"
	if _, err := ScrapeMetrics(context.Background(), ts.Client(), ts.URL); err == nil {
		t.Fatal("garbage body did not error")
	}
}
