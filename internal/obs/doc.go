// Package obs provides the observability primitives of the query daemon:
// atomic counters and gauges, fixed-bucket latency histograms, and a
// per-endpoint registry whose snapshots serialise directly to JSON for a
// /metrics endpoint. Everything is stdlib-only and lock-free on the hot
// path — recording a request is a handful of atomic adds, cheap enough to
// sit in front of sub-millisecond shortest-path queries.
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package obs
