package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// MetricsSnapshot is the counter subset of the daemon's GET /metrics
// document that a load generator attributes its observations against:
// per-endpoint admission outcomes, the engine's cache/dedup/solve counters,
// and the catalog's acquire/eviction counters. Gauges and histograms are
// deliberately excluded — only monotonic counters subtract meaningfully
// across two scrapes (see Sub).
type MetricsSnapshot struct {
	Endpoints map[string]EndpointCounters `json:"endpoints"`
	Engine    EngineCounters              `json:"engine"`
	Catalog   CatalogCounters             `json:"catalog"`
}

// EndpointCounters is one endpoint's monotonic counters.
type EndpointCounters struct {
	Requests int64            `json:"requests"`
	Shed     int64            `json:"shed"`
	Timeout  int64            `json:"timeout"`
	Status   map[string]int64 `json:"status"`
}

// EngineCounters is the default graph's engine counter set.
type EngineCounters struct {
	Solves         int64 `json:"solves"`
	DedupHits      int64 `json:"dedup_hits"`
	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
	BatchRequests  int64 `json:"batch_requests"`
	BatchItems     int64 `json:"batch_items"`
}

// CatalogCounters is the catalog-wide counter set, plus the per-graph
// lifecycle states a routing tier keys its per-graph health on.
type CatalogCounters struct {
	Acquires        int64 `json:"acquires"`
	AcquireNotReady int64 `json:"acquire_not_ready"`
	Evictions       int64 `json:"evictions"`
	Swaps           int64 `json:"swaps"`
	// GraphStates lists every graph the daemon knows and its lifecycle state
	// ("ready", "draining", ...). Not a counter — Sub carries the newer
	// scrape's list through unchanged, since a state has no meaningful delta.
	GraphStates []GraphState `json:"graph_states,omitempty"`
}

// GraphState is one graph's lifecycle state as exposed by /metrics.
type GraphState struct {
	Name  string `json:"name"`
	State string `json:"state"`
}

// GraphStateOf returns the scraped state of the named graph ("" when the
// daemon does not serve it).
func (m *MetricsSnapshot) GraphStateOf(name string) string {
	for _, g := range m.Catalog.GraphStates {
		if g.Name == name {
			return g.State
		}
	}
	return ""
}

// ScrapeMetrics fetches and decodes baseURL's GET /metrics into the counter
// subset. Unknown keys in the document are ignored: the scrape contract is
// "at least these counters", so the daemon may grow metrics freely.
func ScrapeMetrics(ctx context.Context, client *http.Client, baseURL string) (*MetricsSnapshot, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("obs: scrape %s/metrics: status %d", baseURL, resp.StatusCode)
	}
	var m MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return nil, fmt.Errorf("obs: scrape %s/metrics: %w", baseURL, err)
	}
	return &m, nil
}

// Sub returns the counter deltas m - prev: what happened between two
// scrapes. Endpoints present only in m are reported whole (a graph loaded
// mid-window starts its counters at zero anyway).
func (m *MetricsSnapshot) Sub(prev *MetricsSnapshot) *MetricsSnapshot {
	d := &MetricsSnapshot{
		Endpoints: make(map[string]EndpointCounters, len(m.Endpoints)),
		Engine: EngineCounters{
			Solves:         m.Engine.Solves - prev.Engine.Solves,
			DedupHits:      m.Engine.DedupHits - prev.Engine.DedupHits,
			CacheHits:      m.Engine.CacheHits - prev.Engine.CacheHits,
			CacheMisses:    m.Engine.CacheMisses - prev.Engine.CacheMisses,
			CacheEvictions: m.Engine.CacheEvictions - prev.Engine.CacheEvictions,
			BatchRequests:  m.Engine.BatchRequests - prev.Engine.BatchRequests,
			BatchItems:     m.Engine.BatchItems - prev.Engine.BatchItems,
		},
		Catalog: CatalogCounters{
			Acquires:        m.Catalog.Acquires - prev.Catalog.Acquires,
			AcquireNotReady: m.Catalog.AcquireNotReady - prev.Catalog.AcquireNotReady,
			Evictions:       m.Catalog.Evictions - prev.Catalog.Evictions,
			Swaps:           m.Catalog.Swaps - prev.Catalog.Swaps,
			GraphStates:     m.Catalog.GraphStates,
		},
	}
	for name, cur := range m.Endpoints {
		p := prev.Endpoints[name]
		ec := EndpointCounters{
			Requests: cur.Requests - p.Requests,
			Shed:     cur.Shed - p.Shed,
			Timeout:  cur.Timeout - p.Timeout,
		}
		if len(cur.Status) > 0 {
			ec.Status = make(map[string]int64, len(cur.Status))
			for class, n := range cur.Status {
				if delta := n - p.Status[class]; delta != 0 {
					ec.Status[class] = delta
				}
			}
		}
		d.Endpoints[name] = ec
	}
	return d
}

// TotalShed sums the shed counter across all endpoints.
func (m *MetricsSnapshot) TotalShed() int64 {
	var n int64
	for _, e := range m.Endpoints {
		n += e.Shed
	}
	return n
}

// TotalTimeouts sums the timeout counter across all endpoints.
func (m *MetricsSnapshot) TotalTimeouts() int64 {
	var n int64
	for _, e := range m.Endpoints {
		n += e.Timeout
	}
	return n
}
