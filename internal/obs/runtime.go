package obs

import (
	"runtime"
	"time"
)

// RuntimeStats is a point-in-time snapshot of the Go runtime's health
// signals, shaped for the /metrics "runtime" section: goroutine count, heap
// occupancy, and GC pause behaviour. Together with the per-stage latency
// histograms it answers "is the process itself the bottleneck" — a query
// daemon whose p99 is GC pauses needs different tuning than one whose p99 is
// solver time.
type RuntimeStats struct {
	// Goroutines is the live goroutine count.
	Goroutines int `json:"goroutines"`
	// CPUs is GOMAXPROCS — the parallelism the solvers can actually get.
	CPUs int `json:"cpus"`
	// HeapAllocBytes is live heap memory in use.
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	// HeapSysBytes is heap memory obtained from the OS.
	HeapSysBytes uint64 `json:"heap_sys_bytes"`
	// HeapObjects is the live object count.
	HeapObjects uint64 `json:"heap_objects"`
	// NextGCBytes is the heap size that triggers the next collection.
	NextGCBytes uint64 `json:"next_gc_bytes"`
	// NumGC is the completed collection count.
	NumGC uint32 `json:"num_gc"`
	// GCPauseTotalMs is cumulative stop-the-world pause time.
	GCPauseTotalMs float64 `json:"gc_pause_total_ms"`
	// LastGCPauseMs is the most recent stop-the-world pause.
	LastGCPauseMs float64 `json:"last_gc_pause_ms"`
	// LastGC is when the last collection finished (zero if none ran).
	LastGC time.Time `json:"last_gc,omitempty"`
	// GCCPUFraction is the fraction of available CPU consumed by the GC.
	GCCPUFraction float64 `json:"gc_cpu_fraction"`
}

// ReadRuntimeStats snapshots the runtime. It calls runtime.ReadMemStats,
// which briefly stops the world — fine for a /metrics scrape, not for a
// per-request path.
func ReadRuntimeStats() RuntimeStats {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s := RuntimeStats{
		Goroutines:     runtime.NumGoroutine(),
		CPUs:           runtime.GOMAXPROCS(0),
		HeapAllocBytes: m.HeapAlloc,
		HeapSysBytes:   m.HeapSys,
		HeapObjects:    m.HeapObjects,
		NextGCBytes:    m.NextGC,
		NumGC:          m.NumGC,
		GCPauseTotalMs: float64(m.PauseTotalNs) / 1e6,
		GCCPUFraction:  m.GCCPUFraction,
	}
	if m.NumGC > 0 {
		s.LastGCPauseMs = float64(m.PauseNs[(m.NumGC+255)%256]) / 1e6
		s.LastGC = time.Unix(0, int64(m.LastGC))
	}
	return s
}
