package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGaugeConcurrent(t *testing.T) {
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("counter %d, want 8000", c.Value())
	}
	if g.Value() != 0 {
		t.Fatalf("gauge %d, want 0", g.Value())
	}
	c.Add(5)
	if c.Value() != 8005 {
		t.Fatalf("counter %d after Add", c.Value())
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(time.Millisecond)       // bucket 0 (le is inclusive)
	h.Observe(2 * time.Millisecond)   // bucket 1
	h.Observe(time.Minute)            // overflow
	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("count %d", s.Count)
	}
	if s.Buckets[0].Count != 2 || s.Buckets[1].Count != 3 {
		t.Fatalf("cumulative buckets wrong: %+v", s.Buckets)
	}
	wantSum := 0.5 + 1 + 2 + 60000
	if s.SumMs != wantSum {
		t.Fatalf("sum %v, want %v", s.SumMs, wantSum)
	}
	if s.MeanMs != wantSum/4 {
		t.Fatalf("mean %v", s.MeanMs)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(nil)
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile should be 0")
	}
	for i := 0; i < 100; i++ {
		h.Observe(200 * time.Microsecond) // all in the (0.1ms, 0.4ms] bucket
	}
	p50 := h.Quantile(0.5)
	if p50 <= 0.1 || p50 > 0.4 {
		t.Fatalf("p50 %v outside containing bucket", p50)
	}
	h2 := NewHistogram([]time.Duration{time.Millisecond})
	h2.Observe(time.Second) // beyond the last bound
	if got := h2.Quantile(0.99); got != 1 {
		t.Fatalf("overflow quantile %v, want last bound 1ms", got)
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewHistogram([]time.Duration{time.Second, time.Millisecond})
}

func TestEndpointStatusClasses(t *testing.T) {
	e := &Endpoint{Latency: NewHistogram(nil)}
	e.RecordStatus(200)
	e.RecordStatus(204)
	e.RecordStatus(400)
	e.RecordStatus(503)
	s := e.Snapshot()
	if s.Status["2xx"] != 2 || s.Status["4xx"] != 1 || s.Status["5xx"] != 1 {
		t.Fatalf("status classes %v", s.Status)
	}
	if _, ok := s.Status["3xx"]; ok {
		t.Fatal("empty class should be omitted")
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry("sssp", "dist")
	ep := r.Endpoint("sssp")
	ep.Requests.Inc()
	ep.RecordStatus(200)
	ep.Latency.Observe(3 * time.Millisecond)
	ep.Shed.Inc()

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("want 2 endpoints, got %d", len(snap))
	}
	if snap["sssp"].Requests != 1 || snap["sssp"].Shed != 1 {
		t.Fatalf("sssp snapshot %+v", snap["sssp"])
	}
	if snap["dist"].Requests != 0 {
		t.Fatalf("dist snapshot %+v", snap["dist"])
	}
	b, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back map[string]EndpointSnapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back["sssp"].Latency.Count != 1 {
		t.Fatalf("latency did not round-trip: %+v", back["sssp"].Latency)
	}
	if r.UptimeSeconds() < 0 {
		t.Fatal("negative uptime")
	}
}

func TestRegistryUnknownEndpointPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown endpoint did not panic")
		}
	}()
	NewRegistry("a").Endpoint("b")
}

func TestGroupCountersAndSnapshot(t *testing.T) {
	g := NewGroup("hits", "misses", "evictions")
	g.C("hits").Inc()
	g.C("hits").Inc()
	g.C("misses").Add(5)
	snap := g.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot keys %v, want all 3 (zeros included)", snap)
	}
	if snap["hits"] != 2 || snap["misses"] != 5 || snap["evictions"] != 0 {
		t.Fatalf("snapshot %v", snap)
	}
	// The same name must return the same counter.
	if g.C("hits") != g.C("hits") {
		t.Fatal("C not stable")
	}
}

func TestGroupConcurrentIncrements(t *testing.T) {
	g := NewGroup("n")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.C("n").Inc()
			}
		}()
	}
	wg.Wait()
	if v := g.C("n").Value(); v != 8000 {
		t.Fatalf("count %d, want 8000", v)
	}
}

func TestGroupUnknownAndDuplicatePanic(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("unknown counter did not panic")
			}
		}()
		NewGroup("a").C("b")
	}()
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate name did not panic")
		}
	}()
	NewGroup("a", "a")
}
