package dijkstra

import (
	"repro/internal/graph"
)

// Scratch is reusable Dijkstra state — the distance vector and the lazy heap
// — for callers that run many queries and want to amortize the per-query
// allocations to zero (e.g. a pooled serving layer). A Scratch sizes itself
// to whatever graph it is handed, so one instance can serve differently
// sized graphs; it is not safe for concurrent use.
type Scratch struct {
	dist []int64
	heap lazyHeap
}

// NewScratch returns an empty Scratch; buffers are grown on first use.
func NewScratch() *Scratch { return &Scratch{} }

// SSSP computes the same distances as the package-level SSSP but reuses the
// scratch buffers. The returned slice aliases the scratch state and is valid
// until the next call.
func (sc *Scratch) SSSP(g *graph.Graph, src int32) []int64 {
	n := g.NumVertices()
	if cap(sc.dist) < n {
		sc.dist = make([]int64, n)
	}
	dist := sc.dist[:n]
	sc.dist = dist
	for i := range dist {
		dist[i] = graph.Inf
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0
	h := append(sc.heap[:0], entry{v: src, d: 0})
	for len(h) > 0 {
		top := h.pop()
		if top.d > dist[top.v] {
			continue // stale entry
		}
		ts, ws := g.Neighbors(top.v)
		for i, u := range ts {
			nd := top.d + int64(ws[i])
			if nd < dist[u] {
				dist[u] = nd
				h.push(entry{v: u, d: nd})
			}
		}
	}
	sc.heap = h // empty now, but keeps the grown backing array
	return dist
}

// Reset scrubs the scratch so no distances leak to the next user across a
// pool boundary. Not required between calls — SSSP reinitialises everything
// it reads.
func (sc *Scratch) Reset() {
	clear(sc.dist)
	sc.heap = sc.heap[:0]
}
