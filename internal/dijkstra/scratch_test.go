package dijkstra

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// A reused Scratch must produce byte-identical distances to the allocating
// SSSP, including after serving a different (larger or smaller) graph.
func TestScratchReuseMatchesFresh(t *testing.T) {
	big := gen.Random(500, 2000, 1<<10, gen.UWD, 3)
	small := gen.Random(60, 240, 1<<6, gen.PWD, 4)

	sc := NewScratch()
	// big -> small -> big exercises both the growth and reslice paths.
	for _, g := range []*graph.Graph{big, small, big} {
		for _, src := range []int32{0, int32(g.NumVertices() / 2)} {
			want := SSSP(g, src)
			got := sc.SSSP(g, src)
			if len(got) != len(want) {
				t.Fatalf("n=%d src=%d: %d distances, want %d", g.NumVertices(), src, len(got), len(want))
			}
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("n=%d src=%d: dist[%d] = %d, want %d", g.NumVertices(), src, v, got[v], want[v])
				}
			}
		}
	}

	// Reset leaves a scrubbed, still-working scratch.
	sc.Reset()
	want := SSSP(small, 5)
	got := sc.SSSP(small, 5)
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("after Reset: dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
}
