package dijkstra

import (
	"repro/internal/graph"
)

// SSSP computes single-source shortest path distances from src with a lazy
// binary heap. Unreachable vertices get graph.Inf.
func SSSP(g *graph.Graph, src int32) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0
	h := lazyHeap{{v: src, d: 0}}
	for len(h) > 0 {
		top := h.pop()
		if top.d > dist[top.v] {
			continue // stale entry
		}
		ts, ws := g.Neighbors(top.v)
		for i, u := range ts {
			nd := top.d + int64(ws[i])
			if nd < dist[u] {
				dist[u] = nd
				h.push(entry{v: u, d: nd})
			}
		}
	}
	return dist
}

// SSSPWithParents additionally returns the shortest-path tree: parent[v] is
// the predecessor of v on a shortest path from src (-1 for src and for
// unreachable vertices).
func SSSPWithParents(g *graph.Graph, src int32) ([]int64, []int32) {
	n := g.NumVertices()
	dist := make([]int64, n)
	parent := make([]int32, n)
	for i := range dist {
		dist[i] = graph.Inf
		parent[i] = -1
	}
	if n == 0 {
		return dist, parent
	}
	dist[src] = 0
	h := lazyHeap{{v: src, d: 0}}
	for len(h) > 0 {
		top := h.pop()
		if top.d > dist[top.v] {
			continue
		}
		ts, ws := g.Neighbors(top.v)
		for i, u := range ts {
			nd := top.d + int64(ws[i])
			if nd < dist[u] {
				dist[u] = nd
				parent[u] = top.v
				h.push(entry{v: u, d: nd})
			}
		}
	}
	return dist, parent
}

type entry struct {
	v int32
	d int64
}

// lazyHeap is a plain binary min-heap of (vertex, distance) entries ordered
// by distance. Inlined rather than using container/heap to avoid interface
// overhead on the hot path.
type lazyHeap []entry

func (h *lazyHeap) push(e entry) {
	*h = append(*h, e)
	i := len(*h) - 1
	s := *h
	for i > 0 {
		p := (i - 1) / 2
		if s[p].d <= s[i].d {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *lazyHeap) pop() entry {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s) && s[l].d < s[min].d {
			min = l
		}
		if r < len(s) && s[r].d < s[min].d {
			min = r
		}
		if min == i {
			break
		}
		s[i], s[min] = s[min], s[i]
		i = min
	}
	return top
}

// SSSPIndexed computes the same distances with an indexed 4-ary heap and true
// decrease-key (one heap entry per vertex).
func SSSPIndexed(g *graph.Graph, src int32) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	if n == 0 {
		return dist
	}
	h := newIndexedHeap(n)
	dist[src] = 0
	h.insertOrDecrease(src, 0)
	for h.size > 0 {
		v, d := h.popMin()
		ts, ws := g.Neighbors(v)
		for i, u := range ts {
			nd := d + int64(ws[i])
			if nd < dist[u] {
				dist[u] = nd
				h.insertOrDecrease(u, nd)
			}
		}
	}
	return dist
}

// indexedHeap is a 4-ary min-heap keyed by distance with a position index per
// vertex, supporting decrease-key.
type indexedHeap struct {
	verts []int32 // heap array of vertex ids
	keys  []int64 // parallel keys
	pos   []int32 // vertex -> heap index, -1 if absent
	size  int
}

func newIndexedHeap(n int) *indexedHeap {
	pos := make([]int32, n)
	for i := range pos {
		pos[i] = -1
	}
	return &indexedHeap{
		verts: make([]int32, 0, 64),
		keys:  make([]int64, 0, 64),
		pos:   pos,
	}
}

func (h *indexedHeap) insertOrDecrease(v int32, key int64) {
	if p := h.pos[v]; p >= 0 {
		if key < h.keys[p] {
			h.keys[p] = key
			h.siftUp(int(p))
		}
		return
	}
	h.verts = append(h.verts[:h.size], v)
	h.keys = append(h.keys[:h.size], key)
	h.pos[v] = int32(h.size)
	h.size++
	h.siftUp(h.size - 1)
}

func (h *indexedHeap) popMin() (int32, int64) {
	v, k := h.verts[0], h.keys[0]
	h.pos[v] = -1
	h.size--
	if h.size > 0 {
		h.verts[0] = h.verts[h.size]
		h.keys[0] = h.keys[h.size]
		h.pos[h.verts[0]] = 0
		h.siftDown(0)
	}
	return v, k
}

func (h *indexedHeap) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 4
		if h.keys[p] <= h.keys[i] {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *indexedHeap) siftDown(i int) {
	for {
		first := 4*i + 1
		if first >= h.size {
			return
		}
		min := i
		last := first + 4
		if last > h.size {
			last = h.size
		}
		for c := first; c < last; c++ {
			if h.keys[c] < h.keys[min] {
				min = c
			}
		}
		if min == i {
			return
		}
		h.swap(i, min)
		i = min
	}
}

func (h *indexedHeap) swap(i, j int) {
	h.verts[i], h.verts[j] = h.verts[j], h.verts[i]
	h.keys[i], h.keys[j] = h.keys[j], h.keys[i]
	h.pos[h.verts[i]] = int32(i)
	h.pos[h.verts[j]] = int32(j)
}
