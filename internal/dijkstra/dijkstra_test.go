package dijkstra

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

// bellmanFord is an independent O(nm) oracle for the oracle.
func bellmanFord(g *graph.Graph, src int32) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	dist[src] = 0
	for round := 0; round < n; round++ {
		changed := false
		for v := int32(0); v < int32(n); v++ {
			if dist[v] == graph.Inf {
				continue
			}
			ts, ws := g.Neighbors(v)
			for i, u := range ts {
				if nd := dist[v] + int64(ws[i]); nd < dist[u] {
					dist[u] = nd
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return dist
}

func sameDists(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPathDistances(t *testing.T) {
	g := gen.Path(6, 3)
	d := SSSP(g, 0)
	for v := 0; v < 6; v++ {
		if d[v] != int64(3*v) {
			t.Fatalf("d[%d] = %d, want %d", v, d[v], 3*v)
		}
	}
}

func TestMidSource(t *testing.T) {
	g := gen.Path(7, 2)
	d := SSSP(g, 3)
	want := []int64{6, 4, 2, 0, 2, 4, 6}
	if !sameDists(d, want) {
		t.Fatalf("d = %v", d)
	}
}

func TestUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1, 5)
	g := b.Build()
	d := SSSP(g, 0)
	if d[2] != graph.Inf || d[3] != graph.Inf {
		t.Fatalf("unreachable distances: %v", d)
	}
	if d[0] != 0 || d[1] != 5 {
		t.Fatalf("reachable distances: %v", d)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	if d := SSSP(g, 0); len(d) != 0 {
		t.Fatal("non-empty result for empty graph")
	}
}

func TestSingleVertex(t *testing.T) {
	g := graph.NewBuilder(1).Build()
	d := SSSP(g, 0)
	if d[0] != 0 {
		t.Fatalf("d[0] = %d", d[0])
	}
}

func TestSelfLoopIgnoredInDistances(t *testing.T) {
	b := graph.NewBuilder(2)
	b.MustAddEdge(0, 0, 1)
	b.MustAddEdge(0, 1, 7)
	g := b.Build()
	d := SSSP(g, 0)
	if d[0] != 0 || d[1] != 7 {
		t.Fatalf("d = %v", d)
	}
}

func TestParallelEdgesTakeLightest(t *testing.T) {
	b := graph.NewBuilder(2)
	b.MustAddEdge(0, 1, 9)
	b.MustAddEdge(0, 1, 4)
	g := b.Build()
	if d := SSSP(g, 0); d[1] != 4 {
		t.Fatalf("d[1] = %d", d[1])
	}
}

func TestShortcutBeatsDirectEdge(t *testing.T) {
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 2, 10)
	b.MustAddEdge(0, 1, 3)
	b.MustAddEdge(1, 2, 3)
	g := b.Build()
	if d := SSSP(g, 0); d[2] != 6 {
		t.Fatalf("d[2] = %d", d[2])
	}
}

func TestAgainstBellmanFordOnFamilies(t *testing.T) {
	gs := []*graph.Graph{
		gen.Random(200, 800, 1<<10, gen.UWD, 1),
		gen.Random(200, 800, 4, gen.UWD, 2),
		gen.RMATGraph(128, 512, 1<<8, gen.PWD, 3),
		gen.GridGraph(10, 12, 16, gen.UWD, 4),
		gen.Star(50, 5),
	}
	for gi, g := range gs {
		want := bellmanFord(g, 0)
		if got := SSSP(g, 0); !sameDists(got, want) {
			t.Errorf("graph %d: SSSP != Bellman-Ford", gi)
		}
		if got := SSSPIndexed(g, 0); !sameDists(got, want) {
			t.Errorf("graph %d: SSSPIndexed != Bellman-Ford", gi)
		}
	}
}

func TestParentsFormShortestPathTree(t *testing.T) {
	g := gen.Random(300, 1200, 1<<8, gen.UWD, 9)
	dist, parent := SSSPWithParents(g, 0)
	if parent[0] != -1 {
		t.Fatal("source has a parent")
	}
	for v := int32(1); v < int32(g.NumVertices()); v++ {
		if dist[v] == graph.Inf {
			if parent[v] != -1 {
				t.Fatalf("unreachable %d has parent", v)
			}
			continue
		}
		p := parent[v]
		if p < 0 {
			t.Fatalf("reachable %d has no parent", v)
		}
		// There must be an edge (p,v) with dist[p] + w == dist[v].
		ts, ws := g.Neighbors(p)
		ok := false
		for i, u := range ts {
			if u == v && dist[p]+int64(ws[i]) == dist[v] {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("parent edge (%d,%d) does not certify dist %d", p, v, dist[v])
		}
	}
}

// Property: triangle inequality over all edges — d[u] <= d[v] + w(v,u).
func TestQuickTriangleInequality(t *testing.T) {
	f := func(seed uint32) bool {
		n := int(seed%100) + 2
		g := gen.Random(n, 4*n, 1<<12, gen.UWD, uint64(seed))
		d := SSSP(g, int32(seed%uint32(n)))
		for v := int32(0); v < int32(n); v++ {
			ts, ws := g.Neighbors(v)
			for i, u := range ts {
				if d[v] != graph.Inf && d[u] > d[v]+int64(ws[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the two heaps agree on every instance and source.
func TestQuickHeapsAgree(t *testing.T) {
	f := func(seed uint32, pwd bool) bool {
		n := int(seed%150) + 1
		dist := gen.UWD
		if pwd {
			dist = gen.PWD
		}
		g := gen.Random(n, 4*n, 1<<10, dist, uint64(seed))
		src := int32(seed % uint32(n))
		return sameDists(SSSP(g, src), SSSPIndexed(g, src))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDijkstraLazy(b *testing.B) {
	g := gen.Random(1<<14, 1<<16, 1<<14, gen.UWD, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SSSP(g, 0)
	}
}

func BenchmarkDijkstraIndexed(b *testing.B) {
	g := gen.Random(1<<14, 1<<16, 1<<14, gen.UWD, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SSSPIndexed(g, 0)
	}
}
