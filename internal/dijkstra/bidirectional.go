package dijkstra

import (
	"repro/internal/graph"
)

// STDistance computes the shortest s-t distance with bidirectional Dijkstra:
// two searches grow from s and t and stop once the sum of their frontier
// minima reaches the best meeting distance found so far (the classical
// Nicholson/Pohl stopping rule). On road-like instances this roughly halves
// the searched ball — the point-to-point setting of the road-network work
// the paper's §2 and §6 discuss (transit nodes, highway hierarchies). It
// returns graph.Inf if t is unreachable from s.
func STDistance(g *graph.Graph, s, t int32) int64 {
	n := g.NumVertices()
	if s == t {
		return 0
	}
	if n == 0 {
		return graph.Inf
	}
	fwd := newSearch(n, s)
	bwd := newSearch(n, t)
	best := graph.Inf

	for {
		if topKey(fwd.heap)+topKey(bwd.heap) >= best {
			return best // also exits when both heaps are empty
		}
		side, other := fwd, bwd
		if topKey(bwd.heap) < topKey(fwd.heap) {
			side, other = bwd, fwd
		}
		top := side.heap.pop()
		if top.d > side.dist[top.v] {
			continue // stale entry
		}
		ts, ws := g.Neighbors(top.v)
		for i, u := range ts {
			nd := top.d + int64(ws[i])
			if nd < side.dist[u] {
				side.dist[u] = nd
				side.heap.push(entry{v: u, d: nd})
			}
			// Any discovery on the other side makes (s..top.v)+(u..t) a
			// candidate s-t path.
			if other.dist[u] < graph.Inf {
				if cand := nd + other.dist[u]; cand < best {
					best = cand
				}
			}
		}
	}
}

type search struct {
	dist []int64
	heap lazyHeap
}

func newSearch(n int, src int32) *search {
	s := &search{dist: make([]int64, n)}
	for i := range s.dist {
		s.dist[i] = graph.Inf
	}
	s.dist[src] = 0
	s.heap = lazyHeap{{v: src, d: 0}}
	return s
}

func topKey(h lazyHeap) int64 {
	if len(h) == 0 {
		return graph.Inf
	}
	return h[0].d
}
