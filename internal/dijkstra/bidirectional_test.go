package dijkstra

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
	"repro/internal/graph"
)

func TestSTBasics(t *testing.T) {
	g := gen.Path(10, 3)
	if d := STDistance(g, 0, 9); d != 27 {
		t.Fatalf("path end-to-end: %d", d)
	}
	if d := STDistance(g, 4, 4); d != 0 {
		t.Fatalf("self: %d", d)
	}
	if d := STDistance(g, 9, 0); d != 27 {
		t.Fatalf("reverse: %d", d)
	}
}

func TestSTUnreachable(t *testing.T) {
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1, 2)
	g := b.Build()
	if d := STDistance(g, 0, 3); d != graph.Inf {
		t.Fatalf("unreachable: %d", d)
	}
}

func TestSTEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	if d := STDistance(g, 0, 0); d != 0 {
		t.Fatalf("s==t on empty ids: %d", d)
	}
}

func TestSTMatchesDijkstraOnFamilies(t *testing.T) {
	gs := []*graph.Graph{
		gen.Random(800, 3200, 1<<12, gen.UWD, 1),
		gen.GridGraph(30, 30, 64, gen.UWD, 2),
		gen.RMATGraph(512, 2048, 1<<8, gen.PWD, 3),
	}
	for gi, g := range gs {
		d0 := SSSP(g, 0)
		for _, tgt := range []int32{1, int32(g.NumVertices() / 2), int32(g.NumVertices() - 1)} {
			if got := STDistance(g, 0, tgt); got != d0[tgt] {
				t.Errorf("graph %d: st(0,%d)=%d, dijkstra %d", gi, tgt, got, d0[tgt])
			}
		}
	}
}

// Property: bidirectional search matches full Dijkstra for random pairs.
func TestQuickSTMatchesDijkstra(t *testing.T) {
	f := func(seed uint32) bool {
		n := int(seed%150) + 2
		g := gen.Random(n, 4*n, 1<<10, gen.UWD, uint64(seed))
		s := int32(seed % uint32(n))
		tt := int32((seed / 3) % uint32(n))
		return STDistance(g, s, tt) == SSSP(g, s)[tt]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSTGrid(b *testing.B) {
	g := gen.GridGraph(128, 128, 64, gen.UWD, 42)
	n := int32(g.NumVertices())
	b.Run("Bidirectional", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			STDistance(g, 0, n-1)
		}
	})
	b.Run("FullDijkstra", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = SSSP(g, 0)[n-1]
		}
	})
}
