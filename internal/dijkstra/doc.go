// Package dijkstra implements Dijkstra's algorithm, the classical comparison
// point for every solver in this repository and the correctness oracle of the
// test suite.
//
// Two priority queues are provided: a lazy binary heap (entries are never
// decreased, stale entries are skipped on pop) and an indexed 4-ary heap with
// true decrease-key. Their outputs are identical; the bench suite compares
// their constants.
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package dijkstra
