package dijkstra

import (
	"testing"
	"testing/quick"

	"repro/internal/gen"
)

func TestPairingAndDialMatchHeap(t *testing.T) {
	for gi, in := range []gen.Instance{
		{Class: gen.Rand, Dist: gen.UWD, LogN: 9, LogC: 9, Seed: 1},
		{Class: gen.Rand, Dist: gen.PWD, LogN: 9, LogC: 9, Seed: 2},
		{Class: gen.RMAT, Dist: gen.UWD, LogN: 9, LogC: 2, Seed: 3},
		{Class: gen.Grid, Dist: gen.UWD, LogN: 8, LogC: 4, Seed: 4},
	} {
		gr := in.Generate()
		want := SSSP(gr, 0)
		for name, got := range map[string][]int64{
			"pairing": SSSPPairing(gr, 0),
			"dial":    SSSPDial(gr, 0),
		} {
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("graph %d %s: d[%d]=%d want %d", gi, name, v, got[v], want[v])
				}
			}
		}
	}
}

func TestQueueVariantsTrivialGraphs(t *testing.T) {
	g := gen.Path(1, 1)
	if d := SSSPPairing(g, 0); d[0] != 0 {
		t.Fatal("pairing singleton")
	}
	if d := SSSPDial(g, 0); d[0] != 0 {
		t.Fatal("dial singleton")
	}
}

func TestQuickQueueVariantsAgree(t *testing.T) {
	f := func(seed uint32) bool {
		n := int(seed%100) + 1
		g := gen.Random(n, 4*n, 64, gen.UWD, uint64(seed))
		src := int32(seed % uint32(n))
		want := SSSP(g, src)
		for _, got := range [][]int64{SSSPPairing(g, src), SSSPDial(g, src)} {
			for v := range want {
				if got[v] != want[v] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func BenchmarkQueueChoice(b *testing.B) {
	g := gen.Random(1<<13, 1<<15, 64, gen.UWD, 42) // small C so Dial is fair
	b.Run("LazyBinaryHeap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SSSP(g, 0)
		}
	})
	b.Run("Indexed4ary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SSSPIndexed(g, 0)
		}
	})
	b.Run("PairingHeap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SSSPPairing(g, 0)
		}
	})
	b.Run("DialBuckets", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SSSPDial(g, 0)
		}
	})
}
