package dijkstra

import (
	"repro/internal/graph"
	"repro/internal/pq"
)

// SSSPWithQueue runs Dijkstra's algorithm over any monotone vertex queue —
// the hook the bench suite uses to attribute constant factors to the queue
// choice (pairing heap, Dial buckets, and the heaps built into this package).
func SSSPWithQueue(g *graph.Graph, src int32, q pq.VertexQueue) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	if n == 0 {
		return dist
	}
	dist[src] = 0
	q.InsertOrDecrease(src, 0)
	for {
		v, d, ok := q.PopMin()
		if !ok {
			return dist
		}
		if d > dist[v] {
			continue // stale (possible only for queues without true decrease)
		}
		ts, ws := g.Neighbors(v)
		for i, u := range ts {
			nd := d + int64(ws[i])
			if nd < dist[u] {
				dist[u] = nd
				q.InsertOrDecrease(u, nd)
			}
		}
	}
}

// SSSPPairing is Dijkstra with a pairing heap.
func SSSPPairing(g *graph.Graph, src int32) []int64 {
	return SSSPWithQueue(g, src, pq.NewPairingHeap(g.NumVertices()))
}

// SSSPDial is Dijkstra with Dial's bucket queue. It is only practical when
// the distance range n*C is modest; the caller is responsible for that (the
// multi-level buckets in internal/mlb remove the restriction).
func SSSPDial(g *graph.Graph, src int32) []int64 {
	maxKey := int64(g.NumVertices()) * int64(g.MaxWeight())
	return SSSPWithQueue(g, src, pq.NewBucketQueue(g.NumVertices(), maxKey))
}
