package mlb

import (
	"repro/internal/graph"
)

// SSSP computes single-source shortest path distances from src using
// multi-level buckets with the caliber heuristic.
func SSSP(g *graph.Graph, src int32) []int64 {
	return run(g, src, true)
}

// SSSPNoCaliber is SSSP without the caliber heuristic (pure multi-level
// buckets).
func SSSPNoCaliber(g *graph.Graph, src int32) []int64 {
	return run(g, src, false)
}

func run(g *graph.Graph, src int32, useCaliber bool) []int64 {
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = graph.Inf
	}
	if n == 0 {
		return dist
	}

	var caliber []uint32
	if useCaliber {
		caliber = make([]uint32, n)
		for v := int32(0); v < int32(n); v++ {
			_, ws := g.Neighbors(v)
			min := uint32(1<<31 - 1)
			for _, w := range ws {
				if w < min {
					min = w
				}
			}
			caliber[v] = min
		}
	}

	h := newRadixHeap(n)
	settled := make([]bool, n)
	dist[src] = 0

	// exact holds vertices proven settled but not yet scanned.
	exact := make([]int32, 0, 64)
	exact = append(exact, src)

	scan := func(v int32) {
		if settled[v] {
			return
		}
		settled[v] = true
		dv := dist[v]
		ts, ws := g.Neighbors(v)
		for i, u := range ts {
			if settled[u] {
				continue
			}
			nd := dv + int64(ws[i])
			if nd >= dist[u] {
				continue
			}
			dist[u] = nd
			if useCaliber && nd <= h.mu+int64(caliber[u]) {
				// Caliber rule: no unsettled vertex can have distance below
				// mu, and every path into u pays at least caliber(u) more,
				// so nd is already exact.
				h.removeIfPresent(u)
				exact = append(exact, u)
				continue
			}
			h.insertOrDecrease(u, nd)
		}
	}

	for {
		for len(exact) > 0 {
			v := exact[len(exact)-1]
			exact = exact[:len(exact)-1]
			scan(v)
		}
		v, ok := h.popMin()
		if !ok {
			return dist
		}
		scan(v)
	}
}

// maxBuckets covers keys up to n*C <= 2^51 comfortably: bucket widths grow as
// 1, 1, 2, 4, ..., so 54 buckets span more than 2^52.
const maxBuckets = 54

// radixHeap is a monotone priority queue over vertex ids keyed by tentative
// distance — the Ahuja–Mehlhorn–Orlin–Tarjan formulation of multi-level
// buckets. Bucket i holds keys in (bound[i-1], bound[i]]; the bounds are
// absolute and only tighten when the lowest non-empty bucket is redistributed
// around its minimum, which keeps every placement permanently valid. One
// entry per vertex; positions are tracked for removal/decrease.
type radixHeap struct {
	buckets [maxBuckets][]int32
	bound   [maxBuckets]int64 // bound[i] = largest key admitted to bucket i
	bucket  []int8            // vertex -> bucket id, -1 if absent
	pos     []int32           // vertex -> index within its bucket
	key     []int64           // vertex -> current key
	mu      int64             // largest extracted key (lower bound on live keys)
	size    int
}

func newRadixHeap(n int) *radixHeap {
	h := &radixHeap{
		bucket: make([]int8, n),
		pos:    make([]int32, n),
		key:    make([]int64, n),
	}
	for i := range h.bucket {
		h.bucket[i] = -1
	}
	h.bound[0] = 0
	for i := 1; i < maxBuckets; i++ {
		h.bound[i] = saturatingAdd(h.bound[i-1], int64(1)<<uint(i-1))
	}
	h.bound[maxBuckets-1] = graph.Inf // top bucket is open-ended
	return h
}

func saturatingAdd(a, b int64) int64 {
	if a > graph.Inf-b {
		return graph.Inf
	}
	return a + b
}

func (h *radixHeap) bucketFor(key int64) int8 {
	// Binary search over the 54 monotone bounds.
	lo, hi := 0, maxBuckets-1
	for lo < hi {
		mid := (lo + hi) / 2
		if key <= h.bound[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return int8(lo)
}

func (h *radixHeap) place(v int32, b int8) {
	h.bucket[v] = b
	h.pos[v] = int32(len(h.buckets[b]))
	h.buckets[b] = append(h.buckets[b], v)
}

func (h *radixHeap) removeIfPresent(v int32) {
	b := h.bucket[v]
	if b < 0 {
		return
	}
	lst := h.buckets[b]
	i := h.pos[v]
	last := int32(len(lst)) - 1
	if i != last {
		moved := lst[last]
		lst[i] = moved
		h.pos[moved] = i
	}
	h.buckets[b] = lst[:last]
	h.bucket[v] = -1
	h.size--
}

// insertOrDecrease sets v's key (which must be >= mu and, if v is present,
// <= its current key) and places it in the right bucket.
func (h *radixHeap) insertOrDecrease(v int32, key int64) {
	if h.bucket[v] >= 0 {
		if key >= h.key[v] {
			return
		}
		h.removeIfPresent(v)
	}
	h.key[v] = key
	h.place(v, h.bucketFor(key))
	h.size++
}

// popMin extracts a vertex with the minimum key and advances mu to it.
func (h *radixHeap) popMin() (int32, bool) {
	if h.size == 0 {
		return -1, false
	}
	if len(h.buckets[0]) == 0 {
		// Find the lowest non-empty bucket, tighten the bounds of everything
		// below it around that bucket's minimum key, and redistribute its
		// entries. The geometric widths guarantee buckets 0..j-1 can absorb
		// bucket j's whole range.
		j := 1
		for len(h.buckets[j]) == 0 {
			j++
		}
		min := h.key[h.buckets[j][0]]
		for _, v := range h.buckets[j][1:] {
			if h.key[v] < min {
				min = h.key[v]
			}
		}
		h.bound[0] = min
		for i := 1; i < j; i++ {
			b := saturatingAdd(h.bound[i-1], int64(1)<<uint(i-1))
			if b > h.bound[j] {
				b = h.bound[j]
			}
			h.bound[i] = b
		}
		moved := h.buckets[j]
		h.buckets[j] = nil
		for _, v := range moved {
			h.place(v, h.bucketFor(h.key[v]))
		}
	}
	// Pop from bucket 0 (all keys there equal bound[0], the current minimum).
	lst := h.buckets[0]
	v := lst[len(lst)-1]
	h.buckets[0] = lst[:len(lst)-1]
	h.bucket[v] = -1
	h.size--
	h.mu = h.key[v]
	return v, true
}
