package mlb

import (
	"testing"

	"repro/internal/rng"
)

// Simulate monotone usage: pop min, then insert/decrease keys >= popped.
func TestRadixHeapStress(t *testing.T) {
	r := rng.New(99)
	h := newRadixHeap(5000)
	live := map[int32]int64{}
	next := int32(0)
	// seed
	h.insertOrDecrease(next, 0)
	live[next] = 0
	next++
	lastPop := int64(-1)
	for ops := 0; ops < 200000 && h.size > 0; ops++ {
		v, ok := h.popMin()
		if !ok {
			break
		}
		k := h.key[v]
		// verify v was min among live
		for u, ku := range live {
			if ku < k {
				t.Fatalf("op %d: popped key %d (v=%d) but %d has key %d", ops, k, v, u, ku)
			}
		}
		if k < lastPop {
			t.Fatalf("op %d: non-monotone pop %d after %d", ops, k, lastPop)
		}
		lastPop = k
		delete(live, v)
		// random relaxations: insert new or decrease existing, keys > k
		for j := 0; j < 3; j++ {
			if r.Intn(2) == 0 && int(next) < 5000 {
				nk := k + 1 + int64(r.Intn(1<<16))
				h.insertOrDecrease(next, nk)
				live[next] = nk
				next++
			} else {
				// decrease a random live vertex toward k+1
				for u, ku := range live {
					nk := k + 1 + int64(r.Intn(1<<8))
					if nk < ku {
						h.insertOrDecrease(u, nk)
						live[u] = nk
					}
					break
				}
			}
		}
	}
	_ = next
}
