// Package mlb implements Goldberg's multi-level bucket shortest path
// algorithm, the algorithm behind the DIMACS Challenge reference solver the
// paper compares against in Table 1 ("an implementation of Goldberg's
// multilevel bucket shortest path algorithm, which has an expected running
// time of O(n) on random graphs with uniform weight distributions").
//
// The bucket structure is the radix-heap formulation of multi-level buckets:
// bucket i holds keys in [mu + 2^(i-1), mu + 2^i), where mu is the largest
// key extracted so far; since Dijkstra keys are monotone, extracted minima
// only redistribute downwards, giving O(m + n log C) worst case.
//
// Goldberg's linear-average-time twist is the caliber heuristic: a vertex v
// whose tentative distance is at most mu + caliber(v) (the minimum weight of
// any edge into v) can be settled immediately without ever entering the
// bucket structure. SSSP enables it; SSSPNoCaliber is the plain multi-level
// bucket variant kept for the ablation bench.
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package mlb
