package mlb

import (
	"testing"
	"testing/quick"

	"repro/internal/dijkstra"
	"repro/internal/gen"
	"repro/internal/graph"
)

func sameDists(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPath(t *testing.T) {
	g := gen.Path(8, 5)
	d := SSSP(g, 0)
	for v := 0; v < 8; v++ {
		if d[v] != int64(5*v) {
			t.Fatalf("d[%d] = %d", v, d[v])
		}
	}
}

func TestUnreachableAndTrivial(t *testing.T) {
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 2)
	g := b.Build()
	d := SSSP(g, 0)
	if d[2] != graph.Inf || d[1] != 2 || d[0] != 0 {
		t.Fatalf("d = %v", d)
	}
	if d := SSSP(graph.NewBuilder(1).Build(), 0); d[0] != 0 {
		t.Fatalf("singleton: %v", d)
	}
	if d := SSSP(graph.NewBuilder(0).Build(), 0); len(d) != 0 {
		t.Fatal("empty graph")
	}
}

func TestLargeWeightSpread(t *testing.T) {
	// Exercise many radix-heap redistributions: weights spanning 1..2^30.
	b := graph.NewBuilder(5)
	b.MustAddEdge(0, 1, 1)
	b.MustAddEdge(1, 2, 1<<30)
	b.MustAddEdge(2, 3, 1)
	b.MustAddEdge(0, 4, 1<<29)
	g := b.Build()
	want := dijkstra.SSSP(g, 0)
	if got := SSSP(g, 0); !sameDists(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if got := SSSPNoCaliber(g, 0); !sameDists(got, want) {
		t.Fatalf("no-caliber: got %v want %v", got, want)
	}
}

func TestAgainstDijkstraOnFamilies(t *testing.T) {
	gs := []*graph.Graph{
		gen.Random(1000, 4000, 1<<20, gen.UWD, 1),
		gen.Random(1000, 4000, 1<<20, gen.PWD, 2),
		gen.Random(1000, 4000, 4, gen.UWD, 3),
		gen.RMATGraph(1024, 4096, 1<<10, gen.UWD, 4),
		gen.GridGraph(30, 30, 64, gen.UWD, 5),
		gen.Star(100, 7),
		gen.Cycle(101, 3),
	}
	for gi, g := range gs {
		for _, src := range []int32{0, int32(g.NumVertices() / 2)} {
			want := dijkstra.SSSP(g, src)
			if got := SSSP(g, src); !sameDists(got, want) {
				t.Errorf("graph %d src %d: caliber MLB != Dijkstra", gi, src)
			}
			if got := SSSPNoCaliber(g, src); !sameDists(got, want) {
				t.Errorf("graph %d src %d: plain MLB != Dijkstra", gi, src)
			}
		}
	}
}

// Property: MLB (both variants) matches Dijkstra on random multigraphs.
func TestQuickMatchesDijkstra(t *testing.T) {
	f := func(seed uint32, pwd, smallC bool) bool {
		n := int(seed%120) + 1
		dist := gen.UWD
		if pwd {
			dist = gen.PWD
		}
		c := uint32(1 << 16)
		if smallC {
			c = 4
		}
		g := gen.Random(n, 4*n, c, dist, uint64(seed))
		src := int32(seed % uint32(n))
		want := dijkstra.SSSP(g, src)
		return sameDists(SSSP(g, src), want) && sameDists(SSSPNoCaliber(g, src), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCaliberSkipsBucketWork(t *testing.T) {
	// On a uniform random graph the caliber variant must produce identical
	// results; this is a smoke test that both paths execute.
	g := gen.Random(5000, 20000, 1<<20, gen.UWD, 99)
	if !sameDists(SSSP(g, 0), SSSPNoCaliber(g, 0)) {
		t.Fatal("caliber changed distances")
	}
}

func BenchmarkMLBCaliber(b *testing.B) {
	g := gen.Random(1<<14, 1<<16, 1<<14, gen.UWD, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SSSP(g, 0)
	}
}

func BenchmarkMLBNoCaliber(b *testing.B) {
	g := gen.Random(1<<14, 1<<16, 1<<14, gen.UWD, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SSSPNoCaliber(g, 0)
	}
}
