package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/dimacs"
	"repro/internal/gen"
)

func TestGenerateClasses(t *testing.T) {
	for _, class := range []string{"rand", "random", "rmat", "grid", "geometric", "smallworld", ""} {
		s := Spec{Class: class, LogN: 8, LogC: 8, Seed: 1}
		g, name, err := s.Generate()
		if err != nil {
			t.Errorf("%q: %v", class, err)
			continue
		}
		if g.NumVertices() == 0 || name == "" {
			t.Errorf("%q: empty result (%s)", class, name)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%q: %v", class, err)
		}
	}
}

func TestGenerateNaming(t *testing.T) {
	s := Spec{Class: "rmat", LogN: 10, LogC: 2, PWD: true, Seed: 3}
	_, name, err := s.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if name != "RMAT-PWD-2^10-2^2" {
		t.Fatalf("name %q", name)
	}
}

func TestGenerateErrors(t *testing.T) {
	cases := []Spec{
		{Class: "bogus", LogN: 8, LogC: 8},
		{Class: "rand", LogN: -1, LogC: 8},
		{Class: "rand", LogN: 99, LogC: 8},
		{Class: "rand", LogN: 8, LogC: 99},
		{Class: "smallworld", LogN: 1, LogC: 4},
	}
	for i, s := range cases {
		if _, _, err := s.Generate(); err == nil {
			t.Errorf("case %d: accepted %+v", i, s)
		}
	}
}

func TestLoadFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.gr")
	g := gen.Random(100, 400, 64, gen.UWD, 7)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := dimacs.WriteGraph(f, g, "test"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	g2, name, err := Spec{File: path}.Load()
	if err != nil {
		t.Fatal(err)
	}
	if name != path || g2.NumVertices() != 100 || g2.NumEdges() != 400 {
		t.Fatalf("loaded %s: %v", name, g2)
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, _, err := (Spec{File: "/nonexistent/g.gr"}).Load(); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadPrefersFile(t *testing.T) {
	// With File set, generator fields are ignored (even invalid ones).
	if _, _, err := (Spec{File: "/nonexistent/g.gr", LogN: -5}).Load(); err == nil {
		t.Fatal("expected file error, not generator run")
	}
}

func TestReadSources(t *testing.T) {
	g := gen.Path(10, 1)
	good := strings.NewReader("p aux sp ss 2\ns 1\ns 10\n")
	sources, err := ReadSources(good, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(sources) != 2 || sources[0] != 0 || sources[1] != 9 {
		t.Fatalf("sources %v", sources)
	}
	for name, in := range map[string]string{
		"out of range": "s 11\n",
		"empty":        "c nothing\n",
		"garbage":      "s x\n",
	} {
		if _, err := ReadSources(strings.NewReader(in), g); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
