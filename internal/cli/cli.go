package cli

import (
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/dimacs"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Spec describes a graph source: either a DIMACS file or a generator.
type Spec struct {
	// File is a DIMACS .gr path; when set it wins over the generator fields.
	File string
	// Class is the generator family: rand, rmat, grid, geometric, smallworld.
	Class string
	// LogN sets n = 2^LogN; LogC sets C = 2^LogC.
	LogN, LogC int
	// PWD selects the poly-log weight distribution.
	PWD bool
	// Seed drives the generator.
	Seed uint64
}

// Load resolves the spec to a graph and a human-readable instance name.
func (s Spec) Load() (*graph.Graph, string, error) {
	if s.File != "" {
		f, err := os.Open(s.File)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		g, err := dimacs.ReadGraph(f)
		return g, s.File, err
	}
	return s.Generate()
}

// Generate resolves a generator-only spec (no file fallback).
func (s Spec) Generate() (*graph.Graph, string, error) {
	if s.LogN < 0 || s.LogN > 28 {
		return nil, "", fmt.Errorf("cli: logn %d out of [0,28]", s.LogN)
	}
	if s.LogC < 0 || s.LogC > 30 {
		return nil, "", fmt.Errorf("cli: logc %d out of [0,30]", s.LogC)
	}
	class := strings.ToLower(s.Class)
	if class == "" {
		class = "rand"
	}
	in := gen.Instance{LogN: s.LogN, LogC: s.LogC, Seed: s.Seed}
	if s.PWD {
		in.Dist = gen.PWD
	}
	switch class {
	case "rand", "random":
		in.Class = gen.Rand
	case "rmat":
		in.Class = gen.RMAT
	case "grid":
		in.Class = gen.Grid
	case "geometric":
		n := 1 << s.LogN
		name := fmt.Sprintf("Geometric-2^%d-2^%d", s.LogN, s.LogC)
		return gen.Geometric(n, 0.05, uint32(1)<<s.LogC, s.Seed), name, nil
	case "smallworld":
		n := 1 << s.LogN
		if n < 5 {
			return nil, "", fmt.Errorf("cli: smallworld needs logn >= 3")
		}
		name := fmt.Sprintf("SmallWorld-%s-2^%d-2^%d", in.Dist, s.LogN, s.LogC)
		return gen.SmallWorld(n, 2, 0.1, uint32(1)<<s.LogC, in.Dist, s.Seed), name, nil
	default:
		return nil, "", fmt.Errorf("cli: unknown generator class %q (rand, rmat, grid, geometric, smallworld)", s.Class)
	}
	g := in.Generate()
	return g, in.Name(), nil
}

// ReadSources loads a DIMACS .ss file and bounds-checks the sources against
// the graph.
func ReadSources(r io.Reader, g *graph.Graph) ([]int32, error) {
	sources, err := dimacs.ReadSources(r)
	if err != nil {
		return nil, err
	}
	if len(sources) == 0 {
		return nil, fmt.Errorf("cli: source file lists no sources")
	}
	for _, s := range sources {
		if s < 0 || int(s) >= g.NumVertices() {
			return nil, fmt.Errorf("cli: source %d out of range [0,%d)", s, g.NumVertices())
		}
	}
	return sources, nil
}
