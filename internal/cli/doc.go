// Package cli holds the instance-specification logic shared by the command
// line tools (cmd/sssp, cmd/gengraph, cmd/chstat): parsing a generator spec
// or loading a DIMACS file, with uniform naming and errors. Factoring it here
// keeps the tools thin and makes the logic unit-testable.
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package cli
