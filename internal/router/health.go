package router

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// backendState is one backend's live view: the static table entry plus what
// the health checker last learned about it and how many proxied requests it
// currently carries. Health flips on scrape outcomes only — a failed query
// never marks a backend down by itself (one slow query is not an outage),
// but a backend whose /metrics stops answering is out of the ring within one
// health interval.
type backendState struct {
	name   string
	url    string
	weight int

	inflight atomic.Int64 // proxied requests currently outstanding
	healthy  atomic.Bool

	mu         sync.RWMutex
	graphs     map[string]string // graph name -> lifecycle state, last scrape
	lastErr    string
	lastScrape time.Time
}

// setWeight updates the backend's ring weight when a reload carries the
// state over with a new weight (snapshot reads it under the same lock).
func (b *backendState) setWeight(w int) {
	b.mu.Lock()
	b.weight = w
	b.mu.Unlock()
}

// graphState returns the backend's last-scraped state for a graph ("" when
// the backend does not serve it or has never been scraped).
func (b *backendState) graphState(graph string) string {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.graphs[graph]
}

// eligible reports whether the router may send a query for graph to this
// backend: the backend's last health scrape succeeded AND that scrape showed
// the graph ready. A draining, building, failed, or absent graph excludes
// the backend for that graph only — its other graphs keep serving.
func (b *backendState) eligible(graph string) bool {
	return b.healthy.Load() && b.graphState(graph) == catalogStateReady
}

// catalogStateReady is the catalog lifecycle state a replica must report
// before the router will route to it (see internal/catalog.StateReady).
const catalogStateReady = "ready"

// applyScrape folds one scrape outcome into the backend's state and reports
// whether the healthy bit flipped.
func (b *backendState) applyScrape(m *obs.MetricsSnapshot, err error) (flipped bool) {
	b.mu.Lock()
	b.lastScrape = time.Now()
	if err != nil {
		b.lastErr = err.Error()
		b.graphs = nil
	} else {
		b.lastErr = ""
		g := make(map[string]string, len(m.Catalog.GraphStates))
		for _, gs := range m.Catalog.GraphStates {
			g[gs.Name] = gs.State
		}
		b.graphs = g
	}
	b.mu.Unlock()
	return b.healthy.Swap(err == nil) != (err == nil)
}

// BackendHealth is one backend's observable state, shaped for GET /fleet.
type BackendHealth struct {
	Name     string            `json:"name"`
	URL      string            `json:"url"`
	Weight   int               `json:"weight"`
	Healthy  bool              `json:"healthy"`
	InFlight int64             `json:"in_flight"`
	Graphs   map[string]string `json:"graphs,omitempty"`
	Error    string            `json:"error,omitempty"`
	// ScrapeAgeMs is how stale this view is (-1 before the first scrape).
	ScrapeAgeMs float64 `json:"scrape_age_ms"`
}

func (b *backendState) snapshot() BackendHealth {
	b.mu.RLock()
	defer b.mu.RUnlock()
	h := BackendHealth{
		Name:        b.name,
		URL:         b.url,
		Weight:      b.weight,
		Healthy:     b.healthy.Load(),
		InFlight:    b.inflight.Load(),
		Error:       b.lastErr,
		ScrapeAgeMs: -1,
	}
	if !b.lastScrape.IsZero() {
		h.ScrapeAgeMs = float64(time.Since(b.lastScrape)) / 1e6
	}
	if len(b.graphs) > 0 {
		h.Graphs = make(map[string]string, len(b.graphs))
		for k, v := range b.graphs {
			h.Graphs[k] = v
		}
	}
	return h
}

// checkOnce scrapes every backend of the current view; Reload-retired states
// simply stop being scraped once no view references them.
func (rt *Router) checkOnce(ctx context.Context) {
	rt.scrape(ctx, rt.view.Load().backends)
}

// scrape probes the given backends concurrently and folds the results in.
// Each probe gets its own HealthTimeout so one wedged backend cannot stall
// the round past the interval.
func (rt *Router) scrape(ctx context.Context, backends []*backendState) {
	var wg sync.WaitGroup
	for _, b := range backends {
		wg.Add(1)
		go func(b *backendState) {
			defer wg.Done()
			sctx, cancel := context.WithTimeout(ctx, rt.cfg.HealthTimeout)
			defer cancel()
			m, err := obs.ScrapeMetrics(sctx, rt.healthClient, b.url)
			rt.counters.C(cHealthProbes).Inc()
			if err != nil {
				rt.counters.C(cHealthProbeFailures).Inc()
			}
			if b.applyScrape(m, err) {
				rt.counters.C(cHealthTransitions).Inc()
				if err != nil {
					rt.logf("router: backend %s unhealthy: %v", b.name, err)
				} else {
					rt.logf("router: backend %s healthy (%d graphs)", b.name, len(m.Catalog.GraphStates))
				}
			}
		}(b)
	}
	wg.Wait()
}

// CheckNow runs one synchronous health round — the constructor primes the
// ring with it, and tests use it to advance health deterministically.
func (rt *Router) CheckNow(ctx context.Context) { rt.checkOnce(ctx) }

// healthLoop re-scrapes the fleet every HealthInterval until Close.
func (rt *Router) healthLoop() {
	defer rt.wg.Done()
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.checkOnce(context.Background())
		}
	}
}

// newHealthClient builds the scrape client: keep-alives on (the checker
// revisits the same hosts forever), tight dial bounds so a dead host fails
// the round fast instead of eating the whole timeout in SYN retries.
func newHealthClient() *http.Client {
	return &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2}}
}
