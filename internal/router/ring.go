package router

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a weighted consistent-hash ring over the fleet. Each backend owns
// weight × vnodes points on the 64-bit hash circle; a graph is served by the
// first R distinct backends clockwise of its own hash. Hashing is pure
// (finalized FNV-1a) over stable names, so the same table always builds the
// same ring — replica
// sets survive router restarts, and removing one of N backends moves only the
// points that backend owned (~1/N of graphs).
type Ring struct {
	points   []ringPoint
	backends []string // distinct backend names, table order
}

type ringPoint struct {
	hash uint64
	idx  int // index into backends
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer. Raw FNV-1a has weak avalanche for short
// suffix differences: "graph-0000".."graph-0099" land within ~2^47 of each
// other on a 2^64 circle, so whole blocks of similarly-named graphs collapse
// onto one arc. The finalizer spreads them uniformly while keeping the hash
// pure and stable.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// BuildRing constructs the ring a table describes. The table must be valid.
func BuildRing(t *Table) *Ring {
	vn := t.vnodes()
	r := &Ring{backends: make([]string, len(t.Backends))}
	for i := range t.Backends {
		b := &t.Backends[i]
		r.backends[i] = b.Name
		n := weightOf(b) * vn
		for v := 0; v < n; v++ {
			// The point key is name#v, not url#v: replacing a backend's
			// address must not reshuffle the ring.
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", b.Name, v)), idx: i})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (rare but possible under fuzzing) break by table order so
		// the sort — and therefore every assignment — is fully deterministic.
		return a.idx < b.idx
	})
	return r
}

// ReplicasFor returns the ordered replica set for a graph: the first n
// distinct backends clockwise of the graph's hash. n is clamped to [1, fleet
// size]; the result always has at least one entry for a non-empty ring.
func (r *Ring) ReplicasFor(graph string, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n < 1 {
		n = 1
	}
	if n > len(r.backends) {
		n = len(r.backends)
	}
	h := hash64(graph)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.idx] {
			continue
		}
		seen[p.idx] = true
		out = append(out, r.backends[p.idx])
	}
	return out
}

// Backends returns the distinct backend names the ring was built over, in
// table order.
func (r *Ring) Backends() []string {
	return append([]string(nil), r.backends...)
}
