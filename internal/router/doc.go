// Package router is the ssspr routing tier: it fronts a fleet of ssspd
// backends and presents the same query surface (/sssp, /dist, /st, /table,
// /batch) as a single endpoint.
//
// Placement is a weighted consistent-hash ring (FNV-1a, virtual nodes) over
// the backends of a routing table (see Table); each graph is owned by its
// first R distinct backends clockwise, where R comes from a per-graph policy
// or the table default. Within a replica set, requests balance by
// power-of-two-choices on live in-flight counts.
//
// Health is scrape-driven: every HealthInterval each backend's /metrics is
// fetched (obs.ScrapeMetrics) and the per-graph lifecycle states folded in.
// A backend is eligible for a graph only while its scrape succeeds and that
// graph reports "ready" — a draining or unloading graph leaves its replica
// set within one interval without dropping requests already in flight.
//
// Reads are idempotent, so a failed attempt (transport error, 500, 502, 503)
// may be retried once on a different replica under a token budget; 504 never
// retries. When every contacted replica sheds, the router answers 503 with
// the maximum Retry-After any replica asked for. Large /batch requests fan
// out across the replica set and recombine per-item results in the client's
// original order.
package router
