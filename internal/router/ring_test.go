package router

import (
	"fmt"
	"reflect"
	"testing"
)

// fleetTable builds a table of n equal-weight backends b0..b(n-1).
func fleetTable(t testing.TB, n, replicas int) *Table {
	tbl := &Table{Version: 1, Replicas: replicas}
	for i := 0; i < n; i++ {
		tbl.Backends = append(tbl.Backends, Backend{
			Name: fmt.Sprintf("b%d", i),
			URL:  fmt.Sprintf("http://127.0.0.1:%d", 9000+i),
		})
	}
	if err := tbl.Validate(); err != nil {
		t.Fatalf("fleet table invalid: %v", err)
	}
	return tbl
}

func graphNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("graph-%04d", i)
	}
	return out
}

// Replica sets must be a pure function of the table: a ring rebuilt from the
// same table (a router restart) assigns every graph identically.
func TestRingStableAcrossRebuilds(t *testing.T) {
	tbl := fleetTable(t, 8, 2)
	a, b := BuildRing(tbl), BuildRing(tbl)
	for _, g := range graphNames(2000) {
		ra, rb := a.ReplicasFor(g, 2), b.ReplicasFor(g, 2)
		if !reflect.DeepEqual(ra, rb) {
			t.Fatalf("graph %s: %v vs %v across rebuilds", g, ra, rb)
		}
	}
}

// Removing one of N backends must remap only the graphs that backend owned —
// about 1/N of them — and must never move a graph between two surviving
// backends. This is the property that makes the ring worth its complexity
// over mod-N hashing (which remaps nearly everything).
func TestRingRemovalRemapsBoundedFraction(t *testing.T) {
	const n = 8
	tbl := fleetTable(t, n, 1)
	before := BuildRing(tbl)

	smaller := &Table{Version: 1, Replicas: 1, Backends: append([]Backend(nil), tbl.Backends[:n-1]...)}
	after := BuildRing(smaller)

	removed := tbl.Backends[n-1].Name
	graphs := graphNames(4000)
	moved := 0
	for _, g := range graphs {
		was, is := before.ReplicasFor(g, 1)[0], after.ReplicasFor(g, 1)[0]
		if was == is {
			continue
		}
		if was != removed {
			t.Fatalf("graph %s moved %s -> %s, but %s is still in the fleet", g, was, is, was)
		}
		moved++
	}
	frac := float64(moved) / float64(len(graphs))
	// Expect ~1/8 = 12.5%; allow generous slack for hash variance but fail
	// well before mod-N behavior (~87% moved).
	if frac > 0.25 {
		t.Fatalf("removal remapped %.1f%% of graphs, want ~%.1f%%", frac*100, 100.0/n)
	}
	if moved == 0 {
		t.Fatal("removal remapped nothing; the removed backend owned no graphs")
	}
}

// Equal-weight backends must each own a reasonable share of graphs: no
// backend starved, none holding a large multiple of its fair share.
func TestRingBalance(t *testing.T) {
	const n = 8
	ring := BuildRing(fleetTable(t, n, 1))
	counts := make(map[string]int, n)
	graphs := graphNames(8000)
	for _, g := range graphs {
		counts[ring.ReplicasFor(g, 1)[0]]++
	}
	fair := len(graphs) / n
	for name, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Errorf("backend %s owns %d graphs, fair share %d", name, c, fair)
		}
	}
	if len(counts) != n {
		t.Fatalf("only %d of %d backends own any graph", len(counts), n)
	}
}

// A backend with weight w must own ~w times the graphs of a weight-1 peer.
func TestRingWeighting(t *testing.T) {
	tbl := fleetTable(t, 4, 1)
	tbl.Backends[0].Weight = 3
	ring := BuildRing(tbl)
	counts := make(map[string]int, 4)
	graphs := graphNames(12000)
	for _, g := range graphs {
		counts[ring.ReplicasFor(g, 1)[0]]++
	}
	// b0 has weight 3 of total 6: expect half the keyspace.
	frac := float64(counts["b0"]) / float64(len(graphs))
	if frac < 0.35 || frac > 0.65 {
		t.Fatalf("weight-3 backend owns %.1f%% of graphs, want ~50%%", frac*100)
	}
}

// Replica sets are distinct backends in deterministic order, clamped to the
// fleet.
func TestRingReplicaSets(t *testing.T) {
	ring := BuildRing(fleetTable(t, 3, 2))
	for _, g := range graphNames(500) {
		for _, n := range []int{1, 2, 3, 5, 0} {
			got := ring.ReplicasFor(g, n)
			want := n
			if want < 1 {
				want = 1
			}
			if want > 3 {
				want = 3
			}
			if len(got) != want {
				t.Fatalf("graph %s n=%d: %d replicas, want %d", g, n, len(got), want)
			}
			seen := map[string]bool{}
			for _, b := range got {
				if seen[b] {
					t.Fatalf("graph %s: duplicate replica %s", g, b)
				}
				seen[b] = true
			}
		}
		// Growing n extends the set without reshuffling the prefix, so a
		// replication bump only adds copies, never moves the primary.
		one, two := ring.ReplicasFor(g, 1), ring.ReplicasFor(g, 2)
		if two[0] != one[0] {
			t.Fatalf("graph %s: primary moved %s -> %s when n grew", g, one[0], two[0])
		}
	}
}

func TestRingEmpty(t *testing.T) {
	var r Ring
	if got := r.ReplicasFor("g", 2); got != nil {
		t.Fatalf("empty ring returned %v", got)
	}
}
