package router

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Config parameterizes a Router.
type Config struct {
	// Table is the fleet description (required, must validate).
	Table *Table
	// DefaultGraph answers requests that carry no ?graph= ("" makes the
	// parameter mandatory and such requests 400).
	DefaultGraph string
	// HealthInterval is how often every backend's /metrics is scraped
	// (default 2s).
	HealthInterval time.Duration
	// HealthTimeout bounds one backend's scrape (default 1s).
	HealthTimeout time.Duration
	// Timeout is the per-request deadline for proxied query endpoints
	// (0 disables; the backends' own -timeout still applies).
	Timeout time.Duration
	// Retry enables the one-retry-on-another-replica policy for idempotent
	// reads (default off; cmd/ssspr turns it on).
	Retry bool
	// RetryBudget is the token-bucket refill rate in retries/second
	// (default 10). The budget is what keeps a brown-out from doubling the
	// offered load: when it is spent, failures propagate instead of retrying.
	RetryBudget float64
	// RetryBackoff is the pause before the second attempt (default 5ms),
	// clipped to the request's remaining deadline.
	RetryBackoff time.Duration
	// Trace configures the router's own tracer (spans: route, backend_wait,
	// retry, fanout_join).
	Trace trace.Config
	// Client issues proxied backend requests (default: a fresh client with
	// pooled connections and no client-level timeout — the request context
	// carries the deadline).
	Client *http.Client
	// Logf receives health transitions and access lines (default: drop).
	Logf func(format string, args ...any)
}

// Counter names of the router's /metrics "router" group.
const (
	cRouted              = "routed"
	cProxyErrors         = "proxy_errors"
	cRetries             = "retries"
	cRetrySuccess        = "retry_success"
	cRetryBudgetSpent    = "retry_budget_exhausted"
	cNoReplica           = "no_replica"
	cAllShedding         = "all_shedding"
	cTableReloads        = "table_reloads"
	cFanouts             = "fanouts"
	cFanoutSubrequests   = "fanout_subrequests"
	cFanoutItemErrors    = "fanout_item_errors"
	cHealthProbes        = "health_probes"
	cHealthProbeFailures = "health_probe_failures"
	cHealthTransitions   = "health_transitions"
)

// Router fronts a fleet of ssspd backends: it consistent-hashes ?graph=
// across the fleet, keeps per-graph replica sets healthy via /metrics
// scrapes, balances reads with power-of-two-choices, retries idempotent
// reads once on a different replica under a token budget, and fans /batch
// out across a graph's replicas with per-item recombination. It is the
// entire behavior of cmd/ssspr; the command is flags plus this type.
type Router struct {
	cfg  Config
	view atomic.Pointer[fleetView]

	metrics  *obs.Registry
	counters *obs.Group
	tracer   *trace.Tracer
	retryTB  tokenBucket

	client       *http.Client
	healthClient *http.Client

	reloadMu sync.Mutex // serializes Reload (SIGHUP storms)
	stop     chan struct{}
	wg       sync.WaitGroup
}

// fleetView is the immutable routing state one table produces: the table, its
// consistent-hash ring, and the live backend states. Requests read the
// current view once and act on it; Reload swaps a whole new view in beneath
// them, so an in-flight request keeps the backend set it started with.
type fleetView struct {
	table    *Table
	ring     *Ring
	backends []*backendState
	byName   map[string]*backendState
}

// buildView materializes a validated table into a view. Backends that persist
// from prev — same name and URL — keep their backendState object, so health
// and in-flight accounting carry across a reload; everything else starts
// fresh (and unhealthy, until a scrape says otherwise).
func buildView(tbl *Table, prev *fleetView) *fleetView {
	v := &fleetView{
		table:  tbl,
		ring:   BuildRing(tbl),
		byName: make(map[string]*backendState, len(tbl.Backends)),
	}
	for i := range tbl.Backends {
		tb := &tbl.Backends[i]
		url := strings.TrimRight(tb.URL, "/")
		var b *backendState
		if prev != nil {
			if old := prev.byName[tb.Name]; old != nil && old.url == url {
				b = old
				b.setWeight(weightOf(tb))
			}
		}
		if b == nil {
			b = &backendState{name: tb.Name, url: url, weight: weightOf(tb)}
		}
		v.backends = append(v.backends, b)
		v.byName[tb.Name] = b
	}
	return v
}

// New builds a router over cfg.Table, primes health with one synchronous
// scrape round (bounded by HealthTimeout), and starts the background health
// loop. Callers must Close it.
func New(cfg Config) (*Router, error) {
	if cfg.Table == nil {
		return nil, fmt.Errorf("router: Config.Table required")
	}
	if err := cfg.Table.Validate(); err != nil {
		return nil, err
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 2 * time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = time.Second
	}
	if cfg.RetryBudget <= 0 {
		cfg.RetryBudget = 10
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	rt := &Router{
		cfg: cfg,
		metrics: obs.NewRegistry("healthz", "metrics", "fleet", "route", "debug_traces",
			"sssp", "dist", "st", "table", "batch"),
		counters: obs.NewGroup(cRouted, cProxyErrors, cRetries, cRetrySuccess, cRetryBudgetSpent,
			cNoReplica, cAllShedding, cTableReloads, cFanouts, cFanoutSubrequests, cFanoutItemErrors,
			cHealthProbes, cHealthProbeFailures, cHealthTransitions),
		tracer:       trace.New(cfg.Trace),
		client:       cfg.Client,
		healthClient: newHealthClient(),
		stop:         make(chan struct{}),
	}
	rt.retryTB.rate = cfg.RetryBudget
	rt.retryTB.burst = cfg.RetryBudget
	if rt.retryTB.burst < 2 {
		rt.retryTB.burst = 2
	}
	rt.retryTB.tokens = rt.retryTB.burst
	rt.retryTB.last = time.Now()
	if rt.client == nil {
		rt.client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 64}}
	}
	rt.view.Store(buildView(cfg.Table, nil))
	rt.checkOnce(context.Background())
	rt.wg.Add(1)
	go rt.healthLoop()
	return rt, nil
}

// Reload swaps in a new routing table without disturbing traffic: backends
// that persist (same name and URL) keep their health state and in-flight
// accounting, removed backends finish the requests they already carry, and
// backends new to the fleet are primed with one synchronous health round
// before the swap so they never take traffic with unknown health. cmd/ssspr
// calls this on SIGHUP with a re-read table file; a table that fails
// validation is rejected and the current view stays in place.
func (rt *Router) Reload(tbl *Table) error {
	if tbl == nil {
		return fmt.Errorf("router: Reload with nil table")
	}
	if err := tbl.Validate(); err != nil {
		return err
	}
	rt.reloadMu.Lock()
	defer rt.reloadMu.Unlock()
	prev := rt.view.Load()
	next := buildView(tbl, prev)
	var fresh []*backendState
	carried := 0
	for _, b := range next.backends {
		if prev.byName[b.name] == b {
			carried++
		} else {
			fresh = append(fresh, b)
		}
	}
	if len(fresh) > 0 {
		rt.scrape(context.Background(), fresh)
	}
	rt.view.Store(next)
	rt.counters.C(cTableReloads).Inc()
	rt.logf("router: table reloaded: %d backends (%d carried over, %d new)",
		len(next.backends), carried, len(fresh))
	return nil
}

// Close stops the health loop. In-flight proxied requests are unaffected.
func (rt *Router) Close() {
	close(rt.stop)
	rt.wg.Wait()
}

func (rt *Router) logf(format string, args ...any) {
	if rt.cfg.Logf != nil {
		rt.cfg.Logf(format, args...)
	}
}

// Tracer exposes the router's tracer (tests assert retention through it).
func (rt *Router) Tracer() *trace.Tracer { return rt.tracer }

// Counter returns the named router counter (see the c* snapshot names).
func (rt *Router) Counter(name string) int64 { return rt.counters.C(name).Value() }

// replicasFor resolves a graph to its ring replica set and the eligible
// (healthy, graph-ready) subset, preserving ring order.
func (rt *Router) replicasFor(graph string) (replicas []string, eligible []*backendState) {
	v := rt.view.Load()
	replicas = v.ring.ReplicasFor(graph, v.table.ReplicaCount(graph))
	for _, name := range replicas {
		if b := v.byName[name]; b != nil && b.eligible(graph) {
			eligible = append(eligible, b)
		}
	}
	return replicas, eligible
}

// pick chooses among eligible replicas with power-of-two-choices: two
// distinct random candidates, the one with fewer in-flight proxied requests
// wins. With one candidate there is no choice; with zero the caller sheds.
func pick(eligible []*backendState) *backendState {
	switch len(eligible) {
	case 0:
		return nil
	case 1:
		return eligible[0]
	}
	i := rand.Intn(len(eligible))
	j := rand.Intn(len(eligible) - 1)
	if j >= i {
		j++
	}
	a, b := eligible[i], eligible[j]
	if b.inflight.Load() < a.inflight.Load() {
		return b
	}
	return a
}

// tokenBucket is the retry budget: take() spends one token if the bucket,
// refilled at rate tokens/second up to burst, has one.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	rate   float64
	burst  float64
}

func (tb *tokenBucket) take() bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	now := time.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	tb.last = now
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}

// Mux returns the router's HTTP handler: the ssspd query surface proxied by
// graph, plus the router's own health/metrics/introspection endpoints.
func (rt *Router) Mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("GET /healthz", rt.instrument("healthz", false, func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, map[string]string{"status": "ok"})
	}))
	m.HandleFunc("GET /metrics", rt.instrument("metrics", false, rt.handleMetrics))
	m.HandleFunc("GET /fleet", rt.instrument("fleet", false, rt.handleFleet))
	m.HandleFunc("GET /route", rt.instrument("route", false, rt.handleRoute))
	m.HandleFunc("GET /debug/traces", rt.instrument("debug_traces", false, rt.handleDebugTraces))
	for _, ep := range []string{"sssp", "dist", "st", "table"} {
		m.HandleFunc("GET /"+ep, rt.instrument(ep, true, rt.proxyRead(ep)))
	}
	m.HandleFunc("POST /batch", rt.instrument("batch", true, rt.handleBatch))
	return m
}

// instrument wraps a handler with the router's middleware: request counting,
// latency histogram, status classing, and — for proxied query endpoints
// (traced=true) — request tracing and the per-request deadline.
func (rt *Router) instrument(name string, traced bool, h http.HandlerFunc) http.HandlerFunc {
	ep := rt.metrics.Endpoint(name)
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		ep.InFlight.Inc()
		defer ep.InFlight.Dec()
		rw := &statusWriter{ResponseWriter: w}
		var tr *trace.Trace
		if traced {
			tr = rt.tracer.StartRequest(r.Header.Get("X-Trace-Id"), name)
			if tr != nil {
				rw.Header().Set("X-Trace-Id", tr.ID())
				r = r.WithContext(trace.NewContext(r.Context(), tr))
			}
			if rt.cfg.Timeout > 0 {
				ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.Timeout)
				defer cancel()
				r = r.WithContext(ctx)
			}
		}
		h(rw, r)
		d := time.Since(start)
		ep.Requests.Inc()
		ep.Latency.Observe(d)
		ep.RecordStatus(rw.Status())
		switch rw.Status() {
		case http.StatusServiceUnavailable:
			ep.Shed.Inc()
		case http.StatusGatewayTimeout:
			ep.Timeout.Inc()
		}
		rt.tracer.Finish(tr, rw.Status())
		rt.logf("router: access endpoint=%s status=%d backend=%s dur=%s",
			name, rw.Status(), rw.Header().Get("X-Backend"), d.Round(time.Microsecond))
	}
}

// graphOf resolves the request's target graph (?graph= or the default).
func (rt *Router) graphOf(r *http.Request) string {
	if g := r.URL.Query().Get("graph"); g != "" {
		return g
	}
	return rt.cfg.DefaultGraph
}

// attempt sends one proxied request to a backend and returns the backend's
// response (body unread). The span (backend_wait for first attempts, retry
// for second ones) records the backend identity and outcome.
func (rt *Router) attempt(r *http.Request, b *backendState, spanName string, body []byte) (*http.Response, error) {
	tr := trace.FromContext(r.Context())
	sp := tr.StartSpan(spanName)
	sp.SetAttr("backend", b.name)
	tr.SetBackend(b.name)
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	var rd io.Reader
	if body != nil {
		rd = strings.NewReader(string(body))
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, b.url+r.URL.Path+"?"+r.URL.RawQuery, rd)
	if err != nil {
		sp.SetAttr("error", err.Error())
		sp.End()
		return nil, err
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	if id := tr.ID(); id != "" {
		req.Header.Set("X-Trace-Id", id)
	} else if id := r.Header.Get("X-Trace-Id"); id != "" {
		req.Header.Set("X-Trace-Id", id)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.counters.C(cProxyErrors).Inc()
		sp.SetAttr("error", err.Error())
		sp.End()
		return nil, err
	}
	sp.SetAttr("status", resp.StatusCode)
	sp.End()
	return resp, nil
}

// retryable reports whether an attempt's outcome may be retried on a
// different replica: transport failures and backend-side unavailability.
// 504 is excluded — the deadline is already spent, a second attempt would
// just spend it again.
func retryable(resp *http.Response, err error) bool {
	if err != nil {
		return true
	}
	switch resp.StatusCode {
	case http.StatusInternalServerError, http.StatusBadGateway, http.StatusServiceUnavailable:
		return true
	}
	return false
}

// retryAfterOf extracts a backend 503's Retry-After in seconds (1 when
// absent or unparseable, so the router never propagates a blank header).
func retryAfterOf(resp *http.Response) int {
	if resp == nil {
		return 1
	}
	if n, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && n >= 1 {
		return n
	}
	return 1
}

// proxyRead builds the handler for one idempotent GET query endpoint: route
// by graph, pick a replica (power-of-two-choices), proxy, and retry once on
// a different replica when the attempt fails and the budget allows.
func (rt *Router) proxyRead(endpoint string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		graph := rt.graphOf(r)
		if graph == "" {
			httpError(w, http.StatusBadRequest, "parameter \"graph\" required (the router has no default graph)")
			return
		}
		eligible, ok := rt.routeSpan(r, graph)
		if !ok {
			rt.shedNoReplica(w, graph)
			return
		}
		first := pick(eligible)
		resp, err := rt.attempt(r, first, "backend_wait", nil)
		maxRA := 0
		if err == nil && resp.StatusCode == http.StatusServiceUnavailable {
			maxRA = retryAfterOf(resp)
		}
		if retryable(resp, err) && r.Context().Err() == nil {
			if second := rt.retryTarget(eligible, first); second != nil {
				if resp != nil {
					drain(resp)
				}
				retryResp, retryErr := rt.retryOn(r, second)
				if retryErr == nil {
					if retryResp.StatusCode < 500 {
						rt.counters.C(cRetrySuccess).Inc()
					}
					if retryResp.StatusCode == http.StatusServiceUnavailable {
						if ra := retryAfterOf(retryResp); ra > maxRA {
							maxRA = ra
						}
						// Every replica we reached is shedding: the graph is
						// overloaded tier-wide, tell the client the longest
						// back-off any replica asked for.
						rt.counters.C(cAllShedding).Inc()
					}
					rt.writeProxied(w, retryResp, second.name, maxRA)
					return
				}
				resp, err = nil, retryErr
			}
		}
		if err != nil {
			httpError(w, http.StatusBadGateway, fmt.Sprintf("backend %s: %v", first.name, err))
			return
		}
		rt.writeProxied(w, resp, first.name, maxRA)
	}
}

// routeSpan resolves the replica set under a "route" span. ok is false when
// no replica is eligible.
func (rt *Router) routeSpan(r *http.Request, graph string) ([]*backendState, bool) {
	tr := trace.FromContext(r.Context())
	sp := tr.StartSpan("route")
	replicas, eligible := rt.replicasFor(graph)
	tr.SetGraph(graph)
	sp.SetAttr("graph", graph)
	sp.SetAttr("replicas", len(replicas))
	sp.SetAttr("eligible", len(eligible))
	sp.End()
	return eligible, len(eligible) > 0
}

// retryTarget picks the second-attempt replica: the best of the eligible set
// excluding the first attempt, if the retry policy and budget allow.
func (rt *Router) retryTarget(eligible []*backendState, first *backendState) *backendState {
	if !rt.cfg.Retry || len(eligible) < 2 {
		return nil
	}
	if !rt.retryTB.take() {
		rt.counters.C(cRetryBudgetSpent).Inc()
		return nil
	}
	rest := make([]*backendState, 0, len(eligible)-1)
	for _, b := range eligible {
		if b != first {
			rest = append(rest, b)
		}
	}
	return pick(rest)
}

// retryOn waits the backoff (clipped to the deadline) and re-attempts on b.
func (rt *Router) retryOn(r *http.Request, b *backendState) (*http.Response, error) {
	rt.counters.C(cRetries).Inc()
	backoff := rt.cfg.RetryBackoff
	if dl, ok := r.Context().Deadline(); ok {
		if rem := time.Until(dl) / 2; rem < backoff {
			backoff = rem
		}
	}
	if backoff > 0 {
		select {
		case <-time.After(backoff):
		case <-r.Context().Done():
			return nil, r.Context().Err()
		}
	}
	return rt.attempt(r, b, "retry", nil)
}

// shedNoReplica answers a request whose graph has no eligible replica: 503
// with a Retry-After covering one health interval, since that is how long a
// recovering backend takes to come back into the ring.
func (rt *Router) shedNoReplica(w http.ResponseWriter, graph string) {
	rt.counters.C(cNoReplica).Inc()
	ra := int(rt.cfg.HealthInterval.Seconds() + 1)
	w.Header().Set("Retry-After", strconv.Itoa(ra))
	httpError(w, http.StatusServiceUnavailable,
		fmt.Sprintf("no healthy replica for graph %q", graph))
}

// writeProxied copies a backend response to the client: status, content
// type, backend identity, and — for 503s — a Retry-After that is the maximum
// any contacted replica asked for (never blank).
func (rt *Router) writeProxied(w http.ResponseWriter, resp *http.Response, backend string, maxRA int) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if resp.StatusCode == http.StatusServiceUnavailable {
		if ra := retryAfterOf(resp); ra > maxRA {
			maxRA = ra
		}
		w.Header().Set("Retry-After", strconv.Itoa(maxRA))
	} else if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Backend", backend)
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
	rt.counters.C(cRouted).Inc()
}

// drain discards a response we are abandoning so its connection can be
// reused.
func drain(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 64<<10))
	resp.Body.Close()
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	fv := rt.view.Load()
	healthy := 0
	views := make([]BackendHealth, 0, len(fv.backends))
	for _, b := range fv.backends {
		v := b.snapshot()
		if v.Healthy {
			healthy++
		}
		views = append(views, v)
	}
	writeJSON(w, map[string]any{
		"uptime_seconds": rt.metrics.UptimeSeconds(),
		"fleet": map[string]any{
			"backends":         len(fv.backends),
			"healthy":          healthy,
			"vnodes":           fv.table.vnodes(),
			"replicas_default": fv.table.ReplicaCount(""),
		},
		"endpoints": rt.metrics.Snapshot(),
		"router":    rt.counters.Snapshot(),
		"backends":  views,
		"tracing":   rt.tracer.StatsSnapshot(),
		"runtime":   obs.ReadRuntimeStats(),
	})
}

func (rt *Router) handleFleet(w http.ResponseWriter, r *http.Request) {
	fv := rt.view.Load()
	views := make([]BackendHealth, 0, len(fv.backends))
	for _, b := range fv.backends {
		views = append(views, b.snapshot())
	}
	writeJSON(w, map[string]any{
		"backends":         views,
		"vnodes":           fv.table.vnodes(),
		"replicas_default": fv.table.ReplicaCount(""),
		"default_graph":    rt.cfg.DefaultGraph,
	})
}

// handleRoute answers ?graph= with the ring's replica set and the currently
// eligible subset — the observable a failover test (or an operator) watches
// to see a drain propagate through the health scrape.
func (rt *Router) handleRoute(w http.ResponseWriter, r *http.Request) {
	graph := rt.graphOf(r)
	if graph == "" {
		httpError(w, http.StatusBadRequest, "parameter \"graph\" required")
		return
	}
	replicas, eligible := rt.replicasFor(graph)
	names := make([]string, len(eligible))
	for i, b := range eligible {
		names[i] = b.name
	}
	writeJSON(w, map[string]any{
		"graph":    graph,
		"replicas": replicas,
		"eligible": names,
	})
}

// handleDebugTraces mirrors ssspd's /debug/traces for the router's own
// spans, with an extra ?backend= filter on the backend the request was
// routed to.
func (rt *Router) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	f := trace.Filter{Graph: q.Get("graph"), Backend: q.Get("backend"), Limit: 50}
	if raw := q.Get("min_ms"); raw != "" {
		ms, err := strconv.ParseFloat(raw, 64)
		if err != nil || ms < 0 {
			httpError(w, http.StatusBadRequest, "min_ms must be a non-negative number of milliseconds")
			return
		}
		f.MinDur = time.Duration(ms * float64(time.Millisecond))
	}
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "limit must be a positive integer")
			return
		}
		f.Limit = n
	}
	writeJSON(w, map[string]any{
		"enabled": rt.tracer.Enabled(),
		"held":    rt.tracer.Retained(),
		"traces":  rt.tracer.Traces(f),
	})
}

// statusWriter captures the status code of a response.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Status() int {
	if w.status == 0 {
		return http.StatusOK
	}
	return w.status
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
