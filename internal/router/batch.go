package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/trace"
)

// Batch fan-out sizing. A batch is split across a graph's replicas only when
// every shard would still carry at least minShardItems items — splitting a
// 4-item batch across 2 backends buys nothing and doubles per-request
// overhead.
const (
	minShardItems = 8
	maxBatchBody  = 1 << 20
	maxBatchItems = 4096
)

// batchEnvelope mirrors ssspd's batch request shape with the items kept
// opaque: the router splits and recombines, it never interprets a query.
type batchEnvelope struct {
	Queries []json.RawMessage `json:"queries"`
	Solver  string            `json:"solver,omitempty"`
	Full    bool              `json:"full,omitempty"`
}

// batchResults mirrors ssspd's batch response shape, items opaque.
type batchResults struct {
	Results []json.RawMessage `json:"results"`
}

// handleBatch proxies POST /batch. Small batches go to one replica (with the
// usual one-retry policy); large ones fan out across the graph's eligible
// replicas — item i goes to shard i mod S, so recombination is positional and
// the client sees results in its own order. A failed shard fails only its own
// items: each gets a per-item {"error","status"} placeholder, matching
// ssspd's own partial-batch semantics.
func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	graph := rt.graphOf(r)
	if graph == "" {
		httpError(w, http.StatusBadRequest, "parameter \"graph\" required (the router has no default graph)")
		return
	}
	body, env, err := readBatch(w, r)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	eligible, ok := rt.routeSpan(r, graph)
	if !ok {
		rt.shedNoReplica(w, graph)
		return
	}
	shards := len(eligible)
	if max := len(env.Queries) / minShardItems; shards > max {
		shards = max
	}
	if shards < 2 {
		rt.batchSingle(w, r, eligible, body)
		return
	}
	rt.batchFanout(w, r, eligible, env, shards)
}

// readBatch decodes the request body far enough to know the item count,
// keeping items opaque. Size and item-count limits mirror ssspd's.
func readBatch(w http.ResponseWriter, r *http.Request) ([]byte, *batchEnvelope, error) {
	defer r.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, maxBatchBody)); err != nil {
		return nil, nil, fmt.Errorf("reading body: %v", err)
	}
	var env batchEnvelope
	dec := json.NewDecoder(bytes.NewReader(buf.Bytes()))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return nil, nil, fmt.Errorf("decoding batch: %v", err)
	}
	if len(env.Queries) == 0 {
		return nil, nil, fmt.Errorf("batch has no queries")
	}
	if len(env.Queries) > maxBatchItems {
		return nil, nil, fmt.Errorf("batch has %d queries, limit %d", len(env.Queries), maxBatchItems)
	}
	return buf.Bytes(), &env, nil
}

// batchSingle sends the whole batch to one replica, retrying once on another
// under the same policy as single reads.
func (rt *Router) batchSingle(w http.ResponseWriter, r *http.Request, eligible []*backendState, body []byte) {
	first := pick(eligible)
	resp, err := rt.attempt(r, first, "backend_wait", body)
	maxRA := 0
	if err == nil && resp.StatusCode == http.StatusServiceUnavailable {
		maxRA = retryAfterOf(resp)
	}
	if retryable(resp, err) && r.Context().Err() == nil {
		if second := rt.retryTarget(eligible, first); second != nil {
			if resp != nil {
				drain(resp)
			}
			rt.counters.C(cRetries).Inc()
			retryResp, retryErr := rt.attempt(r, second, "retry", body)
			if retryErr == nil {
				if retryResp.StatusCode < 500 {
					rt.counters.C(cRetrySuccess).Inc()
				}
				if retryResp.StatusCode == http.StatusServiceUnavailable {
					if ra := retryAfterOf(retryResp); ra > maxRA {
						maxRA = ra
					}
					rt.counters.C(cAllShedding).Inc()
				}
				rt.writeProxied(w, retryResp, second.name, maxRA)
				return
			}
			resp, err = nil, retryErr
		}
	}
	if err != nil {
		httpError(w, http.StatusBadGateway, fmt.Sprintf("backend %s: %v", first.name, err))
		return
	}
	rt.writeProxied(w, resp, first.name, maxRA)
}

// shardOutcome is one sub-batch's result: either results (len == item count)
// or an error every item in the shard inherits.
type shardOutcome struct {
	backend string
	results []json.RawMessage
	errMsg  string
	status  int // per-item status for errMsg; 0 when results is set
	shed    int // Retry-After seconds when the shard's replicas shed
}

// batchFanout splits the batch round-robin across shards replicas, sends the
// sub-batches concurrently under a fanout_join span, and recombines per-item
// results in the client's original order.
func (rt *Router) batchFanout(w http.ResponseWriter, r *http.Request, eligible []*backendState, env *batchEnvelope, shards int) {
	rt.counters.C(cFanouts).Inc()
	tr := trace.FromContext(r.Context())
	join := tr.StartSpan("fanout_join")
	join.SetAttr("shards", shards)
	join.SetAttr("items", len(env.Queries))

	subs := make([]*batchEnvelope, shards)
	for s := range subs {
		subs[s] = &batchEnvelope{Solver: env.Solver, Full: env.Full}
	}
	for i, q := range env.Queries {
		s := i % shards
		subs[s].Queries = append(subs[s].Queries, q)
	}

	outcomes := make([]shardOutcome, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			outcomes[s] = rt.sendShard(r, eligible, eligible[s%len(eligible)], subs[s])
		}(s)
	}
	wg.Wait()
	join.End()

	// If every shard shed, the graph is overloaded tier-wide: shed the whole
	// batch with the longest back-off any replica asked for.
	allShed, maxRA := true, 0
	backends := make([]string, 0, shards)
	for _, o := range outcomes {
		if o.shed == 0 {
			allShed = false
		} else if o.shed > maxRA {
			maxRA = o.shed
		}
		backends = append(backends, o.backend)
	}
	if allShed {
		rt.counters.C(cAllShedding).Inc()
		w.Header().Set("Retry-After", strconv.Itoa(maxRA))
		httpError(w, http.StatusServiceUnavailable, "all replicas shedding")
		return
	}

	out := make([]json.RawMessage, len(env.Queries))
	for i := range env.Queries {
		o := &outcomes[i%shards]
		if o.results != nil {
			out[i] = o.results[i/shards]
			continue
		}
		rt.counters.C(cFanoutItemErrors).Inc()
		msg, _ := json.Marshal(map[string]any{"error": o.errMsg, "status": o.status})
		out[i] = msg
	}
	w.Header().Set("X-Backend", joinNames(backends))
	writeJSON(w, batchResults{Results: out})
	rt.counters.C(cRouted).Inc()
}

// sendShard sends one sub-batch to its replica, retrying once on a different
// one under the budget. Whatever happens is folded into a shardOutcome — a
// shard never fails the whole batch.
func (rt *Router) sendShard(r *http.Request, eligible []*backendState, first *backendState, sub *batchEnvelope) shardOutcome {
	body, err := json.Marshal(sub)
	if err != nil {
		return shardOutcome{backend: first.name, errMsg: err.Error(), status: http.StatusInternalServerError}
	}
	rt.counters.C(cFanoutSubrequests).Inc()
	resp, err := rt.attempt(r, first, "backend_wait", body)
	out := rt.shardOutcomeOf(first, resp, err, len(sub.Queries))
	if out.errMsg != "" && retryable(resp, err) && r.Context().Err() == nil {
		if second := rt.retryTarget(eligible, first); second != nil {
			rt.counters.C(cRetries).Inc()
			rt.counters.C(cFanoutSubrequests).Inc()
			resp2, err2 := rt.attempt(r, second, "retry", body)
			out2 := rt.shardOutcomeOf(second, resp2, err2, len(sub.Queries))
			if out2.errMsg == "" {
				rt.counters.C(cRetrySuccess).Inc()
				return out2
			}
			if out2.shed > out.shed {
				out.shed = out2.shed
			}
			out.errMsg, out.status, out.backend = out2.errMsg, out2.status, out2.backend
		}
	}
	return out
}

// shardOutcomeOf folds one sub-request attempt into a shardOutcome: decode on
// 200 (length-checked), per-item error placeholders otherwise.
func (rt *Router) shardOutcomeOf(b *backendState, resp *http.Response, err error, want int) shardOutcome {
	o := shardOutcome{backend: b.name}
	if err != nil {
		o.errMsg, o.status = fmt.Sprintf("backend %s: %v", b.name, err), http.StatusBadGateway
		return o
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		o.errMsg = fmt.Sprintf("backend %s: status %d", b.name, resp.StatusCode)
		o.status = resp.StatusCode
		if resp.StatusCode == http.StatusServiceUnavailable {
			o.shed = retryAfterOf(resp)
		}
		return o
	}
	var br batchResults
	if derr := json.NewDecoder(resp.Body).Decode(&br); derr != nil {
		o.errMsg, o.status = fmt.Sprintf("backend %s: decoding results: %v", b.name, derr), http.StatusBadGateway
		return o
	}
	if len(br.Results) != want {
		o.errMsg = fmt.Sprintf("backend %s: %d results for %d queries", b.name, len(br.Results), want)
		o.status = http.StatusBadGateway
		return o
	}
	o.results = br.Results
	return o
}

func joinNames(names []string) string {
	var b bytes.Buffer
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
	}
	return b.String()
}
