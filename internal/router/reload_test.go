package router

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
)

// tableFor builds a validated table naming the given fakes.
func tableFor(replicas int, fakes ...*fakeBackend) *Table {
	tbl := &Table{Version: 1, Replicas: replicas}
	for _, fb := range fakes {
		tbl.Backends = append(tbl.Backends, Backend{Name: fb.name, URL: fb.srv.URL})
	}
	return tbl
}

// The hot-reload contract: a request that is inside a backend when the table
// is swapped — even one that removes that backend from the fleet — completes
// normally, because the request holds the view (and backend state) it started
// with.
func TestReloadPreservesInFlightRequests(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	a := newFakeBackend(t, "a", "g")
	b := newFakeBackend(t, "b", "g")
	a.setQuery(func(w http.ResponseWriter, r *http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		json.NewEncoder(w).Encode(map[string]string{"backend": "a"})
	})
	rt := newTestRouter(t, Config{}, a)
	mux := rt.Mux()

	done := make(chan *httptest.ResponseRecorder, 1)
	go func() { done <- get(t, mux, "/dist?graph=g&s=0&t=1") }()
	<-entered

	// Swap a out for b while the request is inside a.
	if err := rt.Reload(tableFor(1, b)); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if rt.Counter(cTableReloads) != 1 {
		t.Fatalf("table_reloads = %d, want 1", rt.Counter(cTableReloads))
	}

	// New requests route to b immediately: Reload primed its health
	// synchronously, no CheckNow needed.
	if w := get(t, mux, "/dist?graph=g&s=0&t=1"); w.Code != http.StatusOK || w.Header().Get("X-Backend") != "b" {
		t.Fatalf("post-reload request: status %d backend %q, want 200 from b", w.Code, w.Header().Get("X-Backend"))
	}

	// The request that was in flight across the swap still completes on a.
	close(release)
	w := <-done
	if w.Code != http.StatusOK || w.Header().Get("X-Backend") != "a" {
		t.Fatalf("in-flight request across reload: status %d backend %q, want 200 from a", w.Code, w.Header().Get("X-Backend"))
	}
}

// Backends that persist across a reload keep their scraped health state — the
// swap must not blank the fleet into an unknown-health brown-out.
func TestReloadCarriesBackendStateOver(t *testing.T) {
	a := newFakeBackend(t, "a", "g")
	b := newFakeBackend(t, "b", "g")
	rt := newTestRouter(t, Config{}, a, b)

	// A reload of an unchanged fleet must not probe anything: zero probes
	// plus both backends still eligible proves the state objects were carried
	// over rather than rebuilt fresh (fresh states start unknown and would
	// have needed priming).
	probes := rt.Counter(cHealthProbes)
	if err := rt.Reload(tableFor(2, a, b)); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if got := rt.Counter(cHealthProbes); got != probes {
		t.Fatalf("reload of an unchanged fleet ran %d probes, want 0 (state carried over)", got-probes)
	}
	_, eligible := rt.replicasFor("g")
	if len(eligible) != 2 {
		t.Fatalf("eligible after same-fleet reload = %d backends, want 2", len(eligible))
	}

	// A reload that changes a backend's URL rebuilds that state from scratch
	// and primes it; pointing "b" at a dead address must leave only a.
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	tbl := tableFor(2, a)
	tbl.Backends = append(tbl.Backends, Backend{Name: "b", URL: dead.URL})
	if err := rt.Reload(tbl); err != nil {
		t.Fatalf("Reload: %v", err)
	}
	if got := rt.Counter(cHealthProbes); got != probes+1 {
		t.Fatalf("reload with one rebuilt backend ran %d probes, want 1", got-probes)
	}
	_, eligible = rt.replicasFor("g")
	if len(eligible) != 1 || eligible[0].name != "a" {
		t.Fatalf("eligible after URL change = %v, want just a", eligible)
	}
}

// A table that fails validation is rejected outright: the current view keeps
// serving and no counters move.
func TestReloadRejectsInvalidTable(t *testing.T) {
	a := newFakeBackend(t, "a", "g")
	rt := newTestRouter(t, Config{}, a)
	if err := rt.Reload(&Table{Version: 7}); err == nil {
		t.Fatal("Reload accepted an invalid table")
	}
	if err := rt.Reload(nil); err == nil {
		t.Fatal("Reload accepted a nil table")
	}
	if rt.Counter(cTableReloads) != 0 {
		t.Fatalf("table_reloads = %d after rejected reloads, want 0", rt.Counter(cTableReloads))
	}
	if w := get(t, rt.Mux(), "/dist?graph=g&s=0&t=1"); w.Code != http.StatusOK {
		t.Fatalf("request after rejected reload: %d, want 200", w.Code)
	}
}

// Reload under live traffic: queries hammer the router while the fleet
// composition flips back and forth; every response must be a 200 (the
// request's view is coherent) and /metrics must never observe a torn fleet.
func TestReloadUnderConcurrentTraffic(t *testing.T) {
	a := newFakeBackend(t, "a", "g")
	b := newFakeBackend(t, "b", "g")
	rt := newTestRouter(t, Config{}, a, b)
	mux := rt.Mux()

	stop := make(chan struct{})
	errc := make(chan error, 4)
	for i := 0; i < 4; i++ {
		go func() {
			for {
				select {
				case <-stop:
					errc <- nil
					return
				default:
				}
				w := httptest.NewRecorder()
				mux.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/dist?graph=g&s=0&t=1", nil))
				if w.Code != http.StatusOK {
					errc <- nil
					t.Errorf("query during reload churn: status %d: %s", w.Code, w.Body.String())
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		var tbl *Table
		if i%2 == 0 {
			tbl = tableFor(1, a)
		} else {
			tbl = tableFor(2, a, b)
		}
		if err := rt.Reload(tbl); err != nil {
			t.Fatalf("reload %d: %v", i, err)
		}
	}
	close(stop)
	for i := 0; i < 4; i++ {
		<-errc
	}
	if got := rt.Counter(cTableReloads); got != 20 {
		t.Fatalf("table_reloads = %d, want 20", got)
	}
}
