package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"os"
)

// Limits on what a routing table may declare. They bound what a hostile or
// corrupted table file can make the router allocate, and double as sanity
// rails for hand-written tables.
const (
	// MaxBackends caps the fleet size one table may name.
	MaxBackends = 128
	// MaxWeight caps one backend's ring weight.
	MaxWeight = 64
	// MaxVNodes caps virtual nodes per unit of weight.
	MaxVNodes = 512
	// MaxGraphPolicies caps per-graph replication overrides.
	MaxGraphPolicies = 4096
	// DefaultVNodes is the virtual-node count per unit weight when the table
	// does not set one. 64 points per backend keeps the remap fraction on
	// membership change close to the ideal 1/N without a large sort.
	DefaultVNodes = 64
	// maxNameLen caps backend and graph name lengths.
	maxNameLen = 128
	// maxTableBytes caps one table file.
	maxTableBytes = 1 << 20
)

// Backend is one ssspd instance of the fleet.
type Backend struct {
	// Name identifies the backend in metrics, traces, and the X-Backend
	// response header. Names must be unique within a table.
	Name string `json:"name"`
	// URL is the backend's base URL, e.g. "http://10.0.0.7:8080".
	URL string `json:"url"`
	// Weight scales the backend's share of the ring (default 1): a weight-2
	// backend owns roughly twice the graphs of a weight-1 one.
	Weight int `json:"weight,omitempty"`
}

// GraphPolicy is a per-graph routing override.
type GraphPolicy struct {
	// Replicas is how many backends serve this graph (clamped to the fleet
	// size at assignment time). Hot graphs set this above the table default
	// for read throughput.
	Replicas int `json:"replicas"`
}

// Table is the router's configuration: the fleet, the ring geometry, and
// per-graph replication. The on-disk form is strict JSON (unknown fields are
// errors, so a typo'd knob fails loudly instead of silently defaulting).
type Table struct {
	// Version is the format version; currently always 1.
	Version int `json:"v"`
	// VNodes is the virtual-node count per unit of backend weight
	// (default DefaultVNodes).
	VNodes int `json:"vnodes,omitempty"`
	// Replicas is the default per-graph replication factor (default 1).
	Replicas int `json:"replicas,omitempty"`
	// Backends is the fleet (required, at least one entry).
	Backends []Backend `json:"backends"`
	// Graphs holds per-graph overrides, keyed by graph name.
	Graphs map[string]GraphPolicy `json:"graphs,omitempty"`
}

// nameOK admits the names that can travel in a URL query string, a JSON
// metrics key, and an X-Backend header without escaping surprises — the same
// charset internal/loadgen admits for graph names.
func nameOK(s string) bool {
	if len(s) == 0 || len(s) > maxNameLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// Validate checks the table against the format's limits. A valid table is
// one BuildRing accepts; every reader path validates before returning.
func (t *Table) Validate() error {
	if t.Version != 1 {
		return fmt.Errorf("router: unsupported table version %d", t.Version)
	}
	if t.VNodes < 0 || t.VNodes > MaxVNodes {
		return fmt.Errorf("router: vnodes %d out of range [0,%d]", t.VNodes, MaxVNodes)
	}
	if len(t.Backends) == 0 {
		return fmt.Errorf("router: table names no backends")
	}
	if len(t.Backends) > MaxBackends {
		return fmt.Errorf("router: %d backends exceeds the %d maximum", len(t.Backends), MaxBackends)
	}
	if t.Replicas < 0 || t.Replicas > MaxBackends {
		return fmt.Errorf("router: replicas %d out of range [0,%d]", t.Replicas, MaxBackends)
	}
	seen := make(map[string]bool, len(t.Backends))
	for i, b := range t.Backends {
		if !nameOK(b.Name) {
			return fmt.Errorf("router: backend %d has bad name %q", i, b.Name)
		}
		if seen[b.Name] {
			return fmt.Errorf("router: duplicate backend name %q", b.Name)
		}
		seen[b.Name] = true
		u, err := url.Parse(b.URL)
		if err != nil {
			return fmt.Errorf("router: backend %q url: %v", b.Name, err)
		}
		if (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("router: backend %q url %q must be http(s)://host[:port]", b.Name, b.URL)
		}
		if b.Weight < 0 || b.Weight > MaxWeight {
			return fmt.Errorf("router: backend %q weight %d out of range [0,%d]", b.Name, b.Weight, MaxWeight)
		}
	}
	if len(t.Graphs) > MaxGraphPolicies {
		return fmt.Errorf("router: %d graph policies exceeds the %d maximum", len(t.Graphs), MaxGraphPolicies)
	}
	for g, p := range t.Graphs {
		if !nameOK(g) {
			return fmt.Errorf("router: bad graph name %q in policy map", g)
		}
		if p.Replicas < 1 || p.Replicas > MaxBackends {
			return fmt.Errorf("router: graph %q replicas %d out of range [1,%d]", g, p.Replicas, MaxBackends)
		}
	}
	return nil
}

// ReplicaCount returns how many backends should serve graph: the per-graph
// policy if present, else the table default, clamped to [1, fleet size].
func (t *Table) ReplicaCount(graph string) int {
	r := t.Replicas
	if p, ok := t.Graphs[graph]; ok {
		r = p.Replicas
	}
	if r < 1 {
		r = 1
	}
	if r > len(t.Backends) {
		r = len(t.Backends)
	}
	return r
}

// weightOf returns a backend's effective ring weight (a zero weight means
// the default of 1, so a hand-written table can omit the field).
func weightOf(b *Backend) int {
	if b.Weight < 1 {
		return 1
	}
	return b.Weight
}

// vnodes returns the table's effective virtual-node count.
func (t *Table) vnodes() int {
	if t.VNodes < 1 {
		return DefaultVNodes
	}
	return t.VNodes
}

// ParseTable strictly decodes and validates a routing table: unknown fields
// and trailing bytes are errors.
func ParseTable(data []byte) (*Table, error) {
	if len(data) > maxTableBytes {
		return nil, fmt.Errorf("router: table exceeds %d bytes", maxTableBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var t Table
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("router: bad table: %w", err)
	}
	var trailing any
	if err := dec.Decode(&trailing); err != io.EOF {
		return nil, fmt.Errorf("router: trailing data after table JSON")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// ReadTableFile reads and validates a routing table from path.
func ReadTableFile(path string) (*Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseTable(data)
}
