package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/trace"
)

// fakeBackend is a stand-in ssspd: /metrics reporting configurable per-graph
// lifecycle states, plus query endpoints whose behavior each test scripts.
type fakeBackend struct {
	name string
	srv  *httptest.Server
	hits atomic.Int64

	mu     sync.Mutex
	states map[string]string // graph -> lifecycle state
	// query, when set, scripts every query endpoint's response. Defaults to
	// 200 {"backend": name}.
	query func(w http.ResponseWriter, r *http.Request)
}

func newFakeBackend(t *testing.T, name string, readyGraphs ...string) *fakeBackend {
	fb := &fakeBackend{name: name, states: make(map[string]string)}
	for _, g := range readyGraphs {
		fb.states[g] = "ready"
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		fb.mu.Lock()
		states := make([]map[string]string, 0, len(fb.states))
		for g, s := range fb.states {
			states = append(states, map[string]string{"name": g, "state": s})
		}
		fb.mu.Unlock()
		json.NewEncoder(w).Encode(map[string]any{
			"endpoints": map[string]any{},
			"engine":    map[string]any{},
			"catalog":   map[string]any{"graph_states": states},
		})
	})
	serve := func(w http.ResponseWriter, r *http.Request) {
		fb.hits.Add(1)
		fb.mu.Lock()
		q := fb.query
		fb.mu.Unlock()
		if q != nil {
			q(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"backend": fb.name})
	}
	for _, ep := range []string{"/sssp", "/dist", "/st", "/table"} {
		mux.HandleFunc("GET "+ep, serve)
	}
	mux.HandleFunc("POST /batch", serve)
	fb.srv = httptest.NewServer(mux)
	t.Cleanup(fb.srv.Close)
	return fb
}

func (fb *fakeBackend) setState(graph, state string) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if state == "" {
		delete(fb.states, graph)
	} else {
		fb.states[graph] = state
	}
}

func (fb *fakeBackend) setQuery(q func(w http.ResponseWriter, r *http.Request)) {
	fb.mu.Lock()
	fb.query = q
	fb.mu.Unlock()
}

// echoBatch scripts /batch to echo each query back as its own result.
func echoBatch(name string) func(w http.ResponseWriter, r *http.Request) {
	return func(w http.ResponseWriter, r *http.Request) {
		var env struct {
			Queries []json.RawMessage `json:"queries"`
			Solver  string            `json:"solver"`
			Full    bool              `json:"full"`
		}
		if err := json.NewDecoder(r.Body).Decode(&env); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results := make([]map[string]any, len(env.Queries))
		for i, q := range env.Queries {
			results[i] = map[string]any{"backend": name, "query": q}
		}
		json.NewEncoder(w).Encode(map[string]any{"results": results})
	}
}

// newTestRouter builds a router over the fakes with health driven manually
// (interval far beyond test lifetime; New primes with one synchronous round).
func newTestRouter(t *testing.T, cfg Config, fakes ...*fakeBackend) *Router {
	tbl := &Table{Version: 1, Replicas: len(fakes)}
	for _, fb := range fakes {
		tbl.Backends = append(tbl.Backends, Backend{Name: fb.name, URL: fb.srv.URL})
	}
	cfg.Table = tbl
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = time.Hour
	}
	if cfg.Trace.SampleN == 0 {
		cfg.Trace = trace.Config{SampleN: 1, RingSize: 64}
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	return rt
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, path, nil))
	return w
}

func TestRoutesOnlyToEligibleReplica(t *testing.T) {
	a := newFakeBackend(t, "a", "g")
	b := newFakeBackend(t, "b", "g")
	rt := newTestRouter(t, Config{Retry: true}, a, b)
	mux := rt.Mux()

	// Both ready: requests land somewhere, never fail.
	for i := 0; i < 20; i++ {
		if w := get(t, mux, "/dist?graph=g&s=0&t=1"); w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, w.Code, w.Body)
		}
	}

	// Drain b: within one health round it must leave g's replica set.
	b.setState("g", "draining")
	rt.CheckNow(context.Background())
	bHits := b.hits.Load()
	for i := 0; i < 30; i++ {
		w := get(t, mux, "/dist?graph=g&s=0&t=1")
		if w.Code != http.StatusOK {
			t.Fatalf("request %d after drain: status %d", i, w.Code)
		}
		if got := w.Header().Get("X-Backend"); got != "a" {
			t.Fatalf("request %d routed to %q, want a (b is draining)", i, got)
		}
	}
	if got := b.hits.Load(); got != bHits {
		t.Fatalf("draining backend took %d new requests", got-bHits)
	}

	// /route must show the shrunken eligible set while the ring keeps both.
	var route struct {
		Replicas []string `json:"replicas"`
		Eligible []string `json:"eligible"`
	}
	if err := json.Unmarshal(get(t, mux, "/route?graph=g").Body.Bytes(), &route); err != nil {
		t.Fatal(err)
	}
	if len(route.Replicas) != 2 {
		t.Fatalf("ring replicas = %v, want both backends", route.Replicas)
	}
	if len(route.Eligible) != 1 || route.Eligible[0] != "a" {
		t.Fatalf("eligible = %v, want [a]", route.Eligible)
	}
}

func TestUnhealthyBackendExcluded(t *testing.T) {
	a := newFakeBackend(t, "a", "g")
	b := newFakeBackend(t, "b", "g")
	rt := newTestRouter(t, Config{Retry: true}, a, b)
	mux := rt.Mux()

	transitions := rt.Counter(cHealthTransitions)
	b.srv.Close()
	rt.CheckNow(context.Background())
	if got := rt.Counter(cHealthTransitions); got <= transitions {
		t.Fatalf("health transitions %d, want increase after backend death", got)
	}
	for i := 0; i < 20; i++ {
		w := get(t, mux, "/sssp?graph=g&source=0")
		if w.Code != http.StatusOK || w.Header().Get("X-Backend") != "a" {
			t.Fatalf("request %d: status %d backend %q, want 200 from a", i, w.Code, w.Header().Get("X-Backend"))
		}
	}
}

func TestNoReplicaSheds503(t *testing.T) {
	a := newFakeBackend(t, "a", "g")
	rt := newTestRouter(t, Config{}, a)
	w := get(t, rt.Mux(), "/dist?graph=missing&s=0&t=1")
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	if rt.Counter(cNoReplica) == 0 {
		t.Fatal("no_replica counter not incremented")
	}
}

func TestMissingGraphParam400(t *testing.T) {
	a := newFakeBackend(t, "a", "g")
	rt := newTestRouter(t, Config{}, a)
	if w := get(t, rt.Mux(), "/dist?s=0&t=1"); w.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 without ?graph=", w.Code)
	}

	// With a default graph configured the same request routes.
	rt2 := newTestRouter(t, Config{DefaultGraph: "g"}, a)
	if w := get(t, rt2.Mux(), "/dist?s=0&t=1"); w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 via default graph", w.Code)
	}
}

func TestRetryOnOtherReplica(t *testing.T) {
	a := newFakeBackend(t, "a", "g")
	b := newFakeBackend(t, "b", "g")
	a.setQuery(func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusInternalServerError, "boom")
	})
	rt := newTestRouter(t, Config{Retry: true, RetryBudget: 1000, RetryBackoff: time.Microsecond}, a, b)
	mux := rt.Mux()
	for i := 0; i < 40; i++ {
		w := get(t, mux, "/dist?graph=g&s=0&t=1")
		if w.Code != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 (retry should mask a's 500s)", i, w.Code)
		}
		if got := w.Header().Get("X-Backend"); got != "b" {
			t.Fatalf("request %d answered by %q, want b", i, got)
		}
	}
	if rt.Counter(cRetries) == 0 || rt.Counter(cRetrySuccess) == 0 {
		t.Fatalf("retries=%d retry_success=%d, want both > 0",
			rt.Counter(cRetries), rt.Counter(cRetrySuccess))
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	fail := func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusInternalServerError, "boom")
	}
	a := newFakeBackend(t, "a", "g")
	b := newFakeBackend(t, "b", "g")
	a.setQuery(fail)
	b.setQuery(fail)
	// Budget ~0: after the initial burst of 2 tokens, failures propagate.
	rt := newTestRouter(t, Config{Retry: true, RetryBudget: 0.0001, RetryBackoff: time.Microsecond}, a, b)
	mux := rt.Mux()
	for i := 0; i < 20; i++ {
		if w := get(t, mux, "/dist?graph=g&s=0&t=1"); w.Code != http.StatusInternalServerError {
			t.Fatalf("request %d: status %d, want 500 (both replicas fail)", i, w.Code)
		}
	}
	if rt.Counter(cRetries) > 2 {
		t.Fatalf("retries=%d, want <= burst of 2 under a drained budget", rt.Counter(cRetries))
	}
	if rt.Counter(cRetryBudgetSpent) == 0 {
		t.Fatal("retry_budget_exhausted counter not incremented")
	}
}

// The satellite contract: when every replica of a graph is shedding, the
// router answers 503 carrying the MAXIMUM backend Retry-After — a client that
// obeys it will not return while any replica is still backing off.
func TestAllReplicasSheddingMaxRetryAfter(t *testing.T) {
	shed := func(ra string) func(w http.ResponseWriter, r *http.Request) {
		return func(w http.ResponseWriter, r *http.Request) {
			if ra != "" {
				w.Header().Set("Retry-After", ra)
			}
			httpError(w, http.StatusServiceUnavailable, "shedding")
		}
	}
	a := newFakeBackend(t, "a", "g")
	b := newFakeBackend(t, "b", "g")
	a.setQuery(shed("3"))
	b.setQuery(shed("7"))
	rt := newTestRouter(t, Config{Retry: true, RetryBudget: 1000, RetryBackoff: time.Microsecond}, a, b)
	mux := rt.Mux()
	for i := 0; i < 10; i++ {
		w := get(t, mux, "/dist?graph=g&s=0&t=1")
		if w.Code != http.StatusServiceUnavailable {
			t.Fatalf("status %d, want 503", w.Code)
		}
		if got := w.Header().Get("Retry-After"); got != "7" {
			t.Fatalf("Retry-After = %q, want max of replicas (7)", got)
		}
	}
	if rt.Counter(cAllShedding) == 0 {
		t.Fatal("all_shedding counter not incremented")
	}
}

// Status and header propagation for the error statuses a backend emits
// itself: 404 passes through untouched, 504 passes through without retry,
// and a 503 whose backend forgot Retry-After gains one at the router.
func TestErrorStatusPropagation(t *testing.T) {
	cases := []struct {
		name       string
		status     int
		retryAfter string // backend header
		wantRA     string // client-visible header
	}{
		{"404 passthrough", http.StatusNotFound, "", ""},
		{"504 passthrough", http.StatusGatewayTimeout, "", ""},
		{"503 keeps backend Retry-After", http.StatusServiceUnavailable, "5", "5"},
		{"503 never blank Retry-After", http.StatusServiceUnavailable, "", "1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := newFakeBackend(t, "a", "g")
			a.setQuery(func(w http.ResponseWriter, r *http.Request) {
				if tc.retryAfter != "" {
					w.Header().Set("Retry-After", tc.retryAfter)
				}
				httpError(w, tc.status, "scripted")
			})
			rt := newTestRouter(t, Config{Retry: true}, a)
			w := get(t, rt.Mux(), "/dist?graph=g&s=0&t=1")
			if w.Code != tc.status {
				t.Fatalf("status %d, want %d", w.Code, tc.status)
			}
			if got := w.Header().Get("Retry-After"); got != tc.wantRA {
				t.Fatalf("Retry-After = %q, want %q", got, tc.wantRA)
			}
			if ct := w.Header().Get("Content-Type"); ct != "application/json" {
				t.Fatalf("Content-Type = %q, want backend's application/json", ct)
			}
			var body struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body.Error != "scripted" {
				t.Fatalf("body %q did not pass through (err %v)", w.Body, err)
			}
			if tc.status == http.StatusGatewayTimeout && rt.Counter(cRetries) != 0 {
				t.Fatal("504 was retried; the deadline is already spent")
			}
		})
	}
}

func TestBatchFanoutRecombinesInOrder(t *testing.T) {
	a := newFakeBackend(t, "a", "g")
	b := newFakeBackend(t, "b", "g")
	a.setQuery(echoBatch("a"))
	b.setQuery(echoBatch("b"))
	rt := newTestRouter(t, Config{Retry: true}, a, b)

	const items = 32
	var env struct {
		Queries []map[string]int `json:"queries"`
	}
	for i := 0; i < items; i++ {
		env.Queries = append(env.Queries, map[string]int{"source": i})
	}
	body, _ := json.Marshal(env)
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodPost, "/batch?graph=g", bytes.NewReader(body))
	rt.Mux().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var out struct {
		Results []struct {
			Backend string         `json:"backend"`
			Query   map[string]int `json:"query"`
		} `json:"results"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Results) != items {
		t.Fatalf("%d results, want %d", len(out.Results), items)
	}
	used := map[string]int{}
	for i, res := range out.Results {
		if res.Query["source"] != i {
			t.Fatalf("result %d echoes query %v; recombination broke order", i, res.Query)
		}
		used[res.Backend]++
	}
	if len(used) != 2 {
		t.Fatalf("fan-out used backends %v, want both", used)
	}
	if rt.Counter(cFanouts) != 1 || rt.Counter(cFanoutSubrequests) != 2 {
		t.Fatalf("fanouts=%d subrequests=%d, want 1 and 2",
			rt.Counter(cFanouts), rt.Counter(cFanoutSubrequests))
	}
	if xb := w.Header().Get("X-Backend"); xb != "a,b" && xb != "b,a" {
		t.Fatalf("X-Backend = %q, want both shard backends", xb)
	}
}

func TestBatchSmallStaysSingle(t *testing.T) {
	a := newFakeBackend(t, "a", "g")
	b := newFakeBackend(t, "b", "g")
	a.setQuery(echoBatch("a"))
	b.setQuery(echoBatch("b"))
	rt := newTestRouter(t, Config{}, a, b)
	body := []byte(`{"queries": [{"source": 1}, {"source": 2}]}`)
	w := httptest.NewRecorder()
	rt.Mux().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/batch?graph=g", bytes.NewReader(body)))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if rt.Counter(cFanouts) != 0 {
		t.Fatal("a 2-item batch fanned out; splitting tiny batches wastes round trips")
	}
}

// A failed shard fails only its own items: the batch still answers 200 and
// the failed shard's items carry per-item error placeholders in place.
func TestBatchShardFailureIsPartial(t *testing.T) {
	a := newFakeBackend(t, "a", "g")
	b := newFakeBackend(t, "b", "g")
	a.setQuery(echoBatch("a"))
	b.setQuery(func(w http.ResponseWriter, r *http.Request) {
		httpError(w, http.StatusInternalServerError, "shard down")
	})
	rt := newTestRouter(t, Config{}, a, b) // no retry: the failure must surface
	const items = 32
	var env struct {
		Queries []map[string]int `json:"queries"`
	}
	for i := 0; i < items; i++ {
		env.Queries = append(env.Queries, map[string]int{"source": i})
	}
	body, _ := json.Marshal(env)
	w := httptest.NewRecorder()
	rt.Mux().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/batch?graph=g", bytes.NewReader(body)))
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 with partial results", w.Code)
	}
	var out struct {
		Results []struct {
			Backend string `json:"backend"`
			Error   string `json:"error"`
			Status  int    `json:"status"`
		} `json:"results"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	okItems, errItems := 0, 0
	for i, res := range out.Results {
		switch {
		case res.Backend == "a" && res.Error == "":
			okItems++
		case res.Error != "" && res.Status == http.StatusInternalServerError:
			errItems++
		default:
			t.Fatalf("result %d: unexpected shape %+v", i, res)
		}
	}
	if okItems != items/2 || errItems != items/2 {
		t.Fatalf("ok=%d err=%d, want an even split of %d", okItems, errItems, items)
	}
	if got := rt.Counter(cFanoutItemErrors); got != int64(items/2) {
		t.Fatalf("fanout_item_errors=%d, want %d", got, items/2)
	}
}

func TestBatchAllShardsShedding(t *testing.T) {
	shed := func(ra string) func(w http.ResponseWriter, r *http.Request) {
		return func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", ra)
			httpError(w, http.StatusServiceUnavailable, "shedding")
		}
	}
	a := newFakeBackend(t, "a", "g")
	b := newFakeBackend(t, "b", "g")
	a.setQuery(shed("2"))
	b.setQuery(shed("9"))
	rt := newTestRouter(t, Config{}, a, b)
	var env struct {
		Queries []map[string]int `json:"queries"`
	}
	for i := 0; i < 32; i++ {
		env.Queries = append(env.Queries, map[string]int{"source": i})
	}
	body, _ := json.Marshal(env)
	w := httptest.NewRecorder()
	rt.Mux().ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/batch?graph=g", bytes.NewReader(body)))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 when every shard sheds", w.Code)
	}
	if got := w.Header().Get("Retry-After"); got != "9" {
		t.Fatalf("Retry-After = %q, want max across shards (9)", got)
	}
}

func TestTraceBackendAttribution(t *testing.T) {
	a := newFakeBackend(t, "a", "g")
	rt := newTestRouter(t, Config{Trace: trace.Config{SampleN: 1, RingSize: 64}}, a)
	mux := rt.Mux()
	for i := 0; i < 5; i++ {
		if w := get(t, mux, fmt.Sprintf("/dist?graph=g&s=%d&t=1", i)); w.Code != http.StatusOK {
			t.Fatalf("request %d: %d", i, w.Code)
		}
	}
	var out struct {
		Traces []struct {
			Backend string `json:"backend"`
			Spans   struct {
				Children []struct {
					Name string `json:"name"`
				} `json:"children"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.Unmarshal(get(t, mux, "/debug/traces?backend=a").Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 5 {
		t.Fatalf("%d traces for backend=a, want 5", len(out.Traces))
	}
	names := map[string]bool{}
	for _, c := range out.Traces[0].Spans.Children {
		names[c.Name] = true
	}
	if !names["route"] || !names["backend_wait"] {
		t.Fatalf("span names %v, want route and backend_wait", names)
	}
	if err := json.Unmarshal(get(t, mux, "/debug/traces?backend=nope").Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 0 {
		t.Fatalf("%d traces for unknown backend, want 0", len(out.Traces))
	}
}

func TestTraceIDPropagatesToBackend(t *testing.T) {
	var got atomic.Value
	a := newFakeBackend(t, "a", "g")
	a.setQuery(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get("X-Trace-Id"))
		json.NewEncoder(w).Encode(map[string]string{"backend": "a"})
	})
	rt := newTestRouter(t, Config{}, a)
	w := httptest.NewRecorder()
	req := httptest.NewRequest(http.MethodGet, "/dist?graph=g&s=0&t=1", nil)
	req.Header.Set("X-Trace-Id", "client-chosen-id")
	rt.Mux().ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if id, _ := got.Load().(string); id != "client-chosen-id" {
		t.Fatalf("backend saw X-Trace-Id %q, want the client's", id)
	}
	if echoed := w.Header().Get("X-Trace-Id"); echoed != "client-chosen-id" {
		t.Fatalf("router echoed X-Trace-Id %q", echoed)
	}
}

func TestMetricsAndFleetEndpoints(t *testing.T) {
	a := newFakeBackend(t, "a", "g")
	b := newFakeBackend(t, "b", "g")
	rt := newTestRouter(t, Config{}, a, b)
	mux := rt.Mux()
	get(t, mux, "/dist?graph=g&s=0&t=1")

	var metrics map[string]any
	if err := json.Unmarshal(get(t, mux, "/metrics").Body.Bytes(), &metrics); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"uptime_seconds", "fleet", "endpoints", "router", "backends", "tracing", "runtime"} {
		if _, ok := metrics[key]; !ok {
			t.Errorf("/metrics missing %q", key)
		}
	}
	fleet := metrics["fleet"].(map[string]any)
	if fleet["healthy"].(float64) != 2 {
		t.Fatalf("fleet.healthy = %v, want 2", fleet["healthy"])
	}

	var fleetDoc struct {
		Backends []BackendHealth `json:"backends"`
	}
	if err := json.Unmarshal(get(t, mux, "/fleet").Body.Bytes(), &fleetDoc); err != nil {
		t.Fatal(err)
	}
	if len(fleetDoc.Backends) != 2 {
		t.Fatalf("/fleet lists %d backends, want 2", len(fleetDoc.Backends))
	}
	for _, bh := range fleetDoc.Backends {
		if !bh.Healthy || bh.Graphs["g"] != "ready" {
			t.Fatalf("backend %s: healthy=%v graphs=%v", bh.Name, bh.Healthy, bh.Graphs)
		}
	}
}

// In-flight requests must survive a backend losing eligibility mid-request:
// the health flip only changes where NEW requests go.
func TestDrainDoesNotDropInFlight(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 1)
	a := newFakeBackend(t, "a", "g")
	a.setQuery(func(w http.ResponseWriter, r *http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		json.NewEncoder(w).Encode(map[string]string{"backend": "a"})
	})
	rt := newTestRouter(t, Config{}, a)
	mux := rt.Mux()

	done := make(chan int, 1)
	go func() {
		w := get(t, mux, "/dist?graph=g&s=0&t=1")
		done <- w.Code
	}()
	<-entered
	// The backend starts draining while the request is inside it.
	a.setState("g", "draining")
	rt.CheckNow(context.Background())
	close(release)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight request finished %d, want 200", code)
	}
	// New requests shed (the only replica is draining).
	if w := get(t, mux, "/dist?graph=g&s=0&t=1"); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request got %d, want 503", w.Code)
	}
}

func TestProxyTransportError502(t *testing.T) {
	a := newFakeBackend(t, "a", "g")
	rt := newTestRouter(t, Config{}, a)
	// Kill the backend after health priming so the scrape view is stale-healthy.
	a.srv.CloseClientConnections()
	a.srv.Close()
	w := get(t, rt.Mux(), "/dist?graph=g&s=0&t=1")
	if w.Code != http.StatusBadGateway {
		t.Fatalf("status %d, want 502 on transport error", w.Code)
	}
	var body struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body.Error == "" {
		t.Fatalf("502 body %q, want JSON error", w.Body)
	}
	if rt.Counter(cProxyErrors) == 0 {
		t.Fatal("proxy_errors counter not incremented")
	}
}

func TestPowerOfTwoChoicesPrefersIdle(t *testing.T) {
	a := &backendState{name: "busy"}
	b := &backendState{name: "idle"}
	a.inflight.Store(100)
	for i := 0; i < 50; i++ {
		if got := pick([]*backendState{a, b}); got != b {
			t.Fatalf("pick chose %s over an idle backend", got.name)
		}
	}
	if pick(nil) != nil {
		t.Fatal("pick(nil) != nil")
	}
	if pick([]*backendState{a}) != a {
		t.Fatal("pick of one candidate must return it")
	}
}

func TestBodyPassThrough(t *testing.T) {
	a := newFakeBackend(t, "a", "g")
	payload := map[string]any{"dist": 42, "reached": 7, "backend": "a"}
	a.setQuery(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(payload)
	})
	rt := newTestRouter(t, Config{}, a)
	w := get(t, rt.Mux(), "/dist?graph=g&s=0&t=1")
	raw, _ := io.ReadAll(w.Body)
	var got map[string]any
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatal(err)
	}
	if got["dist"].(float64) != 42 || got["reached"].(float64) != 7 {
		t.Fatalf("body %s did not pass through", raw)
	}
}
