package router

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func validTableJSON() string {
	return `{"v": 1, "replicas": 2,
	 "backends": [{"name": "b1", "url": "http://127.0.0.1:1", "weight": 2},
	              {"name": "b2", "url": "http://127.0.0.1:2"},
	              {"name": "b3", "url": "https://host.example:8080"}],
	 "graphs": {"hot": {"replicas": 3}, "cold": {"replicas": 1}}}`
}

func TestParseTable(t *testing.T) {
	tbl, err := ParseTable([]byte(validTableJSON()))
	if err != nil {
		t.Fatalf("ParseTable: %v", err)
	}
	if len(tbl.Backends) != 3 {
		t.Fatalf("got %d backends, want 3", len(tbl.Backends))
	}
	if got := tbl.ReplicaCount("hot"); got != 3 {
		t.Errorf("ReplicaCount(hot) = %d, want 3 (per-graph policy)", got)
	}
	if got := tbl.ReplicaCount("cold"); got != 1 {
		t.Errorf("ReplicaCount(cold) = %d, want 1", got)
	}
	if got := tbl.ReplicaCount("other"); got != 2 {
		t.Errorf("ReplicaCount(other) = %d, want table default 2", got)
	}
}

func TestParseTableRejects(t *testing.T) {
	cases := map[string]string{
		"empty":            ``,
		"not json":         `nope`,
		"trailing data":    validTableJSON() + `{"v":1}`,
		"unknown field":    `{"v": 1, "zorp": 2, "backends": [{"name": "a", "url": "http://h:1"}]}`,
		"wrong version":    `{"v": 2, "backends": [{"name": "a", "url": "http://h:1"}]}`,
		"no backends":      `{"v": 1, "backends": []}`,
		"dup name":         `{"v": 1, "backends": [{"name": "a", "url": "http://h:1"}, {"name": "a", "url": "http://h:2"}]}`,
		"bad name":         `{"v": 1, "backends": [{"name": "a b", "url": "http://h:1"}]}`,
		"bad scheme":       `{"v": 1, "backends": [{"name": "a", "url": "ftp://h:1"}]}`,
		"no host":          `{"v": 1, "backends": [{"name": "a", "url": "http://"}]}`,
		"negative weight":  `{"v": 1, "backends": [{"name": "a", "url": "http://h:1", "weight": -1}]}`,
		"huge weight":      `{"v": 1, "backends": [{"name": "a", "url": "http://h:1", "weight": 1000}]}`,
		"zero replicas":    `{"v": 1, "backends": [{"name": "a", "url": "http://h:1"}], "graphs": {"g": {"replicas": 0}}}`,
		"bad graph name":   `{"v": 1, "backends": [{"name": "a", "url": "http://h:1"}], "graphs": {"g g": {"replicas": 1}}}`,
		"vnodes too large": `{"v": 1, "vnodes": 100000, "backends": [{"name": "a", "url": "http://h:1"}]}`,
	}
	for name, body := range cases {
		if _, err := ParseTable([]byte(body)); err == nil {
			t.Errorf("%s: accepted invalid table", name)
		}
	}
}

func TestReplicaCountClampsToFleet(t *testing.T) {
	tbl, err := ParseTable([]byte(`{"v": 1, "replicas": 64,
	  "backends": [{"name": "a", "url": "http://h:1"}, {"name": "b", "url": "http://h:2"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if got := tbl.ReplicaCount("g"); got != 2 {
		t.Fatalf("ReplicaCount = %d, want clamp to fleet size 2", got)
	}
}

func TestReadTableFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.json")
	if err := os.WriteFile(path, []byte(validTableJSON()), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTableFile(path); err != nil {
		t.Fatalf("ReadTableFile: %v", err)
	}
	if _, err := ReadTableFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("ReadTableFile accepted a missing file")
	}
}

// FuzzRoutingTable feeds arbitrary bytes through the routing-table parser.
// Invariants: never panic, never accept a table that fails Validate, and any
// accepted table must yield a total, stable ring assignment — every graph
// name maps to between 1 and fleet-size distinct known backends, and an
// independently rebuilt ring maps it identically.
func FuzzRoutingTable(f *testing.F) {
	for _, seed := range tableFuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tbl, err := ParseTable(data)
		if err != nil {
			return
		}
		if err := tbl.Validate(); err != nil {
			t.Fatalf("accepted table fails validation: %v", err)
		}
		known := make(map[string]bool, len(tbl.Backends))
		for _, b := range tbl.Backends {
			known[b.Name] = true
		}
		ring := BuildRing(tbl)
		again := BuildRing(tbl)
		for _, graph := range []string{"", "a", "wl-a", "some/graph", string(data[:min(len(data), 32)])} {
			n := tbl.ReplicaCount(graph)
			got := ring.ReplicasFor(graph, n)
			if len(got) != n {
				t.Fatalf("graph %q: %d replicas, ReplicaCount says %d", graph, len(got), n)
			}
			seen := make(map[string]bool, len(got))
			for _, name := range got {
				if !known[name] {
					t.Fatalf("graph %q routed to unknown backend %q", graph, name)
				}
				if seen[name] {
					t.Fatalf("graph %q replica set repeats %q", graph, name)
				}
				seen[name] = true
			}
			got2 := again.ReplicasFor(graph, n)
			if strings.Join(got, ",") != strings.Join(got2, ",") {
				t.Fatalf("graph %q: assignment unstable across ring rebuilds: %v vs %v", graph, got, got2)
			}
		}
	})
}

// tableFuzzSeeds is the structured corpus: valid tables across the feature
// space plus near-valid mutations. The committed corpus under
// testdata/fuzz/FuzzRoutingTable is generated from this list (see
// TestSeedFuzzCorpus), so plain `go test` replays it even without -fuzz.
func tableFuzzSeeds() [][]byte {
	return [][]byte{
		[]byte(validTableJSON()),
		[]byte(`{"v": 1, "backends": [{"name": "solo", "url": "http://127.0.0.1:8080"}]}`),
		[]byte(`{"v": 1, "vnodes": 8, "replicas": 1, "backends": [
		  {"name": "a", "url": "http://h:1", "weight": 1},
		  {"name": "b", "url": "http://h:2", "weight": 64}]}`),
		[]byte(`{"v": 1, "backends": [{"name": "a", "url": "http://h:1"}], "graphs": {"g": {"replicas": 5}}}`),
		[]byte(`{"v": 2, "backends": [{"name": "a", "url": "http://h:1"}]}`),
		[]byte(`{"v": 1, "backends": []}`),
		[]byte(`{`),
		[]byte(``),
	}
}

// TestSeedFuzzCorpus regenerates the committed seed corpus. Run with
// ROUTER_WRITE_CORPUS=1 after a format change; otherwise it only checks the
// corpus directory exists.
func TestSeedFuzzCorpus(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzRoutingTable")
	if os.Getenv("ROUTER_WRITE_CORPUS") == "" {
		if _, err := os.Stat(dir); err != nil {
			t.Fatalf("seed corpus missing (regenerate with ROUTER_WRITE_CORPUS=1): %v", err)
		}
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, seed := range tableFuzzSeeds() {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(seed)) + ")\n"
		name := fmt.Sprintf("seed-%02d", i)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
