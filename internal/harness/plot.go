package harness

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Series is one named curve of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// RenderASCII draws the series as a log-y scatter plot in plain text, the
// terminal equivalent of the paper's Figures 4 and 5. Each series gets a
// distinct marker; overlapping points show the later series' marker.
func RenderASCII(title string, series []Series, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 6 {
		height = 6
	}
	markers := []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

	// Bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if s.Y[i] <= 0 {
				continue // log scale: skip non-positive
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return title + "\n(no data)\n"
	}
	logMin, logMax := math.Log(minY), math.Log(maxY)
	if logMax-logMin < 1e-9 {
		logMax = logMin + 1
	}
	if maxX-minX < 1e-9 {
		maxX = minX + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if s.Y[i] <= 0 {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := int((math.Log(s.Y[i]) - logMin) / (logMax - logMin) * float64(height-1))
			grid[height-1-row][col] = m
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	topLabel := formatTick(maxY)
	botLabel := formatTick(minY)
	labelW := len(topLabel)
	if len(botLabel) > labelW {
		labelW = len(botLabel)
	}
	for r, line := range grid {
		label := strings.Repeat(" ", labelW)
		if r == 0 {
			label = fmt.Sprintf("%*s", labelW, topLabel)
		}
		if r == height-1 {
			label = fmt.Sprintf("%*s", labelW, botLabel)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", labelW), strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%s  %-*s%s\n", strings.Repeat(" ", labelW), width-len(formatTick(maxX)), formatTick(minX), formatTick(maxX))
	for si, s := range series {
		fmt.Fprintf(&sb, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return sb.String()
}

func formatTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return strconv.FormatInt(int64(v), 10)
	}
	return fmt.Sprintf("%.3g", v)
}

// PlotFromTable converts a table with (series, x, y) columns into an ASCII
// plot. yParse extracts the numeric y value from the cell (e.g. stripping a
// trailing "s").
func PlotFromTable(t *Table, seriesCol, xCol, yCol int, width, height int) string {
	bySeries := map[string]*Series{}
	var order []string
	for _, row := range t.Rows {
		name := row[seriesCol]
		x, errX := strconv.ParseFloat(strings.TrimSuffix(row[xCol], "s"), 64)
		y, errY := strconv.ParseFloat(strings.TrimSuffix(row[yCol], "s"), 64)
		if errX != nil || errY != nil {
			continue
		}
		s, ok := bySeries[name]
		if !ok {
			s = &Series{Name: name}
			bySeries[name] = s
			order = append(order, name)
		}
		s.X = append(s.X, x)
		s.Y = append(s.Y, y)
	}
	sort.Strings(order)
	series := make([]Series, 0, len(order))
	for _, name := range order {
		series = append(series, *bySeries[name])
	}
	return RenderASCII(t.Title+" (log y)", series, width, height)
}
