package harness

import (
	"fmt"

	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/deltastep"
	"repro/internal/dijkstra"
	"repro/internal/mlb"
	"repro/internal/mta"
	"repro/internal/par"
)

// Propagation quantifies the paper's §3.2 locality claim — "minD values are
// not propagated very far up the CH in practice", the observation that makes
// lock/CAS-based minD maintenance contention-free. For every family it
// reports the mean number of CH nodes updated per successful relaxation next
// to the hierarchy height.
func (c Config) Propagation() (*Table, error) {
	t := &Table{
		Title:  "Propagation locality: CH nodes updated per relaxation (paper §3.2 claim)",
		Note:   c.scaleNote(),
		Header: []string{"Family", "Relaxations", "Hops/relax", "CH height", "minD hot span", "of total span"},
	}
	m := mta.MTA2(c.Procs)
	for _, in := range c.Families() {
		g := in.Generate()
		h := ch.BuildKruskal(g)
		rt := par.NewSim(m)
		q := core.NewSolver(h, rt).Query()
		tr := q.EnableTrace()
		q.Run(0)
		hot := rt.HotSerialization()
		span := rt.SimCost().Span
		t.AddRow(in.Name(),
			tr.Relaxations,
			fmt.Sprintf("%.2f", tr.HopsPerRelaxation()),
			h.ComputeStats().Height,
			fmt.Sprintf("%d cyc", hot),
			fmt.Sprintf("%.1f%%", 100*float64(hot)/float64(span)))
	}
	return t, nil
}

// AblationThresholds sweeps the selective-parallelization thresholds around
// the tuner's choice, addressing the paper's §5.4 remark that finer control
// of loop parallelism should pay off: the tuned thresholds should sit at or
// near the bottom of the sweep.
func (c Config) AblationThresholds() (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Ablation D: toVisit threshold sweep on %d processors [sim]", c.Procs),
		Note:   c.scaleNote(),
		Header: []string{"Thresholds (single/multi)", "Thorup [sim]", "vs tuned"},
	}
	m := mta.MTA2(c.Procs)
	in := c.Families()[0]
	g := in.Generate()
	h := ch.BuildKruskal(g)

	run := func(th par.Thresholds) int64 {
		rt := par.NewSim(m)
		core.NewSolver(h, rt, core.WithThresholds(th)).SSSP(0)
		return rt.SimCost().Span
	}
	tuned := core.TuneThresholds(m)
	base := run(tuned)
	t.AddRow(fmt.Sprintf("tuned %d/%d", tuned.Single, tuned.Multi),
		fmtSecs(m.Seconds(base)), "1.00")
	for _, th := range []par.Thresholds{
		{Single: 1, Multi: 1},               // everything multi-processor (Thorup A)
		{Single: 1, Multi: 1 << 30},         // everything single-processor parallel
		{Single: 1 << 30, Multi: 1<<31 - 1}, // everything serial
		{Single: tuned.Single / 4, Multi: tuned.Multi / 4},
		{Single: tuned.Single * 4, Multi: tuned.Multi * 4},
	} {
		span := run(th)
		t.AddRow(fmt.Sprintf("%d/%d", th.Single, th.Multi),
			fmtSecs(m.Seconds(span)),
			fmt.Sprintf("%.2f", float64(span)/float64(base)))
	}
	return t, nil
}

// Anomaly reproduces the paper's super-linear relative speedups (§5.3): the
// MTA-2 runtime starved team loops on single-processor runs, inflating every
// speedup measured relative to p=1. With the artifact emulated
// (mta.MTA2Anomalous) the measured "speedup" exceeds the honest one by the
// starvation factor, exactly the paper's "we attribute this contradiction to
// an anomaly present when running ... on a single processor".
func (c Config) Anomaly() (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Anomaly: relative speedup at %d processors with honest vs paper-style p=1 baseline", c.Procs),
		Note:   c.scaleNote(),
		Header: []string{"Family", "Honest speedup", "Anomalous speedup (paper-style)"},
	}
	in := c.Families()[0]
	g := in.Generate()
	h := ch.BuildKruskal(g)
	span := func(m mta.Machine) int64 {
		rt := par.NewSim(m)
		core.NewSolver(h, rt, core.WithThresholds(core.TuneThresholds(m))).SSSP(0)
		return rt.SimCost().Span
	}
	many := span(mta.MTA2(c.Procs))
	honest := float64(span(mta.MTA2(1))) / float64(many)
	anomalous := float64(span(mta.MTA2Anomalous(1))) / float64(many)
	t.AddRow(in.Name(), fmt.Sprintf("%.2f", honest), fmt.Sprintf("%.2f", anomalous))
	return t, nil
}

// AblationDelta sweeps delta-stepping's bucket width around the C/d
// heuristic, the sensitivity analysis of the Madduri et al. kernel the paper
// compares against: too small degenerates toward Dijkstra (many buckets, no
// parallelism), too large toward Bellman-Ford (re-relaxation).
func (c Config) AblationDelta() (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Ablation E: delta-stepping bucket width sweep on %d processors [sim]", c.Procs),
		Note:   c.scaleNote(),
		Header: []string{"Delta", "Time [sim]", "Buckets", "Phases", "Light", "Heavy", "vs heuristic"},
	}
	m := mta.MTA2(c.Procs)
	in := c.Families()[0]
	g := in.Generate()
	d0 := deltastep.DefaultDelta(g)
	run := func(delta int64) (int64, deltastep.Stats) {
		rt := par.NewSim(m)
		_, st := deltastep.Run(rt, g, 0, delta)
		return rt.SimCost().Span, st
	}
	base, _ := run(d0)
	for _, mul := range []int64{0, -16, -4, 1, 4, 16, 256} {
		delta := d0
		label := fmt.Sprintf("C/d x%d", mul)
		switch {
		case mul == 0:
			delta, label = 1, "1 (Dijkstra-like)"
		case mul < 0:
			delta = d0 / -mul
			label = fmt.Sprintf("C/d / %d", -mul)
		default:
			delta = d0 * mul
			if mul == 1 {
				label = fmt.Sprintf("C/d = %d (heuristic)", d0)
			}
		}
		if delta < 1 {
			delta = 1
		}
		span, st := run(delta)
		t.AddRow(label, fmtSecs(m.Seconds(span)), st.Buckets, st.Phases,
			st.LightRelax, st.HeavyRelax,
			fmt.Sprintf("%.2f", float64(span)/float64(base)))
	}
	return t, nil
}

// Portfolio compares every sequential solver in the repository wall-clock on
// each family: the modern-workstation view complementing Table 1 (Dijkstra
// with four queue implementations, Goldberg MLB with and without the caliber
// heuristic, and serial Thorup after CH preprocessing).
func (c Config) Portfolio() (*Table, error) {
	t := &Table{
		Title:  "Portfolio: sequential solver wall-clock comparison",
		Note:   c.scaleNote(),
		Header: []string{"Family", "Dijkstra", "4-ary", "Pairing", "MLB", "MLB-nocal", "Thorup", "(CH build)"},
	}
	for _, in := range c.Families() {
		g := in.Generate()
		var h *ch.Hierarchy
		chSec := wall(func() { h = ch.BuildKruskal(g) })
		row := []any{in.Name()}
		for _, f := range []func(){
			func() { dijkstra.SSSP(g, 0) },
			func() { dijkstra.SSSPIndexed(g, 0) },
			func() { dijkstra.SSSPPairing(g, 0) },
			func() { mlb.SSSP(g, 0) },
			func() { mlb.SSSPNoCaliber(g, 0) },
			func() { core.SerialSSSP(h, 0) },
		} {
			row = append(row, fmtSecs(wall(f)))
		}
		row = append(row, fmtSecs(chSec))
		t.AddRow(row...)
	}
	return t, nil
}
