package harness

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/ch"
	"repro/internal/core"
	"repro/internal/deltastep"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/mlb"
	"repro/internal/mta"
	"repro/internal/par"
	"repro/internal/verify"
)

// Config scales the experiments. The paper's instances have 2^25–2^26
// vertices on a 145 GB machine; the defaults here reproduce every shape at
// laptop scale. All experiments are deterministic given Seed.
type Config struct {
	// LogN is the instance scale: n = 2^LogN vertices, m = 4n edges
	// (paper: 25–26).
	LogN int
	// Procs is the simulated MTA-2 processor count for the "40 processors"
	// tables (paper: 40).
	Procs int
	// ProcSweep is the processor axis of Figure 4.
	ProcSweep []int
	// SourceCounts is the x-axis of Figure 5 (simultaneous queries).
	SourceCounts []int
	// Workers is the exec-mode worker count for wall-clock measurements.
	Workers int
	// Seed drives every generator.
	Seed uint64
	// Verify cross-checks every solver run against Dijkstra (slower).
	Verify bool
}

// DefaultConfig returns the scaled-down default setup.
func DefaultConfig() Config {
	return Config{
		LogN:         16,
		Procs:        40,
		ProcSweep:    []int{1, 2, 4, 8, 16, 27, 40},
		SourceCounts: []int{1, 2, 4, 8, 16, 30},
		Workers:      4,
		Seed:         20070326, // IPDPS 2007 opened on March 26
	}
}

// Families returns the paper's six instance descriptors (Tables 2–6) at the
// configured scale: Random and R-MAT, each with UWD C=n, PWD C=n, and UWD
// C=2^2.
func (c Config) Families() []gen.Instance {
	mk := func(cl gen.Class, d gen.WeightDist, logC int) gen.Instance {
		return gen.Instance{Class: cl, Dist: d, LogN: c.LogN, LogC: logC, Seed: c.Seed}
	}
	return []gen.Instance{
		mk(gen.Rand, gen.UWD, c.LogN),
		mk(gen.Rand, gen.PWD, c.LogN),
		mk(gen.Rand, gen.UWD, 2),
		mk(gen.RMAT, gen.UWD, c.LogN),
		mk(gen.RMAT, gen.PWD, c.LogN),
		mk(gen.RMAT, gen.UWD, 2),
	}
}

func (c Config) scaleNote() string {
	return fmt.Sprintf("n=2^%d, m=4n, seed=%d; simulated MTA-2 seconds at 220 MHz where marked [sim]", c.LogN, c.Seed)
}

// wall measures f once and returns seconds.
func wall(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

func (c Config) verifyAgainst(g *graph.Graph, got []int64, label string) error {
	if !c.Verify {
		return nil
	}
	// The linear-time certifier is as strong as re-running Dijkstra
	// (feasibility + tightness + exact zero set, see internal/verify).
	if err := verify.Distances(par.NewExec(c.Workers), g, []int32{0}, got); err != nil {
		return fmt.Errorf("%s: %w", label, err)
	}
	return nil
}

// Table1 reproduces the sequential comparison: Thorup (serial, after CH
// preprocessing) vs the DIMACS reference solver (Goldberg multi-level
// buckets) on Random-UWD instances of two sizes.
func (c Config) Table1() (*Table, error) {
	t := &Table{
		Title:  "Table 1: Thorup sequential performance versus the DIMACS reference solver",
		Note:   c.scaleNote(),
		Header: []string{"Family", "Thorup", "DIMACS(MLB)", "CH preprocessing"},
	}
	for _, logN := range []int{c.LogN - 1, c.LogN} {
		in := gen.Instance{Class: gen.Rand, Dist: gen.UWD, LogN: logN, LogC: logN, Seed: c.Seed}
		g := in.Generate()
		var h *ch.Hierarchy
		chSec := wall(func() { h = ch.BuildKruskal(g) })
		var dT, dM []int64
		thorupSec := wall(func() { dT = core.SerialSSSP(h, 0) })
		mlbSec := wall(func() { dM = mlb.SSSP(g, 0) })
		if err := c.verifyAgainst(g, dT, in.Name()+"/thorup"); err != nil {
			return nil, err
		}
		if err := c.verifyAgainst(g, dM, in.Name()+"/mlb"); err != nil {
			return nil, err
		}
		t.AddRow(in.Name(), fmtSecs(thorupSec), fmtSecs(mlbSec), fmtSecs(chSec))
	}
	return t, nil
}

// Table2 reproduces the Component Hierarchy statistics: total components,
// average children per component, and the memory of a single SSSP instance.
func (c Config) Table2() (*Table, error) {
	t := &Table{
		Title:  "Table 2: Statistics about the CH",
		Note:   c.scaleNote(),
		Header: []string{"Family", "Comp.", "Children", "Instance", "CH memory", "Graph memory"},
	}
	for _, in := range c.Families() {
		g := in.Generate()
		h := ch.BuildKruskal(g)
		st := h.ComputeStats()
		q := core.NewSolver(h, par.NewExec(1)).Query()
		t.AddRow(in.Name(),
			st.Components,
			fmt.Sprintf("%.2f", st.AvgChildren),
			fmtBytes(q.InstanceBytes()),
			fmtBytes(st.CHBytes),
			fmtBytes(g.MemoryBytes()))
	}
	return t, nil
}

// fmtSecs formats a duration in seconds with enough significant digits for
// the scaled-down instances (simulated times can be well below 10ms).
func fmtSecs(sec float64) string {
	return fmt.Sprintf("%.4gs", sec)
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.2fGB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.2fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.2fKB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}

// chCycles builds the hierarchy with the paper's Algorithm 1 (bully CC) on a
// p-processor simulated machine and returns the modelled cycles.
func chCycles(g *graph.Graph, p int) int64 {
	rt := par.NewSim(mta.MTA2(p))
	ch.BuildNaive(rt, g, cc.Bully)
	return rt.SimCost().Span
}

// thorupCycles runs one Thorup query on a p-processor simulated machine.
func thorupCycles(h *ch.Hierarchy, p int, strategy core.Strategy) int64 {
	m := mta.MTA2(p)
	rt := par.NewSim(m)
	s := core.NewSolver(h, rt, core.WithStrategy(strategy), core.WithThresholds(core.TuneThresholds(m)))
	s.SSSP(0)
	return rt.SimCost().Span
}

// deltaCycles runs one delta-stepping query on a p-processor simulated
// machine.
func deltaCycles(g *graph.Graph, p int) int64 {
	rt := par.NewSim(mta.MTA2(p))
	deltastep.SSSP(rt, g, 0, deltastep.DefaultDelta(g))
	return rt.SimCost().Span
}

// Table3 reproduces CH construction time and relative speedup on the
// simulated Procs-processor machine.
func (c Config) Table3() (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Table 3: Running time and speedup for generating the CH on %d processors [sim]", c.Procs),
		Note:   c.scaleNote(),
		Header: []string{"Graph Family", "CH", "CH Speedup"},
	}
	m := mta.MTA2(c.Procs)
	for _, in := range c.Families() {
		g := in.Generate()
		one := chCycles(g, 1)
		many := chCycles(g, c.Procs)
		t.AddRow(in.Name(),
			fmtSecs(m.Seconds(many)),
			fmt.Sprintf("%.2f", float64(one)/float64(many)))
	}
	return t, nil
}

// Table4 reproduces Thorup SSSP time and relative speedup on the simulated
// Procs-processor machine.
func (c Config) Table4() (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Table 4: Running time and speedup for Thorup's algorithm on %d processors [sim]", c.Procs),
		Note:   c.scaleNote(),
		Header: []string{"Graph Family", "Thorup", "Thorup Speedup"},
	}
	m := mta.MTA2(c.Procs)
	for _, in := range c.Families() {
		g := in.Generate()
		h := ch.BuildKruskal(g)
		one := thorupCycles(h, 1, core.Selective)
		many := thorupCycles(h, c.Procs, core.Selective)
		t.AddRow(in.Name(),
			fmtSecs(m.Seconds(many)),
			fmt.Sprintf("%.2f", float64(one)/float64(many)))
	}
	return t, nil
}

// Table5 reproduces the three-way comparison of delta-stepping, Thorup, and
// CH construction time on the simulated machine.
func (c Config) Table5() (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Table 5: Comparison of Delta-Stepping and Thorup's algorithm on %d processors [sim]", c.Procs),
		Note:   c.scaleNote(),
		Header: []string{"Family", "D-Stepping", "Thorup", "CH"},
	}
	m := mta.MTA2(c.Procs)
	for _, in := range c.Families() {
		g := in.Generate()
		h := ch.BuildKruskal(g)
		t.AddRow(in.Name(),
			fmtSecs(m.Seconds(deltaCycles(g, c.Procs))),
			fmtSecs(m.Seconds(thorupCycles(h, c.Procs, core.Selective))),
			fmtSecs(m.Seconds(chCycles(g, c.Procs))))
	}
	return t, nil
}

// Table6 reproduces the toVisit-strategy comparison: Thorup A (naive, every
// loop on all processors) vs Thorup B (selective parallelization).
func (c Config) Table6() (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Table 6: Naive strategy (Thorup A) vs selective parallelization (Thorup B) on %d processors [sim]", c.Procs),
		Note:   c.scaleNote(),
		Header: []string{"Family", "Thorup A", "Thorup B", "A/B"},
	}
	m := mta.MTA2(c.Procs)
	for _, in := range c.Families() {
		g := in.Generate()
		h := ch.BuildKruskal(g)
		a := thorupCycles(h, c.Procs, core.Naive)
		b := thorupCycles(h, c.Procs, core.Selective)
		t.AddRow(in.Name(),
			fmtSecs(m.Seconds(a)),
			fmtSecs(m.Seconds(b)),
			fmt.Sprintf("%.2f", float64(a)/float64(b)))
	}
	return t, nil
}

// Figure4 reproduces the scaling curves: for every family, CH construction
// and Thorup SSSP simulated time for each processor count in ProcSweep.
func (c Config) Figure4() (*Table, error) {
	t := &Table{
		Title:  "Figure 4: Scaling of CH construction and Thorup's algorithm on the simulated MTA-2",
		Note:   c.scaleNote(),
		Header: []string{"Series", "Procs", "Time [sim]", "Speedup"},
	}
	for _, in := range c.Families() {
		g := in.Generate()
		h := ch.BuildKruskal(g)
		var chBase, thBase int64
		for i, p := range c.ProcSweep {
			m := mta.MTA2(p)
			chC := chCycles(g, p)
			thC := thorupCycles(h, p, core.Selective)
			if i == 0 {
				chBase, thBase = chC*int64(p), thC*int64(p) // normalise to p=1 via first entry
				if p == 1 {
					chBase, thBase = chC, thC
				}
			}
			t.AddRow("ch-"+in.Name(), p, fmtSecs(m.Seconds(chC)),
				fmt.Sprintf("%.2f", float64(chBase)/float64(chC)))
			t.AddRow("th-"+in.Name(), p, fmtSecs(m.Seconds(thC)),
				fmt.Sprintf("%.2f", float64(thBase)/float64(thC)))
		}
	}
	return t, nil
}

// Figure5 reproduces the simultaneous-queries experiment at two scales: k
// shared-CH Thorup queries co-scheduled on the machine versus k sequential
// parallel Thorup runs and k sequential parallel delta-stepping runs.
func (c Config) Figure5() (*Table, error) {
	t := &Table{
		Title:  fmt.Sprintf("Figure 5: Simultaneous %d-processor Thorup runs from multiple sources [sim]", c.Procs),
		Note:   c.scaleNote(),
		Header: []string{"Instance", "Sources", "baseline-thorup", "baseline-deltastep", "simul-thorup"},
	}
	m := mta.MTA2(c.Procs)
	th := core.TuneThresholds(m)
	for _, logN := range []int{c.LogN - 2, c.LogN} {
		in := gen.Instance{Class: gen.Rand, Dist: gen.UWD, LogN: logN, LogC: logN, Seed: c.Seed}
		g := in.Generate()
		h := ch.BuildKruskal(g)
		oneThorup := thorupCycles(h, c.Procs, core.Selective)
		oneDelta := deltaCycles(g, c.Procs)
		maxK := 0
		for _, k := range c.SourceCounts {
			if k > maxK {
				maxK = k
			}
		}
		allSources := spreadSources(g.NumVertices(), maxK)
		for _, k := range c.SourceCounts {
			simul, _ := core.SimultaneousCost(h, m, allSources[:k], core.WithThresholds(th))
			t.AddRow(in.Name(), k,
				fmtSecs(m.Seconds(int64(k)*oneThorup)),
				fmtSecs(m.Seconds(int64(k)*oneDelta)),
				fmtSecs(m.Seconds(simul)))
		}
	}
	return t, nil
}

// spreadSources picks k well-separated source vertices.
func spreadSources(n, k int) []int32 {
	out := make([]int32, k)
	for i := 0; i < k; i++ {
		out[i] = int32(i * (n / k))
	}
	return out
}

// AblationCH compares the three hierarchy constructions (paper §3.1 decision:
// Algorithm 1 instead of the MST-based construction).
func (c Config) AblationCH() (*Table, error) {
	t := &Table{
		Title:  "Ablation A: CH construction strategies (paper builds from the original graph, not the MST)",
		Note:   c.scaleNote(),
		Header: []string{"Family", "Naive(Alg.1) [sim]", "MST-based [sim]", "Kruskal serial [wall]"},
	}
	m := mta.MTA2(c.Procs)
	for _, in := range c.Families()[:3] {
		g := in.Generate()
		naive := chCycles(g, c.Procs)
		rtMST := par.NewSim(m)
		ch.BuildMST(rtMST, g)
		mst := rtMST.SimCost().Span
		kru := wall(func() { ch.BuildKruskal(g) })
		t.AddRow(in.Name(),
			fmtSecs(m.Seconds(naive)),
			fmtSecs(m.Seconds(mst)),
			fmtSecs(kru))
	}
	return t, nil
}

// AblationCC compares the bully and Shiloach–Vishkin connected-components
// kernels inside Algorithm 1 (paper §3.1 cites the bully kernel's hot-spot
// avoidance).
func (c Config) AblationCC() (*Table, error) {
	t := &Table{
		Title:  "Ablation B: CC kernel inside CH construction (bully vs Shiloach-Vishkin) [sim]",
		Note:   c.scaleNote(),
		Header: []string{"Family", "Bully", "Shiloach-Vishkin", "SV/Bully"},
	}
	m := mta.MTA2(c.Procs)
	for _, in := range c.Families()[:3] {
		g := in.Generate()
		rtB := par.NewSim(m)
		ch.BuildNaive(rtB, g, cc.Bully)
		b := rtB.SimCost().Span
		rtS := par.NewSim(m)
		ch.BuildNaive(rtS, g, cc.ShiloachVishkin)
		s := rtS.SimCost().Span
		t.AddRow(in.Name(),
			fmtSecs(m.Seconds(b)),
			fmtSecs(m.Seconds(s)),
			fmt.Sprintf("%.2f", float64(s)/float64(b)))
	}
	return t, nil
}

// AblationBuckets compares virtual buckets against physical bucket lists in
// the serial solver (paper §3.2's data-structure decision).
func (c Config) AblationBuckets() (*Table, error) {
	t := &Table{
		Title:  "Ablation C: virtual buckets (child scan) vs physical bucket lists, serial Thorup [wall]",
		Note:   c.scaleNote(),
		Header: []string{"Family", "Virtual", "Physical"},
	}
	for _, in := range c.Families()[:3] {
		g := in.Generate()
		h := ch.BuildKruskal(g)
		v := wall(func() { core.SerialSSSP(h, 0) })
		p := wall(func() { core.SerialSSSPPhysical(h, 0) })
		t.AddRow(in.Name(), fmtSecs(v), fmtSecs(p))
	}
	return t, nil
}

// RoadNetwork runs the paper's §6 future-work scenario: a high-diameter
// grid where delta-stepping needs many phases and Thorup's traversal shows
// its trapping behaviour.
func (c Config) RoadNetwork() (*Table, error) {
	t := &Table{
		Title:  "Extension: road-network-like grid (paper §6)",
		Note:   c.scaleNote(),
		Header: []string{"Instance", "D-Stepping [sim]", "Thorup [sim]", "DS buckets", "DS phases"},
	}
	m := mta.MTA2(c.Procs)
	in := gen.Instance{Class: gen.Grid, Dist: gen.UWD, LogN: c.LogN, LogC: 6, Seed: c.Seed}
	g := in.Generate()
	h := ch.BuildKruskal(g)
	rtD := par.NewSim(m)
	_, st := deltastep.Run(rtD, g, 0, deltastep.DefaultDelta(g))
	t.AddRow(in.Name(),
		fmtSecs(m.Seconds(rtD.SimCost().Span)),
		fmtSecs(m.Seconds(thorupCycles(h, c.Procs, core.Selective))),
		st.Buckets, st.Phases)
	return t, nil
}

// Experiment names every runnable experiment for the CLI.
var Experiments = map[string]func(Config) (*Table, error){
	"table1":              Config.Table1,
	"table2":              Config.Table2,
	"table3":              Config.Table3,
	"table4":              Config.Table4,
	"table5":              Config.Table5,
	"table6":              Config.Table6,
	"figure4":             Config.Figure4,
	"figure5":             Config.Figure5,
	"ablation-ch":         Config.AblationCH,
	"ablation-cc":         Config.AblationCC,
	"ablation-buckets":    Config.AblationBuckets,
	"ablation-thresholds": Config.AblationThresholds,
	"ablation-delta":      Config.AblationDelta,
	"road":                Config.RoadNetwork,
	"propagation":         Config.Propagation,
	"anomaly":             Config.Anomaly,
	"portfolio":           Config.Portfolio,
}

// Order is the canonical display order for -all runs.
var Order = []string{
	"table1", "table2", "table3", "table4", "table5", "table6",
	"figure4", "figure5",
	"ablation-ch", "ablation-cc", "ablation-buckets", "ablation-thresholds",
	"ablation-delta", "road", "propagation", "anomaly", "portfolio",
}
