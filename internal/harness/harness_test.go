package harness

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// tiny returns a config small enough for unit tests.
func tiny() Config {
	c := DefaultConfig()
	c.LogN = 9
	c.ProcSweep = []int{1, 8, 40}
	c.SourceCounts = []int{1, 4, 8}
	c.Verify = true
	return c
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{
		Title:  "Demo",
		Note:   "a note",
		Header: []string{"A", "LongHeader"},
	}
	tb.AddRow("x", 3.14159)
	tb.AddRow("yyyy", "z")
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "3.14") {
		t.Fatalf("bad render:\n%s", out)
	}
	var csv bytes.Buffer
	if err := tb.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || lines[0] != "A,LongHeader" {
		t.Fatalf("bad csv:\n%s", csv.String())
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := &Table{Header: []string{"x"}}
	tb.AddRow(`a,"b"`)
	var csv bytes.Buffer
	if err := tb.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csv.String(), `"a,""b"""`) {
		t.Fatalf("bad escaping: %s", csv.String())
	}
}

func TestFamiliesMatchPaper(t *testing.T) {
	c := tiny()
	fams := c.Families()
	if len(fams) != 6 {
		t.Fatalf("%d families", len(fams))
	}
	names := make([]string, len(fams))
	for i, f := range fams {
		names[i] = f.Name()
	}
	want := []string{
		"Rand-UWD-2^9-2^9", "Rand-PWD-2^9-2^9", "Rand-UWD-2^9-2^2",
		"RMAT-UWD-2^9-2^9", "RMAT-PWD-2^9-2^9", "RMAT-UWD-2^9-2^2",
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("family %d = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestAllExperimentsRun(t *testing.T) {
	c := tiny()
	for _, name := range Order {
		fn, ok := Experiments[name]
		if !ok {
			t.Fatalf("experiment %s missing from map", name)
		}
		tb, err := fn(c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s produced no rows", name)
		}
		if len(tb.Header) == 0 {
			t.Errorf("%s has no header", name)
		}
		for ri, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("%s row %d has %d cells, header has %d", name, ri, len(row), len(tb.Header))
			}
		}
	}
}

func parseSpeedup(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("bad speedup cell %q: %v", cell, err)
	}
	return v
}

func TestTable3SpeedupsAboveOne(t *testing.T) {
	c := tiny()
	c.LogN = 15 // CH construction needs real work to amortise loop forks
	tb, err := c.Table3()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if s := parseSpeedup(t, row[2]); s <= 1 {
			t.Errorf("%s: CH speedup %v not above 1", row[0], s)
		}
	}
}

func TestTable4SpeedupsAboveOne(t *testing.T) {
	c := tiny()
	c.LogN = 13 // needs enough parallel work to beat fork costs
	tb, err := c.Table4()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if s := parseSpeedup(t, row[2]); s <= 1 {
			t.Errorf("%s: Thorup speedup %v not above 1", row[0], s)
		}
	}
}

func TestTable6SelectiveWins(t *testing.T) {
	c := tiny()
	c.LogN = 11
	tb, err := c.Table6()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if ratio := parseSpeedup(t, row[3]); ratio <= 1 {
			t.Errorf("%s: Thorup A/B ratio %v not above 1", row[0], ratio)
		}
	}
}

func TestFigure5SharedCHBeatsSequentialThorup(t *testing.T) {
	c := tiny()
	c.LogN = 12
	c.SourceCounts = []int{1, 8}
	tb, err := c.Figure5()
	if err != nil {
		t.Fatal(err)
	}
	parse := func(cell string) float64 {
		v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "s"), 64)
		if err != nil {
			t.Fatalf("bad cell %q", cell)
		}
		return v
	}
	// At the largest source count, simultaneous shared-CH runs must beat the
	// sequential Thorup baseline (the paper's headline Figure 5 claim).
	for _, row := range tb.Rows {
		if row[1] != "8" {
			continue
		}
		baseline := parse(row[2])
		simul := parse(row[4])
		if simul >= baseline {
			t.Errorf("%s k=8: simul %v not below sequential baseline %v", row[0], simul, baseline)
		}
	}
}

func TestPropagationExperimentShape(t *testing.T) {
	c := tiny()
	tb, err := c.Propagation()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		hops, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatalf("bad hops cell %q", row[2])
		}
		height, err := strconv.ParseFloat(row[3], 64)
		if err != nil {
			t.Fatalf("bad height cell %q", row[3])
		}
		if hops <= 0 || hops > height {
			t.Errorf("%s: hops %v vs height %v", row[0], hops, height)
		}
	}
}

func TestAnomalyExperimentInflatesSpeedup(t *testing.T) {
	c := tiny()
	c.LogN = 12
	tb, err := c.Anomaly()
	if err != nil {
		t.Fatal(err)
	}
	honest := parseSpeedup(t, tb.Rows[0][1])
	anomalous := parseSpeedup(t, tb.Rows[0][2])
	if anomalous <= honest {
		t.Fatalf("anomalous %v not above honest %v", anomalous, honest)
	}
}
