package harness

import (
	"strings"
	"testing"
)

func TestRenderASCIIBasics(t *testing.T) {
	out := RenderASCII("demo", []Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 10, 100}},
		{Name: "b", X: []float64{1, 2, 3}, Y: []float64{100, 10, 1}},
	}, 40, 10)
	if !strings.Contains(out, "demo") || !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Fatalf("missing parts:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatalf("no markers:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestRenderASCIIEmpty(t *testing.T) {
	out := RenderASCII("empty", nil, 40, 10)
	if !strings.Contains(out, "no data") {
		t.Fatalf("got %q", out)
	}
	// Non-positive ys are skipped on the log scale.
	out2 := RenderASCII("zeros", []Series{{Name: "z", X: []float64{1}, Y: []float64{0}}}, 40, 10)
	if !strings.Contains(out2, "no data") {
		t.Fatalf("got %q", out2)
	}
}

func TestRenderASCIIConstantSeries(t *testing.T) {
	out := RenderASCII("flat", []Series{{Name: "c", X: []float64{5}, Y: []float64{7}}}, 30, 8)
	if !strings.Contains(out, "*") {
		t.Fatalf("constant point missing:\n%s", out)
	}
}

func TestPlotFromTable(t *testing.T) {
	tb := &Table{Header: []string{"Series", "X", "Y"}, Title: "fig"}
	tb.AddRow("th", "1", "0.01s")
	tb.AddRow("th", "2", "0.005s")
	tb.AddRow("ch", "1", "0.02s")
	tb.AddRow("ch", "2", "0.01s")
	tb.AddRow("junk", "x", "y") // unparsable: skipped
	out := PlotFromTable(tb, 0, 1, 2, 40, 8)
	if !strings.Contains(out, "fig") || !strings.Contains(out, "th") || !strings.Contains(out, "ch") {
		t.Fatalf("plot:\n%s", out)
	}
}

func TestFigure4Plots(t *testing.T) {
	c := tiny()
	c.LogN = 10
	tb, err := c.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	out := PlotFromTable(tb, 0, 1, 2, 60, 12)
	if !strings.Contains(out, "ch-Rand-UWD") {
		t.Fatalf("figure4 plot missing series:\n%s", out)
	}
}
