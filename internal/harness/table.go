package harness

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells with a header row.
type Table struct {
	Title  string
	Note   string // one-line caption detail (scale, substitutions)
	Header []string
	Rows   [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	t.Fprint(&sb)
	return sb.String()
}

// Fprint writes the aligned table to w.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	fmt.Fprintf(w, "%s\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "(%s)\n", t.Note)
	}
	line := strings.Repeat("-", total)
	fmt.Fprintln(w, line)
	printRow := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(w, "%-*s", widths[i]+2, c)
		}
		fmt.Fprintln(w)
	}
	printRow(t.Header)
	fmt.Fprintln(w, line)
	for _, row := range t.Rows {
		printRow(row)
	}
}

// WriteCSV emits the table as CSV (header + rows) for plotting.
func (t *Table) WriteCSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = esc(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(parts, ","))
		return err
	}
	if err := writeRow(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
