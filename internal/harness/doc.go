// Package harness defines and runs the paper's experiments: one function per
// table and figure of the evaluation section (Tables 1–6, Figures 4–5), plus
// the ablations DESIGN.md calls out. Each experiment returns a Table that
// prints in the paper's layout and can also be emitted as CSV for plotting.
//
// Times come in two flavours, reported side by side where relevant:
//
//   - wall-clock seconds on the host (meaningful for serial comparisons such
//     as Table 1);
//   - simulated MTA-2 seconds, i.e. modelled cycles / 220 MHz, for everything
//     that depends on the 40-processor machine (Tables 3–6, Figures 4–5).
//
// See DESIGN.md §3 ("System inventory") for how this package fits the system.
package harness
